package uptimebroker_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"uptimebroker"
)

// The canonical flow: build the default engine and run the paper's
// case study through it.
func Example() {
	engine, err := uptimebroker.DefaultEngine()
	if err != nil {
		log.Fatal(err)
	}
	rec, err := engine.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		log.Fatal(err)
	}
	best := rec.Best()
	fmt.Printf("option #%d (%s) at %s/month, savings %.1f%%\n",
		best.Option, best.Label(), best.TCO, rec.SavingsFraction*100)
	// Output:
	// option #3 (storage=raid1) at $1,164.90/month, savings 61.8%
}

// Evaluating the analytic uptime model directly (Equations 1-4).
func ExampleUptime() {
	sys := uptimebroker.AvailabilitySystem{Clusters: []uptimebroker.Cluster{
		{Name: "compute", Nodes: 3, Tolerated: 0, NodeDown: 0.0055, FailuresPerYear: 5},
		{Name: "storage", Nodes: 1, Tolerated: 0, NodeDown: 0.02, FailuresPerYear: 3},
		{Name: "network", Nodes: 1, Tolerated: 0, NodeDown: 0.0146, FailuresPerYear: 4},
	}}
	fmt.Printf("U_s = %.4f\n", uptimebroker.Uptime(sys))
	// Output:
	// U_s = 0.9498
}

// Extracting the cost × uptime frontier from a recommendation.
func ExampleParetoCards() {
	engine, err := uptimebroker.DefaultEngine()
	if err != nil {
		log.Fatal(err)
	}
	rec, err := engine.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		log.Fatal(err)
	}
	for _, card := range uptimebroker.ParetoCards(rec.Cards) {
		fmt.Printf("#%d %s: %s for %.4f%%\n", card.Option, card.Label(), card.HACost, card.Uptime*100)
	}
	// Output:
	// #1 none: $0.00 for 94.9846%
	// #3 storage=raid1: $350.00 for 96.8837%
	// #5 storage=raid1,network=dual-gateway: $1,250.00 for 98.2967%
	// #7 compute=esx-ha,storage=raid1: $2,150.00 for 98.4409%
	// #8 compute=esx-ha,storage=raid1,network=dual-gateway: $3,050.00 for 99.8773%
}

// Rendering a recommendation for spreadsheets; the first CSV line is
// the stable column header.
func ExampleWriteReport() {
	engine, err := uptimebroker.DefaultEngine()
	if err != nil {
		log.Fatal(err)
	}
	rec, err := engine.Recommend(context.Background(), uptimebroker.CaseStudy())
	if err != nil {
		log.Fatal(err)
	}
	var sb strings.Builder
	if err := uptimebroker.WriteReport(&sb, rec, "csv"); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	fmt.Println(lines[0])
	fmt.Printf("%d option rows\n", len(lines)-1)
	// Output:
	// option,label,ha_cost_usd,uptime,slippage_hours_per_month,penalty_usd,tco_usd,meets_sla,note
	// 8 option rows
}

// Pricing one HA mechanism on a provider's rate card.
func ExampleHATechnology_MonthlyCost() {
	cat := uptimebroker.DefaultCatalog()
	raid1, err := cat.Technology("raid1")
	if err != nil {
		log.Fatal(err)
	}
	provider, err := cat.Provider(uptimebroker.ProviderSoftLayerSim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(raid1.MonthlyCost(provider.RateCard))
	// Output:
	// $350.00
}

// Command brokerd serves the uptime-optimized brokerage over HTTP —
// the "as-a-service" deployment of the paper's framework (Figure 2).
//
// Usage:
//
//	brokerd [-addr :8080] [-quiet] [-rate-limit 0] [-rate-limit-per-client 0]
//	        [-job-ttl 15m] [-job-workers 0] [-data-dir DIR] [-snapshot-interval 1m]
//	        [-fsync] [-group-commit] [-default-strategy auto] [-pricing auto]
//	        [-cache-entries 1024] [-cache-bytes 0] [-cache-ttl 0] [-sse-ping 15s]
//
// With -data-dir the async job store is durable: every submission,
// state transition and result is journaled to a write-ahead log in
// DIR (compacted into a snapshot every -snapshot-interval), and a
// restart recovers it — completed results stay fetchable, queued jobs
// re-run, and jobs that were mid-run report a restart_lost failure.
// Without -data-dir the store is in-memory, as before. -fsync
// additionally flushes every WAL append to disk for power-loss
// durability at a per-submission latency cost; -group-commit keeps
// that durability while coalescing concurrent appends into shared
// flushes, recovering most of the throughput under load (it
// supersedes -fsync when both are set).
//
// -default-strategy picks the solver used for requests that do not
// name one ("auto", "exhaustive", "pruned", "branch-and-bound" or
// "parallel-pruned"); individual requests override it with their
// "strategy" field. -pricing picks how the full card-pricing pass
// enumerates the k^n options when a request leaves it open: "auto"
// (the default — parallel only when the host has at least two cores
// and the space is big enough to amortize the workers), "parallel" or
// "sequential". The deprecated -parallel-pricing=false spelling still
// works and maps onto -pricing sequential.
//
// Completed recommendations are cached by content address: a stable
// hash of the catalog epoch, the telemetry epoch and the normalized
// request. Identical requests are answered from memory (X-Cache: hit)
// and concurrent identical requests collapse onto one solver run
// (X-Cache: shared); any catalog mutation or telemetry observation
// re-addresses everything, so stale answers are never served.
// -cache-entries bounds the cache (0 disables caching entirely),
// -cache-bytes adds an approximate memory budget (0 = unlimited), and
// -cache-ttl ages entries out (0 = no expiry). GET /v1/metrics
// reports the hit/miss/shared/inflight counters and both epochs.
//
// Routes (see docs/api.md for request/response shapes):
//
//	GET    /healthz                      liveness
//	GET    /readyz                       readiness (job store open + recovered)
//	GET    /metrics                      Prometheus text exposition
//	GET    /v2/metrics/events            periodic metrics snapshots (SSE,
//	                                     polling fallback; -metrics-interval
//	                                     sets the default cadence)
//	GET    /v1/metrics                   job + result-cache counters, epochs,
//	                                     build info
//	POST   /v1/recommendations           run the brokerage synchronously
//	POST   /v1/pareto                    cost × uptime frontier
//	GET    /v1/catalog/technologies      list HA mechanisms
//	GET    /v1/catalog/providers         list clouds and rate cards
//	GET    /v1/params                    parameter estimate for provider+class
//	POST   /v1/observations              ingest telemetry
//	GET    /v1/scenarios                 scenario library
//	POST   /v1/scenarios/{name}/recommendation
//	POST   /v2/...                       v2 mirrors of every v1 route, plus:
//	POST   /v2/jobs                      submit an async recommend/pareto job
//	GET    /v2/jobs                      list jobs + metrics (?state=, ?limit=)
//	GET    /v2/jobs/{id}                 poll one job
//	GET    /v2/jobs/{id}/events          live progress (SSE, polling fallback)
//	DELETE /v2/jobs/{id}                 cancel a queued or running job
//	POST   /v2/recommendations/batch     price many scenarios concurrently
//
// Every error response is RFC 9457 application/problem+json with a
// stable machine-readable "code" member.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/httpapi"
	"uptimebroker/internal/obs"
	"uptimebroker/internal/reccache"
	"uptimebroker/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("brokerd", flag.ContinueOnError)
	var (
		addr            = fs.String("addr", ":8080", "listen address")
		quiet           = fs.Bool("quiet", false, "disable request logging")
		telemetryFile   = fs.String("telemetry-file", "", "path to persist the telemetry database across restarts")
		rateLimit       = fs.Float64("rate-limit", 0, "max requests/second across all routes (0 disables limiting)")
		rateBurst       = fs.Int("rate-burst", 10, "rate limiter burst size")
		clientRateLimit = fs.Float64("rate-limit-per-client", 0, "max requests/second per client IP (0 disables)")
		clientRateBurst = fs.Int("rate-burst-per-client", 10, "per-client rate limiter burst size")
		trustProxy      = fs.Bool("trust-proxy", false, "key per-client limits on the rightmost X-Forwarded-For entry (only behind a trusted proxy)")
		jobTTL          = fs.Duration("job-ttl", 15*time.Minute, "how long finished async jobs stay pollable")
		jobWorkers      = fs.Int("job-workers", 0, "async job worker pool size (0 = GOMAXPROCS)")
		maxQueueWait    = fs.Duration("max-queue-wait", 0, "shed job submissions with 429 + Retry-After when the estimated queue wait exceeds this (0 disables)")
		dataDir         = fs.String("data-dir", "", "directory for the durable job store WAL + snapshots (empty = in-memory jobs)")
		snapInterval    = fs.Duration("snapshot-interval", time.Minute, "how often the job WAL is compacted into a snapshot (with -data-dir)")
		fsync           = fs.Bool("fsync", false, "fsync every job WAL append for power-loss durability (with -data-dir)")
		groupCommit     = fs.Bool("group-commit", false, "fsync durability with concurrent WAL appends coalesced into shared flushes (with -data-dir)")
		defaultStrategy = fs.String("default-strategy", "", "solver for requests that do not name one: auto (default), exhaustive, pruned, branch-and-bound or parallel-pruned")
		pricing         = fs.String("pricing", broker.PricingAuto, "card-pricing mode for requests that do not set one: auto, parallel or sequential")
		parallelPricing = fs.Bool("parallel-pricing", true, "deprecated: use -pricing; false maps to -pricing sequential, true to -pricing parallel")
		cacheEntries    = fs.Int("cache-entries", 1024, "max cached recommendation results (0 disables the result cache)")
		cacheBytes      = fs.Int64("cache-bytes", 0, "approximate memory budget for cached results in bytes (0 = bounded by -cache-entries only)")
		cacheTTL        = fs.Duration("cache-ttl", 0, "drop cached results older than this (0 = no expiry; epochs already invalidate on data changes)")
		ssePing         = fs.Duration("sse-ping", 15*time.Second, "keep-alive comment interval on /v2/jobs/{id}/events streams (0 disables)")
		metricsInterval = fs.Duration("metrics-interval", 2*time.Second, "default snapshot cadence of the /v2/metrics/events stream")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// -pricing wins when both spellings appear; an explicit legacy
	// -parallel-pricing keeps its old meaning otherwise.
	pricingMode := *pricing
	pricingSet, legacySet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "pricing":
			pricingSet = true
		case "parallel-pricing":
			legacySet = true
		}
	})
	if !pricingSet && legacySet {
		if *parallelPricing {
			pricingMode = broker.PricingParallel
		} else {
			pricingMode = broker.PricingSequential
		}
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "brokerd ", log.LstdFlags|log.Lmicroseconds)
	}

	cat := catalog.Default()
	store := telemetry.NewStore()
	if *telemetryFile != "" {
		switch err := store.LoadFile(*telemetryFile); {
		case err == nil:
			if logger != nil {
				logger.Printf("loaded telemetry snapshot from %s (%d buckets)", *telemetryFile, len(store.Buckets()))
			}
		case errors.Is(err, os.ErrNotExist):
			if logger != nil {
				logger.Printf("no telemetry snapshot at %s; starting fresh", *telemetryFile)
			}
		default:
			return err
		}
	}
	// One registry spans the engine, the job subsystem and the HTTP
	// layer, so GET /metrics is the whole process in one scrape.
	registry := obs.NewRegistry()
	engineOpts := []broker.EngineOption{
		broker.WithDefaultStrategy(*defaultStrategy),
		broker.WithPricing(pricingMode),
		broker.WithMetricsRegistry(registry),
	}
	if *cacheEntries > 0 {
		engineOpts = append(engineOpts, broker.WithResultCache(reccache.New(reccache.Config{
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
			TTL:        *cacheTTL,
		})))
	}
	engine, err := broker.New(cat, broker.TelemetryParams{
		Store:            store,
		Fallback:         broker.CatalogParams{Catalog: cat},
		MinExposureYears: 1,
	}, engineOpts...)
	if err != nil {
		return err
	}
	opts := []httpapi.ServerOption{
		httpapi.WithJobTTL(*jobTTL),
		httpapi.WithSSEPingInterval(*ssePing),
		httpapi.WithMetricsRegistry(registry),
		httpapi.WithMetricsStreamInterval(*metricsInterval),
	}
	if *rateLimit > 0 {
		opts = append(opts, httpapi.WithRateLimit(*rateLimit, *rateBurst))
	}
	if *clientRateLimit > 0 {
		opts = append(opts, httpapi.WithPerClientRateLimit(*clientRateLimit, *clientRateBurst))
	}
	if *trustProxy {
		opts = append(opts, httpapi.WithTrustedProxy())
	}
	if *jobWorkers > 0 {
		opts = append(opts, httpapi.WithJobWorkers(*jobWorkers))
	}
	if *maxQueueWait > 0 {
		opts = append(opts, httpapi.WithJobMaxQueueWait(*maxQueueWait))
	}
	if *dataDir != "" {
		opts = append(opts, httpapi.WithJobDir(*dataDir), httpapi.WithJobSnapshotInterval(*snapInterval))
		if *fsync {
			opts = append(opts, httpapi.WithJobFsync())
		}
		if *groupCommit {
			opts = append(opts, httpapi.WithJobGroupCommit())
		}
	}
	server, err := httpapi.NewServer(engine, store, logger, opts...)
	if err != nil {
		return err
	}
	defer server.Close()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		if logger != nil {
			logger.Printf("listening on %s", *addr)
		}
		errCh <- httpServer.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if *telemetryFile != "" {
			if err := store.SaveFile(*telemetryFile); err != nil {
				return err
			}
			if logger != nil {
				logger.Printf("saved telemetry snapshot to %s", *telemetryFile)
			}
		}
		return nil
	}
}

// Command benchreport runs the repo's named performance-scenario
// suite (card pricing sequential vs parallel, solver strategies, job
// store append/recovery) and emits a schema-versioned JSON report —
// the BENCH_pr<N>.json files that form the repo's committed
// performance trajectory and gate CI.
//
// Usage:
//
//	benchreport [-label pr] [-benchtime 1s] [-run REGEX] [-out FILE]
//	            [-compare BASELINE.json] [-fail-over 25]
//	            [-require 'RATIO>=MIN[@PROCS]'] [-require 'RATIO<=MAX[@PROCS]']
//	            [-list]
//
// Without -out the report goes to stdout; progress and comparison
// summaries go to stderr either way.
//
// With -compare the report is held against a committed baseline:
// tracked scenarios that got more than -fail-over percent slower, or
// tracked speedup ratios that lost more than -fail-over percent of
// their value, fail the run (exit 1). Baselines from a different host
// fingerprint (OS/arch/cores) only warn — absolute timings are
// machine-shaped — so the regression gate arms once the baseline was
// generated on a comparable machine (in practice: by CI itself).
//
// -require pins a hard bound on a ratio regardless of any baseline:
// `-require 'pricing_parallel_speedup_n19>=2@4'` asserts the parallel
// pricing pass is at least twice as fast as sequential, on hosts with
// at least 4 schedulable cores (the @PROCS guard skips the check on
// smaller machines, where the speedup cannot exist); `-require
// 'beam_n30_gap<=0.05'` caps a quality ratio — the certified
// optimality gap of the budgeted n=30 beam run — at 5%.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"uptimebroker/internal/benchreport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		label     = fs.String("label", "dev", "report label, e.g. pr4 for a committed baseline")
		benchTime = fs.Duration("benchtime", time.Second, "per-scenario measurement budget")
		runExpr   = fs.String("run", "", "only run scenarios whose name matches this regexp")
		out       = fs.String("out", "", "write the JSON report to this file (default stdout)")
		compare   = fs.String("compare", "", "hold the run against this baseline report")
		failOver  = fs.Float64("fail-over", 25, "fail on tracked regressions beyond this percentage (with -compare)")
		list      = fs.Bool("list", false, "list scenario names and exit")
	)
	var requires []benchreport.Requirement
	fs.Func("require", "hard ratio bound RATIO>=MIN[@PROCS] or RATIO<=MAX[@PROCS]; repeatable", func(s string) error {
		req, err := benchreport.ParseRequirement(s)
		if err != nil {
			return err
		}
		requires = append(requires, req)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, spec := range benchreport.Suite() {
			fmt.Println(spec.Name)
		}
		return nil
	}

	var filter *regexp.Regexp
	if *runExpr != "" {
		re, err := regexp.Compile(*runExpr)
		if err != nil {
			return fmt.Errorf("bad -run pattern: %w", err)
		}
		filter = re
	}

	report, err := benchreport.Run(benchreport.Options{
		Label:     *label,
		BenchTime: *benchTime,
		Filter:    filter,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	} else if err := report.Encode(os.Stdout); err != nil {
		return err
	}

	failed := false
	for _, req := range requires {
		enforced, err := req.Check(&report)
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, "REQUIREMENT FAILED:", err)
			failed = true
		case !enforced:
			fmt.Fprintf(os.Stderr, "requirement %s skipped (GOMAXPROCS %d < %d)\n",
				req, report.Host.GOMAXPROCS, req.MinGOMAXPROCS)
		default:
			fmt.Fprintf(os.Stderr, "requirement %s ok\n", req)
		}
	}

	if *compare != "" {
		baseline, err := benchreport.LoadFile(*compare)
		if err != nil {
			return fmt.Errorf("loading baseline: %w", err)
		}
		cmp := benchreport.Compare(baseline, report, *failOver)
		for _, w := range cmp.Warnings {
			fmt.Fprintln(os.Stderr, "warning:", w)
		}
		for _, d := range cmp.Deltas {
			mark := " "
			if d.Regression {
				mark = "!"
			}
			fmt.Fprintf(os.Stderr, "%s %-32s %-8s %14.2f -> %14.2f  (%+.1f%%)\n",
				mark, d.Name, d.Kind, d.Old, d.New, d.ChangePct)
		}
		if len(cmp.Regressions) > 0 {
			fmt.Fprintf(os.Stderr, "%d tracked regression(s) beyond %.0f%% against %s\n",
				len(cmp.Regressions), *failOver, *compare)
			failed = true
		}
	}

	if failed {
		return fmt.Errorf("performance gate failed")
	}
	return nil
}

package main

import (
	"fmt"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/lifecycle"
)

// runLifecycle plays the brokered service through simulated years of
// operation twice: once with an estate that matches the broker's
// catalog priors (the recommendation must stay put) and once with an
// estate that contradicts them (the recommendation must migrate as
// telemetry accrues) — the operational argument of Figure 2.
func runLifecycle(seed int64) error {
	header("LIFECYCLE — Re-optimization as the broker's database accrues")

	scenarios := []struct {
		name   string
		params []availability.NodeParams
	}{
		{
			name: "estate matches catalog priors",
			params: []availability.NodeParams{
				{Down: 0.0055, FailuresPerYear: 5},
				{Down: 0.0200, FailuresPerYear: 3},
				{Down: 0.0146, FailuresPerYear: 4},
			},
		},
		{
			name: "estate contradicts priors (flaky compute, solid storage)",
			params: []availability.NodeParams{
				{Down: 0.0300, FailuresPerYear: 25},
				{Down: 0.0004, FailuresPerYear: 1},
				{Down: 0.0004, FailuresPerYear: 1},
			},
		},
	}

	for _, sc := range scenarios {
		fmt.Printf("\nscenario: %s\n", sc.name)
		req := broker.CaseStudy()
		truth, ids, err := lifecycle.TruthFromComponents(req, sc.params)
		if err != nil {
			return err
		}
		epochs, err := lifecycle.Run(lifecycle.Config{
			Catalog:          catalog.Default(),
			Request:          req,
			Truth:            truth,
			IDs:              ids,
			Epochs:           5,
			EpochLength:      4 * 365 * 24 * time.Hour,
			MinExposureYears: 15,
			Seed:             seed,
		})
		if err != nil {
			return err
		}
		w := newTable()
		fmt.Fprintln(w, "epoch\tobserved node-years\tusing telemetry\trecommendation\tTCO/mo\tepoch uptime %")
		for _, e := range epochs {
			fmt.Fprintf(w, "%d\t%.0f\t%v\t#%d %s\t%s\t%.4f\n",
				e.Index, e.ExposureYears, e.UsingTelemetry, e.BestOption, e.BestLabel, e.BestTCO, e.SimulatedUptime*100)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	fmt.Println("\nreading: with priors confirmed the plan is stable; with priors")
	fmt.Println("contradicted, the broker migrates the HA budget once telemetry")
	fmt.Println("clears the exposure gate — Section IV's long-term smoothing at work.")
	return nil
}

package main

import (
	"fmt"
	"math/rand"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
)

// runGreedy compares the exhaustive optimizer against the greedy
// hill-climbing heuristic a practitioner without the paper's framework
// would use — the baseline that motivates global search.
func runGreedy(seed int64) error {
	header("GREEDY — Exhaustive optimum vs greedy hill-climbing baseline")

	rng := rand.New(rand.NewSource(seed))
	const trials = 400
	var (
		optimalHits int
		gapSum      float64
		gapMax      float64
		evalsGreedy int
		evalsExact  int
	)
	for i := 0; i < trials; i++ {
		p := randomInstance(rng)
		ex, err := p.Exhaustive()
		if err != nil {
			return err
		}
		gr, err := p.Greedy()
		if err != nil {
			return err
		}
		evalsExact += ex.Evaluated
		evalsGreedy += gr.Evaluated

		exTCO := float64(ex.Best.TCO.Total())
		grTCO := float64(gr.Best.TCO.Total())
		if grTCO <= exTCO {
			optimalHits++
			continue
		}
		gap := (grTCO - exTCO) / exTCO
		gapSum += gap
		if gap > gapMax {
			gapMax = gap
		}
	}

	fmt.Printf("random instances:      %d (seed %d)\n", trials, seed)
	fmt.Printf("greedy found optimum:  %d (%.1f%%)\n", optimalHits, 100*float64(optimalHits)/trials)
	missed := trials - optimalHits
	if missed > 0 {
		fmt.Printf("when suboptimal:       mean gap %.2f%%, worst gap %.2f%%\n",
			100*gapSum/float64(missed), 100*gapMax)
	}
	fmt.Printf("evaluations:           greedy %d vs exhaustive %d (%.1fx cheaper)\n",
		evalsGreedy, evalsExact, float64(evalsExact)/float64(evalsGreedy))
	fmt.Println("\nreading: greedy is cheap and usually right, but penalty economics")
	fmt.Println("are non-separable across components, so it stalls in local optima —")
	fmt.Println("the paper's exhaustive/pruned search buys certified optimality.")
	return nil
}

// randomInstance mirrors the optimizer tests' random family: 2-5
// components, 2-4 variants each, SLA 90-99.9%, penalties to $500/h.
func randomInstance(rng *rand.Rand) *optimize.Problem {
	n := 2 + rng.Intn(4)
	comps := make([]optimize.ComponentChoices, n)
	for i := range comps {
		k := 2 + rng.Intn(3)
		active := 1 + rng.Intn(3)
		down := 0.002 + rng.Float64()*0.03
		variants := make([]optimize.Variant, k)
		variants[0] = optimize.Variant{
			Label:   "none",
			Cluster: availability.Cluster{Name: "c", Nodes: active, Tolerated: 0, NodeDown: down},
		}
		prev := cost.Money(0)
		for v := 1; v < k; v++ {
			prev += cost.Dollars(float64(50 + rng.Intn(2500)))
			variants[v] = optimize.Variant{
				Label: fmt.Sprintf("ha%d", v),
				Cluster: availability.Cluster{
					Name: "c", Nodes: active + v, Tolerated: v, NodeDown: down,
					FailuresPerYear: rng.Float64() * 8,
					Failover:        time.Duration(rng.Intn(20)) * time.Minute,
				},
				MonthlyCost: prev,
			}
		}
		comps[i] = optimize.ComponentChoices{Name: fmt.Sprintf("c%d", i), Variants: variants}
	}
	return &optimize.Problem{
		Components: comps,
		SLA: cost.SLA{
			UptimePercent: 90 + rng.Float64()*9.9,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(float64(1 + rng.Intn(500)))},
		},
	}
}

package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/failsim"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/topology"
)

// newEngine builds the default brokerage stack.
func newEngine() (*broker.Engine, error) {
	cat := catalog.Default()
	return broker.New(cat, broker.CatalogParams{Catalog: cat})
}

func header(title string) {
	fmt.Printf("\n================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("================================================================\n")
}

func newTable() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// runFig1 renders the case-study topology (Figure 1).
func runFig1() error {
	header("FIG1 — Cloud-hosted clustered IaaS architecture of system S")
	req := broker.CaseStudy()
	fmt.Printf("system: %s on %s (serial combination of %d clusters)\n\n",
		req.Base.Name, req.Base.Provider, len(req.Base.Components))
	w := newTable()
	fmt.Fprintln(w, "cluster\tlayer\tclass\tactive nodes\tas-is HA")
	for _, c := range req.Base.Components {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%s\n",
			c.Name, c.Layer, c.EffectiveClass(), c.ActiveNodes, req.AsIs[c.Name])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nSLA: %.1f%% uptime, penalty $%.0f/hour of slippage\n",
		req.SLA.UptimePercent, req.SLA.Penalty.PerHour.Dollars())
	return nil
}

// runOptions prints the per-option cards (Figures 3–9).
func runOptions() error {
	header("FIG3–FIG9 — Solution options #1..#8 (per-option cards)")
	engine, err := newEngine()
	if err != nil {
		return err
	}
	rec, err := engine.Recommend(context.Background(), broker.CaseStudy())
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintln(w, "option\tHA selection\tC_HA/mo\tuptime %\tslip h/mo\tpenalty/mo\tTCO/mo\tmeets SLA")
	for _, c := range rec.Cards {
		fmt.Fprintf(w, "#%d\t%s\t%s\t%.4f\t%.2f\t%s\t%s\t%v\n",
			c.Option, c.Label(), c.HACost, c.Uptime*100, c.SlippageHours, c.Penalty, c.TCO, c.MeetsSLA)
	}
	return w.Flush()
}

// runSummary prints the Figure 10 comparison.
func runSummary() error {
	header("FIG10 — Summary of results & resulting cost efficiency")
	engine, err := newEngine()
	if err != nil {
		return err
	}
	rec, err := engine.Recommend(context.Background(), broker.CaseStudy())
	if err != nil {
		return err
	}

	w := newTable()
	fmt.Fprintln(w, "option\tHA selection\tTCO/mo\tnote")
	for _, c := range rec.Cards {
		note := ""
		switch c.Option {
		case rec.BestOption:
			note = "<= RECOMMENDED (min TCO, Eq. 6)"
		case rec.MinRiskOption:
			note = "<= min-slippage-risk choice"
		case rec.AsIsOption:
			note = "<= as-is ad-hoc strategy"
		}
		fmt.Fprintf(w, "#%d\t%s\t%s\t%s\n", c.Option, c.Label(), c.TCO, note)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	best := rec.Best()
	asIs := rec.Cards[rec.AsIsOption-1]
	fmt.Printf("\nas-is TCO:        %s/month (option #%d)\n", asIs.TCO, rec.AsIsOption)
	fmt.Printf("recommended TCO:  %s/month (option #%d, %s)\n", best.TCO, best.Option, best.Label())
	fmt.Printf("savings:          %.1f%%   (paper reports ≈ 62%%)\n", rec.SavingsFraction*100)
	fmt.Printf("min-risk option:  #%d (%s) at %s/month, uptime %.4f%%\n",
		rec.MinRiskOption, rec.Cards[rec.MinRiskOption-1].Label(),
		rec.Cards[rec.MinRiskOption-1].TCO, rec.Cards[rec.MinRiskOption-1].Uptime*100)
	fmt.Printf("search:           %d options, %d evaluated, %d pruned (Section III.C)\n",
		rec.Search.SpaceSize, rec.Search.Evaluated, rec.Search.Skipped)
	return nil
}

// runSLASweep shows how the recommendation moves with contract terms.
func runSLASweep() error {
	header("TAB-SLA — Recommendation vs SLA stringency and penalty rate")
	engine, err := newEngine()
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintln(w, "SLA %\tpenalty $/h\trecommended option\tTCO/mo\tuptime %\tmeets SLA")
	for _, slaPct := range []float64{95, 97, 98, 99, 99.5, 99.9} {
		for _, perHour := range []float64{50, 100, 400} {
			req := broker.CaseStudy()
			req.SLA = cost.SLA{UptimePercent: slaPct, Penalty: cost.Penalty{PerHour: cost.Dollars(perHour)}}
			rec, err := engine.Recommend(context.Background(), req)
			if err != nil {
				return err
			}
			best := rec.Best()
			fmt.Fprintf(w, "%.1f\t%.0f\t#%d %s\t%s\t%.4f\t%v\n",
				slaPct, perHour, best.Option, best.Label(), best.TCO, best.Uptime*100, best.MeetsSLA)
		}
	}
	return w.Flush()
}

// runComplexity reproduces the Section III.C complexity discussion:
// exhaustive k^n evaluations vs the superset-pruned search.
func runComplexity() error {
	header("COMPLEX — Exhaustive O(k^n) vs superset-pruned search (Section III.C)")
	w := newTable()
	fmt.Fprintln(w, "n\tk\tspace k^n\texhaustive evals\texhaustive time\tpruned evals\tpruned skipped\tpruned time\tsame optimum")
	for _, shape := range []struct{ n, k int }{
		{2, 2}, {4, 2}, {6, 2}, {8, 2}, {10, 2}, {12, 2},
		{6, 3}, {6, 4}, {8, 3},
	} {
		p := syntheticProblem(shape.n, shape.k)

		t0 := time.Now()
		ex, err := p.Exhaustive()
		if err != nil {
			return err
		}
		exTime := time.Since(t0)

		t0 = time.Now()
		pr, err := p.Pruned()
		if err != nil {
			return err
		}
		prTime := time.Since(t0)

		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\t%d\t%d\t%v\t%v\n",
			shape.n, shape.k, p.SpaceSize(), ex.Evaluated, exTime.Round(time.Microsecond),
			pr.Evaluated, pr.Skipped, prTime.Round(time.Microsecond),
			ex.Best.TCO.Total() == pr.Best.TCO.Total())
	}
	return w.Flush()
}

// syntheticProblem builds an n-component, k-choice instance whose SLA
// is attainable below the top level, so pruning has work to do. Shared
// with the root benchmarks via duplication kept intentionally small.
func syntheticProblem(n, k int) *optimize.Problem {
	comps := make([]optimize.ComponentChoices, n)
	for i := range comps {
		variants := make([]optimize.Variant, k)
		variants[0] = optimize.Variant{
			Label:   "none",
			Cluster: availability.Cluster{Name: "c", Nodes: 2, Tolerated: 0, NodeDown: 0.004},
		}
		for v := 1; v < k; v++ {
			variants[v] = optimize.Variant{
				Label: fmt.Sprintf("ha%d", v),
				Cluster: availability.Cluster{
					Name: "c", Nodes: 2 + v, Tolerated: v, NodeDown: 0.004,
					FailuresPerYear: 4, Failover: 3 * time.Minute,
				},
				MonthlyCost: cost.Dollars(float64(200 * v)),
			}
		}
		comps[i] = optimize.ComponentChoices{Name: fmt.Sprintf("c%d", i), Variants: variants}
	}
	return &optimize.Problem{
		Components: comps,
		SLA:        cost.SLA{UptimePercent: 97, Penalty: cost.Penalty{PerHour: cost.Dollars(150)}},
	}
}

// runValidate compares analytic U_s with Monte-Carlo uptime for every
// case-study option.
func runValidate(reps, years int, seed int64) error {
	header("VALID — Analytic model (Eq. 1–4) vs Monte-Carlo simulation, per option")
	engine, err := newEngine()
	if err != nil {
		return err
	}
	req := broker.CaseStudy()
	problem, err := engine.Compile(req)
	if err != nil {
		return err
	}
	rec, err := engine.Recommend(context.Background(), req)
	if err != nil {
		return err
	}

	w := newTable()
	fmt.Fprintln(w, "option\tHA selection\tanalytic uptime %\tsimulated uptime %\t95% CI ±\tagree")
	for _, card := range rec.Cards {
		sys, err := systemForCard(problem, card)
		if err != nil {
			return err
		}
		est, err := failsim.Run(context.Background(), failsim.Config{
			System:       sys,
			Horizon:      time.Duration(years) * 365 * 24 * time.Hour,
			Replications: reps,
			Seed:         seed + int64(card.Option),
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "#%d\t%s\t%.4f\t%.4f\t%.4f\t%v\n",
			card.Option, card.Label(), card.Uptime*100, est.Uptime*100, est.CI95()*100,
			est.AgreesWith(card.Uptime))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d replications × %d simulated years per option, seed %d\n", reps, years, seed)
	return nil
}

// systemForCard rebuilds the availability system behind an option card
// by matching variant labels.
func systemForCard(problem *optimize.Problem, card broker.OptionCard) (availability.System, error) {
	clusters := make([]availability.Cluster, len(card.Choices))
	for i, choice := range card.Choices {
		wantLabel := choice.TechID
		if wantLabel == "" {
			wantLabel = broker.NoHALabel
		}
		found := false
		for _, v := range problem.Components[i].Variants {
			if v.Label == wantLabel {
				clusters[i] = v.Cluster
				found = true
				break
			}
		}
		if !found {
			return availability.System{}, fmt.Errorf("no variant %q for component %q", wantLabel, choice.Component)
		}
	}
	return availability.System{Clusters: clusters}, nil
}

// runFuture prints the Section V extended-catalog recommendation.
func runFuture() error {
	header("FUTURE — Section V scenario: five-tier hybrid, extended HA catalog")
	engine, err := newEngine()
	if err != nil {
		return err
	}
	rec, err := engine.Recommend(context.Background(), broker.FutureWork(catalog.ProviderSoftLayerSim))
	if err != nil {
		return err
	}
	fmt.Printf("option space: %d permutations, %d evaluated, %d pruned\n\n",
		rec.Search.SpaceSize, rec.Search.Evaluated, rec.Search.Skipped)

	w := newTable()
	fmt.Fprintln(w, "rank\toption\tHA selection\tTCO/mo\tuptime %")
	// Top 10 by TCO (selection sort; the slice is small).
	cards := append([]broker.OptionCard(nil), rec.Cards...)
	for i := 0; i < len(cards); i++ {
		for j := i + 1; j < len(cards); j++ {
			if cards[j].TCO < cards[i].TCO {
				cards[i], cards[j] = cards[j], cards[i]
			}
		}
	}
	for i := 0; i < 10 && i < len(cards); i++ {
		fmt.Fprintf(w, "%d\t#%d\t%s\t%s\t%.4f\n",
			i+1, cards[i].Option, cards[i].Label(), cards[i].TCO, cards[i].Uptime*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	best := rec.Best()
	fmt.Printf("\nrecommended: option #%d (%s), TCO %s/month\n", best.Option, best.Label(), best.TCO)
	return nil
}

// runHybrid quotes the same workload across every cloud in the
// portfolio — the broker's hybrid vantage point.
func runHybrid() error {
	header("HYBRID — Three-tier workload quoted across the hybrid portfolio")
	engine, err := newEngine()
	if err != nil {
		return err
	}
	w := newTable()
	fmt.Fprintln(w, "provider\tbest option\tHA selection\tTCO/mo\tuptime %\tmin-risk option")
	for _, provider := range []string{catalog.ProviderSoftLayerSim, catalog.ProviderNimbus, catalog.ProviderStratus} {
		req := broker.CaseStudy()
		req.Base = topology.ThreeTier(provider)
		req.AsIs = nil // incumbents are provider-specific; compare fresh
		rec, err := engine.Recommend(context.Background(), req)
		if err != nil {
			return err
		}
		best := rec.Best()
		minRisk := "-"
		if rec.MinRiskOption > 0 {
			minRisk = fmt.Sprintf("#%d at %s", rec.MinRiskOption, rec.Cards[rec.MinRiskOption-1].TCO)
		}
		fmt.Fprintf(w, "%s\t#%d\t%s\t%s\t%.4f\t%s\n",
			provider, best.Option, best.Label(), best.TCO, best.Uptime*100, minRisk)
	}
	return w.Flush()
}

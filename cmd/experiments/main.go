// Command experiments regenerates every table and figure of the
// paper's evaluation (and the extra validation experiments DESIGN.md
// defines) from the reproduction codebase.
//
// Usage:
//
//	experiments [-run all|fig1|options|summary|slasweep|complexity|validate|future|hybrid] [-reps N] [-years N] [-seed N]
//
// The experiment IDs map to DESIGN.md §3:
//
//	fig1        Figure 1: the case-study topology
//	options     Figures 3–9: all eight solution option cards
//	summary     Figure 10: TCO summary, recommendation, savings
//	slasweep    Equation 5/6 behaviour across SLA and penalty levels
//	complexity  Section III.C: exhaustive vs pruned search effort
//	validate    analytic U_s vs Monte-Carlo simulation per option
//	future      Section V: extended HA catalog on the five-tier system
//	hybrid      the same workload quoted across all three clouds
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which = fs.String("run", "all", "experiment to run (all, fig1, options, summary, slasweep, complexity, validate, future, hybrid)")
		reps  = fs.Int("reps", 64, "Monte-Carlo replications for -run validate")
		years = fs.Int("years", 10, "simulated years per replication for -run validate")
		seed  = fs.Int64("seed", 20170611, "Monte-Carlo seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	runners := map[string]func() error{
		"fig1":       runFig1,
		"options":    runOptions,
		"summary":    runSummary,
		"slasweep":   runSLASweep,
		"complexity": runComplexity,
		"validate":   func() error { return runValidate(*reps, *years, *seed) },
		"future":     runFuture,
		"hybrid":     runHybrid,
		"ablation":   func() error { return runAblation(*reps, *years, *seed) },
		"lifecycle":  func() error { return runLifecycle(*seed) },
		"greedy":     func() error { return runGreedy(*seed) },
	}
	order := []string{"fig1", "options", "summary", "slasweep", "complexity", "validate", "future", "hybrid", "ablation", "lifecycle", "greedy"}

	if *which == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	runner, ok := runners[*which]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return runner()
}

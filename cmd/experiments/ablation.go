package main

import (
	"context"
	"fmt"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/failsim"
)

// runAblation quantifies the design choices DESIGN.md calls out:
//
//  1. dropping the failover term F_s from the uptime model (Equation 3),
//  2. dropping the expected-penalty term from the TCO (Equation 5), and
//  3. the independence assumption, stressed with common-cause shocks.
//
// For each ablation it reports the decision the crippled model makes
// versus the full model's.
func runAblation(reps, years int, seed int64) error {
	header("ABLATION — What each model term buys (and what correlation costs)")
	engine, err := newEngine()
	if err != nil {
		return err
	}
	req := broker.CaseStudy()
	problem, err := engine.Compile(req)
	if err != nil {
		return err
	}
	rec, err := engine.Recommend(context.Background(), req)
	if err != nil {
		return err
	}

	// --- Ablation 1: no failover term (uptime = 1 - B_s only). -------
	fmt.Println("\n[1] uptime model without the failover term F_s (Eq. 3):")
	w := newTable()
	fmt.Fprintln(w, "option\tfull uptime %\tno-Fs uptime %\tTCO full\tTCO no-Fs")
	bestFull, bestAblated := 0, 0
	var bestFullTCO, bestAblatedTCO cost.Money
	for _, card := range rec.Cards {
		sys, err := systemForCard(problem, card)
		if err != nil {
			return err
		}
		noFs := 1 - sys.Breakdown()
		tcoNoFs := cost.Compute(card.HACost, req.SLA, noFs).Total()
		fmt.Fprintf(w, "#%d\t%.4f\t%.4f\t%s\t%s\n",
			card.Option, card.Uptime*100, noFs*100, card.TCO, tcoNoFs)
		if bestFull == 0 || card.TCO < bestFullTCO {
			bestFull, bestFullTCO = card.Option, card.TCO
		}
		if bestAblated == 0 || tcoNoFs < bestAblatedTCO {
			bestAblated, bestAblatedTCO = card.Option, tcoNoFs
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("decision: full model picks #%d, no-Fs model picks #%d — the failover\n", bestFull, bestAblated)
	fmt.Println("term mostly discounts aggressive clustering (ESX's 15-minute failovers).")

	// --- Ablation 2: no penalty term in the TCO. ----------------------
	fmt.Println("\n[2] TCO without the expected-penalty term (Eq. 5 second addend):")
	cheapest := rec.Cards[0]
	for _, card := range rec.Cards {
		if card.HACost < cheapest.HACost {
			cheapest = card
		}
	}
	fmt.Printf("cost-only optimization always picks option #%d (%s, C_HA %s) —\n",
		cheapest.Option, cheapest.Label(), cheapest.HACost)
	fmt.Printf("the full model picks #%d because the penalty coupling prices risk;\n", rec.BestOption)
	fmt.Println("without it the broker degenerates into \"buy nothing\".")

	// --- Ablation 3: independence assumption under shocks. ------------
	fmt.Println("\n[3] independence assumption vs common-cause shocks (Section IV threat):")
	asIs := rec.Cards[rec.AsIsOption-1]
	sys, err := systemForCard(problem, asIs)
	if err != nil {
		return err
	}
	analytic := sys.Uptime()
	w = newTable()
	fmt.Fprintln(w, "shocks/cluster/yr\tanalytic %\tsimulated %\t95% CI ±\tmodel error pp")
	for _, rate := range []float64{0, 2, 6, 12} {
		est, err := failsim.Run(context.Background(), failsim.Config{
			System:        sys,
			Horizon:       time.Duration(years) * 365 * 24 * time.Hour,
			Replications:  reps,
			Seed:          seed + int64(rate*10),
			ShocksPerYear: rate,
			ShockRepair:   2 * time.Hour,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.0f\t%.4f\t%.4f\t%.4f\t%+.4f\n",
			rate, analytic*100, est.Uptime*100, est.CI95()*100, (analytic-est.Uptime)*100)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("the analytic prediction is exact without correlation and optimistic")
	fmt.Println("once shocks couple node failures — the error a broker's long-horizon")
	fmt.Println("telemetry (which observes shocks as inflated P_i) absorbs in practice.")
	return nil
}

// Command failsim runs the Monte-Carlo failure simulator against the
// paper's case-study options and prints the simulated uptime next to
// the analytic model — a command-line version of the VALID experiment.
//
// Usage:
//
//	failsim [-option N] [-years N] [-reps N] [-seed N] [-workers N]
//
// With -option 0 (the default) every option #1..#8 is simulated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/failsim"
	"uptimebroker/internal/optimize"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "failsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("failsim", flag.ContinueOnError)
	var (
		option  = fs.Int("option", 0, "case-study option to simulate (1..8; 0 = all)")
		years   = fs.Int("years", 10, "simulated years per replication")
		reps    = fs.Int("reps", 64, "replications")
		seed    = fs.Int64("seed", 20170611, "RNG seed")
		workers = fs.Int("workers", 0, "concurrent replications (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		return err
	}
	req := broker.CaseStudy()
	problem, err := engine.Compile(req)
	if err != nil {
		return err
	}
	rec, err := engine.Recommend(context.Background(), req)
	if err != nil {
		return err
	}
	if *option < 0 || *option > len(rec.Cards) {
		return fmt.Errorf("option %d out of range [0, %d]", *option, len(rec.Cards))
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "option\tHA selection\tanalytic %\tsimulated %\t95% CI ±\tbreakdown %\tfailover %\tsim-years")
	for _, card := range rec.Cards {
		if *option != 0 && card.Option != *option {
			continue
		}
		sys, err := systemForCard(problem, card)
		if err != nil {
			return err
		}
		est, err := failsim.Run(context.Background(), failsim.Config{
			System:       sys,
			Horizon:      time.Duration(*years) * 365 * 24 * time.Hour,
			Replications: *reps,
			Seed:         *seed + int64(card.Option),
			Workers:      *workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "#%d\t%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.0f\n",
			card.Option, card.Label(), card.Uptime*100, est.Uptime*100, est.CI95()*100,
			est.Breakdown*100, est.Failover*100, est.SimulatedYears)
	}
	return w.Flush()
}

// systemForCard rebuilds the availability system behind an option card
// by matching variant labels.
func systemForCard(problem *optimize.Problem, card broker.OptionCard) (availability.System, error) {
	clusters := make([]availability.Cluster, len(card.Choices))
	for i, choice := range card.Choices {
		wantLabel := choice.TechID
		if wantLabel == "" {
			wantLabel = broker.NoHALabel
		}
		found := false
		for _, v := range problem.Components[i].Variants {
			if v.Label == wantLabel {
				clusters[i] = v.Cluster
				found = true
				break
			}
		}
		if !found {
			return availability.System{}, fmt.Errorf("no variant %q for component %q", wantLabel, choice.Component)
		}
	}
	return availability.System{Clusters: clusters}, nil
}

package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"uptimebroker/internal/httpapi"
	"uptimebroker/internal/obs"
)

// cmdTop is the live terminal dashboard: it consumes the server's
// /v2/metrics/events snapshot stream and redraws in place with plain
// ANSI escapes — no TUI dependency. Rates and percentiles are
// computed client-side from consecutive snapshot deltas, so the
// display shows the current window, not process-lifetime averages.
func cmdTop(ctx context.Context, client *httpapi.Client, args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Hide the cursor and clear once; every frame then homes and
	// overdraws, which is flicker-free on any VT100-compatible
	// terminal. The cursor comes back on any exit path.
	fmt.Print("\x1b[?25l\x1b[2J")
	defer fmt.Print("\x1b[?25h")

	server := client.BaseURL()
	var prev *obs.Snapshot
	err := client.WatchMetrics(ctx, *interval, func(snap obs.Snapshot) {
		renderTop(os.Stdout, server, snap, prev)
		keep := snap
		prev = &keep
	})
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Println()
		return nil
	}
	return err
}

// renderTop draws one dashboard frame. prev is the previous snapshot
// (nil on the first frame), the source of all windowed rates.
func renderTop(w *os.File, server string, snap obs.Snapshot, prev *obs.Snapshot) {
	var b strings.Builder
	b.WriteString("\x1b[H") // home
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\x1b[K\n") // clear to end of line
	}

	dt := 0.0
	if prev != nil {
		dt = snap.Time.Sub(prev.Time).Seconds()
	}
	rate := func(name string) float64 {
		if prev == nil || dt <= 0 {
			return 0
		}
		d := snap.Value(name) - prev.Value(name)
		if d < 0 {
			d = snap.Value(name) // counter reset
		}
		return d / dt
	}

	uptime := "-"
	if start := snap.Value("process_start_time_seconds"); start > 0 {
		age := float64(time.Now().UnixNano())/1e9 - start
		uptime = time.Duration(age * float64(time.Second)).Round(time.Second).String()
	}
	line("uptimebroker top — %s   up %s   %s", server, uptime, snap.Time.Format("15:04:05"))
	if snap.Value("store_degraded") > 0 {
		// Inverse video so the fail-stop latch is impossible to miss.
		line("\x1b[7m DEGRADED \x1b[0m  job store latched read-only after a storage failure — submissions refused, reads still serving")
	}
	line("")

	line("jobs     %3.0f running  %3.0f queued   %.1f done/s   %.0f submitted  %.0f done  %.0f failed",
		snap.Value("jobs_running"), snap.Value("jobs_queue_depth"), rate("jobs_done_total"),
		snap.Value("jobs_submitted_total"), snap.Value("jobs_done_total"), snap.Value("jobs_failed_total"))

	solver := fmt.Sprintf("solver   %s evals/s   %s lookups/s   %.0f total evaluations   %.0f clipped   %.1f runs/s",
		humanRate(rate("broker_evaluations_total")), humanRate(rate("solver_cover_lookups_total")),
		snap.Value("broker_evaluations_total"), snap.Value("solver_clipped_total"), rate("solver_runs_total"))
	if gap, ok := worstSolverGap(snap); ok {
		solver += fmt.Sprintf("   gap %.2f%%", 100*gap)
		if exhausted := snap.Value("solver_budget_exhausted_total"); exhausted > 0 {
			solver += fmt.Sprintf(" (%.0f budget-stopped)", exhausted)
		}
	}
	line("%s", solver)

	hits, misses, shared := snap.Value("reccache_hits_total"), snap.Value("reccache_misses_total"), snap.Value("reccache_shared_total")
	if total := hits + misses + shared; total > 0 {
		wr := windowedHitRate(snap, prev)
		line("cache    %.1f%% hit rate (window %s)   %.0f hits  %.0f misses  %.0f shared   %.0f entries",
			100*(hits+shared)/total, wr, hits, misses, shared, snap.Value("reccache_entries"))
	} else {
		line("cache    (no traffic or disabled)")
	}

	p50, p99 := windowQuantiles(snap, prev, "http_request_seconds")
	line("http     %.1f req/s   %.0f in flight   p50 %s   p99 %s",
		rate("http_requests_total"), snap.Value("http_inflight_requests"), ms(p50), ms(p99))

	f50, f99 := windowQuantiles(snap, prev, "jobstore_wal_fsync_seconds")
	if !math.IsNaN(f50) || snap.Value("jobstore_wal_fsync_seconds") > 0 {
		line("wal      fsync p50 %s   p99 %s   %.1f appends/s", ms(f50), ms(f99), appendRate(snap, prev, dt))
	} else {
		line("wal      (in-memory job store)")
	}
	line("")

	// Route table: busiest first, capped so the frame stays small.
	if fam, ok := snap.Family("http_requests_total"); ok && len(fam.Series) > 0 {
		type row struct {
			route string
			count float64
		}
		rows := make([]row, 0, len(fam.Series))
		for _, s := range fam.Series {
			rows = append(rows, row{route: s.Labels["route"], count: s.Value})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].count != rows[j].count {
				return rows[i].count > rows[j].count
			}
			return rows[i].route < rows[j].route
		})
		if len(rows) > 8 {
			rows = rows[:8]
		}
		line("%-36s %10s", "route", "requests")
		for _, r := range rows {
			line("%-36s %10.0f", r.route, r.count)
		}
	}
	line("")
	line("ctrl-c to quit")
	b.WriteString("\x1b[J") // clear anything below the frame
	fmt.Fprint(w, b.String())
}

// windowQuantiles computes p50/p99 of a histogram family over the
// window between prev and snap (whole history on the first frame).
func windowQuantiles(snap obs.Snapshot, prev *obs.Snapshot, family string) (p50, p99 float64) {
	fam, ok := snap.Family(family)
	if !ok {
		return math.NaN(), math.NaN()
	}
	cur := fam.Merged()
	win := cur
	if prev != nil {
		if pf, ok := prev.Family(family); ok {
			win = obs.Delta(cur, pf.Merged())
		}
	}
	if win.Count == 0 {
		// A quiet window falls back to the lifetime distribution, so
		// the display degrades to averages instead of blanking.
		win = cur
	}
	return obs.Quantile(0.5, win), obs.Quantile(0.99, win)
}

// worstSolverGap reads the solver_gap gauge family — one series per
// approximate strategy that has run — and reports the largest last
// certified gap. Max across series, never a sum: gauges are levels,
// and the operator cares about the worst certificate on display.
func worstSolverGap(snap obs.Snapshot) (gap float64, ok bool) {
	fam, found := snap.Family("solver_gap")
	if !found || len(fam.Series) == 0 {
		return 0, false
	}
	for _, s := range fam.Series {
		if s.Value > gap {
			gap = s.Value
		}
	}
	return gap, true
}

// windowedHitRate renders the cache hit rate across the last window,
// or "-" when the window saw no lookups.
func windowedHitRate(snap obs.Snapshot, prev *obs.Snapshot) string {
	if prev == nil {
		return "-"
	}
	d := func(name string) float64 {
		v := snap.Value(name) - prev.Value(name)
		if v < 0 {
			return 0
		}
		return v
	}
	hits, misses, shared := d("reccache_hits_total"), d("reccache_misses_total"), d("reccache_shared_total")
	total := hits + misses + shared
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*(hits+shared)/total)
}

// appendRate is the WAL append throughput over the window, read from
// the append histogram's _count.
func appendRate(snap obs.Snapshot, prev *obs.Snapshot, dt float64) float64 {
	fam, ok := snap.Family("jobstore_wal_append_seconds")
	if !ok || prev == nil || dt <= 0 {
		return 0
	}
	pf, ok := prev.Family("jobstore_wal_append_seconds")
	if !ok {
		return float64(fam.Merged().Count) / dt
	}
	cur, old := fam.Merged().Count, pf.Merged().Count
	if old > cur {
		old = 0
	}
	return float64(cur-old) / dt
}

// ms renders a seconds quantile as a human latency, "-" when unknown.
func ms(seconds float64) string {
	if math.IsNaN(seconds) {
		return "-"
	}
	switch {
	case seconds < 0.001:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.1fms", seconds*1e3)
	}
	return fmt.Sprintf("%.2fs", seconds)
}

// humanRate compacts large per-second rates (evals/sec reaches
// millions on wide searches).
func humanRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.1f", v)
}

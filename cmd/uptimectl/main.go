// Command uptimectl is the CLI client for a running brokerd.
//
// Usage:
//
//	uptimectl -server http://localhost:8080 <subcommand> [flags]
//
// Subcommands:
//
//	recommend   submit a recommendation request (-topology file.json or
//	            -casestudy; -strategy picks the solver, -pricing the
//	            card-pricing mode; -budget/-max-evaluations cap an
//	            anytime search, -beam-width/-max-discrepancies/-epsilon
//	            tune one; -local -format text|markdown|csv runs the
//	            brokerage in-process)
//	pareto      print the cost × uptime frontier for a request
//	job         async brokerage over /v2/jobs:
//	              job submit -kind recommend|pareto (-topology|-casestudy)
//	                         [-strategy S] [-pricing M] [-budget D]
//	                         [-beam-width N] [-epsilon E] [-wait] [-quiet]
//	              job status JOB-ID
//	              job wait   [-quiet] JOB-ID   (streams evaluated/space_size
//	                         progress to stderr unless -quiet)
//	              job cancel JOB-ID
//	              job list   [-state STATE] [-limit N]
//	scenarios   list the built-in scenario library, or -run NAME one
//	catalog     list the HA technologies and providers
//	params      show the parameter estimate for -provider and -class
//	observe     submit one telemetry observation
//	metrics     show job and result-cache counters, the invalidation
//	            epochs and the server's build info
//	top         live terminal dashboard over the /v2/metrics/events
//	            stream (-interval sets the refresh cadence)
//	health      check service liveness
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/httpapi"
	"uptimebroker/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "uptimectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("uptimectl", flag.ContinueOnError)
	var (
		server  = fs.String("server", "http://127.0.0.1:8080", "brokerd base URL")
		timeout = fs.Duration("timeout", 30*time.Second, "request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand (recommend, pareto, job, scenarios, catalog, params, observe, metrics, top, health)")
	}

	client, err := httpapi.NewClient(*server, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch rest[0] {
	case "recommend":
		return cmdRecommend(ctx, client, rest[1:])
	case "pareto":
		return cmdPareto(ctx, client, rest[1:])
	case "job":
		return cmdJob(ctx, client, rest[1:])
	case "catalog":
		return cmdCatalog(ctx, client)
	case "scenarios":
		return cmdScenarios(ctx, client, rest[1:])
	case "params":
		return cmdParams(ctx, client, rest[1:])
	case "observe":
		return cmdObserve(ctx, client, rest[1:])
	case "metrics":
		return cmdMetrics(ctx, client)
	case "top":
		// The dashboard runs until interrupted, so it gets a
		// signal-scoped context instead of the request timeout.
		topCtx, topCancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer topCancel()
		return cmdTop(topCtx, client, rest[1:])
	case "health":
		if err := client.Health(ctx); err != nil {
			return err
		}
		fmt.Println("ok")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// loadRequest resolves the request from -casestudy / -topology flags;
// a non-empty strategy or pricing mode overrides whatever the
// topology file carries.
func loadRequest(topologyPath string, caseStudy bool, strategy, pricing string) (httpapi.RecommendationRequest, error) {
	var req httpapi.RecommendationRequest
	switch {
	case caseStudy:
		req = caseStudyRequest()
	case topologyPath != "":
		data, err := os.ReadFile(topologyPath)
		if err != nil {
			return req, fmt.Errorf("reading topology: %w", err)
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return req, fmt.Errorf("parsing topology: %w", err)
		}
	default:
		return req, fmt.Errorf("need -topology FILE or -casestudy")
	}
	if strategy != "" {
		req.Strategy = strategy
	}
	if pricing != "" {
		req.Pricing = pricing
	}
	return req, nil
}

// strategyUsage and pricingUsage document the flags shared by the
// request subcommands.
const (
	strategyUsage = "solver strategy: auto (default), the exact exhaustive, pruned, branch-and-bound or parallel-pruned, or the anytime beam, lds or bounded"
	pricingUsage  = "card-pricing mode: auto (server default), parallel or sequential"
)

// solverFlags are the anytime-lane knobs shared by recommend, pareto
// and job submit. They populate the request's nested solver spec only
// when set, so flag-less invocations keep the flat wire form (and its
// cache address) untouched.
type solverFlags struct {
	budget    time.Duration
	maxEvals  int64
	beamWidth int
	maxDisc   int
	epsilon   float64
}

// registerSolverFlags attaches the shared anytime flags to fs.
func registerSolverFlags(fs *flag.FlagSet) *solverFlags {
	sf := &solverFlags{}
	fs.DurationVar(&sf.budget, "budget", 0, "wall-clock search budget, e.g. 500ms; anytime strategies stop and certify a gap (0 = unlimited)")
	fs.Int64Var(&sf.maxEvals, "max-evaluations", 0, "cap on candidates the search prices; anytime strategies only (0 = unlimited)")
	fs.IntVar(&sf.beamWidth, "beam-width", 0, "beam strategy: survivors kept per level (0 = server default)")
	fs.IntVar(&sf.maxDisc, "max-discrepancies", 0, "lds strategy: discrepancy budget (0 = server default)")
	fs.Float64Var(&sf.epsilon, "epsilon", 0, "bounded strategy: admissible suboptimality fraction in [0,1] (0 = server default)")
	return sf
}

// apply folds any set flags into the request's nested solver spec.
func (sf *solverFlags) apply(req *httpapi.RecommendationRequest) {
	if sf.budget == 0 && sf.maxEvals == 0 && sf.beamWidth == 0 && sf.maxDisc == 0 && sf.epsilon == 0 {
		return
	}
	if req.Solver == nil {
		req.Solver = &httpapi.SolverConfigDTO{}
	}
	if sf.budget != 0 {
		req.Solver.BudgetMS = sf.budget.Milliseconds()
	}
	if sf.maxEvals != 0 {
		req.Solver.MaxEvaluations = sf.maxEvals
	}
	if sf.beamWidth != 0 {
		req.Solver.BeamWidth = sf.beamWidth
	}
	if sf.maxDisc != 0 {
		req.Solver.MaxDiscrepancies = sf.maxDisc
	}
	if sf.epsilon != 0 {
		req.Solver.Epsilon = sf.epsilon
	}
}

func cmdRecommend(ctx context.Context, client *httpapi.Client, args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
	var (
		topologyPath = fs.String("topology", "", "path to a recommendation request JSON file")
		caseStudy    = fs.Bool("casestudy", false, "use the paper's built-in case study request")
		strategy     = fs.String("strategy", "", strategyUsage)
		pricing      = fs.String("pricing", "", pricingUsage)
		local        = fs.Bool("local", false, "run the brokerage in-process instead of calling a server")
		format       = fs.String("format", "text", "output format with -local: text, markdown or csv")
	)
	solver := registerSolverFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := loadRequest(*topologyPath, *caseStudy, *strategy, *pricing)
	if err != nil {
		return err
	}
	solver.apply(&req)

	if *local {
		return recommendLocal(req, *format)
	}
	resp, err := client.Recommend(ctx, req)
	if err != nil {
		return err
	}
	return printRecommendation(resp)
}

// recommendLocal runs the default in-process engine and renders via
// the report package.
func recommendLocal(req httpapi.RecommendationRequest, format string) error {
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		return err
	}
	rec, err := engine.Recommend(context.Background(), req.ToBroker())
	if err != nil {
		return err
	}
	switch format {
	case "text":
		return report.Text(os.Stdout, rec)
	case "markdown":
		return report.Markdown(os.Stdout, rec)
	case "csv":
		return report.CSV(os.Stdout, rec)
	default:
		return fmt.Errorf("unknown format %q (text, markdown, csv)", format)
	}
}

func cmdPareto(ctx context.Context, client *httpapi.Client, args []string) error {
	fs := flag.NewFlagSet("pareto", flag.ContinueOnError)
	var (
		topologyPath = fs.String("topology", "", "path to a recommendation request JSON file")
		caseStudy    = fs.Bool("casestudy", false, "use the paper's built-in case study request")
		strategy     = fs.String("strategy", "", strategyUsage)
		pricing      = fs.String("pricing", "", pricingUsage)
	)
	solver := registerSolverFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := loadRequest(*topologyPath, *caseStudy, *strategy, *pricing)
	if err != nil {
		return err
	}
	solver.apply(&req)
	front, err := client.Pareto(ctx, req)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "option\tHA selection\tC_HA $/mo\tuptime %")
	for _, c := range front {
		fmt.Fprintf(w, "#%d\t%s\t%.2f\t%.4f\n", c.Option, c.Label, c.HACostUSD, c.UptimePercent)
	}
	return w.Flush()
}

func printRecommendation(resp httpapi.RecommendationResponse) error {
	fmt.Printf("system %q on %s — SLA %.2f%%\n\n", resp.System, resp.Provider, resp.SLAPercent)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "option\tHA selection\tC_HA $/mo\tuptime %\tpenalty $/mo\tTCO $/mo\tmeets SLA")
	for _, c := range resp.Cards {
		marker := ""
		if c.Option == resp.BestOption {
			marker = " *"
		}
		fmt.Fprintf(w, "#%d%s\t%s\t%.2f\t%.4f\t%.2f\t%.2f\t%v\n",
			c.Option, marker, c.Label, c.HACostUSD, c.UptimePercent, c.PenaltyUSD, c.TCOUSD, c.MeetsSLA)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nrecommended: option #%d", resp.BestOption)
	if resp.MinRiskOption > 0 {
		fmt.Printf("   min-risk: option #%d", resp.MinRiskOption)
	}
	if resp.AsIsOption > 0 {
		fmt.Printf("   as-is: option #%d (savings %.1f%%)", resp.AsIsOption, resp.SavingsPercent)
	}
	fmt.Println()
	strategy := resp.Search.Strategy
	if strategy == "" {
		strategy = "unknown" // pre-strategy server
	}
	fmt.Printf("search: %s solver, %d evaluated + %d skipped of %d\n",
		strategy, resp.Search.Evaluated, resp.Search.Skipped, resp.Search.SpaceSize)
	if resp.Search.Approximate {
		cert := "no lower bound proven"
		switch {
		case resp.Search.Optimal != nil && *resp.Search.Optimal:
			cert = "proven optimal"
		case resp.Search.Gap != nil:
			cert = fmt.Sprintf("within %.2f%% of optimal", 100**resp.Search.Gap)
		}
		if resp.Search.BoundUSD != nil {
			cert += fmt.Sprintf(" (certified bound $%.2f/mo)", *resp.Search.BoundUSD)
		}
		if resp.Search.BudgetExhausted != nil && *resp.Search.BudgetExhausted {
			cert += ", budget exhausted"
		}
		fmt.Printf("certificate: %s\n", cert)
	}
	if resp.Cache != "" {
		fmt.Printf("cache: %s\n", resp.Cache)
	}
	return nil
}

// cmdMetrics prints the server's operational counters: async job
// metrics always, result-cache counters and epochs when the server
// caches.
func cmdMetrics(ctx context.Context, client *httpapi.Client) error {
	m, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	if m.Jobs.Degraded {
		fmt.Println("store: DEGRADED — read-only after a storage failure; submissions refused, reads still serving")
	}
	fmt.Printf("jobs: %d submitted, %d done, %d failed, %d cancelled, queue depth %d\n",
		m.Jobs.Submitted, m.Jobs.Done, m.Jobs.Failed, m.Jobs.Cancelled, m.Jobs.QueueDepth)
	fmt.Printf("catalog epoch: %d\n", m.CatalogEpoch)
	if m.ParamsEpoch != nil {
		fmt.Printf("params epoch: %d\n", *m.ParamsEpoch)
	}
	if m.Cache == nil {
		fmt.Println("result cache: disabled")
	} else {
		c := m.Cache
		fmt.Printf("result cache: %d hits, %d misses, %d shared (hit rate %.1f%%), %d inflight\n",
			c.Hits, c.Misses, c.Shared, 100*c.HitRate, c.Inflight)
		fmt.Printf("occupancy: %d entries, ~%d bytes (%d evicted, %d expired)\n",
			c.Entries, c.Bytes, c.Evictions, c.Expired)
	}
	printBuildInfo(m)
	return nil
}

// printBuildInfo appends the server's identity lines when the server
// reports them (older servers omit the field).
func printBuildInfo(m httpapi.MetricsResponse) {
	if m.RateLimiter != nil {
		fmt.Printf("rate limiter: %d client buckets\n", m.RateLimiter.ClientBuckets)
	}
	if m.Build == nil {
		return
	}
	fmt.Printf("build: %s (%s)\n", m.Build.Version, m.Build.GoVersion)
	fmt.Printf("up: %s (started %s)\n",
		(time.Duration(m.Build.UptimeSeconds) * time.Second).Round(time.Second),
		m.Build.StartedAt.Local().Format(time.RFC3339))
}

func cmdCatalog(ctx context.Context, client *httpapi.Client) error {
	techs, err := client.Technologies(ctx)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "id\tlayer\tmode\tstandby\tfailover s\tinfra $/mo\tlabor h/mo")
	for _, t := range techs {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%.0f\t%.0f+%.0f/standby\t%.0f\n",
			t.ID, t.Layer, t.Mode, t.StandbyNodes, t.FailoverSeconds,
			t.InfraFixedUSD, t.InfraPerStandbyUSD, t.LaborHoursPerMonth)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	providers, err := client.Providers(ctx)
	if err != nil {
		return err
	}
	fmt.Println()
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "provider\tdisplay name\tlabor $/h\tinfra multiplier")
	for _, p := range providers {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.2f\n", p.Name, p.DisplayName, p.LaborRateUSD, p.InfraMultiplier)
	}
	return w.Flush()
}

func cmdScenarios(ctx context.Context, client *httpapi.Client, args []string) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	var (
		provider = fs.String("provider", "", "provider to place scenarios on (default: reference cloud)")
		run      = fs.String("run", "", "run the brokerage on the named scenario instead of listing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *run != "" {
		resp, err := client.ScenarioRecommendation(ctx, *run, *provider)
		if err != nil {
			return err
		}
		return printRecommendation(resp)
	}

	scenarios, err := client.Scenarios(ctx, *provider)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "name\tcomponents\tSLA %\tpenalty $/h\tdescription")
	for _, sc := range scenarios {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.0f\t%s\n",
			sc.Name, sc.Components, sc.SLAPercent, sc.PenaltyPerHourUSD, sc.Description)
	}
	return w.Flush()
}

func cmdParams(ctx context.Context, client *httpapi.Client, args []string) error {
	fs := flag.NewFlagSet("params", flag.ContinueOnError)
	var (
		provider = fs.String("provider", "", "provider name")
		class    = fs.String("class", "", "component class")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *provider == "" || *class == "" {
		return fmt.Errorf("params needs -provider and -class")
	}
	p, err := client.Params(ctx, *provider, *class)
	if err != nil {
		return err
	}
	fmt.Printf("%s/%s (source: %s)\n", p.Provider, p.Class, p.Source)
	fmt.Printf("  P (down probability):  %.6f\n", p.Down)
	fmt.Printf("  f (failures/year):     %.2f\n", p.FailuresPerYear)
	if p.FailoverSeconds > 0 {
		fmt.Printf("  t (mean failover):     %.0fs (p95 %.0fs)\n", p.FailoverSeconds, p.FailoverP95Seconds)
	}
	if p.ExposureYears > 0 {
		fmt.Printf("  exposure:              %.1f node-years\n", p.ExposureYears)
	}
	return nil
}

func cmdObserve(ctx context.Context, client *httpapi.Client, args []string) error {
	fs := flag.NewFlagSet("observe", flag.ContinueOnError)
	var (
		provider = fs.String("provider", "", "provider name")
		class    = fs.String("class", "", "component class")
		kind     = fs.String("kind", "", "outage, failover or exposure")
		seconds  = fs.Float64("seconds", 0, "observation magnitude in seconds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obs := httpapi.Observation{Provider: *provider, Class: *class, Kind: *kind, Seconds: *seconds}
	if err := client.Observe(ctx, obs); err != nil {
		return err
	}
	fmt.Println("recorded")
	return nil
}

// caseStudyRequest is the wire form of the paper's case study.
func caseStudyRequest() httpapi.RecommendationRequest {
	cs := broker.CaseStudy()
	return httpapi.RecommendationRequest{
		Base:              cs.Base,
		SLAPercent:        cs.SLA.UptimePercent,
		PenaltyPerHourUSD: cs.SLA.Penalty.PerHour.Dollars(),
		AsIs:              map[string]string(cs.AsIs),
		AllowedTechs:      cs.AllowedTechs,
	}
}

// cmdJob drives the v2 async job surface.
func cmdJob(ctx context.Context, client *httpapi.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("job needs a subcommand (submit, status, wait, cancel, list)")
	}
	switch args[0] {
	case "submit":
		fs := flag.NewFlagSet("job submit", flag.ContinueOnError)
		var (
			kind         = fs.String("kind", "recommend", "job kind: recommend or pareto")
			topologyPath = fs.String("topology", "", "path to a recommendation request JSON file")
			caseStudy    = fs.Bool("casestudy", false, "use the paper's built-in case study request")
			strategy     = fs.String("strategy", "", strategyUsage)
			pricing      = fs.String("pricing", "", pricingUsage)
			wait         = fs.Bool("wait", false, "block until the job finishes and print its result")
			quiet        = fs.Bool("quiet", false, "with -wait: suppress the live progress display")
		)
		solver := registerSolverFlags(fs)
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		req, err := loadRequest(*topologyPath, *caseStudy, *strategy, *pricing)
		if err != nil {
			return err
		}
		solver.apply(&req)
		status, err := client.SubmitJob(ctx, *kind, req)
		if err != nil {
			return err
		}
		if !*wait {
			fmt.Printf("%s %s (%s)\n", status.ID, status.State, status.Kind)
			return nil
		}
		return waitJobVerbose(ctx, client, status.ID, *quiet)
	case "status":
		if len(args) != 2 {
			return fmt.Errorf("usage: job status JOB-ID")
		}
		status, err := client.GetJob(ctx, args[1])
		if err != nil {
			return err
		}
		return printJob(status, false)
	case "wait":
		fs := flag.NewFlagSet("job wait", flag.ContinueOnError)
		quiet := fs.Bool("quiet", false, "suppress the live progress display on stderr")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: job wait [-quiet] JOB-ID")
		}
		return waitJobVerbose(ctx, client, fs.Arg(0), *quiet)
	case "cancel":
		if len(args) != 2 {
			return fmt.Errorf("usage: job cancel JOB-ID")
		}
		status, err := client.CancelJob(ctx, args[1])
		if err != nil {
			return err
		}
		return printJob(status, false)
	case "list":
		fs := flag.NewFlagSet("job list", flag.ContinueOnError)
		var (
			state = fs.String("state", "", "only list jobs in this state (queued, running, done, failed, cancelled)")
			limit = fs.Int("limit", 0, "list at most N jobs, newest first (0 = all)")
		)
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		jobsList, err := client.ListJobs(ctx, httpapi.WithStateFilter(*state), httpapi.WithLimit(*limit))
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "id\tkind\tstate\tprogress\tcreated")
		for _, j := range jobsList {
			progress := "-"
			if j.Progress != nil {
				progress = fmt.Sprintf("%.1f%%", j.Progress.Percent)
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", j.ID, j.Kind, j.State, progress, j.CreatedAt.Format(time.RFC3339))
		}
		return w.Flush()
	default:
		return fmt.Errorf("unknown job subcommand %q (submit, status, wait, cancel, list)", args[0])
	}
}

// waitJobVerbose waits for a job, streaming live progress
// (evaluated/space_size with a percentage) to stderr so a long
// enumeration is not a silent stall; -quiet suppresses the display.
// The rendered result goes to stdout as usual, so piping it stays
// clean either way.
func waitJobVerbose(ctx context.Context, client *httpapi.Client, id string, quiet bool) error {
	var opts []httpapi.WaitOption
	shown := false
	if !quiet {
		opts = append(opts, httpapi.WithProgress(func(p httpapi.JobProgress) {
			solver := ""
			if p.Strategy != "" {
				solver = " [" + p.Strategy + "]"
			}
			if p.SpaceSize > 0 {
				fmt.Fprintf(os.Stderr, "\r%s %s%s: %d/%d evaluated (%.1f%%)  ",
					p.JobID, p.State, solver, p.Evaluated, p.SpaceSize, 100*p.Fraction())
			} else {
				fmt.Fprintf(os.Stderr, "\r%s %s%s...  ", p.JobID, p.State, solver)
			}
			shown = true
		}))
	}
	status, err := client.WaitJob(ctx, id, opts...)
	if shown {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return err
	}
	return printJob(status, true)
}

// printJob renders one job; withResult also renders a finished
// recommend/pareto payload. When the caller waited for an outcome
// (withResult), a failed or cancelled job is a non-zero exit so
// scripts can trust the status code.
func printJob(status httpapi.JobStatus, withResult bool) error {
	fmt.Printf("%s %s (%s)\n", status.ID, status.State, status.Kind)
	if status.Error != nil {
		fmt.Printf("  error: %s (%s)\n", status.Error.Detail, status.Error.Code)
	}
	if !withResult {
		return nil
	}
	if status.State != "done" {
		return fmt.Errorf("job %s finished as %s", status.ID, status.State)
	}
	switch status.Kind {
	case httpapi.JobKindRecommend:
		resp, err := status.Recommendation()
		if err != nil {
			return err
		}
		fmt.Println()
		return printRecommendation(resp)
	case httpapi.JobKindPareto:
		front, err := status.ParetoFront()
		if err != nil {
			return err
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "option\tHA selection\tC_HA $/mo\tuptime %")
		for _, c := range front {
			fmt.Fprintf(w, "#%d\t%s\t%.2f\t%.4f\n", c.Option, c.Label, c.HACostUSD, c.UptimePercent)
		}
		return w.Flush()
	}
	return nil
}

package uptimebroker

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/failsim"
	"uptimebroker/internal/httpapi"
	"uptimebroker/internal/lifecycle"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/report"
	"uptimebroker/internal/telemetry"
	"uptimebroker/internal/topology"

	"net/http/httptest"
)

// ---------------------------------------------------------------------------
// FIG3–FIG9: pricing all eight option cards of the case study.
// ---------------------------------------------------------------------------

func BenchmarkOptionCards(b *testing.B) {
	engine := mustEngine(b)
	req := broker.CaseStudy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := engine.Recommend(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Cards) != 8 {
			b.Fatal("wrong card count")
		}
	}
}

// ---------------------------------------------------------------------------
// FIG10: the summary decision (best / min-risk / savings).
// ---------------------------------------------------------------------------

func BenchmarkCaseStudySummary(b *testing.B) {
	engine := mustEngine(b)
	req := broker.CaseStudy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := engine.Recommend(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if rec.BestOption != 3 || rec.MinRiskOption != 5 {
			b.Fatalf("case study shape broke: best=%d minrisk=%d", rec.BestOption, rec.MinRiskOption)
		}
	}
}

// ---------------------------------------------------------------------------
// TAB-SLA: recommendation across the SLA / penalty grid.
// ---------------------------------------------------------------------------

func BenchmarkSLASweep(b *testing.B) {
	engine := mustEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, slaPct := range []float64{95, 98, 99.5} {
			for _, perHour := range []float64{50, 400} {
				req := broker.CaseStudy()
				req.SLA = cost.SLA{UptimePercent: slaPct, Penalty: cost.Penalty{PerHour: cost.Dollars(perHour)}}
				if _, err := engine.Recommend(context.Background(), req); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// COMPLEX: Section III.C — exhaustive vs pruned vs branch-and-bound.
// ---------------------------------------------------------------------------

func BenchmarkExhaustive(b *testing.B) {
	for _, shape := range []struct{ n, k int }{{6, 2}, {10, 2}, {6, 4}, {8, 3}} {
		b.Run(fmt.Sprintf("n=%d_k=%d", shape.n, shape.k), func(b *testing.B) {
			p := syntheticProblem(shape.n, shape.k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Exhaustive(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPruned(b *testing.B) {
	for _, shape := range []struct{ n, k int }{{6, 2}, {10, 2}, {6, 4}, {8, 3}} {
		b.Run(fmt.Sprintf("n=%d_k=%d", shape.n, shape.k), func(b *testing.B) {
			p := syntheticProblem(shape.n, shape.k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Pruned(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	for _, shape := range []struct{ n, k int }{{10, 2}, {8, 3}} {
		b.Run(fmt.Sprintf("n=%d_k=%d", shape.n, shape.k), func(b *testing.B) {
			p := syntheticProblem(shape.n, shape.k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.BranchAndBound(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// GREEDY: the hill-climbing baseline vs the exact searches.
// ---------------------------------------------------------------------------

func BenchmarkGreedy(b *testing.B) {
	for _, shape := range []struct{ n, k int }{{10, 2}, {8, 3}} {
		b.Run(fmt.Sprintf("n=%d_k=%d", shape.n, shape.k), func(b *testing.B) {
			p := syntheticProblem(shape.n, shape.k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Greedy(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Pareto frontier extraction from a full card set.
// ---------------------------------------------------------------------------

func BenchmarkPareto(b *testing.B) {
	engine := mustEngine(b)
	req := broker.FutureWork(catalog.ProviderSoftLayerSim) // 270 cards
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front, err := engine.Pareto(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if len(front) == 0 {
			b.Fatal("empty frontier")
		}
	}
}

// ---------------------------------------------------------------------------
// LIFECYCLE: one observe-then-reoptimize epoch.
// ---------------------------------------------------------------------------

func BenchmarkLifecycleEpoch(b *testing.B) {
	req := broker.CaseStudy()
	truth, ids, err := lifecycle.TruthFromComponents(req, []availability.NodeParams{
		{Down: 0.0055, FailuresPerYear: 5},
		{Down: 0.0200, FailuresPerYear: 3},
		{Down: 0.0146, FailuresPerYear: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := lifecycle.Config{
		Catalog:          catalog.Default(),
		Request:          req,
		Truth:            truth,
		IDs:              ids,
		Epochs:           1,
		EpochLength:      365 * 24 * time.Hour,
		MinExposureYears: 1,
		Seed:             3,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lifecycle.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Report rendering.
// ---------------------------------------------------------------------------

func BenchmarkReportText(b *testing.B) {
	engine := mustEngine(b)
	rec, err := engine.Recommend(context.Background(), broker.CaseStudy())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := report.Text(&sb, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// VALID: the Monte-Carlo simulator that validates Equations 1–4.
// ---------------------------------------------------------------------------

func BenchmarkFailsim(b *testing.B) {
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "compute", Nodes: 4, Tolerated: 1, NodeDown: 0.0055, FailuresPerYear: 5, Failover: 15 * time.Minute},
		{Name: "storage", Nodes: 2, Tolerated: 1, NodeDown: 0.02, FailuresPerYear: 3, Failover: time.Minute},
		{Name: "network", Nodes: 2, Tolerated: 1, NodeDown: 0.0146, FailuresPerYear: 4, Failover: 2 * time.Minute},
	}}
	cfg := failsim.Config{
		System:       sys,
		Horizon:      365 * 24 * time.Hour,
		Replications: 8,
		Seed:         1,
		Workers:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := failsim.Run(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// FUTURE: the Section V extended-catalog search (270 options).
// ---------------------------------------------------------------------------

func BenchmarkFutureWork(b *testing.B) {
	engine := mustEngine(b)
	req := broker.FutureWork(catalog.ProviderSoftLayerSim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Recommend(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// HYBRID: quoting one workload across the three-cloud portfolio.
// ---------------------------------------------------------------------------

func BenchmarkHybridQuotes(b *testing.B) {
	engine := mustEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, provider := range []string{catalog.ProviderSoftLayerSim, catalog.ProviderNimbus, catalog.ProviderStratus} {
			req := broker.CaseStudy()
			req.Base = topology.ThreeTier(provider)
			req.AsIs = nil
			if _, err := engine.Recommend(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// FIG2: the brokered-service flow over HTTP (request in, cards out).
// ---------------------------------------------------------------------------

func BenchmarkHTTPRecommend(b *testing.B) {
	engine := mustEngine(b)
	srv, err := httpapi.NewServer(engine, telemetry.NewStore(), nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := httpapi.NewClient(ts.URL, ts.Client())
	if err != nil {
		b.Fatal(err)
	}
	cs := broker.CaseStudy()
	req := httpapi.RecommendationRequest{
		Base:              cs.Base,
		SLAPercent:        cs.SLA.UptimePercent,
		PenaltyPerHourUSD: cs.SLA.Penalty.PerHour.Dollars(),
		AsIs:              map[string]string(cs.AsIs),
		AllowedTechs:      cs.AllowedTechs,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Recommend(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.BestOption != 3 {
			b.Fatal("wrong recommendation over HTTP")
		}
	}
}

// ---------------------------------------------------------------------------
// Model micro-benchmarks: the hot paths under every experiment.
// ---------------------------------------------------------------------------

func BenchmarkUptimeEquation(b *testing.B) {
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "compute", Nodes: 4, Tolerated: 1, NodeDown: 0.0055, FailuresPerYear: 5, Failover: 15 * time.Minute},
		{Name: "storage", Nodes: 2, Tolerated: 1, NodeDown: 0.02, FailuresPerYear: 3, Failover: time.Minute},
		{Name: "network", Nodes: 2, Tolerated: 1, NodeDown: 0.0146, FailuresPerYear: 4, Failover: 2 * time.Minute},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if u := sys.Uptime(); u <= 0 {
			b.Fatal("bad uptime")
		}
	}
}

func BenchmarkBinomialTail(b *testing.B) {
	c := availability.Cluster{Name: "c", Nodes: 16, Tolerated: 4, NodeDown: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := c.UpProbability(); p <= 0 {
			b.Fatal("bad probability")
		}
	}
}

func BenchmarkTelemetryEstimate(b *testing.B) {
	store := telemetry.NewStore()
	if err := store.RecordExposure("p", "c", 100*365*24*time.Hour); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := store.RecordOutage("p", "c", time.Hour); err != nil {
			b.Fatal(err)
		}
		if err := store.RecordFailover("p", "c", time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Estimate("p", "c"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func mustEngine(tb testing.TB) *broker.Engine {
	tb.Helper()
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		tb.Fatal(err)
	}
	return engine
}

// syntheticProblem mirrors cmd/experiments' synthetic instance builder
// so COMPLEX benchmarks and tables measure the same workload.
func syntheticProblem(n, k int) *optimize.Problem {
	comps := make([]optimize.ComponentChoices, n)
	for i := range comps {
		variants := make([]optimize.Variant, k)
		variants[0] = optimize.Variant{
			Label:   "none",
			Cluster: availability.Cluster{Name: "c", Nodes: 2, Tolerated: 0, NodeDown: 0.004},
		}
		for v := 1; v < k; v++ {
			variants[v] = optimize.Variant{
				Label: fmt.Sprintf("ha%d", v),
				Cluster: availability.Cluster{
					Name: "c", Nodes: 2 + v, Tolerated: v, NodeDown: 0.004,
					FailuresPerYear: 4, Failover: 3 * time.Minute,
				},
				MonthlyCost: cost.Dollars(float64(200 * v)),
			}
		}
		comps[i] = optimize.ComponentChoices{Name: fmt.Sprintf("c%d", i), Variants: variants}
	}
	return &optimize.Problem{
		Components: comps,
		SLA:        cost.SLA{UptimePercent: 97, Penalty: cost.Penalty{PerHour: cost.Dollars(150)}},
	}
}

// Package faultfs is the injectable filesystem seam under the
// durability layer. Storage code that opens, writes, syncs, renames
// and truncates files does so through the FS interface instead of the
// os package, which makes failure a first-class, testable input:
//
//   - OS returns the real filesystem, byte-for-byte what the os
//     package does plus SyncDir (the parent-directory fsync POSIX
//     requires for a rename to survive power loss).
//   - Mem is a simulated disk that distinguishes written state from
//     durable (synced) state, so a test can crash it at any point and
//     recover from exactly what a power loss would have left behind —
//     including torn tails and un-fsynced renames.
//   - Injector wraps any FS with scripted faults: fail the Nth fsync,
//     short-write at byte K, ENOSPC after M bytes, and a crash point
//     that halts the simulated process at every write/sync/rename
//     boundary.
//
// The jobstore's write-ahead log accepts an FS via
// jobstore.WithFS, which is how the crash-enumeration suite walks
// every crash point of an append/compact/recover workload and how
// degraded-mode tests latch the store with deterministic storage
// failures.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the handle surface storage code needs: sequential reads,
// writes, fsync, truncate and seek. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Closer

	// Name returns the path the file was opened as.
	Name() string

	// Sync flushes the file's data (and its own metadata) to stable
	// storage. On the simulated disk it is the durability boundary:
	// only synced bytes survive a crash.
	Sync() error

	// Truncate changes the file's size. Like any metadata change it is
	// durable only after a Sync.
	Truncate(size int64) error

	// Seek repositions the handle's offset.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem seam: every operation the durability layer
// performs on the filesystem namespace.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics (O_CREATE,
	// O_APPEND, O_TRUNC, O_RDONLY, O_WRONLY honored).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)

	// CreateTemp creates a new unique file in dir, os.CreateTemp
	// semantics.
	CreateTemp(dir, pattern string) (File, error)

	// Rename atomically replaces newpath with oldpath. The rename is
	// visible immediately but durable across power loss only after
	// SyncDir on the parent directory.
	Rename(oldpath, newpath string) error

	// Remove deletes name.
	Remove(name string) error

	// MkdirAll creates dir and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error

	// SyncDir fsyncs the directory itself, making completed namespace
	// changes (renames) durable.
	SyncDir(path string) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem: the os package behind the FS
// interface, plus SyncDir as an open-fsync-close of the directory.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

package faultfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
	"syscall"

	"uptimebroker/internal/obs"
)

// ErrCrashed is returned by every operation once an Injector's crash
// point has fired: the simulated process has halted mid-workload and
// nothing more reaches the disk. Recovery happens on a fresh FS (for
// Mem, the image returned by Crash), never through the dead injector.
var ErrCrashed = errors.New("faultfs: simulated crash")

// ErrShortWrite marks an injected partial write. It wraps
// io.ErrShortWrite so callers can classify it generically.
var ErrShortWrite = fmt.Errorf("faultfs: injected short write: %w", io.ErrShortWrite)

// ErrNoSpace marks an injected disk-full condition. It wraps
// syscall.ENOSPC so errors.Is(err, syscall.ENOSPC) holds, exactly as
// it would for the real thing.
var ErrNoSpace = fmt.Errorf("faultfs: injected disk full: %w", syscall.ENOSPC)

// Injector wraps an FS with scripted faults. The mutation boundaries —
// Write, Sync, SyncDir, Rename, Truncate — are numbered in execution
// order (1-based), which gives tests two deterministic levers:
//
//   - CrashAt(n) halts the simulated process at boundary n: the
//     operation does not execute, and every later call on any file
//     fails with ErrCrashed. Walking n over a workload's full
//     boundary count enumerates every possible crash point.
//   - FailSync / ShortWriteAt / ENOSPCAfter return errors without
//     halting, for exercising error-path handling (degraded-mode
//     latching) rather than power loss.
//
// An Injector is safe for concurrent use if the wrapped FS is.
type Injector struct {
	inner FS

	mu      sync.Mutex
	crashed bool
	ops     int   // mutation boundaries seen so far
	syncs   int   // Sync + SyncDir calls seen so far
	bytes   int64 // cumulative bytes handed to Write

	crashAt     int // halt at this boundary; 0 = never
	failSyncN   int // fail this (1-based) sync; 0 = never
	failSyncErr error
	shortAt     int64 // cut the write crossing this byte offset; -1 = never
	enospcAfter int64 // fail writes past this many bytes; -1 = never

	faults  int64
	counter *obs.Counter
}

// InjectorOption configures an Injector.
type InjectorOption func(*Injector)

// CrashAt halts the simulated process at the n-th (1-based) mutation
// boundary: that operation and everything after it fail with
// ErrCrashed and never reach the wrapped FS.
func CrashAt(n int) InjectorOption {
	return func(in *Injector) { in.crashAt = n }
}

// FailSync makes the n-th (1-based) Sync or SyncDir call return err
// without flushing. Later syncs succeed again — fsync failure is a
// one-shot event the durability layer must treat as fatal on its own.
func FailSync(n int, err error) InjectorOption {
	return func(in *Injector) { in.failSyncN = n; in.failSyncErr = err }
}

// ShortWriteAt cuts the write that crosses cumulative byte offset k:
// only the prefix up to k reaches the disk and the call reports
// ErrShortWrite. One-shot; subsequent writes succeed, which is
// exactly the hole a fail-stop latch must close.
func ShortWriteAt(k int64) InjectorOption {
	return func(in *Injector) { in.shortAt = k }
}

// ENOSPCAfter fails any write past cumulative byte offset m with
// ErrNoSpace, applying the prefix that still fits. Unlike
// ShortWriteAt the condition persists: the disk stays full.
func ENOSPCAfter(m int64) InjectorOption {
	return func(in *Injector) { in.enospcAfter = m }
}

// WithRegistry counts every injected fault on the registry's
// faults_injected_total counter.
func WithRegistry(reg *obs.Registry) InjectorOption {
	return func(in *Injector) {
		in.counter = reg.Counter("faults_injected_total",
			"Storage faults injected by the faultfs harness (tests and drills).")
	}
}

// NewInjector wraps inner with the scripted faults given by opts.
func NewInjector(inner FS, opts ...InjectorOption) *Injector {
	in := &Injector{inner: inner, shortAt: -1, enospcAfter: -1}
	for _, o := range opts {
		o(in)
	}
	return in
}

// Ops reports how many mutation boundaries the workload has crossed.
// A fault-free run's total is the crash-enumeration domain: CrashAt
// of every value in [1, Ops()] visits every boundary.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Faults reports how many faults have been injected.
func (in *Injector) Faults() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// Crashed reports whether the crash point has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// fault records one injected fault. Callers hold in.mu.
func (in *Injector) fault() {
	in.faults++
	if in.counter != nil {
		in.counter.Inc()
	}
}

// boundary numbers one mutation op and fires the crash point. Callers
// must not hold in.mu.
func (in *Injector) boundary() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.ops++
	if in.crashAt > 0 && in.ops >= in.crashAt {
		in.crashed = true
		in.fault()
		return ErrCrashed
	}
	return nil
}

// halted reports a crash for non-mutation ops (open, read, remove…),
// which fail after the crash but are not numbered boundaries.
func (in *Injector) halted() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	return nil
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := in.halted(); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.halted(); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

// Rename implements FS; a mutation boundary.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.boundary(); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if err := in.halted(); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if err := in.halted(); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

// SyncDir implements FS; a mutation boundary and a sync.
func (in *Injector) SyncDir(path string) error {
	if err := in.boundary(); err != nil {
		return err
	}
	if err := in.syncFault(); err != nil {
		return err
	}
	return in.inner.SyncDir(path)
}

// syncFault fires FailSync for file and directory syncs alike.
func (in *Injector) syncFault() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.syncs++
	if in.failSyncN > 0 && in.syncs == in.failSyncN {
		in.fault()
		return in.failSyncErr
	}
	return nil
}

// injFile routes a handle's mutations through the injector.
type injFile struct {
	in *Injector
	f  File
}

func (h *injFile) Name() string { return h.f.Name() }

func (h *injFile) Write(p []byte) (int, error) {
	if err := h.in.boundary(); err != nil {
		return 0, err
	}
	keep, failErr := h.in.writeFault(len(p))
	if keep < len(p) {
		n := 0
		if keep > 0 {
			n, _ = h.f.Write(p[:keep])
		}
		return n, failErr
	}
	n, err := h.f.Write(p)
	h.in.noteBytes(n - keep) // keep already accounted; reconcile actual
	return n, err
}

// writeFault decides how much of a len-p write survives injection and
// accounts the surviving bytes. Returns the byte count to apply and
// the error to report when it is short.
func (in *Injector) writeFault(p int) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	start, end := in.bytes, in.bytes+int64(p)
	if in.enospcAfter >= 0 && end > in.enospcAfter {
		keep := in.enospcAfter - start
		if keep < 0 {
			keep = 0
		}
		in.bytes += keep
		in.fault()
		return int(keep), ErrNoSpace
	}
	if in.shortAt >= 0 && start <= in.shortAt && in.shortAt < end {
		keep := in.shortAt - start
		in.shortAt = -1 // one-shot
		in.bytes += keep
		in.fault()
		return int(keep), ErrShortWrite
	}
	in.bytes = end
	return p, nil
}

// noteBytes reconciles the cumulative byte counter when the inner
// write applied a different count than pre-accounted.
func (in *Injector) noteBytes(delta int) {
	if delta == 0 {
		return
	}
	in.mu.Lock()
	in.bytes += int64(delta)
	in.mu.Unlock()
}

func (h *injFile) Read(p []byte) (int, error) {
	if err := h.in.halted(); err != nil {
		return 0, err
	}
	return h.f.Read(p)
}

func (h *injFile) Sync() error {
	if err := h.in.boundary(); err != nil {
		return err
	}
	if err := h.in.syncFault(); err != nil {
		return err
	}
	return h.f.Sync()
}

func (h *injFile) Truncate(size int64) error {
	if err := h.in.boundary(); err != nil {
		return err
	}
	return h.f.Truncate(size)
}

func (h *injFile) Seek(offset int64, whence int) (int64, error) {
	if err := h.in.halted(); err != nil {
		return 0, err
	}
	return h.f.Seek(offset, whence)
}

func (h *injFile) Close() error {
	if err := h.in.halted(); err != nil {
		return err
	}
	return h.f.Close()
}

package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// CrashMode selects what a simulated power loss does to state that was
// written but never fsynced. Enumerating all modes at every crash
// point covers the disk's full freedom: a correct durability layer
// must recover a consistent prefix under every one of them.
type CrashMode int

const (
	// CrashDropUnsynced is the adversarial disk: every byte written
	// since the file's last Sync is gone, and namespace changes
	// (renames) since the last SyncDir never happened. Anything the
	// layer acknowledged as durable must still survive this.
	CrashDropUnsynced CrashMode = iota

	// CrashKeepUnsynced is the lucky disk: everything written made it
	// out of the page cache before the power died. Recovery must
	// absorb the extra, unacknowledged state.
	CrashKeepUnsynced

	// CrashTornTail keeps unsynced state but tears each file's
	// unsynced byte tail in half — the signature of a crash mid-write.
	// Recovery must detect and discard the torn fragment without
	// surfacing garbage.
	CrashTornTail
)

// String names the mode for test output.
func (m CrashMode) String() string {
	switch m {
	case CrashDropUnsynced:
		return "drop-unsynced"
	case CrashKeepUnsynced:
		return "keep-unsynced"
	case CrashTornTail:
		return "torn-tail"
	}
	return fmt.Sprintf("crash-mode-%d", int(m))
}

// CrashModes lists every simulated power-loss outcome, for tests that
// enumerate them all.
var CrashModes = []CrashMode{CrashDropUnsynced, CrashKeepUnsynced, CrashTornTail}

// memFile is one simulated file: its live content and the prefix-of-
// history snapshot taken at the last Sync (what a power loss keeps).
type memFile struct {
	data   []byte
	synced []byte
}

// Mem is an in-memory filesystem that models a disk's durability
// semantics rather than just its namespace:
//
//   - Write changes live state only; Sync copies it to durable state.
//   - Rename is atomic and immediately visible, but survives a crash
//     only after SyncDir on the parent directory.
//   - File creation and removal are modeled as immediately durable
//     (the common journaling-filesystem behavior), keeping the model
//     focused on the two failure classes that actually bite
//     write-ahead logs: lost/torn appends and un-fsynced renames.
//
// Crash derives the post-power-loss filesystem under a CrashMode; the
// recovered image is a fresh Mem whose live and durable state agree.
type Mem struct {
	mu      sync.Mutex
	files   map[string]*memFile // live namespace
	disk    map[string]*memFile // namespace as of the last SyncDir
	dirs    map[string]bool
	tempSeq int
}

// NewMem returns an empty simulated disk.
func NewMem() *Mem {
	return &Mem{
		files: make(map[string]*memFile),
		disk:  make(map[string]*memFile),
		dirs:  make(map[string]bool),
	}
}

// Crash simulates a power loss and returns the filesystem a restart
// would find, per mode. The receiver is left untouched, so one run
// can be crashed under every mode.
func (m *Mem) Crash(mode CrashMode) *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()

	names := m.disk
	if mode != CrashDropUnsynced {
		// The lucky disk flushed namespace changes too.
		names = m.files
	}
	img := NewMem()
	for d := range m.dirs {
		img.dirs[d] = true
	}
	for name, f := range names {
		var content []byte
		switch mode {
		case CrashDropUnsynced:
			content = append([]byte(nil), f.synced...)
		case CrashKeepUnsynced:
			content = append([]byte(nil), f.data...)
		case CrashTornTail:
			content = tornContent(f)
		}
		nf := &memFile{data: content, synced: append([]byte(nil), content...)}
		img.files[name] = nf
		img.disk[name] = nf
	}
	return img
}

// tornContent keeps the synced prefix whole and cuts any unsynced
// appended tail in half — a torn final write. Unsynced truncations
// (data shorter than synced) survive whole, like CrashKeepUnsynced.
func tornContent(f *memFile) []byte {
	if len(f.data) <= len(f.synced) {
		return append([]byte(nil), f.data...)
	}
	tail := f.data[len(f.synced):]
	keep := len(f.synced) + len(tail)/2
	return append([]byte(nil), f.data[:keep]...)
}

// OpenFile implements FS.
func (m *Mem) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		f = &memFile{}
		m.files[name] = f
		m.disk[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	return &memHandle{fs: m, f: f, name: name, flag: flag}, nil
}

// CreateTemp implements FS with deterministic names, so runs are
// byte-for-byte reproducible across crash enumerations.
func (m *Mem) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tempSeq++
	name := dir + "/" + replaceStar(pattern, m.tempSeq)
	if _, exists := m.files[name]; exists {
		return nil, &fs.PathError{Op: "createtemp", Path: name, Err: fs.ErrExist}
	}
	f := &memFile{}
	m.files[name] = f
	m.disk[name] = f
	return &memHandle{fs: m, f: f, name: name, flag: os.O_RDWR}, nil
}

// replaceStar substitutes the os.CreateTemp wildcard with a sequence
// number (appending when the pattern has no wildcard, like os does).
func replaceStar(pattern string, seq int) string {
	for i := len(pattern) - 1; i >= 0; i-- {
		if pattern[i] == '*' {
			return fmt.Sprintf("%s%d%s", pattern[:i], seq, pattern[i+1:])
		}
	}
	return fmt.Sprintf("%s%d", pattern, seq)
}

// Rename implements FS: atomic and immediately visible, durable only
// after SyncDir.
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	delete(m.disk, name)
	return nil
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(path string, _ fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path] = true
	return nil
}

// SyncDir implements FS: the live namespace becomes the durable one.
func (m *Mem) SyncDir(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[path] {
		return &fs.PathError{Op: "syncdir", Path: path, Err: fs.ErrNotExist}
	}
	m.disk = make(map[string]*memFile, len(m.files))
	for name, f := range m.files {
		m.disk[name] = f
	}
	return nil
}

// ReadFile returns a file's live content (a test convenience).
func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// memHandle is one open handle on a memFile.
type memHandle struct {
	fs     *Mem
	f      *memFile
	name   string
	flag   int
	off    int64
	closed bool
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.flag&os.O_APPEND != 0 {
		h.off = int64(len(h.f.data))
	}
	end := h.off + int64(len(p))
	if int64(len(h.f.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[h.off:end], p)
	h.off = end
	return len(p), nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.f.synced = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	switch {
	case size <= int64(len(h.f.data)):
		h.f.data = h.f.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	return nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("faultfs: bad whence %d", whence)
	}
	if h.off < 0 {
		h.off = 0
		return 0, fmt.Errorf("faultfs: negative seek")
	}
	return h.off, nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"uptimebroker/internal/obs"
)

func writeString(t *testing.T, f File, s string) {
	t.Helper()
	if _, err := f.Write([]byte(s)); err != nil {
		t.Fatalf("write %q: %v", s, err)
	}
}

func readAll(t *testing.T, fsys FS, name string) string {
	t.Helper()
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	name := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "hello")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if got := readAll(t, fsys, name); got != "hello" {
		t.Fatalf("content = %q", got)
	}
	renamed := filepath.Join(dir, "g")
	if err := fsys.Rename(name, renamed); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fsys, renamed); got != "hello" {
		t.Fatalf("content after rename = %q", got)
	}
}

func TestMemCrashDropUnsynced(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "synced|")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writeString(t, f, "lost")

	img := m.Crash(CrashDropUnsynced)
	if got, _ := img.ReadFile("d/f"); string(got) != "synced|" {
		t.Fatalf("drop-unsynced content = %q, want synced prefix only", got)
	}
	img = m.Crash(CrashKeepUnsynced)
	if got, _ := img.ReadFile("d/f"); string(got) != "synced|lost" {
		t.Fatalf("keep-unsynced content = %q", got)
	}
	img = m.Crash(CrashTornTail)
	if got, _ := img.ReadFile("d/f"); string(got) != "synced|lo" {
		t.Fatalf("torn-tail content = %q, want half the unsynced tail", got)
	}
	// The original survives crash derivation untouched.
	if got, _ := m.ReadFile("d/f"); string(got) != "synced|lost" {
		t.Fatalf("original content disturbed: %q", got)
	}
}

func TestMemRenameDurableOnlyAfterSyncDir(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	old, _ := m.OpenFile("d/old", os.O_CREATE|os.O_WRONLY, 0o644)
	writeString(t, old, "previous")
	_ = old.Sync()
	_ = old.Close()

	tmp, _ := m.CreateTemp("d", ".snap-*.json")
	writeString(t, tmp, "replacement")
	_ = tmp.Sync()
	_ = tmp.Close()
	if err := m.Rename(tmp.Name(), "d/old"); err != nil {
		t.Fatal(err)
	}

	// Live view sees the rename immediately.
	if got, _ := m.ReadFile("d/old"); string(got) != "replacement" {
		t.Fatalf("live content = %q", got)
	}
	// Power loss before SyncDir: the old name still holds the old file,
	// and the temp file survives under its temp name.
	img := m.Crash(CrashDropUnsynced)
	if got, _ := img.ReadFile("d/old"); string(got) != "previous" {
		t.Fatalf("pre-SyncDir crash content = %q, want old file", got)
	}
	// After SyncDir the rename is durable.
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	img = m.Crash(CrashDropUnsynced)
	if got, _ := img.ReadFile("d/old"); string(got) != "replacement" {
		t.Fatalf("post-SyncDir crash content = %q, want new file", got)
	}
}

func TestMemTruncateAndSeek(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("f", os.O_CREATE|os.O_RDWR, 0o644)
	writeString(t, f, "0123456789")
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if pos, err := f.Seek(0, io.SeekStart); err != nil || pos != 0 {
		t.Fatalf("seek: %d, %v", pos, err)
	}
	b, err := io.ReadAll(f)
	if err != nil || string(b) != "0123" {
		t.Fatalf("after truncate: %q, %v", b, err)
	}
}

func TestInjectorCrashAtHaltsEverything(t *testing.T) {
	m := NewMem()
	in := NewInjector(m, CrashAt(2))
	f, err := in.OpenFile("f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("a")); err != nil { // boundary 1
		t.Fatalf("first write should succeed: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrCrashed) { // boundary 2
		t.Fatalf("second write err = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash err = %v", err)
	}
	if _, err := in.OpenFile("g", os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash err = %v", err)
	}
	if !in.Crashed() {
		t.Fatal("Crashed() = false")
	}
	// The halted write never reached the disk.
	if got, _ := m.ReadFile("f"); string(got) != "a" {
		t.Fatalf("content = %q, want %q", got, "a")
	}
}

func TestInjectorFailSyncCountsFileAndDirSyncs(t *testing.T) {
	m := NewMem()
	_ = m.MkdirAll("d", 0o755)
	boom := errors.New("boom")
	in := NewInjector(m, FailSync(2, boom))
	f, _ := in.OpenFile("d/f", os.O_CREATE|os.O_WRONLY, 0o644)
	if err := f.Sync(); err != nil { // sync 1
		t.Fatalf("first sync: %v", err)
	}
	if err := in.SyncDir("d"); !errors.Is(err, boom) { // sync 2
		t.Fatalf("second sync err = %v, want boom", err)
	}
	if err := f.Sync(); err != nil { // sync 3: one-shot fault
		t.Fatalf("third sync: %v", err)
	}
	if in.Faults() != 1 {
		t.Fatalf("Faults() = %d", in.Faults())
	}
}

func TestInjectorShortWrite(t *testing.T) {
	m := NewMem()
	in := NewInjector(m, ShortWriteAt(3))
	f, _ := in.OpenFile("f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if _, err := f.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("cdef")) // crosses byte 3
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want short write", err)
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1 (bytes up to offset 3)", n)
	}
	if got, _ := m.ReadFile("f"); string(got) != "abc" {
		t.Fatalf("content = %q, want %q", got, "abc")
	}
	// One-shot: the next write goes through whole.
	if _, err := f.Write([]byte("gh")); err != nil {
		t.Fatalf("write after short write: %v", err)
	}
	if got, _ := m.ReadFile("f"); string(got) != "abcgh" {
		t.Fatalf("content = %q", got)
	}
}

func TestInjectorENOSPCPersists(t *testing.T) {
	m := NewMem()
	reg := obs.NewRegistry()
	in := NewInjector(m, ENOSPCAfter(4), WithRegistry(reg))
	f, _ := in.OpenFile("f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("defg"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1 (the byte that still fit)", n)
	}
	// The disk stays full.
	if _, err := f.Write([]byte("h")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("later write err = %v, want ENOSPC", err)
	}
	if in.Faults() != 2 {
		t.Fatalf("Faults() = %d, want 2", in.Faults())
	}
	snap := reg.Snapshot()
	if got := snap.Value("faults_injected_total"); got != 2 {
		t.Fatalf("faults_injected_total = %v, want 2", got)
	}
}

func TestInjectorOpsCountsMutationBoundaries(t *testing.T) {
	m := NewMem()
	_ = m.MkdirAll("d", 0o755)
	in := NewInjector(m)
	f, _ := in.OpenFile("d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	_, _ = f.Write([]byte("x")) // 1
	_ = f.Sync()                // 2
	_ = f.Truncate(0)           // 3
	_ = in.Rename("d/f", "d/g") // 4
	_ = in.SyncDir("d")         // 5
	_ = f.Close()               // not a boundary
	if got := in.Ops(); got != 5 {
		t.Fatalf("Ops() = %d, want 5", got)
	}
}

package catalog

import (
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/topology"
)

// Well-known technology IDs seeded by Default. The first three are the
// mechanisms of the paper's case study (hypervisor clustering, RAID-1,
// dual clustered gateways); the rest are the future-work strategies
// from Section V.
const (
	TechESXHA       = "esx-ha"       // hypervisor-level compute clustering
	TechOSCluster   = "os-cluster"   // OS clustering for compute (future work)
	TechRAID1       = "raid1"        // mirrored storage
	TechSDS         = "sds"          // software-defined storage replication (future work)
	TechClusteredFS = "clustered-fs" // clustered file system (future work)
	TechMultipath   = "multipath"    // storage I/O multipathing (future work)
	TechDualGateway = "dual-gateway" // dual clustered gateways
	TechBGPDual     = "bgp-dual"     // BGP over dual circuits (future work)
	TechMWFailover  = "mw-failover"  // middleware failover pair
)

// Well-known provider names seeded by Default. ProviderSoftLayerSim is
// the reference provider whose rate card and reliability defaults are
// calibrated to reproduce the paper's case study; the other two give
// the broker a hybrid portfolio to arbitrate across.
const (
	ProviderSoftLayerSim = "softlayer-sim"
	ProviderNimbus       = "nimbus"
	ProviderStratus      = "stratus"
)

// Default returns the catalog the simulated broker ships with: the case
// study mechanisms priced so the paper's numbers reproduce, the
// future-work mechanisms from Section V, and three providers at
// different price/reliability points.
func Default() *Catalog {
	c := New()

	for _, t := range defaultTechnologies() {
		if err := c.AddTechnology(t); err != nil {
			panic("catalog: invalid built-in technology: " + err.Error())
		}
	}
	for _, p := range defaultProviders() {
		if err := c.AddProvider(p); err != nil {
			panic("catalog: invalid built-in provider: " + err.Error())
		}
	}
	return c
}

func defaultTechnologies() []HATechnology {
	return []HATechnology{
		{
			ID:                 TechESXHA,
			Name:               "Hypervisor HA cluster (ESX-style, N+1 hot standby)",
			Layer:              topology.LayerCompute,
			StandbyNodes:       1,
			Mode:               StandbyHot,
			Failover:           15 * time.Minute,
			InfraFixed:         cost.Dollars(300),
			InfraPerStandby:    cost.Dollars(900),
			LaborHoursPerMonth: 20,
		},
		{
			ID:                 TechOSCluster,
			Name:               "OS-level failover cluster (warm standby)",
			Layer:              topology.LayerCompute,
			StandbyNodes:       1,
			Mode:               StandbyWarm,
			Failover:           4 * time.Minute,
			InfraFixed:         cost.Dollars(450),
			InfraPerStandby:    cost.Dollars(950),
			LaborHoursPerMonth: 26,
		},
		{
			ID:                 TechRAID1,
			Name:               "RAID-1 mirrored volumes",
			Layer:              topology.LayerStorage,
			StandbyNodes:       1,
			Mode:               StandbyHot,
			Failover:           time.Minute,
			InfraFixed:         cost.Dollars(50),
			InfraPerStandby:    cost.Dollars(150),
			LaborHoursPerMonth: 5,
		},
		{
			ID:                 TechSDS,
			Name:               "Software-defined storage, 2-way replication",
			Layer:              topology.LayerStorage,
			StandbyNodes:       2,
			Mode:               StandbyHot,
			Failover:           30 * time.Second,
			InfraFixed:         cost.Dollars(250),
			InfraPerStandby:    cost.Dollars(180),
			LaborHoursPerMonth: 12,
		},
		{
			ID:                 TechClusteredFS,
			Name:               "Clustered file system",
			Layer:              topology.LayerStorage,
			StandbyNodes:       1,
			Mode:               StandbyWarm,
			Failover:           2 * time.Minute,
			InfraFixed:         cost.Dollars(180),
			InfraPerStandby:    cost.Dollars(140),
			LaborHoursPerMonth: 9,
		},
		{
			ID:                 TechMultipath,
			Name:               "Storage I/O multipathing",
			Layer:              topology.LayerStorage,
			StandbyNodes:       1,
			Mode:               StandbyHot,
			Failover:           5 * time.Second,
			InfraFixed:         cost.Dollars(90),
			InfraPerStandby:    cost.Dollars(60),
			LaborHoursPerMonth: 4,
		},
		{
			ID:                 TechDualGateway,
			Name:               "Dual clustered gateways",
			Layer:              topology.LayerNetwork,
			StandbyNodes:       1,
			Mode:               StandbyHot,
			Failover:           2 * time.Minute,
			InfraFixed:         cost.Dollars(160),
			InfraPerStandby:    cost.Dollars(500),
			LaborHoursPerMonth: 8,
		},
		{
			ID:                 TechBGPDual,
			Name:               "BGP over dual circuits",
			Layer:              topology.LayerNetwork,
			StandbyNodes:       1,
			Mode:               StandbyHot,
			Failover:           30 * time.Second,
			InfraFixed:         cost.Dollars(420),
			InfraPerStandby:    cost.Dollars(640),
			LaborHoursPerMonth: 11,
		},
		{
			ID:                 TechMWFailover,
			Name:               "Middleware failover pair (self-healing)",
			Layer:              topology.LayerMiddleware,
			StandbyNodes:       1,
			Mode:               StandbyWarm,
			Failover:           3 * time.Minute,
			InfraFixed:         cost.Dollars(120),
			InfraPerStandby:    cost.Dollars(380),
			LaborHoursPerMonth: 10,
		},
	}
}

func defaultProviders() []Provider {
	return []Provider{
		{
			Name:        ProviderSoftLayerSim,
			DisplayName: "SoftLayer (simulated)",
			RateCard:    RateCard{LaborRate: cost.Dollars(30), InfraMultiplier: 1.0},
			NodeDefaults: map[string]availability.NodeParams{
				// Calibrated to the paper's case study; see DESIGN.md §4.
				topology.ClassVirtualMachine: {Down: 0.0055, FailuresPerYear: 5},
				topology.ClassBareMetal:      {Down: 0.0030, FailuresPerYear: 3},
				topology.ClassBlockVolume:    {Down: 0.0200, FailuresPerYear: 3},
				topology.ClassObjectStore:    {Down: 0.0080, FailuresPerYear: 2},
				topology.ClassGateway:        {Down: 0.0146, FailuresPerYear: 4},
				topology.ClassLoadBalancer:   {Down: 0.0090, FailuresPerYear: 4},
			},
		},
		{
			Name:        ProviderNimbus,
			DisplayName: "Nimbus Cloud (budget tier)",
			RateCard:    RateCard{LaborRate: cost.Dollars(25), InfraMultiplier: 0.85},
			NodeDefaults: map[string]availability.NodeParams{
				topology.ClassVirtualMachine: {Down: 0.0090, FailuresPerYear: 8},
				topology.ClassBareMetal:      {Down: 0.0055, FailuresPerYear: 5},
				topology.ClassBlockVolume:    {Down: 0.0280, FailuresPerYear: 5},
				topology.ClassObjectStore:    {Down: 0.0120, FailuresPerYear: 3},
				topology.ClassGateway:        {Down: 0.0210, FailuresPerYear: 6},
				topology.ClassLoadBalancer:   {Down: 0.0140, FailuresPerYear: 6},
			},
		},
		{
			Name:        ProviderStratus,
			DisplayName: "Stratus Cloud (premium tier)",
			RateCard:    RateCard{LaborRate: cost.Dollars(42), InfraMultiplier: 1.30},
			NodeDefaults: map[string]availability.NodeParams{
				topology.ClassVirtualMachine: {Down: 0.0028, FailuresPerYear: 3},
				topology.ClassBareMetal:      {Down: 0.0016, FailuresPerYear: 2},
				topology.ClassBlockVolume:    {Down: 0.0095, FailuresPerYear: 2},
				topology.ClassObjectStore:    {Down: 0.0040, FailuresPerYear: 1},
				topology.ClassGateway:        {Down: 0.0070, FailuresPerYear: 2},
				topology.ClassLoadBalancer:   {Down: 0.0045, FailuresPerYear: 2},
			},
		},
	}
}

// Package catalog is the broker's knowledge of what can be bought: the
// HA technologies that can be attached to each infrastructure layer
// (with their redundancy semantics, failover latency and monthly cost
// structure) and the cloud providers with their rate cards and default
// component reliability parameters.
//
// In the paper the broker maintains this database by virtue of its
// "vantage point above clouds" (Section II.C): rate-carded prices C_HA,
// and P_i, f_i, t_i across IaaS components across clouds. The live
// estimation side of that database is package telemetry; the catalog
// holds the priced mechanisms and the long-term defaults.
package catalog

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/topology"
)

// StandbyMode classifies how ready a standby node is, which drives the
// failover latency the paper describes (hot, warm or cold standby).
type StandbyMode int

// Standby modes start at 1 so the zero value is invalid.
const (
	StandbyUnknown StandbyMode = iota
	StandbyHot
	StandbyWarm
	StandbyCold
)

var standbyNames = map[StandbyMode]string{
	StandbyHot:  "hot",
	StandbyWarm: "warm",
	StandbyCold: "cold",
}

// String returns the lower-case mode name.
func (m StandbyMode) String() string {
	if n, ok := standbyNames[m]; ok {
		return n
	}
	return "unknown"
}

// Valid reports whether m is a known standby mode.
func (m StandbyMode) Valid() bool {
	_, ok := standbyNames[m]
	return ok
}

// MarshalJSON encodes the mode as its string name.
func (m StandbyMode) MarshalJSON() ([]byte, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("catalog: cannot marshal unknown standby mode %d", int(m))
	}
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes the mode from its string name.
func (m *StandbyMode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("catalog: standby mode must be a string: %w", err)
	}
	for mode, name := range standbyNames {
		if name == strings.ToLower(strings.TrimSpace(s)) {
			*m = mode
			return nil
		}
	}
	return fmt.Errorf("catalog: unknown standby mode %q", s)
}

// HATechnology is one redundancy mechanism the broker can engineer into
// a cluster: it adds StandbyNodes standby nodes (raising K̂ by the same
// amount) at a given monthly price, and imposes the technology's
// failover latency when it absorbs an outage.
type HATechnology struct {
	// ID is the stable identifier, e.g. "esx-ha".
	ID string `json:"id"`

	// Name is the human-readable mechanism name.
	Name string `json:"name"`

	// Layer is the infrastructure layer the mechanism applies to.
	Layer topology.Layer `json:"layer"`

	// StandbyNodes is how many standby nodes the mechanism adds; the
	// cluster tolerates the same number of simultaneous failures (K̂).
	StandbyNodes int `json:"standby_nodes"`

	// Mode is the readiness of the standby nodes.
	Mode StandbyMode `json:"mode"`

	// Failover is t_i: detection + bring-up + takeover latency during
	// which the cluster is unavailable.
	Failover time.Duration `json:"failover_ns"`

	// InfraFixed is the provider-independent monthly base price of the
	// mechanism (licensing, cluster management), before the provider's
	// infrastructure multiplier.
	InfraFixed cost.Money `json:"infra_fixed"`

	// InfraPerStandby is the monthly price per standby node, before the
	// provider multiplier.
	InfraPerStandby cost.Money `json:"infra_per_standby"`

	// LaborHoursPerMonth is the operational effort to deploy and
	// sustain the mechanism, billed at the provider's labor rate.
	LaborHoursPerMonth float64 `json:"labor_hours_per_month"`
}

// Validate reports whether the technology definition is well-formed.
func (t HATechnology) Validate() error {
	switch {
	case strings.TrimSpace(t.ID) == "":
		return fmt.Errorf("catalog: technology has empty ID")
	case strings.TrimSpace(t.Name) == "":
		return fmt.Errorf("catalog: technology %q has empty name", t.ID)
	case !t.Layer.Valid():
		return fmt.Errorf("catalog: technology %q: invalid layer", t.ID)
	case t.StandbyNodes < 1:
		return fmt.Errorf("catalog: technology %q: StandbyNodes = %d, must be >= 1", t.ID, t.StandbyNodes)
	case !t.Mode.Valid():
		return fmt.Errorf("catalog: technology %q: invalid standby mode", t.ID)
	case t.Failover < 0:
		return fmt.Errorf("catalog: technology %q: negative failover", t.ID)
	case t.InfraFixed < 0 || t.InfraPerStandby < 0:
		return fmt.Errorf("catalog: technology %q: negative infrastructure price", t.ID)
	case t.LaborHoursPerMonth < 0:
		return fmt.Errorf("catalog: technology %q: negative labor hours", t.ID)
	}
	return nil
}

// MonthlyCost prices the mechanism on a provider: infrastructure scaled
// by the provider's multiplier plus labor at the provider's rate. This
// is the per-component contribution to C_HA in Equation 5.
func (t HATechnology) MonthlyCost(rc RateCard) cost.Money {
	infra := t.InfraFixed + t.InfraPerStandby.Mul(int64(t.StandbyNodes))
	return infra.MulFloat(rc.InfraMultiplier) + cost.Labor(t.LaborHoursPerMonth, rc.LaborRate)
}

// RateCard is a provider's commercial profile.
type RateCard struct {
	// LaborRate is the hourly rate for managed-service labor.
	LaborRate cost.Money `json:"labor_rate"`

	// InfraMultiplier scales catalog base infrastructure prices to the
	// provider's price level (1.0 = the reference provider).
	InfraMultiplier float64 `json:"infra_multiplier"`
}

// Validate reports whether the rate card is usable.
func (rc RateCard) Validate() error {
	if rc.LaborRate < 0 {
		return fmt.Errorf("catalog: negative labor rate")
	}
	if rc.InfraMultiplier <= 0 {
		return fmt.Errorf("catalog: infra multiplier %v, must be > 0", rc.InfraMultiplier)
	}
	return nil
}

// Provider describes one cloud in the broker's hybrid portfolio.
type Provider struct {
	// Name is the stable identifier, e.g. "softlayer-sim".
	Name string `json:"name"`

	// DisplayName is the human-readable provider name.
	DisplayName string `json:"display_name"`

	// RateCard is the provider's commercial profile.
	RateCard RateCard `json:"rate_card"`

	// NodeDefaults maps component classes to the broker's long-term
	// default reliability parameters on this provider, used when the
	// telemetry store has no fresher estimate.
	NodeDefaults map[string]availability.NodeParams `json:"node_defaults"`
}

// Validate reports whether the provider definition is well-formed.
func (p Provider) Validate() error {
	if strings.TrimSpace(p.Name) == "" {
		return fmt.Errorf("catalog: provider has empty name")
	}
	if err := p.RateCard.Validate(); err != nil {
		return fmt.Errorf("catalog: provider %q: %w", p.Name, err)
	}
	for class, params := range p.NodeDefaults {
		if err := params.Validate(); err != nil {
			return fmt.Errorf("catalog: provider %q, class %q: %w", p.Name, class, err)
		}
	}
	return nil
}

// Catalog is the broker's priced inventory of HA technologies and
// providers. It is safe to share read-only after construction; mutation
// methods are not synchronized.
type Catalog struct {
	techs     map[string]HATechnology
	providers map[string]Provider

	// epoch fingerprints the catalog's content generation: every
	// mutation bumps it, so derived artifacts (content-addressed
	// recommendation cache keys in particular) that embed the epoch go
	// stale the moment the inventory changes. The counter itself is
	// safe for concurrent reads even while unsynchronized mutators run,
	// but the usual discipline still applies: mutate before sharing.
	epoch atomic.Uint64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		techs:     make(map[string]HATechnology),
		providers: make(map[string]Provider),
	}
}

// AddTechnology registers a technology, rejecting duplicates and
// invalid definitions.
func (c *Catalog) AddTechnology(t HATechnology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, exists := c.techs[t.ID]; exists {
		return fmt.Errorf("catalog: duplicate technology %q", t.ID)
	}
	c.techs[t.ID] = t
	c.epoch.Add(1)
	return nil
}

// Technology returns the technology with the given ID.
func (c *Catalog) Technology(id string) (HATechnology, error) {
	t, ok := c.techs[id]
	if !ok {
		return HATechnology{}, fmt.Errorf("catalog: unknown technology %q", id)
	}
	return t, nil
}

// TechnologiesForLayer returns all technologies applicable to a layer,
// sorted by ID for determinism.
func (c *Catalog) TechnologiesForLayer(l topology.Layer) []HATechnology {
	var out []HATechnology
	for _, t := range c.techs {
		if t.Layer == l {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Technologies returns every registered technology sorted by ID.
func (c *Catalog) Technologies() []HATechnology {
	out := make([]HATechnology, 0, len(c.techs))
	for _, t := range c.techs {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddProvider registers a provider, rejecting duplicates and invalid
// definitions.
func (c *Catalog) AddProvider(p Provider) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, exists := c.providers[p.Name]; exists {
		return fmt.Errorf("catalog: duplicate provider %q", p.Name)
	}
	c.providers[p.Name] = p
	c.epoch.Add(1)
	return nil
}

// Epoch returns the catalog's content generation: a counter bumped by
// every successful mutation (and by Invalidate). Two calls returning
// the same value bracket a window in which the inventory did not
// change, which is what lets content-addressed caches embed the epoch
// in their keys and have every key go stale on any catalog change.
func (c *Catalog) Epoch() uint64 { return c.epoch.Load() }

// Invalidate bumps the epoch without changing the inventory and
// returns the new value. It exists for callers that mutate catalog
// contents out of band (future live-catalog reloads) or simply want
// to force every epoch-keyed derivation to recompute.
func (c *Catalog) Invalidate() uint64 { return c.epoch.Add(1) }

// Provider returns the provider with the given name.
func (c *Catalog) Provider(name string) (Provider, error) {
	p, ok := c.providers[name]
	if !ok {
		return Provider{}, fmt.Errorf("catalog: unknown provider %q", name)
	}
	return p, nil
}

// Providers returns every registered provider sorted by name.
func (c *Catalog) Providers() []Provider {
	out := make([]Provider, 0, len(c.providers))
	for _, p := range c.providers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DefaultNodeParams returns the broker's default reliability parameters
// for a component class on a provider.
func (c *Catalog) DefaultNodeParams(provider, class string) (availability.NodeParams, error) {
	p, err := c.Provider(provider)
	if err != nil {
		return availability.NodeParams{}, err
	}
	params, ok := p.NodeDefaults[class]
	if !ok {
		return availability.NodeParams{}, fmt.Errorf("catalog: provider %q has no defaults for class %q", provider, class)
	}
	return params, nil
}

package catalog

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/cost"
	"uptimebroker/internal/topology"
)

func validTech() HATechnology {
	return HATechnology{
		ID:                 "test-ha",
		Name:               "Test HA",
		Layer:              topology.LayerCompute,
		StandbyNodes:       1,
		Mode:               StandbyHot,
		Failover:           5 * time.Minute,
		InfraFixed:         cost.Dollars(100),
		InfraPerStandby:    cost.Dollars(50),
		LaborHoursPerMonth: 2,
	}
}

func TestStandbyModeString(t *testing.T) {
	tests := []struct {
		m    StandbyMode
		want string
	}{
		{StandbyHot, "hot"},
		{StandbyWarm, "warm"},
		{StandbyCold, "cold"},
		{StandbyUnknown, "unknown"},
		{StandbyMode(17), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Fatalf("StandbyMode(%d).String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

func TestStandbyModeJSON(t *testing.T) {
	for m := range standbyNames {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal %v: %v", m, err)
		}
		var back StandbyMode
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != m {
			t.Fatalf("round trip %v -> %s -> %v", m, data, back)
		}
	}
	if _, err := json.Marshal(StandbyUnknown); err == nil {
		t.Fatal("marshaling unknown mode should fail")
	}
	var m StandbyMode
	if err := json.Unmarshal([]byte(`"tepid"`), &m); err == nil {
		t.Fatal("unmarshaling bogus mode should fail")
	}
	if err := json.Unmarshal([]byte(`3`), &m); err == nil {
		t.Fatal("unmarshaling non-string mode should fail")
	}
}

func TestHATechnologyValidate(t *testing.T) {
	if err := validTech().Validate(); err != nil {
		t.Fatalf("valid tech rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*HATechnology)
	}{
		{"empty id", func(h *HATechnology) { h.ID = " " }},
		{"empty name", func(h *HATechnology) { h.Name = "" }},
		{"bad layer", func(h *HATechnology) { h.Layer = topology.LayerUnknown }},
		{"zero standby", func(h *HATechnology) { h.StandbyNodes = 0 }},
		{"bad mode", func(h *HATechnology) { h.Mode = StandbyUnknown }},
		{"negative failover", func(h *HATechnology) { h.Failover = -time.Second }},
		{"negative fixed", func(h *HATechnology) { h.InfraFixed = -1 }},
		{"negative per-standby", func(h *HATechnology) { h.InfraPerStandby = -1 }},
		{"negative labor", func(h *HATechnology) { h.LaborHoursPerMonth = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := validTech()
			tt.mutate(&h)
			if err := h.Validate(); err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestMonthlyCost(t *testing.T) {
	h := validTech() // fixed $100 + $50/standby, 2h labor
	rc := RateCard{LaborRate: cost.Dollars(30), InfraMultiplier: 1.0}
	if got, want := h.MonthlyCost(rc), cost.Dollars(100+50+60); got != want {
		t.Fatalf("MonthlyCost = %v, want %v", got, want)
	}

	// Multiplier scales only infrastructure, not labor.
	rc = RateCard{LaborRate: cost.Dollars(30), InfraMultiplier: 2.0}
	if got, want := h.MonthlyCost(rc), cost.Dollars(300+60); got != want {
		t.Fatalf("MonthlyCost x2 = %v, want %v", got, want)
	}

	// Two standby nodes double the per-standby term.
	h.StandbyNodes = 2
	rc.InfraMultiplier = 1.0
	if got, want := h.MonthlyCost(rc), cost.Dollars(100+100+60); got != want {
		t.Fatalf("MonthlyCost 2 standby = %v, want %v", got, want)
	}
}

func TestCaseStudyTechCosts(t *testing.T) {
	// The calibrated case-study rate card (DESIGN.md §4): compute HA
	// $1,800/month, storage HA $350, network HA $900 on the reference
	// provider.
	c := Default()
	p, err := c.Provider(ProviderSoftLayerSim)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		id   string
		want cost.Money
	}{
		{TechESXHA, cost.Dollars(1800)},
		{TechRAID1, cost.Dollars(350)},
		{TechDualGateway, cost.Dollars(900)},
	}
	for _, tt := range tests {
		tech, err := c.Technology(tt.id)
		if err != nil {
			t.Fatalf("Technology(%q): %v", tt.id, err)
		}
		if got := tech.MonthlyCost(p.RateCard); got != tt.want {
			t.Fatalf("MonthlyCost(%q) = %v, want %v", tt.id, got, tt.want)
		}
	}
}

func TestCatalogTechnologyRegistry(t *testing.T) {
	c := New()
	if err := c.AddTechnology(validTech()); err != nil {
		t.Fatalf("AddTechnology: %v", err)
	}
	if err := c.AddTechnology(validTech()); err == nil {
		t.Fatal("duplicate AddTechnology should fail")
	}
	bad := validTech()
	bad.ID = ""
	if err := c.AddTechnology(bad); err == nil {
		t.Fatal("invalid AddTechnology should fail")
	}
	if _, err := c.Technology("test-ha"); err != nil {
		t.Fatalf("Technology: %v", err)
	}
	if _, err := c.Technology("nope"); err == nil {
		t.Fatal("unknown Technology should fail")
	}
}

func TestCatalogProviderRegistry(t *testing.T) {
	c := New()
	p := Provider{Name: "p1", RateCard: RateCard{LaborRate: cost.Dollars(10), InfraMultiplier: 1}}
	if err := c.AddProvider(p); err != nil {
		t.Fatalf("AddProvider: %v", err)
	}
	if err := c.AddProvider(p); err == nil {
		t.Fatal("duplicate AddProvider should fail")
	}
	if err := c.AddProvider(Provider{Name: ""}); err == nil {
		t.Fatal("invalid AddProvider should fail")
	}
	if err := c.AddProvider(Provider{Name: "p2", RateCard: RateCard{InfraMultiplier: 0}}); err == nil {
		t.Fatal("zero multiplier should fail")
	}
	if _, err := c.Provider("p1"); err != nil {
		t.Fatalf("Provider: %v", err)
	}
	if _, err := c.Provider("ghost"); err == nil {
		t.Fatal("unknown Provider should fail")
	}
}

func TestDefaultCatalogShape(t *testing.T) {
	c := Default()

	// Three providers at distinct price points.
	providers := c.Providers()
	if len(providers) != 3 {
		t.Fatalf("Providers() = %d, want 3", len(providers))
	}
	for i := 1; i < len(providers); i++ {
		if providers[i-1].Name >= providers[i].Name {
			t.Fatal("Providers() not sorted by name")
		}
	}

	// The case study layer coverage: at least 2 compute, 4 storage and
	// 2 network technologies (case study + future work).
	counts := map[topology.Layer]int{}
	for _, tech := range c.Technologies() {
		counts[tech.Layer]++
	}
	if counts[topology.LayerCompute] < 2 {
		t.Fatalf("compute technologies = %d, want >= 2", counts[topology.LayerCompute])
	}
	if counts[topology.LayerStorage] < 4 {
		t.Fatalf("storage technologies = %d, want >= 4", counts[topology.LayerStorage])
	}
	if counts[topology.LayerNetwork] < 2 {
		t.Fatalf("network technologies = %d, want >= 2", counts[topology.LayerNetwork])
	}
	if counts[topology.LayerMiddleware] < 1 {
		t.Fatalf("middleware technologies = %d, want >= 1", counts[topology.LayerMiddleware])
	}

	// Layer filter agrees with the full listing.
	for _, l := range []topology.Layer{topology.LayerCompute, topology.LayerStorage, topology.LayerNetwork} {
		for _, tech := range c.TechnologiesForLayer(l) {
			if tech.Layer != l {
				t.Fatalf("TechnologiesForLayer(%v) returned %q at layer %v", l, tech.ID, tech.Layer)
			}
		}
	}
}

func TestDefaultNodeParams(t *testing.T) {
	c := Default()
	params, err := c.DefaultNodeParams(ProviderSoftLayerSim, topology.ClassBlockVolume)
	if err != nil {
		t.Fatalf("DefaultNodeParams: %v", err)
	}
	if params.Down != 0.02 {
		t.Fatalf("block volume Down = %v, want 0.02 (case-study calibration)", params.Down)
	}
	if _, err := c.DefaultNodeParams("ghost", topology.ClassBlockVolume); err == nil {
		t.Fatal("unknown provider should fail")
	}
	if _, err := c.DefaultNodeParams(ProviderSoftLayerSim, "class.bogus"); err == nil {
		t.Fatal("unknown class should fail")
	}
}

func TestProviderReliabilityOrdering(t *testing.T) {
	// The premium provider must beat the reference, which must beat the
	// budget provider, for every shared component class.
	c := Default()
	ref, _ := c.Provider(ProviderSoftLayerSim)
	budget, _ := c.Provider(ProviderNimbus)
	premium, _ := c.Provider(ProviderStratus)
	for class, refParams := range ref.NodeDefaults {
		b, ok := budget.NodeDefaults[class]
		if !ok {
			t.Fatalf("budget provider missing class %q", class)
		}
		p, ok := premium.NodeDefaults[class]
		if !ok {
			t.Fatalf("premium provider missing class %q", class)
		}
		if !(p.Down < refParams.Down && refParams.Down < b.Down) {
			t.Fatalf("class %q: Down ordering violated: premium %v, ref %v, budget %v",
				class, p.Down, refParams.Down, b.Down)
		}
	}
}

func TestTechnologyJSONRoundTrip(t *testing.T) {
	tech := validTech()
	data, err := json.Marshal(tech)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(data), `"hot"`) {
		t.Fatalf("marshaled tech should name its standby mode: %s", data)
	}
	var back HATechnology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != tech {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, tech)
	}
}

func TestCatalogEpoch(t *testing.T) {
	c := New()
	if got := c.Epoch(); got != 0 {
		t.Fatalf("fresh catalog epoch = %d, want 0", got)
	}
	if err := c.AddTechnology(validTech()); err != nil {
		t.Fatalf("AddTechnology: %v", err)
	}
	afterTech := c.Epoch()
	if afterTech == 0 {
		t.Fatal("AddTechnology did not bump epoch")
	}
	// Failed mutations leave the epoch alone: nothing changed.
	if err := c.AddTechnology(validTech()); err == nil {
		t.Fatal("duplicate AddTechnology should fail")
	}
	if got := c.Epoch(); got != afterTech {
		t.Fatalf("failed AddTechnology moved epoch %d -> %d", afterTech, got)
	}
	p := Provider{Name: "p1", RateCard: RateCard{LaborRate: cost.Dollars(10), InfraMultiplier: 1}}
	if err := c.AddProvider(p); err != nil {
		t.Fatalf("AddProvider: %v", err)
	}
	afterProvider := c.Epoch()
	if afterProvider <= afterTech {
		t.Fatalf("AddProvider did not bump epoch (%d -> %d)", afterTech, afterProvider)
	}
	if got := c.Invalidate(); got <= afterProvider {
		t.Fatalf("Invalidate returned %d, want > %d", got, afterProvider)
	}
	if got := c.Epoch(); got != afterProvider+1 {
		t.Fatalf("epoch after Invalidate = %d, want %d", got, afterProvider+1)
	}
	if Default().Epoch() == 0 {
		t.Fatal("Default() catalog should have a non-zero epoch")
	}
}

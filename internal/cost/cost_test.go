package cost

import (
	"math"
	"testing"
	"testing/quick"

	"uptimebroker/internal/availability"
)

func TestDollarsRoundTrip(t *testing.T) {
	tests := []float64{0, 1, 0.01, 2790, 100.5, -12.5, 1e6}
	for _, d := range tests {
		m := Dollars(d)
		if got := m.Dollars(); math.Abs(got-d) > 1e-6 {
			t.Fatalf("Dollars(%v).Dollars() = %v", d, got)
		}
	}
}

func TestCents(t *testing.T) {
	if got, want := Cents(250), Dollars(2.50); got != want {
		t.Fatalf("Cents(250) = %d, want %d", got, want)
	}
	if got, want := Cents(-99), Dollars(-0.99); got != want {
		t.Fatalf("Cents(-99) = %d, want %d", got, want)
	}
}

func TestMoneyString(t *testing.T) {
	tests := []struct {
		m    Money
		want string
	}{
		{Dollars(0), "$0.00"},
		{Dollars(1), "$1.00"},
		{Dollars(2790), "$2,790.00"},
		{Dollars(1234567.89), "$1,234,567.89"},
		{Dollars(-12.5), "-$12.50"},
		{Dollars(999.995), "$1,000.00"}, // rounds up to cents
		{Dollars(0.004), "$0.00"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Fatalf("%d.String() = %q, want %q", tt.m, got, tt.want)
		}
	}
}

func TestMoneyArithmetic(t *testing.T) {
	m := Dollars(100)
	if got, want := m.Mul(3), Dollars(300); got != want {
		t.Fatalf("Mul(3) = %v, want %v", got, want)
	}
	if got, want := m.MulFloat(0.5), Dollars(50); got != want {
		t.Fatalf("MulFloat(0.5) = %v, want %v", got, want)
	}
	if got, want := m.MulFloat(0), Money(0); got != want {
		t.Fatalf("MulFloat(0) = %v, want %v", got, want)
	}
}

func TestSLAValidate(t *testing.T) {
	bad := []SLA{
		{UptimePercent: 0},
		{UptimePercent: -5},
		{UptimePercent: 101},
		{UptimePercent: 98, Penalty: Penalty{PerHour: -1}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", s)
		}
	}
	good := SLA{UptimePercent: 98, Penalty: Penalty{PerHour: Dollars(100)}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid SLA rejected: %v", err)
	}
	if got := good.Target(); got != 0.98 {
		t.Fatalf("Target() = %v, want 0.98", got)
	}
}

func TestSlippageHours(t *testing.T) {
	sla := SLA{UptimePercent: 98, Penalty: Penalty{PerHour: Dollars(100)}}

	// Meeting or exceeding the SLA slips nothing.
	for _, u := range []float64{0.98, 0.99, 1.0} {
		if got := sla.SlippageHoursPerMonth(u); got != 0 {
			t.Fatalf("SlippageHoursPerMonth(%v) = %v, want 0", u, got)
		}
		if got := sla.ExpectedPenaltyPerMonth(u); got != 0 {
			t.Fatalf("ExpectedPenaltyPerMonth(%v) = %v, want 0", u, got)
		}
	}

	// 1% below the SLA = 0.01 · 730 = 7.3 hours/month.
	got := sla.SlippageHoursPerMonth(0.97)
	if math.Abs(got-7.3) > 1e-9 {
		t.Fatalf("SlippageHoursPerMonth(0.97) = %v, want 7.3", got)
	}
	if p := sla.ExpectedPenaltyPerMonth(0.97); p != Dollars(730) {
		t.Fatalf("ExpectedPenaltyPerMonth(0.97) = %v, want $730", p)
	}
}

func TestComputeEquation5(t *testing.T) {
	sla := SLA{UptimePercent: 98, Penalty: Penalty{PerHour: Dollars(100)}}

	// Above SLA: TCO reduces to C_HA alone (second branch of Eq. 5).
	tco := Compute(Dollars(2790), sla, 0.999)
	if tco.ExpectedPenalty != 0 {
		t.Fatalf("penalty above SLA = %v, want 0", tco.ExpectedPenalty)
	}
	if tco.Total() != Dollars(2790) {
		t.Fatalf("Total() = %v, want $2,790", tco.Total())
	}

	// Below SLA: C_HA + slippage·SP.
	tco = Compute(Dollars(350), sla, 0.97)
	if want := Dollars(350 + 730); tco.Total() != want {
		t.Fatalf("Total() = %v, want %v", tco.Total(), want)
	}
}

func TestLabor(t *testing.T) {
	// The case study's $30/hour at 20 hours/month.
	if got, want := Labor(20, Dollars(30)), Dollars(600); got != want {
		t.Fatalf("Labor(20, $30) = %v, want %v", got, want)
	}
	if got := Labor(0, Dollars(30)); got != 0 {
		t.Fatalf("Labor(0, $30) = %v, want 0", got)
	}
}

func TestPropertyTCOMonotoneInUptime(t *testing.T) {
	sla := SLA{UptimePercent: 99.9, Penalty: Penalty{PerHour: Dollars(250)}}
	err := quick.Check(func(u1, u2 float64) bool {
		u1 = math.Abs(u1) - math.Floor(math.Abs(u1))
		u2 = math.Abs(u2) - math.Floor(math.Abs(u2))
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		// Higher uptime never raises TCO at fixed HA cost.
		lo := Compute(Dollars(100), sla, u2).Total()
		hi := Compute(Dollars(100), sla, u1).Total()
		return lo <= hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPenaltyNonNegative(t *testing.T) {
	err := quick.Check(func(pct, uptime float64, perHour int64) bool {
		sla := SLA{
			UptimePercent: 1 + math.Abs(pct) - math.Floor(math.Abs(pct))*0 + 50, // in (1, ~)
			Penalty:       Penalty{PerHour: Money(perHour % 1e12).MulFloat(1).abs()},
		}
		if sla.UptimePercent > 100 {
			sla.UptimePercent = 100
		}
		u := math.Abs(uptime) - math.Floor(math.Abs(uptime))
		return sla.ExpectedPenaltyPerMonth(u) >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func (m Money) abs() Money {
	if m < 0 {
		return -m
	}
	return m
}

func TestHoursPerMonthConstant(t *testing.T) {
	// δ/(12·60) per the paper = 525600/720 = 730 hours/month.
	if availability.HoursPerMonth != 730 {
		t.Fatalf("HoursPerMonth = %v, want 730", availability.HoursPerMonth)
	}
}

// Package cost implements the total-cost-of-ownership model of the
// paper's Equation 5: monthly TCO is the cost to implement and sustain
// the proposed HA plus the expected SLA-slippage penalty,
//
//	TCO = C_HA + max(0, U_SLA/100 − U_s) · δ/(12·60) · SP
//
// where SP is the contractual penalty per hour of unavailability beyond
// the SLA and δ/(12·60) converts a downtime fraction to hours per
// month.
//
// Money is represented as integer micro-dollars so that rate cards,
// penalties and roll-ups compose without floating-point drift.
package cost

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"uptimebroker/internal/availability"
)

// Money is an amount in micro-dollars (1e-6 USD). The integer
// representation keeps arithmetic exact across the additions and
// comparisons the optimizer performs; conversion to float happens only
// at formatting boundaries.
type Money int64

// MicroPerDollar is the scaling factor between Money and dollars.
const MicroPerDollar = 1_000_000

// Dollars converts a dollar amount to Money, rounding to the nearest
// micro-dollar.
func Dollars(d float64) Money {
	return Money(math.Round(d * MicroPerDollar))
}

// Cents converts an integer cent amount to Money exactly.
func Cents(c int64) Money { return Money(c * MicroPerDollar / 100) }

// Dollars returns the amount as a float64 dollar value.
func (m Money) Dollars() float64 { return float64(m) / MicroPerDollar }

// Mul scales the amount by an integer factor.
func (m Money) Mul(n int64) Money { return m * Money(n) }

// MulFloat scales the amount by a float factor, rounding to the nearest
// micro-dollar. It is used for expected-value computations (probability
// × penalty), where the result is inherently an estimate.
func (m Money) MulFloat(f float64) Money {
	return Money(math.Round(float64(m) * f))
}

// String renders the amount as dollars with two decimal places and a
// thousands separator, e.g. "$2,790.00" or "-$12.50".
func (m Money) String() string {
	neg := m < 0
	if neg {
		m = -m
	}
	cents := (int64(m) + MicroPerDollar/200) / (MicroPerDollar / 100) // round to cents
	whole := cents / 100
	frac := cents % 100

	digits := strconv.FormatInt(whole, 10)
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	b.WriteByte('$')
	for i, r := range digits {
		if i > 0 && (len(digits)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	fmt.Fprintf(&b, ".%02d", frac)
	return b.String()
}

// Penalty describes a contractual slippage clause: SP dollars per hour
// of system unavailability beyond the agreed SLA.
type Penalty struct {
	// PerHour is SP, the charge per hour of slippage.
	PerHour Money
}

// SLA is an uptime service-level agreement.
type SLA struct {
	// UptimePercent is U_SLA as stipulated in the contract, e.g. 98 for
	// "98% uptime".
	UptimePercent float64

	// Penalty is the slippage clause attached to the SLA.
	Penalty Penalty
}

// Validate reports whether the SLA is well-formed.
func (s SLA) Validate() error {
	if s.UptimePercent <= 0 || s.UptimePercent > 100 {
		return fmt.Errorf("cost: SLA uptime %v%%, must be in (0, 100]", s.UptimePercent)
	}
	if s.Penalty.PerHour < 0 {
		return fmt.Errorf("cost: penalty %v per hour, must be >= 0", s.Penalty.PerHour)
	}
	return nil
}

// Target returns the SLA as an uptime fraction in (0, 1].
func (s SLA) Target() float64 { return s.UptimePercent / 100 }

// SlippageHoursPerMonth returns the expected hours per month by which
// the given uptime falls short of the SLA:
// max(0, U_SLA/100 − U_s) · δ/(12·60). A system meeting the SLA slips
// zero hours.
func (s SLA) SlippageHoursPerMonth(uptime float64) float64 {
	gap := s.Target() - uptime
	if gap <= 0 {
		return 0
	}
	return gap * availability.HoursPerMonth
}

// ExpectedPenaltyPerMonth applies the penalty clause to the expected
// slippage (the second term of Equation 5).
func (s SLA) ExpectedPenaltyPerMonth(uptime float64) Money {
	return s.Penalty.PerHour.MulFloat(s.SlippageHoursPerMonth(uptime))
}

// TCO is the monthly total cost of ownership of one HA-enabled solution
// option.
type TCO struct {
	// HA is C_HA: monthly infrastructure plus labor cost of the chosen
	// redundancy.
	HA Money

	// ExpectedPenalty is the expected monthly slippage payout.
	ExpectedPenalty Money
}

// Total returns HA + ExpectedPenalty.
func (t TCO) Total() Money { return t.HA + t.ExpectedPenalty }

// Compute evaluates Equation 5 for one candidate deployment.
func Compute(haCost Money, sla SLA, uptime float64) TCO {
	return TCO{
		HA:              haCost,
		ExpectedPenalty: sla.ExpectedPenaltyPerMonth(uptime),
	}
}

// Labor converts a monthly effort in hours at an hourly rate into
// Money. The paper's case study uses $30/hour.
func Labor(hoursPerMonth float64, hourlyRate Money) Money {
	return hourlyRate.MulFloat(hoursPerMonth)
}

package reccache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// value wraps a payload so tests can assert identity sharing.
type value struct{ n int }

func TestDoCachesAndHits(t *testing.T) {
	c := New(Config{})
	var runs atomic.Int64
	fn := func(ctx context.Context) (any, int64, error) {
		runs.Add(1)
		return &value{n: 7}, 100, nil
	}
	v1, st, err := c.Do(context.Background(), "k", fn)
	if err != nil || st != StatusMiss {
		t.Fatalf("first Do: status %q err %v, want miss nil", st, err)
	}
	v2, st, err := c.Do(context.Background(), "k", fn)
	if err != nil || st != StatusHit {
		t.Fatalf("second Do: status %q err %v, want hit nil", st, err)
	}
	if v1 != v2 {
		t.Fatal("hit returned a different value than the miss inserted")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Shared != 0 || m.Entries != 1 || m.Bytes != 100 {
		t.Fatalf("metrics = %+v", m)
	}
	if got := m.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestEpochStyleKeyChangeMisses(t *testing.T) {
	// The cache has no invalidation API by design: callers embed an
	// epoch in the key. Simulate a catalog bump and check the old
	// entry simply stops being addressable.
	c := New(Config{})
	fn := func(n int) Fn {
		return func(ctx context.Context) (any, int64, error) { return &value{n: n}, 10, nil }
	}
	key := func(epoch uint64) string { return fmt.Sprintf("epoch=%d|req", epoch) }
	v1, _, err := c.Do(context.Background(), key(1), fn(1))
	if err != nil {
		t.Fatal(err)
	}
	v2, st, err := c.Do(context.Background(), key(2), fn(2))
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusMiss {
		t.Fatalf("post-bump Do status = %q, want miss", st)
	}
	if v1.(*value).n != 1 || v2.(*value).n != 2 {
		t.Fatal("epoch bump did not recompute")
	}
	if _, st, _ := c.Do(context.Background(), key(1), fn(1)); st != StatusHit {
		t.Fatalf("old-epoch entry should still hit until evicted, got %q", st)
	}
}

func TestSingleflightCollapsesConcurrentCalls(t *testing.T) {
	c := New(Config{})
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, int64, error) {
		runs.Add(1)
		close(started)
		<-release
		return &value{n: 42}, 10, nil
	}

	const waiters = 32
	results := make([]any, waiters)
	statuses := make([]Status, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup

	// Leader first, so the flight exists before the joiners arrive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], statuses[0], errs[0] = c.Do(context.Background(), "k", fn)
	}()
	<-started
	if got := c.Metrics().Inflight; got != 1 {
		t.Fatalf("inflight = %d during flight, want 1", got)
	}
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], statuses[i], errs[i] = c.Do(context.Background(), "k", fn)
		}(i)
	}
	// Give joiners a moment to attach, then let the computation finish.
	for c.Metrics().Shared < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times for %d concurrent calls, want 1", got, waiters)
	}
	var miss, shared int
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("call %d got a different value", i)
		}
		switch statuses[i] {
		case StatusMiss:
			miss++
		case StatusShared:
			shared++
		default:
			t.Fatalf("call %d: unexpected status %q", i, statuses[i])
		}
	}
	if miss != 1 || shared != waiters-1 {
		t.Fatalf("miss=%d shared=%d, want 1 and %d", miss, shared, waiters-1)
	}
	m := c.Metrics()
	if m.Inflight != 0 {
		t.Fatalf("inflight = %d after completion, want 0", m.Inflight)
	}
}

func TestCancelledLeaderHandsOff(t *testing.T) {
	c := New(Config{})
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(ctx context.Context) (any, int64, error) {
		runs.Add(1)
		close(started)
		select {
		case <-release:
			return &value{n: 1}, 10, nil
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", fn)
		leaderDone <- err
	}()
	<-started

	joinerDone := make(chan struct{})
	var jv any
	var jst Status
	var jerr error
	go func() {
		jv, jst, jerr = c.Do(context.Background(), "k", fn)
		close(joinerDone)
	}()
	for c.Metrics().Shared < 1 {
		time.Sleep(time.Millisecond)
	}

	// The leader bails; the joiner must still get the result.
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want Canceled", err)
	}
	select {
	case <-joinerDone:
		t.Fatal("joiner finished before the computation did")
	default:
	}
	close(release)
	<-joinerDone
	if jerr != nil {
		t.Fatalf("joiner error: %v", jerr)
	}
	if jst != StatusShared {
		t.Fatalf("joiner status = %q, want shared", jst)
	}
	if jv.(*value).n != 1 {
		t.Fatal("joiner got wrong value")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	// And the completed result was cached for the next caller.
	if _, st, _ := c.Do(context.Background(), "k", fn); st != StatusHit {
		t.Fatalf("follow-up status = %q, want hit", st)
	}
}

func TestLastWaiterLeavingCancelsRun(t *testing.T) {
	c := New(Config{})
	started := make(chan struct{})
	cancelled := make(chan struct{})
	fn := func(ctx context.Context) (any, int64, error) {
		close(started)
		<-ctx.Done()
		close(cancelled)
		return nil, 0, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", fn)
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation context was not cancelled after the last waiter left")
	}
	// A fresh caller after abandonment starts a new flight and is not
	// poisoned by the dead one.
	v, st, err := c.Do(context.Background(), "k", func(ctx context.Context) (any, int64, error) {
		return &value{n: 9}, 10, nil
	})
	if err != nil || st != StatusMiss || v.(*value).n != 9 {
		t.Fatalf("post-abandon Do = (%v, %q, %v), want fresh miss", v, st, err)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(Config{})
	boom := errors.New("boom")
	calls := 0
	fn := func(ctx context.Context) (any, int64, error) {
		calls++
		if calls == 1 {
			return nil, 0, boom
		}
		return &value{n: 3}, 10, nil
	}
	if _, st, err := c.Do(context.Background(), "k", fn); !errors.Is(err, boom) || st != StatusMiss {
		t.Fatalf("first Do = (%q, %v), want miss boom", st, err)
	}
	if m := c.Metrics(); m.Entries != 0 {
		t.Fatalf("error was cached: %+v", m)
	}
	if v, st, err := c.Do(context.Background(), "k", fn); err != nil || st != StatusMiss || v.(*value).n != 3 {
		t.Fatalf("second Do = (%v, %q, %v), want fresh miss", v, st, err)
	}
}

func TestEntryCountEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	put := func(k string) {
		t.Helper()
		if _, _, err := c.Do(context.Background(), k, func(ctx context.Context) (any, int64, error) {
			return k, 1, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("a")
	put("b")
	if _, st, _ := c.Do(context.Background(), "a", nil); st != StatusHit {
		t.Fatalf("a should hit, got %q", st)
	}
	put("c") // evicts b (LRU: a was just touched)
	m := c.Metrics()
	if m.Entries != 2 || m.Evictions != 1 {
		t.Fatalf("metrics = %+v, want 2 entries 1 eviction", m)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
}

func TestByteBudgetEviction(t *testing.T) {
	c := New(Config{MaxBytes: 250})
	put := func(k string, bytes int64) {
		t.Helper()
		if _, _, err := c.Do(context.Background(), k, func(ctx context.Context) (any, int64, error) {
			return k, bytes, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("a", 100)
	put("b", 100)
	if m := c.Metrics(); m.Bytes != 200 || m.Evictions != 0 {
		t.Fatalf("metrics = %+v, want 200 bytes 0 evictions", m)
	}
	put("c", 100) // 300 > 250: evict a (oldest)
	m := c.Metrics()
	if m.Bytes != 200 || m.Entries != 2 || m.Evictions != 1 {
		t.Fatalf("metrics = %+v, want 200 bytes 2 entries 1 eviction", m)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted for the byte budget")
	}
	// A single oversized entry is retained (budget is approximate).
	put("huge", 1000)
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("newest oversized entry must be retained")
	}
	if m := c.Metrics(); m.Entries != 1 {
		t.Fatalf("oversized insert should have evicted the rest: %+v", m)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(Config{TTL: time.Minute})
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	if _, _, err := c.Do(context.Background(), "k", func(ctx context.Context) (any, int64, error) {
		return &value{n: 1}, 10, nil
	}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(30 * time.Second)
	if _, st, _ := c.Do(context.Background(), "k", nil); st != StatusHit {
		t.Fatalf("within TTL: status %q, want hit", st)
	}
	clock = clock.Add(2 * time.Minute)
	var recomputed bool
	if _, st, err := c.Do(context.Background(), "k", func(ctx context.Context) (any, int64, error) {
		recomputed = true
		return &value{n: 2}, 10, nil
	}); err != nil || st != StatusMiss || !recomputed {
		t.Fatalf("past TTL: status %q err %v recomputed %v, want miss", st, err, recomputed)
	}
	if m := c.Metrics(); m.Expired != 1 {
		t.Fatalf("metrics = %+v, want 1 expired", m)
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(context.Background(), k, func(ctx context.Context) (any, int64, error) {
			return k, 10, nil
		})
	}
	c.Purge()
	if m := c.Metrics(); m.Entries != 0 || m.Bytes != 0 {
		t.Fatalf("after Purge: %+v", m)
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines with
// overlapping keys; run under -race this is the package's data-race
// canary.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(Config{MaxEntries: 8, MaxBytes: 400, TTL: time.Hour})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g+i)%12)
				v, _, err := c.Do(context.Background(), k, func(ctx context.Context) (any, int64, error) {
					return k, 50, nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", k, err)
					return
				}
				if v.(string) != k {
					t.Errorf("Do(%s) returned %v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	m := c.Metrics()
	if m.Entries > 8 || m.Bytes > 400 {
		t.Fatalf("bounds violated: %+v", m)
	}
	if m.Inflight != 0 {
		t.Fatalf("inflight leak: %+v", m)
	}
}

// Package reccache is the broker's content-addressed result cache:
// the serving layer that turns repeated recommendation problems into
// O(1) lookups instead of k^n searches, and collapses concurrent
// identical requests into a single in-flight search (singleflight).
//
// The cache itself is deliberately dumb about domain types — it maps
// opaque string keys to opaque values. Correctness lives entirely in
// the key: callers (internal/broker) derive it as a stable hash over
// everything the result depends on, including the catalog and
// telemetry epochs, so any input mutation changes the key and stale
// entries simply stop being addressable. They are never served again;
// they age out through the LRU bound rather than through an explicit
// invalidation sweep.
//
// Capacity is bounded two ways — a maximum entry count and an
// approximate byte budget (callers supply a size estimate per value)
// — with an optional TTL for deployments that want time-based
// freshness on top of epoch addressing.
package reccache

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// Status classifies how a Do call obtained its value.
type Status string

const (
	// StatusHit means the value was served from the cache; no search ran.
	StatusHit Status = "hit"

	// StatusMiss means this call was the flight leader: it triggered
	// the search whose result was (on success) inserted into the cache.
	StatusMiss Status = "miss"

	// StatusShared means the call joined an identical in-flight search
	// started by an earlier caller and shared its result.
	StatusShared Status = "shared"
)

// Config bounds a Cache.
type Config struct {
	// MaxEntries caps the number of cached results; <= 0 means
	// DefaultMaxEntries.
	MaxEntries int

	// MaxBytes caps the cache's approximate memory footprint, using
	// the per-value size estimates callers pass to Do; <= 0 means no
	// byte budget. The newest entry is always retained, so a single
	// oversized result can transiently exceed the budget rather than
	// render the cache useless.
	MaxBytes int64

	// TTL expires entries this long after insertion; <= 0 means no
	// time-based expiry (epoch-addressed keys already handle input
	// staleness).
	TTL time.Duration
}

// DefaultMaxEntries is the entry cap used when Config.MaxEntries is
// unset.
const DefaultMaxEntries = 1024

// Metrics is a point-in-time snapshot of the cache counters.
type Metrics struct {
	// Hits counts Do calls answered from a completed cached entry.
	Hits int64 `json:"hits"`

	// Misses counts Do calls that became flight leaders and ran the
	// computation.
	Misses int64 `json:"misses"`

	// Shared counts Do calls that joined another caller's in-flight
	// computation instead of starting their own.
	Shared int64 `json:"shared"`

	// Evictions counts entries dropped to respect MaxEntries/MaxBytes.
	Evictions int64 `json:"evictions"`

	// Expired counts entries dropped because their TTL lapsed.
	Expired int64 `json:"expired"`

	// Inflight is the number of computations currently running.
	Inflight int64 `json:"inflight"`

	// Entries and Bytes are the current cache occupancy (Bytes uses
	// the callers' size estimates).
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// HitRate is the fraction of Do calls that avoided running the
// computation (hits plus shared over all calls); 0 when no calls have
// been made.
func (m Metrics) HitRate() float64 {
	total := m.Hits + m.Misses + m.Shared
	if total == 0 {
		return 0
	}
	return float64(m.Hits+m.Shared) / float64(total)
}

// entry is one cached value.
type entry struct {
	key   string
	val   any
	bytes int64
	added time.Time
}

// flight is one in-flight computation with its waiters. The leader
// and every joiner hold a waiter count; the computation runs on a
// context detached from all of their cancellations, so one caller
// bailing out cannot poison the result for the rest. Only when the
// last waiter leaves is the run cancelled.
type flight struct {
	done      chan struct{} // closed after val/err are final
	val       any
	bytes     int64
	err       error
	waiters   int
	cancel    context.CancelFunc
	abandoned bool // all waiters left before completion
}

// Cache is a bounded LRU result cache with singleflight collapse. The
// zero value is not usable; construct with New. Values handed back by
// Do are shared across callers and must be treated as immutable.
type Cache struct {
	cfg Config
	now func() time.Time // stubbed in tests

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
	bytes    int64

	hits, misses, shared, evictions, expired int64
}

// New builds a cache with the given bounds.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	return &Cache{
		cfg:      cfg,
		now:      time.Now,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Fn computes a value when the cache cannot answer. It returns the
// value, an estimate of its resident size in bytes (for the byte
// budget), and an error. The context it receives is detached from any
// single caller's cancellation; it is cancelled only when every
// caller waiting on this computation has gone away.
type Fn func(ctx context.Context) (val any, bytes int64, err error)

// Do returns the cached value for key, or computes it with fn. N
// concurrent Do calls for the same key run fn exactly once and share
// the result. Errors are returned to every waiter and never cached.
// The returned Status reports how the value was obtained; on error it
// still reflects the caller's role (miss for the leader, shared for
// joiners).
func (c *Cache) Do(ctx context.Context, key string, fn Fn) (any, Status, error) {
	c.mu.Lock()
	if v, ok := c.lookupLocked(key); ok {
		c.hits++
		c.mu.Unlock()
		return v, StatusHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		f.waiters++
		c.shared++
		c.mu.Unlock()
		return c.wait(ctx, key, f, StatusShared)
	}
	// Become the flight leader. The computation runs on a context that
	// inherits this caller's values (progress hooks and the like) but
	// not its cancellation.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()
	go c.run(fctx, key, f, fn)
	return c.wait(ctx, key, f, StatusMiss)
}

// run executes fn and publishes the outcome to the flight's waiters.
func (c *Cache) run(fctx context.Context, key string, f *flight, fn Fn) {
	val, bytes, err := fn(fctx)
	c.mu.Lock()
	f.val, f.bytes, f.err = val, bytes, err
	if !f.abandoned {
		delete(c.inflight, key)
	}
	if err == nil {
		// Cache the result even if every waiter left: the search
		// finished anyway, so the next identical request may as well
		// hit. (An abandoned flight usually errors with Canceled
		// instead and caches nothing.)
		c.insertLocked(key, val, bytes)
	}
	c.mu.Unlock()
	close(f.done)
	f.cancel()
}

// wait blocks until the flight completes or the caller's own context
// is done. A caller that gives up stops waiting without disturbing
// the others; the last one out cancels the computation.
func (c *Cache) wait(ctx context.Context, key string, f *flight, status Status) (any, Status, error) {
	select {
	case <-f.done:
		return f.val, status, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		if f.waiters == 0 && !f.abandoned {
			f.abandoned = true
			delete(c.inflight, key)
			f.cancel()
		}
		c.mu.Unlock()
		return nil, status, ctx.Err()
	}
}

// lookupLocked finds a live entry, handling TTL expiry and LRU
// promotion.
func (c *Cache) lookupLocked(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if c.cfg.TTL > 0 && c.now().Sub(e.added) > c.cfg.TTL {
		c.removeLocked(el)
		c.expired++
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// insertLocked adds or refreshes an entry, then evicts from the LRU
// tail until the bounds hold again.
func (c *Cache) insertLocked(key string, val any, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += bytes - e.bytes
		e.val, e.bytes, e.added = val, bytes, c.now()
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, val: val, bytes: bytes, added: c.now()})
		c.items[key] = el
		c.bytes += bytes
	}
	for c.ll.Len() > c.cfg.MaxEntries ||
		(c.cfg.MaxBytes > 0 && c.bytes > c.cfg.MaxBytes && c.ll.Len() > 1) {
		c.removeLocked(c.ll.Back())
		c.evictions++
	}
}

// removeLocked drops one entry.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
}

// Get returns the cached value for key without computing anything. It
// counts as a hit or miss like Do, but never joins or starts flights.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.lookupLocked(key); ok {
		c.hits++
		return v, true
	}
	c.misses++
	return nil, false
}

// Purge drops every cached entry (in-flight computations are left to
// finish and re-insert). It exists for operational resets; routine
// invalidation happens through epoch-bearing keys instead.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
}

// Metrics returns a snapshot of the counters.
func (c *Cache) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Hits:      c.hits,
		Misses:    c.misses,
		Shared:    c.shared,
		Evictions: c.evictions,
		Expired:   c.expired,
		Inflight:  int64(len(c.inflight)),
		Entries:   int64(c.ll.Len()),
		Bytes:     c.bytes,
	}
}

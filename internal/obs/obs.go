// Package obs is the broker's metrics subsystem: atomic counters,
// gauges and fixed-bucket histograms behind one registry, with a
// Prometheus text exposition and a JSON snapshot form for the SSE
// metrics stream and the uptimectl dashboard.
//
// The package is dependency-free by design (the module vendors
// nothing) and the observation hot path — Counter.Add,
// Histogram.Observe — is lock-free and allocation-free, so
// instruments can sit on the evaluation and WAL paths without
// disturbing the zero-alloc pins the benchmarks enforce.
//
// Instruments are get-or-create: asking the registry twice for the
// same (name, labels) returns the same instrument, so independent
// subsystems can share a registry without coordinating registration
// order. Callback instruments (CounterFunc, GaugeFunc) pull their
// value at collection time from state another package already
// maintains — the bridge that migrates the pre-existing mutex-guarded
// counter structs (jobs.Metrics, reccache.Metrics) onto the registry
// without rewriting them.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension on a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Instrument kinds, as rendered in the exposition's # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// atomicFloat is a float64 with atomic Add/Store/Load via bit-casts.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Counter is a monotonically increasing count. The zero value is
// ready to use; Add and Inc are lock-free and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative for the exposition to stay
// a valid counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add moves the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64) { g.v.Add(delta) }

// Inc and Dec move the value by one.
func (g *Gauge) Inc() { g.v.Add(1) }
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Observe is
// lock-free and allocation-free; the bucket layout is immutable after
// construction.
type Histogram struct {
	// bounds are the inclusive upper bounds, ascending; observations
	// above the last land in the implicit +Inf bucket.
	bounds []float64
	// counts has len(bounds)+1 per-bucket (non-cumulative) tallies;
	// the exposition renders them cumulatively.
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSeconds records a duration given in seconds — an alias of
// Observe named for the call sites that time with time.Since.
func (h *Histogram) ObserveSeconds(seconds float64) { h.Observe(seconds) }

// Count returns how many observations the histogram has taken.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DefBuckets are general-purpose latency buckets in seconds (the
// Prometheus client default), suitable for request handling.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExponentialBuckets returns count upper bounds starting at start and
// multiplying by factor — the shape for latencies spanning orders of
// magnitude (WAL fsyncs, solver runs).
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("obs: invalid exponential buckets (start=%g factor=%g count=%d)", start, factor, count))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// series is one labeled member of a family: exactly one of the
// instrument fields is set. fn-backed series are read at collection.
type series struct {
	labels []Label
	// key is the rendered, sorted `a="b",c="d"` label set (no braces);
	// empty for the unlabeled series.
	key     string
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name string
	help string
	typ  string

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds the process's metric families. The zero value is
// not usable; construct with NewRegistry. All methods are safe for
// concurrent use, including collection concurrent with registration
// and observation.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns the named family, creating it on first use and
// panicking when the name is already registered under another type —
// a programmer error no test should let ship.
func (r *Registry) familyFor(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// seriesFor returns the family's series for the label set, creating
// it with mk on first use.
func (f *family) seriesFor(labels []Label, mk func() *series) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labels = sortedLabels(labels)
	s.key = key
	f.series[key] = s
	return s
}

// Counter returns the counter for (name, labels), creating it on
// first use. By convention counter names end in _total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.familyFor(name, help, typeCounter).seriesFor(labels, func() *series {
		return &series{counter: &Counter{}}
	})
	if s.counter == nil {
		panic(fmt.Sprintf("obs: counter %q%s already registered as a callback", name, bracedKey(labelKey(labels))))
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.familyFor(name, help, typeGauge).seriesFor(labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: gauge %q%s already registered as a callback", name, bracedKey(labelKey(labels))))
	}
	return s.gauge
}

// CounterFunc registers a counter whose value is pulled from fn at
// collection time — the bridge for counters another package already
// maintains. Re-registering the same (name, labels) replaces the
// callback (the latest owner of the underlying state wins, e.g. a
// reopened job store).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, typeCounter, fn, labels)
}

// GaugeFunc registers a gauge whose value is pulled from fn at
// collection time. Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.registerFunc(name, help, typeGauge, fn, labels)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64, labels []Label) {
	if fn == nil {
		panic(fmt.Sprintf("obs: nil callback for metric %q", name))
	}
	f := r.familyFor(name, help, typ)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		if s.fn == nil {
			panic(fmt.Sprintf("obs: metric %q%s already registered as a direct instrument", name, bracedKey(key)))
		}
		s.fn = fn
		return
	}
	f.series[key] = &series{labels: sortedLabels(labels), key: key, fn: fn}
}

// Histogram returns the histogram for (name, labels), creating it
// with the given bucket upper bounds on first use (later calls reuse
// the first registration's buckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	s := r.familyFor(name, help, typeHistogram).seriesFor(labels, func() *series {
		bounds := append([]float64(nil), buckets...)
		return &series{hist: &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}}
	})
	if s.hist == nil {
		panic(fmt.Sprintf("obs: histogram %q%s already registered as another kind", name, bracedKey(labelKey(labels))))
	}
	return s.hist
}

// sortedLabels returns a name-sorted copy of labels.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelKey renders the sorted `a="b",c="d"` form used both as the
// series map key and (braced) in the exposition.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := sortedLabels(labels)
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// bracedKey wraps a non-empty label key in braces for messages and
// sample lines.
func bracedKey(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// escapeLabelValue escapes a label value per the Prometheus text
// format: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

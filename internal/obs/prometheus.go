package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the Content-Type for the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, counter/gauge samples as name{labels} value, histograms as
// cumulative _bucket series with an explicit le="+Inf" plus _sum and
// _count. Families and series render in sorted order, so the output
// is deterministic for golden tests and diffs.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, s := range f.sortedSeries() {
			switch {
			case s.counter != nil:
				writeSample(bw, f.name, s.key, "", strconv.FormatInt(s.counter.Value(), 10))
			case s.gauge != nil:
				writeSample(bw, f.name, s.key, "", formatFloat(s.gauge.Value()))
			case s.fn != nil:
				writeSample(bw, f.name, s.key, "", formatFloat(s.fn()))
			case s.hist != nil:
				cum := uint64(0)
				for i, le := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					writeSample(bw, f.name+"_bucket", s.key, `le="`+formatFloat(le)+`"`, strconv.FormatUint(cum, 10))
				}
				// The +Inf bucket re-reads the total rather than adding
				// the overflow bucket to cum: concurrent Observes may
				// have advanced buckets already rendered, and the text
				// format only requires le="+Inf" to equal _count.
				count := s.hist.Count()
				writeSample(bw, f.name+"_bucket", s.key, `le="+Inf"`, strconv.FormatUint(count, 10))
				writeSample(bw, f.name+"_sum", s.key, "", formatFloat(s.hist.Sum()))
				writeSample(bw, f.name+"_count", s.key, "", strconv.FormatUint(count, 10))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one sample line, merging the series label key
// with an extra label (the histogram le).
func writeSample(w *bufio.Writer, name, key, extra, value string) {
	w.WriteString(name)
	if key != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(key)
		if key != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// formatFloat renders a float per the text format: shortest
// round-trip representation, with the special values spelled +Inf,
// -Inf and NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(h)
}

package obs

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_done_total", "Jobs completed.").Add(3)
	r.Counter("http_requests_total", "Requests.", L("route", "/v1/recommend")).Add(7)
	r.Counter("http_requests_total", "Requests.", L("route", "/v1/pareto")).Add(2)
	r.Gauge("jobs_queue_depth", "Queued jobs.").Set(4)
	r.GaugeFunc("catalog_epoch", "Catalog epoch.", func() float64 { return 12 })
	h := r.Histogram("rt_seconds", "Round trip.", []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.25)
	h.Observe(2)
	r.Gauge("weird", "W.", L("q", "a\"b\\c\nd")).Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	want := strings.Join([]string{
		`# HELP catalog_epoch Catalog epoch.`,
		`# TYPE catalog_epoch gauge`,
		`catalog_epoch 12`,
		`# HELP http_requests_total Requests.`,
		`# TYPE http_requests_total counter`,
		`http_requests_total{route="/v1/pareto"} 2`,
		`http_requests_total{route="/v1/recommend"} 7`,
		`# HELP jobs_done_total Jobs completed.`,
		`# TYPE jobs_done_total counter`,
		`jobs_done_total 3`,
		`# HELP jobs_queue_depth Queued jobs.`,
		`# TYPE jobs_queue_depth gauge`,
		`jobs_queue_depth 4`,
		`# HELP rt_seconds Round trip.`,
		`# TYPE rt_seconds histogram`,
		`rt_seconds_bucket{le="0.1"} 1`,
		`rt_seconds_bucket{le="0.5"} 2`,
		`rt_seconds_bucket{le="+Inf"} 3`,
		`rt_seconds_sum 2.3`,
		`rt_seconds_count 3`,
		`# HELP weird W.`,
		`# TYPE weird gauge`,
		`weird{q="a\"b\\c\nd"} 1`,
		``,
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	checkExposition(t, got)
}

// checkExposition validates the structural rules of the text format:
// every sample belongs to a # TYPE'd family declared before it,
// histogram buckets are cumulative (monotone non-decreasing), the
// le="+Inf" bucket equals _count, and _sum/_count are present.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	type histState struct {
		last    uint64
		infSeen bool
		inf     uint64
		count   uint64
		hasSum  bool
		hasCnt  bool
	}
	typed := map[string]string{}
	hists := map[string]*histState{}
	var current string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			typed[name] = typ
			current = name
			continue
		}
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		} else if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if base != current {
			t.Fatalf("line %d: sample %q outside its TYPE block (current %q)", ln+1, name, current)
		}
		if typed[base] != "histogram" {
			continue
		}
		// Histogram structural checks keyed by base name + label key
		// (ignoring le), so multi-series families validate per series.
		hkey := base + "|" + labelsSansLE(line)
		st := hists[hkey]
		if st == nil {
			st = &histState{}
			hists[hkey] = st
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		switch {
		case strings.HasPrefix(name, base) && strings.HasSuffix(name, "_bucket"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", ln+1, val, err)
			}
			if strings.Contains(line, `le="+Inf"`) {
				st.infSeen = true
				st.inf = n
			} else {
				if st.infSeen {
					t.Fatalf("line %d: finite bucket after +Inf", ln+1)
				}
				if n < st.last {
					t.Fatalf("line %d: bucket counts not cumulative (%d < %d)", ln+1, n, st.last)
				}
				st.last = n
			}
		case strings.HasSuffix(name, "_sum"):
			st.hasSum = true
		case strings.HasSuffix(name, "_count"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("line %d: count value %q: %v", ln+1, val, err)
			}
			st.hasCnt = true
			st.count = n
		}
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := hists[k]
		if !st.infSeen || !st.hasSum || !st.hasCnt {
			t.Fatalf("histogram %s missing +Inf/_sum/_count (%+v)", k, st)
		}
		if st.inf != st.count {
			t.Fatalf("histogram %s: le=\"+Inf\" (%d) != _count (%d)", k, st.inf, st.count)
		}
		if st.last > st.inf {
			t.Fatalf("histogram %s: finite bucket %d exceeds +Inf %d", k, st.last, st.inf)
		}
	}
}

// labelsSansLE extracts the label block of a sample line with any le
// label removed — the per-series key for histogram validation.
func labelsSansLE(line string) string {
	open := strings.IndexByte(line, '{')
	if open < 0 {
		return ""
	}
	close := strings.IndexByte(line, '}')
	if close < open {
		return ""
	}
	parts := strings.Split(line[open+1:close], ",")
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, `le="`) {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ",")
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0.25: "0.25",
		1:    "1",
		1e9:  "1e+09",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

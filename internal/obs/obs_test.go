package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "Hits.", L("route", "/v1/recommend"))
	b := r.Counter("hits_total", "Hits.", L("route", "/v1/recommend"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("hits_total", "Hits.", L("route", "/v1/pareto"))
	if a == other {
		t.Fatal("distinct label sets shared a counter")
	}

	// Label order must not matter for identity.
	h1 := r.Histogram("lat_seconds", "Latency.", nil, L("a", "1"), L("b", "2"))
	h2 := r.Histogram("lat_seconds", "Latency.", nil, L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order changed histogram identity")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	assertPanics(t, "family type conflict", func() { r.Gauge("x_total", "X.") })
	assertPanics(t, "callback over direct", func() {
		r.CounterFunc("x_total", "X.", func() float64 { return 0 })
	})
	r.GaugeFunc("cb", "CB.", func() float64 { return 1 })
	assertPanics(t, "direct over callback", func() { r.Gauge("cb", "CB.") })
	assertPanics(t, "nil callback", func() { r.GaugeFunc("nilfn", "N.", nil) })
	assertPanics(t, "unsorted buckets", func() {
		r.Histogram("bad", "B.", []float64{1, 1})
	})
	assertPanics(t, "bad exponential", func() { ExponentialBuckets(0, 2, 3) })
}

func assertPanics(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestCallbackReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("owner", "O.", func() float64 { return 1 })
	r.GaugeFunc("owner", "O.", func() float64 { return 2 })
	if got := r.Snapshot().Value("owner"); got != 2 {
		t.Fatalf("callback value = %g, want 2 (latest registration wins)", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "H.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	snap := r.Snapshot()
	fam, ok := snap.Family("h")
	if !ok {
		t.Fatal("family h missing from snapshot")
	}
	s := fam.Series[0]
	want := []Bucket{{LE: 1, Count: 2}, {LE: 2, Count: 3}, {LE: 4, Count: 4}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Count != 5 {
		t.Fatalf("series count = %d, want 5", s.Count)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "C.", L("k", "a")).Add(3)
	r.Counter("c_total", "C.", L("k", "b")).Add(4)
	snap := r.Snapshot()
	if got := snap.Value("c_total"); got != 7 {
		t.Fatalf("Value = %g, want 7", got)
	}
	if got := snap.Value("absent"); got != 0 {
		t.Fatalf("Value(absent) = %g, want 0", got)
	}

	h1 := r.Histogram("lat", "L.", []float64{1, 2}, L("r", "x"))
	h2 := r.Histogram("lat", "L.", []float64{1, 2}, L("r", "y"))
	h1.Observe(0.5)
	h2.Observe(1.5)
	fam, _ := r.Snapshot().Family("lat")
	m := fam.Merged()
	if m.Count != 2 || m.Sum != 2 {
		t.Fatalf("merged count/sum = %d/%g, want 2/2", m.Count, m.Sum)
	}
	if m.Buckets[0].Count != 1 || m.Buckets[1].Count != 2 {
		t.Fatalf("merged buckets = %v", m.Buckets)
	}
}

func TestDelta(t *testing.T) {
	prev := Series{Sum: 10, Count: 4, Buckets: []Bucket{{LE: 1, Count: 2}, {LE: 2, Count: 4}}}
	cur := Series{Sum: 16, Count: 7, Buckets: []Bucket{{LE: 1, Count: 3}, {LE: 2, Count: 7}}}
	d := Delta(cur, prev)
	if d.Sum != 6 || d.Count != 3 {
		t.Fatalf("delta sum/count = %g/%d, want 6/3", d.Sum, d.Count)
	}
	if d.Buckets[0].Count != 1 || d.Buckets[1].Count != 3 {
		t.Fatalf("delta buckets = %v", d.Buckets)
	}

	// A counter reset (cur < prev) clamps to the current window.
	reset := Delta(prev, cur)
	if reset.Count != 4 || reset.Sum != 10 {
		t.Fatalf("reset delta = %+v, want current-window values", reset)
	}
}

func TestQuantile(t *testing.T) {
	s := Series{Count: 100, Buckets: []Bucket{
		{LE: 0.1, Count: 50},
		{LE: 0.2, Count: 90},
		{LE: 0.4, Count: 100},
	}}
	if got := Quantile(0.5, s); got != 0.1 {
		t.Fatalf("p50 = %g, want 0.1", got)
	}
	// p75: rank 75 lies in (0.1, 0.2]; 25/40 of the way through.
	if got := Quantile(0.75, s); math.Abs(got-0.1625) > 1e-9 {
		t.Fatalf("p75 = %g, want 0.1625", got)
	}
	if got := Quantile(1, s); got != 0.4 {
		t.Fatalf("p100 = %g, want 0.4", got)
	}
	if got := Quantile(0.5, Series{}); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %g, want NaN", got)
	}

	// Quantile falling in the +Inf bucket returns the last finite bound.
	inf := Series{Count: 10, Buckets: []Bucket{{LE: 1, Count: 2}}}
	if got := Quantile(0.99, inf); got != 1 {
		t.Fatalf("+Inf-bucket quantile = %g, want 1", got)
	}
}

func TestBuildInfo(t *testing.T) {
	b := CurrentBuild()
	if b.GoVersion == "" {
		t.Fatal("empty GoVersion")
	}
	if ProcessStart().IsZero() || ProcessStart().After(time.Now()) {
		t.Fatalf("implausible process start %v", ProcessStart())
	}
	r := NewRegistry()
	RegisterBuildInfo(r)
	snap := r.Snapshot()
	fam, ok := snap.Family("build_info")
	if !ok || len(fam.Series) != 1 || fam.Series[0].Value != 1 {
		t.Fatalf("build_info family = %+v", fam)
	}
	if fam.Series[0].Labels["go_version"] == "" {
		t.Fatal("build_info missing go_version label")
	}
	if snap.Value("process_start_time_seconds") <= 0 {
		t.Fatal("process_start_time_seconds not positive")
	}
}

// TestConcurrentScrape races observation, registration and collection;
// run under -race it is the data-race canary for the whole package.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total", "Ops.", L("w", string(rune('a'+w))))
			h := r.Histogram("op_seconds", "Op time.", nil)
			g := r.Gauge("busy", "Busy.")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) / 1000)
				g.Set(float64(i % 10))
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		r.Snapshot()
	}
	close(stop)
	wg.Wait()

	// After quiescence the exposition invariants must hold exactly.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, sb.String())
}

func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	h := r.Histogram("h_seconds", "H.", nil)
	g := r.Gauge("g", "G.")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.017) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "B.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "B.", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

package obs

import (
	"math"
	"sort"
	"time"
)

// Snapshot is a point-in-time JSON-friendly copy of a registry's
// contents — the payload of the SSE metrics stream and the input the
// uptimectl dashboard diffs between frames.
type Snapshot struct {
	// Time stamps the collection.
	Time time.Time `json:"time"`

	// Families lists every metric family, sorted by name.
	Families []Family `json:"families"`
}

// Family is one metric name with its type and series.
type Family struct {
	Name string `json:"name"`

	// Type is "counter", "gauge" or "histogram".
	Type string `json:"type"`

	Help string `json:"help,omitempty"`

	// Series lists the labeled members, sorted by label key.
	Series []Series `json:"series"`
}

// Series is one labeled member of a family. Counters and gauges carry
// Value; histograms carry Buckets/Sum/Count (JSON cannot encode +Inf,
// so the implicit +Inf bucket is omitted — its cumulative count is
// Count).
type Series struct {
	Labels map[string]string `json:"labels,omitempty"`

	Value float64 `json:"value"`

	// Buckets are cumulative counts per upper bound, ascending.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	// LE is the inclusive upper bound in the observed unit.
	LE float64 `json:"le"`

	// Count is the cumulative number of observations at or below LE.
	Count uint64 `json:"count"`
}

// Snapshot collects the registry's current values. It is safe to call
// concurrently with observation and registration; each series is read
// atomically but the snapshot as a whole is not a consistent cut
// (metrics move while it is taken, as with any scrape).
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Time: time.Now()}
	for _, f := range r.sortedFamilies() {
		fam := Family{Name: f.name, Type: f.typ, Help: f.help}
		for _, s := range f.sortedSeries() {
			out := Series{}
			if len(s.labels) > 0 {
				out.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					out.Labels[l.Name] = l.Value
				}
			}
			switch {
			case s.counter != nil:
				out.Value = float64(s.counter.Value())
			case s.gauge != nil:
				out.Value = s.gauge.Value()
			case s.fn != nil:
				out.Value = s.fn()
			case s.hist != nil:
				out.Buckets = make([]Bucket, len(s.hist.bounds))
				cum := uint64(0)
				for i, le := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					out.Buckets[i] = Bucket{LE: le, Count: cum}
				}
				out.Sum = s.hist.Sum()
				out.Count = s.hist.Count()
			}
			fam.Series = append(fam.Series, out)
		}
		snap.Families = append(snap.Families, fam)
	}
	return snap
}

// sortedFamilies returns the families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns the family's series ordered by label key.
func (f *family) sortedSeries() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Family returns the named family, if present.
func (s Snapshot) Family(name string) (Family, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Total sums the family's series values — the all-labels total of a
// counter or gauge family. Histogram families total zero; use Merged.
func (f Family) Total() float64 {
	t := 0.0
	for _, s := range f.Series {
		t += s.Value
	}
	return t
}

// Value returns the family's all-series total, or 0 when the family
// is absent — the one-liner dashboards want.
func (s Snapshot) Value(name string) float64 {
	f, ok := s.Family(name)
	if !ok {
		return 0
	}
	return f.Total()
}

// Merged folds a histogram family's series into one: cumulative
// bucket counts, sums and counts added pointwise. Series with
// differing bucket layouts contribute their counts only (every
// histogram a family shares a registry-enforced layout, so in
// practice the buckets align).
func (f Family) Merged() Series {
	var out Series
	for _, s := range f.Series {
		out.Sum += s.Sum
		out.Count += s.Count
		if len(out.Buckets) == 0 {
			out.Buckets = append([]Bucket(nil), s.Buckets...)
			continue
		}
		if len(s.Buckets) == len(out.Buckets) {
			for i := range out.Buckets {
				out.Buckets[i].Count += s.Buckets[i].Count
			}
		}
	}
	return out
}

// Delta returns cur minus prev for one histogram series: the
// observations that arrived between two snapshots. Counts clamp at
// zero, so a counter reset (process restart) degrades to the current
// window instead of going negative.
func Delta(cur, prev Series) Series {
	out := Series{Labels: cur.Labels}
	out.Sum = cur.Sum - prev.Sum
	if out.Sum < 0 {
		out.Sum = cur.Sum
	}
	out.Count = subClamp(cur.Count, prev.Count)
	out.Buckets = make([]Bucket, len(cur.Buckets))
	for i, b := range cur.Buckets {
		c := b.Count
		if i < len(prev.Buckets) && prev.Buckets[i].LE == b.LE {
			c = subClamp(b.Count, prev.Buckets[i].Count)
		}
		out.Buckets[i] = Bucket{LE: b.LE, Count: c}
	}
	return out
}

func subClamp(a, b uint64) uint64 {
	if b > a {
		return a
	}
	return a - b
}

// Quantile estimates the q-th quantile (q in [0, 1]) of a histogram
// series by linear interpolation within the containing bucket — the
// standard Prometheus histogram_quantile estimate. It returns NaN
// when the series has no observations, and the last finite bound when
// the quantile falls in the +Inf bucket (the estimate cannot exceed
// what the layout can resolve).
func Quantile(q float64, s Series) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	lower := 0.0
	prevCount := uint64(0)
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			in := b.Count - prevCount
			if in == 0 {
				return b.LE
			}
			frac := (rank - float64(prevCount)) / float64(in)
			return lower + (b.LE-lower)*frac
		}
		lower = b.LE
		prevCount = b.Count
	}
	return s.Buckets[len(s.Buckets)-1].LE
}

package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart is stamped at init and is what the
// process_start_time_seconds gauge and uptime displays report.
var processStart = time.Now()

// ProcessStart returns when this process started (package init time).
func ProcessStart() time.Time { return processStart }

// BuildInfo identifies the running binary.
type BuildInfo struct {
	// Version is the main module's version: a tag or pseudo-version
	// for released builds, "(devel)" for local ones.
	Version string `json:"version"`

	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// CurrentBuild reads the binary's build information.
func CurrentBuild() BuildInfo {
	info := BuildInfo{Version: "(devel)", GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	return info
}

// RegisterBuildInfo publishes the standard identity gauges: a
// constant-1 build_info gauge carrying the version and Go toolchain
// as labels (the Prometheus idiom for joining facts onto series), and
// process_start_time_seconds as a Unix timestamp.
func RegisterBuildInfo(r *Registry) {
	b := CurrentBuild()
	r.GaugeFunc("build_info",
		"Build identity of the running broker; the value is always 1.",
		func() float64 { return 1 },
		L("version", b.Version), L("go_version", b.GoVersion))
	r.GaugeFunc("process_start_time_seconds",
		"Unix time the process started.",
		func() float64 { return float64(processStart.UnixNano()) / 1e9 })
}

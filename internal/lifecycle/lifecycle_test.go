package lifecycle

import (
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
)

func baseConfig(t *testing.T, truthParams []availability.NodeParams) Config {
	t.Helper()
	req := broker.CaseStudy()
	truth, ids, err := TruthFromComponents(req, truthParams)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Catalog:          catalog.Default(),
		Request:          req,
		Truth:            truth,
		IDs:              ids,
		Epochs:           4,
		EpochLength:      5 * 365 * 24 * time.Hour,
		MinExposureYears: 10,
		Seed:             20170611,
	}
}

// catalogAlignedTruth mirrors the catalog priors, so recommendations
// must never move.
func catalogAlignedTruth() []availability.NodeParams {
	return []availability.NodeParams{
		{Down: 0.0055, FailuresPerYear: 5}, // compute
		{Down: 0.0200, FailuresPerYear: 3}, // storage
		{Down: 0.0146, FailuresPerYear: 4}, // network
	}
}

// contradictingTruth makes compute the dominant risk and storage solid.
func contradictingTruth() []availability.NodeParams {
	return []availability.NodeParams{
		{Down: 0.0300, FailuresPerYear: 25},
		{Down: 0.0004, FailuresPerYear: 1},
		{Down: 0.0004, FailuresPerYear: 1},
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig(t, catalogAlignedTruth())
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil catalog", func(c *Config) { c.Catalog = nil }},
		{"bad request", func(c *Config) { c.Request.Base.Components = nil }},
		{"bad truth", func(c *Config) { c.Truth.Clusters = nil }},
		{"id mismatch", func(c *Config) { c.IDs = c.IDs[:1] }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"zero epoch length", func(c *Config) { c.EpochLength = 0 }},
		{"negative exposure gate", func(c *Config) { c.MinExposureYears = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := baseConfig(t, catalogAlignedTruth())
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestTruthFromComponentsMismatch(t *testing.T) {
	req := broker.CaseStudy()
	if _, _, err := TruthFromComponents(req, nil); err == nil {
		t.Fatal("mismatched params should fail")
	}
}

func TestLifecycleStableWhenTruthMatchesPriors(t *testing.T) {
	cfg := baseConfig(t, catalogAlignedTruth())
	epochs, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(epochs) != cfg.Epochs {
		t.Fatalf("epochs = %d, want %d", len(epochs), cfg.Epochs)
	}
	for _, e := range epochs {
		if e.BestOption != 3 {
			t.Fatalf("epoch %d: recommendation moved to #%d under prior-aligned truth", e.Index, e.BestOption)
		}
		if e.SimulatedUptime <= 0.9 || e.SimulatedUptime > 1 {
			t.Fatalf("epoch %d: implausible simulated uptime %v", e.Index, e.SimulatedUptime)
		}
	}
	// Exposure accumulates monotonically.
	for i := 1; i < len(epochs); i++ {
		if epochs[i].ExposureYears <= epochs[i-1].ExposureYears {
			t.Fatalf("exposure not accumulating: %v", epochs)
		}
	}
}

func TestLifecycleAdaptsWhenTruthContradictsPriors(t *testing.T) {
	cfg := baseConfig(t, contradictingTruth())
	epochs, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Epoch 0 observes 5 years × 5 nodes = 25 node-years, which crosses
	// the 10-node-year gate already; so by the *last* epoch the broker
	// must have flipped away from storage HA toward compute HA.
	last := epochs[len(epochs)-1]
	if !last.UsingTelemetry {
		t.Fatalf("final epoch still on catalog priors: %+v", last)
	}
	if last.BestLabel != "compute=esx-ha" {
		t.Fatalf("final recommendation = %q, want compute=esx-ha", last.BestLabel)
	}
}

func TestLifecycleGateDelaysAdoption(t *testing.T) {
	// With an absurdly high exposure gate the broker must keep using
	// priors (and the #3 recommendation) forever.
	cfg := baseConfig(t, contradictingTruth())
	cfg.MinExposureYears = 1e9
	epochs, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, e := range epochs {
		if e.UsingTelemetry {
			t.Fatalf("epoch %d adopted telemetry despite the gate", e.Index)
		}
		if e.BestOption != 3 {
			t.Fatalf("epoch %d moved to #%d without telemetry", e.Index, e.BestOption)
		}
	}
}

func TestLifecycleWithShocks(t *testing.T) {
	// Shocks inflate observed P beyond the independent-failure priors;
	// the run must complete and report lower simulated uptime than the
	// shock-free run.
	calm := baseConfig(t, catalogAlignedTruth())
	calm.Epochs = 1
	calmEpochs, err := Run(calm)
	if err != nil {
		t.Fatalf("Run(calm): %v", err)
	}

	stormy := baseConfig(t, catalogAlignedTruth())
	stormy.Epochs = 1
	stormy.ShocksPerYear = 12
	stormyEpochs, err := Run(stormy)
	if err != nil {
		t.Fatalf("Run(stormy): %v", err)
	}
	if stormyEpochs[0].SimulatedUptime >= calmEpochs[0].SimulatedUptime {
		t.Fatalf("shocks did not hurt uptime: %v vs %v",
			stormyEpochs[0].SimulatedUptime, calmEpochs[0].SimulatedUptime)
	}
}

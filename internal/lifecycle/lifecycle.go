// Package lifecycle runs the brokered service through time: the
// customer's estate operates (simulated) epoch after epoch, the
// broker's telemetry database accumulates outage observations, and at
// each epoch boundary the brokerage re-optimizes the HA plan with
// whatever knowledge it has — catalog priors at first, live estimates
// once enough node-years accrue.
//
// This is the operational loop behind the paper's Figure 2: the broker
// is valuable precisely because it keeps re-deriving the cheapest
// SLA-compliant architecture as its cross-customer database sharpens
// (Section II.C) and short-term skews smooth out (Section IV).
package lifecycle

import (
	"context"
	"fmt"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/failsim"
	"uptimebroker/internal/telemetry"
)

// Config parameterizes a lifecycle run.
type Config struct {
	// Catalog supplies technologies, rate cards and prior parameters.
	Catalog *catalog.Catalog

	// Request is the standing brokerage request re-evaluated at every
	// epoch boundary.
	Request broker.Request

	// Truth is the generative ground truth of the customer's *base*
	// estate (one cluster per component, no HA): node down
	// probabilities and failure rates as they actually are, which may
	// contradict the catalog priors.
	Truth availability.System

	// IDs maps each Truth cluster to its telemetry bucket.
	IDs []telemetry.ClusterID

	// Epochs is how many observe-then-reoptimize cycles to run.
	Epochs int

	// EpochLength is the simulated duration of each observation epoch.
	EpochLength time.Duration

	// MinExposureYears gates when telemetry estimates displace catalog
	// priors (see broker.TelemetryParams).
	MinExposureYears float64

	// Seed drives the simulated epochs; epoch e uses Seed + e.
	Seed int64

	// ShocksPerYear optionally adds common-cause failures to the truth,
	// stressing the independence assumption during operation.
	ShocksPerYear float64
}

// Validate reports whether the config can run.
func (c Config) Validate() error {
	if c.Catalog == nil {
		return fmt.Errorf("lifecycle: nil catalog")
	}
	if err := c.Request.Validate(); err != nil {
		return fmt.Errorf("lifecycle: %w", err)
	}
	if err := c.Truth.Validate(); err != nil {
		return fmt.Errorf("lifecycle: %w", err)
	}
	if len(c.IDs) != len(c.Truth.Clusters) {
		return fmt.Errorf("lifecycle: %d cluster IDs for %d truth clusters", len(c.IDs), len(c.Truth.Clusters))
	}
	if c.Epochs < 1 {
		return fmt.Errorf("lifecycle: epochs %d, must be >= 1", c.Epochs)
	}
	if c.EpochLength <= 0 {
		return fmt.Errorf("lifecycle: epoch length %v, must be > 0", c.EpochLength)
	}
	if c.MinExposureYears < 0 {
		return fmt.Errorf("lifecycle: min exposure %v, must be >= 0", c.MinExposureYears)
	}
	return nil
}

// Epoch is one observe-then-reoptimize cycle's outcome.
type Epoch struct {
	// Index is the 0-based epoch number.
	Index int

	// BestOption and BestLabel identify the recommendation at this
	// epoch boundary.
	BestOption int
	BestLabel  string

	// BestTCO is the recommended option's monthly TCO under the
	// knowledge available at this boundary.
	BestTCO cost.Money

	// UsingTelemetry reports whether any component's parameters came
	// from live estimates rather than catalog priors.
	UsingTelemetry bool

	// ExposureYears is the cumulative node-years observed so far,
	// summed over buckets.
	ExposureYears float64

	// SimulatedUptime is the estate's measured uptime during the epoch
	// (the customer's actual experience, not the model's prediction).
	SimulatedUptime float64
}

// Run executes the lifecycle and returns one Epoch per cycle.
func Run(cfg Config) ([]Epoch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	store := telemetry.NewStore()
	priors := broker.CatalogParams{Catalog: cfg.Catalog}
	engine, err := broker.New(cfg.Catalog, broker.TelemetryParams{
		Store:            store,
		Fallback:         priors,
		MinExposureYears: cfg.MinExposureYears,
	})
	if err != nil {
		return nil, err
	}

	epochs := make([]Epoch, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		// Observe: the estate runs for one epoch under the truth.
		col, err := telemetry.CollectorForSystem(store, cfg.Truth, cfg.IDs)
		if err != nil {
			return nil, err
		}
		est, err := failsim.RunTraced(failsim.Config{
			System:        cfg.Truth,
			Horizon:       cfg.EpochLength,
			Replications:  1,
			Seed:          cfg.Seed + int64(e),
			ShocksPerYear: cfg.ShocksPerYear,
		}, col)
		if err != nil {
			return nil, err
		}
		if err := col.Close(cfg.EpochLength); err != nil {
			return nil, err
		}

		// Reoptimize with whatever the broker now knows.
		rec, err := engine.Recommend(context.Background(), cfg.Request)
		if err != nil {
			return nil, err
		}
		best := rec.Best()

		epochs = append(epochs, Epoch{
			Index:           e,
			BestOption:      best.Option,
			BestLabel:       best.Label(),
			BestTCO:         best.TCO,
			UsingTelemetry:  usingTelemetry(store, cfg, priors),
			ExposureYears:   totalExposure(store),
			SimulatedUptime: est.Uptime,
		})
	}
	return epochs, nil
}

// usingTelemetry reports whether at least one component's parameters
// would come from the store rather than the priors.
func usingTelemetry(store *telemetry.Store, cfg Config, priors broker.CatalogParams) bool {
	for _, id := range cfg.IDs {
		params, err := store.Estimate(id.Provider, id.Class)
		if err != nil {
			continue
		}
		if params.ExposureYears >= cfg.MinExposureYears {
			return true
		}
	}
	return false
}

// totalExposure sums observed node-years across buckets.
func totalExposure(store *telemetry.Store) float64 {
	total := 0.0
	for _, bucket := range store.Buckets() {
		if params, err := store.Estimate(bucket[0], bucket[1]); err == nil {
			total += params.ExposureYears
		}
	}
	return total
}

// TruthFromComponents builds a ground-truth base system for a request:
// one cluster per component with the given per-component parameters.
// It is a convenience for tests and experiments that want a truth
// aligned with the request's component order.
func TruthFromComponents(req broker.Request, params []availability.NodeParams) (availability.System, []telemetry.ClusterID, error) {
	if len(params) != len(req.Base.Components) {
		return availability.System{}, nil, fmt.Errorf("lifecycle: %d params for %d components",
			len(params), len(req.Base.Components))
	}
	clusters := make([]availability.Cluster, len(params))
	ids := make([]telemetry.ClusterID, len(params))
	for i, comp := range req.Base.Components {
		clusters[i] = availability.Cluster{
			Name:            comp.Name,
			Nodes:           comp.ActiveNodes,
			Tolerated:       0,
			NodeDown:        params[i].Down,
			FailuresPerYear: params[i].FailuresPerYear,
		}
		ids[i] = telemetry.ClusterID{Provider: req.Base.Provider, Class: comp.EffectiveClass()}
	}
	return availability.System{Clusters: clusters}, ids, nil
}

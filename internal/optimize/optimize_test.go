package optimize

import (
	"math/rand"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

// twoChoice builds a component with a no-HA baseline and one HA variant
// in the shape of the paper's case study.
func twoChoice(name string, active int, down float64, haCost cost.Money, haDown float64) ComponentChoices {
	return ComponentChoices{
		Name: name,
		Variants: []Variant{
			{
				Label:   "none",
				Cluster: availability.Cluster{Name: name, Nodes: active, Tolerated: 0, NodeDown: down},
			},
			{
				Label: "ha",
				Cluster: availability.Cluster{
					Name: name, Nodes: active + 1, Tolerated: 1, NodeDown: haDown,
					FailuresPerYear: 4, Failover: 5 * time.Minute,
				},
				MonthlyCost: haCost,
			},
		},
	}
}

func sampleProblem() *Problem {
	return &Problem{
		Components: []ComponentChoices{
			twoChoice("compute", 3, 0.006, cost.Dollars(1800), 0.006),
			twoChoice("storage", 1, 0.02, cost.Dollars(350), 0.02),
			twoChoice("network", 1, 0.014, cost.Dollars(900), 0.014),
		},
		SLA: cost.SLA{UptimePercent: 98, Penalty: cost.Penalty{PerHour: cost.Dollars(100)}},
	}
}

func TestProblemValidate(t *testing.T) {
	if err := sampleProblem().Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}

	t.Run("no components", func(t *testing.T) {
		p := &Problem{SLA: cost.SLA{UptimePercent: 98}}
		if err := p.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("bad SLA", func(t *testing.T) {
		p := sampleProblem()
		p.SLA.UptimePercent = 0
		if err := p.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("empty variants", func(t *testing.T) {
		p := sampleProblem()
		p.Components[0].Variants = nil
		if err := p.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("invalid cluster", func(t *testing.T) {
		p := sampleProblem()
		p.Components[1].Variants[0].Cluster.Nodes = 0
		if err := p.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("negative cost", func(t *testing.T) {
		p := sampleProblem()
		p.Components[1].Variants[1].MonthlyCost = -1
		if err := p.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("baseline not cheapest", func(t *testing.T) {
		p := sampleProblem()
		p.Components[1].Variants[0].MonthlyCost = cost.Dollars(10000)
		if err := p.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestSpaceSize(t *testing.T) {
	p := sampleProblem()
	if got := p.SpaceSize(); got != 8 {
		t.Fatalf("SpaceSize() = %d, want 8 (2^3)", got)
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := sampleProblem()
	if _, err := p.Evaluate(Assignment{0}); err == nil {
		t.Fatal("short assignment should fail")
	}
	if _, err := p.Evaluate(Assignment{0, 0, 7}); err == nil {
		t.Fatal("out-of-range variant should fail")
	}
	if _, err := p.Evaluate(Assignment{0, 0, -1}); err == nil {
		t.Fatal("negative variant should fail")
	}
}

func TestEvaluateComposition(t *testing.T) {
	p := sampleProblem()
	c, err := p.Evaluate(Assignment{1, 1, 1})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if want := cost.Dollars(1800 + 350 + 900); c.TCO.HA != want {
		t.Fatalf("HA cost = %v, want %v", c.TCO.HA, want)
	}
	if c.Uptime <= 0.99 {
		t.Fatalf("full-HA uptime = %v, want > 0.99", c.Uptime)
	}
	if !c.MeetsSLA(p.SLA) {
		t.Fatal("full-HA option should meet a 98% SLA")
	}
	if c.TCO.ExpectedPenalty != 0 {
		t.Fatalf("penalty above SLA = %v, want 0", c.TCO.ExpectedPenalty)
	}
}

func TestExhaustiveVisitsWholeSpace(t *testing.T) {
	p := sampleProblem()
	res, err := p.Exhaustive()
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if res.Evaluated != 8 {
		t.Fatalf("Evaluated = %d, want 8", res.Evaluated)
	}
	if res.Skipped != 0 {
		t.Fatalf("Skipped = %d, want 0 for exhaustive", res.Skipped)
	}
	if len(res.Best.Assignment) != 3 {
		t.Fatalf("Best assignment length = %d", len(res.Best.Assignment))
	}
	// With these parameters storage HA alone is the TCO optimum (the
	// case-study shape).
	if got, want := res.Best.Assignment, (Assignment{0, 1, 0}); !equalAssignments(got, want) {
		t.Fatalf("Best = %v, want %v", got, want)
	}
	if !res.NoPenaltyFound {
		t.Fatal("some option meets a 98% SLA; NoPenaltyFound should be true")
	}
}

func equalAssignments(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllReturnsEnumerationOrder(t *testing.T) {
	p := sampleProblem()
	all, err := p.All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(all) != 8 {
		t.Fatalf("All returned %d candidates, want 8", len(all))
	}
	if !equalAssignments(all[0].Assignment, Assignment{0, 0, 0}) {
		t.Fatalf("first candidate = %v, want baseline", all[0].Assignment)
	}
	if !equalAssignments(all[7].Assignment, Assignment{1, 1, 1}) {
		t.Fatalf("last candidate = %v, want full HA", all[7].Assignment)
	}
	// Mixed-radix order: the last component is the fastest digit.
	if !equalAssignments(all[1].Assignment, Assignment{0, 0, 1}) {
		t.Fatalf("second candidate = %v, want {0,0,1}", all[1].Assignment)
	}
}

func TestPrunedMatchesExhaustive(t *testing.T) {
	p := sampleProblem()
	ex, err := p.Exhaustive()
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	pr, err := p.Pruned()
	if err != nil {
		t.Fatalf("Pruned: %v", err)
	}
	if ex.Best.TCO.Total() != pr.Best.TCO.Total() {
		t.Fatalf("pruned best TCO %v != exhaustive %v", pr.Best.TCO.Total(), ex.Best.TCO.Total())
	}
	if ex.NoPenaltyFound != pr.NoPenaltyFound {
		t.Fatalf("NoPenaltyFound mismatch: %v vs %v", pr.NoPenaltyFound, ex.NoPenaltyFound)
	}
	if ex.NoPenaltyFound && ex.BestNoPenalty.TCO.Total() != pr.BestNoPenalty.TCO.Total() {
		t.Fatalf("pruned BestNoPenalty %v != exhaustive %v",
			pr.BestNoPenalty.TCO.Total(), ex.BestNoPenalty.TCO.Total())
	}
	if pr.Evaluated+pr.Skipped != ex.Evaluated {
		t.Fatalf("pruned accounted for %d candidates, want %d", pr.Evaluated+pr.Skipped, ex.Evaluated)
	}
	if pr.Skipped == 0 {
		t.Fatal("case-study shape should prune at least one superset (e.g. #8 after #5)")
	}
}

func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	p := sampleProblem()
	ex, _ := p.Exhaustive()
	bb, err := p.BranchAndBound()
	if err != nil {
		t.Fatalf("BranchAndBound: %v", err)
	}
	if ex.Best.TCO.Total() != bb.Best.TCO.Total() {
		t.Fatalf("B&B best TCO %v != exhaustive %v", bb.Best.TCO.Total(), ex.Best.TCO.Total())
	}
}

// randomProblem builds a random valid instance for equivalence checks.
func randomProblem(rng *rand.Rand) *Problem {
	n := 1 + rng.Intn(5)
	comps := make([]ComponentChoices, n)
	for i := range comps {
		k := 2 + rng.Intn(3)
		variants := make([]Variant, k)
		active := 1 + rng.Intn(3)
		down := 0.002 + rng.Float64()*0.03
		variants[0] = Variant{
			Label:   "none",
			Cluster: availability.Cluster{Name: "c", Nodes: active, Tolerated: 0, NodeDown: down},
		}
		prevCost := cost.Money(0)
		for v := 1; v < k; v++ {
			prevCost += cost.Dollars(float64(1 + rng.Intn(2000)))
			variants[v] = Variant{
				Label: "ha",
				Cluster: availability.Cluster{
					Name: "c", Nodes: active + v, Tolerated: v, NodeDown: down,
					FailuresPerYear: rng.Float64() * 8,
					Failover:        time.Duration(rng.Intn(20)) * time.Minute,
				},
				MonthlyCost: prevCost,
			}
		}
		comps[i] = ComponentChoices{Name: "c", Variants: variants}
	}
	return &Problem{
		Components: comps,
		SLA: cost.SLA{
			UptimePercent: 90 + rng.Float64()*9.9,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(float64(1 + rng.Intn(500)))},
		},
	}
}

func TestPropertySearchesAgreeOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(20170611))
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng)
		ex, err := p.Exhaustive()
		if err != nil {
			t.Fatalf("trial %d: Exhaustive: %v", trial, err)
		}
		pr, err := p.Pruned()
		if err != nil {
			t.Fatalf("trial %d: Pruned: %v", trial, err)
		}
		bb, err := p.BranchAndBound()
		if err != nil {
			t.Fatalf("trial %d: BranchAndBound: %v", trial, err)
		}
		if pr.Best.TCO.Total() != ex.Best.TCO.Total() {
			t.Fatalf("trial %d: pruned optimum %v != exhaustive %v (pruned asg %v, ex asg %v)",
				trial, pr.Best.TCO.Total(), ex.Best.TCO.Total(), pr.Best.Assignment, ex.Best.Assignment)
		}
		if bb.Best.TCO.Total() != ex.Best.TCO.Total() {
			t.Fatalf("trial %d: B&B optimum %v != exhaustive %v", trial, bb.Best.TCO.Total(), ex.Best.TCO.Total())
		}
		if pr.NoPenaltyFound != ex.NoPenaltyFound {
			t.Fatalf("trial %d: NoPenaltyFound mismatch", trial)
		}
		if ex.NoPenaltyFound && pr.BestNoPenalty.TCO.Total() != ex.BestNoPenalty.TCO.Total() {
			t.Fatalf("trial %d: BestNoPenalty mismatch: %v vs %v",
				trial, pr.BestNoPenalty.TCO.Total(), ex.BestNoPenalty.TCO.Total())
		}
		if pr.Evaluated+pr.Skipped != ex.Evaluated {
			t.Fatalf("trial %d: pruned accounting %d+%d != %d",
				trial, pr.Evaluated, pr.Skipped, ex.Evaluated)
		}
	}
}

func TestParetoFront(t *testing.T) {
	mk := func(ha float64, uptime float64) Candidate {
		return Candidate{
			Assignment: Assignment{0},
			Uptime:     uptime,
			TCO:        cost.TCO{HA: cost.Dollars(ha)},
		}
	}
	cands := []Candidate{
		mk(0, 0.95),    // front: cheapest
		mk(100, 0.97),  // front
		mk(150, 0.96),  // dominated by (100, 0.97)
		mk(200, 0.99),  // front
		mk(250, 0.99),  // dominated (same uptime, higher cost)
		mk(300, 0.985), // dominated
	}
	front := ParetoFront(cands)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3: %+v", len(front), front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].TCO.HA <= front[i-1].TCO.HA {
			t.Fatal("front not sorted by ascending cost")
		}
		if front[i].Uptime <= front[i-1].Uptime {
			t.Fatal("front uptime not strictly increasing")
		}
	}
	if ParetoFront(nil) != nil {
		t.Fatal("empty input should give nil front")
	}
}

func TestPropertyParetoFrontIsNonDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng)
		all, err := p.All()
		if err != nil {
			t.Fatalf("All: %v", err)
		}
		front := ParetoFront(all)
		if len(front) == 0 {
			t.Fatal("front empty for nonempty candidates")
		}
		for _, f := range front {
			for _, c := range all {
				if c.TCO.HA <= f.TCO.HA && c.Uptime > f.Uptime && c.TCO.HA < f.TCO.HA {
					t.Fatalf("front member (%v, %v) dominated by (%v, %v)",
						f.TCO.HA, f.Uptime, c.TCO.HA, c.Uptime)
				}
			}
		}
	}
}

func TestMaxCandidatesGuard(t *testing.T) {
	// 27 components with 2 variants each exceed 2^26.
	comps := make([]ComponentChoices, 27)
	for i := range comps {
		comps[i] = twoChoice("c", 1, 0.01, cost.Dollars(10), 0.01)
	}
	p := &Problem{Components: comps, SLA: cost.SLA{UptimePercent: 98, Penalty: cost.Penalty{PerHour: cost.Dollars(1)}}}
	if err := p.Validate(); err == nil {
		t.Fatal("oversized space should fail validation")
	}
}

package optimize

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

// indexProblem builds a minimal valid problem with the given variant
// arities, just enough structure to construct the indexes.
func indexProblem(arity []int) *Problem {
	comps := make([]ComponentChoices, len(arity))
	for i, k := range arity {
		variants := make([]Variant, k)
		variants[0] = Variant{
			Label:   "none",
			Cluster: availability.Cluster{Name: "c", Nodes: 1, NodeDown: 0.01},
		}
		for v := 1; v < k; v++ {
			variants[v] = Variant{
				Label: "ha",
				Cluster: availability.Cluster{
					Name: "c", Nodes: 1 + v, Tolerated: v, NodeDown: 0.01,
					FailuresPerYear: 2, Failover: time.Minute,
				},
				MonthlyCost: cost.Dollars(float64(50 * v)),
			}
		}
		comps[i] = ComponentChoices{Name: "c", Variants: variants}
	}
	return &Problem{
		Components: comps,
		SLA:        cost.SLA{UptimePercent: 95, Penalty: cost.Penalty{PerHour: cost.Dollars(100)}},
	}
}

// randomAssignment fills a with random in-range digits.
func randomAssignment(rng *rand.Rand, p *Problem, a Assignment) {
	for i := range a {
		a[i] = rng.Intn(len(p.Components[i].Variants))
	}
}

// changedFromPrev computes the honest resume hint for a query sequence:
// the first digit where cur differs from prev (len(cur) when equal),
// which is exactly the promise coverIndex.coversFrom documents.
func changedFromPrev(prev, cur Assignment) int {
	for i := range cur {
		if prev[i] != cur[i] {
			return i
		}
	}
	return len(cur)
}

// TestIndexThreeWayEquivalence drives the linear scan, the pointer trie
// and the flat checkpointed walker through identical random
// insert/query interleavings and requires identical answers on every
// query. The flat index receives honest changed-suffix hints computed
// by diffing consecutive queries, and inserts are interleaved so the
// epoch invalidation path (checkpoints straddling an insert) is
// exercised, not just the frozen-index fast path.
func TestIndexThreeWayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(8)
		arity := make([]int, n)
		for i := range arity {
			arity[i] = 2 + rng.Intn(3)
		}
		p := indexProblem(arity)

		lin := &linearIndex{}
		ptr := newMetIndex(p)
		flat := newFlatMetIndex(p)
		w := flat.newWalker()

		prev := make(Assignment, n)
		cur := make(Assignment, n)
		for step := 0; step < 400; step++ {
			if rng.Intn(4) == 0 {
				m := make(Assignment, n)
				randomAssignment(rng, p, m)
				lin.insert(m)
				ptr.insert(m)
				flat.insert(m)
				continue
			}
			if rng.Intn(3) == 0 {
				// Suffix-local step: the regime the level walk produces.
				copy(cur, prev)
				i := rng.Intn(n)
				cur[i] = rng.Intn(arity[i])
			} else {
				randomAssignment(rng, p, cur)
			}
			from := changedFromPrev(prev, cur)
			want := lin.coversFrom(cur, 0)
			if got := ptr.coversFrom(cur, 0); got != want {
				t.Fatalf("trial %d step %d: pointer trie %v != linear %v on %v", trial, step, got, want, cur)
			}
			if got := w.coversFrom(cur, from); got != want {
				t.Fatalf("trial %d step %d: flat walker (from=%d) %v != linear %v on %v", trial, step, from, got, want, cur)
			}
			if got := flat.coversFrom(cur, 0); got != want {
				t.Fatalf("trial %d step %d: flat rescan %v != linear %v on %v", trial, step, got, want, cur)
			}
			copy(prev, cur)
		}
	}
}

// TestFlatWalkerEpochInvalidation is the regression test for the
// staleness hazard checkpointed walks have with interleaved inserts:
// a query leaves an empty frontier checkpoint at some depth, an insert
// then grows the trie exactly there, and a suffix-local follow-up
// query resumes from the stale checkpoint. Without epoch invalidation
// the walker would answer false from the empty frontier; with it the
// insert forces a root restart and the cover is found.
func TestFlatWalkerEpochInvalidation(t *testing.T) {
	p := indexProblem([]int{2, 2, 2})
	ix := newFlatMetIndex(p)
	w := ix.newWalker()

	if w.coversFrom(Assignment{0, 1, 0}, 0) {
		t.Fatal("empty index claims coverage")
	}
	ix.insert(Assignment{0, 1, 0})
	// Honest hint: only digit 2 changed since the previous query.
	if !w.coversFrom(Assignment{0, 1, 1}, 2) {
		t.Fatal("stale checkpoint survived an insert: cover of {0,1,1} by {0,1,0} missed")
	}
}

// TestFlatIndexTerminalCompression pins the trailing-zero compression
// and terminal-subtree detachment semantics shared with the pointer
// trie: a subset inserted after its superset still clips everything
// the superset did, and covered inserts are no-ops.
func TestFlatIndexTerminalCompression(t *testing.T) {
	p := indexProblem([]int{3, 3, 3, 3})
	ix := newFlatMetIndex(p)
	w := ix.newWalker()

	ix.insert(Assignment{1, 2, 1, 0})
	if !w.coversFrom(Assignment{1, 2, 1, 2}, 0) {
		t.Fatal("superset of stored assignment not covered")
	}
	if w.coversFrom(Assignment{1, 2, 2, 2}, 0) {
		t.Fatal("non-superset reported covered")
	}
	// A lower-level subset detaches the superset subtree; coverage of
	// everything the old entry covered must survive the detach.
	ix.insert(Assignment{1, 0, 0, 0})
	if !w.coversFrom(Assignment{1, 2, 1, 2}, 0) {
		t.Fatal("coverage lost after subset insert detached the subtree")
	}
	if !w.coversFrom(Assignment{1, 0, 0, 0}, 0) {
		t.Fatal("stored subset does not cover itself")
	}
	// Covered insert: must be a no-op, not a corruption.
	ix.insert(Assignment{1, 1, 0, 0})
	if !w.coversFrom(Assignment{1, 1, 2, 0}, 0) {
		t.Fatal("coverage through terminal node broken by covered insert")
	}
	if w.coversFrom(Assignment{0, 1, 1, 1}, 0) {
		t.Fatal("baseline-0 query covered by nothing stored")
	}
}

// TestCoversSteadyStateAllocs pins the zero-allocation property of
// steady-state superset lookups for both iterative walkers: once the
// frontier buffer / explicit stack have grown to the instance's
// high-water mark, covers lookups must not touch the heap — the same
// pin the evaluation loop carries.
func TestCoversSteadyStateAllocs(t *testing.T) {
	p := BenchProblem(16, BenchSLAPercent)
	n := len(p.Components)

	// Populate both indexes with every level-3 combination — a dense
	// met set with deep shared structure.
	flat := newFlatMetIndex(p)
	ptr := newMetIndex(p)
	seed := make(Assignment, n)
	var fill func(idx, remaining int)
	fill = func(idx, remaining int) {
		if remaining == 0 {
			flat.insert(seed)
			ptr.insert(seed)
			return
		}
		for i := idx; i <= n-remaining; i++ {
			seed[i] = 1
			fill(i+1, remaining-1)
			seed[i] = 0
		}
	}
	fill(0, 3)

	w := flat.newWalker()
	queries := make([]Assignment, 64)
	rng := rand.New(rand.NewSource(99))
	for i := range queries {
		q := make(Assignment, n)
		randomAssignment(rng, p, q)
		queries[i] = q
	}
	// Warm both walkers to their high-water marks.
	for _, q := range queries {
		w.coversFrom(q, 0)
		ptr.coversFrom(q, 0)
	}

	if avg := testing.AllocsPerRun(50, func() {
		for _, q := range queries {
			w.coversFrom(q, 0)
		}
	}); avg != 0 {
		t.Fatalf("flat walker steady-state coversFrom allocates %.1f allocs per 64 lookups, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		for _, q := range queries {
			ptr.coversFrom(q, 0)
		}
	}); avg != 0 {
		t.Fatalf("pointer trie steady-state coversFrom allocates %.1f allocs per 64 lookups, want 0", avg)
	}
}

// TestLinearIndexBackingArena pins the satellite fix on the reference
// scan: inserts append into one shared backing arena instead of one
// Clone per met assignment, and earlier met views stay intact across
// backing growth.
func TestLinearIndexBackingArena(t *testing.T) {
	ix := &linearIndex{}
	want := []Assignment{{1, 0, 0}, {0, 2, 0}, {0, 0, 3}, {1, 2, 3}}
	for _, m := range want {
		ix.insert(m)
	}
	for i, m := range want {
		if !equalAssignments(ix.met[i], m) {
			t.Fatalf("met[%d] = %v, want %v (backing growth corrupted earlier views)", i, ix.met[i], m)
		}
	}
	if !ix.coversFrom(Assignment{1, 2, 0}, 0) {
		t.Fatal("linear scan lost coverage after arena inserts")
	}
	// Amortized allocation: inserting into a pre-grown arena must not
	// allocate per met assignment beyond the met-slice append itself.
	big := &linearIndex{backing: make([]int, 0, 1<<16), met: make([]Assignment, 0, 1<<12)}
	m := Assignment{1, 0, 2}
	if avg := testing.AllocsPerRun(100, func() { big.insert(m) }); avg != 0 {
		t.Fatalf("linearIndex.insert into pre-grown arena allocates %.1f/op, want 0", avg)
	}
}

// TestPrunedThreeWaySolverEquivalence runs the full level search on
// all four index configurations — linear reference, pointer trie,
// flat rescan, flat checkpointed (production) — across randomized
// instances and requires byte-identical results *and* effort
// accounting: Evaluated, Skipped, CoverLookups and Clipped all equal.
func TestPrunedThreeWaySolverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	ctx := context.Background()
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(rng)
		ref, err := p.prunedLinear(ctx)
		if err != nil {
			t.Fatalf("trial %d: linear: %v", trial, err)
		}
		runs := []struct {
			name string
			res  Result
		}{}
		if r, err := p.PrunedPointerTrie(ctx); err != nil {
			t.Fatalf("trial %d: pointer: %v", trial, err)
		} else {
			runs = append(runs, struct {
				name string
				res  Result
			}{"pointer", r})
		}
		if r, err := p.PrunedFlatRescan(ctx); err != nil {
			t.Fatalf("trial %d: flat-rescan: %v", trial, err)
		} else {
			runs = append(runs, struct {
				name string
				res  Result
			}{"flat-rescan", r})
		}
		if r, err := p.PrunedContext(ctx); err != nil {
			t.Fatalf("trial %d: flat-checkpointed: %v", trial, err)
		} else {
			runs = append(runs, struct {
				name string
				res  Result
			}{"flat-checkpointed", r})
		}
		for _, run := range runs {
			r := run.res
			if r.Evaluated != ref.Evaluated || r.Skipped != ref.Skipped ||
				r.CoverLookups != ref.CoverLookups || r.Clipped != ref.Clipped {
				t.Fatalf("trial %d: %s accounting (ev=%d sk=%d cl=%d clip=%d) != linear (ev=%d sk=%d cl=%d clip=%d)",
					trial, run.name, r.Evaluated, r.Skipped, r.CoverLookups, r.Clipped,
					ref.Evaluated, ref.Skipped, ref.CoverLookups, ref.Clipped)
			}
			if !equalAssignments(r.Best.Assignment, ref.Best.Assignment) {
				t.Fatalf("trial %d: %s best %v != linear %v", trial, run.name, r.Best.Assignment, ref.Best.Assignment)
			}
			if r.NoPenaltyFound != ref.NoPenaltyFound {
				t.Fatalf("trial %d: %s NoPenaltyFound diverges", trial, run.name)
			}
			if ref.NoPenaltyFound && !equalAssignments(r.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment) {
				t.Fatalf("trial %d: %s BestNoPenalty %v != linear %v",
					trial, run.name, r.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment)
			}
		}
		// The pruned searches do one cover lookup per leaf reached and
		// every clip is a cover clip.
		if ref.CoverLookups != ref.Evaluated+ref.Skipped || ref.Clipped != ref.Skipped {
			t.Fatalf("trial %d: lookup accounting inconsistent: lookups=%d evaluated=%d skipped=%d clipped=%d",
				trial, ref.CoverLookups, ref.Evaluated, ref.Skipped, ref.Clipped)
		}
	}
}

// TestBranchAndBoundCoverClipping pins the new B&B leaf protocol: it
// stays exact against exhaustive, its Clipped count is bounded by
// Skipped, and accounting still sums to the space.
func TestBranchAndBoundCoverClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(rng)
		ref, err := p.Exhaustive()
		if err != nil {
			t.Fatalf("trial %d: Exhaustive: %v", trial, err)
		}
		bb, err := p.BranchAndBound()
		if err != nil {
			t.Fatalf("trial %d: BranchAndBound: %v", trial, err)
		}
		if bb.Best.TCO.Total() != ref.Best.TCO.Total() || !equalAssignments(bb.Best.Assignment, ref.Best.Assignment) {
			t.Fatalf("trial %d: B&B best %v (%v) != exhaustive %v (%v)",
				trial, bb.Best.Assignment, bb.Best.TCO.Total(), ref.Best.Assignment, ref.Best.TCO.Total())
		}
		if bb.NoPenaltyFound != ref.NoPenaltyFound {
			t.Fatalf("trial %d: B&B NoPenaltyFound diverges", trial)
		}
		if ref.NoPenaltyFound && !equalAssignments(bb.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment) {
			t.Fatalf("trial %d: B&B BestNoPenalty %v != exhaustive %v",
				trial, bb.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment)
		}
		if bb.Evaluated+bb.Skipped != ref.Evaluated {
			t.Fatalf("trial %d: B&B accounting %d+%d != space %d", trial, bb.Evaluated, bb.Skipped, ref.Evaluated)
		}
		if bb.Clipped > bb.Skipped {
			t.Fatalf("trial %d: Clipped %d exceeds Skipped %d", trial, bb.Clipped, bb.Skipped)
		}
		// B&B gates the lookup on a cost-tie check, so lookups are a
		// subset of reached leaves and clips a subset of lookups.
		if bb.CoverLookups > bb.Evaluated+bb.Clipped {
			t.Fatalf("trial %d: more lookups than reached leaves: lookups=%d evaluated=%d clipped=%d",
				trial, bb.CoverLookups, bb.Evaluated, bb.Clipped)
		}
		if bb.Clipped > bb.CoverLookups {
			t.Fatalf("trial %d: clips without lookups: lookups=%d clipped=%d", trial, bb.CoverLookups, bb.Clipped)
		}
	}
}

// TestBranchAndBoundCoverClipFiresOnCostTies exercises the regime the
// gated B&B cover lookup exists for: zero-cost HA variants make every
// SLA-met assignment tie at the same TCO, so the admissible cost
// bound can never clip (it needs a strict improvement) and removing
// the SLA-met supersets falls entirely to the superset index. The
// level search applies the identical clip rule, so both must agree on
// the optimum and on exactly how many candidates the index removed.
func TestBranchAndBoundCoverClipFiresOnCostTies(t *testing.T) {
	n := 8
	comps := make([]ComponentChoices, n)
	for i := range comps {
		comps[i] = ComponentChoices{
			Name: "c",
			Variants: []Variant{
				{
					Label:   "none",
					Cluster: availability.Cluster{Name: "c", Nodes: 1, NodeDown: 0.02, FailuresPerYear: 4},
				},
				{
					Label: "ha",
					Cluster: availability.Cluster{
						Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.02,
						FailuresPerYear: 4, Failover: 30 * time.Second,
					},
					// Same cost as the baseline: legal (Validate only
					// forbids cheaper), and it produces the TCO ties.
				},
			},
		}
	}
	p := &Problem{
		Components: comps,
		SLA:        cost.SLA{UptimePercent: 90, Penalty: cost.Penalty{PerHour: cost.Dollars(100)}},
	}

	bb, err := p.BranchAndBound()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Pruned()
	if err != nil {
		t.Fatal(err)
	}
	if bb.Clipped == 0 {
		t.Fatal("cost-tie instance produced no B&B cover clips; the gated lookup is dead")
	}
	if bb.Clipped != pr.Clipped || bb.Evaluated != pr.Evaluated {
		t.Fatalf("B&B (ev=%d clip=%d) disagrees with level search (ev=%d clip=%d) on the shared clip rule",
			bb.Evaluated, bb.Clipped, pr.Evaluated, pr.Clipped)
	}
	if !equalAssignments(bb.Best.Assignment, pr.Best.Assignment) {
		t.Fatalf("B&B best %v != pruned %v", bb.Best.Assignment, pr.Best.Assignment)
	}
	if bb.NoPenaltyFound != pr.NoPenaltyFound ||
		(pr.NoPenaltyFound && !equalAssignments(bb.BestNoPenalty.Assignment, pr.BestNoPenalty.Assignment)) {
		t.Fatal("B&B and pruned disagree on the no-penalty recommendation under ties")
	}
}

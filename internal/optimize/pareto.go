package optimize

import "sort"

// ParetoFront returns the candidates not dominated in the
// (cost, uptime) plane: a candidate is dominated when another candidate
// has HA cost at most as high and uptime at least as high, with at
// least one strict improvement. The front is the menu a broker shows a
// customer who wants to trade budget against availability rather than
// accept the single TCO optimum.
//
// The result is sorted by ascending HA cost; the input is not modified.
func ParetoFront(cands []Candidate) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		ci, cj := sorted[i].TCO.HA, sorted[j].TCO.HA
		if ci != cj {
			return ci < cj
		}
		return sorted[i].Uptime > sorted[j].Uptime
	})

	var front []Candidate
	bestUptime := -1.0
	for _, c := range sorted {
		if c.Uptime > bestUptime {
			front = append(front, c)
			bestUptime = c.Uptime
		}
	}
	return front
}

package optimize

import (
	"fmt"
	"sort"

	"uptimebroker/internal/cost"
)

// Constraints narrow the admissible candidate set before TCO ranking.
// Zero values disable each constraint, so the zero Constraints admits
// everything.
type Constraints struct {
	// MaxHACost caps C_HA: a customer's hard redundancy budget.
	// Zero means unlimited.
	MaxHACost cost.Money

	// MinUptime floors the expected uptime fraction regardless of
	// penalty economics (e.g. a reputational requirement stricter than
	// the contractual SLA). Zero means no floor.
	MinUptime float64

	// Require pins specific components to HA: Require[i] = true forces
	// component i to a non-baseline variant (compliance rules such as
	// "production databases must be mirrored"). Nil means no pins.
	Require []bool
}

// Validate reports whether the constraints are well-formed for a
// problem with n components.
func (c Constraints) Validate(n int) error {
	if c.MaxHACost < 0 {
		return fmt.Errorf("optimize: MaxHACost = %d, must be >= 0", c.MaxHACost)
	}
	if c.MinUptime < 0 || c.MinUptime > 1 {
		return fmt.Errorf("optimize: MinUptime = %v, must be in [0, 1]", c.MinUptime)
	}
	if c.Require != nil && len(c.Require) != n {
		return fmt.Errorf("optimize: Require has %d entries for %d components", len(c.Require), n)
	}
	return nil
}

// admits reports whether a candidate satisfies the constraints.
func (c Constraints) admits(cand Candidate) bool {
	if c.MaxHACost > 0 && cand.TCO.HA > c.MaxHACost {
		return false
	}
	if c.MinUptime > 0 && cand.Uptime < c.MinUptime {
		return false
	}
	for i, required := range c.Require {
		if required && cand.Assignment[i] == 0 {
			return false
		}
	}
	return true
}

// ErrInfeasible is wrapped by ExhaustiveConstrained when no candidate
// satisfies the constraints.
var ErrInfeasible = fmt.Errorf("optimize: constraints admit no candidate")

// ExhaustiveConstrained evaluates every candidate and returns the
// minimum-TCO one among those the constraints admit.
func (p *Problem) ExhaustiveConstrained(c Constraints) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := c.Validate(len(p.Components)); err != nil {
		return Result{}, err
	}
	var (
		res   Result
		found bool
	)
	a := make(Assignment, len(p.Components))
	for {
		cand, err := p.Evaluate(a)
		if err != nil {
			return Result{}, err
		}
		if c.admits(cand) {
			res.observe(cand, p.SLA)
			found = true
		} else {
			res.Skipped++
		}
		if !p.advance(a) {
			break
		}
	}
	if !found {
		return Result{}, ErrInfeasible
	}
	return res, nil
}

// TopK evaluates every candidate and returns the k cheapest by TCO in
// ascending order (all of them when k exceeds the space). Ties resolve
// by higher uptime, then assignment order, matching the search
// tie-break.
func (p *Problem) TopK(k int) ([]Candidate, error) {
	if k < 1 {
		return nil, fmt.Errorf("optimize: k = %d, must be >= 1", k)
	}
	all, err := p.All()
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool { return better(all[i], all[j]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k], nil
}

package optimize

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// ParallelAll is ParallelAllContext with a background context and
// GOMAXPROCS workers.
func (p *Problem) ParallelAll(workers int) ([]Candidate, error) {
	return p.ParallelAllContext(context.Background(), workers)
}

// ParallelAllContext evaluates every one of the k^n candidates like
// AllContext, sharding the enumeration across workers, and returns
// the candidates in exactly AllContext's mixed-radix enumeration
// order — byte-identical slices, which the randomized equivalence
// tests assert. It is the parallel engine under the brokerage's
// full-pricing pass (every option card of Figures 3–9).
//
// The space is split into prefix blocks — the first splitDepth
// component choices pinned, exactly the task scheme
// ParallelPrunedContext uses for its level walks — and idle workers
// steal the next block off a shared feed, so an uneven block cannot
// strand the pool behind one worker. Because the last component is
// the fastest mixed-radix digit, each block is a contiguous run of
// the output slice; workers write their block's candidates straight
// into place and no reassembly pass is needed.
//
// Cancellation is honored between blocks and, via the shared
// cancellation poll cadence, inside them; a WithProgress hook on the
// context sees one monotonically advancing evaluated count across
// all workers. workers = 0 means GOMAXPROCS.
func (p *Problem) ParallelAllContext(ctx context.Context, workers int) ([]Candidate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers < 0 {
		return nil, fmt.Errorf("optimize: workers = %d, must be >= 0", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(p.Components) == 1 {
		return p.AllContext(ctx)
	}

	// Grow the pinned prefix until there are enough blocks for the
	// pool to steal from; never past n-1 so every block keeps at
	// least one free digit.
	n := len(p.Components)
	want := workers * 4
	splitDepth, blocks := 0, 1
	for splitDepth < n-1 && blocks < want {
		blocks *= len(p.Components[splitDepth].Variants)
		splitDepth++
	}
	space := p.SpaceSize()
	blockSize := space / blocks

	out := make([]Candidate, space)
	errs := make([]error, blocks)
	feed := make(chan int)
	st := newSharedTicker(ctx, p)
	if workers > blocks {
		workers = blocks
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := canceler{ctx: ctx}
			for bi := range feed {
				errs[bi] = p.priceBlock(bi, splitDepth, out[bi*blockSize:(bi+1)*blockSize], &cc, st)
			}
		}()
	}

	var cancelErr error
dispatch:
	for bi := 0; bi < blocks; bi++ {
		select {
		case feed <- bi:
		case <-ctx.Done():
			cancelErr = ctx.Err()
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	if cancelErr != nil {
		return nil, cancelErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	st.done()
	return out, nil
}

// priceBlock evaluates one prefix block's candidates into dst, which
// is the block's contiguous slot of the full enumeration-order output.
// block is the mixed-radix value of the pinned prefix digits.
func (p *Problem) priceBlock(block, splitDepth int, dst []Candidate, cc *canceler, st *sharedTicker) error {
	a := make(Assignment, len(p.Components))
	rem := block
	for i := splitDepth - 1; i >= 0; i-- {
		k := len(p.Components[i].Variants)
		a[i] = rem % k
		rem /= k
	}
	for j := range dst {
		if err := cc.check(); err != nil {
			return err
		}
		c, err := p.Evaluate(a)
		if err != nil {
			return err
		}
		dst[j] = c
		st.advance(1)
		p.advanceFrom(a, splitDepth)
	}
	return nil
}

package optimize

import (
	"context"
)

// ParallelAll is ParallelAllContext with a background context and
// GOMAXPROCS workers.
func (p *Problem) ParallelAll(workers int) ([]Candidate, error) {
	return p.ParallelAllContext(context.Background(), workers)
}

// ParallelAllContext evaluates every one of the k^n candidates like
// AllContext, sharding the enumeration across workers, and returns
// the candidates in exactly AllContext's mixed-radix enumeration
// order — byte-identical slices, which the randomized equivalence
// tests assert. It is the parallel engine under the brokerage's
// full-pricing pass (every option card of Figures 3–9).
//
// It is ParallelStreamContext materialized: each worker's visitor
// writes its candidates straight into their enumeration-order slots
// of the output (blocks are contiguous runs because the last
// component is the fastest mixed-radix digit, so writers never
// contend on an index). Cancellation is honored between blocks and,
// via the shared cancellation poll cadence, inside them; a
// WithProgress hook on the context sees one monotonically advancing
// evaluated count across all workers. workers = 0 means GOMAXPROCS.
func (p *Problem) ParallelAllContext(ctx context.Context, workers int) ([]Candidate, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, p.SpaceSize())
	err = ev.parallelStream(ctx, workers, func() func(*Cursor) error {
		return func(cur *Cursor) error {
			out[cur.Index()] = cur.Candidate()
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

package optimize

// coverIndex answers the pruned search's superset question: has any
// recorded SLA-meeting assignment m with coveredBy(m, a)? All three
// implementations — the linear reference scan, the pointer-linked trie
// and the flat arena trie (flatindex.go) — satisfy exactly the same
// contract, so the searches built on them report identical
// Evaluated/Skipped/CoverLookups/Clipped accounting, which the
// three-way equivalence tests pin.
type coverIndex interface {
	// insert records one SLA-meeting assignment.
	insert(a Assignment)

	// coversFrom reports whether any recorded assignment is a
	// clustered subset of a (same variant wherever the subset
	// clusters). from is a resume hint: the caller promises that a's
	// digits below from are unchanged since its previous coversFrom
	// call on this index (from = 0 promises nothing). Implementations
	// without lookup state ignore it; the checkpointed flat walker
	// uses it to skip re-descending the unchanged prefix.
	coversFrom(a Assignment, from int) bool
}

// linearIndex is the original O(|met|)-per-leaf scan, kept as the
// reference implementation: the equivalence tests pin the tries to it
// and the solver benchmarks quantify the gap on SLA-dense instances.
//
// Inserted assignments are copied into one shared backing arena
// (amortized-doubling append) instead of one Clone allocation per met
// assignment, so the reference path's benchmark numbers measure the
// scan, not allocator noise. A backing reallocation leaves earlier met
// views aliasing the previous array — harmless, because the copies are
// immutable once inserted.
type linearIndex struct {
	met     []Assignment
	backing []int
}

func (ix *linearIndex) insert(a Assignment) {
	start := len(ix.backing)
	ix.backing = append(ix.backing, a...)
	ix.met = append(ix.met, Assignment(ix.backing[start:len(ix.backing):len(ix.backing)]))
}

func (ix *linearIndex) coversFrom(a Assignment, _ int) bool {
	for _, m := range ix.met {
		if coveredBy(m, a) {
			return true
		}
	}
	return false
}

// metIndex is a trie over met assignments keyed on the clustered-
// component choices, one level per decision dimension. A lookup walks
// only the paths consistent with the queried assignment: at depth i it
// may descend into child 0 ("the subset leaves component i at the
// baseline", compatible with anything) and child a[i] ("the subset
// clusters component i the same way", only when a clusters i at all).
// The cost is bounded by the consistent portion of the trie instead of
// the full met list, which is what collapses the quadratic blow-up the
// linear scan hits when many low-level assignments meet the SLA.
//
// Inserted assignments are trailing-zero compressed: a node whose
// remaining components are all baseline is marked terminal instead of
// growing a chain of zero children, so lookups covered by a low-level
// subset exit near the root.
//
// This pointer-linked layout is the previous production index, kept as
// an equivalence oracle and as the benchmark reference the
// trie_flat_speedup ratios measure the flat arena (flatindex.go)
// against. Lookups reuse an explicit stack owned by the index, so —
// unlike the old recursive walk — deep instances cannot grow the
// goroutine stack per lookup, at the price of covers no longer being
// safe for concurrent use (the parallel search runs on per-worker
// flat walkers instead).
type metIndex struct {
	arity []int // variants per component, sizing child slices
	root  *metNode

	// stack is the reusable DFS stack of coversFrom; it keeps its
	// grown capacity across lookups so the steady state allocates
	// nothing.
	stack []metFrame
}

type metNode struct {
	// terminal marks a stored assignment whose non-baseline choices are
	// all at depths above this node.
	terminal bool

	// children[v] continues the walk with variant v chosen for the
	// node's component; nil slices and entries are allocated lazily.
	children []*metNode
}

// metFrame is one pending branch of the iterative covers descent.
type metFrame struct {
	n     *metNode
	depth int
}

func newMetIndex(p *Problem) *metIndex {
	arity := make([]int, len(p.Components))
	for i, comp := range p.Components {
		arity[i] = len(comp.Variants)
	}
	return &metIndex{arity: arity, root: &metNode{}}
}

func (ix *metIndex) insert(a Assignment) {
	// Depth of the last clustered component; everything after it is
	// baseline and compresses into the terminal flag.
	last := -1
	for i, v := range a {
		if v != 0 {
			last = i
		}
	}
	n := ix.root
	for i := 0; i <= last; i++ {
		if n.terminal {
			// An already-stored subset covers this assignment; storing
			// the superset would only slow lookups down. (The pruned
			// searches never insert covered assignments, but the index
			// stays correct for callers that do.)
			return
		}
		if n.children == nil {
			n.children = make([]*metNode, ix.arity[i])
		}
		child := n.children[a[i]]
		if child == nil {
			child = &metNode{}
			n.children[a[i]] = child
		}
		n = child
	}
	n.terminal = true
	// Subtrees below a terminal node are supersets of it; drop them.
	n.children = nil
}

func (ix *metIndex) coversFrom(a Assignment, _ int) bool {
	stack := append(ix.stack[:0], metFrame{ix.root, 0})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.n.terminal {
			ix.stack = stack
			return true
		}
		if f.n.children == nil || f.depth == len(a) {
			continue
		}
		// Push the variant branch first so the baseline branch pops
		// first, preserving the recursive walk's visit order.
		if v := a[f.depth]; v != 0 {
			if c := f.n.children[v]; c != nil {
				stack = append(stack, metFrame{c, f.depth + 1})
			}
		}
		if c := f.n.children[0]; c != nil {
			stack = append(stack, metFrame{c, f.depth + 1})
		}
	}
	ix.stack = stack
	return false
}

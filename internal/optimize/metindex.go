package optimize

// coverIndex answers the pruned search's superset question: has any
// recorded SLA-meeting assignment m with coveredBy(m, a)? Both the
// linear reference implementation and the trie index below satisfy
// exactly the same contract, so the searches built on them report
// identical Evaluated/Skipped accounting.
type coverIndex interface {
	// insert records one SLA-meeting assignment.
	insert(a Assignment)

	// covers reports whether any recorded assignment is a clustered
	// subset of a (same variant wherever the subset clusters).
	covers(a Assignment) bool
}

// linearIndex is the original O(|met|)-per-leaf scan, kept as the
// reference implementation: the equivalence tests pin the trie to it
// and the solver benchmarks quantify the gap on SLA-dense instances.
type linearIndex struct {
	met []Assignment
}

func (ix *linearIndex) insert(a Assignment) {
	ix.met = append(ix.met, a.Clone())
}

func (ix *linearIndex) covers(a Assignment) bool {
	for _, m := range ix.met {
		if coveredBy(m, a) {
			return true
		}
	}
	return false
}

// metIndex is a trie over met assignments keyed on the clustered-
// component choices, one level per decision dimension. A lookup walks
// only the paths consistent with the queried assignment: at depth i it
// may descend into child 0 ("the subset leaves component i at the
// baseline", compatible with anything) and child a[i] ("the subset
// clusters component i the same way", only when a clusters i at all).
// The cost is bounded by the consistent portion of the trie instead of
// the full met list, which is what collapses the quadratic blow-up the
// linear scan hits when many low-level assignments meet the SLA.
//
// Inserted assignments are trailing-zero compressed: a node whose
// remaining components are all baseline is marked terminal instead of
// growing a chain of zero children, so lookups covered by a low-level
// subset exit near the root.
type metIndex struct {
	arity []int // variants per component, sizing child slices
	root  *metNode
}

type metNode struct {
	// terminal marks a stored assignment whose non-baseline choices are
	// all at depths above this node.
	terminal bool

	// children[v] continues the walk with variant v chosen for the
	// node's component; nil slices and entries are allocated lazily.
	children []*metNode
}

func newMetIndex(p *Problem) *metIndex {
	arity := make([]int, len(p.Components))
	for i, comp := range p.Components {
		arity[i] = len(comp.Variants)
	}
	return &metIndex{arity: arity, root: &metNode{}}
}

func (ix *metIndex) insert(a Assignment) {
	// Depth of the last clustered component; everything after it is
	// baseline and compresses into the terminal flag.
	last := -1
	for i, v := range a {
		if v != 0 {
			last = i
		}
	}
	n := ix.root
	for i := 0; i <= last; i++ {
		if n.terminal {
			// An already-stored subset covers this assignment; storing
			// the superset would only slow lookups down. (The pruned
			// searches never insert covered assignments, but the index
			// stays correct for callers that do.)
			return
		}
		if n.children == nil {
			n.children = make([]*metNode, ix.arity[i])
		}
		child := n.children[a[i]]
		if child == nil {
			child = &metNode{}
			n.children[a[i]] = child
		}
		n = child
	}
	n.terminal = true
	// Subtrees below a terminal node are supersets of it; drop them.
	n.children = nil
}

func (ix *metIndex) covers(a Assignment) bool {
	return coversFrom(ix.root, a, 0)
}

func coversFrom(n *metNode, a Assignment, depth int) bool {
	if n.terminal {
		return true
	}
	if n.children == nil || depth == len(a) {
		return false
	}
	if c := n.children[0]; c != nil && coversFrom(c, a, depth+1) {
		return true
	}
	if v := a[depth]; v != 0 {
		if c := n.children[v]; c != nil && coversFrom(c, a, depth+1) {
			return true
		}
	}
	return false
}

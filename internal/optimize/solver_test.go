package optimize

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestStrategiesRegistered(t *testing.T) {
	want := []string{StrategyAuto, StrategyBranchAndBound, StrategyExhaustive, StrategyParallelPruned, StrategyPruned,
		StrategyBeam, StrategyLDS, StrategyBounded}
	got := Strategies()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("strategy %q missing from registry %v", name, got)
		}
	}
	for _, name := range want {
		if !ValidStrategy(name) {
			t.Fatalf("ValidStrategy(%q) = false", name)
		}
	}
	if !ValidStrategy("") {
		t.Fatal("empty strategy should be valid (caller default)")
	}
	if ValidStrategy("simulated-annealing") {
		t.Fatal("unregistered strategy should be invalid")
	}
}

func TestSolveUnknownStrategy(t *testing.T) {
	_, err := Solve(context.Background(), sampleProblem(), "no-such-solver")
	if err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("Solve with unknown strategy = %v, want unknown-strategy error", err)
	}
}

func TestRegisterSolverRejectsDuplicates(t *testing.T) {
	if err := RegisterSolver(solverFunc{StrategyPruned, nil}); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	if err := RegisterSolver(nil); err == nil {
		t.Fatal("nil solver should fail")
	}
}

// TestSolverEquivalenceOnRandomInstances is the registry-wide
// exactness guarantee for the exact lane: every non-approximate
// strategy returns the identical Best/BestNoPenalty on randomized
// instances. The approximate strategies are exempt by contract —
// their guarantee is the certified gap, pinned against these same
// oracles in the anytime tests.
func TestSolverEquivalenceOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	var strategies []string
	for _, s := range Strategies() {
		if !ApproximateStrategy(s) {
			strategies = append(strategies, s)
		}
	}
	for trial := 0; trial < 120; trial++ {
		p := randomProblem(rng)
		ref, err := p.Exhaustive()
		if err != nil {
			t.Fatalf("trial %d: Exhaustive: %v", trial, err)
		}
		for _, strategy := range strategies {
			res, err := Solve(context.Background(), p, strategy)
			if err != nil {
				t.Fatalf("trial %d: Solve(%s): %v", trial, strategy, err)
			}
			if res.Strategy == "" || res.Strategy == StrategyAuto {
				t.Fatalf("trial %d: Solve(%s) reported strategy %q, want a concrete solver", trial, strategy, res.Strategy)
			}
			if res.Best.TCO.Total() != ref.Best.TCO.Total() {
				t.Fatalf("trial %d: %s optimum %v != exhaustive %v (asg %v vs %v)",
					trial, strategy, res.Best.TCO.Total(), ref.Best.TCO.Total(), res.Best.Assignment, ref.Best.Assignment)
			}
			if !equalAssignments(res.Best.Assignment, ref.Best.Assignment) {
				t.Fatalf("trial %d: %s best assignment %v != exhaustive %v",
					trial, strategy, res.Best.Assignment, ref.Best.Assignment)
			}
			if res.NoPenaltyFound != ref.NoPenaltyFound {
				t.Fatalf("trial %d: %s NoPenaltyFound %v != exhaustive %v", trial, strategy, res.NoPenaltyFound, ref.NoPenaltyFound)
			}
			if ref.NoPenaltyFound && !equalAssignments(res.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment) {
				t.Fatalf("trial %d: %s BestNoPenalty %v != exhaustive %v",
					trial, strategy, res.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment)
			}
			if res.Evaluated+res.Skipped != ref.Evaluated {
				t.Fatalf("trial %d: %s accounting %d+%d != space %d",
					trial, strategy, res.Evaluated, res.Skipped, ref.Evaluated)
			}
		}
	}
}

// TestIndexedPrunedMatchesLinear pins the trie index to the linear
// reference scan candidate for candidate: identical Evaluated and
// Skipped, not just the same optimum.
func TestIndexedPrunedMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng)
		indexed, err := p.PrunedContext(context.Background())
		if err != nil {
			t.Fatalf("trial %d: indexed: %v", trial, err)
		}
		linear, err := p.prunedLinear(context.Background())
		if err != nil {
			t.Fatalf("trial %d: linear: %v", trial, err)
		}
		if indexed.Evaluated != linear.Evaluated || indexed.Skipped != linear.Skipped ||
			indexed.CoverLookups != linear.CoverLookups || indexed.Clipped != linear.Clipped {
			t.Fatalf("trial %d: indexed accounting (ev=%d sk=%d cl=%d clip=%d) != linear (ev=%d sk=%d cl=%d clip=%d)",
				trial, indexed.Evaluated, indexed.Skipped, indexed.CoverLookups, indexed.Clipped,
				linear.Evaluated, linear.Skipped, linear.CoverLookups, linear.Clipped)
		}
		if !equalAssignments(indexed.Best.Assignment, linear.Best.Assignment) {
			t.Fatalf("trial %d: indexed best %v != linear %v", trial, indexed.Best.Assignment, linear.Best.Assignment)
		}
	}
}

// TestParallelPrunedMatchesSequentialAccounting asserts the sharded
// level search is deterministic down to the effort statistics: same
// Evaluated, same Skipped as the sequential pruned walk.
func TestParallelPrunedMatchesSequentialAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		seq, err := p.Pruned()
		if err != nil {
			t.Fatalf("trial %d: Pruned: %v", trial, err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := p.ParallelPrunedContext(context.Background(), workers)
			if err != nil {
				t.Fatalf("trial %d: ParallelPruned(%d): %v", trial, workers, err)
			}
			if par.Evaluated != seq.Evaluated || par.Skipped != seq.Skipped ||
				par.CoverLookups != seq.CoverLookups || par.Clipped != seq.Clipped {
				t.Fatalf("trial %d workers=%d: parallel accounting (ev=%d sk=%d cl=%d clip=%d) != sequential (ev=%d sk=%d cl=%d clip=%d)",
					trial, workers, par.Evaluated, par.Skipped, par.CoverLookups, par.Clipped,
					seq.Evaluated, seq.Skipped, seq.CoverLookups, seq.Clipped)
			}
			if !equalAssignments(par.Best.Assignment, seq.Best.Assignment) {
				t.Fatalf("trial %d workers=%d: parallel best %v != sequential %v",
					trial, workers, par.Best.Assignment, seq.Best.Assignment)
			}
			if par.NoPenaltyFound != seq.NoPenaltyFound {
				t.Fatalf("trial %d workers=%d: NoPenaltyFound diverges", trial, workers)
			}
			if seq.NoPenaltyFound && !equalAssignments(par.BestNoPenalty.Assignment, seq.BestNoPenalty.Assignment) {
				t.Fatalf("trial %d workers=%d: parallel BestNoPenalty %v != sequential %v",
					trial, workers, par.BestNoPenalty.Assignment, seq.BestNoPenalty.Assignment)
			}
		}
	}
}

func TestAutoPicksByShape(t *testing.T) {
	t.Run("attainable small space goes pruned", func(t *testing.T) {
		// The case-study shape: the paper's Section III.C statistics
		// come from the pruned search, so auto must keep picking it.
		res, err := Solve(context.Background(), sampleProblem(), StrategyAuto)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyPruned {
			t.Fatalf("auto on the case-study shape picked %q, want pruned", res.Strategy)
		}
	})
	t.Run("unattainable SLA goes branch-and-bound", func(t *testing.T) {
		p := bigProblem(12)
		p.SLA.UptimePercent = 99.9999999 // nothing reaches it
		res, err := Solve(context.Background(), p, StrategyAuto)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyBranchAndBound {
			t.Fatalf("auto on unattainable SLA picked %q, want branch-and-bound", res.Strategy)
		}
		if res.NoPenaltyFound {
			t.Fatal("nothing should meet an unattainable SLA")
		}
	})
	t.Run("unattainable small space goes exhaustive", func(t *testing.T) {
		p := sampleProblem()
		p.SLA.UptimePercent = 99.9999999
		res, err := Solve(context.Background(), p, StrategyAuto)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyExhaustive {
			t.Fatalf("auto picked %q, want exhaustive", res.Strategy)
		}
	})
	t.Run("attainable large space goes parallel", func(t *testing.T) {
		p := bigProblem(16)
		p.SLA.UptimePercent = 95
		res, err := Solve(context.Background(), p, StrategyAuto)
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyParallelPruned {
			t.Fatalf("auto picked %q, want parallel-pruned", res.Strategy)
		}
	})
	t.Run("empty strategy means auto", func(t *testing.T) {
		res, err := Solve(context.Background(), sampleProblem(), "")
		if err != nil {
			t.Fatal(err)
		}
		if res.Strategy != StrategyPruned {
			t.Fatalf("empty strategy resolved to %q, want pruned", res.Strategy)
		}
	})
}

func TestSolveReportsResolvedStrategy(t *testing.T) {
	var reported []string
	ctx := WithStrategyReport(context.Background(), func(s string) {
		reported = append(reported, s)
	})
	res, err := Solve(ctx, sampleProblem(), StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(reported) != 1 || reported[0] != res.Strategy {
		t.Fatalf("strategy hook heard %v, want [%q]", reported, res.Strategy)
	}
}

func TestBranchAndBoundContextCancelled(t *testing.T) {
	p := bigProblem(12)
	// An unattainable bound keeps the incumbent from clipping the walk
	// down to nothing before the cancellation poll fires.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.BranchAndBoundContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("BranchAndBoundContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestBranchAndBoundReportsProgress(t *testing.T) {
	p := bigProblem(10)
	var last, space int64
	calls := 0
	ctx := WithProgress(context.Background(), func(evaluated, spaceSize int64) {
		calls++
		last, space = evaluated, spaceSize
	})
	res, err := p.BranchAndBoundContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("branch-and-bound never reported progress")
	}
	if space != int64(p.SpaceSize()) {
		t.Fatalf("reported space %d, want %d", space, p.SpaceSize())
	}
	if last != int64(res.Evaluated+res.Skipped) {
		t.Fatalf("final progress %d, want evaluated+skipped = %d", last, res.Evaluated+res.Skipped)
	}
}

func TestParallelPrunedCancelled(t *testing.T) {
	p := bigProblem(18)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ParallelPrunedContext(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelPrunedContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestParallelPrunedReportsProgress(t *testing.T) {
	p := bigProblem(12)
	var calls int
	var mu = make(chan struct{}, 1)
	var last, space int64
	ctx := WithProgress(context.Background(), func(evaluated, spaceSize int64) {
		mu <- struct{}{}
		calls++
		if evaluated > last {
			last = evaluated
		}
		space = spaceSize
		<-mu
	})
	res, err := p.ParallelPrunedContext(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("parallel search never reported progress")
	}
	if space != int64(p.SpaceSize()) {
		t.Fatalf("reported space %d, want %d", space, p.SpaceSize())
	}
	if last != int64(res.Evaluated+res.Skipped) {
		t.Fatalf("max progress %d, want evaluated+skipped = %d", last, res.Evaluated+res.Skipped)
	}
}

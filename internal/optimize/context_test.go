package optimize

import (
	"context"
	"errors"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

// bigProblem builds a search space large enough that enumeration does
// not finish before a cancellation in flight lands (2^n candidates).
func bigProblem(n int) *Problem {
	comps := make([]ComponentChoices, n)
	for i := range comps {
		comps[i] = ComponentChoices{
			Name: string(rune('a' + i%26)),
			Variants: []Variant{
				{Label: "none", Cluster: availability.Cluster{Name: "c", Nodes: 1, NodeDown: 0.03, FailuresPerYear: 5}},
				{Label: "ha", Cluster: availability.Cluster{Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.03, FailuresPerYear: 5, Failover: 30 * time.Second}, MonthlyCost: cost.Dollars(100)},
			},
		}
	}
	return &Problem{
		Components: comps,
		SLA: cost.SLA{
			UptimePercent: 99.9,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(500)},
		},
	}
}

func TestAllContextCancelled(t *testing.T) {
	p := bigProblem(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AllContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("AllContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestPrunedContextCancelled(t *testing.T) {
	p := bigProblem(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PrunedContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("PrunedContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestExhaustiveContextCancelled(t *testing.T) {
	p := bigProblem(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ExhaustiveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExhaustiveContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestContextVariantsMatchPlain(t *testing.T) {
	p := bigProblem(8)
	plain, err := p.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := p.ExhaustiveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Best.TCO.Total() != viaCtx.Best.TCO.Total() || plain.Evaluated != viaCtx.Evaluated {
		t.Fatalf("context variant diverges: %+v vs %+v", plain, viaCtx)
	}

	all, err := p.AllContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != p.SpaceSize() {
		t.Fatalf("AllContext returned %d candidates, want %d", len(all), p.SpaceSize())
	}
}

func TestCancelMidEnumeration(t *testing.T) {
	p := bigProblem(20) // 2^20 candidates: plenty of runway
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.AllContext(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("AllContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("enumeration did not abort after cancel")
	}
}

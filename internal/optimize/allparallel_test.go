package optimize

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// equalCandidates reports whether two fully priced candidates are
// byte-for-byte identical: same assignment digits, same uptime, same
// TCO decomposition.
func equalCandidates(a, b Candidate) bool {
	if !equalAssignments(a.Assignment, b.Assignment) {
		return false
	}
	return a.Uptime == b.Uptime && a.TCO == b.TCO
}

// TestParallelAllMatchesSequentialRandom is the full-pricing
// equivalence guarantee: ParallelAllContext returns the identical
// candidate slice — same length, same enumeration order, same values
// — as AllContext, across randomized problem shapes, worker counts
// and seeds.
func TestParallelAllMatchesSequentialRandom(t *testing.T) {
	for _, seed := range []int64{1, 20260730, 424242} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 40; trial++ {
			p := randomProblem(rng)
			seq, err := p.AllContext(context.Background())
			if err != nil {
				t.Fatalf("seed %d trial %d: AllContext: %v", seed, trial, err)
			}
			for _, workers := range []int{2, 3, 8} {
				par, err := p.ParallelAllContext(context.Background(), workers)
				if err != nil {
					t.Fatalf("seed %d trial %d workers %d: ParallelAllContext: %v", seed, trial, workers, err)
				}
				if len(par) != len(seq) {
					t.Fatalf("seed %d trial %d workers %d: %d candidates, want %d", seed, trial, workers, len(par), len(seq))
				}
				for i := range seq {
					if !equalCandidates(seq[i], par[i]) {
						t.Fatalf("seed %d trial %d workers %d: candidate %d diverges: parallel %+v, sequential %+v",
							seed, trial, workers, i, par[i], seq[i])
					}
				}
			}
		}
	}
}

// TestParallelAllMatchesSequentialWide covers the regime the random
// shapes miss: many symmetric components (deep prefix blocks, large
// contiguous suffix runs).
func TestParallelAllMatchesSequentialWide(t *testing.T) {
	for _, n := range []int{10, 13} {
		p := bigProblem(n)
		seq, err := p.AllContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		par, err := p.ParallelAllContext(context.Background(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("n=%d: %d candidates, want %d", n, len(par), len(seq))
		}
		for i := range seq {
			if !equalCandidates(seq[i], par[i]) {
				t.Fatalf("n=%d: candidate %d diverges: parallel %+v, sequential %+v", n, i, par[i], seq[i])
			}
		}
	}
}

func TestParallelAllRejectsNegativeWorkers(t *testing.T) {
	if _, err := bigProblem(4).ParallelAllContext(context.Background(), -1); err == nil {
		t.Fatal("workers = -1 should be rejected")
	}
}

func TestParallelAllCancelledUpfront(t *testing.T) {
	p := bigProblem(12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ParallelAllContext(ctx, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ParallelAllContext on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestParallelAllCancelMidShard cancels while workers are inside
// their blocks: the pool must drain and surface context.Canceled
// instead of finishing the space.
func TestParallelAllCancelMidShard(t *testing.T) {
	p := bigProblem(20) // 2^20 candidates: plenty of runway
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.ParallelAllContext(ctx, 4)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("ParallelAllContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallel pricing did not abort after cancel")
	}
}

// TestParallelAllProgressMonotonic asserts the WithProgress contract:
// reported evaluated counts never decrease across concurrent workers
// and the final report covers the whole space.
func TestParallelAllProgressMonotonic(t *testing.T) {
	p := bigProblem(13)
	var mu sync.Mutex
	var reports []int64
	ctx := WithProgress(context.Background(), func(evaluated, spaceSize int64) {
		mu.Lock()
		defer mu.Unlock()
		reports = append(reports, evaluated)
		if spaceSize != int64(p.SpaceSize()) {
			t.Errorf("spaceSize = %d, want %d", spaceSize, p.SpaceSize())
		}
	})
	if _, err := p.ParallelAllContext(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("progress hook never fired")
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] < reports[i-1] {
			t.Fatalf("progress went backwards at %d: %d after %d", i, reports[i], reports[i-1])
		}
	}
	if final := reports[len(reports)-1]; final != int64(p.SpaceSize()) {
		t.Fatalf("final progress = %d, want %d", final, p.SpaceSize())
	}
}

// BenchmarkAllPricing is the card-pricing pass the brokerage pays on
// every Recommend: full k^n enumeration, sequential vs parallel. The
// n=19 split is the benchreport suite's headline pricing scenario;
// speedup appears from GOMAXPROCS >= 2 and should reach >= 2x at
// GOMAXPROCS >= 4.
func BenchmarkAllPricing(b *testing.B) {
	for _, n := range []int{12, 16, 19} {
		p := slaDenseProblem(n, benchSLA)
		b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.AllContext(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.ParallelAllContext(context.Background(), 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

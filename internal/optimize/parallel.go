package optimize

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// ExhaustiveParallel evaluates the full candidate space like
// Exhaustive, sharding the first decision dimension across workers. It
// returns the identical optimum (the merge step reapplies the
// deterministic tie-break) and honors ctx cancellation between shards.
//
// Worth using when k^n climbs into the hundreds of thousands; below
// that the sequential search wins on overhead.
func (p *Problem) ExhaustiveParallel(ctx context.Context, workers int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if workers < 0 {
		return Result{}, fmt.Errorf("optimize: workers = %d, must be >= 0", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	firstK := len(p.Components[0].Variants)
	if workers > firstK {
		workers = firstK
	}
	if workers <= 1 || len(p.Components) == 1 {
		return p.Exhaustive()
	}

	// Each shard owns a subset of the first component's variants and
	// enumerates the remaining dimensions exhaustively.
	results := make([]Result, firstK)
	errs := make([]error, firstK)
	shards := make(chan int)
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for first := range shards {
				results[first], errs[first] = p.exhaustiveShard(first)
			}
		}()
	}

	var cancelErr error
feed:
	for first := 0; first < firstK; first++ {
		select {
		case shards <- first:
		case <-ctx.Done():
			cancelErr = ctx.Err()
			break feed
		}
	}
	close(shards)
	wg.Wait()

	if cancelErr != nil {
		return Result{}, fmt.Errorf("optimize: parallel search canceled: %w", cancelErr)
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	// Merge shard results with the same ordering rules the sequential
	// search applies.
	var merged Result
	for _, r := range results {
		if r.Evaluated == 0 {
			continue
		}
		if merged.Evaluated == 0 || better(r.Best, merged.Best) {
			merged.Best = r.Best
		}
		if r.NoPenaltyFound {
			if !merged.NoPenaltyFound || betterNoPenalty(r.BestNoPenalty, merged.BestNoPenalty) {
				merged.BestNoPenalty = r.BestNoPenalty
				merged.NoPenaltyFound = true
			}
		}
		merged.Evaluated += r.Evaluated
		merged.Skipped += r.Skipped
	}
	return merged, nil
}

// exhaustiveShard enumerates all candidates whose first choice is
// pinned to `first`.
func (p *Problem) exhaustiveShard(first int) (Result, error) {
	var res Result
	a := make(Assignment, len(p.Components))
	a[0] = first
	for {
		c, err := p.Evaluate(a)
		if err != nil {
			return Result{}, err
		}
		res.observe(c, p.SLA)
		if !p.advanceTail(a) {
			return res, nil
		}
	}
}

// advanceTail steps dimensions 1..n-1, leaving the pinned first digit
// untouched; it returns false after the shard's final candidate.
func (p *Problem) advanceTail(a Assignment) bool {
	for i := len(a) - 1; i >= 1; i-- {
		a[i]++
		if a[i] < len(p.Components[i].Variants) {
			return true
		}
		a[i] = 0
	}
	return false
}

package optimize

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// ExhaustiveParallel evaluates the full candidate space like
// Exhaustive, sharding the first decision dimension across workers. It
// returns the identical optimum (the merge step reapplies the
// deterministic tie-break) and honors ctx cancellation between shards.
//
// Worth using when k^n climbs into the hundreds of thousands; below
// that the sequential search wins on overhead.
func (p *Problem) ExhaustiveParallel(ctx context.Context, workers int) (Result, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	if workers < 0 {
		return Result{}, fmt.Errorf("optimize: workers = %d, must be >= 0", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	firstK := len(p.Components[0].Variants)
	if workers > firstK {
		workers = firstK
	}
	if workers <= 1 || len(p.Components) == 1 {
		return p.Exhaustive()
	}

	// Each shard owns a subset of the first component's variants and
	// enumerates the remaining dimensions exhaustively.
	results := make([]Result, firstK)
	errs := make([]error, firstK)
	shards := make(chan int)
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur := ev.NewCursor()
			scratch := make(Assignment, len(p.Components))
			for first := range shards {
				results[first], errs[first] = p.exhaustiveShard(cur, scratch, first)
			}
		}()
	}

	var cancelErr error
feed:
	for first := 0; first < firstK; first++ {
		select {
		case shards <- first:
		case <-ctx.Done():
			cancelErr = ctx.Err()
			break feed
		}
	}
	close(shards)
	wg.Wait()

	if cancelErr != nil {
		return Result{}, fmt.Errorf("optimize: parallel search canceled: %w", cancelErr)
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	merged := mergeResults(results)
	return merged, nil
}

// mergeResults folds shard results with the same ordering rules the
// sequential searches apply, so the merged optimum is independent of
// shard completion order. Evaluated/Skipped/CoverLookups/Clipped
// accounting always sums; Best only considers shards that evaluated
// anything.
func mergeResults(results []Result) Result {
	var merged Result
	seen := false
	for _, r := range results {
		merged.Skipped += r.Skipped
		merged.CoverLookups += r.CoverLookups
		merged.Clipped += r.Clipped
		if r.Evaluated == 0 {
			continue
		}
		if !seen || better(r.Best, merged.Best) {
			merged.Best = r.Best
		}
		seen = true
		if r.NoPenaltyFound {
			if !merged.NoPenaltyFound || betterNoPenalty(r.BestNoPenalty, merged.BestNoPenalty) {
				merged.BestNoPenalty = r.BestNoPenalty
				merged.NoPenaltyFound = true
			}
		}
		merged.Evaluated += r.Evaluated
	}
	return merged
}

// exhaustiveShard enumerates all candidates whose first choice is
// pinned to `first` on the worker's reusable cursor.
func (p *Problem) exhaustiveShard(cur *Cursor, scratch Assignment, first int) (Result, error) {
	for i := range scratch {
		scratch[i] = 0
	}
	scratch[0] = first
	cur.Sync(scratch)
	var res Result
	for {
		res.observeCursor(cur, p.SLA)
		if !cur.AdvanceFrom(1) {
			return res, nil
		}
	}
}

// advanceFrom steps dimensions from..n-1 in mixed-radix order, leaving
// the pinned prefix untouched; it returns false after the suffix's
// final candidate. from = 0 is the full advance, from = 1 the
// first-digit shards of ExhaustiveParallel, larger prefixes the blocks
// of ParallelAllContext.
func (p *Problem) advanceFrom(a Assignment, from int) bool {
	for i := len(a) - 1; i >= from; i-- {
		a[i]++
		if a[i] < len(p.Components[i].Variants) {
			return true
		}
		a[i] = 0
	}
	return false
}

// ParallelPruned is ParallelPrunedContext with a background context
// and GOMAXPROCS workers.
func (p *Problem) ParallelPruned() (Result, error) {
	return p.ParallelPrunedContext(context.Background(), 0)
}

// ParallelPrunedContext runs the Section III.C level search with each
// level's subtree walk sharded across workers. Within one level the
// superset index is frozen (read-only), which is lossless: an
// assignment at level L can only be covered by a met assignment from
// a strictly lower level — two distinct level-L assignments never
// cover each other, since coverage at equal clustered-count forces
// equality. Newly met assignments are collected per worker and merged
// into the index at the level barrier, so the search visits, prices
// and skips exactly the same candidates as the sequential PrunedContext
// — Evaluated, Skipped, Best and BestNoPenalty are all identical,
// which the equivalence tests assert.
//
// The frozen index is the flat arena trie of flatindex.go: workers
// share the arena read-only (no per-level copy or rebuild) and carry
// private checkpointed walkers, so each worker's lookups amortize its
// own task's changed suffixes without sharing any mutable state.
//
// Work distribution is dynamic (work-stealing over a task channel):
// each level is split into prefix tasks — the first splitDepth
// component choices pinned — and idle workers pull the next prefix, so
// an uneven subtree cannot strand the pool behind one worker.
// workers = 0 means GOMAXPROCS.
func (p *Problem) ParallelPrunedContext(ctx context.Context, workers int) (Result, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	if workers < 0 {
		return Result{}, fmt.Errorf("optimize: workers = %d, must be >= 0", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(p.Components) == 1 {
		return p.PrunedContext(ctx)
	}

	n := len(p.Components)
	ix := newFlatMetIndex(p)
	st := newSharedTicker(ctx, p)
	var res Result

	for level := 0; level <= n; level++ {
		levelRes, met, err := p.parallelLevel(ctx, ev, workers, level, ix, st)
		if err != nil {
			return Result{}, err
		}
		res = mergeResults([]Result{res, levelRes})
		for _, m := range met {
			ix.insert(m)
		}
	}
	st.done()
	return res, nil
}

// levelTask is one unit of sharded work: a pinned prefix of the
// assignment plus how many clustered components the suffix must add.
type levelTask struct {
	prefix    Assignment
	remaining int
}

// parallelLevel shards one level's combination walk across workers and
// returns the level's merged result plus the assignments that newly
// met the SLA (for insertion after the barrier).
func (p *Problem) parallelLevel(ctx context.Context, ev *Evaluator, workers, level int, ix *flatMetIndex, st *sharedTicker) (Result, []Assignment, error) {
	tasks := p.levelTasks(level, workers)
	if len(tasks) == 0 {
		return Result{}, nil, nil
	}

	results := make([]Result, len(tasks))
	metLists := make([][]Assignment, len(tasks))
	errs := make([]error, len(tasks))
	feed := make(chan int)
	var wg sync.WaitGroup

	if workers > len(tasks) {
		workers = len(tasks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := canceler{ctx: ctx}
			cur := ev.NewCursor()
			// Each worker's private checkpointed walker over the shared
			// frozen arena; walk state is the only mutable part.
			w := ix.newWalker()
			for ti := range feed {
				results[ti], metLists[ti], errs[ti] = p.walkTask(&cc, tasks[ti], w, st, cur)
			}
		}()
	}

	var cancelErr error
dispatch:
	for ti := range tasks {
		select {
		case feed <- ti:
		case <-ctx.Done():
			cancelErr = ctx.Err()
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	if cancelErr != nil {
		return Result{}, nil, cancelErr
	}
	for _, err := range errs {
		if err != nil {
			return Result{}, nil, err
		}
	}

	var met []Assignment
	for _, list := range metLists {
		met = append(met, list...)
	}
	return mergeResults(results), met, nil
}

// levelTasks enumerates the prefix tasks for one level: every
// assignment of the first splitDepth components consistent with the
// level (clustered count ≤ level, and the suffix can still reach it).
// The split depth grows until there are enough tasks to keep the pool
// busy, so small k (the common k=2 case) still fans out.
func (p *Problem) levelTasks(level, workers int) []levelTask {
	n := len(p.Components)
	want := workers * 4

	splitDepth := 0
	count := 1
	for splitDepth < n && count < want {
		count *= len(p.Components[splitDepth].Variants)
		splitDepth++
	}

	var tasks []levelTask
	prefix := make(Assignment, splitDepth)
	var gen func(idx, used int)
	gen = func(idx, used int) {
		if used > level || level-used > n-idx {
			return // cannot reach the level anymore
		}
		if idx == splitDepth {
			tasks = append(tasks, levelTask{prefix: prefix.Clone(), remaining: level - used})
			return
		}
		prefix[idx] = 0
		gen(idx+1, used)
		for v := 1; v < len(p.Components[idx].Variants); v++ {
			prefix[idx] = v
			gen(idx+1, used+1)
		}
		prefix[idx] = 0
	}
	gen(0, 0)
	return tasks
}

// walkTask enumerates the suffix of one prefix task through the
// shared walkLevel/prunedLeaf machinery against the worker's walker
// over the frozen index. Newly met assignments are collected rather
// than inserted — the caller merges them at the level barrier.
func (p *Problem) walkTask(cc *canceler, task levelTask, w *flatWalker, st *sharedTicker, cur *Cursor) (Result, []Assignment, error) {
	a := make(Assignment, len(p.Components))
	copy(a, task.prefix)

	var (
		res Result
		met []Assignment
	)
	err := p.walkLevel(a, len(task.prefix), task.remaining, func(changedFrom int) error {
		return p.prunedLeaf(a, changedFrom, cc, w.coversFrom, &res, st.advance, func(m Assignment) {
			met = append(met, m.Clone())
		}, cur)
	})
	if err != nil {
		return Result{}, nil, err
	}
	return res, met, nil
}

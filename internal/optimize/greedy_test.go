package optimize

import (
	"math/rand"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

func TestGreedyFindsCaseStudyOptimum(t *testing.T) {
	// On the case-study shape a single upgrade (storage HA) is already
	// the global optimum, so greedy must find it.
	p := sampleProblem()
	res, err := p.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	ex, _ := p.Exhaustive()
	if res.Best.TCO.Total() != ex.Best.TCO.Total() {
		t.Fatalf("greedy %v != exhaustive %v on the easy instance",
			res.Best.TCO.Total(), ex.Best.TCO.Total())
	}
	// Greedy should have evaluated far fewer than... actually with n=3,
	// k=2 the space is 8; just check the count is sane and positive.
	if res.Evaluated < 1 {
		t.Fatal("no evaluations recorded")
	}
}

func TestGreedyNeverBeatsExhaustive(t *testing.T) {
	// Soundness: greedy returns a real candidate, so it can match but
	// never beat the global optimum.
	rng := rand.New(rand.NewSource(2017))
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng)
		gr, err := p.Greedy()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ex, err := p.Exhaustive()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gr.Best.TCO.Total() < ex.Best.TCO.Total() {
			t.Fatalf("trial %d: greedy %v beat exhaustive %v — evaluation bug",
				trial, gr.Best.TCO.Total(), ex.Best.TCO.Total())
		}
	}
}

// localOptimumTrap builds an instance where no single upgrade helps but
// a pair does: two flaky components whose individual HA is overpriced
// relative to its solo penalty reduction, while clustering both crosses
// the SLA and zeroes a large penalty.
func localOptimumTrap() *Problem {
	mk := func(haCost float64) ComponentChoices {
		return ComponentChoices{
			Name: "c",
			Variants: []Variant{
				{
					Label:   "none",
					Cluster: availability.Cluster{Name: "c", Nodes: 1, Tolerated: 0, NodeDown: 0.02},
				},
				{
					Label: "ha",
					Cluster: availability.Cluster{
						Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.02,
						FailuresPerYear: 1, Failover: time.Minute,
					},
					MonthlyCost: cost.Dollars(haCost),
				},
			},
		}
	}
	// Pricing is deliberate: no-HA TCO is ≈ $2,817.80 (pure penalty), a
	// single upgrade costs C + ≈$1,415.77 penalty, and the pair costs
	// 2C with zero penalty. Any C in ($1,402.04, $1,408.90) makes each
	// single upgrade a loss while the pair wins.
	return &Problem{
		Components: []ComponentChoices{mk(1405), mk(1405)},
		SLA:        cost.SLA{UptimePercent: 99.9, Penalty: cost.Penalty{PerHour: cost.Dollars(100)}},
	}
}

func TestGreedyStallsInLocalOptimum(t *testing.T) {
	p := localOptimumTrap()
	gr, err := p.Greedy()
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	ex, err := p.Exhaustive()
	if err != nil {
		t.Fatalf("Exhaustive: %v", err)
	}
	if gr.Best.TCO.Total() <= ex.Best.TCO.Total() {
		t.Fatalf("trap did not trap: greedy %v, exhaustive %v — rebuild the instance",
			gr.Best.TCO.Total(), ex.Best.TCO.Total())
	}
	// The trap's global optimum clusters both components.
	if !equalAssignments(ex.Best.Assignment, Assignment{1, 1}) {
		t.Fatalf("exhaustive best = %v, want {1,1}", ex.Best.Assignment)
	}
	// Greedy stayed at the origin: each single upgrade raises TCO.
	if !equalAssignments(gr.Best.Assignment, Assignment{0, 0}) {
		t.Fatalf("greedy best = %v, want {0,0}", gr.Best.Assignment)
	}
}

func TestGreedyInvalidProblem(t *testing.T) {
	bad := &Problem{}
	if _, err := bad.Greedy(); err == nil {
		t.Fatal("invalid problem should fail")
	}
}

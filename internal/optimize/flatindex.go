package optimize

import "math"

// flatMetIndex is the production superset index: the met-trie of
// metindex.go rebuilt as a flat, array-indexed arena. Nodes live in
// one contiguous struct-of-arrays store — child edges are int32
// indices into a single bump-allocated edge arena, terminal flags are
// packed bits — so insert never calls new(metNode) and covers never
// chases heap pointers: a lookup is an iterative descent over int32
// slices with perfect locality and zero steady-state heap allocations
// (a property the allocation tests pin, like the evaluation loop's).
//
// Node 0 is the root. Edge slot 0 doubles as "no child" — the root is
// never anyone's child — so freshly grown edge blocks need no
// initialization beyond the zeroing append already performs.
//
// Lookup state lives in flatWalkers, not the index: the index itself
// is safe to share read-only across goroutines (the parallel level
// search hands every worker the same frozen arena and a private
// walker; no per-level rebuild). Each insert bumps an epoch so
// walkers can tell when their checkpoints went stale.
type flatMetIndex struct {
	arity    []int    // variants per component, sizing edge blocks
	kidsOff  []int32  // per node: offset of its edge block, -1 = none
	terminal []uint64 // packed per-node terminal bits
	edges    []int32  // edge arena; edges[kidsOff[n]+v] = child, 0 = none
	epoch    uint64   // bumped per insert; walkers invalidate on change
	minLevel int      // fewest clustered components of any stored assignment

	// w is the sequential owner's walker, so the index satisfies
	// coverIndex directly; concurrent readers take newWalker.
	w flatWalker
}

func newFlatMetIndex(p *Problem) *flatMetIndex {
	arity := make([]int, len(p.Components))
	for i, comp := range p.Components {
		arity[i] = len(comp.Variants)
	}
	ix := &flatMetIndex{
		arity:    arity,
		kidsOff:  make([]int32, 1, 1024), // node 0: the root, no children yet
		terminal: make([]uint64, 1, 16),
		minLevel: math.MaxInt,
	}
	ix.kidsOff[0] = -1
	ix.w = *ix.newWalker()
	return ix
}

func (ix *flatMetIndex) isTerminal(n int32) bool {
	return ix.terminal[n>>6]&(1<<(n&63)) != 0
}

func (ix *flatMetIndex) setTerminal(n int32) {
	ix.terminal[n>>6] |= 1 << (n & 63)
}

// newNode bump-allocates one node into the arena.
func (ix *flatMetIndex) newNode() int32 {
	id := int32(len(ix.kidsOff))
	ix.kidsOff = append(ix.kidsOff, -1)
	if int(id>>6) >= len(ix.terminal) {
		ix.terminal = append(ix.terminal, 0)
	}
	return id
}

// insert records one SLA-meeting assignment, trailing-zero compressed
// exactly like the pointer trie: the node for the last clustered
// component becomes terminal and its subtree (supersets only) is
// detached. Covered inserts exit early; the searches never produce
// them, but the index stays correct for callers that do.
func (ix *flatMetIndex) insert(a Assignment) {
	last, level := -1, 0
	for i, v := range a {
		if v != 0 {
			last = i
			level++
		}
	}
	n := int32(0)
	for i := 0; i <= last; i++ {
		if ix.isTerminal(n) {
			return
		}
		off := ix.kidsOff[n]
		if off < 0 {
			off = int32(len(ix.edges))
			ix.kidsOff[n] = off
			// Grow one zeroed edge block in place; append's fresh
			// memory is already zero and zero means "no child".
			need := len(ix.edges) + ix.arity[i]
			if need <= cap(ix.edges) {
				ix.edges = ix.edges[:need]
				clear(ix.edges[off:need])
			} else {
				ix.edges = append(ix.edges, make([]int32, ix.arity[i])...)
			}
		}
		child := ix.edges[off+int32(a[i])]
		if child == 0 {
			child = ix.newNode()
			ix.edges[off+int32(a[i])] = child
		}
		n = child
	}
	ix.setTerminal(n)
	ix.kidsOff[n] = -1 // detach the superset subtree, as the pointer trie does
	if level < ix.minLevel {
		ix.minLevel = level
	}
	ix.epoch++
}

// coversFrom satisfies coverIndex on the index's own walker; the
// parallel search gives each worker a private walker instead.
func (ix *flatMetIndex) coversFrom(a Assignment, from int) bool {
	return ix.w.coversFrom(a, from)
}

// flatWalker is checkpointed lookup state over a flatMetIndex: the
// explicit frontier stack of one covers descent, kept between lookups
// the same way a Cursor keeps its fold checkpoints. frontier d — the
// trie nodes reachable by matching digits 0..d-1 — depends only on
// a's prefix of length d, so when the caller reports that digits
// below `from` are unchanged since the previous lookup, the walk
// resumes from frontier from instead of re-descending from the root.
// The level enumeration and branch-and-bound's depth-first walk both
// change only a suffix between consecutive leaves, which amortizes
// lookups exactly like Cursor.Advance amortizes re-folding.
//
// Checkpoints are sound only against the trie they were computed on:
// every insert bumps the index epoch and a stale walker restarts from
// the root on its next lookup, so immediate-insert searches (the
// sequential level walk, branch-and-bound) stay exact without any
// argument about what the new assignment can or cannot cover.
//
// A walker is single-goroutine state. The zero-allocation steady
// state is reached once the frontier buffer has grown to the
// instance's high-water mark; allocation tests pin it at 0 allocs/op.
type flatWalker struct {
	ix    *flatMetIndex
	epoch uint64

	// buf holds the frontiers back to back: frontier d occupies
	// buf[off[d]:off[d+1]] for every d <= valid.
	buf   []int32
	off   []int32
	valid int
}

// newWalker returns a fresh walker over the index. Workers of the
// parallel level search each take one; the index's frozen arena is
// shared, the walk state is not.
func (ix *flatMetIndex) newWalker() *flatWalker {
	w := &flatWalker{
		ix:    ix,
		epoch: ix.epoch,
		buf:   make([]int32, 1, 256),
		off:   make([]int32, len(ix.arity)+2),
	}
	w.buf[0] = 0 // frontier 0 is always {root}
	w.off[1] = 1
	return w
}

// coversFrom reports whether any inserted assignment covers a,
// resuming from depth `from` when the walker's checkpoints allow it
// (see coverIndex.coversFrom for the caller's promise).
//
// A covering assignment clusters a subset of a's components, so it
// sits at a level at or below a's — and at exactly a's level only a
// itself covers a. The walker exploits both facts before touching the
// frontier: queries below the minimum stored level answer false
// outright, and queries at it reduce to an O(n) exact-path descent.
// That second shortcut is what keeps lookups cheap in the one regime
// where checkpoints cannot help — the first SLA-met level, where every
// leaf's insert bumps the epoch and would otherwise force a full
// frontier rebuild on the next lookup (the level search's met level,
// and branch-and-bound's cost-tie leaves).
func (w *flatWalker) coversFrom(a Assignment, from int) bool {
	ix := w.ix
	level, last := 0, -1
	for i, v := range a {
		if v != 0 {
			level++
			last = i
		}
	}
	if level <= ix.minLevel {
		// The shortcuts below don't recompute frontiers, so any
		// checkpoints now describe an older query's prefix and must
		// not be resumed by a later hinted call.
		w.valid = 0
		if level < ix.minLevel {
			return false
		}
		n := int32(0)
		for i := 0; i <= last; i++ {
			if ix.isTerminal(n) {
				return true // stored proper subset on the path
			}
			off := ix.kidsOff[n]
			if off < 0 {
				return false
			}
			n = ix.edges[off+int32(a[i])]
			if n == 0 {
				return false
			}
		}
		return ix.isTerminal(n)
	}
	if w.epoch != ix.epoch {
		// The trie grew since the checkpoints were taken; only
		// frontier 0 ({root}) survives.
		w.epoch = ix.epoch
		w.valid = 0
	}
	d := from
	if d > w.valid {
		d = w.valid
	}
	for {
		f := w.buf[w.off[d]:w.off[d+1]]
		for _, n := range f {
			if ix.isTerminal(n) {
				w.valid = d
				return true
			}
		}
		if len(f) == 0 || d == len(a) {
			w.valid = d
			return false
		}
		// Build frontier d+1 in place: each node contributes its
		// baseline child and, when a clusters component d, the
		// matching variant child. Children are unique (each node has
		// one parent), so the frontier never holds duplicates.
		w.buf = w.buf[:w.off[d+1]]
		v := int32(a[d])
		for _, n := range f {
			off := ix.kidsOff[n]
			if off < 0 {
				continue
			}
			if c := ix.edges[off]; c != 0 {
				w.buf = append(w.buf, c)
			}
			if v != 0 {
				if c := ix.edges[off+v]; c != 0 {
					w.buf = append(w.buf, c)
				}
			}
		}
		d++
		w.off[d+1] = int32(len(w.buf))
	}
}

// flatRescanIndex runs the flat arena without checkpoint reuse: every
// lookup re-descends from the root. It exists so the benchmarks can
// split the arena-layout win from the checkpointed-walk win
// (solver/pruned-flat vs solver/pruned in benchreport).
type flatRescanIndex struct {
	ix *flatMetIndex
}

func (r flatRescanIndex) insert(a Assignment) { r.ix.insert(a) }

func (r flatRescanIndex) coversFrom(a Assignment, _ int) bool {
	return r.ix.w.coversFrom(a, 0)
}

package optimize

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// StreamContext enumerates every one of the k^n candidates in
// mixed-radix order, presenting each to visit through a Cursor — the
// streaming counterpart of AllContext for consumers that fold
// candidates online (option cards, incumbents, Pareto frontiers)
// instead of materializing an O(k^n) slice. The cursor is reused
// between calls: visit must read what it needs (Uptime, TCO,
// Assignment, Index) before returning and must not retain the cursor
// or its assignment view; Candidate() clones for retention.
//
// The enumeration runs on the compiled incremental evaluator: zero
// heap allocations per step in steady state, with values
// bit-identical to Problem.Evaluate. Cancellation and WithProgress
// reporting behave exactly as in AllContext; an error from visit
// aborts the stream and is returned verbatim.
func (p *Problem) StreamContext(ctx context.Context, visit func(*Cursor) error) error {
	ev, err := NewEvaluator(p)
	if err != nil {
		return err
	}
	return ev.stream(ctx, visit)
}

// stream is the sequential streaming core over a compiled evaluator.
func (e *Evaluator) stream(ctx context.Context, visit func(*Cursor) error) error {
	cur := e.NewCursor()
	cc := canceler{ctx: ctx}
	pt := newProgressTicker(ctx, e.p)
	for {
		if err := cc.check(); err != nil {
			return err
		}
		if err := visit(cur); err != nil {
			return err
		}
		pt.advance(1)
		if !cur.Advance() {
			pt.done()
			return nil
		}
	}
}

// ParallelStreamContext is StreamContext sharded across workers with
// the prefix-block work-stealing scheme of ParallelAllContext: the
// first splitDepth digits are pinned per block and idle workers steal
// the next block off a shared feed. fork is invoked once per worker
// (concurrently) to produce that worker's visitor; per-worker visitor
// state plus a deterministic caller-side merge is the pattern — each
// candidate is visited exactly once, with Cursor.Index identifying
// its place in the global enumeration order. workers = 0 means
// GOMAXPROCS; workers <= 1 degrades to the sequential stream over
// fork()'s single visitor.
func (p *Problem) ParallelStreamContext(ctx context.Context, workers int, fork func() func(*Cursor) error) error {
	ev, err := NewEvaluator(p)
	if err != nil {
		return err
	}
	return ev.parallelStream(ctx, workers, fork)
}

// parallelStream is the sharded streaming core over a compiled
// evaluator.
func (e *Evaluator) parallelStream(ctx context.Context, workers int, fork func() func(*Cursor) error) error {
	p := e.p
	if workers < 0 {
		return fmt.Errorf("optimize: workers = %d, must be >= 0", workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(p.Components) == 1 {
		return e.stream(ctx, fork())
	}

	// Grow the pinned prefix until there are enough blocks for the
	// pool to steal from; never past n-1 so every block keeps at
	// least one free digit.
	n := len(p.Components)
	want := workers * 4
	splitDepth, blocks := 0, 1
	for splitDepth < n-1 && blocks < want {
		blocks *= len(p.Components[splitDepth].Variants)
		splitDepth++
	}
	blockSize := p.SpaceSize() / blocks

	errs := make([]error, blocks)
	feed := make(chan int)
	st := newSharedTicker(ctx, p)
	if workers > blocks {
		workers = blocks
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			visit := fork()
			cur := e.NewCursor()
			cc := canceler{ctx: ctx}
			for bi := range feed {
				errs[bi] = streamBlock(cur, bi, splitDepth, blockSize, visit, &cc, st)
			}
		}()
	}

	var cancelErr error
dispatch:
	for bi := 0; bi < blocks; bi++ {
		select {
		case feed <- bi:
		case <-ctx.Done():
			cancelErr = ctx.Err()
			break dispatch
		}
	}
	close(feed)
	wg.Wait()

	if cancelErr != nil {
		return cancelErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	st.done()
	return nil
}

// streamBlock visits one prefix block's candidates. block is the
// mixed-radix value of the pinned prefix digits.
func streamBlock(cur *Cursor, block, splitDepth, blockSize int, visit func(*Cursor) error, cc *canceler, st *sharedTicker) error {
	cur.seekBlock(block, splitDepth)
	for j := 0; j < blockSize; j++ {
		if err := cc.check(); err != nil {
			return err
		}
		if err := visit(cur); err != nil {
			return err
		}
		st.advance(1)
		if j+1 < blockSize {
			cur.AdvanceFrom(splitDepth)
		}
	}
	return nil
}

// seekBlock positions the cursor on the first candidate of a prefix
// block: digits [0, splitDepth) decode the block number, the suffix
// is all-baseline.
func (c *Cursor) seekBlock(block, splitDepth int) {
	rem := block
	for i := splitDepth - 1; i >= 0; i-- {
		k := c.e.arity[i]
		c.a[i] = rem % k
		rem /= k
	}
	for i := splitDepth; i < len(c.a); i++ {
		c.a[i] = 0
	}
	c.idx = 0
	if splitDepth > 0 {
		c.idx = int64(block) * c.e.place[splitDepth-1]
	}
	c.refold(0)
}

package optimize

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

// randomWideProblem is randomProblem stretched to the widths the
// anytime lane is for: up to 12 components (arity capped so the
// exhaustive oracle stays fast enough to run hundreds of trials).
func randomWideProblem(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(11)
	comps := make([]ComponentChoices, n)
	for i := range comps {
		k := 2
		if n <= 8 {
			k += rng.Intn(2)
		}
		variants := make([]Variant, k)
		down := 0.002 + rng.Float64()*0.03
		variants[0] = Variant{
			Label:   "none",
			Cluster: availability.Cluster{Name: "c", Nodes: 1, Tolerated: 0, NodeDown: down},
		}
		prevCost := cost.Money(0)
		for v := 1; v < k; v++ {
			prevCost += cost.Dollars(float64(1 + rng.Intn(2000)))
			variants[v] = Variant{
				Label: "ha",
				Cluster: availability.Cluster{
					Name: "c", Nodes: 1 + v, Tolerated: v, NodeDown: down,
					FailuresPerYear: rng.Float64() * 8,
					Failover:        time.Duration(rng.Intn(10)) * time.Minute,
				},
				MonthlyCost: prevCost,
			}
		}
		comps[i] = ComponentChoices{Name: "c", Variants: variants}
	}
	return &Problem{
		Components: comps,
		SLA: cost.SLA{
			UptimePercent: 88 + rng.Float64()*11.9,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(float64(1 + rng.Intn(500)))},
		},
	}
}

// anytimeConfigs are the configurations the soundness sweep runs each
// trial through: defaults plus deliberately starved knobs, because the
// certificate must stay sound no matter how little of the space a
// search managed to see.
func anytimeConfigs() []SolverConfig {
	return []SolverConfig{
		{Strategy: StrategyBeam},
		{Strategy: StrategyBeam, BeamWidth: 1},
		{Strategy: StrategyBeam, Budget: Budget{MaxEvaluations: 3}},
		{Strategy: StrategyLDS},
		{Strategy: StrategyLDS, MaxDiscrepancies: 1},
		{Strategy: StrategyLDS, Budget: Budget{MaxEvaluations: 5}},
		{Strategy: StrategyBounded},
		{Strategy: StrategyBounded, Epsilon: 0.3},
		{Strategy: StrategyBounded, Budget: Budget{MaxEvaluations: 2}},
	}
}

// TestAnytimeGapSoundnessVsOracle is the acceptance property the exact
// solvers pin for the approximate lane: on randomized instances up to
// n=12, every approximate strategy's reported bound never exceeds the
// true optimum (from the from-scratch exhaustive oracle), its
// incumbent is a real candidate priced correctly and never better than
// the optimum, the reported gap matches its definition, and a claimed
// Optimal really is the optimum.
func TestAnytimeGapSoundnessVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 150; trial++ {
		p := randomWideProblem(rng)
		ref, err := p.ExhaustiveScratch(context.Background())
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		opt := ref.Best.TCO.Total()
		for _, cfg := range anytimeConfigs() {
			res, err := SolveConfig(context.Background(), p, cfg)
			if err != nil {
				t.Fatalf("trial %d: %+v: %v", trial, cfg, err)
			}
			if !res.Approximate {
				t.Fatalf("trial %d: %s result not marked Approximate", trial, cfg.Strategy)
			}
			if res.Strategy != cfg.Strategy {
				t.Fatalf("trial %d: stamped strategy %q, want %q", trial, res.Strategy, cfg.Strategy)
			}
			if res.Evaluated < 1 {
				t.Fatalf("trial %d: %s evaluated nothing", trial, cfg.Strategy)
			}
			if res.Bound > opt {
				t.Fatalf("trial %d: %s bound %v exceeds true optimum %v (cfg %+v)",
					trial, cfg.Strategy, res.Bound, opt, cfg)
			}
			inc := res.Best.TCO.Total()
			if inc < opt {
				t.Fatalf("trial %d: %s incumbent %v beats the optimum %v", trial, cfg.Strategy, inc, opt)
			}
			check, err := p.Evaluate(res.Best.Assignment)
			if err != nil {
				t.Fatalf("trial %d: %s incumbent does not evaluate: %v", trial, cfg.Strategy, err)
			}
			if check.TCO != res.Best.TCO || check.Uptime != res.Best.Uptime {
				t.Fatalf("trial %d: %s incumbent mispriced: %+v vs %+v", trial, cfg.Strategy, res.Best.TCO, check.TCO)
			}
			switch {
			case math.IsInf(res.Gap, 1):
				if res.Bound != 0 || inc == 0 {
					t.Fatalf("trial %d: %s infinite gap with bound %v incumbent %v", trial, cfg.Strategy, res.Bound, inc)
				}
			case res.Bound > 0:
				want := float64(inc-res.Bound) / float64(res.Bound)
				if math.Abs(res.Gap-want) > 1e-12 {
					t.Fatalf("trial %d: %s gap %v, want %v", trial, cfg.Strategy, res.Gap, want)
				}
			default:
				if res.Gap != 0 || inc != 0 {
					t.Fatalf("trial %d: %s zero bound with gap %v incumbent %v", trial, cfg.Strategy, res.Gap, inc)
				}
			}
			if res.Optimal && inc != opt {
				t.Fatalf("trial %d: %s claims optimal at %v but the optimum is %v", trial, cfg.Strategy, inc, opt)
			}
			if res.NoPenaltyFound && !res.BestNoPenalty.MeetsSLA(p.SLA) {
				t.Fatalf("trial %d: %s no-penalty incumbent misses the SLA", trial, cfg.Strategy)
			}
		}
	}
}

// TestBoundedCertificateOnCompletion pins the ε-clip's promise: a
// bounded run that finished under no budget has an incumbent within a
// (1+ε) factor of the true optimum, and its certified gap says so.
func TestBoundedCertificateOnCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		p := randomWideProblem(rng)
		ref, err := p.ExhaustiveScratch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.01, 0.05, 0.5} {
			res, err := SolveConfig(context.Background(), p, SolverConfig{Strategy: StrategyBounded, Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			if res.BudgetExhausted {
				t.Fatalf("trial %d: exhausted without a budget", trial)
			}
			inc := float64(res.Best.TCO.Total())
			opt := float64(ref.Best.TCO.Total())
			if inc > opt*(1+eps)+1 { // +1 micro-dollar for integer rounding
				t.Fatalf("trial %d: eps=%v incumbent %v outside (1+eps) of optimum %v", trial, eps, inc, opt)
			}
			if !math.IsInf(res.Gap, 1) && res.Gap > eps+1e-9 && res.Bound > 0 {
				// The completed-run certificate is max(root, inc/(1+eps)),
				// so the reported gap can never exceed eps (up to integer
				// truncation of the bound).
				want := float64(inc)/(1+eps) - 1
				if float64(res.Bound) < want {
					t.Fatalf("trial %d: eps=%v gap %v > eps with bound %v below inc/(1+eps)",
						trial, eps, res.Gap, res.Bound)
				}
			}
		}
	}
}

// TestAnytimeCompleteRunsAreExact checks the completeness fast-paths:
// a beam wide enough to never drop a member, and a discrepancy budget
// covering every deviation, both certify gap 0 on the exact optimum.
func TestAnytimeCompleteRunsAreExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		ref, err := p.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		space := p.SpaceSize()
		maxWeight := 0
		for _, comp := range p.Components {
			maxWeight += len(comp.Variants) - 1
		}
		for _, cfg := range []SolverConfig{
			{Strategy: StrategyBeam, BeamWidth: space},
			{Strategy: StrategyLDS, MaxDiscrepancies: maxWeight},
		} {
			res, err := SolveConfig(context.Background(), p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Optimal || res.Gap != 0 {
				t.Fatalf("trial %d: %s complete run not optimal (gap %v)", trial, cfg.Strategy, res.Gap)
			}
			if res.Best.TCO.Total() != ref.Best.TCO.Total() {
				t.Fatalf("trial %d: %s complete run found %v, optimum %v",
					trial, cfg.Strategy, res.Best.TCO.Total(), ref.Best.TCO.Total())
			}
		}
	}
}

// TestAnytimeBudgets exercises both budget kinds on the n=19 bench
// shape: a one-evaluation cap still yields an incumbent with a sound
// certificate, and a zero-headroom wall budget stops the search
// quickly rather than erroring.
func TestAnytimeBudgets(t *testing.T) {
	p := BenchProblem(19, BenchSLAPercent)
	for _, strat := range []string{StrategyBeam, StrategyLDS, StrategyBounded} {
		res, err := SolveConfig(context.Background(), p, SolverConfig{
			Strategy: strat,
			Budget:   Budget{MaxEvaluations: 1},
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.BudgetExhausted {
			t.Fatalf("%s: one-evaluation budget not reported exhausted", strat)
		}
		if res.Evaluated != 1 {
			t.Fatalf("%s: evaluated %d under a one-evaluation budget", strat, res.Evaluated)
		}
		if res.Best.Assignment == nil {
			t.Fatalf("%s: no incumbent under a one-evaluation budget", strat)
		}

		start := time.Now()
		res, err = SolveConfig(context.Background(), p, SolverConfig{
			Strategy: strat,
			Budget:   Budget{Wall: time.Nanosecond},
		})
		if err != nil {
			t.Fatalf("%s wall: %v", strat, err)
		}
		if !res.BudgetExhausted {
			t.Fatalf("%s: nanosecond wall budget not reported exhausted", strat)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: wall-budgeted run took %v", strat, elapsed)
		}
	}
}

// TestAnytimeCancellation: a cancelled context aborts all three
// searches with the context's error.
func TestAnytimeCancellation(t *testing.T) {
	p := BenchProblem(19, BenchSLAPercent)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range []string{StrategyBeam, StrategyLDS, StrategyBounded} {
		if _, err := SolveConfig(ctx, p, SolverConfig{Strategy: strat}); err == nil {
			t.Fatalf("%s: cancelled context did not abort", strat)
		}
	}
}

// TestAnytimeProgressAndStrategyHooks: the approximate strategies
// report through the same context hooks as the exact lane.
func TestAnytimeProgressAndStrategyHooks(t *testing.T) {
	p := BenchProblem(12, BenchSLAPercent)
	for _, strat := range []string{StrategyBeam, StrategyLDS, StrategyBounded} {
		var reports int
		var heard string
		ctx := WithProgress(context.Background(), func(evaluated, space int64) {
			reports++
			if space != int64(p.SpaceSize()) {
				t.Fatalf("%s: progress space %d, want %d", strat, space, p.SpaceSize())
			}
		})
		ctx = WithStrategyReport(ctx, func(s string) { heard = s })
		if _, err := SolveConfig(ctx, p, SolverConfig{Strategy: strat}); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if reports == 0 {
			t.Fatalf("%s: no progress reports", strat)
		}
		if heard != strat {
			t.Fatalf("%s: strategy hook heard %q", strat, heard)
		}
	}
}

// TestSolverConfigValidation covers the redesigned config surface:
// range checks, knob/strategy contradictions, and the exact lane's
// refusal of an evaluation cap.
func TestSolverConfigValidation(t *testing.T) {
	bad := []struct {
		cfg  SolverConfig
		want string
	}{
		{SolverConfig{Strategy: "no-such"}, "unknown strategy"},
		{SolverConfig{Budget: Budget{Wall: -time.Second}}, "negative wall"},
		{SolverConfig{Budget: Budget{MaxEvaluations: -1}}, "negative evaluation"},
		{SolverConfig{Strategy: StrategyBeam, BeamWidth: -1}, "negative beam width"},
		{SolverConfig{Strategy: StrategyLDS, MaxDiscrepancies: -2}, "negative discrepancy"},
		{SolverConfig{Strategy: StrategyBounded, Epsilon: -0.1}, "epsilon"},
		{SolverConfig{Strategy: StrategyBounded, Epsilon: 1.5}, "epsilon"},
		{SolverConfig{Strategy: StrategyLDS, BeamWidth: 8}, "beam width set"},
		{SolverConfig{Strategy: StrategyPruned, Epsilon: 0.1}, "epsilon set"},
		{SolverConfig{Strategy: StrategyBeam, MaxDiscrepancies: 2}, "discrepancy budget set"},
	}
	for _, tc := range bad {
		if err := tc.cfg.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Validate(%+v) = %v, want %q", tc.cfg, err, tc.want)
		}
	}
	good := []SolverConfig{
		{},
		{Strategy: StrategyAuto, BeamWidth: 8},
		{BeamWidth: 8},
		{Strategy: StrategyBeam, BeamWidth: 8, Budget: Budget{Wall: time.Second, MaxEvaluations: 10}},
		{Strategy: StrategyBounded, Epsilon: 0.05},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}

	p := sampleProblem()
	if _, err := SolveConfig(context.Background(), p, SolverConfig{
		Strategy: StrategyPruned,
		Budget:   Budget{MaxEvaluations: 10},
	}); err == nil || !strings.Contains(err.Error(), "cannot honor max_evaluations") {
		t.Fatalf("exact strategy with evaluation cap = %v, want refusal", err)
	}
}

// TestResolveConfigRouting pins the budget- and width-aware auto
// heuristic: spaces past MaxCandidates route to the approximate lane
// (beam when the SLA is attainable, bounded when it is not), a binding
// evaluation cap does the same, explicit knobs express intent, and
// small unconstrained spaces keep the exact-lane rules.
func TestResolveConfigRouting(t *testing.T) {
	wide := BenchProblem(BenchWideN, BenchSLAWidePercent)
	if wide.SpaceSize() <= MaxCandidates {
		t.Fatalf("bench wide shape fits the exact lane (space %d)", wide.SpaceSize())
	}
	wideUnattainable := BenchProblem(BenchWideN, 99.99)
	small := BenchProblem(10, BenchSLAPercent)

	cases := []struct {
		p    *Problem
		cfg  SolverConfig
		want string
	}{
		{wide, SolverConfig{}, StrategyBeam},
		{wideUnattainable, SolverConfig{}, StrategyBounded},
		{small, SolverConfig{Budget: Budget{MaxEvaluations: 16}}, StrategyBeam},
		{small, SolverConfig{BeamWidth: 4}, StrategyBeam},
		{small, SolverConfig{MaxDiscrepancies: 2}, StrategyLDS},
		{small, SolverConfig{Epsilon: 0.1}, StrategyBounded},
		{small, SolverConfig{}, StrategyPruned},
		{small, SolverConfig{Strategy: StrategyExhaustive}, StrategyExhaustive},
		{small, SolverConfig{Budget: Budget{MaxEvaluations: 1 << 20}}, StrategyPruned},
	}
	for _, tc := range cases {
		got, err := ResolveConfig(tc.p, tc.cfg)
		if err != nil {
			t.Fatalf("ResolveConfig(%+v): %v", tc.cfg, err)
		}
		if got != tc.want {
			t.Fatalf("ResolveConfig(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}

	// The old ResolveStrategy surface refused spaces past the cap; it
	// now routes them to the approximate lane.
	if got, err := ResolveStrategy(wide, ""); err != nil || got != StrategyBeam {
		t.Fatalf("ResolveStrategy(wide, auto) = %q, %v", got, err)
	}
}

// TestAnytimeN30WithinBudget is the acceptance gate: all three
// approximate strategies solve the SLA-dense n=30 shape within a
// 500ms budget with a certified gap at or below 5%.
func TestAnytimeN30WithinBudget(t *testing.T) {
	p := BenchProblem(BenchWideN, BenchSLAWidePercent)
	for _, strat := range []string{StrategyBeam, StrategyLDS, StrategyBounded} {
		res, err := SolveConfig(context.Background(), p, SolverConfig{
			Strategy: strat,
			Budget:   Budget{Wall: 500 * time.Millisecond},
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.Gap > 0.05 {
			t.Fatalf("%s: certified gap %.4f > 0.05 (bound %v, incumbent %v, exhausted %v)",
				strat, res.Gap, res.Bound, res.Best.TCO.Total(), res.BudgetExhausted)
		}
	}
}

// TestRootLowerBoundSoundness pins the Pareto-relaxation bound alone
// against the oracle, independent of any search.
func TestRootLowerBoundSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		p := randomWideProblem(rng)
		ref, err := p.ExhaustiveScratch(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if bound := p.rootLowerBound(p.tailFrontiers()); bound > ref.Best.TCO.Total() {
			t.Fatalf("trial %d: root bound %v exceeds optimum %v", trial, bound, ref.Best.TCO.Total())
		}
	}
}

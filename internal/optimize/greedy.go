package optimize

// Greedy is the heuristic a practitioner without the paper's framework
// plausibly applies: start from no HA anywhere, and repeatedly apply
// the single upgrade (one component, one variant step) that reduces
// TCO the most, stopping when no single upgrade helps. It runs in
// O(n·k) evaluations per round instead of k^n total — and it is NOT
// exact: penalty economics are non-separable across components (the
// slippage gap is shared), so greedy can stall in local optima. The
// GREEDY experiment quantifies that optimality gap; its existence is
// the justification for the paper's exhaustive/pruned global search.
func (p *Problem) Greedy() (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}

	current := make(Assignment, len(p.Components))
	best, err := p.Evaluate(current)
	if err != nil {
		return Result{}, err
	}
	res := Result{Best: best, Evaluated: 1}
	if best.MeetsSLA(p.SLA) {
		res.BestNoPenalty = best
		res.NoPenaltyFound = true
	}

	for {
		improved := false
		var (
			bestCand Candidate
			bestComp int
			bestVar  int
		)
		for i := range p.Components {
			for v := range p.Components[i].Variants {
				if v == current[i] {
					continue
				}
				trial := current.Clone()
				trial[i] = v
				cand, err := p.Evaluate(trial)
				if err != nil {
					return Result{}, err
				}
				res.Evaluated++
				if cand.MeetsSLA(p.SLA) {
					if !res.NoPenaltyFound || betterNoPenalty(cand, res.BestNoPenalty) {
						res.BestNoPenalty = cand
						res.NoPenaltyFound = true
					}
				}
				if better(cand, res.Best) && (!improved || better(cand, bestCand)) {
					bestCand, bestComp, bestVar = cand, i, v
					improved = true
				}
			}
		}
		if !improved {
			return res, nil
		}
		current[bestComp] = bestVar
		res.Best = bestCand
	}
}

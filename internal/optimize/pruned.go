package optimize

import "context"

// Pruned implements the Section III.C search: candidates are evaluated
// level by level — first the baseline, then every permutation with one
// clustered component, then two, and so on. Whenever a permutation
// meets the uptime SLA, all of its supersets (same variant choices plus
// additional clustered components) are clipped from later levels: the
// no-HA baseline is each component's cheapest variant, so any superset
// costs at least as much while its penalty can only stay zero or grow
// above the subset's zero, hence its TCO cannot beat the subset's.
//
// The search is exact: it returns the same optimum as Exhaustive (a
// property the tests check on randomized instances) while evaluating
// fewer candidates whenever the SLA is attainable below the top level.
func (p *Problem) Pruned() (Result, error) {
	return p.PrunedContext(context.Background())
}

// PrunedContext is Pruned with cooperative cancellation: the level
// walk aborts with ctx.Err() shortly after ctx is done. A
// WithProgress hook on the context receives periodic reports; clipped
// candidates count toward progress (they are resolved work), so the
// bar approaches the full space even when pruning bites.
//
// Superset checks go through a trie index keyed on the clustered-
// component choices, so each leaf pays for the consistent portion of
// the met set instead of a linear scan over all of it.
func (p *Problem) PrunedContext(ctx context.Context) (Result, error) {
	return p.prunedWith(ctx, newMetIndex(p))
}

// prunedLinear is PrunedContext with the original linear met scan; it
// exists so the equivalence tests and benchmarks can pin the indexed
// search against the reference implementation.
func (p *Problem) prunedLinear(ctx context.Context) (Result, error) {
	return p.prunedWith(ctx, &linearIndex{})
}

// prunedWith runs the level walk with the given superset index on the
// compiled incremental evaluator: leaves that survive the superset
// check re-fold only the digits the level walk changed since the
// previous evaluated leaf.
func (p *Problem) prunedWith(ctx context.Context, ix coverIndex) (Result, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	var res Result
	cc := canceler{ctx: ctx}
	pt := newProgressTicker(ctx, p)
	cur := ev.NewCursor()
	n := len(p.Components)
	for level := 0; level <= n; level++ {
		if err := p.enumerateLevel(&cc, &pt, level, &res, ix, cur); err != nil {
			return Result{}, err
		}
	}
	pt.done()
	return res, nil
}

// enumerateLevel visits every assignment with exactly `level` clustered
// components, skipping supersets of already-met assignments.
func (p *Problem) enumerateLevel(cc *canceler, pt *progressTicker, level int, res *Result, ix coverIndex, cur *Cursor) error {
	a := make(Assignment, len(p.Components))
	return p.walkLevel(a, 0, level, func() error {
		return p.prunedLeaf(a, cc, ix.covers, res, pt.advance, ix.insert, cur)
	})
}

// walkLevel enumerates every completion of a from index `start` with
// exactly `remaining` additional clustered components, invoking leaf
// at each complete assignment. It is the single combination walker
// under both the sequential and the parallel pruned searches — any
// change to the walk order changes both identically, which the
// parallel-vs-sequential accounting tests then re-verify.
func (p *Problem) walkLevel(a Assignment, start, remaining int, leaf func() error) error {
	n := len(p.Components)
	var walk func(idx, remaining int) error
	walk = func(idx, remaining int) error {
		if remaining > n-idx {
			return nil // not enough components left to reach the level
		}
		if idx == n {
			return leaf()
		}

		// Choice 1: leave component idx at the baseline.
		a[idx] = 0
		if err := walk(idx+1, remaining); err != nil {
			return err
		}

		// Choice 2: cluster component idx with each non-baseline variant.
		if remaining > 0 {
			for v := 1; v < len(p.Components[idx].Variants); v++ {
				a[idx] = v
				if err := walk(idx+1, remaining-1); err != nil {
					return err
				}
			}
			a[idx] = 0
		}
		return nil
	}
	return walk(start, remaining)
}

// prunedLeaf is the shared leaf protocol of the pruned searches: poll
// cancellation, clip covered supersets, evaluate the rest, and hand
// SLA-meeting assignments to onMet (immediate index insertion for the
// sequential walk, barrier collection for the parallel one). advance
// accounts for one resolved candidate, evaluated or clipped.
func (p *Problem) prunedLeaf(a Assignment, cc *canceler, covers func(Assignment) bool, res *Result, advance func(int64), onMet func(Assignment), cur *Cursor) error {
	if err := cc.check(); err != nil {
		return err
	}
	if covers(a) {
		res.Skipped++
		advance(1)
		return nil
	}
	cur.Sync(a)
	res.observeCursor(cur, p.SLA)
	advance(1)
	if cur.MeetsSLA() {
		onMet(a)
	}
	return nil
}

// BranchAndBound searches depth-first with an admissible cost bound:
// the TCO of any completion of a partial assignment is at least the
// cost already committed plus each remaining component's cheapest
// variant (expected penalty is never negative). Subtrees whose bound
// cannot beat the incumbent are clipped. Like Pruned, it is exact.
func (p *Problem) BranchAndBound() (Result, error) {
	return p.BranchAndBoundContext(context.Background())
}

// BranchAndBoundContext is BranchAndBound with the same cooperative
// cancellation and progress reporting as the other searches: the walk
// aborts with ctx.Err() shortly after ctx is done, and a WithProgress
// hook on the context sees clipped subtrees counted as resolved work.
//
// The clip rule preserves both orderings, so the result matches the
// other solvers on Best *and* BestNoPenalty. A subtree is clipped only
// when its cost bound cannot beat the incumbent optimum and it cannot
// improve the no-penalty answer either — because no completion can
// meet the SLA (the system uptime is at most the product of cluster
// up-probabilities, so an upper bound over the subtree is the
// committed clusters' product times each remaining component's best
// variant), or because the cost bound already exceeds the incumbent
// no-penalty cost (SLA-meeting candidates pay no penalty, so their TCO
// is exactly their HA cost, which the bound floors).
func (p *Problem) BranchAndBoundContext(ctx context.Context) (Result, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	cur := ev.NewCursor()

	n := len(p.Components)
	// minTail[i] is the cheapest possible cost of components i..n-1;
	// maxUpTail[i] the largest possible up-probability product.
	minTail := make([]int64, n+1)
	maxUpTail := make([]float64, n+1)
	maxUpTail[n] = 1
	for i := n - 1; i >= 0; i-- {
		cheapest := p.Components[i].Variants[0].MonthlyCost
		bestUp := 0.0
		for _, v := range p.Components[i].Variants {
			if v.MonthlyCost < cheapest {
				cheapest = v.MonthlyCost
			}
			if up := v.Cluster.UpProbability(); up > bestUp {
				bestUp = up
			}
		}
		minTail[i] = minTail[i+1] + int64(cheapest)
		maxUpTail[i] = maxUpTail[i+1] * bestUp
	}

	target := p.SLA.Target()
	var res Result
	cc := canceler{ctx: ctx}
	pt := newProgressTicker(ctx, p)
	a := make(Assignment, n)
	var committed int64

	var walk func(idx int, upCommitted float64) error
	walk = func(idx int, upCommitted float64) error {
		if res.Evaluated > 0 && committed+minTail[idx] > int64(res.Best.TCO.Total()) {
			subtreeCanMeetSLA := upCommitted*maxUpTail[idx] >= target
			canImproveNoPenalty := subtreeCanMeetSLA &&
				!(res.NoPenaltyFound && committed+minTail[idx] > int64(res.BestNoPenalty.TCO.Total()))
			if !canImproveNoPenalty {
				// Clip-dominated tails (an unattainable SLA after a
				// strong incumbent) may never reach another evaluated
				// leaf, so cancellation must be polled here too.
				if err := cc.check(); err != nil {
					return err
				}
				clipped := p.subtreeSize(idx)
				res.Skipped += clipped
				pt.advance(int64(clipped))
				return nil
			}
		}
		if idx == n {
			if err := cc.check(); err != nil {
				return err
			}
			cur.Sync(a)
			res.observeCursor(cur, p.SLA)
			pt.advance(1)
			return nil
		}
		for v := range p.Components[idx].Variants {
			a[idx] = v
			variant := p.Components[idx].Variants[v]
			delta := int64(variant.MonthlyCost)
			committed += delta
			if err := walk(idx+1, upCommitted*variant.Cluster.UpProbability()); err != nil {
				return err
			}
			committed -= delta
		}
		a[idx] = 0
		return nil
	}
	if err := walk(0, 1); err != nil {
		return Result{}, err
	}
	pt.done()
	return res, nil
}

// subtreeSize returns the number of complete assignments below a
// partial assignment fixed through component idx-1.
func (p *Problem) subtreeSize(idx int) int {
	size := 1
	for _, comp := range p.Components[idx:] {
		size *= len(comp.Variants)
	}
	return size
}

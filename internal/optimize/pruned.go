package optimize

import "context"

// Pruned implements the Section III.C search: candidates are evaluated
// level by level — first the baseline, then every permutation with one
// clustered component, then two, and so on. Whenever a permutation
// meets the uptime SLA, all of its supersets (same variant choices plus
// additional clustered components) are clipped from later levels: the
// no-HA baseline is each component's cheapest variant, so any superset
// costs at least as much while its penalty can only stay zero or grow
// above the subset's zero, hence its TCO cannot beat the subset's.
//
// The search is exact: it returns the same optimum as Exhaustive (a
// property the tests check on randomized instances) while evaluating
// fewer candidates whenever the SLA is attainable below the top level.
func (p *Problem) Pruned() (Result, error) {
	return p.PrunedContext(context.Background())
}

// PrunedContext is Pruned with cooperative cancellation: the level
// walk aborts with ctx.Err() shortly after ctx is done. A
// WithProgress hook on the context receives periodic reports; clipped
// candidates count toward progress (they are resolved work), so the
// bar approaches the full space even when pruning bites.
func (p *Problem) PrunedContext(ctx context.Context) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	var (
		res Result
		// met holds SLA-meeting assignments discovered so far; any
		// assignment covered by one of them is a superset and skipped.
		met []Assignment
	)

	cc := canceler{ctx: ctx}
	pt := newProgressTicker(ctx, p)
	n := len(p.Components)
	for level := 0; level <= n; level++ {
		if err := p.enumerateLevel(&cc, &pt, level, &res, &met); err != nil {
			return Result{}, err
		}
	}
	pt.done()
	return res, nil
}

// enumerateLevel visits every assignment with exactly `level` clustered
// components, skipping supersets of already-met assignments.
func (p *Problem) enumerateLevel(cc *canceler, pt *progressTicker, level int, res *Result, met *[]Assignment) error {
	a := make(Assignment, len(p.Components))
	var walk func(idx, remaining int) error
	walk = func(idx, remaining int) error {
		if remaining > len(p.Components)-idx {
			return nil // not enough components left to reach the level
		}
		if idx == len(p.Components) {
			if err := cc.check(); err != nil {
				return err
			}
			for _, m := range *met {
				if coveredBy(m, a) {
					res.Skipped++
					pt.advance(1)
					return nil
				}
			}
			c, err := p.Evaluate(a)
			if err != nil {
				return err
			}
			res.observe(c, p.SLA)
			pt.advance(1)
			if c.MeetsSLA(p.SLA) {
				*met = append(*met, a.Clone())
			}
			return nil
		}

		// Choice 1: leave component idx at the baseline.
		a[idx] = 0
		if err := walk(idx+1, remaining); err != nil {
			return err
		}

		// Choice 2: cluster component idx with each non-baseline variant.
		if remaining > 0 {
			for v := 1; v < len(p.Components[idx].Variants); v++ {
				a[idx] = v
				if err := walk(idx+1, remaining-1); err != nil {
					return err
				}
			}
			a[idx] = 0
		}
		return nil
	}
	return walk(0, level)
}

// BranchAndBound searches depth-first with an admissible cost bound:
// the TCO of any completion of a partial assignment is at least the
// cost already committed plus each remaining component's cheapest
// variant (expected penalty is never negative). Subtrees whose bound
// cannot beat the incumbent are clipped. Like Pruned, it is exact.
func (p *Problem) BranchAndBound() (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}

	n := len(p.Components)
	// minTail[i] is the cheapest possible cost of components i..n-1.
	minTail := make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		cheapest := p.Components[i].Variants[0].MonthlyCost
		for _, v := range p.Components[i].Variants[1:] {
			if v.MonthlyCost < cheapest {
				cheapest = v.MonthlyCost
			}
		}
		minTail[i] = minTail[i+1] + int64(cheapest)
	}

	var res Result
	a := make(Assignment, n)
	var committed int64
	haveIncumbent := false

	var walk func(idx int) error
	walk = func(idx int) error {
		if haveIncumbent && committed+minTail[idx] > int64(res.Best.TCO.Total()) {
			res.Skipped += p.subtreeSize(idx)
			return nil
		}
		if idx == n {
			c, err := p.Evaluate(a)
			if err != nil {
				return err
			}
			res.observe(c, p.SLA)
			haveIncumbent = true
			return nil
		}
		for v := range p.Components[idx].Variants {
			a[idx] = v
			delta := int64(p.Components[idx].Variants[v].MonthlyCost)
			committed += delta
			if err := walk(idx + 1); err != nil {
				return err
			}
			committed -= delta
		}
		a[idx] = 0
		return nil
	}
	if err := walk(0); err != nil {
		return Result{}, err
	}
	return res, nil
}

// subtreeSize returns the number of complete assignments below a
// partial assignment fixed through component idx-1.
func (p *Problem) subtreeSize(idx int) int {
	size := 1
	for _, comp := range p.Components[idx:] {
		size *= len(comp.Variants)
	}
	return size
}

package optimize

import (
	"context"
	"math"
)

// Pruned implements the Section III.C search: candidates are evaluated
// level by level — first the baseline, then every permutation with one
// clustered component, then two, and so on. Whenever a permutation
// meets the uptime SLA, all of its supersets (same variant choices plus
// additional clustered components) are clipped from later levels: the
// no-HA baseline is each component's cheapest variant, so any superset
// costs at least as much while its penalty can only stay zero or grow
// above the subset's zero, hence its TCO cannot beat the subset's.
//
// The search is exact: it returns the same optimum as Exhaustive (a
// property the tests check on randomized instances) while evaluating
// fewer candidates whenever the SLA is attainable below the top level.
func (p *Problem) Pruned() (Result, error) {
	return p.PrunedContext(context.Background())
}

// PrunedContext is Pruned with cooperative cancellation: the level
// walk aborts with ctx.Err() shortly after ctx is done. A
// WithProgress hook on the context receives periodic reports; clipped
// candidates count toward progress (they are resolved work), so the
// bar approaches the full space even when pruning bites.
//
// Superset checks go through the flat arena met-trie with a
// checkpointed walker (flatindex.go): each lookup pays for the
// consistent portion of the met set below the first digit the level
// walk changed since the previous leaf, instead of a root-down
// pointer chase per leaf.
func (p *Problem) PrunedContext(ctx context.Context) (Result, error) {
	return p.prunedWith(ctx, newFlatMetIndex(p))
}

// PrunedPointerTrie is PrunedContext on the previous pointer-linked
// trie index. It is kept as an equivalence oracle and as the
// benchmark reference the trie_flat_speedup ratios measure the flat
// arena against; production paths use PrunedContext.
func (p *Problem) PrunedPointerTrie(ctx context.Context) (Result, error) {
	return p.prunedWith(ctx, newMetIndex(p))
}

// PrunedFlatRescan is PrunedContext on the flat arena with the
// checkpointed resume disabled: every lookup re-descends from the
// root. It isolates the arena-layout win from the changed-suffix
// amortization in the benchmark split (solver/pruned-flat vs
// solver/pruned); production paths use PrunedContext.
func (p *Problem) PrunedFlatRescan(ctx context.Context) (Result, error) {
	return p.prunedWith(ctx, flatRescanIndex{newFlatMetIndex(p)})
}

// prunedLinear is PrunedContext with the original linear met scan; it
// exists so the equivalence tests and benchmarks can pin the indexed
// searches against the reference implementation.
func (p *Problem) prunedLinear(ctx context.Context) (Result, error) {
	return p.prunedWith(ctx, &linearIndex{})
}

// prunedWith runs the level walk with the given superset index on the
// compiled incremental evaluator: leaves that survive the superset
// check re-fold only the digits the level walk changed since the
// previous evaluated leaf.
func (p *Problem) prunedWith(ctx context.Context, ix coverIndex) (Result, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	var res Result
	cc := canceler{ctx: ctx}
	pt := newProgressTicker(ctx, p)
	cur := ev.NewCursor()
	n := len(p.Components)
	for level := 0; level <= n; level++ {
		if err := p.enumerateLevel(&cc, &pt, level, &res, ix, cur); err != nil {
			return Result{}, err
		}
	}
	pt.done()
	return res, nil
}

// enumerateLevel visits every assignment with exactly `level` clustered
// components, skipping supersets of already-met assignments.
func (p *Problem) enumerateLevel(cc *canceler, pt *progressTicker, level int, res *Result, ix coverIndex, cur *Cursor) error {
	a := make(Assignment, len(p.Components))
	return p.walkLevel(a, 0, level, func(changedFrom int) error {
		return p.prunedLeaf(a, changedFrom, cc, ix.coversFrom, res, pt.advance, ix.insert, cur)
	})
}

// walkLevel enumerates every completion of a from index `start` with
// exactly `remaining` additional clustered components, invoking leaf
// at each complete assignment. It is the single combination walker
// under both the sequential and the parallel pruned searches — any
// change to the walk order changes both identically, which the
// parallel-vs-sequential accounting tests then re-verify.
//
// leaf receives the lowest digit the walk changed since the previous
// leaf (0 on the first leaf, so resumable cover walkers start every
// level/task from the root) — the same changed-suffix information
// Cursor.Sync derives by diffing, handed to the superset index so its
// checkpointed walker can resume mid-trie.
func (p *Problem) walkLevel(a Assignment, start, remaining int, leaf func(changedFrom int) error) error {
	n := len(p.Components)
	lo := 0
	set := func(idx, v int) {
		if a[idx] != v {
			a[idx] = v
			if idx < lo {
				lo = idx
			}
		}
	}
	var walk func(idx, remaining int) error
	walk = func(idx, remaining int) error {
		if remaining > n-idx {
			return nil // not enough components left to reach the level
		}
		if idx == n {
			changedFrom := lo
			lo = n
			return leaf(changedFrom)
		}

		// Choice 1: leave component idx at the baseline.
		set(idx, 0)
		if err := walk(idx+1, remaining); err != nil {
			return err
		}

		// Choice 2: cluster component idx with each non-baseline variant.
		if remaining > 0 {
			for v := 1; v < len(p.Components[idx].Variants); v++ {
				set(idx, v)
				if err := walk(idx+1, remaining-1); err != nil {
					return err
				}
			}
			set(idx, 0)
		}
		return nil
	}
	return walk(start, remaining)
}

// prunedLeaf is the shared leaf protocol of the pruned searches: poll
// cancellation, clip covered supersets, evaluate the rest, and hand
// SLA-meeting assignments to onMet (immediate index insertion for the
// sequential walk, barrier collection for the parallel one). advance
// accounts for one resolved candidate, evaluated or clipped. Exactly
// one cover lookup happens per leaf, and every covering lookup clips
// exactly one candidate — the per-index accounting the three-way
// equivalence tests pin byte-identical.
func (p *Problem) prunedLeaf(a Assignment, changedFrom int, cc *canceler, covers func(Assignment, int) bool, res *Result, advance func(int64), onMet func(Assignment), cur *Cursor) error {
	if err := cc.check(); err != nil {
		return err
	}
	res.CoverLookups++
	if covers(a, changedFrom) {
		res.Skipped++
		res.Clipped++
		advance(1)
		return nil
	}
	cur.Sync(a)
	res.observeCursor(cur, p.SLA)
	advance(1)
	if cur.MeetsSLA() {
		onMet(a)
	}
	return nil
}

// BranchAndBound searches depth-first with an admissible cost bound:
// the TCO of any completion of a partial assignment is at least the
// cost already committed plus each remaining component's cheapest
// variant (expected penalty is never negative). Subtrees whose bound
// cannot beat the incumbent are clipped. Like Pruned, it is exact.
func (p *Problem) BranchAndBound() (Result, error) {
	return p.BranchAndBoundContext(context.Background())
}

// BranchAndBoundContext is BranchAndBound with the same cooperative
// cancellation and progress reporting as the other searches: the walk
// aborts with ctx.Err() shortly after ctx is done, and a WithProgress
// hook on the context sees clipped subtrees counted as resolved work.
//
// The clip rule preserves both orderings, so the result matches the
// other solvers on Best *and* BestNoPenalty. A subtree is clipped only
// when its cost bound cannot beat the incumbent optimum and it cannot
// improve the no-penalty answer either — because no completion can
// meet the SLA (the system uptime is at most the product of cluster
// up-probabilities, so an upper bound over the subtree is the
// committed clusters' product times each remaining component's best
// variant), or because the cost bound already exceeds the incumbent
// no-penalty cost (SLA-meeting candidates pay no penalty, so their TCO
// is exactly their HA cost, which the bound floors).
//
// Leaves that survive the cost bound additionally pass through the
// flat superset index: SLA-meeting leaves are recorded, and a later
// leaf covered by one is clipped without evaluation — sound by the
// same argument as the level search (a covered superset costs at
// least its subset while its penalty stays zero). The lookup is
// gated twice, which makes it nearly free. First, on a cost tie: a
// covering subset m satisfies TCO(m) = cost(m) ≤ committed, and m was
// evaluated, so Best.TCO ≤ committed and (m meets the SLA)
// BestNoPenalty.TCO ≤ committed — while surviving the cost bound
// requires committed ≤ Best.TCO, or committed ≤ BestNoPenalty.TCO on
// the can-improve-no-penalty branch. A reached leaf can therefore
// only be covered when its committed cost exactly ties an incumbent
// total. Second, on level: a cover clusters a strict subset of the
// leaf's components — an equal-level cover could only be the leaf
// itself, and depth-first search visits each assignment once — so the
// leaf's level must exceed the lowest recorded one. SLA-met leaves
// queue in a flat pending arena and fold into the trie only when a
// lookup actually fires: on instances where the admissible bound
// subsumes every cover clip (no exact ties), the index is never built
// at all.
func (p *Problem) BranchAndBoundContext(ctx context.Context) (Result, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	cur := ev.NewCursor()

	n := len(p.Components)
	// minTail[i] is the cheapest possible cost of components i..n-1;
	// maxUpTail[i] the largest possible up-probability product.
	minTail := make([]int64, n+1)
	maxUpTail := make([]float64, n+1)
	maxUpTail[n] = 1
	for i := n - 1; i >= 0; i-- {
		cheapest := p.Components[i].Variants[0].MonthlyCost
		bestUp := 0.0
		for _, v := range p.Components[i].Variants {
			if v.MonthlyCost < cheapest {
				cheapest = v.MonthlyCost
			}
			if up := v.Cluster.UpProbability(); up > bestUp {
				bestUp = up
			}
		}
		minTail[i] = minTail[i+1] + int64(cheapest)
		maxUpTail[i] = maxUpTail[i+1] * bestUp
	}

	target := p.SLA.Target()
	var res Result
	cc := canceler{ctx: ctx}
	pt := newProgressTicker(ctx, p)
	ix := newFlatMetIndex(p)
	var pending pendingMets // met leaves queued until a lookup needs them
	pendingMin := math.MaxInt
	scratch := make(Assignment, n)
	a := make(Assignment, n)
	var committed int64
	lo := 0
	lvl := 0 // clustered components in a[:idx]

	var walk func(idx int, upCommitted float64) error
	walk = func(idx int, upCommitted float64) error {
		if res.Evaluated > 0 && committed+minTail[idx] > int64(res.Best.TCO.Total()) {
			subtreeCanMeetSLA := upCommitted*maxUpTail[idx] >= target
			canImproveNoPenalty := subtreeCanMeetSLA &&
				!(res.NoPenaltyFound && committed+minTail[idx] > int64(res.BestNoPenalty.TCO.Total()))
			if !canImproveNoPenalty {
				// Clip-dominated tails (an unattainable SLA after a
				// strong incumbent) may never reach another evaluated
				// leaf, so cancellation must be polled here too.
				if err := cc.check(); err != nil {
					return err
				}
				clipped := p.subtreeSize(idx)
				res.Skipped += clipped
				pt.advance(int64(clipped))
				return nil
			}
		}
		if idx == n {
			if err := cc.check(); err != nil {
				return err
			}
			coverPossible := res.Evaluated > 0 &&
				(lvl > ix.minLevel || lvl > pendingMin) &&
				(committed == int64(res.Best.TCO.Total()) ||
					(res.NoPenaltyFound && committed == int64(res.BestNoPenalty.TCO.Total())))
			if coverPossible {
				pending.flush(ix, scratch)
				pendingMin = math.MaxInt
				// lo accumulates the lowest digit changed since the last
				// *performed* lookup — gated-out leaves must keep
				// widening the hint, so it only resets here.
				changedFrom := lo
				lo = n
				res.CoverLookups++
				if ix.coversFrom(a, changedFrom) {
					res.Skipped++
					res.Clipped++
					pt.advance(1)
					return nil
				}
			}
			cur.Sync(a)
			res.observeCursor(cur, p.SLA)
			pt.advance(1)
			if cur.MeetsSLA() {
				pending.add(a)
				if lvl < pendingMin {
					pendingMin = lvl
				}
			}
			return nil
		}
		for v := range p.Components[idx].Variants {
			if a[idx] != v {
				a[idx] = v
				if idx < lo {
					lo = idx
				}
			}
			variant := p.Components[idx].Variants[v]
			delta := int64(variant.MonthlyCost)
			committed += delta
			if v != 0 {
				lvl++
			}
			if err := walk(idx+1, upCommitted*variant.Cluster.UpProbability()); err != nil {
				return err
			}
			if v != 0 {
				lvl--
			}
			committed -= delta
		}
		if a[idx] != 0 {
			a[idx] = 0
			if idx < lo {
				lo = idx
			}
		}
		return nil
	}
	if err := walk(0, 1); err != nil {
		return Result{}, err
	}
	pt.done()
	return res, nil
}

// pendingMets queues SLA-met leaves as packed (component, variant)
// pairs — one word per clustered component — until a gated lookup
// folds them into the trie. Met leaves are dense in components but
// sparse in clusters, so packing keeps the queue's append traffic
// well below re-copying whole assignments; on instances where the
// admissible bound subsumes every cover clip (no exact cost ties) the
// queue is the only cover-clipping cost branch-and-bound pays.
type pendingMets struct {
	packed []int64 // (component << 32) | variant, grouped per met leaf
	ends   []int32 // end offset into packed, one per met leaf
}

func (q *pendingMets) add(a Assignment) {
	for i, v := range a {
		if v != 0 {
			q.packed = append(q.packed, int64(i)<<32|int64(v))
		}
	}
	q.ends = append(q.ends, int32(len(q.packed)))
}

// flush inserts every queued met into ix, unpacking through scratch
// (len of the problem's component count), and empties the queue.
func (q *pendingMets) flush(ix *flatMetIndex, scratch Assignment) {
	start := int32(0)
	for _, end := range q.ends {
		clear(scratch)
		for _, pv := range q.packed[start:end] {
			scratch[pv>>32] = int(pv & 0xffffffff)
		}
		ix.insert(scratch)
		start = end
	}
	q.packed = q.packed[:0]
	q.ends = q.ends[:0]
}

// subtreeSize returns the number of complete assignments below a
// partial assignment fixed through component idx-1.
func (p *Problem) subtreeSize(idx int) int {
	size := 1
	for _, comp := range p.Components[idx:] {
		size *= len(comp.Variants)
	}
	return size
}

package optimize

import (
	"context"
	"errors"
	"sort"

	"uptimebroker/internal/cost"
)

// The anytime lane: three approximate strategies that accept spaces
// the exact lane refuses and budgets the exact lane cannot honor, and
// that certify what they return — every result carries an admissible
// lower bound on the optimal TCO (bound.go's Pareto-frontier
// relaxation, tightened further when a search can prove completeness)
// and the relative gap it implies for the incumbent. The exact solvers
// double as oracles: the randomized soundness tests check the reported
// bound never exceeds the true optimum at small n.

// errSearchBudget unwinds an approximate search when its budget runs
// out; the catch site certifies what was found so far.
var errSearchBudget = errors.New("optimize: search budget exhausted")

// beamMember is one alive node of the beam: a complete assignment
// (clustered choices up to maxIdx, baseline beyond) with its
// evaluation.
type beamMember struct {
	a      Assignment
	total  cost.Money
	uptime float64
	meets  bool
	maxIdx int // highest clustered component; successors extend past it
}

// beamLess orders beam members for the width cut: lower TCO first,
// ties broken by higher uptime, then by smaller maxIdx — successors
// only extend past maxIdx, so among equally-good members the ones with
// the most extension room survive the cut (on symmetric instances
// every same-level member ties on cost, and keeping tail-clustered
// ones would strand the beam with nothing to expand) — then
// lexicographic assignment for determinism.
func beamLess(x, y *beamMember) bool {
	if x.total != y.total {
		return x.total < y.total
	}
	if x.uptime != y.uptime {
		return x.uptime > y.uptime
	}
	if x.maxIdx != y.maxIdx {
		return x.maxIdx < y.maxIdx
	}
	for i := range x.a {
		if x.a[i] != y.a[i] {
			return x.a[i] < y.a[i]
		}
	}
	return false
}

// beamSearch is the fixed-width level-order beam over the incremental
// cursor: level ℓ holds assignments with exactly ℓ clustered
// components, each level keeps the width best members by TCO, and —
// Section III.C's argument — members that already meet the SLA are not
// extended, because every superset costs at least as much while its
// penalty stays zero. If no level ever dropped a member to the width
// cap, the enumeration was complete and the incumbent is certified
// optimal; otherwise the certificate falls back to the root relaxation
// bound.
func (p *Problem) beamSearch(ctx context.Context, cfg SolverConfig) (Result, error) {
	ev, err := newEvaluatorShape(p)
	if err != nil {
		return Result{}, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	width := cfg.BeamWidth
	if width <= 0 {
		width = DefaultBeamWidth
	}
	root := p.rootLowerBound(p.tailFrontiers())

	var res Result
	cc := canceler{ctx: ctx}
	bt := newBudgetTracker(cfg.Budget)
	pt := newProgressTicker(ctx, p)
	cur := ev.NewCursor()
	n := len(p.Components)

	evalMember := func(a Assignment, maxIdx int) beamMember {
		cur.Sync(a)
		res.observeCursor(cur, p.SLA)
		pt.advance(1)
		bt.spend()
		return beamMember{a: a, total: cur.TCO().Total(), uptime: cur.Uptime(), meets: cur.MeetsSLA(), maxIdx: maxIdx}
	}

	// Level 0 is the all-baseline assignment, evaluated before any
	// budget check so even a zero-headroom budget yields an incumbent.
	beam := []beamMember{evalMember(make(Assignment, n), -1)}

	complete := true // no member was ever dropped to the width cap
	exhausted := false
levels:
	for level := 1; level <= n; level++ {
		var next []beamMember
		for m := range beam {
			member := &beam[m]
			if member.meets {
				continue
			}
			for i := member.maxIdx + 1; i < n; i++ {
				for v := 1; v < len(p.Components[i].Variants); v++ {
					if err := cc.check(); err != nil {
						return Result{}, err
					}
					if bt.exceeded() {
						exhausted = true
						break levels
					}
					a := member.a.Clone()
					a[i] = v
					next = append(next, evalMember(a, i))
				}
			}
		}
		if len(next) == 0 {
			break
		}
		sort.Slice(next, func(i, j int) bool { return beamLess(&next[i], &next[j]) })
		if len(next) > width {
			next = next[:width]
			complete = false
		}
		beam = next
	}
	pt.done()
	bound := root
	if complete && !exhausted {
		bound = res.Best.TCO.Total()
	}
	res.certify(bound, exhausted)
	return res, nil
}

// ldsSearch is limited-discrepancy search over the greedy ordering:
// a hill climb on the incremental cursor finds the greedy assignment,
// one-swap probes rank each component's variants by how the deviation
// prices out, and a depth-first pass then revisits the space allowing
// a bounded total discrepancy from the greedy preference — taking a
// component's j-th ranked variant consumes j discrepancy units, so the
// search widens around the greedy solution in order of how much it
// disagrees with it. A discrepancy budget at or above the maximum
// possible weight makes the pass a complete enumeration, which the
// certificate then reflects; otherwise the bound is the root
// relaxation.
func (p *Problem) ldsSearch(ctx context.Context, cfg SolverConfig) (Result, error) {
	ev, err := newEvaluatorShape(p)
	if err != nil {
		return Result{}, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	maxDisc := cfg.MaxDiscrepancies
	if maxDisc <= 0 {
		maxDisc = DefaultMaxDiscrepancies
	}
	root := p.rootLowerBound(p.tailFrontiers())

	var res Result
	cc := canceler{ctx: ctx}
	bt := newBudgetTracker(cfg.Budget)
	pt := newProgressTicker(ctx, p)
	cur := ev.NewCursor()
	n := len(p.Components)

	eval := func(a Assignment) cost.Money {
		cur.Sync(a)
		res.observeCursor(cur, p.SLA)
		pt.advance(1)
		bt.spend()
		return cur.TCO().Total()
	}

	finish := func(exhausted bool, complete bool) (Result, error) {
		pt.done()
		bound := root
		if complete && !exhausted {
			bound = res.Best.TCO.Total()
		}
		res.certify(bound, exhausted)
		return res, nil
	}

	// Phase 1: the greedy hill climb (Greedy re-done on the cursor —
	// the method itself validates against the exact-space cap). The
	// all-baseline start is evaluated before any budget check.
	g := make(Assignment, n)
	gTotal := eval(g)
	for {
		if err := cc.check(); err != nil {
			return Result{}, err
		}
		improved := false
		bi, bv := -1, -1
		for i := 0; i < n; i++ {
			old := g[i]
			for v := range p.Components[i].Variants {
				if v == old {
					continue
				}
				if bt.exceeded() {
					return finish(true, false)
				}
				g[i] = v
				if total := eval(g); total < gTotal {
					gTotal, bi, bv, improved = total, i, v, true
				}
			}
			g[i] = old
		}
		if !improved {
			break
		}
		g[bi] = bv
	}

	// Phase 2: rank each component's variants by the one-swap probe
	// from the greedy assignment; the greedy choice itself is always
	// preference 0.
	type ranked struct {
		v     int
		total cost.Money
	}
	pref := make([][]int, n)
	maxWeight := 0
	for i := 0; i < n; i++ {
		k := len(p.Components[i].Variants)
		alts := make([]ranked, 0, k-1)
		old := g[i]
		for v := 0; v < k; v++ {
			if v == old {
				continue
			}
			if bt.exceeded() {
				return finish(true, false)
			}
			g[i] = v
			alts = append(alts, ranked{v: v, total: eval(g)})
		}
		g[i] = old
		sort.Slice(alts, func(a, b int) bool {
			if alts[a].total != alts[b].total {
				return alts[a].total < alts[b].total
			}
			return alts[a].v < alts[b].v
		})
		order := make([]int, 0, k)
		order = append(order, old)
		for _, r := range alts {
			order = append(order, r.v)
		}
		pref[i] = order
		// The deepest deviation at this component is its last-ranked
		// variant, at weight k-1.
		maxWeight += k - 1
	}

	// Phase 3: depth-first over the preference orders with the
	// discrepancy budget.
	a := make(Assignment, n)
	var dfs func(idx, disc int) error
	dfs = func(idx, disc int) error {
		if err := cc.check(); err != nil {
			return err
		}
		if idx == n {
			if bt.exceeded() {
				return errSearchBudget
			}
			eval(a)
			return nil
		}
		for j, v := range pref[idx] {
			if j > disc {
				break
			}
			a[idx] = v
			if err := dfs(idx+1, disc-j); err != nil {
				return err
			}
		}
		a[idx] = pref[idx][0]
		return nil
	}
	exhausted := false
	if err := dfs(0, maxDisc); err != nil {
		if !errors.Is(err, errSearchBudget) {
			return Result{}, err
		}
		exhausted = true
	}
	// A budget covering every possible deviation makes the DFS a full
	// enumeration.
	return finish(exhausted, maxDisc >= maxWeight)
}

// boundedSearch is weighted branch-and-bound: the exact search's
// depth-first walk, but clipping any subtree that cannot beat the
// incumbent by more than a (1+ε) factor, with the admissible
// completion bound computed from the suffix Pareto frontiers (cost
// committed so far, plus each frontier point's cost and the penalty at
// its best-case uptime — far tighter than the exact search's
// cheapest-tail bound, which is zero whenever baselines are free).
// Leaves that survive the bound still pass through the PR 8 flat arena
// met-trie: supersets of recorded SLA-meeting assignments are clipped
// by the exact Section III.C argument, which ε does not weaken. The
// exact search's cost-tie lookup gate does not survive ε-clipping, so
// the lookup is gated on level alone.
//
// A completed run certifies bound = max(root relaxation, incumbent /
// (1+ε)): every clipped completion was worse than incumbent/(1+ε) at
// clip time, and incumbents only improve, so the final incumbent is
// within a (1+ε) factor of the true optimum. A budget-stopped run
// falls back to the root relaxation bound, which is admissible
// regardless of how much of the walk ran.
func (p *Problem) boundedSearch(ctx context.Context, cfg SolverConfig) (Result, error) {
	ev, err := newEvaluatorShape(p)
	if err != nil {
		return Result{}, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	eps := cfg.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	mult := 1 + eps
	frontiers := p.tailFrontiers()
	root := p.rootLowerBound(frontiers)

	n := len(p.Components)
	target := p.SLA.Target()
	var res Result
	cc := canceler{ctx: ctx}
	bt := newBudgetTracker(cfg.Budget)
	pt := newProgressTicker(ctx, p)
	ix := newFlatMetIndex(p)
	cur := ev.NewCursor()
	a := make(Assignment, n)
	var committed int64
	lo := 0
	lvl := 0 // clustered components in a[:idx]

	var walk func(idx int, upCommitted float64) error
	walk = func(idx int, upCommitted float64) error {
		if res.Evaluated > 0 {
			lb := frontierBound(p.SLA, frontiers[idx], committed, upCommitted)
			if float64(lb)*mult > float64(res.Best.TCO.Total()) {
				lbMeet, canMeet := frontierMeetBound(frontiers[idx], committed, upCommitted, target)
				canImproveNoPenalty := canMeet &&
					!(res.NoPenaltyFound && float64(lbMeet)*mult > float64(res.BestNoPenalty.TCO.Total()))
				if !canImproveNoPenalty {
					// Clip-dominated tails may never reach another
					// evaluated leaf, so cancellation is polled here too.
					if err := cc.check(); err != nil {
						return err
					}
					clipped := p.subtreeSize(idx)
					res.Skipped += clipped
					pt.advance(int64(clipped))
					return nil
				}
			}
		}
		if idx == n {
			if err := cc.check(); err != nil {
				return err
			}
			// The budget gate opens only after the first evaluation, so
			// every run has a root incumbent to certify even when the wall
			// budget was already spent on entry.
			if res.Evaluated > 0 && bt.exceeded() {
				return errSearchBudget
			}
			if res.Evaluated > 0 && lvl > ix.minLevel {
				// lo accumulates the lowest digit changed since the last
				// *performed* lookup — gated-out leaves must keep
				// widening the hint, so it only resets here.
				changedFrom := lo
				lo = n
				res.CoverLookups++
				if ix.coversFrom(a, changedFrom) {
					res.Skipped++
					res.Clipped++
					pt.advance(1)
					return nil
				}
			}
			cur.Sync(a)
			res.observeCursor(cur, p.SLA)
			pt.advance(1)
			bt.spend()
			if cur.MeetsSLA() {
				ix.insert(a)
			}
			return nil
		}
		for v := range p.Components[idx].Variants {
			if a[idx] != v {
				a[idx] = v
				if idx < lo {
					lo = idx
				}
			}
			variant := p.Components[idx].Variants[v]
			delta := int64(variant.MonthlyCost)
			committed += delta
			if v != 0 {
				lvl++
			}
			if err := walk(idx+1, upCommitted*variant.Cluster.UpProbability()); err != nil {
				return err
			}
			if v != 0 {
				lvl--
			}
			committed -= delta
		}
		if a[idx] != 0 {
			a[idx] = 0
			if idx < lo {
				lo = idx
			}
		}
		return nil
	}
	exhausted := false
	if err := walk(0, 1); err != nil {
		if !errors.Is(err, errSearchBudget) {
			return Result{}, err
		}
		exhausted = true
	}
	pt.done()
	bound := root
	if !exhausted {
		// Truncation rounds the certified bound down, never up.
		if b := cost.Money(float64(res.Best.TCO.Total()) / mult); b > bound {
			bound = b
		}
	}
	res.certify(bound, exhausted)
	return res, nil
}

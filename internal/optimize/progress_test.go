package optimize

import (
	"context"
	"testing"
)

// progressProblem builds an instance big enough to cross the report
// cadence: 2^9 = 512 candidates.
func progressProblem(t *testing.T) *Problem {
	t.Helper()
	p := bigProblem(9)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllContextReportsProgress(t *testing.T) {
	p := progressProblem(t)
	var reports []int64
	var lastSpace int64
	ctx := WithProgress(context.Background(), func(evaluated, space int64) {
		reports = append(reports, evaluated)
		lastSpace = space
	})
	if _, err := p.AllContext(ctx); err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("got %d progress reports, want several across 256 candidates", len(reports))
	}
	if lastSpace != int64(p.SpaceSize()) {
		t.Fatalf("space = %d, want %d", lastSpace, p.SpaceSize())
	}
	if final := reports[len(reports)-1]; final != int64(p.SpaceSize()) {
		t.Fatalf("final report = %d, want the full space %d", final, p.SpaceSize())
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] < reports[i-1] {
			t.Fatalf("progress regressed: %v", reports)
		}
	}
}

func TestPrunedContextProgressCoversSpace(t *testing.T) {
	p := progressProblem(t)
	var final, space int64
	ctx := WithProgress(context.Background(), func(evaluated, sp int64) {
		final, space = evaluated, sp
	})
	res, err := p.PrunedContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Clipped candidates count as progress, so the final report is
	// evaluated + skipped = the whole space.
	if final != int64(res.Evaluated+res.Skipped) {
		t.Fatalf("final progress %d, want evaluated+skipped = %d", final, res.Evaluated+res.Skipped)
	}
	if final != space || space != int64(p.SpaceSize()) {
		t.Fatalf("final/space = %d/%d, want both %d", final, space, p.SpaceSize())
	}
}

func TestNoHookNoReports(t *testing.T) {
	p := progressProblem(t)
	// No WithProgress: must run exactly as before (smoke for the nil
	// fast path).
	if _, err := p.ExhaustiveContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

package optimize

import (
	"context"
	"math/rand"
	"testing"
)

// TestCursorMatchesEvaluateEnumeration is the engine's core
// guarantee: walking the whole space with the incremental cursor
// produces uptime and TCO values bit-identical (==, not within-
// epsilon) to the from-scratch Problem.Evaluate, across randomized
// n/k/cluster shapes and seeds.
func TestCursorMatchesEvaluateEnumeration(t *testing.T) {
	for _, seed := range []int64{1, 20260730, 424242} {
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 40; trial++ {
			p := randomProblem(rng)
			ev, err := NewEvaluator(p)
			if err != nil {
				t.Fatalf("seed %d trial %d: NewEvaluator: %v", seed, trial, err)
			}
			cur := ev.NewCursor()
			a := make(Assignment, len(p.Components))
			idx := int64(0)
			for {
				want, err := p.Evaluate(a)
				if err != nil {
					t.Fatalf("seed %d trial %d: Evaluate(%v): %v", seed, trial, a, err)
				}
				if got := cur.Uptime(); got != want.Uptime {
					t.Fatalf("seed %d trial %d: cursor uptime %v != Evaluate %v at %v (not bit-identical)",
						seed, trial, got, want.Uptime, a)
				}
				if got := cur.TCO(); got != want.TCO {
					t.Fatalf("seed %d trial %d: cursor TCO %+v != Evaluate %+v at %v",
						seed, trial, got, want.TCO, a)
				}
				if cur.MeetsSLA() != want.MeetsSLA(p.SLA) {
					t.Fatalf("seed %d trial %d: MeetsSLA diverges at %v", seed, trial, a)
				}
				if cur.Index() != idx {
					t.Fatalf("seed %d trial %d: Index() = %d, want %d", seed, trial, cur.Index(), idx)
				}
				if !equalAssignments(cur.Assignment(), a) {
					t.Fatalf("seed %d trial %d: cursor assignment %v, want %v", seed, trial, cur.Assignment(), a)
				}
				idx++
				adv := p.advance(a)
				if cur.Advance() != adv {
					t.Fatalf("seed %d trial %d: Advance() disagrees with the reference at %v", seed, trial, a)
				}
				if !adv {
					break
				}
			}
			if idx != int64(p.SpaceSize()) {
				t.Fatalf("seed %d trial %d: enumerated %d of %d", seed, trial, idx, p.SpaceSize())
			}
		}
	}
}

// TestCursorSyncRandomAccess jumps the cursor to random assignments
// (the access pattern of the pruned level walks and branch-and-bound)
// and pins every landing against the from-scratch oracle.
func TestCursorSyncRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng)
		ev, err := NewEvaluator(p)
		if err != nil {
			t.Fatal(err)
		}
		cur := ev.NewCursor()
		a := make(Assignment, len(p.Components))
		for hop := 0; hop < 60; hop++ {
			for i := range a {
				a[i] = rng.Intn(len(p.Components[i].Variants))
			}
			cur.Sync(a)
			want, err := p.Evaluate(a)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Uptime() != want.Uptime || cur.TCO() != want.TCO {
				t.Fatalf("trial %d hop %d: Sync(%v) landed on uptime %v TCO %+v, want %v %+v",
					trial, hop, a, cur.Uptime(), cur.TCO(), want.Uptime, want.TCO)
			}
		}
		// Seek must agree with Sync and reject bad input.
		if err := cur.Seek(a); err != nil {
			t.Fatalf("Seek(%v): %v", a, err)
		}
		if err := cur.Seek(append(a.Clone(), 0)); err == nil {
			t.Fatal("Seek with wrong length should fail")
		}
		bad := a.Clone()
		bad[0] = len(p.Components[0].Variants)
		if err := cur.Seek(bad); err == nil {
			t.Fatal("Seek with out-of-range index should fail")
		}
	}
}

// TestCursorAdvanceWrapStaysConsistent pins the wrap behavior a
// shard-reusing worker depends on: after AdvanceFrom exhausts a
// suffix, the cursor must be fully re-usable via Sync without stale
// checkpoints leaking into the next evaluation.
func TestCursorAdvanceWrapStaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	cur := ev.NewCursor()
	for cur.Advance() {
	}
	// The cursor wrapped to all-baseline; a Sync that differs only in
	// the last digit must still be exact.
	a := make(Assignment, len(p.Components))
	a[len(a)-1] = len(p.Components[len(a)-1].Variants) - 1
	cur.Sync(a)
	want, err := p.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Uptime() != want.Uptime || cur.TCO() != want.TCO {
		t.Fatalf("post-wrap Sync diverged: %v/%+v want %v/%+v", cur.Uptime(), cur.TCO(), want.Uptime, want.TCO)
	}
}

// TestSolversMatchScratchOracle re-runs the strategy-equivalence
// property against the from-scratch reference implementation: every
// registered exact solver now prices through the compiled evaluator,
// and ExhaustiveScratch is the one path that still re-derives every
// candidate with Problem.Evaluate — agreement here means the
// incremental rewiring changed nothing observable, bit for bit. The
// approximate strategies answer to the certified-gap tests instead.
func TestSolversMatchScratchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20170611))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		ref, err := p.ExhaustiveScratch(context.Background())
		if err != nil {
			t.Fatalf("trial %d: ExhaustiveScratch: %v", trial, err)
		}
		for _, strategy := range Strategies() {
			if ApproximateStrategy(strategy) {
				continue
			}
			res, err := Solve(context.Background(), p, strategy)
			if err != nil {
				t.Fatalf("trial %d: Solve(%s): %v", trial, strategy, err)
			}
			if res.Best.TCO != ref.Best.TCO || res.Best.Uptime != ref.Best.Uptime ||
				!equalAssignments(res.Best.Assignment, ref.Best.Assignment) {
				t.Fatalf("trial %d: %s best %v/%v/%+v != scratch %v/%v/%+v",
					trial, strategy, res.Best.Assignment, res.Best.Uptime, res.Best.TCO,
					ref.Best.Assignment, ref.Best.Uptime, ref.Best.TCO)
			}
			if res.NoPenaltyFound != ref.NoPenaltyFound {
				t.Fatalf("trial %d: %s NoPenaltyFound %v != scratch %v",
					trial, strategy, res.NoPenaltyFound, ref.NoPenaltyFound)
			}
			if ref.NoPenaltyFound &&
				(res.BestNoPenalty.TCO != ref.BestNoPenalty.TCO ||
					!equalAssignments(res.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment)) {
				t.Fatalf("trial %d: %s no-penalty %v != scratch %v",
					trial, strategy, res.BestNoPenalty.Assignment, ref.BestNoPenalty.Assignment)
			}
		}
	}
}

// TestStreamMatchesAll pins the streaming visitor against the
// materialized enumeration: same candidates, same order, for both the
// sequential and the sharded stream.
func TestStreamMatchesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng)
		want, err := p.All()
		if err != nil {
			t.Fatal(err)
		}

		var got []Candidate
		if err := p.StreamContext(context.Background(), func(cur *Cursor) error {
			if cur.Index() != int64(len(got)) {
				t.Fatalf("trial %d: stream index %d at position %d", trial, cur.Index(), len(got))
			}
			got = append(got, cur.Candidate())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		assertSameCandidates(t, trial, "stream", got, want)

		for _, workers := range []int{2, 3, 5} {
			shard := make([]Candidate, len(want))
			if err := p.ParallelStreamContext(context.Background(), workers, func() func(*Cursor) error {
				return func(cur *Cursor) error {
					shard[cur.Index()] = cur.Candidate()
					return nil
				}
			}); err != nil {
				t.Fatal(err)
			}
			assertSameCandidates(t, trial, "parallel stream", shard, want)
		}
	}
}

func assertSameCandidates(t *testing.T, trial int, label string, got, want []Candidate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: %s produced %d candidates, want %d", trial, label, len(got), len(want))
	}
	for i := range want {
		if !equalAssignments(got[i].Assignment, want[i].Assignment) ||
			got[i].Uptime != want[i].Uptime || got[i].TCO != want[i].TCO {
			t.Fatalf("trial %d: %s candidate %d = %+v, want %+v", trial, label, i, got[i], want[i])
		}
	}
}

// TestEnumerationZeroAllocs pins the tentpole's memory guarantee: the
// steady-state enumeration loop — advance, evaluate, track the
// incumbent — performs zero heap allocations per candidate.
func TestEnumerationZeroAllocs(t *testing.T) {
	p := BenchProblem(10, BenchSLAPercent)
	ev, err := NewEvaluator(p)
	if err != nil {
		t.Fatal(err)
	}
	cur := ev.NewCursor()
	var res Result
	// Prime the incumbents so their storage exists before measuring.
	res.observeCursor(cur, p.SLA)

	avg := testing.AllocsPerRun(5, func() {
		cur.Reset()
		for {
			res.observeCursor(cur, p.SLA)
			if !cur.Advance() {
				break
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state enumeration allocates %.1f times per full space walk, want 0", avg)
	}
}

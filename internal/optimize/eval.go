package optimize

import (
	"fmt"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

// Evaluator is a Problem compiled for incremental evaluation: every
// variant's availability terms and monthly cost are derived exactly
// once, into flat per-component tables, so pricing a candidate never
// touches the cluster model again. It is immutable after compilation
// and safe to share across goroutines; per-goroutine mutable state
// lives in Cursors.
//
// Combined with the availability.Accumulator's prefix-decomposable
// fold, the compiled tables are what turn the k^n enumeration from
// O(n · cluster-eval) with three heap allocations per candidate into
// amortized O(1) per candidate with none: a Cursor checkpoints the
// fold state after every assignment digit, and a mixed-radix advance
// only re-folds the digits that changed.
type Evaluator struct {
	p     *Problem
	arity []int // arity[i] = len(Components[i].Variants)
	off   []int // off[i] = index of component i's variant 0 in the flat tables
	place []int64
	terms []availability.ClusterTerms
	costs []cost.Money
}

// NewEvaluator validates and compiles the problem, enforcing the
// exact-lane MaxCandidates cap.
func NewEvaluator(p *Problem) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return compileEvaluator(p), nil
}

// newEvaluatorShape compiles without the MaxCandidates cap: the
// approximate searches bound their own work (beam width, discrepancy
// budget, evaluation/wall budgets), so the space size is not a memory
// or time hazard for them.
func newEvaluatorShape(p *Problem) (*Evaluator, error) {
	if err := p.validateShape(); err != nil {
		return nil, err
	}
	return compileEvaluator(p), nil
}

// compileEvaluator derives the flat tables from an already-validated
// problem.
func compileEvaluator(p *Problem) *Evaluator {
	n := len(p.Components)
	e := &Evaluator{
		p:     p,
		arity: make([]int, n),
		off:   make([]int, n),
		place: make([]int64, n),
	}
	total := 0
	for i, comp := range p.Components {
		e.arity[i] = len(comp.Variants)
		e.off[i] = total
		total += len(comp.Variants)
	}
	// place[i] is the enumeration weight of digit i (the product of
	// the arities below it), for incremental Index maintenance.
	w := int64(1)
	for i := n - 1; i >= 0; i-- {
		e.place[i] = w
		w *= int64(e.arity[i])
	}
	e.terms = make([]availability.ClusterTerms, total)
	e.costs = make([]cost.Money, total)
	for i, comp := range p.Components {
		for v, variant := range comp.Variants {
			e.terms[e.off[i]+v] = variant.Cluster.Terms()
			e.costs[e.off[i]+v] = variant.MonthlyCost
		}
	}
	return e
}

// Problem returns the compiled problem.
func (e *Evaluator) Problem() *Problem { return e.p }

// NewCursor allocates a cursor positioned on the all-baseline
// assignment. Cursors are not safe for concurrent use; parallel
// searches give each worker its own.
func (e *Evaluator) NewCursor() *Cursor {
	n := len(e.p.Components)
	c := &Cursor{
		e:     e,
		a:     make(Assignment, n),
		state: make([]availability.Accumulator, n+1),
		cum:   make([]cost.Money, n+1),
	}
	c.state[0] = availability.NewAccumulator()
	c.Reset()
	return c
}

// Cursor is a position in the candidate space with the evaluation
// state checkpointed after every assignment digit: state[i] is the
// availability fold and cum[i] the HA-cost sum over digits 0..i-1.
// Moving the cursor re-folds only the digits at and after the lowest
// one that changed, so a full mixed-radix enumeration pays amortized
// O(1) per candidate — and the steady-state loop performs zero heap
// allocations, which the allocation tests pin.
//
// All accessors read the checkpoint at n, so they are O(1) and
// allocation-free; Candidate is the only method that allocates (it
// clones the assignment for callers that retain it).
type Cursor struct {
	e     *Evaluator
	a     Assignment
	state []availability.Accumulator
	cum   []cost.Money
	idx   int64
}

// Reset repositions the cursor on the all-baseline assignment.
func (c *Cursor) Reset() {
	for i := range c.a {
		c.a[i] = 0
	}
	c.idx = 0
	c.refold(0)
}

// refold recomputes the checkpoints for digits from..n-1. The fold
// runs the same availability.Accumulator operations, in the same
// order, as the from-scratch Problem.Evaluate — which is what makes
// the two paths bit-identical, a property the equivalence tests
// assert across randomized instances.
func (c *Cursor) refold(from int) {
	e := c.e
	for i := from; i < len(c.a); i++ {
		j := e.off[i] + c.a[i]
		acc := c.state[i]
		acc.Add(e.terms[j])
		c.state[i+1] = acc
		c.cum[i+1] = c.cum[i] + e.costs[j]
	}
}

// Seek positions the cursor on an arbitrary assignment.
func (c *Cursor) Seek(a Assignment) error {
	if len(a) != len(c.a) {
		return fmt.Errorf("optimize: assignment has %d entries, want %d", len(a), len(c.a))
	}
	for i, v := range a {
		if v < 0 || v >= c.e.arity[i] {
			return fmt.Errorf("optimize: component %q: variant index %d out of range [0, %d)",
				c.e.p.Components[i].Name, v, c.e.arity[i])
		}
	}
	idx := int64(0)
	for i, v := range a {
		idx += int64(v) * c.e.place[i]
	}
	copy(c.a, a)
	c.idx = idx
	c.refold(0)
	return nil
}

// Sync repositions the cursor on a, re-folding only from the first
// digit that differs from the current position. It is the move
// operation for callers that walk the space in their own order with
// prefix locality (the pruned level walks, branch-and-bound): the
// cheaper the jump, the less gets recomputed. The assignment must be
// in range (Seek checks; Sync trusts its caller and panics on an
// out-of-range index).
func (c *Cursor) Sync(a Assignment) {
	if len(a) != len(c.a) {
		panic(fmt.Sprintf("optimize: Sync with %d entries, want %d", len(a), len(c.a)))
	}
	first := -1
	for i, v := range a {
		if c.a[i] != v {
			first = i
			break
		}
	}
	if first < 0 {
		return
	}
	for i := first; i < len(a); i++ {
		if d := a[i] - c.a[i]; d != 0 {
			c.idx += int64(d) * c.e.place[i]
			c.a[i] = a[i]
		}
	}
	c.refold(first)
}

// Advance steps to the next candidate in mixed-radix enumeration
// order (the last component is the fastest digit); it returns false
// after the final candidate, wrapping the cursor back to the
// all-baseline assignment.
func (c *Cursor) Advance() bool { return c.AdvanceFrom(0) }

// AdvanceFrom steps digits from..n-1 in mixed-radix order, leaving
// the pinned prefix untouched; it returns false after the suffix's
// final candidate, wrapping the suffix back to all-baseline (the
// cursor stays fully consistent, so a subsequent Sync re-folds only
// genuinely changed digits). It is the cursor counterpart of the
// enumeration the parallel searches shard by pinned prefix.
func (c *Cursor) AdvanceFrom(from int) bool {
	for i := len(c.a) - 1; i >= from; i-- {
		c.a[i]++
		if c.a[i] < c.e.arity[i] {
			c.idx++
			c.refold(i)
			return true
		}
		c.a[i] = 0
	}
	// Wrapped: the suffix is back at all-baseline. Re-fold so the
	// checkpoints match the digits again before the caller's next move.
	idx := int64(0)
	for i, v := range c.a {
		idx += int64(v) * c.e.place[i]
	}
	c.idx = idx
	c.refold(from)
	return false
}

// Assignment returns the cursor's current position as a live view:
// the slice aliases cursor state and is invalidated by the next move.
// Callers that retain it must Clone (or take Candidate).
func (c *Cursor) Assignment() Assignment { return c.a }

// Index returns the mixed-radix enumeration index of the current
// assignment: its position in All's output order.
func (c *Cursor) Index() int64 { return c.idx }

// Uptime returns U_s for the current assignment, bit-identical to
// Problem.Evaluate's.
func (c *Cursor) Uptime() float64 {
	return c.state[len(c.a)].Uptime()
}

// HACost returns C_HA for the current assignment.
func (c *Cursor) HACost() cost.Money { return c.cum[len(c.a)] }

// TCO returns the Equation 5 decomposition for the current
// assignment, bit-identical to Problem.Evaluate's.
func (c *Cursor) TCO() cost.TCO {
	return cost.Compute(c.cum[len(c.a)], c.e.p.SLA, c.Uptime())
}

// MeetsSLA reports whether the current assignment's expected uptime
// reaches the contractual target.
func (c *Cursor) MeetsSLA() bool {
	return c.Uptime() >= c.e.p.SLA.Target()
}

// Candidate materializes the current position as a Candidate, cloning
// the assignment so the caller may retain it across moves.
func (c *Cursor) Candidate() Candidate {
	return Candidate{
		Assignment: c.a.Clone(),
		Uptime:     c.Uptime(),
		TCO:        c.TCO(),
	}
}

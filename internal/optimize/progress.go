package optimize

import (
	"context"
	"sync"
	"sync/atomic"
)

// ProgressFunc receives periodic search-progress reports: how many of
// the space's candidates have been accounted for (evaluated or
// clipped) and the total space size k^n. Implementations must be fast
// and non-blocking — the enumeration loops call them inline.
type ProgressFunc func(evaluated, spaceSize int64)

// progressKey carries the hook in a context.
type progressKey struct{}

// WithProgress attaches a progress hook to the context. Every
// enumeration entry point that takes a context (AllContext,
// ExhaustiveContext, PrunedContext) reports through it on a fixed
// cadence plus once at completion; a nil fn detaches.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// ContextProgress returns the WithProgress hook carried by ctx, or
// nil when none is attached. Layers that re-scope a search's progress
// — the broker maps its two Recommend passes onto one combined bar —
// use it to wrap the caller's hook instead of losing it.
func ContextProgress(ctx context.Context) ProgressFunc {
	return progressFrom(ctx)
}

// progressFrom extracts the hook, or nil.
func progressFrom(ctx context.Context) ProgressFunc {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(progressKey{}).(ProgressFunc)
	return fn
}

// progressEvery is how many candidates pass between hook invocations.
// Matches the cancellation poll cadence: cheap enough to vanish in
// profiles, frequent enough that watchers see sub-millisecond-fresh
// numbers on large spaces.
const progressEvery = 64

// progressTicker amortizes hook calls across enumeration iterations.
type progressTicker struct {
	fn    ProgressFunc
	space int64
	n     int64
}

// newProgressTicker builds the ticker for one enumeration run over p.
func newProgressTicker(ctx context.Context, p *Problem) progressTicker {
	fn := progressFrom(ctx)
	if fn == nil {
		return progressTicker{}
	}
	return progressTicker{fn: fn, space: int64(p.SpaceSize())}
}

// advance accounts for k more candidates (evaluated or clipped) and
// reports on the cadence boundary.
func (t *progressTicker) advance(k int64) {
	if t.fn == nil {
		return
	}
	before := t.n / progressEvery
	t.n += k
	if t.n/progressEvery != before {
		t.fn(t.n, t.space)
	}
}

// done emits the final report.
func (t *progressTicker) done() {
	if t.fn != nil {
		t.fn(t.n, t.space)
	}
}

// sharedTicker is the progressTicker for concurrent enumerations:
// workers advance a single atomic counter, and whichever worker
// crosses a cadence boundary emits the report. Emissions are
// serialized through a high-water mark, so the hook observes a
// strictly increasing evaluated count even when workers race across
// cadence boundaries — consumers never see the bar move backwards.
type sharedTicker struct {
	fn    ProgressFunc
	space int64
	n     atomic.Int64

	mu       sync.Mutex
	reported int64
}

func newSharedTicker(ctx context.Context, p *Problem) *sharedTicker {
	fn := progressFrom(ctx)
	if fn == nil {
		return &sharedTicker{}
	}
	return &sharedTicker{fn: fn, space: int64(p.SpaceSize())}
}

func (t *sharedTicker) advance(k int64) {
	if t.fn == nil {
		return
	}
	after := t.n.Add(k)
	if after/progressEvery != (after-k)/progressEvery {
		t.emit(after)
	}
}

func (t *sharedTicker) done() {
	if t.fn != nil {
		t.emit(t.n.Load())
	}
}

// emit reports v through the hook unless a higher value already went
// out (a final done() report may repeat the last value). The hook
// runs under the ticker's lock; ProgressFunc's contract (fast,
// non-blocking) keeps the critical section negligible next to the
// 64-candidate emission cadence.
func (t *sharedTicker) emit(v int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v < t.reported {
		return
	}
	t.reported = v
	t.fn(v, t.space)
}

// StrategyFunc receives the name of the concrete solver a Solve call
// resolved to — for "auto" that is the strategy the heuristic picked,
// for explicit strategies it echoes the request. Like ProgressFunc it
// must be fast and non-blocking.
type StrategyFunc func(strategy string)

// strategyKey carries the hook in a context.
type strategyKey struct{}

// WithStrategyReport attaches a strategy hook to the context: Solve
// reports the resolved solver through it once per call, before the
// enumeration starts. A nil fn detaches.
func WithStrategyReport(ctx context.Context, fn StrategyFunc) context.Context {
	return context.WithValue(ctx, strategyKey{}, fn)
}

// ReportStrategy invokes the context's strategy hook, if any. Solve
// calls it on every search; layers that resolve a strategy without
// running Solve (the broker's fused streaming pass) call it
// themselves so async watchers still hear the resolved choice.
func ReportStrategy(ctx context.Context, strategy string) {
	reportStrategy(ctx, strategy)
}

// reportStrategy invokes the context's strategy hook, if any.
func reportStrategy(ctx context.Context, strategy string) {
	if ctx == nil {
		return
	}
	if fn, ok := ctx.Value(strategyKey{}).(StrategyFunc); ok && fn != nil {
		fn(strategy)
	}
}

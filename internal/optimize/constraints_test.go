package optimize

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"uptimebroker/internal/cost"
)

func TestConstraintsValidate(t *testing.T) {
	if err := (Constraints{}).Validate(3); err != nil {
		t.Fatalf("zero constraints rejected: %v", err)
	}
	bad := []Constraints{
		{MaxHACost: -1},
		{MinUptime: -0.1},
		{MinUptime: 1.1},
		{Require: []bool{true}}, // wrong length for n=3
	}
	for _, c := range bad {
		if err := c.Validate(3); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestExhaustiveConstrainedBudget(t *testing.T) {
	p := sampleProblem()

	// Unconstrained optimum buys storage HA ($350).
	un, err := p.ExhaustiveConstrained(Constraints{})
	if err != nil {
		t.Fatalf("unconstrained: %v", err)
	}
	if un.Best.TCO.HA != cost.Dollars(350) {
		t.Fatalf("unconstrained best HA cost = %v", un.Best.TCO.HA)
	}

	// A $100 budget forces the no-HA baseline.
	capped, err := p.ExhaustiveConstrained(Constraints{MaxHACost: cost.Dollars(100)})
	if err != nil {
		t.Fatalf("capped: %v", err)
	}
	if capped.Best.TCO.HA != 0 {
		t.Fatalf("capped best HA cost = %v, want 0", capped.Best.TCO.HA)
	}
	if capped.Skipped != 7 {
		t.Fatalf("capped skipped = %d, want 7", capped.Skipped)
	}
}

func TestExhaustiveConstrainedMinUptime(t *testing.T) {
	p := sampleProblem()
	// Require 98% uptime regardless of economics; the cheapest compliant
	// option is storage+network (the paper's option #5 shape).
	res, err := p.ExhaustiveConstrained(Constraints{MinUptime: 0.98})
	if err != nil {
		t.Fatalf("ExhaustiveConstrained: %v", err)
	}
	if res.Best.Uptime < 0.98 {
		t.Fatalf("best uptime = %v, violates floor", res.Best.Uptime)
	}
	if got, want := res.Best.Assignment, (Assignment{0, 1, 1}); !equalAssignments(got, want) {
		t.Fatalf("best = %v, want %v", got, want)
	}
}

func TestExhaustiveConstrainedRequire(t *testing.T) {
	p := sampleProblem()
	// Compliance pin: compute must be clustered.
	res, err := p.ExhaustiveConstrained(Constraints{Require: []bool{true, false, false}})
	if err != nil {
		t.Fatalf("ExhaustiveConstrained: %v", err)
	}
	if res.Best.Assignment[0] == 0 {
		t.Fatalf("require violated: %v", res.Best.Assignment)
	}
}

func TestExhaustiveConstrainedInfeasible(t *testing.T) {
	p := sampleProblem()
	_, err := p.ExhaustiveConstrained(Constraints{MinUptime: 0.999999})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestExhaustiveConstrainedValidationErrors(t *testing.T) {
	p := sampleProblem()
	if _, err := p.ExhaustiveConstrained(Constraints{MaxHACost: -1}); err == nil {
		t.Fatal("invalid constraints should fail")
	}
	bad := &Problem{}
	if _, err := bad.ExhaustiveConstrained(Constraints{}); err == nil {
		t.Fatal("invalid problem should fail")
	}
}

func TestTopK(t *testing.T) {
	p := sampleProblem()
	top, err := p.TopK(3)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(top) != 3 {
		t.Fatalf("TopK len = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].TCO.Total() < top[i-1].TCO.Total() {
			t.Fatal("TopK not ascending by TCO")
		}
	}
	ex, _ := p.Exhaustive()
	if top[0].TCO.Total() != ex.Best.TCO.Total() {
		t.Fatalf("TopK[0] = %v, exhaustive best = %v", top[0].TCO.Total(), ex.Best.TCO.Total())
	}

	// k beyond the space returns everything.
	all, err := p.TopK(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != p.SpaceSize() {
		t.Fatalf("TopK(1000) len = %d, want %d", len(all), p.SpaceSize())
	}
	if _, err := p.TopK(0); err == nil {
		t.Fatal("TopK(0) should fail")
	}
}

func TestExhaustiveParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		p := randomProblem(rng)
		seq, err := p.Exhaustive()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, workers := range []int{1, 2, 4} {
			par, err := p.ExhaustiveParallel(context.Background(), workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if par.Evaluated != seq.Evaluated {
				t.Fatalf("trial %d: evaluated %d != %d", trial, par.Evaluated, seq.Evaluated)
			}
			if par.Best.TCO.Total() != seq.Best.TCO.Total() {
				t.Fatalf("trial %d: parallel best %v != sequential %v",
					trial, par.Best.TCO.Total(), seq.Best.TCO.Total())
			}
			if !equalAssignments(par.Best.Assignment, seq.Best.Assignment) {
				t.Fatalf("trial %d: tie-break divergence: %v vs %v",
					trial, par.Best.Assignment, seq.Best.Assignment)
			}
			if par.NoPenaltyFound != seq.NoPenaltyFound {
				t.Fatalf("trial %d: NoPenaltyFound mismatch", trial)
			}
			if seq.NoPenaltyFound && par.BestNoPenalty.TCO.Total() != seq.BestNoPenalty.TCO.Total() {
				t.Fatalf("trial %d: BestNoPenalty mismatch", trial)
			}
		}
	}
}

func TestExhaustiveParallelCancellation(t *testing.T) {
	p := sampleProblem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ExhaustiveParallel(ctx, 2); err == nil {
		t.Fatal("canceled parallel search should fail")
	}
}

func TestExhaustiveParallelValidation(t *testing.T) {
	p := sampleProblem()
	if _, err := p.ExhaustiveParallel(context.Background(), -1); err == nil {
		t.Fatal("negative workers should fail")
	}
	// workers=0 uses GOMAXPROCS and must still work.
	res, err := p.ExhaustiveParallel(context.Background(), 0)
	if err != nil {
		t.Fatalf("workers=0: %v", err)
	}
	if res.Evaluated != p.SpaceSize() {
		t.Fatalf("evaluated = %d", res.Evaluated)
	}
}

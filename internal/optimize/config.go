package optimize

import (
	"fmt"
	"time"
)

// Budget bounds how much work a single search may spend. Zero values
// mean unlimited. The approximate strategies honor both limits
// natively and report BudgetExhausted when one fires; for exact
// strategies a wall budget becomes a context deadline (the run aborts
// instead of returning a partial certificate) and an evaluation cap is
// refused — exact searches cannot stop early and still be exact.
type Budget struct {
	// Wall is the wall-clock allowance for the whole search.
	Wall time.Duration

	// MaxEvaluations caps full candidate evaluations.
	MaxEvaluations int64
}

// IsZero reports whether the budget imposes no limit.
func (b Budget) IsZero() bool { return b.Wall == 0 && b.MaxEvaluations == 0 }

// Validate rejects negative limits.
func (b Budget) Validate() error {
	if b.Wall < 0 {
		return fmt.Errorf("optimize: negative wall budget %v", b.Wall)
	}
	if b.MaxEvaluations < 0 {
		return fmt.Errorf("optimize: negative evaluation budget %d", b.MaxEvaluations)
	}
	return nil
}

// Defaults for the approximate-lane knobs when a config leaves them
// zero.
const (
	// DefaultBeamWidth is the beam strategy's width when the config
	// does not set one: wide enough that the symmetric benchmark shapes
	// keep every distinct-cost candidate per level, small enough that a
	// level expansion stays in cache.
	DefaultBeamWidth = 64

	// DefaultMaxDiscrepancies is the lds strategy's discrepancy budget
	// when the config does not set one.
	DefaultMaxDiscrepancies = 4

	// DefaultEpsilon is the bounded strategy's suboptimality factor
	// when the config does not set one: the certificate then states the
	// incumbent is within 5% of optimal, matching the anytime lane's
	// quality floor. An exact run is spelled "branch-and-bound", not
	// epsilon zero.
	DefaultEpsilon = 0.05

	// MaxEpsilon caps the bounded strategy's suboptimality factor; a
	// looser certificate than 2x optimal is not worth calling a search.
	MaxEpsilon = 1.0
)

// SolverConfig is the redesigned solver-selection surface: the
// strategy name plus the approximate lane's knobs. The zero value
// means "auto with no limits", which resolves exactly like the old
// flat strategy string, so every pre-existing call site keeps its
// behavior.
type SolverConfig struct {
	// Strategy is the registry name; "" and "auto" let the heuristic
	// pick (which now also weighs the budget and the space size against
	// MaxCandidates, routing to the approximate lane when the exact one
	// cannot answer).
	Strategy string

	// Budget bounds the search's work.
	Budget Budget

	// BeamWidth is the beam strategy's per-level width; zero means
	// DefaultBeamWidth. Setting it with an explicit strategy other
	// than beam is a contradiction Validate rejects; under auto it
	// expresses intent and resolves to beam.
	BeamWidth int

	// MaxDiscrepancies is the lds strategy's discrepancy budget; zero
	// means DefaultMaxDiscrepancies. Contradiction rules mirror
	// BeamWidth's.
	MaxDiscrepancies int

	// Epsilon is the bounded strategy's admissible suboptimality
	// factor: subtrees are clipped unless they could beat the incumbent
	// by more than a (1+Epsilon) factor, and a completed run certifies
	// gap ≤ Epsilon. Zero means DefaultEpsilon. Contradiction rules
	// mirror BeamWidth's.
	Epsilon float64
}

// IsZero reports whether the config is the all-default zero value.
func (c SolverConfig) IsZero() bool {
	return c == SolverConfig{}
}

// Validate rejects unknown strategies, out-of-range knobs, and
// knob/strategy contradictions (an approximate knob alongside an
// explicit strategy that cannot honor it).
func (c SolverConfig) Validate() error {
	if !ValidStrategy(c.Strategy) {
		return fmt.Errorf("optimize: unknown strategy %q (registered: %v)", c.Strategy, Strategies())
	}
	if err := c.Budget.Validate(); err != nil {
		return err
	}
	if c.BeamWidth < 0 {
		return fmt.Errorf("optimize: negative beam width %d", c.BeamWidth)
	}
	if c.MaxDiscrepancies < 0 {
		return fmt.Errorf("optimize: negative discrepancy budget %d", c.MaxDiscrepancies)
	}
	if c.Epsilon < 0 || c.Epsilon > MaxEpsilon {
		return fmt.Errorf("optimize: epsilon %v outside [0, %v]", c.Epsilon, float64(MaxEpsilon))
	}
	if s := c.Strategy; s != "" && s != StrategyAuto {
		if c.BeamWidth != 0 && s != StrategyBeam {
			return fmt.Errorf("optimize: beam width set but strategy is %q, not %q", s, StrategyBeam)
		}
		if c.MaxDiscrepancies != 0 && s != StrategyLDS {
			return fmt.Errorf("optimize: discrepancy budget set but strategy is %q, not %q", s, StrategyLDS)
		}
		if c.Epsilon != 0 && s != StrategyBounded {
			return fmt.Errorf("optimize: epsilon set but strategy is %q, not %q", s, StrategyBounded)
		}
	}
	return nil
}

// budgetTracker enforces a Budget inside the approximate search loops
// on the same amortized cadence as the canceler: exceeded() is asked
// once per prospective evaluation, the evaluation cap is checked every
// time (it is one comparison), and the wall clock is polled every
// cancelCheckEvery calls so time.Now never shows up in profiles.
type budgetTracker struct {
	deadline time.Time
	maxEvals int64
	evals    int64
	polls    int
	done     bool
}

func newBudgetTracker(b Budget) budgetTracker {
	t := budgetTracker{maxEvals: b.MaxEvaluations}
	if b.Wall > 0 {
		t.deadline = time.Now().Add(b.Wall)
	}
	return t
}

// spend accounts one performed evaluation.
func (t *budgetTracker) spend() { t.evals++ }

// exceeded reports whether the budget ran out; once true it stays
// true. Callers check it before each evaluation, so every search
// evaluates at least one candidate (its root incumbent) even under a
// zero-headroom budget.
func (t *budgetTracker) exceeded() bool {
	if t.done {
		return true
	}
	if t.maxEvals > 0 && t.evals >= t.maxEvals {
		t.done = true
		return true
	}
	if !t.deadline.IsZero() {
		t.polls++
		// The first call polls the clock unconditionally so a zero-headroom
		// wall budget is detected after the root evaluation rather than 64
		// candidates later; after that the cadence amortizes the syscall.
		if (t.polls == 1 || t.polls%cancelCheckEvery == 0) && !time.Now().Before(t.deadline) {
			t.done = true
			return true
		}
	}
	return false
}

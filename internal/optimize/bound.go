package optimize

import (
	"math"
	"sort"

	"uptimebroker/internal/cost"
)

// The approximate lane's certified gaps rest on one relaxation: drop
// the coupling between components and track, per suffix of the
// component list, the Pareto frontier of (HA cost, up-probability
// product) pairs reachable by any completion of that suffix. Two facts
// make bounds built on the frontier admissible. First, a system's
// uptime never exceeds the product of its clusters' up-probabilities
// (the same inequality the exact branch-and-bound's maxUpTail clip
// uses), so a frontier point's up value upper-bounds the uptime of
// every completion it stands for. Second, both TCO terms are monotone
// — HA cost grows with spend, expected penalty shrinks as uptime rises
// — so evaluating the TCO formula at a point that is cheaper and more
// reliable than a real completion can only come out lower than the
// completion's true TCO.

// boundPoint is one frontier point: the cheapest HA cost at which an
// up-probability product of at least up is reachable over the suffix.
type boundPoint struct {
	cost int64
	up   float64
}

// maxBoundFrontier caps each suffix frontier. Past the cap, runs of
// consecutive points collapse into a single dominating point (the
// run's cheapest cost with the run's best up), which keeps every bound
// admissible at the price of some tightness. Symmetric instances never
// get near the cap (their frontier has one point per spend level);
// heterogeneous ones degrade gracefully.
const maxBoundFrontier = 256

// tailFrontiers builds the suffix frontiers: frontiers[i] covers
// components i..n-1, frontiers[n] is the empty suffix {(0, 1)}. Each
// exact (cost, up-product) pair reachable over a suffix is dominated
// by some kept point — cost no higher, up no lower — by induction over
// the merge.
func (p *Problem) tailFrontiers() [][]boundPoint {
	n := len(p.Components)
	frontiers := make([][]boundPoint, n+1)
	frontiers[n] = []boundPoint{{cost: 0, up: 1}}
	for i := n - 1; i >= 0; i-- {
		next := frontiers[i+1]
		merged := make([]boundPoint, 0, len(next)*len(p.Components[i].Variants))
		for _, v := range p.Components[i].Variants {
			c := int64(v.MonthlyCost)
			up := v.Cluster.UpProbability()
			for _, pt := range next {
				merged = append(merged, boundPoint{cost: pt.cost + c, up: pt.up * up})
			}
		}
		frontiers[i] = thinFrontier(merged)
	}
	return frontiers
}

// thinFrontier sorts by cost, drops dominated points (up must strictly
// improve as cost grows), and conservatively merges down to
// maxBoundFrontier. The result is ascending in both cost and up.
func thinFrontier(pts []boundPoint) []boundPoint {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].cost != pts[j].cost {
			return pts[i].cost < pts[j].cost
		}
		return pts[i].up > pts[j].up
	})
	out := pts[:0]
	bestUp := math.Inf(-1)
	for _, pt := range pts {
		if pt.up > bestUp {
			out = append(out, pt)
			bestUp = pt.up
		}
	}
	if len(out) <= maxBoundFrontier {
		return out
	}
	stride := (len(out) + maxBoundFrontier - 1) / maxBoundFrontier
	thinned := make([]boundPoint, 0, maxBoundFrontier)
	for s := 0; s < len(out); s += stride {
		e := s + stride
		if e > len(out) {
			e = len(out)
		}
		// Cheapest cost of the run, best up of the run: dominates every
		// point it replaces.
		thinned = append(thinned, boundPoint{cost: out[s].cost, up: out[e-1].up})
	}
	return thinned
}

// frontierBound is the admissible lower bound on the TCO of any
// completion of a partial assignment: the committed prefix cost and
// up-product, extended by each frontier point of the remaining suffix,
// evaluated through the TCO formula, minimized. Every real completion
// is dominated by some point, and TCO is monotone in (cost, uptime),
// so no completion beats the minimum.
func frontierBound(sla cost.SLA, frontier []boundPoint, committed int64, committedUp float64) int64 {
	best := int64(math.MaxInt64)
	for _, pt := range frontier {
		up := committedUp * pt.up
		if up > 1 {
			up = 1
		}
		if t := int64(cost.Compute(cost.Money(committed+pt.cost), sla, up).Total()); t < best {
			best = t
		}
	}
	return best
}

// frontierMeetBound is the admissible lower bound on the HA cost of
// any SLA-meeting completion: the cheapest frontier point whose
// best-case uptime reaches the target (the frontier ascends in both
// coordinates, so the first point that qualifies is the cheapest).
// ok is false when no completion can meet the SLA at all.
func frontierMeetBound(frontier []boundPoint, committed int64, committedUp, target float64) (bound int64, ok bool) {
	for _, pt := range frontier {
		if committedUp*pt.up >= target {
			return committed + pt.cost, true
		}
	}
	return 0, false
}

// rootLowerBound is frontierBound at the root: a certified admissible
// lower bound on the optimal TCO over the whole space, computed in
// O(n · k · frontier) before any search starts.
func (p *Problem) rootLowerBound(frontiers [][]boundPoint) cost.Money {
	return cost.Money(frontierBound(p.SLA, frontiers[0], 0, 1))
}

package optimize

import (
	"context"
	"testing"
)

// BenchmarkEvalEngine is the headline incremental-vs-scratch
// comparison on the n=19 benchmark instance: the same full-space
// search, once re-deriving every candidate through Problem.Evaluate
// (the PR 4 engine) and once on the compiled evaluator's amortized-
// O(1) advance. The benchreport suite's eval_incremental_speedup_n19
// ratio — floored at 3x by CI — is this split measured into the
// committed BENCH_*.json trajectory; it is single-threaded on both
// sides, so the win lands on every host including 1-core runners.
func BenchmarkEvalEngine(b *testing.B) {
	p := slaDenseProblem(19, benchSLA)
	b.Run("scratch/n=19", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.ExhaustiveScratch(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental/n=19", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.ExhaustiveContext(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamPricing compares the streaming pricing pass (fold
// candidates online, O(1) memory) against the materialized AllContext
// (every candidate cloned into an O(k^n) slice) — the memory-shape
// split behind broker.Pareto's single-pass rewrite.
func BenchmarkStreamPricing(b *testing.B) {
	p := slaDenseProblem(19, benchSLA)
	b.Run("stream/n=19", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var res Result
			err := p.StreamContext(context.Background(), func(cur *Cursor) error {
				res.observeCursor(cur, p.SLA)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialized/n=19", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.AllContext(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

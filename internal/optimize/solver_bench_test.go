package optimize

import (
	"context"
	"testing"
)

// slaDenseProblem is the adversarial shape ROADMAP recorded
// minutes-long searches on: n symmetric two-choice components with the
// SLA attainable at a low level, so the met list holds thousands of
// minimal SLA-meeting assignments and every higher-level leaf pays a
// superset check against them. At n=19 / SLA 94.4% the minimal met
// level is 5 — C(19,5) = 11628 met assignments against 2^19 leaves;
// tightening the SLA further steepens the linear scan's quadratic cost
// while the trie lookup stays near-flat. The builder lives in
// benchshape.go (BenchProblem) so cmd/benchreport measures the same
// instance.
func slaDenseProblem(n int, slaPercent float64) *Problem {
	return BenchProblem(n, slaPercent)
}

// TestSLADenseShape pins the benchmark instance to the regime it
// claims to measure: pruning bites on most of the space and the met
// set is large enough that the linear scan's quadratic cost shows.
func TestSLADenseShape(t *testing.T) {
	p := slaDenseProblem(19, benchSLA)
	res, err := p.Pruned()
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped < p.SpaceSize()/2 {
		t.Fatalf("instance is not SLA-dense: only %d of %d skipped", res.Skipped, p.SpaceSize())
	}
	// The cheaper 93.6% variant (met level 3) keeps the indexed-vs-
	// linear accounting pin fast; density-independence of the
	// equivalence itself is covered by the randomized solver tests.
	q := slaDenseProblem(19, 93.6)
	idx, err := q.PrunedContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lin, err := q.prunedLinear(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lin.Evaluated != idx.Evaluated || lin.Skipped != idx.Skipped {
		t.Fatalf("indexed (%d, %d) != linear (%d, %d) on the benchmark shape",
			idx.Evaluated, idx.Skipped, lin.Evaluated, lin.Skipped)
	}
}

// benchSLA is the benchmark instance's uptime target: minimal met
// level 5 on the n=19 shape.
const benchSLA = BenchSLAPercent

// BenchmarkSupersetPruning is the headline comparison: the superset
// index implementations against each other and the original linear
// met scan on the SLA-dense n=19 instance. "flat" is the arena trie
// with checkpoint resume disabled, "checkpointed" the production
// index — the gap between them is the changed-suffix amortization,
// the gap from "pointer" to either is the arena layout.
func BenchmarkSupersetPruning(b *testing.B) {
	p := slaDenseProblem(19, benchSLA)
	run := func(name string, search func(context.Context) (Result, error)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("checkpointed", p.PrunedContext)
	run("flat", p.PrunedFlatRescan)
	run("pointer", p.PrunedPointerTrie)
	run("linear", p.prunedLinear)
}

// BenchmarkSupersetPruningDeep is BenchmarkSupersetPruning on the
// denser adversarial shape (minimal met level 8, C(19,8) = 75582 met
// assignments): a deeper, ~6.5x wider trie where lookups dominate the
// level walk even harder.
func BenchmarkSupersetPruningDeep(b *testing.B) {
	p := slaDenseProblem(19, BenchSLADeepPercent)
	run := func(name string, search func(context.Context) (Result, error)) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("checkpointed", p.PrunedContext)
	run("flat", p.PrunedFlatRescan)
	run("pointer", p.PrunedPointerTrie)
}

// BenchmarkSolverStrategies compares every strategy on the same
// SLA-dense instance (auto resolves per its heuristic).
func BenchmarkSolverStrategies(b *testing.B) {
	p := slaDenseProblem(19, benchSLA)
	for _, strategy := range []string{
		StrategyExhaustive, StrategyPruned, StrategyParallelPruned, StrategyBranchAndBound, StrategyAuto,
	} {
		b.Run(strategy, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(context.Background(), p, strategy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

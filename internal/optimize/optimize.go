// Package optimize implements the paper's solution search: Equation 6
// (pick the HA-enabled variant with minimum monthly TCO among all k^n
// permutations) and the Section III.C refinement that prunes supersets
// of permutations which already satisfy the uptime SLA.
//
// The package is deliberately abstract: a Problem is a list of decision
// dimensions (one per component of the base architecture), each with a
// list of Variants (HA choices) carrying the cluster parameters the
// availability model needs and the monthly cost the TCO model needs.
// The broker package compiles topology + catalog + telemetry into a
// Problem.
package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

// Variant is one HA choice for one component: the cluster shape it
// produces and what it costs per month. Variant index 0 of every
// component is by convention "no HA"; Validate enforces that it is also
// the cheapest, which is what makes superset pruning sound.
type Variant struct {
	// Label names the choice in reports, e.g. "none" or "raid1".
	Label string

	// Cluster is the k-redundancy cluster this choice produces.
	Cluster availability.Cluster

	// MonthlyCost is the choice's contribution to C_HA.
	MonthlyCost cost.Money
}

// ComponentChoices is one decision dimension of the search.
type ComponentChoices struct {
	// Name is the component name from the base architecture.
	Name string

	// Variants are the available choices; Variants[0] must be the
	// no-HA baseline and must not cost more than any alternative.
	Variants []Variant
}

// Problem is a full search instance.
type Problem struct {
	// Components are the decision dimensions, in base-architecture
	// order.
	Components []ComponentChoices

	// SLA is the contractual uptime target with its penalty clause.
	SLA cost.SLA
}

// MaxCandidates bounds the exhaustive search space; Equation 6
// enumerates k^n candidates and the paper notes n is usually under 10.
// Larger spaces must use the pruned or branch-and-bound searches, and
// even those refuse spaces beyond this bound to keep memory and time
// predictable. Only the approximate strategies (beam, lds, bounded) go
// past it: their work is bounded by beam width, discrepancy budget and
// the evaluation/wall budget rather than by k^n.
const MaxCandidates = 1 << 26

// maxShapeCandidates is the hard ceiling even the approximate lane
// enforces: past it the int64 space-size bookkeeping (progress bars,
// clipped-subtree accounting) would overflow.
const maxShapeCandidates = 1 << 50

// Validate reports whether the problem is well-formed and solvable by
// the exact strategies: the per-component shape invariants plus the
// MaxCandidates space cap.
func (p *Problem) Validate() error {
	if err := p.validateShape(); err != nil {
		return err
	}
	space := 1
	for _, comp := range p.Components {
		if space > MaxCandidates/len(comp.Variants) {
			return fmt.Errorf("optimize: search space exceeds %d candidates", MaxCandidates)
		}
		space *= len(comp.Variants)
	}
	return nil
}

// validateShape checks everything Validate does except the
// MaxCandidates cap: SLA validity and the per-component invariants
// (valid clusters, non-negative costs, baseline-cheapest ordering that
// makes superset pruning sound). The approximate solvers validate
// through it so they can take spaces the exact lane refuses, up to the
// bookkeeping ceiling.
func (p *Problem) validateShape() error {
	if len(p.Components) == 0 {
		return errors.New("optimize: problem has no components")
	}
	if err := p.SLA.Validate(); err != nil {
		return fmt.Errorf("optimize: %w", err)
	}
	space := int64(1)
	for i, comp := range p.Components {
		if len(comp.Variants) == 0 {
			return fmt.Errorf("optimize: component %d (%q) has no variants", i, comp.Name)
		}
		base := comp.Variants[0]
		for j, v := range comp.Variants {
			if err := v.Cluster.Validate(); err != nil {
				return fmt.Errorf("optimize: component %q variant %d (%q): %w", comp.Name, j, v.Label, err)
			}
			if v.MonthlyCost < 0 {
				return fmt.Errorf("optimize: component %q variant %q: negative cost", comp.Name, v.Label)
			}
			if v.MonthlyCost < base.MonthlyCost {
				return fmt.Errorf("optimize: component %q variant %q costs less than the no-HA baseline; reorder variants",
					comp.Name, v.Label)
			}
		}
		if space > maxShapeCandidates/int64(len(comp.Variants)) {
			return fmt.Errorf("optimize: search space exceeds %d candidates", int64(maxShapeCandidates))
		}
		space *= int64(len(comp.Variants))
	}
	return nil
}

// SpaceSize returns k^n: the number of candidate deployments.
func (p *Problem) SpaceSize() int {
	space := 1
	for _, comp := range p.Components {
		space *= len(comp.Variants)
	}
	return space
}

// Assignment selects one variant index per component.
type Assignment []int

// Clone returns an independent copy of the assignment.
func (a Assignment) Clone() Assignment {
	return append(Assignment(nil), a...)
}

// haCount returns the number of components assigned a non-baseline
// variant — the "level" of the assignment in Section III.C's search
// order.
func (a Assignment) haCount() int {
	n := 0
	for _, v := range a {
		if v != 0 {
			n++
		}
	}
	return n
}

// coveredBy reports whether sub's clustered choices are a subset of
// super's with identical variant selections: wherever sub clusters a
// component, super picks the same variant. Supersets cost at least as
// much as the subset (baseline is cheapest), which justifies pruning.
func coveredBy(sub, super Assignment) bool {
	for i, v := range sub {
		if v != 0 && super[i] != v {
			return false
		}
	}
	return true
}

// Candidate is one fully evaluated deployment option.
type Candidate struct {
	// Assignment is the variant selection that produced the candidate.
	Assignment Assignment

	// Uptime is U_s from Equation 4.
	Uptime float64

	// TCO is the Equation 5 decomposition for this candidate.
	TCO cost.TCO
}

// MeetsSLA reports whether the candidate's expected uptime is at or
// above the contractual target, i.e. its expected penalty is zero.
func (c Candidate) MeetsSLA(sla cost.SLA) bool {
	return c.Uptime >= sla.Target()
}

// Evaluate computes uptime and TCO for one assignment. The assignment
// must have one in-range index per component.
func (p *Problem) Evaluate(a Assignment) (Candidate, error) {
	if len(a) != len(p.Components) {
		return Candidate{}, fmt.Errorf("optimize: assignment has %d entries, want %d", len(a), len(p.Components))
	}
	clusters := make([]availability.Cluster, len(a))
	var haCost cost.Money
	for i, choice := range a {
		comp := p.Components[i]
		if choice < 0 || choice >= len(comp.Variants) {
			return Candidate{}, fmt.Errorf("optimize: component %q: variant index %d out of range [0, %d)",
				comp.Name, choice, len(comp.Variants))
		}
		v := comp.Variants[choice]
		clusters[i] = v.Cluster
		haCost += v.MonthlyCost
	}
	sys := availability.System{Clusters: clusters}
	uptime := sys.Uptime()
	return Candidate{
		Assignment: a.Clone(),
		Uptime:     uptime,
		TCO:        cost.Compute(haCost, p.SLA, uptime),
	}, nil
}

// better reports whether a should replace b as the incumbent optimum:
// strictly lower TCO, with ties broken first by higher uptime, then by
// lexicographically smaller assignment for determinism.
func better(a, b Candidate) bool {
	at, bt := a.TCO.Total(), b.TCO.Total()
	if at != bt {
		return at < bt
	}
	if a.Uptime != b.Uptime {
		return a.Uptime > b.Uptime
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			return a.Assignment[i] < b.Assignment[i]
		}
	}
	return false
}

// Result is the outcome of a search.
type Result struct {
	// Best is the minimum-TCO candidate (Equation 6's OptCh).
	Best Candidate

	// BestNoPenalty is the cheapest candidate whose expected uptime
	// meets the SLA, i.e. the recommendation "if the possibility of
	// slippage penalty is to be minimized" (the paper's option #5 in
	// the case study). Found is false when no candidate meets the SLA.
	BestNoPenalty Candidate

	// NoPenaltyFound reports whether any candidate met the SLA.
	NoPenaltyFound bool

	// Evaluated counts full candidate evaluations performed.
	Evaluated int

	// Skipped counts candidates clipped without evaluation (pruned and
	// branch-and-bound searches; zero for exhaustive).
	Skipped int

	// CoverLookups counts superset-index lookups performed (one per
	// leaf reached by the pruned and branch-and-bound searches; zero
	// for exhaustive).
	CoverLookups int

	// Clipped counts candidates clipped because a recorded SLA-meeting
	// assignment covered them. It is a subset of Skipped, which for
	// branch-and-bound also includes bound-clipped subtrees.
	Clipped int

	// Strategy is the name of the concrete solver that produced the
	// result when it came through Solve ("auto" resolves to the
	// strategy the heuristic picked); empty for direct method calls.
	Strategy string

	// Approximate reports the result came from the anytime lane (beam,
	// lds, bounded): Best is an incumbent rather than a proven optimum,
	// and the certificate fields below are populated. Exact runs leave
	// all of them zero.
	Approximate bool

	// Bound is the certified admissible lower bound on the optimal
	// TCO: no candidate in the space — searched or not — costs less.
	// Only meaningful when Approximate is set.
	Bound cost.Money

	// Gap is the certified relative optimality gap,
	// (incumbent − bound) / bound: the incumbent provably costs at most
	// (1+Gap) times the true optimum. Zero means the incumbent is
	// proven optimal. When Bound is zero while the incumbent is not,
	// the relative gap is undefined and reported as +Inf (the wire
	// layer omits it). Only meaningful when Approximate is set.
	Gap float64

	// Optimal reports the gap closed to zero: the incumbent is a
	// proven optimum despite coming from an approximate strategy
	// (the search completed without dropping any candidate, or the
	// bound tightened onto the incumbent).
	Optimal bool

	// BudgetExhausted reports the search stopped on its wall-clock or
	// evaluation budget rather than running its strategy to completion.
	BudgetExhausted bool
}

// certify stamps the approximate-lane certificate onto a result: the
// admissible lower bound, the relative gap it implies for the
// incumbent, and whether the search ran out of budget. Admissible
// bounds never exceed the incumbent (which is a real candidate, so its
// total is at least the optimum); the clamp only guards float edge
// cases in callers' bound arithmetic.
func (r *Result) certify(bound cost.Money, budgetExhausted bool) {
	r.Approximate = true
	r.BudgetExhausted = budgetExhausted
	if bound < 0 {
		bound = 0
	}
	inc := r.Best.TCO.Total()
	if bound > inc {
		bound = inc
	}
	r.Bound = bound
	switch {
	case inc == bound:
		r.Gap = 0
		r.Optimal = true
	case bound > 0:
		r.Gap = float64(inc-bound) / float64(bound)
	default:
		r.Gap = math.Inf(1)
	}
}

func (r *Result) observe(c Candidate, sla cost.SLA) {
	if r.Evaluated == 0 || better(c, r.Best) {
		r.Best = c
	}
	if c.MeetsSLA(sla) {
		if !r.NoPenaltyFound || betterNoPenalty(c, r.BestNoPenalty) {
			r.BestNoPenalty = c
			r.NoPenaltyFound = true
		}
	}
	r.Evaluated++
}

// observeCursor is observe for the incremental enumeration loops: the
// same incumbent ordering, but reading the cursor in place and
// cloning an assignment only when an incumbent's storage is first
// needed — replacements copy into the existing slice, so the steady-
// state loop allocates nothing (a property the allocation tests pin).
func (r *Result) observeCursor(cur *Cursor, sla cost.SLA) {
	tco := cur.TCO()
	up := cur.Uptime()
	if r.Evaluated == 0 || cursorBetter(tco.Total(), up, cur.a, r.Best) {
		setIncumbent(&r.Best, cur.a, up, tco)
	}
	if up >= sla.Target() {
		if !r.NoPenaltyFound || cursorBetter(tco.Total(), up, cur.a, r.BestNoPenalty) {
			setIncumbent(&r.BestNoPenalty, cur.a, up, tco)
			r.NoPenaltyFound = true
		}
	}
	r.Evaluated++
}

// cursorBetter is better/betterNoPenalty (they apply the same
// ordering) against an incumbent, without materializing a Candidate
// for the challenger.
func cursorBetter(total cost.Money, up float64, a Assignment, b Candidate) bool {
	if bt := b.TCO.Total(); total != bt {
		return total < bt
	}
	if up != b.Uptime {
		return up > b.Uptime
	}
	for i := range a {
		if a[i] != b.Assignment[i] {
			return a[i] < b.Assignment[i]
		}
	}
	return false
}

// setIncumbent installs a new incumbent, reusing the previous one's
// assignment storage when present.
func setIncumbent(dst *Candidate, a Assignment, up float64, tco cost.TCO) {
	if cap(dst.Assignment) < len(a) {
		dst.Assignment = a.Clone()
	} else {
		dst.Assignment = dst.Assignment[:len(a)]
		copy(dst.Assignment, a)
	}
	dst.Uptime = up
	dst.TCO = tco
}

// betterNoPenalty orders SLA-meeting candidates: cheaper HA cost first
// (their penalty is zero, so TCO == HA cost), ties broken by higher
// uptime then assignment order.
func betterNoPenalty(a, b Candidate) bool {
	if a.TCO.Total() != b.TCO.Total() {
		return a.TCO.Total() < b.TCO.Total()
	}
	if a.Uptime != b.Uptime {
		return a.Uptime > b.Uptime
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			return a.Assignment[i] < b.Assignment[i]
		}
	}
	return false
}

// cancelCheckEvery is how many candidate evaluations pass between
// context cancellation checks inside the enumeration loops. Small
// enough that a cancelled search aborts within microseconds, large
// enough that the channel poll is invisible in profiles.
const cancelCheckEvery = 64

// canceler amortizes ctx.Err() polls across enumeration iterations.
type canceler struct {
	ctx   context.Context
	count int
}

// check returns the context's error on a cancellation poll boundary.
func (c *canceler) check() error {
	if c.ctx == nil {
		return nil
	}
	c.count++
	if c.count%cancelCheckEvery != 0 {
		return nil
	}
	return c.ctx.Err()
}

// Exhaustive evaluates every one of the k^n candidates (Equation 6).
func (p *Problem) Exhaustive() (Result, error) {
	return p.ExhaustiveContext(context.Background())
}

// ExhaustiveContext is Exhaustive with cooperative cancellation:
// the enumeration aborts with ctx.Err() shortly after ctx is done.
// A WithProgress hook on the context receives periodic
// evaluated/space reports.
//
// The enumeration runs on the compiled incremental evaluator —
// amortized O(1) per candidate, zero steady-state allocations — with
// values bit-identical to the from-scratch ExhaustiveScratch
// reference, which the equivalence tests assert.
func (p *Problem) ExhaustiveContext(ctx context.Context) (Result, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return Result{}, err
	}
	var res Result
	if err := ev.stream(ctx, func(cur *Cursor) error {
		res.observeCursor(cur, p.SLA)
		return nil
	}); err != nil {
		return Result{}, err
	}
	return res, nil
}

// ExhaustiveScratch is the from-scratch reference search: every
// candidate re-derived by Problem.Evaluate, exactly the work the
// incremental engine amortizes away. It is kept as the equivalence
// oracle for the randomized tests and as the baseline the benchreport
// suite's eval_incremental_speedup ratio measures against; production
// paths use ExhaustiveContext.
func (p *Problem) ExhaustiveScratch(ctx context.Context) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	var res Result
	cc := canceler{ctx: ctx}
	pt := newProgressTicker(ctx, p)
	a := make(Assignment, len(p.Components))
	for {
		if err := cc.check(); err != nil {
			return Result{}, err
		}
		c, err := p.Evaluate(a)
		if err != nil {
			return Result{}, err
		}
		res.observe(c, p.SLA)
		pt.advance(1)
		if !p.advance(a) {
			pt.done()
			return res, nil
		}
	}
}

// All evaluates every candidate and returns them in mixed-radix
// enumeration order (assignment [0 0 ... 0] first). It powers the
// per-option report of Figures 3–9.
func (p *Problem) All() ([]Candidate, error) {
	return p.AllContext(context.Background())
}

// AllContext is All with cooperative cancellation: the enumeration
// aborts with ctx.Err() shortly after ctx is done. A WithProgress
// hook on the context receives periodic evaluated/space reports.
//
// It is StreamContext materialized: the incremental evaluator prices
// each candidate and only the per-candidate Candidate clone remains.
// Consumers that can fold candidates online should prefer
// StreamContext and keep O(1) memory instead of O(k^n).
func (p *Problem) AllContext(ctx context.Context) ([]Candidate, error) {
	ev, err := NewEvaluator(p)
	if err != nil {
		return nil, err
	}
	out := make([]Candidate, 0, p.SpaceSize())
	if err := ev.stream(ctx, func(cur *Cursor) error {
		out = append(out, cur.Candidate())
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// advance steps the assignment to the next candidate in mixed-radix
// order with the last component as the fastest digit; it returns false
// after the final candidate.
func (p *Problem) advance(a Assignment) bool {
	return p.advanceFrom(a, 0)
}

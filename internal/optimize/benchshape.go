package optimize

import (
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/cost"
)

// BenchSLAPercent is the canonical SLA for the n=19 benchmark
// instance: minimal met level 5, so the met set holds C(19,5) = 11628
// assignments and superset pruning is exercised in the dense regime
// the trie index was built for.
const BenchSLAPercent = 94.4

// BenchSLADeepPercent is the denser adversarial variant of the same
// instance: 95.4% sits between the level-7 (95.291%) and level-8
// (95.672%) uptime rungs of the symmetric n=19 ladder, so the minimal
// met level is 8 — C(19,8) = 75582 met assignments, a ~6.5x larger
// superset index than BenchSLAPercent's, with every level above 8
// clipped through it. It stresses cover lookups against a deep, wide
// trie where checkpointed suffix walks matter most.
const BenchSLADeepPercent = 95.4

// BenchSLAWidePercent is the SLA for the n=30 anytime-lane instance:
// a 2^30 space the exact lane refuses outright (MaxCandidates is
// 2^26), so only the approximate strategies answer it. 91.4% sits
// between the level-7 (≈91.18%) and level-8 (≈91.55%) uptime rungs of
// the symmetric n=30 ladder, so the minimal met level is 8 — the met
// set holds C(30,8) ≈ 5.85M assignments, the SLA-dense regime the
// anytime acceptance gate (certified gap ≤ 5% within a 500ms budget)
// is measured on.
const BenchSLAWidePercent = 91.4

// BenchWideN is the component count of the anytime-lane instance.
const BenchWideN = 30

// BenchProblem builds the canonical benchmark instance shared by this
// package's benchmarks and the benchreport suite: n symmetric
// components with one no-HA baseline and one two-node HA variant
// each, under a slippage-penalty SLA. It lives outside the test files
// so cmd/benchreport measures exactly the shape the in-repo
// benchmarks (and the committed BENCH_*.json trajectory) refer to.
func BenchProblem(n int, slaPercent float64) *Problem {
	comps := make([]ComponentChoices, n)
	for i := range comps {
		comps[i] = ComponentChoices{
			Name: "c",
			Variants: []Variant{
				{
					Label:   "none",
					Cluster: availability.Cluster{Name: "c", Nodes: 1, NodeDown: 0.004, FailuresPerYear: 4},
				},
				{
					Label: "ha",
					Cluster: availability.Cluster{
						Name: "c", Nodes: 2, Tolerated: 1, NodeDown: 0.004,
						FailuresPerYear: 4, Failover: 30 * time.Second,
					},
					MonthlyCost: cost.Dollars(250),
				},
			},
		}
	}
	return &Problem{
		Components: comps,
		SLA:        cost.SLA{UptimePercent: slaPercent, Penalty: cost.Penalty{PerHour: cost.Dollars(200)}},
	}
}

package optimize

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"uptimebroker/internal/availability"
)

// Solver is one search algorithm over a Problem. Every registered
// solver uniformly supports context cancellation, WithProgress hooks
// and WithStrategyReport hooks. The exact strategies return identical
// Best/BestNoPenalty for the same problem (a property the equivalence
// tests enforce on randomized instances); the approximate lane's
// strategies (see ApproximateStrategy) instead certify how far their
// incumbent can be from optimal through the Result's Bound/Gap fields.
type Solver interface {
	// Name is the strategy's registry key, e.g. "pruned".
	Name() string

	// Solve runs the search. The context carries cancellation plus the
	// optional progress/strategy hooks.
	Solve(ctx context.Context, p *Problem) (Result, error)
}

// ConfigSolver is the config-aware face of a Solver: strategies that
// honor budgets and the approximate-lane knobs implement it, and
// SolveConfig dispatches through it when present. Solve remains the
// zero-config entry (equivalent to SolveConfig with a zero
// SolverConfig carrying the strategy name).
type ConfigSolver interface {
	Solver

	// SolveConfig runs the search under the given configuration. The
	// config's Strategy field is advisory here — dispatch already
	// happened — but the budget and knobs must be honored.
	SolveConfig(ctx context.Context, p *Problem, cfg SolverConfig) (Result, error)
}

// Built-in strategy names.
const (
	// StrategyExhaustive prices every one of the k^n candidates
	// (Equation 6 verbatim). The only strategy whose Evaluated always
	// equals the space size — pick it when the per-option report
	// matters more than latency.
	StrategyExhaustive = "exhaustive"

	// StrategyPruned is the Section III.C level search with the
	// trie-indexed superset check: SLA-meeting assignments clip all of
	// their supersets from later levels.
	StrategyPruned = "pruned"

	// StrategyBranchAndBound clips subtrees whose admissible cost
	// bound cannot beat the incumbent; effective even when the SLA is
	// unattainable and superset pruning never fires.
	StrategyBranchAndBound = "branch-and-bound"

	// StrategyParallelPruned is the pruned level search with each
	// level's walk sharded across GOMAXPROCS workers (work-stealing,
	// deterministic merge).
	StrategyParallelPruned = "parallel-pruned"

	// StrategyAuto picks a concrete strategy from the space size, the
	// budget and a cheap SLA-attainability probe; it is the default
	// everywhere a strategy is selectable.
	StrategyAuto = "auto"

	// StrategyBeam is the fixed-width level-order beam over the
	// incremental cursor: approximate, budget-aware, certifying its
	// optimality gap against the Pareto-relaxation bound (exactly
	// optimal when the width never dropped a candidate).
	StrategyBeam = "beam"

	// StrategyLDS is limited-discrepancy search around the greedy
	// assignment: approximate, budget-aware, strongest when the greedy
	// ordering is nearly right and a few corrections suffice.
	StrategyLDS = "lds"

	// StrategyBounded is weighted branch-and-bound with an
	// ε-admissible clip over the suffix Pareto-frontier bound: a
	// completed run certifies the incumbent within a (1+ε) factor of
	// optimal, typically much closer.
	StrategyBounded = "bounded"
)

// ApproximateStrategy reports whether the named strategy belongs to
// the anytime lane: its results are certified incumbents (Result's
// Approximate/Bound/Gap fields populated) rather than proven optima.
func ApproximateStrategy(name string) bool {
	switch name {
	case StrategyBeam, StrategyLDS, StrategyBounded:
		return true
	}
	return false
}

// solverFunc adapts a function to the Solver interface.
type solverFunc struct {
	name string
	fn   func(ctx context.Context, p *Problem) (Result, error)
}

func (s solverFunc) Name() string { return s.name }
func (s solverFunc) Solve(ctx context.Context, p *Problem) (Result, error) {
	return s.fn(ctx, p)
}

// configSolverFunc adapts a config-aware function to ConfigSolver.
type configSolverFunc struct {
	name string
	fn   func(ctx context.Context, p *Problem, cfg SolverConfig) (Result, error)
}

func (s configSolverFunc) Name() string { return s.name }
func (s configSolverFunc) Solve(ctx context.Context, p *Problem) (Result, error) {
	return s.fn(ctx, p, SolverConfig{})
}
func (s configSolverFunc) SolveConfig(ctx context.Context, p *Problem, cfg SolverConfig) (Result, error) {
	return s.fn(ctx, p, cfg)
}

// registry holds the named strategies. The built-ins register at init;
// RegisterSolver admits additional ones.
var registry = struct {
	sync.RWMutex
	m map[string]Solver
}{m: make(map[string]Solver)}

func init() {
	mustRegister(solverFunc{StrategyExhaustive, func(ctx context.Context, p *Problem) (Result, error) {
		return p.ExhaustiveContext(ctx)
	}})
	mustRegister(solverFunc{StrategyPruned, func(ctx context.Context, p *Problem) (Result, error) {
		return p.PrunedContext(ctx)
	}})
	mustRegister(solverFunc{StrategyBranchAndBound, func(ctx context.Context, p *Problem) (Result, error) {
		return p.BranchAndBoundContext(ctx)
	}})
	mustRegister(solverFunc{StrategyParallelPruned, func(ctx context.Context, p *Problem) (Result, error) {
		return p.ParallelPrunedContext(ctx, 0)
	}})
	mustRegister(configSolverFunc{StrategyBeam, func(ctx context.Context, p *Problem, cfg SolverConfig) (Result, error) {
		return p.beamSearch(ctx, cfg)
	}})
	mustRegister(configSolverFunc{StrategyLDS, func(ctx context.Context, p *Problem, cfg SolverConfig) (Result, error) {
		return p.ldsSearch(ctx, cfg)
	}})
	mustRegister(configSolverFunc{StrategyBounded, func(ctx context.Context, p *Problem, cfg SolverConfig) (Result, error) {
		return p.boundedSearch(ctx, cfg)
	}})
	mustRegister(autoSolver{})
}

func mustRegister(s Solver) {
	if err := RegisterSolver(s); err != nil {
		panic(err)
	}
}

// RegisterSolver adds a named strategy to the registry. Registered
// solvers must either be exact (same optimum as exhaustive) or mark
// their results Approximate with an admissible Bound, so the brokerage
// layers can tell a proven optimum from a certified incumbent.
// Duplicate or empty names are an error.
func RegisterSolver(s Solver) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("optimize: solver must have a name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[s.Name()]; dup {
		return fmt.Errorf("optimize: solver %q already registered", s.Name())
	}
	registry.m[s.Name()] = s
	return nil
}

// Strategies returns the registered strategy names, sorted.
func Strategies() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidStrategy reports whether name is registered ("" counts as
// valid: it means the caller's default, auto).
func ValidStrategy(name string) bool {
	if name == "" {
		return true
	}
	registry.RLock()
	defer registry.RUnlock()
	_, ok := registry.m[name]
	return ok
}

// solverByName resolves a registered strategy; "" resolves to auto.
func solverByName(name string) (Solver, error) {
	if name == "" {
		name = StrategyAuto
	}
	registry.RLock()
	s, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("optimize: unknown strategy %q (registered: %v)", name, Strategies())
	}
	return s, nil
}

// ResolveStrategy reports the concrete solver a Solve call with this
// strategy would run on the given problem: "" and "auto" resolve
// through the heuristic (which needs a valid problem shape), anything
// else echoes the registered name. Layers that can answer a request
// without a separate solver pass — the broker's fused streaming
// Recommend when the resolved strategy is exhaustive — use it to make
// that call before starting the enumeration.
func ResolveStrategy(p *Problem, strategy string) (string, error) {
	return ResolveConfig(p, SolverConfig{Strategy: strategy})
}

// ResolveConfig is ResolveStrategy for a full solver config: the auto
// heuristic additionally weighs the budget, the approximate-lane knobs
// and the space size against MaxCandidates.
func ResolveConfig(p *Problem, cfg SolverConfig) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	s, err := solverByName(cfg.Strategy)
	if err != nil {
		return "", err
	}
	if auto, ok := s.(autoSolver); ok {
		if err := p.validateShape(); err != nil {
			return "", err
		}
		s = auto.pickConfig(p, cfg)
	}
	return s.Name(), nil
}

// Solve runs the named strategy ("" or "auto" lets the heuristic
// pick) and stamps the result with the concrete strategy that ran. A
// WithStrategyReport hook on the context hears the resolved name
// before the enumeration starts, which is how the async job surface
// echoes the choice into live progress.
func Solve(ctx context.Context, p *Problem, strategy string) (Result, error) {
	return SolveConfig(ctx, p, SolverConfig{Strategy: strategy})
}

// SolveConfig is Solve for a full solver config: budgets and the
// approximate-lane knobs reach strategies that implement ConfigSolver
// directly. For exact strategies a wall budget becomes a context
// deadline; an explicit exact strategy cannot honor an evaluation cap
// and is refused (auto under an evaluation cap routes to the
// approximate lane instead whenever the cap could bind).
func SolveConfig(ctx context.Context, p *Problem, cfg SolverConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s, err := solverByName(cfg.Strategy)
	if err != nil {
		return Result{}, err
	}
	auto, isAuto := s.(autoSolver)
	if isAuto {
		if err := p.validateShape(); err != nil {
			return Result{}, err
		}
		s = auto.pickConfig(p, cfg)
	}
	reportStrategy(ctx, s.Name())
	var res Result
	if cs, ok := s.(ConfigSolver); ok {
		res, err = cs.SolveConfig(ctx, p, cfg)
	} else {
		if cfg.Budget.MaxEvaluations > 0 && !isAuto {
			return Result{}, fmt.Errorf("optimize: strategy %q is exact and cannot honor max_evaluations; use an approximate strategy or auto", s.Name())
		}
		if cfg.Budget.Wall > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, cfg.Budget.Wall)
			defer cancel()
		}
		res, err = s.Solve(ctx, p)
	}
	if err != nil {
		return Result{}, err
	}
	res.Strategy = s.Name()
	return res, nil
}

// Auto-selection thresholds: unattainable spaces at or below
// autoSmallSpace go exhaustive (the clip bookkeeping costs more than
// it saves on a handful of candidates); attainable spaces at or above
// autoParallelSpace get the sharded level search; under a wall budget,
// spaces above autoApproximateSpace go to the anytime lane (an exact
// run that large may not fit an arbitrary deadline, and the
// approximate lane degrades to a certified incumbent instead of an
// error when it doesn't).
const (
	autoSmallSpace       = 1 << 10
	autoParallelSpace    = 1 << 15
	autoApproximateSpace = 1 << 22
)

// autoSolver picks a concrete strategy from the problem's shape:
//
//   - SLA attainable, large space  → parallel-pruned
//   - SLA attainable, otherwise    → pruned (the paper's Section
//     III.C search, whose effort statistics the case study reports)
//   - unattainable, small space    → exhaustive (nothing to prune,
//     nothing worth bounding)
//   - unattainable, otherwise      → branch-and-bound (superset
//     pruning can never fire, but the cost bound still clips)
//
// Attainability is probed with a single evaluation of the per-
// component max-uptime assignment: the serial-chain uptime model is
// monotone in each component's reliability, so if even that candidate
// misses the SLA, nothing meets it.
type autoSolver struct{}

func (autoSolver) Name() string { return StrategyAuto }

func (a autoSolver) Solve(ctx context.Context, p *Problem) (Result, error) {
	if err := p.validateShape(); err != nil {
		return Result{}, err
	}
	s := a.pickConfig(p, SolverConfig{})
	res, err := s.Solve(ctx, p)
	if err != nil {
		return Result{}, err
	}
	res.Strategy = s.Name()
	return res, nil
}

// pickConfig resolves the concrete strategy for a shape-validated
// problem under a config. An explicit approximate knob expresses
// intent and picks its strategy outright; otherwise the approximate
// lane answers whenever the exact one cannot — the space exceeds
// MaxCandidates, an evaluation cap could bind, or a wall budget meets
// a space too large to promise an exact finish — with beam for
// attainable SLAs (superset pruning keeps its levels shallow) and
// bounded for unattainable ones (only the cost bound can clip).
// Within the exact lane the PR 1–8 rules are unchanged.
func (a autoSolver) pickConfig(p *Problem, cfg SolverConfig) Solver {
	switch {
	case cfg.BeamWidth > 0:
		return mustSolver(StrategyBeam)
	case cfg.MaxDiscrepancies > 0:
		return mustSolver(StrategyLDS)
	case cfg.Epsilon > 0:
		return mustSolver(StrategyBounded)
	}
	space := p.SpaceSize()
	approximate := space > MaxCandidates ||
		(cfg.Budget.MaxEvaluations > 0 && cfg.Budget.MaxEvaluations < int64(space)) ||
		(cfg.Budget.Wall > 0 && space > autoApproximateSpace)
	if approximate {
		if p.slaAttainable() {
			return mustSolver(StrategyBeam)
		}
		return mustSolver(StrategyBounded)
	}
	return a.pick(p)
}

// pick resolves the exact-lane strategy for an already-validated
// problem within the MaxCandidates cap.
func (autoSolver) pick(p *Problem) Solver {
	var name string
	switch {
	case !p.slaAttainable():
		name = StrategyBranchAndBound
		if p.SpaceSize() <= autoSmallSpace {
			name = StrategyExhaustive
		}
	case p.SpaceSize() >= autoParallelSpace:
		name = StrategyParallelPruned
	default:
		name = StrategyPruned
	}
	return mustSolver(name)
}

// mustSolver resolves a built-in by name; the built-ins cannot be
// unregistered, so failure is unreachable.
func mustSolver(name string) Solver {
	s, err := solverByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// slaAttainable reports whether any candidate meets the SLA, by
// evaluating the assignment that picks each component's most reliable
// variant (lowest single-cluster downtime).
func (p *Problem) slaAttainable() bool {
	a := make(Assignment, len(p.Components))
	for i, comp := range p.Components {
		bestDowntime := 0.0
		for v, variant := range comp.Variants {
			sys := availability.System{Clusters: []availability.Cluster{variant.Cluster}}
			d := sys.Downtime()
			if v == 0 || d < bestDowntime {
				a[i] = v
				bestDowntime = d
			}
		}
	}
	c, err := p.Evaluate(a)
	if err != nil {
		return false
	}
	return c.MeetsSLA(p.SLA)
}

package optimize

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"uptimebroker/internal/availability"
)

// Solver is one search algorithm over a Problem. Every registered
// solver is exact — identical Best/BestNoPenalty for the same problem
// (a property the equivalence tests enforce on randomized instances) —
// and uniformly supports context cancellation, WithProgress hooks and
// WithStrategyReport hooks; they differ only in how much of the space
// they touch and how they spend cores doing it.
type Solver interface {
	// Name is the strategy's registry key, e.g. "pruned".
	Name() string

	// Solve runs the search. The context carries cancellation plus the
	// optional progress/strategy hooks.
	Solve(ctx context.Context, p *Problem) (Result, error)
}

// Built-in strategy names.
const (
	// StrategyExhaustive prices every one of the k^n candidates
	// (Equation 6 verbatim). The only strategy whose Evaluated always
	// equals the space size — pick it when the per-option report
	// matters more than latency.
	StrategyExhaustive = "exhaustive"

	// StrategyPruned is the Section III.C level search with the
	// trie-indexed superset check: SLA-meeting assignments clip all of
	// their supersets from later levels.
	StrategyPruned = "pruned"

	// StrategyBranchAndBound clips subtrees whose admissible cost
	// bound cannot beat the incumbent; effective even when the SLA is
	// unattainable and superset pruning never fires.
	StrategyBranchAndBound = "branch-and-bound"

	// StrategyParallelPruned is the pruned level search with each
	// level's walk sharded across GOMAXPROCS workers (work-stealing,
	// deterministic merge).
	StrategyParallelPruned = "parallel-pruned"

	// StrategyAuto picks a concrete strategy from the space size and a
	// cheap SLA-attainability probe; it is the default everywhere a
	// strategy is selectable.
	StrategyAuto = "auto"
)

// solverFunc adapts a function to the Solver interface.
type solverFunc struct {
	name string
	fn   func(ctx context.Context, p *Problem) (Result, error)
}

func (s solverFunc) Name() string { return s.name }
func (s solverFunc) Solve(ctx context.Context, p *Problem) (Result, error) {
	return s.fn(ctx, p)
}

// registry holds the named strategies. The built-ins register at init;
// RegisterSolver admits additional ones.
var registry = struct {
	sync.RWMutex
	m map[string]Solver
}{m: make(map[string]Solver)}

func init() {
	mustRegister(solverFunc{StrategyExhaustive, func(ctx context.Context, p *Problem) (Result, error) {
		return p.ExhaustiveContext(ctx)
	}})
	mustRegister(solverFunc{StrategyPruned, func(ctx context.Context, p *Problem) (Result, error) {
		return p.PrunedContext(ctx)
	}})
	mustRegister(solverFunc{StrategyBranchAndBound, func(ctx context.Context, p *Problem) (Result, error) {
		return p.BranchAndBoundContext(ctx)
	}})
	mustRegister(solverFunc{StrategyParallelPruned, func(ctx context.Context, p *Problem) (Result, error) {
		return p.ParallelPrunedContext(ctx, 0)
	}})
	mustRegister(autoSolver{})
}

func mustRegister(s Solver) {
	if err := RegisterSolver(s); err != nil {
		panic(err)
	}
}

// RegisterSolver adds a named strategy to the registry. Registered
// solvers must be exact (same optimum as exhaustive) for the brokerage
// layers to treat strategy purely as a performance knob. Duplicate or
// empty names are an error.
func RegisterSolver(s Solver) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("optimize: solver must have a name")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[s.Name()]; dup {
		return fmt.Errorf("optimize: solver %q already registered", s.Name())
	}
	registry.m[s.Name()] = s
	return nil
}

// Strategies returns the registered strategy names, sorted.
func Strategies() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidStrategy reports whether name is registered ("" counts as
// valid: it means the caller's default, auto).
func ValidStrategy(name string) bool {
	if name == "" {
		return true
	}
	registry.RLock()
	defer registry.RUnlock()
	_, ok := registry.m[name]
	return ok
}

// solverByName resolves a registered strategy; "" resolves to auto.
func solverByName(name string) (Solver, error) {
	if name == "" {
		name = StrategyAuto
	}
	registry.RLock()
	s, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("optimize: unknown strategy %q (registered: %v)", name, Strategies())
	}
	return s, nil
}

// ResolveStrategy reports the concrete solver a Solve call with this
// strategy would run on the given problem: "" and "auto" resolve
// through the heuristic (which needs a valid problem), anything else
// echoes the registered name. Layers that can answer a request
// without a separate solver pass — the broker's fused streaming
// Recommend when the resolved strategy is exhaustive — use it to make
// that call before starting the enumeration.
func ResolveStrategy(p *Problem, strategy string) (string, error) {
	s, err := solverByName(strategy)
	if err != nil {
		return "", err
	}
	if auto, ok := s.(autoSolver); ok {
		if err := p.Validate(); err != nil {
			return "", err
		}
		s = auto.pick(p)
	}
	return s.Name(), nil
}

// Solve runs the named strategy ("" or "auto" lets the heuristic
// pick) and stamps the result with the concrete strategy that ran. A
// WithStrategyReport hook on the context hears the resolved name
// before the enumeration starts, which is how the async job surface
// echoes the choice into live progress.
func Solve(ctx context.Context, p *Problem, strategy string) (Result, error) {
	s, err := solverByName(strategy)
	if err != nil {
		return Result{}, err
	}
	if auto, ok := s.(autoSolver); ok {
		if err := p.Validate(); err != nil {
			return Result{}, err
		}
		s = auto.pick(p)
	}
	reportStrategy(ctx, s.Name())
	res, err := s.Solve(ctx, p)
	if err != nil {
		return Result{}, err
	}
	res.Strategy = s.Name()
	return res, nil
}

// Auto-selection thresholds: unattainable spaces at or below
// autoSmallSpace go exhaustive (the clip bookkeeping costs more than
// it saves on a handful of candidates); attainable spaces at or above
// autoParallelSpace get the sharded level search.
const (
	autoSmallSpace    = 1 << 10
	autoParallelSpace = 1 << 15
)

// autoSolver picks a concrete strategy from the problem's shape:
//
//   - SLA attainable, large space  → parallel-pruned
//   - SLA attainable, otherwise    → pruned (the paper's Section
//     III.C search, whose effort statistics the case study reports)
//   - unattainable, small space    → exhaustive (nothing to prune,
//     nothing worth bounding)
//   - unattainable, otherwise      → branch-and-bound (superset
//     pruning can never fire, but the cost bound still clips)
//
// Attainability is probed with a single evaluation of the per-
// component max-uptime assignment: the serial-chain uptime model is
// monotone in each component's reliability, so if even that candidate
// misses the SLA, nothing meets it.
type autoSolver struct{}

func (autoSolver) Name() string { return StrategyAuto }

func (a autoSolver) Solve(ctx context.Context, p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	s := a.pick(p)
	res, err := s.Solve(ctx, p)
	if err != nil {
		return Result{}, err
	}
	res.Strategy = s.Name()
	return res, nil
}

// pick resolves the concrete strategy for an already-validated
// problem.
func (autoSolver) pick(p *Problem) Solver {
	var name string
	switch {
	case !p.slaAttainable():
		name = StrategyBranchAndBound
		if p.SpaceSize() <= autoSmallSpace {
			name = StrategyExhaustive
		}
	case p.SpaceSize() >= autoParallelSpace:
		name = StrategyParallelPruned
	default:
		name = StrategyPruned
	}
	s, err := solverByName(name)
	if err != nil {
		// The built-ins cannot be unregistered; this is unreachable.
		panic(err)
	}
	return s
}

// slaAttainable reports whether any candidate meets the SLA, by
// evaluating the assignment that picks each component's most reliable
// variant (lowest single-cluster downtime).
func (p *Problem) slaAttainable() bool {
	a := make(Assignment, len(p.Components))
	for i, comp := range p.Components {
		bestDowntime := 0.0
		for v, variant := range comp.Variants {
			sys := availability.System{Clusters: []availability.Cluster{variant.Cluster}}
			d := sys.Downtime()
			if v == 0 || d < bestDowntime {
				a[i] = v
				bestDowntime = d
			}
		}
	}
	c, err := p.Evaluate(a)
	if err != nil {
		return false
	}
	return c.MeetsSLA(p.SLA)
}

package jobstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"uptimebroker/internal/obs"
)

// On-disk layout inside the data directory.
const (
	snapshotName = "jobs.snapshot.json"
	walName      = "jobs.wal"

	// fileSnapshotVersion guards the snapshot format.
	fileSnapshotVersion = 1
)

// fileSnapshot is the on-disk snapshot envelope.
type fileSnapshot struct {
	Version int `json:"version"`
	Snapshot
}

// File is the durable Backend: a JSON-lines WAL appended on every
// event, compacted into an atomically renamed snapshot file. Replay
// reads the snapshot then folds the WAL on top; a torn final WAL
// line (the signature of a crash mid-append) is tolerated and
// truncates the replay there.
//
// By default appends reach the OS page cache and survive a process
// crash but not a power loss; WithFsync upgrades every append (and
// snapshot install) to an fsync for power-loss durability at a
// per-append latency cost the package benchmarks quantify, and
// WithGroupCommit keeps the same durability while coalescing
// concurrent appends into shared flushes.
type File struct {
	mu    sync.Mutex
	dir   string
	wal   *os.File
	st    *state
	fsync bool
	group bool

	// writeSeq counts records written to the WAL, under mu; the group
	// committer flushes up to a high-water mark of it.
	writeSeq uint64

	// gc is the group-commit gate: appends park on cond until a flush
	// covers their write, and the first parked append leads the next
	// flush. flushedSeq advances only on successful flushes; a failed
	// flush instead records failSeq/failErr for the writes it covered,
	// so a waiter whose bytes an earlier flush already made durable
	// can never pick up a later round's error. flushing serializes
	// leaders.
	gc struct {
		sync.Mutex
		cond       sync.Cond
		flushing   bool
		flushedSeq uint64
		failSeq    uint64
		failErr    error
	}

	// appendSeconds/fsyncSeconds time whole appends and individual WAL
	// flushes; nil unless WithMetricsRegistry attached a registry.
	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
}

// FileOption customizes OpenFile.
type FileOption func(*File)

// WithFsync makes every journal append fsync the WAL before
// returning, and every compaction fsync the snapshot before the
// rename commits it, so acknowledged events survive a power loss —
// not just a process crash. Expect each append to cost a disk flush;
// BenchmarkFileAppend reports the difference.
func WithFsync() FileOption {
	return func(f *File) { f.fsync = true }
}

// WithGroupCommit gives appends the same power-loss durability as
// WithFsync — no Append returns before its bytes are flushed — but
// coalesces concurrent appends into one flush (group commit): the
// first append to need a flush leads it, everything written in the
// meantime rides along, and later appends wait for the next round.
// Under concurrent load this recovers most of the nosync throughput
// at fsync durability (one disk flush amortizes over the whole
// batch); a lone appender degrades to WithFsync behavior. It
// supersedes WithFsync when both are set.
func WithGroupCommit() FileOption {
	return func(f *File) { f.group = true }
}

// WithMetricsRegistry publishes WAL latency histograms on reg:
// jobstore_wal_append_seconds times whole appends (including any wait
// for a group-commit flush), jobstore_wal_fsync_seconds times the
// individual disk flushes — under group commit one flush covers many
// appends, which the two distributions together make visible.
func WithMetricsRegistry(reg *obs.Registry) FileOption {
	return func(f *File) {
		if reg == nil {
			return
		}
		buckets := obs.ExponentialBuckets(1e-6, 4, 11)
		f.appendSeconds = reg.Histogram("jobstore_wal_append_seconds",
			"Latency of WAL appends, including group-commit waits.", buckets)
		f.fsyncSeconds = reg.Histogram("jobstore_wal_fsync_seconds",
			"Latency of WAL fsync calls.", buckets)
	}
}

// OpenFile opens (creating if needed) the data directory and recovers
// its contents. The returned backend holds the WAL open for appending
// until Close.
func OpenFile(dir string, opts ...FileOption) (*File, error) {
	if dir == "" {
		return nil, errors.New("jobstore: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: creating data dir: %w", err)
	}

	st := newState()
	snapPath := filepath.Join(dir, snapshotName)
	if f, err := os.Open(snapPath); err == nil {
		var snap fileSnapshot
		decodeErr := json.NewDecoder(f).Decode(&snap)
		_ = f.Close()
		if decodeErr != nil {
			return nil, fmt.Errorf("jobstore: decoding snapshot %s: %w", snapPath, decodeErr)
		}
		if snap.Version != fileSnapshotVersion {
			return nil, fmt.Errorf("jobstore: snapshot version %d, want %d", snap.Version, fileSnapshotVersion)
		}
		st = fromSnapshot(snap.Snapshot)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("jobstore: opening snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walName)
	if err := replayWAL(walPath, st); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: opening WAL: %w", err)
	}
	f := &File{dir: dir, wal: wal, st: st}
	f.gc.cond.L = &f.gc.Mutex
	for _, opt := range opts {
		opt(f)
	}
	return f, nil
}

// replayWAL folds every decodable WAL line into st. Decoding stops at
// the first malformed line: anything after a torn write is garbage by
// definition, and losing the torn tail is exactly the durability the
// journal promises.
func replayWAL(path string, st *state) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: opening WAL: %w", err)
	}
	defer func() { _ = f.Close() }()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil // torn tail: stop replay here
		}
		st.apply(ev)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("jobstore: reading WAL: %w", err)
	}
	return nil
}

// Append implements Backend: one JSON line per event.
func (f *File) Append(ev Event) error {
	if f.appendSeconds == nil {
		return f.append(ev)
	}
	start := time.Now()
	err := f.append(ev)
	f.appendSeconds.ObserveSeconds(time.Since(start).Seconds())
	return err
}

func (f *File) append(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("jobstore: encoding event: %w", err)
	}
	line = append(line, '\n')

	f.mu.Lock()
	if f.wal == nil {
		f.mu.Unlock()
		return errors.New("jobstore: backend closed")
	}
	if _, err := f.wal.Write(line); err != nil {
		f.mu.Unlock()
		return fmt.Errorf("jobstore: appending event: %w", err)
	}
	f.writeSeq++
	seq := f.writeSeq
	if f.fsync && !f.group {
		if err := f.syncWAL(f.wal); err != nil {
			f.mu.Unlock()
			return fmt.Errorf("jobstore: syncing WAL: %w", err)
		}
	}
	f.st.apply(ev)
	f.mu.Unlock()

	if f.group {
		return f.awaitFlush(seq)
	}
	return nil
}

// syncWAL flushes the WAL, timing the call when instrumented.
func (f *File) syncWAL(wal *os.File) error {
	if f.fsyncSeconds == nil {
		return wal.Sync()
	}
	start := time.Now()
	err := wal.Sync()
	f.fsyncSeconds.ObserveSeconds(time.Since(start).Seconds())
	return err
}

// awaitFlush blocks until a WAL flush covers write seq — leading the
// flush itself when no one else is mid-flush. While one leader is in
// Sync, later appends keep writing and parking; the next leader's
// single Sync then covers the whole accumulated batch, which is the
// group-commit coalescing.
func (f *File) awaitFlush(seq uint64) error {
	g := &f.gc
	g.Lock()
	defer g.Unlock()
	for {
		// A successful flush covering seq wins outright — even if a
		// later round failed, these bytes are already on disk.
		if g.flushedSeq >= seq {
			return nil
		}
		if g.failSeq >= seq {
			return g.failErr
		}
		if !g.flushing {
			g.flushing = true
			g.Unlock()

			// Snapshot the covered high-water mark before syncing:
			// everything written up to here is on disk once Sync
			// returns.
			f.mu.Lock()
			high := f.writeSeq
			wal := f.wal
			f.mu.Unlock()
			var err error
			if wal == nil {
				err = errors.New("jobstore: backend closed")
			} else if serr := f.syncWAL(wal); serr != nil {
				err = fmt.Errorf("jobstore: syncing WAL: %w", serr)
			}

			g.Lock()
			g.flushing = false
			if err == nil {
				if high > g.flushedSeq {
					g.flushedSeq = high
				}
			} else if high > g.failSeq {
				g.failSeq = high
				g.failErr = err
			}
			g.cond.Broadcast()
			continue
		}
		g.cond.Wait()
	}
}

// Compact implements Backend: write the folded state to a temp file
// in the same directory, rename it into place, then truncate the
// WAL. The rename is the commit point — a crash between rename and
// truncate replays WAL events that the snapshot already contains,
// which the fold absorbs (replay is idempotent per event). The
// backend's own mutex orders it against concurrent Appends, so the
// caller holds no lock across this disk work.
func (f *File) Compact() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wal == nil {
		return errors.New("jobstore: backend closed")
	}
	snap := f.st.snapshot()

	tmp, err := os.CreateTemp(f.dir, ".jobs-snapshot-*.json")
	if err != nil {
		return fmt.Errorf("jobstore: creating temp snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer func() { _ = os.Remove(tmpName) }() // no-op after rename
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(fileSnapshot{Version: fileSnapshotVersion, Snapshot: snap}); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("jobstore: encoding snapshot: %w", err)
	}
	if f.fsync || f.group {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()
			return fmt.Errorf("jobstore: syncing snapshot: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobstore: closing temp snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(f.dir, snapshotName)); err != nil {
		return fmt.Errorf("jobstore: installing snapshot: %w", err)
	}

	if err := f.wal.Truncate(0); err != nil {
		return fmt.Errorf("jobstore: truncating WAL: %w", err)
	}
	if _, err := f.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("jobstore: rewinding WAL: %w", err)
	}
	return nil
}

// Load implements Backend.
func (f *File) Load() (Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st.snapshot(), nil
}

// Close implements Backend.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wal == nil {
		return nil
	}
	err := f.wal.Close()
	f.wal = nil
	return err
}

package jobstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"uptimebroker/internal/faultfs"
	"uptimebroker/internal/obs"
)

// On-disk layout inside the data directory.
const (
	snapshotName = "jobs.snapshot.json"
	walName      = "jobs.wal"

	// fileSnapshotVersion guards the snapshot format.
	fileSnapshotVersion = 1
)

// ErrDegraded is the fail-stop latch: once any WAL write, fsync or
// compaction disk operation fails, the backend refuses all further
// mutations and every Append/Compact returns an error wrapping this
// sentinel (alongside the original cause). Appending past a partial
// write would interleave new records after a torn one, so the only
// safe behavior is read-only until an operator restarts onto healthy
// storage. The in-memory state remains consistent and readable.
var ErrDegraded = errors.New("jobstore: storage degraded; store is read-only")

// fileSnapshot is the on-disk snapshot envelope.
type fileSnapshot struct {
	Version int `json:"version"`
	Snapshot
}

// File is the durable Backend: a JSON-lines WAL appended on every
// event, compacted into an atomically renamed snapshot file. Replay
// reads the snapshot then folds the WAL on top; a torn final WAL
// line (the signature of a crash mid-append) is tolerated and
// truncates the replay there.
//
// By default appends reach the OS page cache and survive a process
// crash but not a power loss; WithFsync upgrades every append (and
// snapshot install) to an fsync for power-loss durability at a
// per-append latency cost the package benchmarks quantify, and
// WithGroupCommit keeps the same durability while coalescing
// concurrent appends into shared flushes.
//
// All filesystem access goes through a faultfs.FS (the real one by
// default; WithFS injects a simulated or faulty one), and any
// write/sync error latches the backend into the ErrDegraded
// read-only state.
type File struct {
	mu    sync.Mutex
	dir   string
	fs    faultfs.FS
	wal   faultfs.File
	st    *state
	fsync bool
	group bool

	// degraded, once set, is returned by every subsequent mutation. It
	// wraps ErrDegraded and the original disk error. Guarded by mu.
	degraded error

	// writeSeq counts records written to the WAL, under mu; the group
	// committer flushes up to a high-water mark of it.
	writeSeq uint64

	// gc is the group-commit gate: appends park on cond until a flush
	// covers their write, and the first parked append leads the next
	// flush. flushedSeq advances only on successful flushes; a failed
	// flush instead records failSeq/failErr for the writes it covered,
	// so a waiter whose bytes an earlier flush already made durable
	// can never pick up a later round's error. flushing serializes
	// leaders.
	gc struct {
		sync.Mutex
		cond       sync.Cond
		flushing   bool
		flushedSeq uint64
		failSeq    uint64
		failErr    error
	}

	// appendSeconds/fsyncSeconds time whole appends and individual WAL
	// flushes; nil unless WithMetricsRegistry attached a registry.
	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
}

// FileOption customizes OpenFile.
type FileOption func(*File)

// WithFsync makes every journal append fsync the WAL before
// returning, and every compaction fsync the snapshot before the
// rename commits it, so acknowledged events survive a power loss —
// not just a process crash. Expect each append to cost a disk flush;
// BenchmarkFileAppend reports the difference.
func WithFsync() FileOption {
	return func(f *File) { f.fsync = true }
}

// WithGroupCommit gives appends the same power-loss durability as
// WithFsync — no Append returns before its bytes are flushed — but
// coalesces concurrent appends into one flush (group commit): the
// first append to need a flush leads it, everything written in the
// meantime rides along, and later appends wait for the next round.
// Under concurrent load this recovers most of the nosync throughput
// at fsync durability (one disk flush amortizes over the whole
// batch); a lone appender degrades to WithFsync behavior. It
// supersedes WithFsync when both are set.
func WithGroupCommit() FileOption {
	return func(f *File) { f.group = true }
}

// WithFS routes all of the backend's filesystem access through fsys
// instead of the real disk. This is the fault-injection seam: tests
// hand in a faultfs.Mem (crash simulation) or faultfs.Injector
// (scripted errors); production code omits it.
func WithFS(fsys faultfs.FS) FileOption {
	return func(f *File) {
		if fsys != nil {
			f.fs = fsys
		}
	}
}

// WithMetricsRegistry publishes WAL latency histograms on reg:
// jobstore_wal_append_seconds times whole appends (including any wait
// for a group-commit flush), jobstore_wal_fsync_seconds times the
// individual disk flushes — under group commit one flush covers many
// appends, which the two distributions together make visible.
func WithMetricsRegistry(reg *obs.Registry) FileOption {
	return func(f *File) {
		if reg == nil {
			return
		}
		buckets := obs.ExponentialBuckets(1e-6, 4, 11)
		f.appendSeconds = reg.Histogram("jobstore_wal_append_seconds",
			"Latency of WAL appends, including group-commit waits.", buckets)
		f.fsyncSeconds = reg.Histogram("jobstore_wal_fsync_seconds",
			"Latency of WAL fsync calls.", buckets)
	}
}

// OpenFile opens (creating if needed) the data directory and recovers
// its contents. The returned backend holds the WAL open for appending
// until Close.
func OpenFile(dir string, opts ...FileOption) (*File, error) {
	if dir == "" {
		return nil, errors.New("jobstore: empty data directory")
	}
	f := &File{dir: dir, fs: faultfs.OS()}
	f.gc.cond.L = &f.gc.Mutex
	for _, opt := range opts {
		opt(f)
	}

	if err := f.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: creating data dir: %w", err)
	}

	st := newState()
	snapPath := filepath.Join(dir, snapshotName)
	if sf, err := f.fs.OpenFile(snapPath, os.O_RDONLY, 0); err == nil {
		var snap fileSnapshot
		decodeErr := json.NewDecoder(sf).Decode(&snap)
		_ = sf.Close()
		if decodeErr != nil {
			return nil, fmt.Errorf("jobstore: decoding snapshot %s: %w", snapPath, decodeErr)
		}
		if snap.Version != fileSnapshotVersion {
			return nil, fmt.Errorf("jobstore: snapshot version %d, want %d", snap.Version, fileSnapshotVersion)
		}
		st = fromSnapshot(snap.Snapshot)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("jobstore: opening snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walName)
	if err := replayWAL(f.fs, walPath, st); err != nil {
		return nil, err
	}
	wal, err := f.fs.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: opening WAL: %w", err)
	}
	f.wal = wal
	f.st = st
	return f, nil
}

// replayWAL folds every decodable WAL line into st. Decoding stops at
// the first malformed line: anything after a torn write is garbage by
// definition, and losing the torn tail is exactly the durability the
// journal promises.
func replayWAL(fsys faultfs.FS, path string, st *state) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobstore: opening WAL: %w", err)
	}
	defer func() { _ = f.Close() }()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil // torn tail: stop replay here
		}
		st.apply(ev)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("jobstore: reading WAL: %w", err)
	}
	return nil
}

// Degraded returns the latched degraded error, or nil while the
// backend is healthy. Once non-nil it never clears: recovery is a
// restart onto healthy storage.
func (f *File) Degraded() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.degraded
}

// latchLocked records the first disk failure and flips the backend
// read-only. The returned (and stored) error wraps both the original
// cause and ErrDegraded, so errors.Is works against either. Callers
// hold f.mu.
func (f *File) latchLocked(op string, cause error) error {
	if f.degraded != nil {
		return f.degraded
	}
	f.degraded = fmt.Errorf("jobstore: %s: %w; %w", op, cause, ErrDegraded)
	return f.degraded
}

// Append implements Backend: one JSON line per event.
func (f *File) Append(ev Event) error {
	if f.appendSeconds == nil {
		return f.append(ev)
	}
	start := time.Now()
	err := f.append(ev)
	f.appendSeconds.ObserveSeconds(time.Since(start).Seconds())
	return err
}

func (f *File) append(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("jobstore: encoding event: %w", err)
	}
	line = append(line, '\n')

	f.mu.Lock()
	if f.wal == nil {
		f.mu.Unlock()
		return errors.New("jobstore: backend closed")
	}
	if f.degraded != nil {
		err := f.degraded
		f.mu.Unlock()
		return err
	}
	if _, err := f.wal.Write(line); err != nil {
		// A failed write may have left a partial line; appending after
		// it would corrupt every later record. Latch fail-stop.
		err = f.latchLocked("appending event", err)
		f.mu.Unlock()
		return err
	}
	f.writeSeq++
	seq := f.writeSeq
	if f.fsync && !f.group {
		if err := f.syncWAL(f.wal); err != nil {
			// The kernel may have dropped the unflushed pages; nothing
			// written from here on is trustworthy. Latch fail-stop.
			err = f.latchLocked("syncing WAL", err)
			f.mu.Unlock()
			return err
		}
	}
	f.st.apply(ev)
	f.mu.Unlock()

	if f.group {
		return f.awaitFlush(seq)
	}
	return nil
}

// syncWAL flushes the WAL, timing the call when instrumented.
func (f *File) syncWAL(wal faultfs.File) error {
	if f.fsyncSeconds == nil {
		return wal.Sync()
	}
	start := time.Now()
	err := wal.Sync()
	f.fsyncSeconds.ObserveSeconds(time.Since(start).Seconds())
	return err
}

// awaitFlush blocks until a WAL flush covers write seq — leading the
// flush itself when no one else is mid-flush. While one leader is in
// Sync, later appends keep writing and parking; the next leader's
// single Sync then covers the whole accumulated batch, which is the
// group-commit coalescing. A failed flush latches the backend
// degraded and wakes every parked writer with the error.
func (f *File) awaitFlush(seq uint64) error {
	g := &f.gc
	g.Lock()
	defer g.Unlock()
	for {
		// A successful flush covering seq wins outright — even if a
		// later round failed, these bytes are already on disk.
		if g.flushedSeq >= seq {
			return nil
		}
		if g.failSeq >= seq {
			return g.failErr
		}
		if !g.flushing {
			g.flushing = true
			g.Unlock()

			// Snapshot the covered high-water mark before syncing:
			// everything written up to here is on disk once Sync
			// returns.
			f.mu.Lock()
			high := f.writeSeq
			wal := f.wal
			deg := f.degraded
			f.mu.Unlock()
			var err error
			if deg != nil {
				err = deg
			} else if wal == nil {
				err = errors.New("jobstore: backend closed")
			} else if serr := f.syncWAL(wal); serr != nil {
				f.mu.Lock()
				err = f.latchLocked("syncing WAL", serr)
				f.mu.Unlock()
			}

			g.Lock()
			g.flushing = false
			if err == nil {
				if high > g.flushedSeq {
					g.flushedSeq = high
				}
			} else if high > g.failSeq {
				g.failSeq = high
				g.failErr = err
			}
			g.cond.Broadcast()
			continue
		}
		g.cond.Wait()
	}
}

// Compact implements Backend: write the folded state to a temp file
// in the same directory, rename it into place, fsync the directory so
// the rename survives power loss, then truncate and re-fsync the WAL.
// The durable rename is the commit point — a crash between rename and
// truncate replays WAL events that the snapshot already contains,
// which the fold absorbs (replay is idempotent per event), and a
// crash before the directory fsync simply leaves the old snapshot
// governing, with the WAL still intact behind it. The backend's own
// mutex orders it against concurrent Appends, so the caller holds no
// lock across this disk work.
func (f *File) Compact() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wal == nil {
		return errors.New("jobstore: backend closed")
	}
	if f.degraded != nil {
		return f.degraded
	}
	snap := f.st.snapshot()

	tmp, err := f.fs.CreateTemp(f.dir, ".jobs-snapshot-*.json")
	if err != nil {
		return f.latchLocked("creating temp snapshot", err)
	}
	tmpName := tmp.Name()
	defer func() { _ = f.fs.Remove(tmpName) }() // no-op after rename
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(fileSnapshot{Version: fileSnapshotVersion, Snapshot: snap}); err != nil {
		_ = tmp.Close()
		return f.latchLocked("encoding snapshot", err)
	}
	if f.fsync || f.group {
		if err := tmp.Sync(); err != nil {
			_ = tmp.Close()
			return f.latchLocked("syncing snapshot", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return f.latchLocked("closing temp snapshot", err)
	}
	if err := f.fs.Rename(tmpName, filepath.Join(f.dir, snapshotName)); err != nil {
		return f.latchLocked("installing snapshot", err)
	}
	if f.fsync || f.group {
		// POSIX renames are durable only once the parent directory's
		// entry reaches disk; without this, power loss after the WAL
		// truncate below could resurrect the old snapshot with the new
		// WAL gone.
		if err := f.fs.SyncDir(f.dir); err != nil {
			return f.latchLocked("syncing data dir", err)
		}
	}

	if err := f.wal.Truncate(0); err != nil {
		return f.latchLocked("truncating WAL", err)
	}
	if f.fsync || f.group {
		// Make the truncation itself durable; otherwise a crash can
		// replay pre-compaction records on top of the new snapshot's
		// future appends.
		if err := f.syncWAL(f.wal); err != nil {
			return f.latchLocked("syncing truncated WAL", err)
		}
	}
	if _, err := f.wal.Seek(0, io.SeekStart); err != nil {
		return f.latchLocked("rewinding WAL", err)
	}
	return nil
}

// Load implements Backend.
func (f *File) Load() (Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st.snapshot(), nil
}

// Close implements Backend.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wal == nil {
		return nil
	}
	err := f.wal.Close()
	f.wal = nil
	return err
}

package jobstore

import "sync"

// Memory is an in-process Backend: the journal folds straight into a
// record map and never touches disk. It gives tests (and embedders
// that want restart-shaped recovery semantics without files) the
// exact replay behavior of the file backend.
type Memory struct {
	mu sync.Mutex
	st *state
}

// NewMemory returns an empty in-memory backend.
func NewMemory() *Memory {
	return &Memory{st: newState()}
}

// Append implements Backend.
func (m *Memory) Append(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.st.apply(ev)
	return nil
}

// Compact implements Backend; the in-memory journal is always
// compact already.
func (m *Memory) Compact() error { return nil }

// Load implements Backend.
func (m *Memory) Load() (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.snapshot(), nil
}

// Close implements Backend; the journal stays readable afterwards so
// a successor store can recover from it.
func (m *Memory) Close() error { return nil }

package jobstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"uptimebroker/internal/faultfs"
)

// The crash-enumeration suite runs a fixed append/compact workload on
// the simulated disk, halts it at every mutation boundary (every
// write, fsync, rename, truncate and directory fsync the backend
// performs), derives the post-power-loss filesystem under every
// CrashMode, reopens, and asserts the recovery invariant:
//
//	recovered state == fold of events[0:m] for some m,
//	with m >= number of acknowledged events when fsync is on.
//
// "No acknowledged event lost" is the lower bound on m; "no torn
// record surfaces" and "snapshot rename is atomic" both follow from
// the recovered state matching an exact prefix fold — garbage or a
// half-installed snapshot matches no prefix.

// workloadEvents is the deterministic event sequence. Times are fixed
// so every run is byte-identical (the enumeration depends on it).
func workloadEvents() []Event {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	at := func(i int) time.Time { return t0.Add(time.Duration(i) * time.Second) }
	return []Event{
		{Type: EventSubmitted, Time: at(0), ID: "j1", Seq: 1, Kind: "recommend", Payload: json.RawMessage(`{"n":1}`)},
		{Type: EventStarted, Time: at(1), ID: "j1"},
		{Type: EventProgress, Time: at(2), ID: "j1", Evaluated: 10, SpaceSize: 100, Strategy: "exact"},
		{Type: EventSubmitted, Time: at(3), ID: "j2", Seq: 2, Kind: "pareto", Payload: json.RawMessage(`{"n":2}`)},
		{Type: EventFinished, Time: at(4), ID: "j1", State: StateDone, Result: json.RawMessage(`{"ok":true}`)},
		{Type: EventStarted, Time: at(5), ID: "j2"},
		{Type: EventFinished, Time: at(6), ID: "j2", State: StateFailed, Error: "boom", ErrClass: "internal"},
		{Type: EventSwept, Time: at(7), ID: "j1"},
		{Type: EventSubmitted, Time: at(8), ID: "j3", Seq: 3, Kind: "recommend", Payload: json.RawMessage(`{"n":3}`)},
		{Type: EventStarted, Time: at(9), ID: "j3"},
		{Type: EventFinished, Time: at(10), ID: "j3", State: StateCancelled, Error: "cancelled", ErrClass: "cancelled"},
	}
}

// compactAfter marks the workload indices followed by a Compact, so
// the walk crosses snapshot-install and WAL-truncate boundaries with
// both live and swept records in play.
var compactAfter = map[int]bool{4: true, 8: true}

// runCrashWorkload drives the workload until the first error (the
// injected crash halts everything after it). acked counts appends
// that returned nil — the events the caller was told are durable —
// and attempted counts appends that were issued at all.
func runCrashWorkload(fsys faultfs.FS, opts []FileOption) (acked, attempted int, err error) {
	f, err := OpenFile("data", append([]FileOption{WithFS(fsys)}, opts...)...)
	if err != nil {
		return 0, 0, err
	}
	for i, ev := range workloadEvents() {
		attempted = i + 1
		if err := f.Append(ev); err != nil {
			return acked, attempted, err
		}
		acked = i + 1
		if compactAfter[i] {
			if err := f.Compact(); err != nil {
				return acked, attempted, err
			}
		}
	}
	return acked, attempted, f.Close()
}

// foldPrefix is the reference model: the pure fold of the first m
// workload events, bypassing the disk entirely.
func foldPrefix(m int) Snapshot {
	st := newState()
	for _, ev := range workloadEvents()[:m] {
		st.apply(ev)
	}
	return st.snapshot()
}

// assertRecoversPrefix reopens the crash image and checks the
// recovered state against every admissible prefix fold.
func assertRecoversPrefix(t *testing.T, img *faultfs.Mem, minM, maxM int, ctx string) {
	t.Helper()
	f, err := OpenFile("data", WithFS(img))
	if err != nil {
		t.Fatalf("%s: reopening after crash: %v", ctx, err)
	}
	snap, err := f.Load()
	_ = f.Close()
	if err != nil {
		t.Fatalf("%s: loading after crash: %v", ctx, err)
	}
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("%s: marshaling snapshot: %v", ctx, err)
	}
	for m := minM; m <= maxM; m++ {
		want, err := json.Marshal(foldPrefix(m))
		if err != nil {
			t.Fatalf("fold prefix %d: %v", m, err)
		}
		if bytes.Equal(got, want) {
			return
		}
	}
	t.Fatalf("%s: recovered state matches no prefix fold in [%d,%d]\nrecovered: %s",
		ctx, minM, maxM, got)
}

// TestCrashEnumerationDurable walks every crash point under every
// crash mode with power-loss durability on (per-append fsync, and the
// group-commit variant which promises the same). At every point the
// recovered state must be a prefix fold that includes every
// acknowledged event: fsync-on acks are never lost, torn records are
// never replayed, and the snapshot rename (with its parent-directory
// fsync) is atomic.
func TestCrashEnumerationDurable(t *testing.T) {
	variants := []struct {
		name string
		opts []FileOption
	}{
		{"fsync", []FileOption{WithFsync()}},
		{"group", []FileOption{WithGroupCommit()}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			// Fault-free run: establishes the boundary count and that the
			// workload itself is sound.
			mem := faultfs.NewMem()
			inj := faultfs.NewInjector(mem)
			acked, _, err := runCrashWorkload(inj, v.opts)
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			if acked != len(workloadEvents()) {
				t.Fatalf("fault-free run acked %d of %d", acked, len(workloadEvents()))
			}
			total := inj.Ops()
			if total < len(workloadEvents()) {
				t.Fatalf("implausible boundary count %d", total)
			}
			assertRecoversPrefix(t, mem.Crash(faultfs.CrashDropUnsynced), acked, acked, "fault-free")

			for c := 1; c <= total; c++ {
				for _, mode := range faultfs.CrashModes {
					mem := faultfs.NewMem()
					inj := faultfs.NewInjector(mem, faultfs.CrashAt(c))
					acked, attempted, err := runCrashWorkload(inj, v.opts)
					if err == nil {
						t.Fatalf("crash point %d: workload finished without crashing", c)
					}
					img := mem.Crash(mode)
					ctx := fmt.Sprintf("%s/crash-at-%d/%s", v.name, c, mode)
					// Lower bound: every acked event survives. Upper bound:
					// at most the in-flight append can additionally surface.
					assertRecoversPrefix(t, img, acked, attempted, ctx)
				}
			}
		})
	}
}

// TestCrashEnumerationNosync covers the default (no-fsync) mode,
// whose contract is process-crash durability only: the page cache
// survives a dead process, which is exactly CrashKeepUnsynced. There
// the recovery must be the fold of precisely the acked events — the
// journal acknowledges only after the line is fully written.
func TestCrashEnumerationNosync(t *testing.T) {
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem)
	acked, _, err := runCrashWorkload(inj, nil)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	if acked != len(workloadEvents()) {
		t.Fatalf("fault-free run acked %d of %d", acked, len(workloadEvents()))
	}
	total := inj.Ops()

	for c := 1; c <= total; c++ {
		mem := faultfs.NewMem()
		inj := faultfs.NewInjector(mem, faultfs.CrashAt(c))
		acked, _, err := runCrashWorkload(inj, nil)
		if err == nil {
			t.Fatalf("crash point %d: workload finished without crashing", c)
		}
		img := mem.Crash(faultfs.CrashKeepUnsynced)
		assertRecoversPrefix(t, img, acked, acked, fmt.Sprintf("nosync/crash-at-%d", c))
	}
}

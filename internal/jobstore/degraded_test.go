package jobstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"

	"uptimebroker/internal/faultfs"
)

func submittedEvent(i int) Event {
	t0 := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return Event{
		Type: EventSubmitted,
		Time: t0.Add(time.Duration(i) * time.Second),
		ID:   "j" + string(rune('0'+i)),
		Seq:  uint64(i + 1),
		Kind: "recommend",
	}
}

// TestAppendENOSPCLatchesDegraded: a disk-full mid-append must return
// ENOSPC, latch the store read-only, and leave the acked prefix
// recoverable on restart — the partial line is dropped by replay.
func TestAppendENOSPCLatchesDegraded(t *testing.T) {
	mem := faultfs.NewMem()
	// Let roughly two records through, then the disk fills.
	first, err := json.Marshal(submittedEvent(0))
	if err != nil {
		t.Fatal(err)
	}
	limit := int64(2*len(first) + 10)
	inj := faultfs.NewInjector(mem, faultfs.ENOSPCAfter(limit))

	f, err := OpenFile("data", WithFS(inj), WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	var acked []Event
	var failErr error
	for i := 0; i < 6; i++ {
		ev := submittedEvent(i)
		if err := f.Append(ev); err != nil {
			failErr = err
			break
		}
		acked = append(acked, ev)
	}
	if failErr == nil {
		t.Fatal("no append failed despite full disk")
	}
	if !errors.Is(failErr, syscall.ENOSPC) {
		t.Fatalf("failure = %v, want ENOSPC", failErr)
	}
	if !errors.Is(failErr, ErrDegraded) {
		t.Fatalf("failure = %v, want ErrDegraded latch", failErr)
	}
	if f.Degraded() == nil {
		t.Fatal("Degraded() = nil after write failure")
	}
	// Latched: later appends and compactions refuse without touching
	// the disk, reads still work.
	if err := f.Append(submittedEvent(7)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after latch = %v, want ErrDegraded", err)
	}
	if err := f.Compact(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("compact after latch = %v, want ErrDegraded", err)
	}
	if _, err := f.Load(); err != nil {
		t.Fatalf("load after latch: %v", err)
	}
	_ = f.Close()

	// Restart on the same (still live) filesystem: every acked event is
	// there; the torn partial record never surfaces.
	f2, err := OpenFile("data", WithFS(mem))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f2.Close()
	snap, err := f2.Load()
	if err != nil {
		t.Fatal(err)
	}
	st := newState()
	for _, ev := range acked {
		st.apply(ev)
	}
	got, _ := json.Marshal(snap)
	want, _ := json.Marshal(st.snapshot())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered %s\nwant %s", got, want)
	}
}

// TestFsyncFailureThenRestartRecovery: an fsync error fails the
// append that needed it and latches the store; after a power loss
// that drops every unsynced byte, all previously acked events are
// still recovered.
func TestFsyncFailureThenRestartRecovery(t *testing.T) {
	mem := faultfs.NewMem()
	boom := errors.New("io error: media gone")
	inj := faultfs.NewInjector(mem, faultfs.FailSync(3, boom))

	f, err := OpenFile("data", WithFS(inj), WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	var acked []Event
	var failErr error
	for i := 0; i < 5; i++ {
		ev := submittedEvent(i)
		if err := f.Append(ev); err != nil {
			failErr = err
			break
		}
		acked = append(acked, ev)
	}
	if len(acked) != 2 {
		t.Fatalf("acked %d appends, want 2 before sync 3 fails", len(acked))
	}
	if !errors.Is(failErr, boom) || !errors.Is(failErr, ErrDegraded) {
		t.Fatalf("failure = %v, want boom wrapped in ErrDegraded", failErr)
	}
	_ = f.Close()

	// Power loss: unsynced bytes (including the write whose fsync
	// failed) are gone. The acked prefix survives.
	img := mem.Crash(faultfs.CrashDropUnsynced)
	f2, err := OpenFile("data", WithFS(img))
	if err != nil {
		t.Fatalf("reopen after power loss: %v", err)
	}
	defer f2.Close()
	snap, err := f2.Load()
	if err != nil {
		t.Fatal(err)
	}
	st := newState()
	for _, ev := range acked {
		st.apply(ev)
	}
	got, _ := json.Marshal(snap)
	want, _ := json.Marshal(st.snapshot())
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered %s\nwant %s", got, want)
	}
}

// TestGroupCommitFlushFailureWakesAllWriters: when the leader's
// shared flush fails, every parked writer must wake with an error
// (not hang, not falsely ack) and the store must latch degraded.
func TestGroupCommitFlushFailureWakesAllWriters(t *testing.T) {
	mem := faultfs.NewMem()
	boom := errors.New("flush failed under leader")
	inj := faultfs.NewInjector(mem, faultfs.FailSync(1, boom))

	f, err := OpenFile("data", WithFS(inj), WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const writers = 8
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f.Append(submittedEvent(i))
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("parked writers never woke after flush failure")
	}

	for i, err := range errs {
		if err == nil {
			t.Fatalf("writer %d acked despite the only flush failing", i)
		}
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("writer %d error = %v, want ErrDegraded", i, err)
		}
	}
	if f.Degraded() == nil {
		t.Fatal("store not latched degraded after flush failure")
	}
}

// TestCompactDiskFailureLatches: compaction hitting a full disk while
// writing the snapshot latches the store like any other write error.
func TestCompactDiskFailureLatches(t *testing.T) {
	mem := faultfs.NewMem()
	f, err := OpenFile("data", WithFS(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Append(submittedEvent(0)); err != nil {
		t.Fatal(err)
	}
	// Fill the disk before the snapshot encode: route subsequent I/O
	// through a fresh injector sharing the same Mem is not possible on
	// an open backend, so instead reopen through an injector with the
	// budget already spent by the WAL line.
	_ = f.Close()

	inj := faultfs.NewInjector(mem, faultfs.ENOSPCAfter(0))
	f2, err := OpenFile("data", WithFS(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	err = f2.Compact()
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrDegraded) {
		t.Fatalf("compact on full disk = %v, want ENOSPC + ErrDegraded", err)
	}
	if err := f2.Append(submittedEvent(1)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after compact failure = %v, want ErrDegraded", err)
	}
	// The journal on disk is untouched: a restart recovers event 0.
	f3, err := OpenFile("data", WithFS(mem))
	if err != nil {
		t.Fatal(err)
	}
	defer f3.Close()
	snap, _ := f3.Load()
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != "j0" {
		t.Fatalf("recovered %+v, want the one acked job", snap.Jobs)
	}
}

// Package jobstore is the persistence layer under the async job
// subsystem: an append-only journal of job lifecycle events plus a
// periodically compacted snapshot, the same shape the telemetry store
// uses for its on-disk state. The jobs package journals every
// submit/start/progress/finish transition through a Backend and
// replays the backend's contents on start, so queued work and
// finished results survive broker restarts.
//
// Two backends ship: Memory (journal kept in process memory — the
// default wiring for tests and for brokers that opt out of
// durability) and File (JSON-lines WAL plus an atomically written
// snapshot file in a data directory).
//
// The split of responsibilities:
//
//   - Append journals one event durably.
//   - Compact replaces journal + snapshot with a flat snapshot of the
//     live records, bounding replay time and disk growth.
//   - Load returns the recovered state: the latest snapshot with the
//     WAL replayed on top.
//
// Interpretation of the replayed state (requeue queued jobs, fail
// jobs that were mid-run at the crash) belongs to the jobs package,
// not the backends.
package jobstore

import (
	"encoding/json"
	"fmt"
	"time"
)

// EventType discriminates journal entries.
type EventType string

// Journal event types.
const (
	// EventSubmitted records a new job entering the queue; it carries
	// the job's kind, serialized payload and the store's ID sequence.
	EventSubmitted EventType = "submitted"

	// EventStarted records a worker picking the job up.
	EventStarted EventType = "started"

	// EventProgress records enumeration progress (evaluated /
	// space_size); journaled on a throttle, not per evaluation.
	EventProgress EventType = "progress"

	// EventFinished records the terminal transition with its state,
	// result or error.
	EventFinished EventType = "finished"

	// EventSwept records TTL garbage collection of a terminal job so
	// replay does not resurrect it.
	EventSwept EventType = "swept"
)

// Event is one journaled job lifecycle change. Fields beyond Type,
// Time and ID are populated per event type as documented on the
// constants.
type Event struct {
	Type EventType `json:"type"`
	Time time.Time `json:"time"`
	ID   string    `json:"id"`

	// Seq is the store's ID sequence after this submission; persisting
	// it keeps job IDs strictly increasing across restarts.
	Seq uint64 `json:"seq,omitempty"`

	// Kind and Payload describe the submitted work (EventSubmitted).
	Kind    string          `json:"kind,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`

	// State is the terminal state (EventFinished): done, failed or
	// cancelled.
	State string `json:"state,omitempty"`

	// Result is the serialized job result (EventFinished, done).
	Result json.RawMessage `json:"result,omitempty"`

	// Error and ErrClass carry the failure text and its stable class
	// (EventFinished, failed or cancelled).
	Error    string `json:"error,omitempty"`
	ErrClass string `json:"err_class,omitempty"`

	// Evaluated and SpaceSize report search progress (EventProgress).
	Evaluated int64 `json:"evaluated,omitempty"`
	SpaceSize int64 `json:"space_size,omitempty"`

	// Strategy records the solver strategy the job's search resolved
	// to (EventProgress, set once known).
	Strategy string `json:"strategy,omitempty"`
}

// Record is the recovered form of one job: the fold of its journal
// events. State strings mirror the jobs package's State values.
type Record struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	Payload    json.RawMessage `json:"payload,omitempty"`
	State      string          `json:"state"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  time.Time       `json:"started_at,omitzero"`
	FinishedAt time.Time       `json:"finished_at,omitzero"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	ErrClass   string          `json:"err_class,omitempty"`
	Evaluated  int64           `json:"evaluated,omitempty"`
	SpaceSize  int64           `json:"space_size,omitempty"`
	Strategy   string          `json:"strategy,omitempty"`
}

// Record state strings, mirroring jobs.State without importing it
// (jobs imports jobstore, not the reverse).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Snapshot is the full recoverable state: every live record plus the
// ID sequence high-water mark.
type Snapshot struct {
	// Seq is the last ID sequence value handed out.
	Seq uint64 `json:"seq"`

	// Jobs are the live records in submission order.
	Jobs []Record `json:"jobs"`
}

// Backend is the pluggable persistence surface the jobs package
// journals through. Implementations must be safe for concurrent use.
// Each backend folds appended events into its own record state, so
// compaction needs no input from the caller — it cannot race with
// concurrent appends the way an externally supplied snapshot could
// (gather state, lose the event appended in between, truncate it
// away).
type Backend interface {
	// Append journals one event.
	Append(ev Event) error

	// Compact replaces the journal with a snapshot of the folded
	// state, bounding replay cost. Events appended concurrently are
	// either in the snapshot or in the journal after it — never lost.
	Compact() error

	// Load returns the recovered snapshot: the last compaction with
	// all later events replayed on top.
	Load() (Snapshot, error)

	// Close releases the backend's resources. The jobs store calls it
	// after its final compaction.
	Close() error
}

// state is the mutable replay accumulator shared by the backends:
// records keyed by job ID plus insertion order.
type state struct {
	seq     uint64
	records map[string]*Record
	order   []string
}

func newState() *state {
	return &state{records: make(map[string]*Record)}
}

// fromSnapshot seeds the accumulator from a compacted snapshot.
func fromSnapshot(snap Snapshot) *state {
	st := newState()
	st.seq = snap.Seq
	for i := range snap.Jobs {
		rec := snap.Jobs[i]
		st.records[rec.ID] = &rec
		st.order = append(st.order, rec.ID)
	}
	return st
}

// apply folds one event into the accumulator. Events referencing
// unknown IDs (other than submissions) are dropped: the job was
// compacted or swept away, so its tail events carry no information.
func (st *state) apply(ev Event) {
	switch ev.Type {
	case EventSubmitted:
		if ev.Seq > st.seq {
			st.seq = ev.Seq
		}
		if _, dup := st.records[ev.ID]; dup {
			return
		}
		st.records[ev.ID] = &Record{
			ID:        ev.ID,
			Kind:      ev.Kind,
			Payload:   ev.Payload,
			State:     StateQueued,
			CreatedAt: ev.Time,
		}
		st.order = append(st.order, ev.ID)
	case EventStarted:
		if rec, ok := st.records[ev.ID]; ok {
			rec.State = StateRunning
			rec.StartedAt = ev.Time
		}
	case EventProgress:
		if rec, ok := st.records[ev.ID]; ok {
			if ev.Evaluated > rec.Evaluated {
				rec.Evaluated = ev.Evaluated
			}
			if ev.SpaceSize > 0 {
				rec.SpaceSize = ev.SpaceSize
			}
			if ev.Strategy != "" {
				rec.Strategy = ev.Strategy
			}
		}
	case EventFinished:
		if rec, ok := st.records[ev.ID]; ok {
			rec.State = ev.State
			rec.FinishedAt = ev.Time
			rec.Result = ev.Result
			rec.Error = ev.Error
			rec.ErrClass = ev.ErrClass
		}
	case EventSwept:
		if _, ok := st.records[ev.ID]; ok {
			delete(st.records, ev.ID)
			for i, id := range st.order {
				if id == ev.ID {
					st.order = append(st.order[:i], st.order[i+1:]...)
					break
				}
			}
		}
	}
}

// snapshot flattens the accumulator back into a Snapshot in
// submission order.
func (st *state) snapshot() Snapshot {
	snap := Snapshot{Seq: st.seq}
	for _, id := range st.order {
		rec, ok := st.records[id]
		if !ok {
			continue
		}
		snap.Jobs = append(snap.Jobs, cloneRecord(*rec))
	}
	return snap
}

// cloneRecord deep-copies the raw JSON members so callers cannot
// alias backend-owned buffers.
func cloneRecord(rec Record) Record {
	rec.Payload = append(json.RawMessage(nil), rec.Payload...)
	rec.Result = append(json.RawMessage(nil), rec.Result...)
	if len(rec.Payload) == 0 {
		rec.Payload = nil
	}
	if len(rec.Result) == 0 {
		rec.Result = nil
	}
	return rec
}

// Validate rejects events the journal cannot fold.
func (ev Event) Validate() error {
	if ev.ID == "" {
		return fmt.Errorf("jobstore: event %q without a job ID", ev.Type)
	}
	switch ev.Type {
	case EventSubmitted, EventStarted, EventProgress, EventFinished, EventSwept:
		return nil
	default:
		return fmt.Errorf("jobstore: unknown event type %q", ev.Type)
	}
}

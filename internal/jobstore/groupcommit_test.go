package jobstore

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitDurableAndRecoverable drives many concurrent
// appenders through a group-commit backend and verifies every
// acknowledged event survives a reopen — the durability contract the
// coalesced flushes must not weaken.
func TestGroupCommitDurableAndRecoverable(t *testing.T) {
	dir := t.TempDir()
	backend, err := OpenFile(dir, WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 8
		perW    = 25
	)
	now := time.Unix(1_700_000_000, 0)
	payload := json.RawMessage(`{"sla_percent":98}`)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				seq := uint64(w*perW + i + 1)
				ev := Event{
					Type:    EventSubmitted,
					Time:    now,
					ID:      fmt.Sprintf("job-%08d", seq),
					Seq:     seq,
					Kind:    "recommend",
					Payload: payload,
				}
				if err := backend.Append(ev); err != nil {
					errs[w] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = reopened.Close() }()
	snap, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(snap.Jobs), writers*perW; got != want {
		t.Fatalf("recovered %d jobs, want %d", got, want)
	}
}

// TestGroupCommitSingleAppender pins the degenerate case: with no
// concurrency to coalesce, group commit still flushes every append
// before acknowledging it (behaviorally WithFsync), and compaction
// plus reopen keep working.
func TestGroupCommitSingleAppender(t *testing.T) {
	dir := t.TempDir()
	backend, err := OpenFile(dir, WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	for i := 1; i <= 10; i++ {
		ev := Event{
			Type: EventSubmitted,
			Time: now,
			ID:   fmt.Sprintf("job-%08d", i),
			Seq:  uint64(i),
			Kind: "recommend",
		}
		if err := backend.Append(ev); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := backend.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = reopened.Close() }()
	snap, err := reopened.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 10 {
		t.Fatalf("recovered %d jobs, want 10", len(snap.Jobs))
	}
}

// TestGroupCommitClosedBackend: appends racing a Close either succeed
// (their flush happened) or fail with the closed error — never hang.
func TestGroupCommitClosedBackend(t *testing.T) {
	backend, err := OpenFile(t.TempDir(), WithGroupCommit())
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}
	ev := Event{Type: EventSubmitted, Time: time.Unix(1_700_000_000, 0), ID: "job-00000001", Seq: 1, Kind: "recommend"}
	if err := backend.Append(ev); err == nil {
		t.Fatal("append on a closed backend should fail")
	}
}

package jobstore

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkFileAppend measures the hot journaling path: one event per
// job state transition, every submit/finish on the serving path pays
// this. The fsync variant is the power-loss-durable mode behind
// brokerd -fsync; the delta between the two sub-benchmarks is the
// submit-latency cost of that guarantee.
func BenchmarkFileAppend(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []FileOption
	}{
		{name: "nosync"},
		{name: "fsync", opts: []FileOption{WithFsync()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			backend, err := OpenFile(b.TempDir(), mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = backend.Close() }()
			payload := json.RawMessage(`{"sla_percent":98,"penalty_per_hour_usd":100}`)
			now := time.Unix(1_700_000_000, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := Event{
					Type:    EventSubmitted,
					Time:    now,
					ID:      fmt.Sprintf("job-%08d", i+1),
					Seq:     uint64(i + 1),
					Kind:    "recommend",
					Payload: payload,
				}
				if err := backend.Append(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFileAppendConcurrent measures the journaling path under
// concurrent appenders — the shape a busy brokerd sees, with many
// submissions in flight. The interesting split is fsync (every append
// pays its own flush, serialized behind the store mutex) versus
// group-commit (concurrent appends coalesce into shared flushes): the
// gap is the throughput the -group-commit flag recovers at identical
// power-loss durability.
func BenchmarkFileAppendConcurrent(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []FileOption
	}{
		{name: "nosync"},
		{name: "fsync", opts: []FileOption{WithFsync()}},
		{name: "group-commit", opts: []FileOption{WithGroupCommit()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			backend, err := OpenFile(b.TempDir(), mode.opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = backend.Close() }()
			payload := json.RawMessage(`{"sla_percent":98,"penalty_per_hour_usd":100}`)
			now := time.Unix(1_700_000_000, 0)
			var seq atomic.Uint64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := seq.Add(1)
					ev := Event{
						Type:    EventSubmitted,
						Time:    now,
						ID:      fmt.Sprintf("job-%08d", n),
						Seq:     n,
						Kind:    "recommend",
						Payload: payload,
					}
					if err := backend.Append(ev); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkFileRecovery measures reopening a directory whose WAL
// holds 1000 complete job lifecycles — the startup cost a restart
// pays before serving.
func BenchmarkFileRecovery(b *testing.B) {
	dir := b.TempDir()
	backend, err := OpenFile(dir)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	result := json.RawMessage(`{"best_option":3}`)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("job-%08d", i+1)
		events := []Event{
			{Type: EventSubmitted, Time: now, ID: id, Seq: uint64(i + 1), Kind: "recommend"},
			{Type: EventStarted, Time: now, ID: id},
			{Type: EventProgress, Time: now, ID: id, Evaluated: 8, SpaceSize: 8},
			{Type: EventFinished, Time: now, ID: id, State: StateDone, Result: result},
		}
		for _, ev := range events {
			if err := backend.Append(ev); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := backend.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reopened, err := OpenFile(dir)
		if err != nil {
			b.Fatal(err)
		}
		snap, err := reopened.Load()
		if err != nil {
			b.Fatal(err)
		}
		if len(snap.Jobs) != 1000 {
			b.Fatalf("recovered %d jobs, want 1000", len(snap.Jobs))
		}
		if err := reopened.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

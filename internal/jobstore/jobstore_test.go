package jobstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0).UTC()

// lifecycle appends a full submit→start→finish history for one job.
func lifecycle(t *testing.T, b Backend, id, state string, result string) {
	t.Helper()
	events := []Event{
		{Type: EventSubmitted, Time: t0, ID: id, Kind: "recommend", Seq: seqOf(id), Payload: json.RawMessage(`{"x":1}`)},
		{Type: EventStarted, Time: t0.Add(time.Second), ID: id},
		{Type: EventFinished, Time: t0.Add(2 * time.Second), ID: id, State: state},
	}
	if result != "" {
		events[2].Result = json.RawMessage(result)
	}
	for _, ev := range events {
		if err := b.Append(ev); err != nil {
			t.Fatalf("Append(%s %s): %v", ev.Type, id, err)
		}
	}
}

// seqOf derives a deterministic sequence from the test ID's suffix.
func seqOf(id string) uint64 {
	return uint64(id[len(id)-1] - '0')
}

func TestMemoryReplay(t *testing.T) {
	b := NewMemory()
	lifecycle(t, b, "job-1", StateDone, `{"best":3}`)
	if err := b.Append(Event{Type: EventSubmitted, Time: t0, ID: "job-2", Kind: "pareto", Seq: 2}); err != nil {
		t.Fatal(err)
	}

	snap, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 2 || len(snap.Jobs) != 2 {
		t.Fatalf("snapshot = seq %d, %d jobs; want seq 2, 2 jobs", snap.Seq, len(snap.Jobs))
	}
	if snap.Jobs[0].State != StateDone || string(snap.Jobs[0].Result) != `{"best":3}` {
		t.Fatalf("job-1 record = %+v", snap.Jobs[0])
	}
	if snap.Jobs[1].State != StateQueued || snap.Jobs[1].Kind != "pareto" {
		t.Fatalf("job-2 record = %+v", snap.Jobs[1])
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, b, "job-1", StateDone, `{"best":1}`)
	lifecycle(t, b, "job-2", StateFailed, "")
	if err := b.Append(Event{Type: EventSubmitted, Time: t0, ID: "job-3", Kind: "recommend", Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(Event{Type: EventStarted, Time: t0, ID: "job-3"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot absent, WAL replays everything.
	b2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b2.Close() }()
	snap, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 3 || len(snap.Jobs) != 3 {
		t.Fatalf("recovered seq %d with %d jobs, want 3 and 3", snap.Seq, len(snap.Jobs))
	}
	byID := map[string]Record{}
	for _, rec := range snap.Jobs {
		byID[rec.ID] = rec
	}
	if byID["job-1"].State != StateDone || string(byID["job-1"].Result) != `{"best":1}` {
		t.Fatalf("job-1 = %+v", byID["job-1"])
	}
	if byID["job-2"].State != StateFailed {
		t.Fatalf("job-2 = %+v", byID["job-2"])
	}
	// job-3 was started but never finished: replay shows it running,
	// the state the jobs package converts to a restart_lost failure.
	if byID["job-3"].State != StateRunning {
		t.Fatalf("job-3 = %+v", byID["job-3"])
	}
}

func TestFileCompactionTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, b, "job-1", StateDone, `{"n":1}`)
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}

	walInfo, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if walInfo.Size() != 0 {
		t.Fatalf("WAL size after compaction = %d, want 0", walInfo.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}

	// Events after compaction land in the fresh WAL and replay on top
	// of the snapshot.
	lifecycle(t, b, "job-2", StateCancelled, "")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b2.Close() }()
	snap2, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(snap2.Jobs))
	}
}

func TestFileToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, b, "job-1", StateDone, `{"n":1}`)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a half-written JSON line.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"submitted","id":"job-2","k`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenFile(dir)
	if err != nil {
		t.Fatalf("OpenFile with torn WAL tail: %v", err)
	}
	defer func() { _ = b2.Close() }()
	snap, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != "job-1" {
		t.Fatalf("recovered %+v, want just job-1", snap.Jobs)
	}
}

func TestSweptEventRemovesRecord(t *testing.T) {
	b := NewMemory()
	lifecycle(t, b, "job-1", StateDone, "")
	if err := b.Append(Event{Type: EventSwept, Time: t0, ID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	snap, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 0 {
		t.Fatalf("swept job survived replay: %+v", snap.Jobs)
	}
	// Sequence survives the sweep so IDs never regress.
	if snap.Seq != 1 {
		t.Fatalf("seq = %d, want 1", snap.Seq)
	}
}

func TestEventValidate(t *testing.T) {
	if err := (Event{Type: EventStarted}).Validate(); err == nil {
		t.Fatal("event without ID must not validate")
	}
	if err := (Event{Type: "weird", ID: "job-1"}).Validate(); err == nil {
		t.Fatal("unknown event type must not validate")
	}
}

// TestFileFsyncRoundTrip exercises the power-loss-durable mode: the
// same append/compact/replay contract must hold with WithFsync, and
// strategy-bearing progress events must fold into the record.
func TestFileFsyncRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenFile(dir, WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Type: EventSubmitted, Time: t0, ID: "job-1", Kind: "recommend", Seq: 1, Payload: json.RawMessage(`{"x":1}`)},
		{Type: EventStarted, Time: t0, ID: "job-1"},
		{Type: EventProgress, Time: t0, ID: "job-1", Evaluated: 64, SpaceSize: 512, Strategy: "parallel-pruned"},
		{Type: EventFinished, Time: t0, ID: "job-1", State: StateDone, Result: json.RawMessage(`{"best":2}`)},
	}
	for _, ev := range events {
		if err := b.Append(ev); err != nil {
			t.Fatalf("Append(%s): %v", ev.Type, err)
		}
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenFile(dir, WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b2.Close() }()
	snap, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(snap.Jobs))
	}
	rec := snap.Jobs[0]
	if rec.State != StateDone || rec.Strategy != "parallel-pruned" || rec.Evaluated != 64 || rec.SpaceSize != 512 {
		t.Fatalf("recovered record = %+v", rec)
	}
}

package scenario

import (
	"context"
	"math/rand"
	"testing"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
)

func testEngine(t *testing.T) *broker.Engine {
	t.Helper()
	cat := catalog.Default()
	e, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAllScenariosAreRecommendable(t *testing.T) {
	// Every built-in scenario must survive the full brokerage path on
	// every built-in provider.
	engine := testEngine(t)
	for _, provider := range []string{catalog.ProviderSoftLayerSim, catalog.ProviderNimbus, catalog.ProviderStratus} {
		for _, sc := range All(provider) {
			t.Run(provider+"/"+sc.Name, func(t *testing.T) {
				if err := sc.Request.Validate(); err != nil {
					t.Fatalf("request invalid: %v", err)
				}
				if sc.Description == "" {
					t.Fatal("missing description")
				}
				rec, err := engine.Recommend(context.Background(), sc.Request)
				if err != nil {
					t.Fatalf("Recommend: %v", err)
				}
				if rec.BestOption < 1 {
					t.Fatal("no recommendation")
				}
			})
		}
	}
}

func TestAllSortedAndByName(t *testing.T) {
	scenarios := All(catalog.ProviderSoftLayerSim)
	if len(scenarios) != 5 {
		t.Fatalf("scenario count = %d, want 5", len(scenarios))
	}
	for i := 1; i < len(scenarios); i++ {
		if scenarios[i-1].Name >= scenarios[i].Name {
			t.Fatal("All not sorted by name")
		}
	}
	got, err := ByName("messaging", catalog.ProviderSoftLayerSim)
	if err != nil || got.Name != "messaging" {
		t.Fatalf("ByName(messaging) = %v, %v", got.Name, err)
	}
	if _, err := ByName("mainframe", catalog.ProviderSoftLayerSim); err == nil {
		t.Fatal("unknown scenario should fail")
	}
}

func TestScenarioEconomicsDiffer(t *testing.T) {
	// The loose-SLA batch scenario must recommend less HA spend than
	// the tight-SLA storefront on the same provider — the contract
	// terms drive the architecture, which is the paper's whole point.
	engine := testEngine(t)
	batch, err := engine.Recommend(context.Background(), Analytics(catalog.ProviderSoftLayerSim).Request)
	if err != nil {
		t.Fatal(err)
	}
	shop, err := engine.Recommend(context.Background(), ECommerce(catalog.ProviderSoftLayerSim).Request)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Best().HACost >= shop.Best().HACost {
		t.Fatalf("batch HA spend %v should undercut storefront %v",
			batch.Best().HACost, shop.Best().HACost)
	}
}

func TestGeneratorConfigValidate(t *testing.T) {
	if err := DefaultGenerator().Validate(); err != nil {
		t.Fatalf("default generator invalid: %v", err)
	}
	bad := []GeneratorConfig{
		{MinComponents: 0, MaxComponents: 3, MaxActiveNodes: 2, SLAMin: 95, SLAMax: 99},
		{MinComponents: 4, MaxComponents: 3, MaxActiveNodes: 2, SLAMin: 95, SLAMax: 99},
		{MinComponents: 1, MaxComponents: 3, MaxActiveNodes: 0, SLAMin: 95, SLAMax: 99},
		{MinComponents: 1, MaxComponents: 3, MaxActiveNodes: 2, SLAMin: 0, SLAMax: 99},
		{MinComponents: 1, MaxComponents: 3, MaxActiveNodes: 2, SLAMin: 99, SLAMax: 95},
		{MinComponents: 1, MaxComponents: 3, MaxActiveNodes: 2, SLAMin: 95, SLAMax: 99, PenaltyMaxUSD: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestGenerateValidAndDeterministic(t *testing.T) {
	cfg := DefaultGenerator()
	engine := testEngine(t)

	a, err := Generate(cfg, rand.New(rand.NewSource(1)), catalog.ProviderSoftLayerSim)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg, rand.New(rand.NewSource(1)), catalog.ProviderSoftLayerSim)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base.Name != b.Base.Name || len(a.Base.Components) != len(b.Base.Components) {
		t.Fatal("Generate not deterministic for equal seeds")
	}

	// Generated requests must run end to end.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 25; i++ {
		req, err := Generate(cfg, rng, catalog.ProviderSoftLayerSim)
		if err != nil {
			t.Fatalf("Generate %d: %v", i, err)
		}
		if _, err := engine.Recommend(context.Background(), req); err != nil {
			t.Fatalf("Recommend on generated %d: %v", i, err)
		}
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	cfg := GeneratorConfig{
		MinComponents: 3, MaxComponents: 3, MaxActiveNodes: 2,
		SLAMin: 97, SLAMax: 98, PenaltyMaxUSD: 10,
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		req, err := Generate(cfg, rng, catalog.ProviderSoftLayerSim)
		if err != nil {
			t.Fatal(err)
		}
		if len(req.Base.Components) != 3 {
			t.Fatalf("components = %d, want 3", len(req.Base.Components))
		}
		for _, c := range req.Base.Components {
			if c.ActiveNodes < 1 || c.ActiveNodes > 2 {
				t.Fatalf("active nodes = %d out of bounds", c.ActiveNodes)
			}
		}
		if req.SLA.UptimePercent < 97 || req.SLA.UptimePercent > 98 {
			t.Fatalf("SLA %v out of bounds", req.SLA.UptimePercent)
		}
	}
	if _, err := Generate(GeneratorConfig{}, rng, "p"); err == nil {
		t.Fatal("invalid config should fail")
	}
}

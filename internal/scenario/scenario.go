// Package scenario is a library of realistic base architectures for
// the brokerage — the workloads the paper's introduction motivates
// (enterprise systems with contractual uptime SLAs) expressed as
// topology templates with the contract terms that typically accompany
// them, plus a seeded random-architecture generator for stress tests
// and benchmarks.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/topology"
)

// Scenario pairs a base architecture with representative contract
// terms.
type Scenario struct {
	// Name is the registry key, e.g. "ecommerce".
	Name string

	// Description says what workload the architecture represents.
	Description string

	// Request is the complete brokerage request (base + SLA).
	Request broker.Request
}

// Catalog of built-in scenarios, ordered by name.
func All(provider string) []Scenario {
	out := []Scenario{
		ECommerce(provider),
		Analytics(provider),
		Messaging(provider),
		VDI(provider),
		PaperCaseStudy(),
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns a built-in scenario.
func ByName(name, provider string) (Scenario, error) {
	for _, s := range All(provider) {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q", name)
}

// PaperCaseStudy is the DSN 2017 client case study.
func PaperCaseStudy() Scenario {
	return Scenario{
		Name:        "casestudy",
		Description: "the paper's three-tier retail system on the reference cloud (98% SLA, $100/h)",
		Request:     broker.CaseStudy(),
	}
}

// ECommerce is a storefront: web + app compute, transactional storage,
// load-balanced ingress. Retail contracts run tight SLAs with steep
// penalties (every hour down is lost revenue).
func ECommerce(provider string) Scenario {
	return Scenario{
		Name:        "ecommerce",
		Description: "storefront: 2 web + 4 app nodes, transactional volume, LB ingress; 99.5% SLA at $800/h",
		Request: broker.Request{
			Base: topology.System{
				Name:     "ecommerce",
				Provider: provider,
				Components: []topology.Component{
					{Name: "web", Layer: topology.LayerCompute, ActiveNodes: 2, Class: topology.ClassVirtualMachine},
					{Name: "app", Layer: topology.LayerCompute, ActiveNodes: 4, Class: topology.ClassVirtualMachine},
					{Name: "orders-db", Layer: topology.LayerStorage, ActiveNodes: 1, Class: topology.ClassBlockVolume},
					{Name: "ingress", Layer: topology.LayerNetwork, ActiveNodes: 1, Class: topology.ClassLoadBalancer},
				},
			},
			SLA: cost.SLA{UptimePercent: 99.5, Penalty: cost.Penalty{PerHour: cost.Dollars(800)}},
		},
	}
}

// Analytics is a batch pipeline: big bare-metal compute over object
// storage. Batch tolerates downtime, so the SLA is loose and cheap.
func Analytics(provider string) Scenario {
	return Scenario{
		Name:        "analytics",
		Description: "batch analytics: 6 bare-metal workers over object storage; 95% SLA at $40/h",
		Request: broker.Request{
			Base: topology.System{
				Name:     "analytics",
				Provider: provider,
				Components: []topology.Component{
					{Name: "workers", Layer: topology.LayerCompute, ActiveNodes: 6, Class: topology.ClassBareMetal},
					{Name: "datalake", Layer: topology.LayerStorage, ActiveNodes: 2, Class: topology.ClassObjectStore},
					{Name: "egress", Layer: topology.LayerNetwork, ActiveNodes: 1, Class: topology.ClassGateway},
				},
			},
			SLA: cost.SLA{UptimePercent: 95, Penalty: cost.Penalty{PerHour: cost.Dollars(40)}},
		},
	}
}

// Messaging is an event backbone: broker middleware between producers
// and consumers, with durable log storage. Mid-tier SLA.
func Messaging(provider string) Scenario {
	return Scenario{
		Name:        "messaging",
		Description: "event backbone: middleware brokers + durable log + gateway; 99% SLA at $250/h",
		Request: broker.Request{
			Base: topology.System{
				Name:     "messaging",
				Provider: provider,
				Components: []topology.Component{
					{Name: "brokers", Layer: topology.LayerMiddleware, ActiveNodes: 3, Class: topology.ClassVirtualMachine},
					{Name: "log", Layer: topology.LayerStorage, ActiveNodes: 2, Class: topology.ClassBlockVolume},
					{Name: "gateway", Layer: topology.LayerNetwork, ActiveNodes: 1, Class: topology.ClassGateway},
				},
			},
			SLA: cost.SLA{UptimePercent: 99, Penalty: cost.Penalty{PerHour: cost.Dollars(250)}},
		},
	}
}

// VDI is hosted desktops: many small VMs, profile storage, gateway
// access; business-hours SLA with moderate penalty.
func VDI(provider string) Scenario {
	return Scenario{
		Name:        "vdi",
		Description: "hosted desktops: 8 session hosts, profile volume, access gateway; 98% SLA at $120/h",
		Request: broker.Request{
			Base: topology.System{
				Name:     "vdi",
				Provider: provider,
				Components: []topology.Component{
					{Name: "session-hosts", Layer: topology.LayerCompute, ActiveNodes: 8, Class: topology.ClassVirtualMachine},
					{Name: "profiles", Layer: topology.LayerStorage, ActiveNodes: 1, Class: topology.ClassBlockVolume},
					{Name: "access", Layer: topology.LayerNetwork, ActiveNodes: 1, Class: topology.ClassGateway},
				},
			},
			SLA: cost.SLA{UptimePercent: 98, Penalty: cost.Penalty{PerHour: cost.Dollars(120)}},
		},
	}
}

// GeneratorConfig bounds the random-architecture generator.
type GeneratorConfig struct {
	// MinComponents and MaxComponents bound the serial chain length.
	MinComponents, MaxComponents int

	// MaxActiveNodes bounds each component's active node count.
	MaxActiveNodes int

	// SLARange bounds the uptime percentage, e.g. [95, 99.9].
	SLAMin, SLAMax float64

	// PenaltyMaxUSD bounds the hourly penalty.
	PenaltyMaxUSD float64
}

// DefaultGenerator returns sensible bounds for stress tests.
func DefaultGenerator() GeneratorConfig {
	return GeneratorConfig{
		MinComponents:  2,
		MaxComponents:  7,
		MaxActiveNodes: 6,
		SLAMin:         95,
		SLAMax:         99.9,
		PenaltyMaxUSD:  1000,
	}
}

// Validate reports whether the generator bounds are usable.
func (g GeneratorConfig) Validate() error {
	switch {
	case g.MinComponents < 1:
		return fmt.Errorf("scenario: MinComponents = %d, must be >= 1", g.MinComponents)
	case g.MaxComponents < g.MinComponents:
		return fmt.Errorf("scenario: MaxComponents < MinComponents")
	case g.MaxActiveNodes < 1:
		return fmt.Errorf("scenario: MaxActiveNodes = %d, must be >= 1", g.MaxActiveNodes)
	case g.SLAMin <= 0 || g.SLAMax > 100 || g.SLAMax < g.SLAMin:
		return fmt.Errorf("scenario: SLA range [%v, %v] invalid", g.SLAMin, g.SLAMax)
	case g.PenaltyMaxUSD < 0:
		return fmt.Errorf("scenario: PenaltyMaxUSD = %v, must be >= 0", g.PenaltyMaxUSD)
	}
	return nil
}

// generatorLayers are the component shapes the generator draws from.
var generatorLayers = []struct {
	layer topology.Layer
	class string
}{
	{topology.LayerCompute, topology.ClassVirtualMachine},
	{topology.LayerCompute, topology.ClassBareMetal},
	{topology.LayerMiddleware, topology.ClassVirtualMachine},
	{topology.LayerStorage, topology.ClassBlockVolume},
	{topology.LayerStorage, topology.ClassObjectStore},
	{topology.LayerNetwork, topology.ClassGateway},
	{topology.LayerNetwork, topology.ClassLoadBalancer},
}

// Generate draws a random, valid brokerage request from the bounds.
// The same (config, rng state) always yields the same request.
func Generate(cfg GeneratorConfig, rng *rand.Rand, provider string) (broker.Request, error) {
	if err := cfg.Validate(); err != nil {
		return broker.Request{}, err
	}
	n := cfg.MinComponents + rng.Intn(cfg.MaxComponents-cfg.MinComponents+1)
	comps := make([]topology.Component, n)
	for i := range comps {
		shape := generatorLayers[rng.Intn(len(generatorLayers))]
		comps[i] = topology.Component{
			Name:        fmt.Sprintf("%s-%d", shape.layer, i),
			Layer:       shape.layer,
			ActiveNodes: 1 + rng.Intn(cfg.MaxActiveNodes),
			Class:       shape.class,
		}
	}
	req := broker.Request{
		Base: topology.System{
			Name:       fmt.Sprintf("generated-%d", rng.Int63()),
			Provider:   provider,
			Components: comps,
		},
		SLA: cost.SLA{
			UptimePercent: cfg.SLAMin + rng.Float64()*(cfg.SLAMax-cfg.SLAMin),
			Penalty:       cost.Penalty{PerHour: cost.Dollars(rng.Float64() * cfg.PenaltyMaxUSD)},
		},
	}
	if err := req.Validate(); err != nil {
		return broker.Request{}, fmt.Errorf("scenario: generated invalid request: %w", err)
	}
	return req, nil
}

package report

import (
	"context"
	"encoding/csv"
	"strings"
	"testing"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
)

func caseStudyRec(t *testing.T) *broker.Recommendation {
	t.Helper()
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := engine.Recommend(context.Background(), broker.CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestTextRendersAllOptions(t *testing.T) {
	rec := caseStudyRec(t)
	var sb strings.Builder
	if err := Text(&sb, rec); err != nil {
		t.Fatalf("Text: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"#1", "#8",
		"storage=raid1",
		"RECOMMENDED",
		"min-risk",
		"as-is",
		"$1,164.90",
		"$3,050.00",
		"savings 61.8%",
		"8 options, 7 evaluated, 1 pruned",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Text output missing %q:\n%s", want, out)
		}
	}
}

func TestTextWithoutAsIs(t *testing.T) {
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	req := broker.CaseStudy()
	req.AsIs = nil
	rec, err := engine.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Text(&sb, rec); err != nil {
		t.Fatalf("Text: %v", err)
	}
	if strings.Contains(sb.String(), "as-is") {
		t.Fatal("Text should omit the as-is block without an incumbent")
	}
}

func TestMarkdownShape(t *testing.T) {
	rec := caseStudyRec(t)
	var sb strings.Builder
	if err := Markdown(&sb, rec); err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "### three-tier on softlayer-sim") {
		t.Fatalf("Markdown header wrong:\n%s", out)
	}
	// 8 option rows + header + separator.
	lines := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "| #") {
			lines++
		}
	}
	if lines != 8 {
		t.Fatalf("Markdown option rows = %d, want 8", lines)
	}
	if !strings.Contains(out, "**recommended:** option #3") {
		t.Fatalf("Markdown missing recommendation:\n%s", out)
	}
	if !strings.Contains(out, "**savings vs as-is:** 61.8%") {
		t.Fatalf("Markdown missing savings:\n%s", out)
	}
}

func TestCSVParsesBack(t *testing.T) {
	rec := caseStudyRec(t)
	var sb strings.Builder
	if err := CSV(&sb, rec); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("parsing emitted CSV: %v", err)
	}
	if len(records) != 9 { // header + 8 options
		t.Fatalf("CSV rows = %d, want 9", len(records))
	}
	if len(records[0]) != len(CSVHeader) {
		t.Fatalf("CSV columns = %d, want %d", len(records[0]), len(CSVHeader))
	}
	// Option #3 row carries the RECOMMENDED note and the right TCO.
	row3 := records[3]
	if row3[0] != "3" || row3[1] != "storage=raid1" {
		t.Fatalf("row 3 = %v", row3)
	}
	if row3[6] != "1164.90" {
		t.Fatalf("row 3 TCO = %q, want 1164.90", row3[6])
	}
	if !strings.Contains(row3[8], "RECOMMENDED") {
		t.Fatalf("row 3 note = %q", row3[8])
	}
}

func TestRowNoteCombinations(t *testing.T) {
	rec := caseStudyRec(t)
	if note := rowNote(rec, rec.BestOption); note != "RECOMMENDED" {
		t.Fatalf("best note = %q", note)
	}
	if note := rowNote(rec, 1); note != "" {
		t.Fatalf("plain note = %q", note)
	}
	// Force an overlap: pretend best == as-is.
	recCopy := *rec
	recCopy.AsIsOption = recCopy.BestOption
	if note := rowNote(&recCopy, recCopy.BestOption); note != "RECOMMENDED, as-is" {
		t.Fatalf("combined note = %q", note)
	}
}

// Package report renders broker recommendations for humans and
// machines: fixed-width text (CLI output), Markdown (documentation,
// tickets) and CSV (spreadsheets, plotting). The renderers are pure
// functions of the Recommendation, so every consumer — uptimectl, the
// experiments harness, downstream users — shows identical numbers.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"

	"uptimebroker/internal/broker"
)

// Marker labels attached to special rows.
const (
	markerRecommended = "RECOMMENDED"
	markerMinRisk     = "min-risk"
	markerAsIs        = "as-is"
)

// rowNote builds the annotation for one option row.
func rowNote(rec *broker.Recommendation, option int) string {
	var notes []string
	if option == rec.BestOption {
		notes = append(notes, markerRecommended)
	}
	if option == rec.MinRiskOption {
		notes = append(notes, markerMinRisk)
	}
	if option == rec.AsIsOption {
		notes = append(notes, markerAsIs)
	}
	return strings.Join(notes, ", ")
}

// Text writes the recommendation as an aligned fixed-width table with a
// summary block, suitable for terminals.
func Text(w io.Writer, rec *broker.Recommendation) error {
	if _, err := fmt.Fprintf(w, "system %q on %s — SLA %.2f%%, penalty %s/hour\n\n",
		rec.System, rec.Provider, rec.SLA.UptimePercent, rec.SLA.Penalty.PerHour); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "option\tHA selection\tC_HA/mo\tuptime %\tslip h/mo\tpenalty/mo\tTCO/mo\tnote")
	for _, c := range rec.Cards {
		fmt.Fprintf(tw, "#%d\t%s\t%s\t%.4f\t%.2f\t%s\t%s\t%s\n",
			c.Option, c.Label(), c.HACost, c.Uptime*100, c.SlippageHours, c.Penalty, c.TCO,
			rowNote(rec, c.Option))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "\nrecommended: option #%d (%s) at %s/month\n",
		rec.BestOption, rec.Best().Label(), rec.Best().TCO); err != nil {
		return err
	}
	if rec.MinRiskOption > 0 {
		minRisk := rec.Cards[rec.MinRiskOption-1]
		if _, err := fmt.Fprintf(w, "min-risk:    option #%d (%s) at %s/month\n",
			rec.MinRiskOption, minRisk.Label(), minRisk.TCO); err != nil {
			return err
		}
	}
	if rec.AsIsOption > 0 {
		asIs := rec.Cards[rec.AsIsOption-1]
		if _, err := fmt.Fprintf(w, "as-is:       option #%d (%s) at %s/month — savings %.1f%%\n",
			rec.AsIsOption, asIs.Label(), asIs.TCO, rec.SavingsFraction*100); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "search:      %d options, %d evaluated, %d pruned\n",
		rec.Search.SpaceSize, rec.Search.Evaluated, rec.Search.Skipped)
	return err
}

// Markdown writes the recommendation as a GitHub-flavored Markdown
// table with a summary list.
func Markdown(w io.Writer, rec *broker.Recommendation) error {
	if _, err := fmt.Fprintf(w, "### %s on %s — SLA %.2f%%\n\n", rec.System, rec.Provider, rec.SLA.UptimePercent); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| option | HA selection | C_HA/mo | uptime % | penalty/mo | TCO/mo | note |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|--------|--------------|---------|----------|------------|--------|------|"); err != nil {
		return err
	}
	for _, c := range rec.Cards {
		if _, err := fmt.Fprintf(w, "| #%d | %s | %s | %.4f | %s | %s | %s |\n",
			c.Option, c.Label(), c.HACost, c.Uptime*100, c.Penalty, c.TCO, rowNote(rec, c.Option)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n- **recommended:** option #%d (%s), %s/month\n",
		rec.BestOption, rec.Best().Label(), rec.Best().TCO); err != nil {
		return err
	}
	if rec.AsIsOption > 0 {
		if _, err := fmt.Fprintf(w, "- **savings vs as-is:** %.1f%%\n", rec.SavingsFraction*100); err != nil {
			return err
		}
	}
	return nil
}

// CSVHeader is the column layout CSV emits.
var CSVHeader = []string{
	"option", "label", "ha_cost_usd", "uptime", "slippage_hours_per_month",
	"penalty_usd", "tco_usd", "meets_sla", "note",
}

// CSV writes one row per option plus a header, RFC-4180 formatted.
func CSV(w io.Writer, rec *broker.Recommendation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	for _, c := range rec.Cards {
		row := []string{
			strconv.Itoa(c.Option),
			c.Label(),
			strconv.FormatFloat(c.HACost.Dollars(), 'f', 2, 64),
			strconv.FormatFloat(c.Uptime, 'f', 8, 64),
			strconv.FormatFloat(c.SlippageHours, 'f', 4, 64),
			strconv.FormatFloat(c.Penalty.Dollars(), 'f', 2, 64),
			strconv.FormatFloat(c.TCO.Dollars(), 'f', 2, 64),
			strconv.FormatBool(c.MeetsSLA),
			rowNote(rec, c.Option),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package broker

import (
	"math/rand"
	"sort"
	"testing"

	"uptimebroker/internal/optimize"
)

// shapeProblem builds a Problem with the given per-component variant
// counts; the ranker only reads the shape, so clusters stay zero.
func shapeProblem(arities []int) *optimize.Problem {
	comps := make([]optimize.ComponentChoices, len(arities))
	for i, k := range arities {
		comps[i] = optimize.ComponentChoices{Name: "c", Variants: make([]optimize.Variant, k)}
	}
	return &optimize.Problem{Components: comps}
}

// TestRankerMatchesPresentationSort pins the combinatorial position
// against the reference definition: enumerate every assignment, sort
// by (clustered count, lexicographic), and require position() to name
// exactly that index — the order the sort-based Recommend produced
// before the streaming pass replaced it.
func TestRankerMatchesPresentationSort(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		arities := make([]int, n)
		for i := range arities {
			arities[i] = 1 + rng.Intn(4)
		}
		p := shapeProblem(arities)

		var all []optimize.Assignment
		a := make(optimize.Assignment, n)
		for {
			all = append(all, a.Clone())
			done := true
			for i := n - 1; i >= 0; i-- {
				a[i]++
				if a[i] < arities[i] {
					done = false
					break
				}
				a[i] = 0
			}
			if done {
				break
			}
		}
		sort.Slice(all, func(x, y int) bool {
			ha, hb := haCount(all[x]), haCount(all[y])
			if ha != hb {
				return ha < hb
			}
			for i := range all[x] {
				if all[x][i] != all[y][i] {
					return all[x][i] < all[y][i]
				}
			}
			return false
		})

		rk := newRanker(p)
		for want, asg := range all {
			if got := rk.position(asg); got != want {
				t.Fatalf("trial %d (arities %v): position(%v) = %d, want %d",
					trial, arities, asg, got, want)
			}
		}
	}
}

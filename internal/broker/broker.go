// Package broker implements the uptime-aware brokerage service of the
// paper's Section II.C (Figure 2): given a base cloud solution
// architecture, an uptime SLA with its slippage penalty, and the
// broker's cross-cloud knowledge (catalog rate cards plus telemetry
// parameter estimates), it models every HA-enabled permutation of the
// base architecture, prices each one's monthly TCO per Equation 5, and
// recommends the minimum-TCO topology per Equation 6.
package broker

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/obs"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/reccache"
	"uptimebroker/internal/telemetry"
	"uptimebroker/internal/topology"
)

// ParamSource resolves node reliability parameters for a (provider,
// component class) pair — the P_i and f_i of the model.
type ParamSource interface {
	NodeParams(provider, class string) (availability.NodeParams, error)
}

// EpochSource is the optional second face of a ParamSource: a
// mutation epoch that changes whenever the source could answer
// NodeParams differently. The engine's result-cache keys embed it, so
// fresh telemetry invalidates every cached recommendation that might
// have used it. Sources that cannot change need not implement it.
type EpochSource interface {
	Epoch() uint64
}

// CatalogParams is a ParamSource backed by the catalog's long-term
// provider defaults.
type CatalogParams struct {
	Catalog *catalog.Catalog
}

// NodeParams implements ParamSource.
func (c CatalogParams) NodeParams(provider, class string) (availability.NodeParams, error) {
	return c.Catalog.DefaultNodeParams(provider, class)
}

// Epoch implements EpochSource: catalog defaults move only when the
// catalog does.
func (c CatalogParams) Epoch() uint64 { return c.Catalog.Epoch() }

// TelemetryParams is a ParamSource that prefers fresh telemetry
// estimates and falls back to another source (typically the catalog)
// when a bucket has insufficient observation behind it.
type TelemetryParams struct {
	// Store supplies the live estimates.
	Store *telemetry.Store

	// Fallback answers when the store has no usable estimate.
	Fallback ParamSource

	// MinExposureYears is the minimum node-years of observation an
	// estimate needs before it overrides the fallback.
	MinExposureYears float64
}

// NodeParams implements ParamSource.
func (t TelemetryParams) NodeParams(provider, class string) (availability.NodeParams, error) {
	if t.Store != nil {
		if params, err := t.Store.Estimate(provider, class); err == nil && params.ExposureYears >= t.MinExposureYears {
			return params.Node, nil
		}
	}
	if t.Fallback == nil {
		return availability.NodeParams{}, fmt.Errorf("broker: no telemetry and no fallback for %s/%s", provider, class)
	}
	return t.Fallback.NodeParams(provider, class)
}

// Epoch implements EpochSource by folding the store's observation
// epoch with the fallback's (when it has one): an estimate can move
// because new telemetry arrived or because the fallback changed.
func (t TelemetryParams) Epoch() uint64 {
	var e uint64
	if t.Store != nil {
		e = t.Store.Epoch()
	}
	if es, ok := t.Fallback.(EpochSource); ok {
		// Shift keeps the two counters from cancelling each other out.
		e = e*1_000_003 + es.Epoch()
	}
	return e
}

// Plan maps component names to HA technology IDs; a missing or empty
// entry means no HA for that component. It describes either an
// incumbent ("as-is") deployment or a recommended one.
type Plan map[string]string

// Request is what a customer (or the provider acting for one) submits
// to the brokerage: the inputs enumerated in Section II.C.
type Request struct {
	// Base is the base cloud solution architecture.
	Base topology.System

	// SLA is the contractual uptime target and slippage penalty.
	SLA cost.SLA

	// AsIs optionally describes the incumbent ad-hoc HA strategy; when
	// present the recommendation reports the savings against it (the
	// paper's Figure 10 comparison).
	AsIs Plan

	// AllowedTechs optionally restricts the HA choices per component to
	// the named technology IDs; nil means every catalog technology for
	// the component's layer is in play. The case study restricts each
	// layer to its single classic mechanism, giving k = 2.
	AllowedTechs map[string][]string

	// Strategy names the optimize solver the search runs on, one of
	// optimize.Strategies(). Empty falls back to the engine's default,
	// then to "auto".
	//
	// Deprecated alias: Strategy is the flat spelling of Solver.Strategy
	// and remains fully supported — normalize folds it into the nested
	// Solver spec, so the two spellings compile identically and share
	// one cache address. Setting both to different names is a
	// contradiction Validate rejects.
	Strategy string

	// Solver is the nested solver specification: the strategy plus the
	// anytime lane's budget and knobs (beam width, discrepancy budget,
	// epsilon). The zero value means "auto with no limits", exactly the
	// empty flat Strategy. Exact strategies reject an evaluation cap and
	// turn a wall budget into a deadline; the approximate strategies
	// (beam, lds, bounded) honor both budget kinds and certify their
	// optimality gap in SearchStats.
	Solver optimize.SolverConfig

	// Pricing selects how the full card-pricing pass enumerates the
	// k^n options: PricingParallel shards it across GOMAXPROCS
	// workers, PricingSequential prices on one core, PricingAuto lets
	// the engine pick from the host shape and the space size. Empty
	// falls back to the engine's configuration (auto unless an engine
	// option overrides it). Every mode produces byte-identical option
	// cards; the choice only moves latency.
	Pricing string
}

// Pricing modes for the full card-pricing pass (Request.Pricing, the
// wire "pricing" field).
const (
	// PricingParallel shards the k^n enumeration across GOMAXPROCS
	// workers (optimize.ParallelAllContext).
	PricingParallel = "parallel"

	// PricingSequential prices every option on one core
	// (optimize.AllContext).
	PricingSequential = "sequential"

	// PricingAuto resolves to parallel or sequential from the host
	// shape: sharding pays only when there is more than one core to
	// shard across and enough candidates to amortize the worker
	// scaffolding (on the single-core benchmark host, parallel pricing
	// measures 0.90–0.98x sequential — pure overhead).
	PricingAuto = "auto"
)

// ValidPricing reports whether mode is a known pricing mode (""
// counts as valid: it means the caller's default).
func ValidPricing(mode string) bool {
	switch mode {
	case "", PricingAuto, PricingParallel, PricingSequential:
		return true
	}
	return false
}

// Validate reports whether the request is well-formed (catalog
// consistency is checked during compilation).
func (r Request) Validate() error {
	if err := r.Base.Validate(); err != nil {
		return fmt.Errorf("broker: %w", err)
	}
	if err := r.SLA.Validate(); err != nil {
		return fmt.Errorf("broker: %w", err)
	}
	for name := range r.AsIs {
		if _, ok := r.Base.Component(name); !ok {
			return fmt.Errorf("broker: as-is plan names unknown component %q", name)
		}
	}
	for name := range r.AllowedTechs {
		if _, ok := r.Base.Component(name); !ok {
			return fmt.Errorf("broker: allowed-techs names unknown component %q", name)
		}
	}
	if !optimize.ValidStrategy(r.Strategy) {
		return fmt.Errorf("broker: unknown strategy %q (choose from %v, or leave empty for auto)",
			r.Strategy, optimize.Strategies())
	}
	if r.Strategy != "" && r.Solver.Strategy != "" && r.Strategy != r.Solver.Strategy {
		return fmt.Errorf("broker: strategy %q contradicts solver.strategy %q (set one, or make them agree)",
			r.Strategy, r.Solver.Strategy)
	}
	if err := r.Solver.Validate(); err != nil {
		return fmt.Errorf("broker: %w", err)
	}
	if !ValidPricing(r.Pricing) {
		return fmt.Errorf("broker: unknown pricing mode %q (choose %q, %q or %q, or leave empty for the engine default)",
			r.Pricing, PricingAuto, PricingParallel, PricingSequential)
	}
	return nil
}

// Engine is the brokerage service core.
type Engine struct {
	catalog         *catalog.Catalog
	params          ParamSource
	defaultStrategy string
	pricing         string
	cache           *reccache.Cache

	// metrics is the engine's registry attachment (nil when
	// uninstrumented); metricsOnce serializes InstrumentMetrics and
	// pendingMetrics carries WithMetricsRegistry's argument to the end
	// of New so it composes with WithResultCache in any order.
	metrics        atomic.Pointer[engineMetrics]
	metricsOnce    sync.Mutex
	pendingMetrics *obs.Registry
}

// EngineOption customizes New.
type EngineOption func(*Engine)

// WithDefaultStrategy sets the solver strategy used for requests that
// do not name one (the built-in default is "auto"). The strategy must
// be registered with the optimize package; New rejects unknown names.
func WithDefaultStrategy(strategy string) EngineOption {
	return func(e *Engine) { e.defaultStrategy = strategy }
}

// WithPricing sets the card-pricing mode used for requests that do
// not name one: PricingAuto (the built-in default, which shards the
// pass across GOMAXPROCS workers only when the host has more than one
// core and the space is large enough to amortize the workers),
// PricingParallel or PricingSequential. Every mode produces
// byte-identical cards; requests override it per call with
// Request.Pricing. New rejects unknown modes.
func WithPricing(mode string) EngineOption {
	return func(e *Engine) { e.pricing = mode }
}

// WithParallelPricing forces the full card-pricing pass — every one
// of the k^n option cards, run on each Recommend/Pareto — onto
// GOMAXPROCS workers (true) or one core (false), overriding the auto
// default. Kept for callers that predate WithPricing; it is exactly
// WithPricing(PricingParallel) or WithPricing(PricingSequential).
func WithParallelPricing(on bool) EngineOption {
	return func(e *Engine) {
		if on {
			e.pricing = PricingParallel
		} else {
			e.pricing = PricingSequential
		}
	}
}

// WithResultCache attaches a content-addressed result cache:
// Recommend and Pareto answer repeated identical requests from it in
// O(1) and collapse concurrent identical requests into one search.
// Keys embed the catalog epoch (and the parameter source's epoch,
// when it exposes one), so catalog mutations and fresh telemetry
// invalidate every dependent entry automatically. Cached results are
// shared across callers and must be treated as read-only.
func WithResultCache(c *reccache.Cache) EngineOption {
	return func(e *Engine) { e.cache = c }
}

// New builds an engine over a catalog and a parameter source.
func New(cat *catalog.Catalog, params ParamSource, opts ...EngineOption) (*Engine, error) {
	if cat == nil {
		return nil, fmt.Errorf("broker: nil catalog")
	}
	if params == nil {
		return nil, fmt.Errorf("broker: nil parameter source")
	}
	e := &Engine{catalog: cat, params: params, pricing: PricingAuto}
	for _, opt := range opts {
		opt(e)
	}
	if !optimize.ValidStrategy(e.defaultStrategy) {
		return nil, fmt.Errorf("broker: unknown default strategy %q (choose from %v)",
			e.defaultStrategy, optimize.Strategies())
	}
	if !ValidPricing(e.pricing) {
		return nil, fmt.Errorf("broker: unknown pricing mode %q (choose %q, %q or %q)",
			e.pricing, PricingAuto, PricingParallel, PricingSequential)
	}
	e.InstrumentMetrics(e.pendingMetrics)
	return e, nil
}

// strategyFor resolves the solver strategy for one request: the
// request's choice (nested spelling first), else the engine default,
// else auto (the empty string, which optimize.Solve resolves to auto).
func (e *Engine) strategyFor(req Request) string {
	if req.Solver.Strategy != "" {
		return req.Solver.Strategy
	}
	if req.Strategy != "" {
		return req.Strategy
	}
	return e.defaultStrategy
}

// autoParallelPricingSpace is the space size below which auto pricing
// stays sequential even on multi-core hosts: with fewer candidates
// than this the worker scaffolding costs more than the sharding wins.
const autoParallelPricingSpace = 1 << 12

// autoParallelPricing decides PricingAuto for a host with procs
// schedulable cores pricing a space of the given size. Split out pure
// so tests can probe shapes the test host does not have.
func autoParallelPricing(procs, space int) bool {
	return procs >= 2 && space >= autoParallelPricingSpace
}

// parallelPricingFor resolves the pricing mode for one request: the
// request's choice, else the engine configuration, with auto resolved
// from the host shape and the problem's space size.
func (e *Engine) parallelPricingFor(req Request, space int) bool {
	mode := req.Pricing
	if mode == "" {
		mode = e.pricing
	}
	switch mode {
	case PricingParallel:
		return true
	case PricingSequential:
		return false
	}
	return autoParallelPricing(runtime.GOMAXPROCS(0), space)
}

// Catalog exposes the engine's catalog for read-only use by the HTTP
// layer.
func (e *Engine) Catalog() *catalog.Catalog { return e.catalog }

// CacheMetrics returns a snapshot of the result cache's counters; ok
// is false when no cache is attached.
func (e *Engine) CacheMetrics() (m reccache.Metrics, ok bool) {
	if e.cache == nil {
		return reccache.Metrics{}, false
	}
	return e.cache.Metrics(), true
}

// ParamsEpoch returns the parameter source's mutation epoch; ok is
// false when the source does not expose one (its estimates are then
// assumed immutable for the engine's lifetime, as CatalogParams' are
// modulo the catalog epoch already in every cache key).
func (e *Engine) ParamsEpoch() (epoch uint64, ok bool) {
	es, ok := e.params.(EpochSource)
	if !ok {
		return 0, false
	}
	return es.Epoch(), true
}

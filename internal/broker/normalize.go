package broker

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"

	"uptimebroker/internal/topology"
)

// normalize returns req in canonical form: the one spelling shared by
// problem compilation and the content-addressed cache key, so two
// semantically identical requests can never compile differently or
// hash differently. Canonicalization is purely syntactic — it never
// consults the catalog — so it is cheap enough to run before a cache
// lookup:
//
//   - AllowedTechs lists are sorted and deduplicated (matching the
//     sorted order TechnologiesForLayer uses for unrestricted
//     components, so variant order — and with it option numbering —
//     no longer depends on how a caller spelled the list),
//   - component classes are resolved to their layer defaults
//     (EffectiveClass, which is what compilation prices anyway),
//   - as-is entries naming the baseline ("") are dropped: a missing
//     entry already means "no HA" (nil AsIs stays nil — no incumbent
//     at all is a different request than an all-baseline incumbent),
//   - the solver spec is canonicalized to one spelling: the deprecated
//     flat Strategy and the nested Solver.Strategy are merged (nested
//     wins when both are set; Validate has already rejected real
//     contradictions), resolved through the engine default down to
//     "auto", and written back to BOTH fields — downstream code and
//     the cache key see a single spelling no matter which alias the
//     caller used.
//
// The pricing mode is deliberately NOT canonicalized into the key
// material: every mode produces byte-identical results, so requests
// differing only in pricing share one cache entry (cacheKey skips the
// field entirely).
func (e *Engine) normalize(req Request) Request {
	if len(req.AllowedTechs) > 0 {
		at := make(map[string][]string, len(req.AllowedTechs))
		for name, ids := range req.AllowedTechs {
			sorted := append([]string(nil), ids...)
			sort.Strings(sorted)
			out := sorted[:0]
			for i, id := range sorted {
				if i == 0 || id != sorted[i-1] {
					out = append(out, id)
				}
			}
			at[name] = out
		}
		req.AllowedTechs = at
	}
	if len(req.Base.Components) > 0 {
		comps := append([]topology.Component(nil), req.Base.Components...)
		for i := range comps {
			comps[i].Class = comps[i].EffectiveClass()
		}
		req.Base.Components = comps
	}
	if req.AsIs != nil {
		asIs := make(Plan, len(req.AsIs))
		for name, id := range req.AsIs {
			if id != "" {
				asIs[name] = id
			}
		}
		req.AsIs = asIs
	}
	if req.Strategy != "" && req.Solver.Strategy != "" && req.Strategy != req.Solver.Strategy {
		// Contradicting spellings are left untouched rather than
		// silently resolved: Validate (run by compile before any
		// search) rejects the request, which is the only correct
		// answer when the caller said two different things.
		return req
	}
	if req.Solver.Strategy == "" {
		req.Solver.Strategy = req.Strategy
	}
	if req.Solver.Strategy == "" {
		req.Solver.Strategy = e.defaultStrategy
	}
	if req.Solver.Strategy == "" {
		req.Solver.Strategy = "auto"
	}
	req.Strategy = req.Solver.Strategy
	return req
}

// cacheKey is the content address of a normalized request: a stable
// hash over everything the result depends on — the catalog epoch, the
// parameter source epoch (when exposed), the result kind, and every
// semantic request field. Computing it costs one SHA-256 over a few
// hundred bytes; no compilation, no catalog lookups beyond the two
// epoch loads. Anything that could change the answer must change the
// key: that single property is the cache's whole invalidation story.
func (e *Engine) cacheKey(kind string, req Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|%s|cat=%d|", kind, e.catalog.Epoch())
	if epoch, ok := e.ParamsEpoch(); ok {
		fmt.Fprintf(h, "params=%d|", epoch)
	}
	fmt.Fprintf(h, "sys=%q|provider=%q|", req.Base.Name, req.Base.Provider)
	for _, comp := range req.Base.Components {
		fmt.Fprintf(h, "comp=%q,%d,%d,%q|", comp.Name, comp.Layer, comp.ActiveNodes, comp.Class)
	}
	// Floats hash by their exact bit pattern: no formatting rounding.
	fmt.Fprintf(h, "sla=%x,pen=%d|", math.Float64bits(req.SLA.UptimePercent), req.SLA.Penalty.PerHour)
	if req.AsIs != nil {
		io.WriteString(h, "asis|")
		writeSortedPairs(h, req.AsIs)
	}
	if req.AllowedTechs != nil {
		io.WriteString(h, "allowed|")
		names := make([]string, 0, len(req.AllowedTechs))
		for name := range req.AllowedTechs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "%q=", name)
			for _, id := range req.AllowedTechs[name] {
				fmt.Fprintf(h, "%q,", id)
			}
			io.WriteString(h, "|")
		}
	}
	fmt.Fprintf(h, "strategy=%q", req.Strategy)
	// The solver knobs are hashed only when one is set, so every
	// pre-existing key — and every nested spelling that only names a
	// strategy — stays byte-identical to the flat spelling's address.
	if s := req.Solver; s.Budget.Wall != 0 || s.Budget.MaxEvaluations != 0 ||
		s.BeamWidth != 0 || s.MaxDiscrepancies != 0 || s.Epsilon != 0 {
		fmt.Fprintf(h, "|solver=%d,%d,%d,%d,%x",
			int64(s.Budget.Wall), s.Budget.MaxEvaluations,
			s.BeamWidth, s.MaxDiscrepancies, math.Float64bits(s.Epsilon))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeSortedPairs hashes a string map deterministically.
func writeSortedPairs(w io.Writer, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%q=%q|", k, m[k])
	}
}

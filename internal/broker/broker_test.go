package broker

import (
	"context"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/telemetry"
	"uptimebroker/internal/topology"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	cat := catalog.Default()
	e, err := New(cat, CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	cat := catalog.Default()
	if _, err := New(nil, CatalogParams{Catalog: cat}); err == nil {
		t.Fatal("nil catalog should fail")
	}
	if _, err := New(cat, nil); err == nil {
		t.Fatal("nil params should fail")
	}
}

func TestRequestValidate(t *testing.T) {
	req := CaseStudy()
	if err := req.Validate(); err != nil {
		t.Fatalf("case study invalid: %v", err)
	}

	bad := CaseStudy()
	bad.SLA.UptimePercent = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad SLA should fail")
	}

	bad = CaseStudy()
	bad.AsIs = Plan{"gpu": catalog.TechESXHA}
	if err := bad.Validate(); err == nil {
		t.Fatal("as-is with unknown component should fail")
	}

	bad = CaseStudy()
	bad.AllowedTechs = map[string][]string{"gpu": {catalog.TechESXHA}}
	if err := bad.Validate(); err == nil {
		t.Fatal("allowed-techs with unknown component should fail")
	}

	bad = CaseStudy()
	bad.Base.Components = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty base should fail")
	}
}

func TestCompileShape(t *testing.T) {
	e := newTestEngine(t)
	problem, err := e.Compile(CaseStudy())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := problem.SpaceSize(); got != 8 {
		t.Fatalf("case-study space = %d, want 8 (k=2, n=3)", got)
	}
	// Baseline variants carry no failover and no cost; HA variants add
	// the technology's standby nodes.
	for _, comp := range problem.Components {
		if comp.Variants[0].MonthlyCost != 0 {
			t.Fatalf("%s baseline cost = %v, want 0", comp.Name, comp.Variants[0].MonthlyCost)
		}
		if comp.Variants[0].Cluster.Tolerated != 0 {
			t.Fatalf("%s baseline tolerated = %d", comp.Name, comp.Variants[0].Cluster.Tolerated)
		}
		if comp.Variants[1].Cluster.Tolerated != 1 {
			t.Fatalf("%s HA tolerated = %d, want 1", comp.Name, comp.Variants[1].Cluster.Tolerated)
		}
		if comp.Variants[1].Cluster.Nodes != comp.Variants[0].Cluster.Nodes+1 {
			t.Fatalf("%s HA nodes = %d, want baseline+1", comp.Name, comp.Variants[1].Cluster.Nodes)
		}
	}
	// The compute tier is the paper's 3+1 ESX cluster.
	esx := problem.Components[0].Variants[1].Cluster
	if esx.Nodes != 4 || esx.Tolerated != 1 || esx.Failover != 15*time.Minute {
		t.Fatalf("ESX cluster = %+v", esx)
	}
}

func TestCompileErrors(t *testing.T) {
	e := newTestEngine(t)

	req := CaseStudy()
	req.Base.Provider = "ghost-cloud"
	if _, err := e.Compile(req); err == nil {
		t.Fatal("unknown provider should fail")
	}

	req = CaseStudy()
	req.AllowedTechs["storage"] = []string{"warp-drive"}
	if _, err := e.Compile(req); err == nil {
		t.Fatal("unknown tech should fail")
	}

	req = CaseStudy()
	req.AllowedTechs["storage"] = []string{catalog.TechESXHA} // compute tech on storage
	if _, err := e.Compile(req); err == nil {
		t.Fatal("layer-mismatched tech should fail")
	}

	req = CaseStudy()
	req.Base.Components[0].Class = "class.unpriced"
	if _, err := e.Compile(req); err == nil {
		t.Fatal("class without params should fail")
	}
}

// TestCaseStudyReproducesPaper is the headline reproduction check for
// Figure 10: option numbering per the paper, option #3 optimal, option
// #5 the min-risk choice, as-is = option #8, savings ≈ 62%.
func TestCaseStudyReproducesPaper(t *testing.T) {
	e := newTestEngine(t)
	rec, err := e.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}

	if len(rec.Cards) != 8 {
		t.Fatalf("cards = %d, want 8", len(rec.Cards))
	}

	// Paper option numbering: #1 none, #2 network, #3 storage,
	// #4 compute, #5 storage+network, #6 compute+network,
	// #7 compute+storage, #8 all.
	wantLabels := []string{
		"none",
		"network=dual-gateway",
		"storage=raid1",
		"compute=esx-ha",
		"storage=raid1,network=dual-gateway",
		"compute=esx-ha,network=dual-gateway",
		"compute=esx-ha,storage=raid1",
		"compute=esx-ha,storage=raid1,network=dual-gateway",
	}
	for i, want := range wantLabels {
		if got := rec.Cards[i].Label(); got != want {
			t.Fatalf("option #%d label = %q, want %q", i+1, got, want)
		}
	}

	if rec.BestOption != 3 {
		t.Fatalf("BestOption = %d, want 3 (storage-only HA)", rec.BestOption)
	}
	if rec.MinRiskOption != 5 {
		t.Fatalf("MinRiskOption = %d, want 5 (storage+network)", rec.MinRiskOption)
	}
	if rec.AsIsOption != 8 {
		t.Fatalf("AsIsOption = %d, want 8 (HA everywhere)", rec.AsIsOption)
	}

	// Savings ≈ 62% (the paper says "close to 62%"; the calibrated rate
	// card must land within two points).
	if rec.SavingsFraction < 0.60 || rec.SavingsFraction > 0.64 {
		t.Fatalf("savings = %.4f, want ≈ 0.62", rec.SavingsFraction)
	}

	// As-is TCO equals its HA cost (it exceeds the SLA).
	asIs := rec.Cards[7]
	if !asIs.MeetsSLA || asIs.Penalty != 0 {
		t.Fatalf("as-is card should meet the SLA with zero penalty: %+v", asIs)
	}
	if asIs.HACost != cost.Dollars(1800+350+900) {
		t.Fatalf("as-is HA cost = %v, want $3,050", asIs.HACost)
	}

	// Option #5 meets the SLA, options #1-#4 do not.
	if !rec.Cards[4].MeetsSLA {
		t.Fatal("option #5 should meet the 98% SLA")
	}
	for i := 0; i < 4; i++ {
		if rec.Cards[i].MeetsSLA {
			t.Fatalf("option #%d should not meet the SLA", i+1)
		}
	}

	// The pruned search must have clipped at least the #8 superset.
	if rec.Search.Skipped == 0 {
		t.Fatal("pruned search skipped nothing")
	}
	if rec.Search.SpaceSize != 8 || rec.Search.Evaluated+rec.Search.Skipped != 8 {
		t.Fatalf("search stats inconsistent: %+v", rec.Search)
	}
}

func TestRecommendCardInternals(t *testing.T) {
	e := newTestEngine(t)
	rec, err := e.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}

	for _, card := range rec.Cards {
		if card.TCO != card.HACost+card.Penalty {
			t.Fatalf("option #%d: TCO %v != HA %v + penalty %v", card.Option, card.TCO, card.HACost, card.Penalty)
		}
		if card.MeetsSLA != (card.Uptime >= rec.SLA.Target()) {
			t.Fatalf("option #%d: MeetsSLA inconsistent", card.Option)
		}
		if card.MeetsSLA && card.SlippageHours != 0 {
			t.Fatalf("option #%d: slippage hours %v with SLA met", card.Option, card.SlippageHours)
		}
		if len(card.Choices) != 3 {
			t.Fatalf("option #%d: %d choices", card.Option, len(card.Choices))
		}
	}

	best := rec.Best()
	if best.Option != rec.BestOption {
		t.Fatal("Best() disagrees with BestOption")
	}
	if _, err := rec.Card(0); err == nil {
		t.Fatal("Card(0) should fail")
	}
	if _, err := rec.Card(9); err == nil {
		t.Fatal("Card(9) should fail")
	}
	c3, err := rec.Card(3)
	if err != nil {
		t.Fatalf("Card(3): %v", err)
	}
	plan := c3.Plan()
	if len(plan) != 1 || plan["storage"] != catalog.TechRAID1 {
		t.Fatalf("option #3 plan = %v", plan)
	}
}

func TestRecommendAsIsErrors(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.AsIs = Plan{"storage": "warp-drive"}
	if _, err := e.Recommend(context.Background(), req); err == nil {
		t.Fatal("inexpressible as-is plan should fail")
	}
}

func TestRecommendWithoutAsIs(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.AsIs = nil
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if rec.AsIsOption != 0 || rec.SavingsFraction != 0 {
		t.Fatalf("no as-is: AsIsOption=%d savings=%v", rec.AsIsOption, rec.SavingsFraction)
	}
}

func TestFutureWorkScenario(t *testing.T) {
	e := newTestEngine(t)
	req := FutureWork(catalog.ProviderSoftLayerSim)
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	// Five components; compute tiers have 3 choices (none + 2 techs),
	// middleware 2, storage 5, network 3.
	want := 3 * 3 * 2 * 5 * 3
	if rec.Search.SpaceSize != want {
		t.Fatalf("space = %d, want %d", rec.Search.SpaceSize, want)
	}
	if len(rec.Cards) != want {
		t.Fatalf("cards = %d, want %d", len(rec.Cards), want)
	}
	if rec.BestOption < 1 || rec.BestOption > want {
		t.Fatalf("BestOption = %d", rec.BestOption)
	}
	// The 98% SLA on this system should be attainable with some HA.
	if rec.MinRiskOption == 0 {
		t.Fatal("no option meets the 98% SLA; calibration off")
	}
	// Pruning must help in a 270-option space.
	if rec.Search.Skipped == 0 {
		t.Fatal("pruned search skipped nothing in the future-work space")
	}
}

func TestTelemetryParamsPreferFreshEstimates(t *testing.T) {
	cat := catalog.Default()
	store := telemetry.NewStore()

	// Seed telemetry with a much worse storage estimate than the
	// catalog default (Down 0.02): 10% down probability.
	exposure := 10 * 365 * 24 * time.Hour
	if err := store.RecordExposure(catalog.ProviderSoftLayerSim, topology.ClassBlockVolume, exposure); err != nil {
		t.Fatal(err)
	}
	if err := store.RecordOutage(catalog.ProviderSoftLayerSim, topology.ClassBlockVolume, time.Duration(float64(exposure)*0.1)); err != nil {
		t.Fatal(err)
	}

	src := TelemetryParams{
		Store:            store,
		Fallback:         CatalogParams{Catalog: cat},
		MinExposureYears: 1,
	}

	got, err := src.NodeParams(catalog.ProviderSoftLayerSim, topology.ClassBlockVolume)
	if err != nil {
		t.Fatalf("NodeParams: %v", err)
	}
	if got.Down < 0.09 || got.Down > 0.11 {
		t.Fatalf("telemetry-backed Down = %v, want ≈ 0.10", got.Down)
	}

	// A class without telemetry falls back to the catalog.
	got, err = src.NodeParams(catalog.ProviderSoftLayerSim, topology.ClassGateway)
	if err != nil {
		t.Fatalf("NodeParams fallback: %v", err)
	}
	if got.Down != 0.0146 {
		t.Fatalf("fallback Down = %v, want catalog default 0.0146", got.Down)
	}

	// Insufficient exposure also falls back.
	thin := TelemetryParams{Store: store, Fallback: CatalogParams{Catalog: cat}, MinExposureYears: 100}
	got, err = thin.NodeParams(catalog.ProviderSoftLayerSim, topology.ClassBlockVolume)
	if err != nil {
		t.Fatalf("NodeParams thin: %v", err)
	}
	if got.Down != 0.02 {
		t.Fatalf("thin-exposure Down = %v, want catalog default 0.02", got.Down)
	}

	// No store and no fallback is an error.
	empty := TelemetryParams{}
	if _, err := empty.NodeParams("p", "c"); err == nil {
		t.Fatal("empty TelemetryParams should fail")
	}
}

func TestTelemetryShiftsRecommendation(t *testing.T) {
	// When live telemetry shows storage is actually rock-solid and
	// compute is the real risk, the recommendation should move away
	// from storage-only HA — the broker's data feedback loop matters.
	cat := catalog.Default()
	store := telemetry.NewStore()
	exposure := 20 * 365 * 24 * time.Hour

	seed := func(class string, down float64, failures int) {
		t.Helper()
		if err := store.RecordExposure(catalog.ProviderSoftLayerSim, class, exposure); err != nil {
			t.Fatal(err)
		}
		if err := store.RecordOutage(catalog.ProviderSoftLayerSim, class, time.Duration(float64(exposure)*down)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < failures-1; i++ {
			if err := store.RecordOutage(catalog.ProviderSoftLayerSim, class, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	seed(topology.ClassVirtualMachine, 0.02, 100) // compute now the dominant risk
	seed(topology.ClassBlockVolume, 0.0002, 20)   // storage nearly perfect
	seed(topology.ClassGateway, 0.0002, 20)       // network nearly perfect

	e, err := New(cat, TelemetryParams{Store: store, Fallback: CatalogParams{Catalog: cat}, MinExposureYears: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := e.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	best := rec.Best()
	plan := best.Plan()
	if _, hasStorage := plan["storage"]; hasStorage {
		t.Fatalf("with solid storage telemetry the optimum should not buy storage HA: %v", plan)
	}
	if _, hasCompute := plan["compute"]; !hasCompute {
		t.Fatalf("with flaky compute telemetry the optimum should buy compute HA: %v", plan)
	}
}

func TestRecommendationConsistentWithAvailabilityModel(t *testing.T) {
	// Spot-check card #1 (no HA) against a hand-built availability
	// system using the catalog defaults.
	cat := catalog.Default()
	e := newTestEngine(t)
	rec, err := e.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatal(err)
	}

	vm, _ := cat.DefaultNodeParams(catalog.ProviderSoftLayerSim, topology.ClassVirtualMachine)
	disk, _ := cat.DefaultNodeParams(catalog.ProviderSoftLayerSim, topology.ClassBlockVolume)
	gw, _ := cat.DefaultNodeParams(catalog.ProviderSoftLayerSim, topology.ClassGateway)
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "compute", Nodes: 3, NodeDown: vm.Down, FailuresPerYear: vm.FailuresPerYear},
		{Name: "storage", Nodes: 1, NodeDown: disk.Down, FailuresPerYear: disk.FailuresPerYear},
		{Name: "network", Nodes: 1, NodeDown: gw.Down, FailuresPerYear: gw.FailuresPerYear},
	}}
	want := sys.Uptime()
	got := rec.Cards[0].Uptime
	if diff := got - want; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("card #1 uptime = %v, hand-built = %v", got, want)
	}
}

func TestOptionCardLabelEdgeCases(t *testing.T) {
	c := OptionCard{Choices: []Choice{{Component: "a"}, {Component: "b"}}}
	if got := c.Label(); got != "none" {
		t.Fatalf("Label() = %q, want none", got)
	}
	c.Choices[1].TechID = "x"
	if got := c.Label(); got != "b=x" {
		t.Fatalf("Label() = %q, want b=x", got)
	}
	if !strings.Contains(OptionCard{Choices: []Choice{{Component: "a", TechID: "t1"}, {Component: "b", TechID: "t2"}}}.Label(), ",") {
		t.Fatal("multi-choice label should be comma separated")
	}
}

// TestStrategySelection covers the three-level strategy resolution:
// request > engine default > auto, plus validation of unknown names.
func TestStrategySelection(t *testing.T) {
	cat := catalog.Default()
	ctx := context.Background()

	t.Run("unknown request strategy rejected", func(t *testing.T) {
		req := CaseStudy()
		req.Strategy = "simulated-annealing"
		if err := req.Validate(); err == nil || !strings.Contains(err.Error(), "simulated-annealing") {
			t.Fatalf("Validate = %v, want unknown-strategy error", err)
		}
	})

	t.Run("unknown engine default rejected", func(t *testing.T) {
		if _, err := New(cat, CatalogParams{Catalog: cat}, WithDefaultStrategy("nope")); err == nil {
			t.Fatal("unknown default strategy should fail New")
		}
	})

	t.Run("request strategy echoed in search stats", func(t *testing.T) {
		e := newTestEngine(t)
		req := CaseStudy()
		req.Strategy = optimize.StrategyExhaustive
		rec, err := e.Recommend(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Search.Strategy != optimize.StrategyExhaustive {
			t.Fatalf("Search.Strategy = %q, want exhaustive", rec.Search.Strategy)
		}
		if rec.Search.Evaluated != rec.Search.SpaceSize || rec.Search.Skipped != 0 {
			t.Fatalf("exhaustive stats = %+v", rec.Search)
		}
	})

	t.Run("engine default applies when request silent", func(t *testing.T) {
		e, err := New(cat, CatalogParams{Catalog: cat}, WithDefaultStrategy(optimize.StrategyBranchAndBound))
		if err != nil {
			t.Fatal(err)
		}
		rec, err := e.Recommend(ctx, CaseStudy())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Search.Strategy != optimize.StrategyBranchAndBound {
			t.Fatalf("Search.Strategy = %q, want the engine default", rec.Search.Strategy)
		}
	})

	t.Run("auto resolves to pruned on the case study", func(t *testing.T) {
		e := newTestEngine(t)
		rec, err := e.Recommend(ctx, CaseStudy())
		if err != nil {
			t.Fatal(err)
		}
		if rec.Search.Strategy != optimize.StrategyPruned {
			t.Fatalf("Search.Strategy = %q, want pruned", rec.Search.Strategy)
		}
	})

	t.Run("every strategy agrees on the recommendation", func(t *testing.T) {
		e := newTestEngine(t)
		base, err := e.Recommend(ctx, CaseStudy())
		if err != nil {
			t.Fatal(err)
		}
		for _, strategy := range optimize.Strategies() {
			req := CaseStudy()
			req.Strategy = strategy
			rec, err := e.Recommend(ctx, req)
			if err != nil {
				t.Fatalf("Recommend(%s): %v", strategy, err)
			}
			if rec.BestOption != base.BestOption || rec.MinRiskOption != base.MinRiskOption {
				t.Fatalf("strategy %q changed the answer: %d/%d vs %d/%d",
					strategy, rec.BestOption, rec.MinRiskOption, base.BestOption, base.MinRiskOption)
			}
		}
	})
}

package broker

import (
	"fmt"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/topology"
)

// NoHALabel is the variant label of the "no HA" baseline choice.
const NoHALabel = "none"

// compiled carries the optimization problem together with the metadata
// needed to translate assignments back into plans and cards.
type compiled struct {
	problem *optimize.Problem
	// techIDs[i][v] is the technology ID behind component i's variant v
	// ("" for the baseline).
	techIDs [][]string
	// names[i] is component i's name.
	names []string
}

// Compile translates a request into an optimize.Problem: for every
// component, the no-HA baseline plus one variant per allowed catalog
// technology of the component's layer, with cluster parameters drawn
// from the parameter source and prices from the provider's rate card.
func (e *Engine) Compile(req Request) (*optimize.Problem, error) {
	c, err := e.compile(e.normalize(req))
	if err != nil {
		return nil, err
	}
	return c.problem, nil
}

func (e *Engine) compile(req Request) (*compiled, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	provider, err := e.catalog.Provider(req.Base.Provider)
	if err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}

	comps := make([]optimize.ComponentChoices, 0, len(req.Base.Components))
	techIDs := make([][]string, 0, len(req.Base.Components))
	names := make([]string, 0, len(req.Base.Components))

	for _, comp := range req.Base.Components {
		params, err := e.params.NodeParams(req.Base.Provider, comp.EffectiveClass())
		if err != nil {
			return nil, fmt.Errorf("broker: component %q: %w", comp.Name, err)
		}
		if err := params.Validate(); err != nil {
			return nil, fmt.Errorf("broker: component %q: %w", comp.Name, err)
		}

		techs, err := e.allowedTechs(req, comp.Name, comp.Layer)
		if err != nil {
			return nil, err
		}

		variants := make([]optimize.Variant, 0, 1+len(techs))
		ids := make([]string, 0, 1+len(techs))

		// Baseline: exactly the active nodes, no tolerance, no failover.
		variants = append(variants, optimize.Variant{
			Label: NoHALabel,
			Cluster: availability.Cluster{
				Name:            comp.Name,
				Nodes:           comp.ActiveNodes,
				Tolerated:       0,
				NodeDown:        params.Down,
				FailuresPerYear: params.FailuresPerYear,
			},
		})
		ids = append(ids, "")

		for _, tech := range techs {
			variants = append(variants, optimize.Variant{
				Label: tech.ID,
				Cluster: availability.Cluster{
					Name:            comp.Name,
					Nodes:           comp.ActiveNodes + tech.StandbyNodes,
					Tolerated:       tech.StandbyNodes,
					NodeDown:        params.Down,
					FailuresPerYear: params.FailuresPerYear,
					Failover:        tech.Failover,
				},
				MonthlyCost: tech.MonthlyCost(provider.RateCard),
			})
			ids = append(ids, tech.ID)
		}

		comps = append(comps, optimize.ComponentChoices{Name: comp.Name, Variants: variants})
		techIDs = append(techIDs, ids)
		names = append(names, comp.Name)
	}

	problem := &optimize.Problem{Components: comps, SLA: req.SLA}
	if err := problem.Validate(); err != nil {
		return nil, fmt.Errorf("broker: compiled problem invalid: %w", err)
	}
	return &compiled{problem: problem, techIDs: techIDs, names: names}, nil
}

// allowedTechs resolves the HA technologies in play for one component:
// the request's explicit allow-list when present (layer-checked;
// normalize has already sorted and deduplicated it, so variant order —
// and with it option numbering — is sorted by technology ID exactly
// like the unrestricted path), otherwise every catalog technology for
// the layer.
func (e *Engine) allowedTechs(req Request, name string, layer topology.Layer) ([]catalog.HATechnology, error) {
	ids, restricted := req.AllowedTechs[name]
	if !restricted {
		return e.catalog.TechnologiesForLayer(layer), nil
	}
	out := make([]catalog.HATechnology, 0, len(ids))
	for _, id := range ids {
		tech, err := e.catalog.Technology(id)
		if err != nil {
			return nil, fmt.Errorf("broker: component %q: %w", name, err)
		}
		if tech.Layer != layer {
			return nil, fmt.Errorf("broker: component %q at layer %s cannot use %q (layer %s)",
				name, layer, id, tech.Layer)
		}
		out = append(out, tech)
	}
	return out, nil
}

package broker

import (
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/topology"
)

// CaseStudy returns the paper's Section III client case study as a
// Request: a three-tier system (compute, storage, network clusters in
// series) on the simulated SoftLayer cloud, a 98% uptime SLA with a
// $100/hour slippage penalty, the incumbent ("as-is") ad-hoc strategy
// that clustered every layer — VMware-ESX-style 3+1 compute, RAID-1
// storage, dual gateways — and the option space restricted to those
// three mechanisms (k = 2 choices per cluster, 2³ = 8 options).
//
// With the calibrated catalog defaults (DESIGN.md §4) the expected
// outcome matches the paper: option #3 (storage-only HA) minimizes
// TCO, option #5 (storage + network) is the cheapest zero-penalty
// choice, and the recommendation saves ≈ 62% against the as-is TCO.
func CaseStudy() Request {
	return Request{
		Base: topology.ThreeTier(catalog.ProviderSoftLayerSim),
		SLA: cost.SLA{
			UptimePercent: 98,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(100)},
		},
		AsIs: Plan{
			"compute": catalog.TechESXHA,
			"storage": catalog.TechRAID1,
			"network": catalog.TechDualGateway,
		},
		AllowedTechs: map[string][]string{
			"compute": {catalog.TechESXHA},
			"storage": {catalog.TechRAID1},
			"network": {catalog.TechDualGateway},
		},
	}
}

// FutureWork returns the Section V scenario: the five-tier hybrid
// system with the full extended HA catalog in play (OS clustering,
// software-defined storage, clustered file systems, multipathing, BGP
// dual circuits), a steeper penalty, and no incumbent. The 98% SLA is
// attainable without clustering every tier, so the Section III.C
// pruning has supersets to clip in the 270-option space.
func FutureWork(provider string) Request {
	return Request{
		Base: topology.FiveTierHybrid(provider),
		SLA: cost.SLA{
			UptimePercent: 98,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(250)},
		},
	}
}

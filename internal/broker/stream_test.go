package broker

import (
	"context"
	"testing"

	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
)

// TestParetoMatchesParetoCards pins the online frontier against the
// reference: for a spread of requests (SLA shifts move which cards
// dominate), the streaming Engine.Pareto must return exactly
// ParetoCards(rec.Cards) — same options, same order, same numbers —
// while touching O(frontier) memory instead of every card.
func TestParetoMatchesParetoCards(t *testing.T) {
	e := newTestEngine(t)
	reqs := []Request{CaseStudy()}
	for _, sla := range []float64{90, 96, 98, 99.9} {
		r := CaseStudy()
		r.SLA = cost.SLA{UptimePercent: sla, Penalty: cost.Penalty{PerHour: cost.Dollars(150)}}
		reqs = append(reqs, r)
	}
	wide := wideRequest(8)
	reqs = append(reqs, wide)

	for i, req := range reqs {
		rec, err := e.Recommend(context.Background(), req)
		if err != nil {
			t.Fatalf("req %d: Recommend: %v", i, err)
		}
		want := ParetoCards(rec.Cards)

		for _, pricing := range []string{PricingSequential, PricingParallel} {
			r := req
			r.Pricing = pricing
			got, err := e.Pareto(context.Background(), r)
			if err != nil {
				t.Fatalf("req %d (%s): Pareto: %v", i, pricing, err)
			}
			if len(got) != len(want) {
				t.Fatalf("req %d (%s): frontier has %d cards, want %d", i, pricing, len(got), len(want))
			}
			for j := range want {
				g, w := got[j], want[j]
				if g.Option != w.Option || g.Label() != w.Label() || g.HACost != w.HACost ||
					g.Uptime != w.Uptime || g.Penalty != w.Penalty || g.TCO != w.TCO ||
					g.SlippageHours != w.SlippageHours || g.MeetsSLA != w.MeetsSLA {
					t.Fatalf("req %d (%s): frontier card %d diverges:\n  streaming %+v\n  reference %+v",
						i, pricing, j, g, w)
				}
			}
		}
	}
}

// TestRecommendFusedExhaustiveMatchesTwoPass compares the fused
// single-pass shape (strategy exhaustive: the pricing stream is the
// search) against the two-pass shape (pruned): identical cards and
// summary, with the fused stats pinned to the full space.
func TestRecommendFusedExhaustiveMatchesTwoPass(t *testing.T) {
	e := newTestEngine(t)

	fusedReq := CaseStudy()
	fusedReq.Strategy = optimize.StrategyExhaustive
	fused, err := e.Recommend(context.Background(), fusedReq)
	if err != nil {
		t.Fatalf("fused Recommend: %v", err)
	}

	twoPassReq := CaseStudy()
	twoPassReq.Strategy = optimize.StrategyPruned
	twoPass, err := e.Recommend(context.Background(), twoPassReq)
	if err != nil {
		t.Fatalf("two-pass Recommend: %v", err)
	}

	if fused.Search.Strategy != optimize.StrategyExhaustive {
		t.Fatalf("fused strategy = %q, want exhaustive", fused.Search.Strategy)
	}
	if fused.Search.Evaluated != fused.Search.SpaceSize || fused.Search.Skipped != 0 {
		t.Fatalf("fused stats = %d evaluated / %d skipped, want %d / 0",
			fused.Search.Evaluated, fused.Search.Skipped, fused.Search.SpaceSize)
	}
	if len(fused.Cards) != len(twoPass.Cards) {
		t.Fatalf("fused %d cards, two-pass %d", len(fused.Cards), len(twoPass.Cards))
	}
	for i := range fused.Cards {
		f, p := fused.Cards[i], twoPass.Cards[i]
		if f.Option != p.Option || f.Label() != p.Label() || f.HACost != p.HACost ||
			f.Uptime != p.Uptime || f.Penalty != p.Penalty || f.TCO != p.TCO || f.MeetsSLA != p.MeetsSLA {
			t.Fatalf("card %d diverges between fused and two-pass:\n  fused    %+v\n  two-pass %+v", i, f, p)
		}
	}
	if fused.BestOption != twoPass.BestOption || fused.MinRiskOption != twoPass.MinRiskOption ||
		fused.SavingsFraction != twoPass.SavingsFraction {
		t.Fatalf("summary diverges: fused %+v, two-pass %+v", fused, twoPass)
	}

	// The fused pass still reports the resolved strategy to hooks.
	var reported string
	ctx := WithStrategyReport(context.Background(), func(s string) { reported = s })
	if _, err := e.Recommend(ctx, fusedReq); err != nil {
		t.Fatal(err)
	}
	if reported != optimize.StrategyExhaustive {
		t.Fatalf("fused pass reported strategy %q, want exhaustive", reported)
	}
}

// TestParetoRejectsInexpressibleAsIs pins parity with Recommend on
// the as-is plan check: the streaming Pareto never compares against
// the incumbent, but a plan naming an unknown technology is still a
// caller mistake that must error, not be silently ignored.
func TestParetoRejectsInexpressibleAsIs(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.AsIs = Plan{"storage": "raid-17"}
	if _, err := e.Pareto(context.Background(), req); err == nil {
		t.Fatal("Pareto with an inexpressible as-is plan should fail like Recommend does")
	}
}

// TestParetoProgressSinglePass: the streaming Pareto reports progress
// over the single k^n pricing space, monotonically, to completion.
func TestParetoProgressSinglePass(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.Pricing = PricingSequential

	var evals, spaces []int64
	ctx := WithSearchProgress(context.Background(), func(evaluated, spaceSize int64) {
		evals = append(evals, evaluated)
		spaces = append(spaces, spaceSize)
	})
	if _, err := e.Pareto(ctx, req); err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("progress hook never fired")
	}
	for i, s := range spaces {
		if s != 8 {
			t.Fatalf("report %d: space = %d, want 8 (single pricing pass)", i, s)
		}
	}
	for i := 1; i < len(evals); i++ {
		if evals[i] < evals[i-1] {
			t.Fatalf("progress went backwards at %d", i)
		}
	}
	if final := evals[len(evals)-1]; final != 8 {
		t.Fatalf("final progress = %d, want 8", final)
	}
}

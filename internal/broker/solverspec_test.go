package broker

import (
	"context"
	"strings"
	"testing"
	"time"

	"uptimebroker/internal/obs"
	"uptimebroker/internal/optimize"
)

// TestSolverSpecAliasesShareCacheAddress is the back-compat contract
// of the redesigned config surface: the deprecated flat "strategy"
// spelling and the nested solver spec naming the same strategy
// normalize to one form and hash to the same cache key — so a caller
// migrating spellings keeps hitting its own cached results — while
// setting an actual solver knob moves the address.
func TestSolverSpecAliasesShareCacheAddress(t *testing.T) {
	e := newTestEngine(t)

	flat := CaseStudy()
	flat.Strategy = optimize.StrategyBeam

	nested := CaseStudy()
	nested.Solver.Strategy = optimize.StrategyBeam

	both := CaseStudy()
	both.Strategy = optimize.StrategyBeam
	both.Solver.Strategy = optimize.StrategyBeam

	flatKey := e.cacheKey("recommend", e.normalize(flat))
	for name, req := range map[string]Request{"nested": nested, "both": both} {
		if key := e.cacheKey("recommend", e.normalize(req)); key != flatKey {
			t.Fatalf("%s spelling hashed to %s, flat spelling to %s — aliases must share one address", name, key, flatKey)
		}
	}

	// A zero-knob nested spec must also leave the default-strategy
	// address untouched (the key tail is only appended when a knob is
	// set), so every pre-PR cache entry stays reachable.
	plain := e.cacheKey("recommend", e.normalize(CaseStudy()))
	zeroSpec := CaseStudy()
	zeroSpec.Solver = optimize.SolverConfig{}
	if key := e.cacheKey("recommend", e.normalize(zeroSpec)); key != plain {
		t.Fatal("zero nested spec moved the cache address of the default request")
	}

	// Knobs are semantic: a budgeted run may return a different
	// (approximate) result, so it must not alias the unbudgeted entry.
	budgeted := CaseStudy()
	budgeted.Solver.Strategy = optimize.StrategyBeam
	budgeted.Solver.Budget.MaxEvaluations = 4
	if key := e.cacheKey("recommend", e.normalize(budgeted)); key == flatKey {
		t.Fatal("budgeted request aliases the unbudgeted cache entry")
	}
	widened := CaseStudy()
	widened.Solver.Strategy = optimize.StrategyBeam
	widened.Solver.BeamWidth = 2
	if key := e.cacheKey("recommend", e.normalize(widened)); key == flatKey {
		t.Fatal("beam-width request aliases the default-width cache entry")
	}
}

// TestSolverSpecContradictions: the flat alias and the nested spec
// disagreeing on the strategy is rejected, as are optimize-level
// knob/strategy contradictions surfacing through Request.Validate.
func TestSolverSpecContradictions(t *testing.T) {
	req := CaseStudy()
	req.Strategy = optimize.StrategyPruned
	req.Solver.Strategy = optimize.StrategyBeam
	if err := req.Validate(); err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("contradicting spellings validated: %v", err)
	}

	// The rejection must survive the engine's normalize pass: Recommend
	// canonicalizes before validating, and canonicalization must not
	// silently pick a winner.
	e := newTestEngine(t)
	if _, err := e.Recommend(context.Background(), req); err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("engine accepted contradicting spellings: %v", err)
	}

	agree := CaseStudy()
	agree.Strategy = optimize.StrategyBeam
	agree.Solver.Strategy = optimize.StrategyBeam
	if err := agree.Validate(); err != nil {
		t.Fatalf("agreeing spellings rejected: %v", err)
	}

	knob := CaseStudy()
	knob.Solver.Strategy = optimize.StrategyPruned
	knob.Solver.Epsilon = 0.1
	if err := knob.Validate(); err == nil {
		t.Fatal("epsilon on an exact strategy validated")
	}

	neg := CaseStudy()
	neg.Solver.Budget.Wall = -time.Second
	if err := neg.Validate(); err == nil {
		t.Fatal("negative wall budget validated")
	}
}

// TestRecommendApproximateStats runs the full brokerage flow on an
// anytime strategy and checks the certificate surfaces in SearchStats
// — and that exact runs keep the fields zero, so their wire encoding
// is unchanged.
func TestRecommendApproximateStats(t *testing.T) {
	reg := obs.NewRegistry()
	cat := newTestEngine(t).catalog
	e, err := New(cat, CatalogParams{Catalog: cat}, WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}

	exact, err := e.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	if exact.Search.Approximate || exact.Search.Bound != 0 || exact.Search.Gap != 0 ||
		exact.Search.Optimal || exact.Search.BudgetExhausted {
		t.Fatalf("exact run leaked certificate fields: %+v", exact.Search)
	}

	for _, strat := range []string{optimize.StrategyBeam, optimize.StrategyLDS, optimize.StrategyBounded} {
		req := CaseStudy()
		req.Solver.Strategy = strat
		rec, err := e.Recommend(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if rec.Search.Strategy != strat {
			t.Fatalf("%s: echoed strategy %q", strat, rec.Search.Strategy)
		}
		if !rec.Search.Approximate {
			t.Fatalf("%s: run not marked approximate", strat)
		}
		if rec.Search.Gap < 0 {
			t.Fatalf("%s: negative gap %v", strat, rec.Search.Gap)
		}
		// The case-study shape is tiny; every anytime strategy closes it
		// completely, and the certificate must agree with the exact
		// answer the option cards embody.
		best := rec.Best()
		if rec.Search.Optimal && rec.Search.Bound != best.TCO {
			t.Fatalf("%s: optimal with bound %v but best card TCO %v", strat, rec.Search.Bound, best.TCO)
		}
		if rec.BestOption != exact.BestOption {
			t.Fatalf("%s: best option %d, exact %d", strat, rec.BestOption, exact.BestOption)
		}
	}

	// The certificate reaches the metrics registry: a labeled solver_gap
	// gauge per approximate strategy that ran, and no gap series at all
	// for the exact lane.
	snap := reg.Snapshot()
	fam, ok := snap.Family("solver_gap")
	if !ok {
		t.Fatal("no solver_gap family after approximate runs")
	}
	if got := len(fam.Series); got != 3 {
		t.Fatalf("solver_gap has %d series, want 3 (beam, lds, bounded): %+v", got, fam.Series)
	}
	if _, ok := snap.Family("solver_budget_exhausted_total"); !ok {
		t.Fatal("no solver_budget_exhausted_total family after approximate runs")
	}
}

// TestRecommendBudgets: a budget riding on an approximate strategy is
// honored end-to-end (the stats report exhaustion), and an evaluation
// cap on an explicit exact strategy is refused.
func TestRecommendBudgets(t *testing.T) {
	e := newTestEngine(t)

	req := CaseStudy()
	req.Solver.Strategy = optimize.StrategyBeam
	req.Solver.Budget.MaxEvaluations = 1
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Search.BudgetExhausted {
		t.Fatalf("one-evaluation budget not reported exhausted: %+v", rec.Search)
	}
	if rec.Search.Evaluated != 1 {
		t.Fatalf("evaluated %d under a one-evaluation budget", rec.Search.Evaluated)
	}
	// The pricing pass is untouched by the solver budget: every card is
	// still present and priced.
	if len(rec.Cards) != 8 {
		t.Fatalf("budgeted run returned %d cards, want the full 8", len(rec.Cards))
	}

	capped := CaseStudy()
	capped.Strategy = optimize.StrategyExhaustive
	capped.Solver.Budget.MaxEvaluations = 2
	if _, err := e.Recommend(context.Background(), capped); err == nil ||
		!strings.Contains(err.Error(), "cannot honor max_evaluations") {
		t.Fatalf("evaluation cap on exhaustive = %v, want refusal", err)
	}

	// A wall budget on an exhaustive request drops the fused fast path
	// (the budget's deadline semantics belong to the solver pass) but
	// still answers with full statistics.
	walled := CaseStudy()
	walled.Strategy = optimize.StrategyExhaustive
	walled.Solver.Budget.Wall = time.Minute
	rec, err = e.Recommend(context.Background(), walled)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Search.Strategy != optimize.StrategyExhaustive || rec.Search.Evaluated != 8 {
		t.Fatalf("walled exhaustive run: %+v", rec.Search)
	}
}

package broker

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/reccache"
	"uptimebroker/internal/topology"
)

// countingParams wraps a ParamSource and counts NodeParams calls —
// one compile makes exactly one call per component, so the counter
// measures how many searches actually ran.
type countingParams struct {
	inner ParamSource
	calls atomic.Int64
}

func (c *countingParams) NodeParams(provider, class string) (availability.NodeParams, error) {
	c.calls.Add(1)
	return c.inner.NodeParams(provider, class)
}

func newCachedTestEngine(t *testing.T, cfg reccache.Config) (*Engine, *countingParams, *reccache.Cache) {
	t.Helper()
	cat := catalog.Default()
	params := &countingParams{inner: CatalogParams{Catalog: cat}}
	cache := reccache.New(cfg)
	e, err := New(cat, params, WithResultCache(cache))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, params, cache
}

func TestCacheKeyIgnoresNonSemanticSpellings(t *testing.T) {
	e := newTestEngine(t)
	base := e.normalize(CaseStudy())
	baseKey := e.cacheKey("recommend", base)

	// Allowed-techs list order and duplicates must not move the key.
	shuffled := CaseStudy()
	shuffled.AllowedTechs = map[string][]string{}
	for name, ids := range base.AllowedTechs {
		rev := make([]string, 0, 2*len(ids))
		for i := len(ids) - 1; i >= 0; i-- {
			rev = append(rev, ids[i], ids[i]) // reversed AND duplicated
		}
		shuffled.AllowedTechs[name] = rev
	}
	if got := e.cacheKey("recommend", e.normalize(shuffled)); got != baseKey {
		t.Fatal("allowed-techs order/duplication changed the cache key")
	}

	// An explicit class equal to the layer default is the same request
	// as an empty class.
	explicit := CaseStudy()
	for i := range explicit.Base.Components {
		explicit.Base.Components[i].Class = explicit.Base.Components[i].EffectiveClass()
	}
	if got := e.cacheKey("recommend", e.normalize(explicit)); got != baseKey {
		t.Fatal("explicit default class changed the cache key")
	}

	// An as-is entry naming the baseline ("") means the same as no
	// entry for that component.
	missing := CaseStudy()
	delete(missing.AsIs, "compute")
	explicitBaseline := CaseStudy()
	explicitBaseline.AsIs["compute"] = ""
	if e.cacheKey("recommend", e.normalize(missing)) != e.cacheKey("recommend", e.normalize(explicitBaseline)) {
		t.Fatal("explicit baseline as-is entry should hash like a missing entry")
	}
	if e.cacheKey("recommend", e.normalize(missing)) == baseKey {
		t.Fatal("dropping a real as-is entry should change the key")
	}

	// The pricing mode never affects results, so it must not affect
	// the key either.
	seq := CaseStudy()
	seq.Pricing = PricingSequential
	if got := e.cacheKey("recommend", e.normalize(seq)); got != baseKey {
		t.Fatal("pricing mode changed the cache key")
	}
}

func TestCacheKeySeparatesSemanticDifferences(t *testing.T) {
	e := newTestEngine(t)
	keys := map[string]string{}
	add := func(label, key string) {
		t.Helper()
		for prev, k := range keys {
			if k == key {
				t.Fatalf("%s collides with %s", label, prev)
			}
		}
		keys[label] = key
	}
	base := CaseStudy()
	add("base", e.cacheKey("recommend", e.normalize(base)))
	add("pareto kind", e.cacheKey("pareto", e.normalize(base)))

	sla := CaseStudy()
	sla.SLA.UptimePercent += 0.5
	add("sla", e.cacheKey("recommend", e.normalize(sla)))

	strat := CaseStudy()
	strat.Strategy = "exhaustive"
	add("strategy", e.cacheKey("recommend", e.normalize(strat)))

	// nil as-is (no incumbent) and empty as-is (all-baseline
	// incumbent) are different requests with different answers.
	noAsIs := CaseStudy()
	noAsIs.AsIs = nil
	add("nil as-is", e.cacheKey("recommend", e.normalize(noAsIs)))
	emptyAsIs := CaseStudy()
	emptyAsIs.AsIs = Plan{}
	add("empty as-is", e.cacheKey("recommend", e.normalize(emptyAsIs)))

	// Component order is semantic: it defines presentation order.
	swapped := CaseStudy()
	swapped.Base.Components = append([]topology.Component(nil), swapped.Base.Components...)
	swapped.Base.Components[0], swapped.Base.Components[1] = swapped.Base.Components[1], swapped.Base.Components[0]
	add("component order", e.cacheKey("recommend", e.normalize(swapped)))

	// A catalog mutation must change every key.
	e.catalog.Invalidate()
	add("epoch bump", e.cacheKey("recommend", e.normalize(base)))
}

func TestRecommendCacheHitSkipsSearch(t *testing.T) {
	e, params, cache := newCachedTestEngine(t, reccache.Config{})
	req := CaseStudy()

	var statuses []string
	ctx := WithCacheReport(context.Background(), func(status string) {
		statuses = append(statuses, status)
	})

	first, err := e.Recommend(ctx, req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	calls := params.calls.Load()
	if calls == 0 {
		t.Fatal("first Recommend should have compiled")
	}
	second, err := e.Recommend(ctx, req)
	if err != nil {
		t.Fatalf("second Recommend: %v", err)
	}
	if got := params.calls.Load(); got != calls {
		t.Fatalf("cache hit still compiled: %d -> %d NodeParams calls", calls, got)
	}
	if first != second {
		t.Fatal("cache hit should return the shared *Recommendation")
	}
	if len(statuses) != 2 || statuses[0] != "miss" || statuses[1] != "hit" {
		t.Fatalf("cache report = %v, want [miss hit]", statuses)
	}
	m := cache.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Entries != 1 || m.Bytes <= 0 {
		t.Fatalf("cache metrics = %+v", m)
	}

	// Catalog mutation: the same request is a different content
	// address and recomputes.
	e.catalog.Invalidate()
	third, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatalf("post-invalidate Recommend: %v", err)
	}
	if params.calls.Load() == calls {
		t.Fatal("catalog invalidation did not force a recompute")
	}
	if third == first {
		t.Fatal("post-invalidate result should be a fresh computation")
	}
}

func TestParetoCacheIsDisjointFromRecommend(t *testing.T) {
	e, _, cache := newCachedTestEngine(t, reccache.Config{})
	req := CaseStudy()
	if _, err := e.Recommend(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	var status string
	ctx := WithCacheReport(context.Background(), func(s string) { status = s })
	front, err := e.Pareto(ctx, req)
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	if status != "miss" {
		t.Fatalf("first Pareto after Recommend = %q, want miss (disjoint keys)", status)
	}
	front2, err := e.Pareto(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if status != "hit" {
		t.Fatalf("second Pareto = %q, want hit", status)
	}
	if len(front2) != len(front) {
		t.Fatal("cached frontier diverges")
	}
	if m := cache.Metrics(); m.Entries != 2 {
		t.Fatalf("cache entries = %d, want 2 (recommend + pareto)", m.Entries)
	}
}

// TestConcurrentBurstRunsOneSearch is the acceptance-criteria
// assertion: a concurrent burst of identical requests performs
// exactly one solver run. One search compiles exactly
// len(components) NodeParams lookups, so the counter equals that
// after any burst size.
func TestConcurrentBurstRunsOneSearch(t *testing.T) {
	e, params, cache := newCachedTestEngine(t, reccache.Config{})
	req := CaseStudy()
	components := len(req.Base.Components)

	const burst = 24
	var wg sync.WaitGroup
	recs := make([]*Recommendation, burst)
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i], errs[i] = e.Recommend(context.Background(), req)
		}(i)
	}
	wg.Wait()

	for i := range recs {
		if errs[i] != nil {
			t.Fatalf("burst call %d: %v", i, errs[i])
		}
		if recs[i] != recs[0] {
			t.Fatalf("burst call %d got a different result object", i)
		}
	}
	if got := params.calls.Load(); got != int64(components) {
		t.Fatalf("burst of %d identical requests made %d NodeParams calls, want %d (one compile)",
			burst, got, components)
	}
	m := cache.Metrics()
	if m.Misses != 1 {
		t.Fatalf("burst produced %d misses, want exactly 1 solver run", m.Misses)
	}
	if m.Hits+m.Shared != burst-1 {
		t.Fatalf("hits+shared = %d, want %d", m.Hits+m.Shared, burst-1)
	}
}

func TestUncachedEngineStillRecommends(t *testing.T) {
	e := newTestEngine(t)
	fired := false
	ctx := WithCacheReport(context.Background(), func(string) { fired = true })
	if _, err := e.Recommend(ctx, CaseStudy()); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cache report hook must not fire on an engine without a cache")
	}
}

package broker

import (
	"context"
	"strings"
	"sync"
	"testing"

	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
)

// TestParallelPricingMatchesSequential pins the tentpole guarantee at
// the brokerage layer: parallel and sequential pricing produce
// byte-identical recommendations — same cards in the same
// presentation order, same option numbers, same savings.
func TestParallelPricingMatchesSequential(t *testing.T) {
	e := newTestEngine(t)

	seqReq := CaseStudy()
	seqReq.Pricing = PricingSequential
	seq, err := e.Recommend(context.Background(), seqReq)
	if err != nil {
		t.Fatalf("sequential Recommend: %v", err)
	}

	parReq := CaseStudy()
	parReq.Pricing = PricingParallel
	par, err := e.Recommend(context.Background(), parReq)
	if err != nil {
		t.Fatalf("parallel Recommend: %v", err)
	}

	if len(par.Cards) != len(seq.Cards) {
		t.Fatalf("parallel %d cards, sequential %d", len(par.Cards), len(seq.Cards))
	}
	for i := range seq.Cards {
		sc, pc := seq.Cards[i], par.Cards[i]
		if sc.Option != pc.Option || sc.Label() != pc.Label() || sc.HACost != pc.HACost ||
			sc.Uptime != pc.Uptime || sc.Penalty != pc.Penalty || sc.TCO != pc.TCO || sc.MeetsSLA != pc.MeetsSLA {
			t.Fatalf("card %d diverges:\n  sequential %+v\n  parallel   %+v", i, sc, pc)
		}
	}
	if par.BestOption != seq.BestOption || par.MinRiskOption != seq.MinRiskOption ||
		par.AsIsOption != seq.AsIsOption || par.SavingsFraction != seq.SavingsFraction {
		t.Fatalf("summary diverges: sequential %+v, parallel %+v", seq, par)
	}
}

func TestPricingModeValidation(t *testing.T) {
	for _, mode := range []string{"", PricingParallel, PricingSequential} {
		if !ValidPricing(mode) {
			t.Fatalf("ValidPricing(%q) = false", mode)
		}
	}
	if ValidPricing("warp") {
		t.Fatal("unknown pricing mode should be invalid")
	}

	e := newTestEngine(t)
	req := CaseStudy()
	req.Pricing = "warp"
	if _, err := e.Recommend(context.Background(), req); err == nil || !strings.Contains(err.Error(), "pricing") {
		t.Fatalf("Recommend with unknown pricing = %v, want pricing-mode error", err)
	}
}

// TestEnginePricingDefaults covers the WithParallelPricing option and
// the per-request override in both directions.
func TestEnginePricingDefaults(t *testing.T) {
	cat := catalog.Default()
	e, err := New(cat, CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if !e.parallelPricingFor(Request{}) {
		t.Fatal("parallel pricing should default on")
	}
	if e.parallelPricingFor(Request{Pricing: PricingSequential}) {
		t.Fatal("request sequential should override the engine default")
	}

	seq, err := New(cat, CatalogParams{Catalog: cat}, WithParallelPricing(false))
	if err != nil {
		t.Fatal(err)
	}
	if seq.parallelPricingFor(Request{}) {
		t.Fatal("WithParallelPricing(false) should turn the default off")
	}
	if !seq.parallelPricingFor(Request{Pricing: PricingParallel}) {
		t.Fatal("request parallel should override the engine default")
	}
}

// TestSavingsFractionIdentity pins the edge the division used to
// leave implicit: when the incumbent already is the optimum, the
// savings are exactly zero.
func TestSavingsFractionIdentity(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.AsIs = Plan{"storage": catalog.TechRAID1} // the case study's optimum (option #3)
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if rec.AsIsOption != rec.BestOption {
		t.Fatalf("as-is option %d != best option %d; the fixture no longer makes the incumbent optimal",
			rec.AsIsOption, rec.BestOption)
	}
	if rec.SavingsFraction != 0 {
		t.Fatalf("savings against an already-optimal incumbent = %v, want exactly 0", rec.SavingsFraction)
	}
}

// TestSavingsFractionZeroTCOAsIs pins the division-by-zero edge: a
// penalty-free SLA makes the no-HA incumbent's TCO zero, and the
// savings must come out zero, not Inf or NaN.
func TestSavingsFractionZeroTCOAsIs(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.SLA = cost.SLA{UptimePercent: 98, Penalty: cost.Penalty{}}
	req.AsIs = Plan{} // no HA anywhere: zero HA cost, zero penalty, zero TCO
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if rec.AsIsOption != 1 {
		t.Fatalf("as-is option = %d, want 1 (no HA)", rec.AsIsOption)
	}
	if card := rec.Cards[0]; card.TCO != 0 {
		t.Fatalf("no-HA card TCO = %v, want 0 with a penalty-free SLA", card.TCO)
	}
	if rec.SavingsFraction != 0 {
		t.Fatalf("savings against a zero-TCO incumbent = %v, want exactly 0", rec.SavingsFraction)
	}
}

// TestRecommendCombinedProgress asserts the de-double-counted bar:
// the pricing and solver passes report into one combined space of
// 2·k^n, monotonically, finishing exactly at the top.
func TestRecommendCombinedProgress(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.Strategy = optimize.StrategyExhaustive

	var mu sync.Mutex
	var evals []int64
	var spaces []int64
	ctx := WithSearchProgress(context.Background(), func(evaluated, spaceSize int64) {
		mu.Lock()
		defer mu.Unlock()
		evals = append(evals, evaluated)
		spaces = append(spaces, spaceSize)
	})
	rec, err := e.Recommend(ctx, req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if len(evals) == 0 {
		t.Fatal("progress hook never fired")
	}
	combined := int64(2 * rec.Search.SpaceSize)
	for i, s := range spaces {
		if s != combined {
			t.Fatalf("report %d: space = %d, want combined %d", i, s, combined)
		}
	}
	for i := 1; i < len(evals); i++ {
		if evals[i] < evals[i-1] {
			t.Fatalf("progress went backwards at %d: %d after %d", i, evals[i], evals[i-1])
		}
	}
	if final := evals[len(evals)-1]; final != combined {
		t.Fatalf("final progress = %d, want %d", final, combined)
	}
}

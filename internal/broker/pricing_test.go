package broker

import (
	"context"
	"strings"
	"sync"
	"testing"

	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
)

// TestParallelPricingMatchesSequential pins the tentpole guarantee at
// the brokerage layer: parallel and sequential pricing produce
// byte-identical recommendations — same cards in the same
// presentation order, same option numbers, same savings.
func TestParallelPricingMatchesSequential(t *testing.T) {
	e := newTestEngine(t)

	seqReq := CaseStudy()
	seqReq.Pricing = PricingSequential
	seq, err := e.Recommend(context.Background(), seqReq)
	if err != nil {
		t.Fatalf("sequential Recommend: %v", err)
	}

	parReq := CaseStudy()
	parReq.Pricing = PricingParallel
	par, err := e.Recommend(context.Background(), parReq)
	if err != nil {
		t.Fatalf("parallel Recommend: %v", err)
	}

	if len(par.Cards) != len(seq.Cards) {
		t.Fatalf("parallel %d cards, sequential %d", len(par.Cards), len(seq.Cards))
	}
	for i := range seq.Cards {
		sc, pc := seq.Cards[i], par.Cards[i]
		if sc.Option != pc.Option || sc.Label() != pc.Label() || sc.HACost != pc.HACost ||
			sc.Uptime != pc.Uptime || sc.Penalty != pc.Penalty || sc.TCO != pc.TCO || sc.MeetsSLA != pc.MeetsSLA {
			t.Fatalf("card %d diverges:\n  sequential %+v\n  parallel   %+v", i, sc, pc)
		}
	}
	if par.BestOption != seq.BestOption || par.MinRiskOption != seq.MinRiskOption ||
		par.AsIsOption != seq.AsIsOption || par.SavingsFraction != seq.SavingsFraction {
		t.Fatalf("summary diverges: sequential %+v, parallel %+v", seq, par)
	}
}

func TestPricingModeValidation(t *testing.T) {
	for _, mode := range []string{"", PricingAuto, PricingParallel, PricingSequential} {
		if !ValidPricing(mode) {
			t.Fatalf("ValidPricing(%q) = false", mode)
		}
	}
	if ValidPricing("warp") {
		t.Fatal("unknown pricing mode should be invalid")
	}

	e := newTestEngine(t)
	req := CaseStudy()
	req.Pricing = "warp"
	if _, err := e.Recommend(context.Background(), req); err == nil || !strings.Contains(err.Error(), "pricing") {
		t.Fatalf("Recommend with unknown pricing = %v, want pricing-mode error", err)
	}
}

// TestEnginePricingDefaults covers the WithPricing/WithParallelPricing
// options and the per-request override in both directions. The
// engine's built-in default is auto, which resolves from the host
// shape and the space size — pinned separately in
// TestAutoParallelPricing, since the test host's core count is not
// ours to choose.
func TestEnginePricingDefaults(t *testing.T) {
	cat := catalog.Default()
	const space = 1 << 20

	e, err := New(cat, CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if e.pricing != PricingAuto {
		t.Fatalf("engine default pricing = %q, want auto", e.pricing)
	}
	if e.parallelPricingFor(Request{Pricing: PricingSequential}, space) {
		t.Fatal("request sequential should override the engine default")
	}
	if !e.parallelPricingFor(Request{Pricing: PricingParallel}, 1) {
		t.Fatal("request parallel should override the engine default")
	}

	par, err := New(cat, CatalogParams{Catalog: cat}, WithParallelPricing(true))
	if err != nil {
		t.Fatal(err)
	}
	if !par.parallelPricingFor(Request{}, 1) {
		t.Fatal("WithParallelPricing(true) should force parallel regardless of space")
	}

	seq, err := New(cat, CatalogParams{Catalog: cat}, WithPricing(PricingSequential))
	if err != nil {
		t.Fatal(err)
	}
	if seq.parallelPricingFor(Request{}, space) {
		t.Fatal("WithPricing(sequential) should turn the default off")
	}
	if !seq.parallelPricingFor(Request{Pricing: PricingParallel}, space) {
		t.Fatal("request parallel should override the engine default")
	}

	if _, err := New(cat, CatalogParams{Catalog: cat}, WithPricing("warp")); err == nil {
		t.Fatal("New should reject an unknown engine pricing mode")
	}
}

// TestAutoParallelPricing pins the auto decision itself: sharding
// pays only with at least two schedulable cores AND a space big
// enough to amortize the worker scaffolding. On the committed 1-core
// benchmark baseline parallel pricing measured 0.90–0.98x sequential,
// which is why a single core must always resolve sequential.
func TestAutoParallelPricing(t *testing.T) {
	cases := []struct {
		procs, space int
		want         bool
	}{
		{1, 1 << 20, false}, // single core: never worth it
		{1, 1, false},
		{2, autoParallelPricingSpace, true},
		{2, autoParallelPricingSpace - 1, false}, // too few candidates
		{8, 1 << 19, true},
		{8, 64, false},
	}
	for _, c := range cases {
		if got := autoParallelPricing(c.procs, c.space); got != c.want {
			t.Errorf("autoParallelPricing(procs=%d, space=%d) = %v, want %v", c.procs, c.space, got, c.want)
		}
	}
}

// TestSavingsFractionIdentity pins the edge the division used to
// leave implicit: when the incumbent already is the optimum, the
// savings are exactly zero.
func TestSavingsFractionIdentity(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.AsIs = Plan{"storage": catalog.TechRAID1} // the case study's optimum (option #3)
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if rec.AsIsOption != rec.BestOption {
		t.Fatalf("as-is option %d != best option %d; the fixture no longer makes the incumbent optimal",
			rec.AsIsOption, rec.BestOption)
	}
	if rec.SavingsFraction != 0 {
		t.Fatalf("savings against an already-optimal incumbent = %v, want exactly 0", rec.SavingsFraction)
	}
}

// TestSavingsFractionZeroTCOAsIs pins the division-by-zero edge: a
// penalty-free SLA makes the no-HA incumbent's TCO zero, and the
// savings must come out zero, not Inf or NaN.
func TestSavingsFractionZeroTCOAsIs(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.SLA = cost.SLA{UptimePercent: 98, Penalty: cost.Penalty{}}
	req.AsIs = Plan{} // no HA anywhere: zero HA cost, zero penalty, zero TCO
	rec, err := e.Recommend(context.Background(), req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if rec.AsIsOption != 1 {
		t.Fatalf("as-is option = %d, want 1 (no HA)", rec.AsIsOption)
	}
	if card := rec.Cards[0]; card.TCO != 0 {
		t.Fatalf("no-HA card TCO = %v, want 0 with a penalty-free SLA", card.TCO)
	}
	if rec.SavingsFraction != 0 {
		t.Fatalf("savings against a zero-TCO incumbent = %v, want exactly 0", rec.SavingsFraction)
	}
}

// TestRecommendCombinedProgress asserts the de-double-counted bar:
// the pricing and solver passes report into one combined space of
// 2·k^n, monotonically, finishing exactly at the top.
func TestRecommendCombinedProgress(t *testing.T) {
	e := newTestEngine(t)
	req := CaseStudy()
	req.Strategy = optimize.StrategyExhaustive

	var mu sync.Mutex
	var evals []int64
	var spaces []int64
	ctx := WithSearchProgress(context.Background(), func(evaluated, spaceSize int64) {
		mu.Lock()
		defer mu.Unlock()
		evals = append(evals, evaluated)
		spaces = append(spaces, spaceSize)
	})
	rec, err := e.Recommend(ctx, req)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if len(evals) == 0 {
		t.Fatal("progress hook never fired")
	}
	combined := int64(2 * rec.Search.SpaceSize)
	for i, s := range spaces {
		if s != combined {
			t.Fatalf("report %d: space = %d, want combined %d", i, s, combined)
		}
	}
	for i := 1; i < len(evals); i++ {
		if evals[i] < evals[i-1] {
			t.Fatalf("progress went backwards at %d: %d after %d", i, evals[i], evals[i-1])
		}
	}
	if final := evals[len(evals)-1]; final != combined {
		t.Fatalf("final progress = %d, want %d", final, combined)
	}
}

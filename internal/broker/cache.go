package broker

import (
	"context"

	"uptimebroker/internal/reccache"
)

// cacheReportKey carries the WithCacheReport hook.
type cacheReportKey struct{}

// WithCacheReport attaches a hook that hears how the engine's result
// cache answered a Recommend or Pareto call: "hit" (served from the
// cache, no search ran), "miss" (this call ran the search) or
// "shared" (this call joined another caller's identical in-flight
// search). The hook fires once per call, after the result is
// available; it never fires on engines without a cache, which is how
// the HTTP layer decides whether to emit an X-Cache header at all.
func WithCacheReport(ctx context.Context, fn func(status string)) context.Context {
	return context.WithValue(ctx, cacheReportKey{}, fn)
}

// reportCacheStatus invokes a WithCacheReport hook, if any.
func reportCacheStatus(ctx context.Context, status reccache.Status) {
	if fn, ok := ctx.Value(cacheReportKey{}).(func(status string)); ok {
		fn(string(status))
	}
}

// Per-value resident-size estimates for the cache's byte budget. They
// only need to be proportionate, not exact: the budget is approximate
// by contract, and every entry is dominated by its card slice.
const (
	cardOverhead           = 120 // OptionCard struct + slice header slack
	choiceOverhead         = 48  // Choice struct + string headers
	recommendationOverhead = 160 // Recommendation struct + strings
)

// cardsBytes estimates the resident size of a card slice.
func cardsBytes(cards []OptionCard) int64 {
	n := int64(0)
	for i := range cards {
		n += cardOverhead
		for _, ch := range cards[i].Choices {
			n += choiceOverhead + int64(len(ch.Component)+len(ch.TechID))
		}
	}
	return n
}

// Recommend runs the full brokerage flow for one request (see
// recommend for the search itself). With a result cache attached
// (WithResultCache), the request is first normalized and content-
// addressed: repeated identical requests are answered from the cache
// in O(1) without compiling anything, and concurrent identical
// requests collapse into a single search whose result every caller
// shares. The returned *Recommendation may therefore be shared —
// treat it as read-only. A WithCacheReport hook on the context hears
// which of the three ways the call was answered.
//
// The search runs detached from any single caller's cancellation: ctx
// cancellation makes this call return ctx.Err() immediately, but the
// underlying search keeps running while other callers wait on it, and
// is abandoned only when the last of them leaves.
func (e *Engine) Recommend(ctx context.Context, req Request) (*Recommendation, error) {
	req = e.normalize(req)
	if e.cache == nil {
		return e.recommend(ctx, req)
	}
	v, status, err := e.cache.Do(ctx, e.cacheKey("recommend", req), func(fctx context.Context) (any, int64, error) {
		rec, err := e.recommend(fctx, req)
		if err != nil {
			return nil, 0, err
		}
		return rec, recommendationOverhead + cardsBytes(rec.Cards), nil
	})
	if err != nil {
		return nil, err
	}
	reportCacheStatus(ctx, status)
	return v.(*Recommendation), nil
}

// Pareto runs the brokerage and returns only the cost × uptime
// frontier cards (see pareto). Caching behaves exactly as on
// Recommend — normalized content-addressed lookups, singleflight
// collapse, shared read-only results, WithCacheReport — under keys
// disjoint from Recommend's (the two answer shapes never alias).
func (e *Engine) Pareto(ctx context.Context, req Request) ([]OptionCard, error) {
	req = e.normalize(req)
	if e.cache == nil {
		return e.pareto(ctx, req)
	}
	v, status, err := e.cache.Do(ctx, e.cacheKey("pareto", req), func(fctx context.Context) (any, int64, error) {
		front, err := e.pareto(fctx, req)
		if err != nil {
			return nil, 0, err
		}
		return front, cardsBytes(front), nil
	})
	if err != nil {
		return nil, err
	}
	reportCacheStatus(ctx, status)
	return v.([]OptionCard), nil
}

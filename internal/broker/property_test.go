package broker_test

import (
	"context"
	"math/rand"
	"testing"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/scenario"
)

// TestPropertyRecommendationInvariants runs the full brokerage over
// randomly generated architectures and checks the structural
// guarantees every recommendation must satisfy.
func TestPropertyRecommendationInvariants(t *testing.T) {
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}

	cfg := scenario.DefaultGenerator()
	cfg.MaxComponents = 5 // keep spaces small enough for 80 full runs
	rng := rand.New(rand.NewSource(20170612))

	for trial := 0; trial < 80; trial++ {
		req, err := scenario.Generate(cfg, rng, catalog.ProviderSoftLayerSim)
		if err != nil {
			t.Fatalf("trial %d: Generate: %v", trial, err)
		}
		rec, err := engine.Recommend(context.Background(), req)
		if err != nil {
			t.Fatalf("trial %d: Recommend: %v", trial, err)
		}

		if len(rec.Cards) != rec.Search.SpaceSize {
			t.Fatalf("trial %d: %d cards for space %d", trial, len(rec.Cards), rec.Search.SpaceSize)
		}
		if rec.Search.Evaluated+rec.Search.Skipped != rec.Search.SpaceSize {
			t.Fatalf("trial %d: search accounting %d+%d != %d",
				trial, rec.Search.Evaluated, rec.Search.Skipped, rec.Search.SpaceSize)
		}

		best := rec.Best()
		for _, card := range rec.Cards {
			// Option numbering is 1-based, dense and ordered.
			if card.Option < 1 || card.Option > len(rec.Cards) {
				t.Fatalf("trial %d: option %d out of range", trial, card.Option)
			}
			// Equation 5 decomposition holds on every card.
			if card.TCO != card.HACost+card.Penalty {
				t.Fatalf("trial %d option %d: TCO decomposition broke", trial, card.Option)
			}
			// The recommendation is a true minimum.
			if card.TCO < best.TCO {
				t.Fatalf("trial %d: option %d (%v) beats the recommendation (%v)",
					trial, card.Option, card.TCO, best.TCO)
			}
			// Zero penalty iff the SLA is met.
			if card.MeetsSLA != (card.Penalty == 0) {
				t.Fatalf("trial %d option %d: MeetsSLA=%v with penalty %v",
					trial, card.Option, card.MeetsSLA, card.Penalty)
			}
		}

		// MinRisk is the cheapest SLA-meeting card, when one exists.
		if rec.MinRiskOption > 0 {
			minRisk := rec.Cards[rec.MinRiskOption-1]
			if !minRisk.MeetsSLA {
				t.Fatalf("trial %d: min-risk option misses the SLA", trial)
			}
			for _, card := range rec.Cards {
				if card.MeetsSLA && card.HACost < minRisk.HACost {
					t.Fatalf("trial %d: option %d undercuts min-risk", trial, card.Option)
				}
			}
		} else {
			for _, card := range rec.Cards {
				if card.MeetsSLA {
					t.Fatalf("trial %d: option %d meets SLA but MinRiskOption=0", trial, card.Option)
				}
			}
		}

		// The frontier is a subset of the cards with the extremes on it.
		front := broker.ParetoCards(rec.Cards)
		if len(front) == 0 || len(front) > len(rec.Cards) {
			t.Fatalf("trial %d: frontier size %d", trial, len(front))
		}
	}
}

// TestPropertyOptionOrderIsLevelThenLex verifies the paper's
// presentation numbering on generated instances: HA count ascending,
// then lexicographic.
func TestPropertyOptionOrderIsLevelThenLex(t *testing.T) {
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := engine.Recommend(context.Background(), broker.FutureWork(catalog.ProviderSoftLayerSim))
	if err != nil {
		t.Fatal(err)
	}
	level := func(c broker.OptionCard) int {
		n := 0
		for _, ch := range c.Choices {
			if ch.TechID != "" {
				n++
			}
		}
		return n
	}
	for i := 1; i < len(rec.Cards); i++ {
		if level(rec.Cards[i]) < level(rec.Cards[i-1]) {
			t.Fatalf("cards %d->%d: level decreased", rec.Cards[i-1].Option, rec.Cards[i].Option)
		}
	}
	if level(rec.Cards[0]) != 0 {
		t.Fatal("first card is not the no-HA baseline")
	}
	if level(rec.Cards[len(rec.Cards)-1]) != len(rec.Cards[0].Choices) {
		t.Fatal("last card is not the full-HA option")
	}
}

package broker

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
)

// Choice is one component's HA selection within an option card.
type Choice struct {
	// Component is the component name.
	Component string `json:"component"`

	// TechID is the chosen HA technology ("" = no HA).
	TechID string `json:"tech_id,omitempty"`
}

// OptionCard is one fully priced solution option — the content of the
// paper's Figures 3 through 9 (one card per HA permutation).
type OptionCard struct {
	// Option is the 1-based option number in the paper's presentation
	// order: ascending number of clustered components, lexicographic
	// within a level. The case study's option #1 is "no HA anywhere",
	// #8 is "HA everywhere".
	Option int `json:"option"`

	// Choices is the per-component HA selection.
	Choices []Choice `json:"choices"`

	// HACost is C_HA: the monthly infrastructure + labor cost of the
	// selected redundancy.
	HACost cost.Money `json:"ha_cost"`

	// Uptime is the expected uptime fraction U_s.
	Uptime float64 `json:"uptime"`

	// SlippageHours is the expected hours per month below the SLA.
	SlippageHours float64 `json:"slippage_hours"`

	// Penalty is the expected monthly slippage payout.
	Penalty cost.Money `json:"penalty"`

	// TCO is HACost + Penalty (Equation 5).
	TCO cost.Money `json:"tco"`

	// MeetsSLA reports whether expected uptime reaches the target.
	MeetsSLA bool `json:"meets_sla"`
}

// Label renders the card's HA selection compactly, e.g.
// "storage=raid1" or "none".
func (c OptionCard) Label() string {
	s := ""
	for _, ch := range c.Choices {
		if ch.TechID == "" {
			continue
		}
		if s != "" {
			s += ","
		}
		s += ch.Component + "=" + ch.TechID
	}
	if s == "" {
		return NoHALabel
	}
	return s
}

// Plan converts the card's choices into a Plan.
func (c OptionCard) Plan() Plan {
	p := make(Plan, len(c.Choices))
	for _, ch := range c.Choices {
		if ch.TechID != "" {
			p[ch.Component] = ch.TechID
		}
	}
	return p
}

// WithSearchProgress attaches a live search-progress hook to the
// context: the enumeration loops underneath Recommend and Pareto
// report (candidates accounted for, total work) through it on a fixed
// cadence. Recommend runs two passes — full pricing for the option
// cards, then the selected solver for the effort statistics — and
// reports them as one combined space of 2·k^n: the pricing pass
// covers [0, k^n], the solver pass [k^n, 2·k^n], each clamped to its
// half, so the bar advances monotonically from zero to done instead
// of double-counting the space per pass. Parallel passes may invoke
// the hook concurrently.
func WithSearchProgress(ctx context.Context, fn func(evaluated, spaceSize int64)) context.Context {
	return optimize.WithProgress(ctx, fn)
}

// splitProgress re-scopes a caller's WithSearchProgress hook over
// Recommend's two passes: both returned contexts report into one
// combined, monotone space of 2·space (pricing first half, solver
// second half). Without a hook on ctx both passes run on ctx itself.
func splitProgress(ctx context.Context, space int64) (pricing, solver context.Context) {
	fn := optimize.ContextProgress(ctx)
	if fn == nil {
		return ctx, ctx
	}
	total := 2 * space
	var mu sync.Mutex
	var high int64
	report := func(v int64) {
		mu.Lock()
		defer mu.Unlock()
		if v < high {
			return
		}
		high = v
		fn(v, total)
	}
	clamp := func(done int64) int64 {
		if done < 0 {
			return 0
		}
		if done > space {
			return space
		}
		return done
	}
	pricing = optimize.WithProgress(ctx, func(done, _ int64) { report(clamp(done)) })
	solver = optimize.WithProgress(ctx, func(done, _ int64) { report(space + clamp(done)) })
	return pricing, solver
}

// WithStrategyReport attaches a hook that hears which concrete solver
// strategy the search resolved to — for "auto" requests, the strategy
// the heuristic picked. It fires once per solver pass, before the
// enumeration starts, which is how the async job surface echoes the
// choice into live progress.
func WithStrategyReport(ctx context.Context, fn func(strategy string)) context.Context {
	return optimize.WithStrategyReport(ctx, fn)
}

// SearchStats reports how much work the Section III.C search saved
// relative to exhaustive enumeration, and which solver did it.
type SearchStats struct {
	// SpaceSize is k^n, the total number of permutations.
	SpaceSize int `json:"space_size"`

	// Evaluated is how many permutations the search priced.
	Evaluated int `json:"evaluated"`

	// Skipped is how many permutations were clipped without pricing
	// (supersets of an SLA-meeting permutation, or subtrees whose cost
	// bound could not win).
	Skipped int `json:"skipped"`

	// Strategy is the concrete solver that ran: "auto" requests echo
	// what the heuristic resolved to.
	Strategy string `json:"strategy"`
}

// Recommendation is the brokerage's answer: every option card plus the
// two recommendations the paper derives (minimum TCO, and minimum
// slippage risk) and the savings against the incumbent.
type Recommendation struct {
	// System is the base architecture's name.
	System string `json:"system"`

	// Provider is the hosting cloud.
	Provider string `json:"provider"`

	// SLA echoes the contractual target.
	SLA cost.SLA `json:"sla"`

	// Cards lists every solution option in presentation order.
	Cards []OptionCard `json:"cards"`

	// BestOption is the 1-based option number with minimum TCO —
	// Equation 6's OptCh, the broker's recommendation.
	BestOption int `json:"best_option"`

	// MinRiskOption is the 1-based option number of the cheapest card
	// whose expected uptime meets the SLA (zero expected penalty), or 0
	// when no card meets the SLA. This is the paper's "if the
	// possibility of slippage penalty is to be minimized" alternative.
	MinRiskOption int `json:"min_risk_option"`

	// AsIsOption is the 1-based option number matching the request's
	// incumbent plan, or 0 when no as-is plan was supplied.
	AsIsOption int `json:"as_is_option"`

	// SavingsFraction is 1 − TCO(best)/TCO(as-is), or 0 without an
	// as-is plan. The case study reports ≈ 0.62.
	SavingsFraction float64 `json:"savings_fraction"`

	// Search reports the pruned-search effort statistics.
	Search SearchStats `json:"search"`
}

// Card returns the 1-based option card.
func (r *Recommendation) Card(option int) (OptionCard, error) {
	if option < 1 || option > len(r.Cards) {
		return OptionCard{}, fmt.Errorf("broker: option %d out of range [1, %d]", option, len(r.Cards))
	}
	return r.Cards[option-1], nil
}

// Best returns the minimum-TCO card.
func (r *Recommendation) Best() OptionCard { return r.Cards[r.BestOption-1] }

// Recommend runs the full brokerage flow for one request. The context
// is observed throughout the compile-enumerate loop: cancelling it
// aborts the permutation pricing mid-run with ctx.Err().
func (e *Engine) Recommend(ctx context.Context, req Request) (*Recommendation, error) {
	c, err := e.compile(req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Price every option (the paper's figures show all of them), and
	// run the selected solver for the effort statistics; every
	// registered strategy returns the same optimum, which the optimize
	// package's equivalence tests guarantee. The two passes share one
	// combined progress space so watchers see a single monotone bar.
	pricingCtx, solverCtx := splitProgress(ctx, int64(c.problem.SpaceSize()))
	var cands []optimize.Candidate
	if e.parallelPricingFor(req) {
		cands, err = c.problem.ParallelAllContext(pricingCtx, 0)
	} else {
		cands, err = c.problem.AllContext(pricingCtx)
	}
	if err != nil {
		return nil, err
	}
	searched, err := optimize.Solve(solverCtx, c.problem, e.strategyFor(req))
	if err != nil {
		return nil, err
	}

	cards := make([]OptionCard, len(cands))
	order := make([]int, len(cands))
	for i := range cands {
		order[i] = i
	}
	// Paper presentation order: by number of clustered components, then
	// lexicographically by assignment.
	sort.Slice(order, func(x, y int) bool {
		a, b := cands[order[x]].Assignment, cands[order[y]].Assignment
		ha, hb := haCount(a), haCount(b)
		if ha != hb {
			return ha < hb
		}
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	})

	asIsAssignment, err := c.assignmentForPlan(req.AsIs)
	if err != nil {
		return nil, err
	}

	rec := &Recommendation{
		System:   req.Base.Name,
		Provider: req.Base.Provider,
		SLA:      req.SLA,
		Cards:    cards,
		Search: SearchStats{
			SpaceSize: c.problem.SpaceSize(),
			Evaluated: searched.Evaluated,
			Skipped:   searched.Skipped,
			Strategy:  searched.Strategy,
		},
	}

	bestIdx, minRiskIdx := -1, -1
	for pos, idx := range order {
		cand := cands[idx]
		card := OptionCard{
			Option:        pos + 1,
			Choices:       c.choicesFor(cand.Assignment),
			HACost:        cand.TCO.HA,
			Uptime:        cand.Uptime,
			SlippageHours: req.SLA.SlippageHoursPerMonth(cand.Uptime),
			Penalty:       cand.TCO.ExpectedPenalty,
			TCO:           cand.TCO.Total(),
			MeetsSLA:      cand.MeetsSLA(req.SLA),
		}
		cards[pos] = card

		if bestIdx < 0 || card.TCO < cards[bestIdx].TCO {
			bestIdx = pos
		}
		if card.MeetsSLA && (minRiskIdx < 0 || card.HACost < cards[minRiskIdx].HACost) {
			minRiskIdx = pos
		}
		if asIsAssignment != nil && sameAssignment(cand.Assignment, asIsAssignment) {
			rec.AsIsOption = pos + 1
		}
	}

	rec.BestOption = bestIdx + 1
	if minRiskIdx >= 0 {
		rec.MinRiskOption = minRiskIdx + 1
	}
	// Savings against the incumbent. Two edges are pinned to exactly
	// zero rather than left to the division: the incumbent already
	// being the optimum (recommending what the customer runs saves
	// nothing, and float noise must not report otherwise), and a
	// zero-TCO incumbent (nothing to save from; the ratio would be
	// undefined).
	if rec.AsIsOption > 0 && rec.AsIsOption != rec.BestOption {
		asIs := cards[rec.AsIsOption-1]
		if asIs.TCO > 0 {
			rec.SavingsFraction = 1 - float64(cards[bestIdx].TCO)/float64(asIs.TCO)
		}
	}
	return rec, nil
}

// choicesFor maps an assignment back to component/tech pairs.
func (c *compiled) choicesFor(a optimize.Assignment) []Choice {
	out := make([]Choice, len(a))
	for i, v := range a {
		out[i] = Choice{Component: c.names[i], TechID: c.techIDs[i][v]}
	}
	return out
}

// assignmentForPlan converts a Plan into an assignment, or nil for a
// nil plan. Unknown technology IDs (not among the component's variants)
// are an error: the incumbent must be expressible in the option space
// to be comparable.
func (c *compiled) assignmentForPlan(p Plan) (optimize.Assignment, error) {
	if p == nil {
		return nil, nil
	}
	a := make(optimize.Assignment, len(c.names))
	for i, name := range c.names {
		want := p[name]
		found := false
		for v, id := range c.techIDs[i] {
			if id == want {
				a[i] = v
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("broker: as-is plan uses %q on %q, which is not among the allowed options", want, name)
		}
	}
	return a, nil
}

func haCount(a optimize.Assignment) int {
	n := 0
	for _, v := range a {
		if v != 0 {
			n++
		}
	}
	return n
}

func sameAssignment(a, b optimize.Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

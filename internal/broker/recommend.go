package broker

import (
	"context"
	"fmt"
	"sync"
	"time"

	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
)

// Choice is one component's HA selection within an option card.
type Choice struct {
	// Component is the component name.
	Component string `json:"component"`

	// TechID is the chosen HA technology ("" = no HA).
	TechID string `json:"tech_id,omitempty"`
}

// OptionCard is one fully priced solution option — the content of the
// paper's Figures 3 through 9 (one card per HA permutation).
type OptionCard struct {
	// Option is the 1-based option number in the paper's presentation
	// order: ascending number of clustered components, lexicographic
	// within a level. The case study's option #1 is "no HA anywhere",
	// #8 is "HA everywhere".
	Option int `json:"option"`

	// Choices is the per-component HA selection.
	Choices []Choice `json:"choices"`

	// HACost is C_HA: the monthly infrastructure + labor cost of the
	// selected redundancy.
	HACost cost.Money `json:"ha_cost"`

	// Uptime is the expected uptime fraction U_s.
	Uptime float64 `json:"uptime"`

	// SlippageHours is the expected hours per month below the SLA.
	SlippageHours float64 `json:"slippage_hours"`

	// Penalty is the expected monthly slippage payout.
	Penalty cost.Money `json:"penalty"`

	// TCO is HACost + Penalty (Equation 5).
	TCO cost.Money `json:"tco"`

	// MeetsSLA reports whether expected uptime reaches the target.
	MeetsSLA bool `json:"meets_sla"`
}

// Label renders the card's HA selection compactly, e.g.
// "storage=raid1" or "none".
func (c OptionCard) Label() string {
	s := ""
	for _, ch := range c.Choices {
		if ch.TechID == "" {
			continue
		}
		if s != "" {
			s += ","
		}
		s += ch.Component + "=" + ch.TechID
	}
	if s == "" {
		return NoHALabel
	}
	return s
}

// Plan converts the card's choices into a Plan.
func (c OptionCard) Plan() Plan {
	p := make(Plan, len(c.Choices))
	for _, ch := range c.Choices {
		if ch.TechID != "" {
			p[ch.Component] = ch.TechID
		}
	}
	return p
}

// WithSearchProgress attaches a live search-progress hook to the
// context: the enumeration loops underneath Recommend and Pareto
// report (candidates accounted for, total work) through it on a fixed
// cadence. Recommend runs two passes — full pricing for the option
// cards, then the selected solver for the effort statistics — and
// reports them as one combined space of 2·k^n: the pricing pass
// covers [0, k^n], the solver pass [k^n, 2·k^n], each clamped to its
// half, so the bar advances monotonically from zero to done instead
// of double-counting the space per pass. Parallel passes may invoke
// the hook concurrently.
func WithSearchProgress(ctx context.Context, fn func(evaluated, spaceSize int64)) context.Context {
	return optimize.WithProgress(ctx, fn)
}

// splitProgress re-scopes a caller's WithSearchProgress hook over
// Recommend's two passes: both returned contexts report into one
// combined, monotone space of 2·space (pricing first half, solver
// second half). Without a hook on ctx both passes run on ctx itself.
func splitProgress(ctx context.Context, space int64) (pricing, solver context.Context) {
	fn := optimize.ContextProgress(ctx)
	if fn == nil {
		return ctx, ctx
	}
	total := 2 * space
	var mu sync.Mutex
	var high int64
	report := func(v int64) {
		mu.Lock()
		defer mu.Unlock()
		if v < high {
			return
		}
		high = v
		fn(v, total)
	}
	clamp := func(done int64) int64 {
		if done < 0 {
			return 0
		}
		if done > space {
			return space
		}
		return done
	}
	pricing = optimize.WithProgress(ctx, func(done, _ int64) { report(clamp(done)) })
	solver = optimize.WithProgress(ctx, func(done, _ int64) { report(space + clamp(done)) })
	return pricing, solver
}

// doubleProgress re-scopes a caller's WithSearchProgress hook over the
// fused single-pass Recommend: the one streaming enumeration covers
// both halves of the combined 2·space bar (each candidate is priced
// and searched at once), so reports scale by two and watchers see the
// same space and completion point as the two-pass shape.
func doubleProgress(ctx context.Context, space int64) context.Context {
	fn := optimize.ContextProgress(ctx)
	if fn == nil {
		return ctx
	}
	total := 2 * space
	return optimize.WithProgress(ctx, func(done, _ int64) {
		d := 2 * done
		if d > total {
			d = total
		}
		fn(d, total)
	})
}

// WithStrategyReport attaches a hook that hears which concrete solver
// strategy the search resolved to — for "auto" requests, the strategy
// the heuristic picked. It fires once per solver pass, before the
// enumeration starts, which is how the async job surface echoes the
// choice into live progress.
func WithStrategyReport(ctx context.Context, fn func(strategy string)) context.Context {
	return optimize.WithStrategyReport(ctx, fn)
}

// SearchStats reports how much work the Section III.C search saved
// relative to exhaustive enumeration, and which solver did it.
type SearchStats struct {
	// SpaceSize is k^n, the total number of permutations.
	SpaceSize int `json:"space_size"`

	// Evaluated is how many permutations the search priced.
	Evaluated int `json:"evaluated"`

	// Skipped is how many permutations were clipped without pricing
	// (supersets of an SLA-meeting permutation, or subtrees whose cost
	// bound could not win).
	Skipped int `json:"skipped"`

	// CoverLookups is how many superset-index lookups the search
	// performed (zero for the exhaustive strategy).
	CoverLookups int `json:"cover_lookups"`

	// Clipped is how many permutations were clipped specifically by a
	// covering SLA-meeting assignment — a subset of Skipped, which for
	// branch-and-bound also counts bound-clipped subtrees.
	Clipped int `json:"clipped"`

	// Strategy is the concrete solver that ran: "auto" requests echo
	// what the heuristic resolved to.
	Strategy string `json:"strategy"`

	// Approximate reports whether the solver was from the anytime lane
	// (beam, lds, bounded): the fields below are populated only then,
	// and omitted entirely for exact runs.
	Approximate bool `json:"approximate,omitempty"`

	// Bound is the certified admissible lower bound on the optimal
	// monthly TCO an approximate run proved.
	Bound cost.Money `json:"bound,omitempty"`

	// Gap is the certified relative optimality gap,
	// (incumbent − bound) / bound; 0 means proven optimal. Infinite
	// when the run could not prove any positive bound (wire layers omit
	// it then).
	Gap float64 `json:"gap,omitempty"`

	// Optimal reports that an approximate run closed its gap to zero —
	// the incumbent is a proven optimum despite the approximate lane.
	Optimal bool `json:"optimal,omitempty"`

	// BudgetExhausted reports that the run stopped on its wall-clock or
	// evaluation budget rather than finishing its enumeration.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
}

// Recommendation is the brokerage's answer: every option card plus the
// two recommendations the paper derives (minimum TCO, and minimum
// slippage risk) and the savings against the incumbent.
type Recommendation struct {
	// System is the base architecture's name.
	System string `json:"system"`

	// Provider is the hosting cloud.
	Provider string `json:"provider"`

	// SLA echoes the contractual target.
	SLA cost.SLA `json:"sla"`

	// Cards lists every solution option in presentation order.
	Cards []OptionCard `json:"cards"`

	// BestOption is the 1-based option number with minimum TCO —
	// Equation 6's OptCh, the broker's recommendation.
	BestOption int `json:"best_option"`

	// MinRiskOption is the 1-based option number of the cheapest card
	// whose expected uptime meets the SLA (zero expected penalty), or 0
	// when no card meets the SLA. This is the paper's "if the
	// possibility of slippage penalty is to be minimized" alternative.
	MinRiskOption int `json:"min_risk_option"`

	// AsIsOption is the 1-based option number matching the request's
	// incumbent plan, or 0 when no as-is plan was supplied.
	AsIsOption int `json:"as_is_option"`

	// SavingsFraction is 1 − TCO(best)/TCO(as-is), or 0 without an
	// as-is plan. The case study reports ≈ 0.62.
	SavingsFraction float64 `json:"savings_fraction"`

	// Search reports the pruned-search effort statistics.
	Search SearchStats `json:"search"`
}

// Card returns the 1-based option card.
func (r *Recommendation) Card(option int) (OptionCard, error) {
	if option < 1 || option > len(r.Cards) {
		return OptionCard{}, fmt.Errorf("broker: option %d out of range [1, %d]", option, len(r.Cards))
	}
	return r.Cards[option-1], nil
}

// Best returns the minimum-TCO card.
func (r *Recommendation) Best() OptionCard { return r.Cards[r.BestOption-1] }

// priceState is one pricing worker's running fold over the candidates
// it visited: the positions of the best-TCO, cheapest-SLA-meeting and
// as-is cards. Position ties break toward the lower presentation
// position, which makes the cross-worker merge deterministic — the
// folded outcome is identical to a sequential presentation-order scan
// regardless of how candidates land on workers.
type priceState struct {
	bestPos   int
	bestTCO   cost.Money
	minRisk   int
	minRiskHA cost.Money
	asIs      int
}

// fold merges another worker's state into s.
func (s *priceState) fold(o priceState) {
	if o.bestPos >= 0 && (s.bestPos < 0 || o.bestTCO < s.bestTCO || (o.bestTCO == s.bestTCO && o.bestPos < s.bestPos)) {
		s.bestPos, s.bestTCO = o.bestPos, o.bestTCO
	}
	if o.minRisk >= 0 && (s.minRisk < 0 || o.minRiskHA < s.minRiskHA || (o.minRiskHA == s.minRiskHA && o.minRisk < s.minRisk)) {
		s.minRisk, s.minRiskHA = o.minRisk, o.minRiskHA
	}
	if o.asIs >= 0 {
		s.asIs = o.asIs
	}
}

// recommend runs the search for one normalized request. The context
// is observed throughout the compile-enumerate loop: cancelling it
// aborts the permutation pricing mid-run with ctx.Err(). The exported
// entry point is Recommend (cache.go), which layers normalization and
// the result cache on top.
//
// The pricing pass streams: each candidate is priced once on the
// compiled incremental evaluator and written straight into its
// presentation-order card slot (positions come from the combinatorial
// ranker, so parallel shards write disjoint slots), with the best-TCO
// and min-risk incumbents folded online — no materialized candidate
// slice, no order permutation, no sort pass. When the requested
// strategy resolves to exhaustive, the search IS the pricing pass, so
// the solver pass is skipped entirely and its statistics fall out of
// the stream; pruning strategies still run their (much cheaper)
// search for the paper's effort statistics. Both shapes report one
// combined monotone progress space of 2·k^n.
func (e *Engine) recommend(ctx context.Context, req Request) (*Recommendation, error) {
	start := time.Now()
	c, err := e.compile(req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	asIsAssignment, err := c.assignmentForPlan(req.AsIs)
	if err != nil {
		return nil, err
	}
	cfg := req.Solver
	cfg.Strategy = e.strategyFor(req)
	resolved, err := optimize.ResolveConfig(c.problem, cfg)
	if err != nil {
		return nil, err
	}

	space := c.problem.SpaceSize()
	cards := make([]OptionCard, space)
	rk := newRanker(c.problem)

	// fork hands each pricing worker its own fold state; the states
	// are merged once the stream (and with it every worker) is done.
	var mu sync.Mutex
	var states []*priceState
	fork := func() func(*optimize.Cursor) error {
		st := &priceState{bestPos: -1, minRisk: -1, asIs: -1}
		mu.Lock()
		states = append(states, st)
		mu.Unlock()
		return func(cur *optimize.Cursor) error {
			a := cur.Assignment()
			pos := rk.position(a)
			tco := cur.TCO()
			uptime := cur.Uptime()
			total := tco.Total()
			meets := cur.MeetsSLA()
			cards[pos] = OptionCard{
				Option:        pos + 1,
				Choices:       c.choicesFor(a),
				HACost:        tco.HA,
				Uptime:        uptime,
				SlippageHours: req.SLA.SlippageHoursPerMonth(uptime),
				Penalty:       tco.ExpectedPenalty,
				TCO:           total,
				MeetsSLA:      meets,
			}
			if st.bestPos < 0 || total < st.bestTCO || (total == st.bestTCO && pos < st.bestPos) {
				st.bestPos, st.bestTCO = pos, total
			}
			if meets && (st.minRisk < 0 || tco.HA < st.minRiskHA || (tco.HA == st.minRiskHA && pos < st.minRisk)) {
				st.minRisk, st.minRiskHA = pos, tco.HA
			}
			if asIsAssignment != nil && sameAssignment(a, asIsAssignment) {
				st.asIs = pos
			}
			return nil
		}
	}
	runPricing := func(pctx context.Context) error {
		if e.parallelPricingFor(req, space) {
			return c.problem.ParallelStreamContext(pctx, 0, fork)
		}
		return c.problem.StreamContext(pctx, fork())
	}

	rec := &Recommendation{
		System:   req.Base.Name,
		Provider: req.Base.Provider,
		SLA:      req.SLA,
		Cards:    cards,
		Search:   SearchStats{SpaceSize: space},
	}

	fused := resolved == optimize.StrategyExhaustive && cfg.Budget.IsZero()
	if fused {
		// Fused: the exhaustive search is the pricing pass, so one
		// streaming enumeration serves both and its statistics are
		// known by construction. Progress maps onto the combined 2·k^n
		// space watchers already expect, and the strategy hook still
		// hears the resolved choice. A budgeted run takes the two-pass
		// shape instead, so SolveConfig owns the budget semantics
		// (deadline for exact strategies, refusal of an evaluation cap).
		optimize.ReportStrategy(ctx, resolved)
		if err := runPricing(doubleProgress(ctx, int64(space))); err != nil {
			return nil, err
		}
		rec.Search.Evaluated = space
		rec.Search.Strategy = resolved
	} else {
		pricingCtx, solverCtx := splitProgress(ctx, int64(space))
		if err := runPricing(pricingCtx); err != nil {
			return nil, err
		}
		searched, err := optimize.SolveConfig(solverCtx, c.problem, cfg)
		if err != nil {
			return nil, err
		}
		rec.Search.Evaluated = searched.Evaluated
		rec.Search.Skipped = searched.Skipped
		rec.Search.CoverLookups = searched.CoverLookups
		rec.Search.Clipped = searched.Clipped
		rec.Search.Strategy = searched.Strategy
		rec.Search.Approximate = searched.Approximate
		rec.Search.Bound = searched.Bound
		rec.Search.Gap = searched.Gap
		rec.Search.Optimal = searched.Optimal
		rec.Search.BudgetExhausted = searched.BudgetExhausted
	}

	merged := priceState{bestPos: -1, minRisk: -1, asIs: -1}
	for _, st := range states {
		merged.fold(*st)
	}

	rec.BestOption = merged.bestPos + 1
	if merged.minRisk >= 0 {
		rec.MinRiskOption = merged.minRisk + 1
	}
	if merged.asIs >= 0 {
		rec.AsIsOption = merged.asIs + 1
	}
	// Savings against the incumbent. Two edges are pinned to exactly
	// zero rather than left to the division: the incumbent already
	// being the optimum (recommending what the customer runs saves
	// nothing, and float noise must not report otherwise), and a
	// zero-TCO incumbent (nothing to save from; the ratio would be
	// undefined).
	if rec.AsIsOption > 0 && rec.AsIsOption != rec.BestOption {
		asIs := cards[rec.AsIsOption-1]
		if asIs.TCO > 0 {
			rec.SavingsFraction = 1 - float64(cards[merged.bestPos].TCO)/float64(asIs.TCO)
		}
	}
	if m := e.metrics.Load(); m != nil {
		// One bulk observation per run (the pricing pass plus, for
		// pruning strategies, the solver's own evaluations) — the
		// per-candidate loop above stays uninstrumented by design.
		evals := int64(space)
		if !fused {
			evals += int64(rec.Search.Evaluated)
		}
		m.observeRun(rec.Search, evals, time.Since(start).Seconds())
	}
	return rec, nil
}

// choicesFor maps an assignment back to component/tech pairs.
func (c *compiled) choicesFor(a optimize.Assignment) []Choice {
	out := make([]Choice, len(a))
	for i, v := range a {
		out[i] = Choice{Component: c.names[i], TechID: c.techIDs[i][v]}
	}
	return out
}

// assignmentForPlan converts a Plan into an assignment, or nil for a
// nil plan. Unknown technology IDs (not among the component's variants)
// are an error: the incumbent must be expressible in the option space
// to be comparable.
func (c *compiled) assignmentForPlan(p Plan) (optimize.Assignment, error) {
	if p == nil {
		return nil, nil
	}
	a := make(optimize.Assignment, len(c.names))
	for i, name := range c.names {
		want := p[name]
		found := false
		for v, id := range c.techIDs[i] {
			if id == want {
				a[i] = v
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("broker: as-is plan uses %q on %q, which is not among the allowed options", want, name)
		}
	}
	return a, nil
}

func haCount(a optimize.Assignment) int {
	n := 0
	for _, v := range a {
		if v != 0 {
			n++
		}
	}
	return n
}

func sameAssignment(a, b optimize.Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

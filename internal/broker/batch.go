package broker

import (
	"context"
	"runtime"
	"sync"
)

// BatchItem is one request's outcome within a RecommendBatch call.
// Exactly one of Rec and Err is set.
type BatchItem struct {
	// Index is the request's position in the submitted slice.
	Index int

	// Rec is the recommendation when the request succeeded.
	Rec *Recommendation

	// Err is the request's failure, including ctx.Err() for requests
	// abandoned after the batch context was cancelled.
	Err error
}

// RecommendBatch runs the brokerage for every request concurrently
// across a bounded worker pool (at most runtime.GOMAXPROCS workers)
// and returns one item per request, in request order. Individual
// request failures do not abort the batch; cancelling ctx stops
// in-flight enumerations and marks the remaining items with ctx.Err().
func (e *Engine) RecommendBatch(ctx context.Context, reqs []Request) []BatchItem {
	items := make([]BatchItem, len(reqs))
	if len(reqs) == 0 {
		return items
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(reqs) {
		workers = len(reqs)
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				rec, err := e.Recommend(ctx, reqs[i])
				items[i] = BatchItem{Index: i, Rec: rec, Err: err}
			}
		}()
	}

feed:
	for i := range reqs {
		select {
		case indices <- i:
		case <-ctx.Done():
			// Mark everything not yet handed out; workers finish (or
			// abort via ctx) the items they already own.
			for j := i; j < len(reqs); j++ {
				items[j] = BatchItem{Index: j, Err: ctx.Err()}
			}
			break feed
		}
	}
	close(indices)
	wg.Wait()

	// A worker may have started an item just as ctx fired; its
	// in-flight result (success or ctx error) wins over the feeder's
	// blanket marking, so nothing more to reconcile here.
	return items
}

package broker

import (
	"math"
	"sync"

	"uptimebroker/internal/obs"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/reccache"
)

// engineMetrics is the engine's attachment to a metrics registry:
// the cross-strategy evaluation counter plus lazily created
// per-strategy solver series. Observation happens once per completed
// recommendation run — bulk adds, never per candidate — so the
// zero-allocation evaluation hot path is untouched.
type engineMetrics struct {
	reg         *obs.Registry
	evaluations *obs.Counter

	mu      sync.Mutex
	solvers map[string]*solverMetrics
}

// solverMetrics is one strategy's run/throughput series. The gap gauge
// and budget counter exist only for the approximate strategies — exact
// runs have no certificate to report, and a permanent 0% gap series
// for "pruned" would read as a claim it never makes.
type solverMetrics struct {
	runs            *obs.Counter
	evaluated       *obs.Counter
	skipped         *obs.Counter
	coverLookups    *obs.Counter
	clipped         *obs.Counter
	seconds         *obs.Histogram
	gap             *obs.Gauge
	budgetExhausted *obs.Counter
}

// solverFor returns the strategy's series, creating them on first use.
// The map caches registry lookups so a run costs one mutex hit, not a
// label-key render.
func (m *engineMetrics) solverFor(strategy string) *solverMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.solvers[strategy]; ok {
		return s
	}
	l := obs.L("strategy", strategy)
	s := &solverMetrics{
		runs:         m.reg.Counter("solver_runs_total", "Completed solver runs per strategy.", l),
		evaluated:    m.reg.Counter("solver_evaluated_total", "Candidates the solver priced, per strategy.", l),
		skipped:      m.reg.Counter("solver_skipped_total", "Candidates clipped without pricing, per strategy.", l),
		coverLookups: m.reg.Counter("solver_cover_lookups_total", "Superset-index lookups the solver performed, per strategy.", l),
		clipped:      m.reg.Counter("solver_clipped_total", "Candidates clipped by a covering SLA-meeting assignment, per strategy.", l),
		seconds:      m.reg.Histogram("solver_run_seconds", "End-to-end recommendation search time per strategy.", obs.ExponentialBuckets(0.0001, 4, 12), l),
	}
	if optimize.ApproximateStrategy(strategy) {
		s.gap = m.reg.Gauge("solver_gap", "Certified relative optimality gap of the last approximate run, per strategy (0 = proven optimal).", l)
		s.budgetExhausted = m.reg.Counter("solver_budget_exhausted_total", "Approximate runs stopped by their wall-clock or evaluation budget, per strategy.", l)
	}
	m.solvers[strategy] = s
	return s
}

// observeRun records one completed recommendation: total candidate
// evaluations across pricing and search, the strategy's search
// statistics (including superset-index lookups and cover clips), and
// the run's wall time. One bulk add per run — the per-candidate hot
// loop stays uninstrumented. Approximate runs additionally publish
// their certified gap (skipped when infinite — a gauge cannot render
// "no bound proven") and count budget-stopped runs.
func (m *engineMetrics) observeRun(stats SearchStats, evaluated int64, seconds float64) {
	m.evaluations.Add(evaluated)
	s := m.solverFor(stats.Strategy)
	s.runs.Inc()
	s.evaluated.Add(evaluated)
	s.skipped.Add(int64(stats.Skipped))
	s.coverLookups.Add(int64(stats.CoverLookups))
	s.clipped.Add(int64(stats.Clipped))
	s.seconds.Observe(seconds)
	if stats.Approximate && s.gap != nil {
		if !math.IsInf(stats.Gap, 1) {
			s.gap.Set(stats.Gap)
		}
		if stats.BudgetExhausted {
			s.budgetExhausted.Inc()
		}
	}
}

// InstrumentMetrics attaches the engine to a metrics registry,
// publishing the result cache's counters and occupancy, the catalog
// and parameter epochs, and the solver throughput series. It is
// idempotent: the first registry wins and later calls are no-ops, so
// the HTTP layer can instrument an engine without knowing whether its
// constructor already did.
func (e *Engine) InstrumentMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.metricsOnce.Lock()
	defer e.metricsOnce.Unlock()
	if e.metrics.Load() != nil {
		return
	}

	m := &engineMetrics{
		reg: reg,
		evaluations: reg.Counter("broker_evaluations_total",
			"Candidate permutations priced across all recommendation runs."),
		solvers: make(map[string]*solverMetrics),
	}

	reg.GaugeFunc("catalog_epoch", "Catalog mutation epoch.",
		func() float64 { return float64(e.catalog.Epoch()) })
	if _, ok := e.ParamsEpoch(); ok {
		reg.GaugeFunc("params_epoch", "Parameter source mutation epoch.",
			func() float64 {
				epoch, _ := e.ParamsEpoch()
				return float64(epoch)
			})
	}

	if e.cache != nil {
		cacheCounters := []struct {
			name, help string
			get        func(reccache.Metrics) int64
		}{
			{"reccache_hits_total", "Requests answered from a completed cache entry.", func(m reccache.Metrics) int64 { return m.Hits }},
			{"reccache_misses_total", "Requests that ran the search as flight leader.", func(m reccache.Metrics) int64 { return m.Misses }},
			{"reccache_shared_total", "Requests that joined an in-flight search.", func(m reccache.Metrics) int64 { return m.Shared }},
			{"reccache_evictions_total", "Entries dropped to respect capacity limits.", func(m reccache.Metrics) int64 { return m.Evictions }},
			{"reccache_expired_total", "Entries dropped on TTL expiry.", func(m reccache.Metrics) int64 { return m.Expired }},
		}
		for _, c := range cacheCounters {
			get := c.get
			reg.CounterFunc(c.name, c.help, func() float64 { return float64(get(e.cache.Metrics())) })
		}
		reg.GaugeFunc("reccache_inflight", "Searches currently running under the cache.",
			func() float64 { return float64(e.cache.Metrics().Inflight) })
		reg.GaugeFunc("reccache_entries", "Cached results currently held.",
			func() float64 { return float64(e.cache.Metrics().Entries) })
		reg.GaugeFunc("reccache_bytes", "Approximate bytes of cached results held.",
			func() float64 { return float64(e.cache.Metrics().Bytes) })
	}

	e.metrics.Store(m)
}

// MetricsRegistry returns the registry the engine publishes on, or nil
// when uninstrumented — the HTTP layer shares it rather than creating
// a second one.
func (e *Engine) MetricsRegistry() *obs.Registry {
	if m := e.metrics.Load(); m != nil {
		return m.reg
	}
	return nil
}

// WithMetricsRegistry instruments the engine on reg (see
// InstrumentMetrics). Applied at the end of New so it composes with
// WithResultCache regardless of option order.
func WithMetricsRegistry(reg *obs.Registry) EngineOption {
	return func(e *Engine) { e.pendingMetrics = reg }
}

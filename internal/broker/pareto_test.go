package broker

import (
	"context"
	"testing"

	"uptimebroker/internal/cost"
)

func TestParetoCardsCaseStudy(t *testing.T) {
	e := newTestEngine(t)
	front, err := e.Pareto(context.Background(), CaseStudy())
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}

	// Frontier invariants: strictly increasing cost and uptime.
	for i := 1; i < len(front); i++ {
		if front[i].HACost <= front[i-1].HACost {
			t.Fatalf("frontier cost not increasing: %v then %v", front[i-1].HACost, front[i].HACost)
		}
		if front[i].Uptime <= front[i-1].Uptime {
			t.Fatalf("frontier uptime not increasing: %v then %v", front[i-1].Uptime, front[i].Uptime)
		}
	}

	// The cheapest card (no HA) and the highest-uptime card (full HA)
	// are always on the frontier.
	if front[0].HACost != 0 {
		t.Fatalf("frontier should start at $0, got %v", front[0].HACost)
	}
	last := front[len(front)-1]
	if last.Label() != "compute=esx-ha,storage=raid1,network=dual-gateway" {
		t.Fatalf("frontier should end at full HA, got %q", last.Label())
	}

	// Option #2 (network-only, $900 for less uptime than #3's $350) is
	// dominated and must be absent.
	for _, c := range front {
		if c.Label() == "network=dual-gateway" {
			t.Fatal("dominated option #2 on the frontier")
		}
	}
}

func TestParetoCardsNoDominatedSurvivor(t *testing.T) {
	e := newTestEngine(t)
	rec, err := e.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoCards(rec.Cards)
	for _, f := range front {
		for _, c := range rec.Cards {
			if c.HACost <= f.HACost && c.Uptime > f.Uptime && c.HACost < f.HACost {
				t.Fatalf("frontier card #%d dominated by #%d", f.Option, c.Option)
			}
		}
	}
}

func TestParetoCardsEmpty(t *testing.T) {
	if got := ParetoCards(nil); got != nil {
		t.Fatalf("ParetoCards(nil) = %v", got)
	}
}

func TestParetoCardsTieOnCost(t *testing.T) {
	cards := []OptionCard{
		{Option: 1, HACost: cost.Dollars(100), Uptime: 0.97},
		{Option: 2, HACost: cost.Dollars(100), Uptime: 0.99},
	}
	front := ParetoCards(cards)
	if len(front) != 1 || front[0].Option != 2 {
		t.Fatalf("tie on cost should keep only the higher uptime: %+v", front)
	}
}

func TestParetoPropagatesErrors(t *testing.T) {
	e := newTestEngine(t)
	bad := CaseStudy()
	bad.Base.Provider = "ghost"
	if _, err := e.Pareto(context.Background(), bad); err == nil {
		t.Fatal("Pareto should propagate compile errors")
	}
}

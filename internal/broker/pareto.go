package broker

import (
	"context"
	"sort"
)

// ParetoCards filters option cards to the cost × uptime frontier: a
// card survives unless some other card offers at least the uptime for
// at most the HA cost (with one strict improvement). The frontier is
// the menu for customers negotiating SLA terms rather than accepting
// the single TCO optimum; it is returned sorted by ascending HA cost.
func ParetoCards(cards []OptionCard) []OptionCard {
	if len(cards) == 0 {
		return nil
	}
	sorted := append([]OptionCard(nil), cards...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].HACost != sorted[j].HACost {
			return sorted[i].HACost < sorted[j].HACost
		}
		return sorted[i].Uptime > sorted[j].Uptime
	})
	var front []OptionCard
	bestUptime := -1.0
	for _, c := range sorted {
		if c.Uptime > bestUptime {
			front = append(front, c)
			bestUptime = c.Uptime
		}
	}
	return front
}

// Pareto runs the brokerage and returns only the frontier cards. The
// context cancels the underlying enumeration like Recommend's.
func (e *Engine) Pareto(ctx context.Context, req Request) ([]OptionCard, error) {
	rec, err := e.Recommend(ctx, req)
	if err != nil {
		return nil, err
	}
	return ParetoCards(rec.Cards), nil
}

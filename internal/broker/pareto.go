package broker

import (
	"context"
	"slices"
	"sort"
	"sync"

	"uptimebroker/internal/cost"
	"uptimebroker/internal/optimize"
)

// ParetoCards filters option cards to the cost × uptime frontier: a
// card survives unless some other card offers at least the uptime for
// at most the HA cost (with one strict improvement). The frontier is
// the menu for customers negotiating SLA terms rather than accepting
// the single TCO optimum; it is returned sorted by ascending HA cost.
func ParetoCards(cards []OptionCard) []OptionCard {
	if len(cards) == 0 {
		return nil
	}
	sorted := append([]OptionCard(nil), cards...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].HACost != sorted[j].HACost {
			return sorted[i].HACost < sorted[j].HACost
		}
		if sorted[i].Uptime != sorted[j].Uptime {
			return sorted[i].Uptime > sorted[j].Uptime
		}
		// Exact cost+uptime ties keep the lowest option number, the
		// same deterministic rule the streaming frontier applies.
		return sorted[i].Option < sorted[j].Option
	})
	var front []OptionCard
	bestUptime := -1.0
	for _, c := range sorted {
		if c.Uptime > bestUptime {
			front = append(front, c)
			bestUptime = c.Uptime
		}
	}
	return front
}

// paretoEntry is one surviving frontier candidate: just enough to
// build its option card after the stream finishes. The assignment is
// cloned only when a candidate actually enters the frontier, so the
// pass's memory is O(frontier), not O(k^n).
type paretoEntry struct {
	pos    int
	a      optimize.Assignment
	uptime float64
	tco    cost.TCO
}

// frontier maintains the cost × uptime Pareto frontier online. The
// entries are sorted by ascending HA cost, and the surviving set has
// strictly increasing uptime — the invariant ParetoCards produces by
// sorting after the fact. Exact cost+uptime ties keep the lowest
// presentation position, which makes the fold deterministic under any
// parallel sharding.
type frontier struct {
	entries []paretoEntry
}

// consider offers one candidate to the frontier. The presentation
// position is derived lazily from rk: almost every candidate is
// rejected by the domination checks alone, and only survivors (plus
// exact cost+uptime ties) pay the ranker's O(n) walk — keeping the
// per-candidate cost of the streaming pass at the cursor's O(1).
func (f *frontier) consider(rk *ranker, a optimize.Assignment, uptime float64, tco cost.TCO) {
	ha := tco.HA
	idx := sort.Search(len(f.entries), func(i int) bool { return f.entries[i].tco.HA > ha })
	lo := idx
	pos := -1
	if idx > 0 {
		prev := f.entries[idx-1]
		if prev.uptime > uptime {
			return // dominated: cheaper (or equal) and strictly better uptime
		}
		switch {
		case prev.uptime == uptime:
			if prev.tco.HA < ha {
				return // dominated by a cheaper equal
			}
			pos = rk.position(a)
			if prev.pos < pos {
				return // loses the exact cost+uptime tie
			}
			lo = idx - 1 // wins the tie: prev falls off
		case prev.tco.HA == ha:
			lo = idx - 1 // equal cost, strictly better uptime: prev falls off
		}
	}
	hi := idx
	for hi < len(f.entries) && f.entries[hi].uptime <= uptime {
		hi++ // costlier entries without an uptime edge fall off
	}
	if pos < 0 {
		pos = rk.position(a)
	}
	e := paretoEntry{pos: pos, a: a.Clone(), uptime: uptime, tco: tco}
	f.entries = slices.Delete(f.entries, lo, hi)
	f.entries = slices.Insert(f.entries, lo, e)
}

// pareto runs the frontier search for one normalized request; the
// exported entry point is Pareto (cache.go), which layers
// normalization and the result cache on top. The context cancels the
// underlying enumeration like recommend's.
//
// Unlike Recommend, nothing here needs every card: the frontier is
// folded online during a single streaming pricing pass, so the pass
// holds O(frontier) memory instead of materializing the O(k^n) card
// list and discarding almost all of it — and no solver pass runs at
// all, since the frontier is a property of the full card set, not of
// the TCO optimum. Progress hooks see the single k^n pricing space.
func (e *Engine) pareto(ctx context.Context, req Request) ([]OptionCard, error) {
	c, err := e.compile(req)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The frontier itself never compares against the incumbent, but an
	// inexpressible as-is plan is still a caller mistake that must
	// surface — exactly as Recommend reports it.
	if _, err := c.assignmentForPlan(req.AsIs); err != nil {
		return nil, err
	}

	rk := newRanker(c.problem)
	var mu sync.Mutex
	var fronts []*frontier
	fork := func() func(*optimize.Cursor) error {
		f := &frontier{}
		mu.Lock()
		fronts = append(fronts, f)
		mu.Unlock()
		return func(cur *optimize.Cursor) error {
			f.consider(rk, cur.Assignment(), cur.Uptime(), cur.TCO())
			return nil
		}
	}
	if e.parallelPricingFor(req, c.problem.SpaceSize()) {
		err = c.problem.ParallelStreamContext(ctx, 0, fork)
	} else {
		err = c.problem.StreamContext(ctx, fork())
	}
	if err != nil {
		return nil, err
	}

	merged := &frontier{}
	for _, f := range fronts {
		for _, en := range f.entries {
			merged.consider(rk, en.a, en.uptime, en.tco)
		}
	}

	front := make([]OptionCard, len(merged.entries))
	for i, en := range merged.entries {
		front[i] = OptionCard{
			Option:        en.pos + 1,
			Choices:       c.choicesFor(en.a),
			HACost:        en.tco.HA,
			Uptime:        en.uptime,
			SlippageHours: req.SLA.SlippageHoursPerMonth(en.uptime),
			Penalty:       en.tco.ExpectedPenalty,
			TCO:           en.tco.Total(),
			MeetsSLA:      en.uptime >= req.SLA.Target(),
		}
	}
	if len(front) == 0 {
		return nil, nil
	}
	return front, nil
}

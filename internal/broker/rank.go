package broker

import (
	"uptimebroker/internal/optimize"
)

// ranker computes an assignment's position in the paper's
// presentation order — ascending number of clustered components,
// lexicographic within a level — combinatorially, in O(n) per
// assignment, from two DP tables over the problem shape. It replaces
// the post-pricing O(k^n log k^n) sort of the materialized candidate
// slice: the streaming pricing pass writes each option card straight
// into its presentation slot (and parallel shards write disjoint
// slots, since positions are unique), so no candidate list, order
// permutation or sort pass exists anymore.
type ranker struct {
	// ways[i][r] is the number of assignments of components i..n-1
	// with exactly r clustered (non-baseline) components.
	ways [][]int

	// levelOffset[l] is the number of assignments on levels < l: the
	// presentation position where level l starts.
	levelOffset []int
}

func newRanker(p *optimize.Problem) *ranker {
	n := len(p.Components)
	ways := make([][]int, n+1)
	for i := range ways {
		ways[i] = make([]int, n+1)
	}
	ways[n][0] = 1
	for i := n - 1; i >= 0; i-- {
		k := len(p.Components[i].Variants)
		for r := 0; r <= n-i; r++ {
			w := ways[i+1][r]
			if r > 0 {
				w += (k - 1) * ways[i+1][r-1]
			}
			ways[i][r] = w
		}
	}
	levelOffset := make([]int, n+2)
	for l := 0; l <= n; l++ {
		levelOffset[l+1] = levelOffset[l] + ways[0][l]
	}
	return &ranker{ways: ways, levelOffset: levelOffset}
}

// position returns the 0-based presentation index of a: the start of
// its level plus the number of same-level assignments that order
// lexicographically before it (counted digit by digit — at each
// clustered digit, the completions reachable through the smaller
// choices).
func (r *ranker) position(a optimize.Assignment) int {
	n := len(a)
	level := haCount(a)
	pos := r.levelOffset[level]
	remaining := level
	for i, v := range a {
		if v == 0 {
			continue
		}
		// Assignments that keep digit i at the baseline must place all
		// `remaining` clustered choices in the suffix; assignments that
		// cluster digit i with a smaller variant place remaining-1.
		if remaining <= n-(i+1) {
			pos += r.ways[i+1][remaining]
		}
		pos += (v - 1) * r.ways[i+1][remaining-1]
		remaining--
	}
	return pos
}

package broker

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"uptimebroker/internal/catalog"
	"uptimebroker/internal/topology"
)

// wideRequest builds a request whose 2^n-candidate space takes long
// enough to enumerate that an in-flight cancellation lands mid-run.
func wideRequest(n int) Request {
	comps := make([]topology.Component, n)
	allowed := make(map[string][]string, n)
	for i := range comps {
		name := fmt.Sprintf("tier-%02d", i)
		comps[i] = topology.Component{
			Name:        name,
			Layer:       topology.LayerCompute,
			ActiveNodes: 1,
			Class:       topology.ClassVirtualMachine,
		}
		allowed[name] = []string{catalog.TechESXHA}
	}
	return Request{
		Base: topology.System{
			Name:       "wide",
			Provider:   catalog.ProviderSoftLayerSim,
			Components: comps,
		},
		SLA:          CaseStudy().SLA,
		AllowedTechs: allowed,
	}
}

func TestRecommendCancelMidRun(t *testing.T) {
	e := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Recommend(ctx, wideRequest(20))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Recommend = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Recommend did not abort after cancel")
	}
}

func TestRecommendBatchOrderAndParity(t *testing.T) {
	e := newTestEngine(t)
	reqs := []Request{
		CaseStudy(),
		FutureWork(catalog.ProviderSoftLayerSim),
		CaseStudy(),
	}
	items := e.RecommendBatch(context.Background(), reqs)
	if len(items) != len(reqs) {
		t.Fatalf("items = %d, want %d", len(items), len(reqs))
	}
	for i, item := range items {
		if item.Index != i {
			t.Fatalf("item %d has Index %d", i, item.Index)
		}
		if item.Err != nil {
			t.Fatalf("item %d failed: %v", i, item.Err)
		}
	}

	// Batch results must agree with the sequential path.
	solo, err := e.Recommend(context.Background(), CaseStudy())
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Rec.BestOption != solo.BestOption || items[0].Rec.Cards[0].TCO != solo.Cards[0].TCO {
		t.Fatalf("batch result diverges from sequential: %d vs %d", items[0].Rec.BestOption, solo.BestOption)
	}
	if items[0].Rec.BestOption != items[2].Rec.BestOption {
		t.Fatal("identical batch requests produced different answers")
	}
}

func TestRecommendBatchPartialFailure(t *testing.T) {
	e := newTestEngine(t)
	bad := CaseStudy()
	bad.Base.Provider = "ghost-cloud"
	reqs := []Request{CaseStudy(), bad, CaseStudy()}

	items := e.RecommendBatch(context.Background(), reqs)
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("good items failed: %v, %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("bad provider item should fail")
	}
	if items[1].Rec != nil {
		t.Fatal("failed item carries a recommendation")
	}
}

func TestRecommendBatchEmpty(t *testing.T) {
	e := newTestEngine(t)
	if items := e.RecommendBatch(context.Background(), nil); len(items) != 0 {
		t.Fatalf("empty batch returned %d items", len(items))
	}
}

func TestRecommendBatchCancelled(t *testing.T) {
	e := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := e.RecommendBatch(ctx, []Request{CaseStudy(), CaseStudy(), CaseStudy()})
	for i, item := range items {
		if item.Err == nil {
			t.Fatalf("item %d succeeded under a cancelled context", i)
		}
	}
}

func TestRecommendBatchManyConcurrent(t *testing.T) {
	e := newTestEngine(t)
	const n = 32
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = CaseStudy()
	}
	items := e.RecommendBatch(context.Background(), reqs)
	for i, item := range items {
		if item.Err != nil {
			t.Fatalf("item %d: %v", i, item.Err)
		}
		if item.Rec.BestOption != items[0].Rec.BestOption {
			t.Fatalf("item %d diverges", i)
		}
	}
}

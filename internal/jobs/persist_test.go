package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uptimebroker/internal/jobstore"
)

// echoResolver rebuilds recovered jobs as functions returning their
// payload, counting invocations.
func echoResolver(ran *atomic.Int64) Resolver {
	return func(kind string, payload []byte) (Fn, error) {
		return func(ctx context.Context) (any, error) {
			if ran != nil {
				ran.Add(1)
			}
			return json.RawMessage(payload), nil
		}, nil
	}
}

// TestCrashRecovery is the core durability contract: a WAL holding a
// finished job, a mid-run job and a queued job — exactly what a crash
// leaves behind — must recover as done-with-result, failed with
// ErrRestartLost, and re-queued-to-completion respectively, with the
// ID sequence resuming past its high-water mark.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	backend, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1_700_000_000, 0).UTC()
	crashState := []jobstore.Event{
		// job 1 finished with a result before the crash.
		{Type: jobstore.EventSubmitted, Time: t0, ID: "job-00000001", Seq: 1, Kind: "recommend", Payload: json.RawMessage(`{"req":1}`)},
		{Type: jobstore.EventStarted, Time: t0, ID: "job-00000001"},
		{Type: jobstore.EventFinished, Time: t0, ID: "job-00000001", State: "done", Result: json.RawMessage(`{"best":7}`)},
		// job 2 was mid-run: started, progress, never finished.
		{Type: jobstore.EventSubmitted, Time: t0, ID: "job-00000002", Seq: 2, Kind: "recommend", Payload: json.RawMessage(`{"req":2}`)},
		{Type: jobstore.EventStarted, Time: t0, ID: "job-00000002"},
		{Type: jobstore.EventProgress, Time: t0, ID: "job-00000002", Evaluated: 40, SpaceSize: 100},
		// job 3 was still queued.
		{Type: jobstore.EventSubmitted, Time: t0, ID: "job-00000003", Seq: 3, Kind: "recommend", Payload: json.RawMessage(`{"req":3}`)},
	}
	for _, ev := range crashState {
		if err := backend.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	s, err := Open(reopened, echoResolver(&ran))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Finished job: result intact, fetched as raw JSON.
	done, err := s.Get("job-00000001")
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("job 1 state = %s, want done", done.State)
	}
	if raw, ok := done.Result.(json.RawMessage); !ok || string(raw) != `{"best":7}` {
		t.Fatalf("job 1 result = %#v, want raw {\"best\":7}", done.Result)
	}

	// Mid-run job: failed with restart_lost.
	lost, err := s.Get("job-00000002")
	if err != nil {
		t.Fatal(err)
	}
	if lost.State != StateFailed || !errors.Is(lost.Err, ErrRestartLost) {
		t.Fatalf("job 2 = %s / %v, want failed / ErrRestartLost", lost.State, lost.Err)
	}
	if lost.Evaluated != 40 || lost.SpaceSize != 100 {
		t.Fatalf("job 2 progress = %d/%d, want 40/100 preserved", lost.Evaluated, lost.SpaceSize)
	}

	// Queued job: re-queued through the resolver and runs to done.
	requeued := waitState(t, s, "job-00000003", StateDone)
	if raw, ok := requeued.Result.(json.RawMessage); !ok || string(raw) != `{"req":3}` {
		t.Fatalf("job 3 result = %#v, want its payload echoed", requeued.Result)
	}
	if ran.Load() != 1 {
		t.Fatalf("resolver-built fn ran %d times, want 1", ran.Load())
	}

	// IDs keep increasing past the recovered sequence.
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "job-00000004" {
		t.Fatalf("post-recovery ID = %s, want job-00000004", snap.ID)
	}
	if m := s.Metrics(); m.Recovered != 3 {
		t.Fatalf("Recovered = %d, want 3", m.Recovered)
	}
}

// TestRestartLostSurvivesSecondRestart: the recovery verdict is
// itself journaled, so restarting twice keeps the job failed rather
// than resurrecting it as running.
func TestRestartLostSurvivesSecondRestart(t *testing.T) {
	dir := t.TempDir()
	backend, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	events := []jobstore.Event{
		{Type: jobstore.EventSubmitted, Time: time.Now(), ID: "job-00000001", Seq: 1, Kind: "recommend"},
		{Type: jobstore.EventStarted, Time: time.Now(), ID: "job-00000001"},
	}
	for _, ev := range events {
		if err := backend.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := backend.Close(); err != nil {
		t.Fatal(err)
	}

	for restart := 0; restart < 2; restart++ {
		b, err := jobstore.OpenFile(dir)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(b, echoResolver(nil))
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("job-00000001")
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateFailed || !errors.Is(got.Err, ErrRestartLost) {
			t.Fatalf("restart %d: job = %s / %v, want failed / ErrRestartLost", restart, got.State, got.Err)
		}
		s.Close()
	}
}

// TestGracefulCloseRequeuesQueued: a deploy (Close, not crash) must
// not discard queued work — the journal keeps it queued and the
// successor store runs it.
func TestGracefulCloseRequeuesQueued(t *testing.T) {
	dir := t.TempDir()
	backend, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(backend, nil, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	running, err := s.Submit("recommend", []byte(`{"req":"r"}`), func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit("recommend", []byte(`{"req":"q"}`), func(ctx context.Context) (any, error) {
		return "ran in first incarnation", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Close() // deploy: running job cancelled, queued job parked

	b2, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	s2, err := Open(b2, echoResolver(&ran))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// The interrupted running job stays cancelled (it was shut down
	// deliberately, not lost).
	got, err := s2.Get(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("running-at-close job recovered as %s, want cancelled", got.State)
	}

	// The queued job re-runs through the resolver.
	redone := waitState(t, s2, queued.ID, StateDone)
	if raw, ok := redone.Result.(json.RawMessage); !ok || string(raw) != `{"req":"q"}` {
		t.Fatalf("requeued result = %#v", redone.Result)
	}
}

// TestSweptJobsStayGone: TTL sweeps are journaled, so a restart does
// not resurrect expired jobs.
func TestSweptJobsStayGone(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return now }
	backend, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(backend, nil, WithWorkers(1), WithTTL(time.Minute), WithClock(clock))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, snap.ID, StateDone)
	now = now.Add(2 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	s.Close()

	b2, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(b2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("swept job resurrected: %v", err)
	}
	// The sequence still advances past the swept job's ID.
	again, err := s2.Submit("recommend", nil, func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if again.ID <= snap.ID {
		t.Fatalf("ID regressed: %s after swept %s", again.ID, snap.ID)
	}
}

func TestWatchStreamsTransitionsAndProgress(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()

	release := make(chan struct{})
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		id := IDFromContext(ctx)
		s.Progress(id, 50, 200)
		s.Progress(id, 200, 200)
		<-release
		return "finished", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, err := s.Watch(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	var states []string
	var lastProgress Snapshot
	deadline := time.After(5 * time.Second)
	released := false
	for {
		select {
		case got, ok := <-ch:
			if !ok {
				if len(states) == 0 || states[len(states)-1] != "done" {
					t.Fatalf("stream closed before done; saw %v", states)
				}
				if lastProgress.Evaluated != 200 || lastProgress.SpaceSize != 200 {
					t.Fatalf("final progress = %d/%d, want 200/200", lastProgress.Evaluated, lastProgress.SpaceSize)
				}
				return
			}
			states = append(states, string(got.State))
			if got.Evaluated > 0 {
				lastProgress = got
			}
			// Release the job once progress has been observed so the
			// terminal snapshot is a separate delivery.
			if got.Evaluated == 200 && !released {
				released = true
				close(release)
			}
		case <-deadline:
			t.Fatalf("watch timed out; saw %v", states)
		}
	}
}

func TestWatchTerminalJobDeliversAndCloses(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, snap.ID, StateDone)

	ch, stop, err := s.Watch(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	got, ok := <-ch
	if !ok || got.State != StateDone {
		t.Fatalf("terminal watch delivered %v/%v", got.State, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel must close after terminal delivery")
	}

	if _, _, err := s.Watch("job-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Watch unknown = %v, want ErrNotFound", err)
	}
}

func TestProgressMonotonic(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()

	checked := make(chan struct{})
	release := make(chan struct{})
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		id := IDFromContext(ctx)
		s.Progress(id, 150, 200)
		s.Progress(id, 40, 200) // a second enumeration phase restarting: ignored
		close(checked)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-checked
	got, err := s.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Evaluated != 150 || got.SpaceSize != 200 {
		t.Fatalf("progress = %d/%d, want monotonic 150/200", got.Evaluated, got.SpaceSize)
	}
	if f := got.Fraction(); f < 0.74 || f > 0.76 {
		t.Fatalf("Fraction = %v, want 0.75", f)
	}
	close(release)
	waitState(t, s, snap.ID, StateDone)
}

// TestOversizedResultEvictedFromJournal: a result past the persist
// cap stays fetchable in the incarnation that computed it, but a
// restart surfaces the job as failed with an explanation instead of
// hauling half a gigabyte through every snapshot.
func TestOversizedResultEvictedFromJournal(t *testing.T) {
	dir := t.TempDir()
	backend, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(backend, nil, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("x", maxPersistResultBytes+1)
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		return huge, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, snap.ID, StateDone)
	if got, ok := done.Result.(string); !ok || len(got) != len(huge) {
		t.Fatalf("in-process result truncated: %T len %d", done.Result, len(got))
	}
	s.Close()

	// The journal held the eviction note, not the payload.
	if info, err := os.Stat(filepath.Join(dir, "jobs.snapshot.json")); err != nil {
		t.Fatal(err)
	} else if info.Size() > int64(maxPersistResultBytes)/2 {
		t.Fatalf("snapshot is %d bytes; the oversized result leaked into it", info.Size())
	}

	b2, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(b2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || !errors.Is(got.Err, ErrRestartLost) {
		t.Fatalf("recovered oversized-result job = %s / %v, want failed / ErrRestartLost", got.State, got.Err)
	}
	if !strings.Contains(got.Err.Error(), "persistence cap") {
		t.Fatalf("recovered error %q does not explain the eviction", got.Err)
	}
}

// TestCompactionKeepsRecoverableState: after an explicit compaction
// the WAL is empty but the snapshot alone recovers everything.
func TestCompactionKeepsRecoverableState(t *testing.T) {
	dir := t.TempDir()
	backend, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(backend, nil, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		snap, err := s.Submit("recommend", []byte(fmt.Sprintf(`{"i":%d}`, i)), func(ctx context.Context) (any, error) {
			return map[string]int{"i": i}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
		waitState(t, s, snap.ID, StateDone)
	}
	s.Compact()
	s.Close()

	b2, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(b2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, id := range ids {
		got, err := s2.Get(id)
		if err != nil {
			t.Fatalf("job %s lost after compaction: %v", id, err)
		}
		if got.State != StateDone {
			t.Fatalf("job %s state = %s", id, got.State)
		}
		raw, ok := got.Result.(json.RawMessage)
		if !ok || !strings.Contains(string(raw), fmt.Sprintf(`"i":%d`, i)) {
			t.Fatalf("job %s result = %#v", id, got.Result)
		}
	}
}

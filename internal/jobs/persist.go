package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"uptimebroker/internal/jobstore"
)

// Resolver rebuilds a recovered queued job's Fn from its journaled
// kind and payload — the submit-time closure does not survive a
// restart, so the owner of the job kinds (the HTTP layer) supplies
// the mapping back to executable work.
type Resolver func(kind string, payload []byte) (Fn, error)

// Failure classes journaled with terminal events so a recovered
// job's error keeps its machine-readable meaning across restarts.
// classResultEvicted additionally marks a journaled *done* job whose
// result exceeded the persistence cap: still done (with its result)
// in the process that ran it, failed after a restart.
const (
	classCancelled     = "cancelled"
	classInternal      = "internal"
	classRestartLost   = "restart_lost"
	classRequest       = "request"
	classResultEvicted = "result_evicted"
)

// maxPersistResultBytes caps how large a serialized result the
// journal accepts. A single wide enumeration (2^19 option cards ≈
// half a gigabyte of JSON) would otherwise dominate the WAL and every
// snapshot, and stall recovery parsing it back. Results over the cap
// stay fetchable from the incarnation that computed them; after a
// restart the job reports a failure explaining the eviction.
const maxPersistResultBytes = 8 << 20

// classify maps a terminal error to its journaled class.
func classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrRestartLost):
		return classRestartLost
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return classCancelled
	case errors.Is(err, ErrPanic), errors.Is(err, ErrClosed):
		return classInternal
	default:
		return classRequest
	}
}

// recoveredError restores a journaled failure with both its original
// text and the sentinel its class maps to, so errors.Is keeps working
// on recovered snapshots.
type recoveredError struct {
	msg      string
	sentinel error
}

func (e *recoveredError) Error() string { return e.msg }
func (e *recoveredError) Unwrap() error { return e.sentinel }

// errFromRecord rebuilds a Snapshot.Err from a journaled record.
func errFromRecord(rec jobstore.Record) error {
	if rec.Error == "" && rec.State != jobstore.StateFailed && rec.State != jobstore.StateCancelled {
		return nil
	}
	msg := rec.Error
	if msg == "" {
		msg = "jobs: job " + rec.State
	}
	var sentinel error
	switch {
	case rec.State == jobstore.StateCancelled:
		sentinel = context.Canceled
	case rec.ErrClass == classRestartLost:
		sentinel = ErrRestartLost
	case rec.ErrClass == classInternal:
		sentinel = ErrPanic
	}
	if sentinel == nil {
		return errors.New(msg)
	}
	return &recoveredError{msg: msg, sentinel: sentinel}
}

// Open builds a Store over a persistence backend and recovers its
// prior contents before accepting new work:
//
//   - finished jobs come back with their results intact,
//   - queued jobs are re-queued (their Fn rebuilt by resolver; a nil
//     resolver or a resolver error turns them into restart_lost
//     failures instead of silently dropping them),
//   - jobs that were running when the previous process died are
//     marked failed with ErrRestartLost,
//   - the ID sequence resumes past its high-water mark, so job IDs
//     are strictly increasing across restarts.
//
// The store journals every subsequent transition through the backend
// and compacts the journal on the snapshot interval and at Close.
func Open(backend jobstore.Backend, resolver Resolver, opts ...Option) (*Store, error) {
	if backend == nil {
		return nil, errors.New("jobs: nil backend")
	}
	snap, err := backend.Load()
	if err != nil {
		return nil, fmt.Errorf("jobs: loading persisted jobs: %w", err)
	}

	s := newStore(opts...)
	s.backend = backend
	s.resolver = resolver
	s.seq = snap.Seq

	now := s.now()
	var requeue []string
	var reclassified []*job
	for _, rec := range snap.Jobs {
		j := &job{
			snap: Snapshot{
				ID:         rec.ID,
				Kind:       rec.Kind,
				State:      State(rec.State),
				CreatedAt:  rec.CreatedAt,
				StartedAt:  rec.StartedAt,
				FinishedAt: rec.FinishedAt,
				Evaluated:  rec.Evaluated,
				SpaceSize:  rec.SpaceSize,
				Strategy:   rec.Strategy,
			},
			payload: append([]byte(nil), rec.Payload...),
		}
		if len(rec.Result) > 0 {
			j.snap.Result = json.RawMessage(rec.Result)
		}
		j.snap.Err = errFromRecord(rec)
		s.metrics.Recovered++

		switch State(rec.State) {
		case StateQueued:
			var fn Fn
			ferr := error(nil)
			if resolver == nil {
				ferr = errors.New("no resolver for persisted jobs")
			} else {
				fn, ferr = resolver(rec.Kind, rec.Payload)
			}
			if ferr != nil {
				j.snap.State = StateFailed
				j.snap.FinishedAt = now
				j.snap.Err = fmt.Errorf("%w: cannot re-queue %q job: %v", ErrRestartLost, rec.Kind, ferr)
				s.metrics.Failed++
				reclassified = append(reclassified, j)
			} else {
				j.fn = fn
				s.metrics.QueueDepth++
				requeue = append(requeue, rec.ID)
			}
		case StateRunning:
			// Mid-run at the crash: the enumeration state is gone.
			j.snap.State = StateFailed
			j.snap.FinishedAt = now
			j.snap.Err = fmt.Errorf("%w (was running at shutdown)", ErrRestartLost)
			s.metrics.Failed++
			reclassified = append(reclassified, j)
		case StateDone:
			if rec.ErrClass == classResultEvicted {
				// Completed, but the result was too large to journal:
				// after a restart the payload is unrecoverable, so the
				// honest state is a failure telling the client why.
				j.snap.State = StateFailed
				j.snap.Err = &recoveredError{msg: rec.Error, sentinel: ErrRestartLost}
			}
		case StateFailed, StateCancelled:
			// Preserved as journaled.
		default:
			return nil, fmt.Errorf("jobs: persisted job %s has unknown state %q", rec.ID, rec.State)
		}
		s.jobs[rec.ID] = j
	}

	// Journal the recovery verdicts so a second restart does not
	// reclassify (a restart-lost job must stay restart-lost, not
	// appear running again).
	for _, j := range reclassified {
		s.appendFinishedLocked(j, nil)
	}

	s.start(requeue)
	return s, nil
}

// appendLocked journals one event, counting (but not propagating)
// backend failures: the in-memory store keeps serving. A backend that
// has latched its fail-stop state (jobstore.ErrDegraded) additionally
// latches the store, which refuses further submissions.
func (s *Store) appendLocked(ev jobstore.Event) {
	if s.backend == nil {
		return
	}
	if err := s.backend.Append(ev); err != nil {
		s.metrics.PersistErrors++
		if s.degraded == nil && errors.Is(err, jobstore.ErrDegraded) {
			s.degraded = err
		}
	}
}

// persistedResult returns the journal form of a done job's result:
// the serialized payload when it fits the cap, else nil with an
// eviction note. Serialization itself happened off-lock in runOne; a
// nil resultJSON on a done job with a result means it was
// unmarshalable, which also evicts.
func persistedResult(snap Snapshot, resultJSON []byte) (result []byte, evictNote string) {
	if snap.State != StateDone || snap.Result == nil {
		return nil, ""
	}
	switch {
	case resultJSON == nil:
		return nil, "jobs: result could not be serialized for persistence; resubmit to recompute"
	case len(resultJSON) > maxPersistResultBytes:
		return nil, fmt.Sprintf("jobs: result of %d bytes exceeds the %d-byte persistence cap; resubmit to recompute",
			len(resultJSON), maxPersistResultBytes)
	default:
		return resultJSON, ""
	}
}

// appendFinishedLocked journals a job's terminal transition;
// resultJSON is the pre-serialized result for done jobs (nil
// otherwise).
func (s *Store) appendFinishedLocked(j *job, resultJSON []byte) {
	if s.backend == nil {
		return
	}
	ev := jobstore.Event{
		Type:  jobstore.EventFinished,
		Time:  j.snap.FinishedAt,
		ID:    j.snap.ID,
		State: string(j.snap.State),
	}
	result, evictNote := persistedResult(j.snap, resultJSON)
	ev.Result = result
	switch {
	case evictNote != "":
		ev.Error = evictNote
		ev.ErrClass = classResultEvicted
	case j.snap.Err != nil:
		ev.Error = j.snap.Err.Error()
		ev.ErrClass = classify(j.snap.Err)
	}
	s.appendLocked(ev)
}

// Compact folds the journal into a snapshot; the compactor calls it
// on the snapshot interval. The backend compacts its own folded
// state under its own lock, so no store mutex is held across the
// disk work — submits and polls proceed while a multi-megabyte
// snapshot writes.
func (s *Store) Compact() {
	if s.backend == nil {
		return
	}
	if err := s.backend.Compact(); err != nil {
		s.mu.Lock()
		s.metrics.PersistErrors++
		if s.degraded == nil && errors.Is(err, jobstore.ErrDegraded) {
			s.degraded = err
		}
		s.mu.Unlock()
	}
}

// compactor compacts the journal periodically until Close.
func (s *Store) compactor() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.snapInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.Compact()
		case <-s.baseCtx.Done():
			return
		}
	}
}

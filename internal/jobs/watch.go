package jobs

import "uptimebroker/internal/jobstore"

// watcher is one Watch subscription: a latest-wins channel of
// snapshot updates.
type watcher struct {
	ch     chan Snapshot
	closed bool
}

// deliverLocked replaces any undelivered snapshot with snap. The
// channel has capacity one and every send happens under the store
// mutex, so after draining the stale element the send cannot block.
func (w *watcher) deliverLocked(snap Snapshot) {
	if w.closed {
		return
	}
	select {
	case <-w.ch:
	default:
	}
	w.ch <- snap
	if snap.State.Terminal() {
		close(w.ch)
		w.closed = true
	}
}

// notifyLocked pushes the job's current snapshot to every watcher,
// closing them after a terminal delivery.
func (j *job) notifyLocked() {
	for _, w := range j.watchers {
		w.deliverLocked(j.snap)
	}
	if j.snap.State.Terminal() {
		j.watchers = nil
	}
}

// Watch subscribes to a job's snapshot updates. The channel first
// carries the job's current snapshot, then every state transition and
// progress update, coalescing to the latest when the consumer lags;
// it is closed after a terminal snapshot is delivered. The returned
// stop function releases the subscription early (safe to call after
// the channel closed). Unknown IDs return ErrNotFound.
func (s *Store) Watch(id string) (<-chan Snapshot, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	w := &watcher{ch: make(chan Snapshot, 1)}
	w.deliverLocked(j.snap)
	if w.closed {
		return w.ch, func() {}, nil
	}
	j.watchers = append(j.watchers, w)
	stop := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, x := range j.watchers {
			if x == w {
				j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
				break
			}
		}
		if !w.closed {
			close(w.ch)
			w.closed = true
		}
	}
	return w.ch, stop, nil
}

// progressJournalShards bounds how many progress events one job
// writes to the journal: at most this many, spread evenly over the
// search space (plus the final one).
const progressJournalShards = 16

// SetStrategy records the solver strategy a running job's search
// resolved to and fans the update out to watchers. Empty and
// duplicate reports are dropped; the journaled form is a progress
// event carrying the strategy alongside the current position.
func (s *Store) SetStrategy(id, strategy string) {
	if strategy == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.snap.State != StateRunning || j.snap.Strategy == strategy {
		return
	}
	j.snap.Strategy = strategy
	j.notifyLocked()
	s.appendLocked(jobstore.Event{
		Type:      jobstore.EventProgress,
		Time:      s.now(),
		ID:        id,
		Evaluated: j.snap.Evaluated,
		SpaceSize: j.snap.SpaceSize,
		Strategy:  strategy,
	})
}

// Progress records enumeration progress for a running job and fans it
// out to watchers. Updates are monotonic — a phase that re-enumerates
// a prefix of the space (the effort-stats solver after the exhaustive
// card pricing) cannot move the bar backwards. Journal writes are
// throttled to progressJournalShards per job so a hot enumeration
// loop does not bloat the WAL.
func (s *Store) Progress(id string, evaluated, spaceSize int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.snap.State != StateRunning {
		return
	}
	if spaceSize > j.snap.SpaceSize {
		j.snap.SpaceSize = spaceSize
	}
	if evaluated <= j.snap.Evaluated {
		return
	}
	j.snap.Evaluated = evaluated
	j.notifyLocked()

	stride := j.snap.SpaceSize / progressJournalShards
	if stride < 1 {
		stride = 1
	}
	if evaluated >= j.snap.SpaceSize || evaluated-j.progressLogged >= stride {
		s.appendLocked(jobstore.Event{
			Type:      jobstore.EventProgress,
			Time:      s.now(),
			ID:        id,
			Evaluated: evaluated,
			SpaceSize: j.snap.SpaceSize,
		})
		j.progressLogged = evaluated
	}
}

package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches a wanted state or times out.
func waitState(t *testing.T, s *Store, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() && !want.Terminal() {
			t.Fatalf("job %s reached terminal %s while waiting for %s", id, snap.State, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestSubmitPollDone(t *testing.T) {
	s := NewStore(WithWorkers(2))
	defer s.Close()

	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap.State != StateQueued || snap.ID == "" || snap.Kind != "recommend" {
		t.Fatalf("submit snapshot = %+v", snap)
	}

	done := waitState(t, s, snap.ID, StateDone)
	if done.Result != 42 {
		t.Fatalf("Result = %v, want 42", done.Result)
	}
	if done.Err != nil {
		t.Fatalf("Err = %v", done.Err)
	}
	if done.FinishedAt.Before(done.StartedAt) || done.StartedAt.Before(done.CreatedAt) {
		t.Fatalf("timestamps out of order: %+v", done)
	}

	m := s.Metrics()
	if m.Submitted != 1 || m.Done != 1 || m.QueueDepth != 0 || m.Running != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFailedJob(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()

	boom := errors.New("boom")
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, s, snap.ID, StateFailed)
	if !errors.Is(failed.Err, boom) {
		t.Fatalf("Err = %v, want boom", failed.Err)
	}
	if m := s.Metrics(); m.Failed != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestPanickingJobFails(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()

	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, s, snap.ID, StateFailed)
	if failed.Err == nil {
		t.Fatal("panicking job should surface an error")
	}

	// The worker survived the panic and still runs jobs.
	snap2, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, snap2.ID, StateDone)
}

func TestCancelRunning(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()

	started := make(chan struct{})
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(snap.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitState(t, s, snap.ID, StateCancelled)
	if !errors.Is(got.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", got.Err)
	}

	// A second cancel on the now-terminal job reports ErrFinished.
	if _, err := s.Cancel(snap.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("second Cancel = %v, want ErrFinished", err)
	}
}

func TestCancelQueued(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()

	// Occupy the single worker so the next submission stays queued.
	block := make(chan struct{})
	started := make(chan struct{})
	first, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	queued, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		t.Error("cancelled queued job must not run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled immediately", got.State)
	}

	close(block)
	waitState(t, s, first.ID, StateDone)
	// Give the worker a moment to (incorrectly) pick up the cancelled
	// job if the skip logic were broken.
	time.Sleep(10 * time.Millisecond)
}

func TestCancelUnknown(t *testing.T) {
	s := NewStore()
	defer s.Close()
	if _, err := s.Cancel("job-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel unknown = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("job-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown = %v, want ErrNotFound", err)
	}
}

func TestQueueFull(t *testing.T) {
	s := NewStore(WithWorkers(1), WithQueueCapacity(1))
	defer s.Close()

	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	if _, err := s.Submit("a", nil, func(ctx context.Context) (any, error) {
		close(started)
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue is empty again

	if _, err := s.Submit("b", nil, func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("submit into empty queue: %v", err)
	}
	// Queue (capacity 1) now holds job b, worker holds job a: full.
	_, err := s.Submit("c", nil, func(ctx context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit into full queue = %v, want ErrQueueFull", err)
	}
}

func TestTTLSweep(t *testing.T) {
	var (
		mu  sync.Mutex
		now = time.Unix(1_700_000_000, 0)
	)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
	}

	s := NewStore(WithWorkers(1), WithTTL(time.Minute), WithClock(clock))
	defer s.Close()

	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) { return "r", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, snap.ID, StateDone)

	// Within TTL: survives the sweep.
	advance(30 * time.Second)
	if n := s.Sweep(); n != 0 {
		t.Fatalf("Sweep before TTL removed %d", n)
	}
	if _, err := s.Get(snap.ID); err != nil {
		t.Fatalf("job swept too early: %v", err)
	}

	// Past TTL: swept.
	advance(2 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep after TTL removed %d, want 1", n)
	}
	if _, err := s.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after sweep = %v, want ErrNotFound", err)
	}
	if m := s.Metrics(); m.Swept != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	s := NewStore()
	s.Close()
	if _, err := s.Submit("x", nil, func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// Idempotent close.
	s.Close()
}

func TestCloseCancelsRunning(t *testing.T) {
	s := NewStore(WithWorkers(1))
	started := make(chan struct{})
	snap, err := s.Submit("recommend", nil, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Close()
	got, err := s.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state after Close = %s, want cancelled", got.State)
	}
}

func TestListOrdering(t *testing.T) {
	var (
		mu  sync.Mutex
		now = time.Unix(1_700_000_000, 0)
	)
	s := NewStore(WithWorkers(1), WithClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(time.Second)
		return now
	}))
	defer s.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		snap, err := s.Submit(fmt.Sprintf("k%d", i), nil, func(ctx context.Context) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
		waitState(t, s, snap.ID, StateDone)
	}
	list := s.List()
	if len(list) != 3 {
		t.Fatalf("List len = %d", len(list))
	}
	if list[0].ID != ids[2] || list[2].ID != ids[0] {
		t.Fatalf("List not newest-first: %v", []string{list[0].ID, list[1].ID, list[2].ID})
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	s := NewStore(WithWorkers(4), WithQueueCapacity(256))
	defer s.Close()

	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, err := s.Submit("k", nil, func(ctx context.Context) (any, error) { return 1, nil })
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				got, err := s.Get(snap.ID)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if got.State == StateDone {
					return
				}
				time.Sleep(time.Millisecond)
			}
			t.Errorf("job %s never finished", snap.ID)
		}()
	}
	wg.Wait()
	if m := s.Metrics(); m.Done != n {
		t.Fatalf("Done = %d, want %d", m.Done, n)
	}
}

package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"uptimebroker/internal/faultfs"
	"uptimebroker/internal/jobstore"
)

// TestStoreLatchesDegradedOnBackendFailure: a storage failure during
// a submission's journal append must refuse that submission with
// jobstore.ErrDegraded, latch the store, refuse later submissions up
// front, and keep reads serving.
func TestStoreLatchesDegradedOnBackendFailure(t *testing.T) {
	mem := faultfs.NewMem()
	boom := errors.New("fsync: device error")
	inj := faultfs.NewInjector(mem, faultfs.FailSync(1, boom))
	backend, err := jobstore.OpenFile("data", jobstore.WithFS(inj), jobstore.WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(backend, nil, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if s.Degraded() != nil {
		t.Fatal("store born degraded")
	}
	fn := func(ctx context.Context) (any, error) { return "ok", nil }
	_, err = s.Submit("recommend", nil, fn)
	if !errors.Is(err, jobstore.ErrDegraded) {
		t.Fatalf("submit over failing storage = %v, want ErrDegraded", err)
	}
	if s.Degraded() == nil {
		t.Fatal("store not latched after failed journal append")
	}
	if !s.Metrics().Degraded {
		t.Fatal("Metrics().Degraded = false after latch")
	}
	// The withdrawn job is not visible anywhere.
	if jl := s.List(); len(jl) != 0 {
		t.Fatalf("withdrawn submission still listed: %+v", jl)
	}
	if got := s.Metrics().Submitted; got != 0 {
		t.Fatalf("Submitted = %d after withdrawn submission", got)
	}
	// Subsequent submissions are refused up front.
	if _, err := s.Submit("recommend", nil, fn); !errors.Is(err, jobstore.ErrDegraded) {
		t.Fatalf("submit after latch = %v, want ErrDegraded", err)
	}
	// Reads still serve.
	if _, err := s.Get("job-00000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get on degraded store = %v, want plain ErrNotFound", err)
	}
}

// TestEstimatedQueueWait: the estimate is mean run time × depth ÷
// workers, and zero without history or queue.
func TestEstimatedQueueWait(t *testing.T) {
	s := NewStore(WithWorkers(1))
	defer s.Close()

	if d := s.EstimatedQueueWait(); d != 0 {
		t.Fatalf("empty store estimate = %v, want 0", d)
	}

	// Manufacture history and depth directly: one completed run of
	// 100ms and three queued jobs on one worker → 300ms estimate.
	s.mu.Lock()
	s.runsCompleted = 1
	s.metrics.RunLatency = 100 * time.Millisecond
	s.metrics.QueueDepth = 3
	s.mu.Unlock()

	if d := s.EstimatedQueueWait(); d != 300*time.Millisecond {
		t.Fatalf("estimate = %v, want 300ms", d)
	}

	s.mu.Lock()
	s.metrics.QueueDepth = 0
	s.mu.Unlock()
	if d := s.EstimatedQueueWait(); d != 0 {
		t.Fatalf("estimate with empty queue = %v, want 0", d)
	}
}

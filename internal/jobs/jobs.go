// Package jobs is the asynchronous job subsystem: a bounded worker
// pool draining a submission queue, with poll/cancel semantics and
// TTL-based garbage collection of finished jobs. It decouples the
// brokerage's exponential enumeration work from HTTP request
// lifetimes — a client submits work, receives a job ID immediately,
// and polls (or long-polls via the typed client's WaitJob) for the
// result.
//
// States move strictly forward:
//
//	queued → running → done | failed
//	queued | running → cancelled
//
// Finished jobs (done, failed or cancelled) are retained for the
// store's TTL so clients can fetch results, then swept.
//
// A store built with NewStore is purely in-memory. Open builds one
// over a jobstore.Backend instead: every submit, state transition,
// progress update and result is journaled, and the backend's prior
// contents are recovered on start — jobs that were queued are
// re-queued (their Fn rebuilt by the Resolver from the persisted
// payload), jobs that were mid-run when the process died are marked
// failed with ErrRestartLost, finished jobs keep their results, and
// the ID sequence resumes past its high-water mark so IDs never
// collide across restarts.
//
// Running jobs report enumeration progress through Progress;
// Watch streams snapshot updates (state transitions and progress)
// to subscribers, which is what the HTTP layer's Server-Sent Events
// route consumes.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"uptimebroker/internal/jobstore"
	"uptimebroker/internal/obs"
)

// State is a job's position in its lifecycle.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Fn is the unit of work a job runs. It must honor ctx cancellation:
// the store cancels the context when the job is cancelled or the
// store shuts down.
type Fn func(ctx context.Context) (any, error)

// Snapshot is a point-in-time copy of a job's externally visible
// state.
type Snapshot struct {
	// ID identifies the job within its store.
	ID string

	// Kind is the caller-supplied job type label.
	Kind string

	// State is the lifecycle state at snapshot time.
	State State

	// CreatedAt, StartedAt and FinishedAt stamp the transitions;
	// StartedAt and FinishedAt are zero until reached.
	CreatedAt  time.Time
	StartedAt  time.Time
	FinishedAt time.Time

	// Result is the Fn's return value once State is done. For a job
	// recovered from a persistence backend it is the json.RawMessage
	// the result was journaled as.
	Result any

	// Err is the failure once State is failed (or context.Canceled
	// when cancelled mid-run). Jobs lost to a broker restart satisfy
	// errors.Is(Err, ErrRestartLost).
	Err error

	// Evaluated and SpaceSize report the enumeration progress of a
	// running job (zero until the job's Fn reports any); for the
	// brokerage they are the search's evaluated count and k^n.
	Evaluated int64
	SpaceSize int64

	// Strategy is the solver strategy the job's search resolved to
	// (empty until the job's Fn reports one).
	Strategy string
}

// Fraction returns the completed share of the search space in
// [0, 1], or 0 when no progress has been reported.
func (s Snapshot) Fraction() float64 {
	if s.SpaceSize <= 0 {
		return 0
	}
	f := float64(s.Evaluated) / float64(s.SpaceSize)
	if f > 1 {
		f = 1
	}
	return f
}

// Metrics are the store's operational counters.
type Metrics struct {
	// Submitted counts every accepted job.
	Submitted int64 `json:"submitted"`

	// QueueDepth is the number of queued jobs right now.
	QueueDepth int64 `json:"queue_depth"`

	// Running is the number of jobs executing right now.
	Running int64 `json:"running"`

	// Done, Failed and Cancelled count terminal transitions.
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`

	// Swept counts jobs removed by TTL garbage collection.
	Swept int64 `json:"swept"`

	// Recovered counts jobs restored from the persistence backend at
	// open: requeued, restart-lost and finished alike.
	Recovered int64 `json:"recovered"`

	// PersistErrors counts journal appends the backend rejected. The
	// store keeps serving (availability over durability) but a
	// non-zero value means recovery after a crash may lose the
	// affected transitions.
	PersistErrors int64 `json:"persist_errors"`

	// Degraded reports that the persistence backend has latched into
	// its fail-stop read-only state (jobstore.ErrDegraded): new
	// submissions are refused, while polls, results and synchronous
	// serving continue. It never clears without a restart.
	Degraded bool `json:"store_degraded"`

	// QueueLatency is the cumulative queued→running wait across all
	// started jobs; RunLatency the cumulative running→finished time
	// across all finished jobs. Divide by the respective counters for
	// means.
	QueueLatency time.Duration `json:"queue_latency_ns"`
	RunLatency   time.Duration `json:"run_latency_ns"`
}

// Store errors.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")

	// ErrFinished reports a cancel attempt on an already-terminal job.
	ErrFinished = errors.New("jobs: job already finished")

	// ErrQueueFull reports a submission the bounded queue cannot take.
	ErrQueueFull = errors.New("jobs: queue full")

	// ErrClosed reports a submission after Close.
	ErrClosed = errors.New("jobs: store closed")

	// ErrPanic wraps a panic recovered from a job Fn, letting callers
	// classify it as a server fault rather than a request error.
	ErrPanic = errors.New("jobs: job panicked")

	// ErrRestartLost marks a job that was mid-run when the broker
	// died: its partial work is gone and the client must resubmit.
	ErrRestartLost = errors.New("jobs: job interrupted by broker restart")
)

// job is the store's internal record.
type job struct {
	snap Snapshot
	fn   Fn
	// payload is the serialized submission, journaled so a successor
	// store can rebuild fn through the Resolver.
	payload []byte
	// progressLogged is the last Evaluated value journaled, bounding
	// WAL growth from progress events.
	progressLogged int64
	// watchers receive snapshot updates until the job is terminal.
	watchers []*watcher
	// cancel interrupts the running Fn; non-nil only while running.
	cancel context.CancelFunc
	// cancelled marks a queued job cancelled before a worker saw it.
	cancelled bool
}

// Store runs jobs on a bounded worker pool and retains finished jobs
// for a TTL.
type Store struct {
	mu     sync.Mutex
	jobs   map[string]*job
	seq    uint64
	closed bool

	workers  int
	queueCap int
	queue    chan string
	baseCtx  context.Context
	stop     context.CancelFunc
	wg       sync.WaitGroup

	ttl        time.Duration
	gcInterval time.Duration
	now        func() time.Time

	// backend journals transitions; nil for a purely in-memory store.
	backend      jobstore.Backend
	resolver     Resolver
	snapInterval time.Duration

	// degraded latches the backend's fail-stop error the first time an
	// append or compaction reports jobstore.ErrDegraded. Under mu.
	degraded error

	// runsCompleted counts jobs that finished a run (the denominator
	// for the mean run time RunLatency accumulates). Under mu.
	runsCompleted int64

	metrics Metrics

	// queueWait/runSeconds are per-stage latency histograms; nil unless
	// a metrics registry was attached with WithMetricsRegistry.
	queueWait  *obs.Histogram
	runSeconds *obs.Histogram
}

// Option configures a Store.
type Option func(*Store)

// WithWorkers sets the worker pool size (default runtime.GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithQueueCapacity bounds the submission queue (default 1024).
// Submissions beyond capacity fail with ErrQueueFull — backpressure
// instead of unbounded memory growth.
func WithQueueCapacity(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.queueCap = n
		}
	}
}

// WithTTL sets how long finished jobs are retained (default 15m).
func WithTTL(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.ttl = d
		}
	}
}

// WithGCInterval sets the janitor's sweep period (default 1m).
func WithGCInterval(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.gcInterval = d
		}
	}
}

// WithClock injects a time source, letting tests drive TTL expiry
// deterministically.
func WithClock(now func() time.Time) Option {
	return func(s *Store) {
		if now != nil {
			s.now = now
		}
	}
}

// WithSnapshotInterval sets how often a persistent store compacts its
// journal into a snapshot (default 1m). Only meaningful with Open.
func WithSnapshotInterval(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.snapInterval = d
		}
	}
}

// WithMetricsRegistry publishes the store's counters and per-stage
// latency histograms on reg: jobs_*_total counters and queue-depth /
// running gauges pulled from Metrics at collection time, plus
// jobs_queue_wait_seconds and jobs_run_seconds histograms observed as
// jobs move through the pool.
func WithMetricsRegistry(reg *obs.Registry) Option {
	return func(s *Store) {
		if reg == nil {
			return
		}
		s.registerMetrics(reg)
	}
}

// registerMetrics wires the store onto reg. Callback instruments pull
// from Metrics() at collection, so the journal counters need no second
// bookkeeping; only the latency histograms are observed inline.
func (s *Store) registerMetrics(reg *obs.Registry) {
	counters := []struct {
		name, help string
		get        func(Metrics) int64
	}{
		{"jobs_submitted_total", "Jobs accepted into the queue.", func(m Metrics) int64 { return m.Submitted }},
		{"jobs_done_total", "Jobs finished successfully.", func(m Metrics) int64 { return m.Done }},
		{"jobs_failed_total", "Jobs finished in error.", func(m Metrics) int64 { return m.Failed }},
		{"jobs_cancelled_total", "Jobs cancelled before completion.", func(m Metrics) int64 { return m.Cancelled }},
		{"jobs_swept_total", "Finished jobs removed by TTL sweep.", func(m Metrics) int64 { return m.Swept }},
		{"jobs_recovered_total", "Jobs recovered from the journal on start.", func(m Metrics) int64 { return m.Recovered }},
		{"jobs_persist_errors_total", "Journal writes that failed.", func(m Metrics) int64 { return m.PersistErrors }},
	}
	for _, c := range counters {
		get := c.get
		reg.CounterFunc(c.name, c.help, func() float64 { return float64(get(s.Metrics())) })
	}
	reg.GaugeFunc("jobs_queue_depth", "Jobs waiting for a worker.",
		func() float64 { return float64(s.Metrics().QueueDepth) })
	reg.GaugeFunc("jobs_running", "Jobs currently executing.",
		func() float64 { return float64(s.Metrics().Running) })
	reg.GaugeFunc("store_degraded", "1 when the persistent job store has latched read-only after a storage failure.",
		func() float64 {
			if s.Metrics().Degraded {
				return 1
			}
			return 0
		})
	s.queueWait = reg.Histogram("jobs_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", obs.DefBuckets)
	s.runSeconds = reg.Histogram("jobs_run_seconds",
		"Wall time jobs spent executing.", obs.ExponentialBuckets(0.001, 4, 12))
}

// newStore applies the options without starting any goroutines.
func newStore(opts ...Option) *Store {
	s := &Store{
		jobs:         make(map[string]*job),
		workers:      runtime.GOMAXPROCS(0),
		queueCap:     1024,
		ttl:          15 * time.Minute,
		gcInterval:   time.Minute,
		snapInterval: time.Minute,
		now:          time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// start creates the queue (pre-loading any recovered job IDs), then
// launches the worker pool, the TTL janitor and — when a backend is
// attached — the compaction loop.
func (s *Store) start(requeue []string) {
	if len(requeue) > s.queueCap {
		s.queueCap = len(requeue)
	}
	s.queue = make(chan string, s.queueCap)
	for _, id := range requeue {
		s.queue <- id
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())

	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.janitor()
	if s.backend != nil {
		s.wg.Add(1)
		go s.compactor()
	}
}

// NewStore starts a purely in-memory job store: its worker pool and
// TTL janitor run until Close.
func NewStore(opts ...Option) *Store {
	s := newStore(opts...)
	s.start(nil)
	return s
}

// Close stops accepting submissions, cancels running jobs, and waits
// for the workers and janitor to exit. Queued jobs that never ran are
// marked cancelled in memory — but a persistent store journals them
// as still queued, so a successor store re-queues them instead of
// discarding the work.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.stop()
	close(s.queue)
	s.wg.Wait()

	// Anything still queued never got a worker; mark it cancelled so
	// pollers see a terminal state rather than a job stuck in queued.
	// Deliberately not journaled — the journal keeps them "queued"
	// for the successor store to re-run.
	s.mu.Lock()
	now := s.now()
	for _, j := range s.jobs {
		if j.snap.State == StateQueued {
			j.snap.State = StateCancelled
			j.snap.FinishedAt = now
			j.snap.Err = ErrClosed
			s.metrics.QueueDepth--
			s.metrics.Cancelled++
			j.notifyLocked()
		}
	}
	s.mu.Unlock()

	// Final compaction (the backend folds its own journal state, in
	// which those parked jobs still read "queued"), then release it.
	if s.backend != nil {
		s.Compact()
		_ = s.backend.Close()
	}
}

// Submit enqueues fn as a new job of the given kind and returns its
// queued snapshot. payload is the serialized request the job was
// built from; a persistent store journals it so the job can be
// re-queued (through the Resolver) after a restart — pass nil for
// jobs that need not survive one. Submit fails fast with ErrQueueFull
// when the queue is at capacity and ErrClosed after Close.
func (s *Store) Submit(kind string, payload []byte, fn Fn) (Snapshot, error) {
	if fn == nil {
		return Snapshot{}, errors.New("jobs: nil fn")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	if s.degraded != nil {
		// Fail-stop: a latched backend cannot journal the submission,
		// so accepting it would hand out work that silently vanishes on
		// restart. Reads and already-accepted jobs keep serving.
		err := s.degraded
		s.mu.Unlock()
		return Snapshot{}, err
	}
	s.seq++
	j := &job{
		snap: Snapshot{
			ID:        fmt.Sprintf("job-%08d", s.seq),
			Kind:      kind,
			State:     StateQueued,
			CreatedAt: s.now(),
		},
		fn:      fn,
		payload: payload,
	}
	select {
	case s.queue <- j.snap.ID:
	default:
		s.seq--
		s.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
	s.jobs[j.snap.ID] = j
	s.metrics.Submitted++
	s.metrics.QueueDepth++
	s.appendLocked(jobstore.Event{
		Type:    jobstore.EventSubmitted,
		Time:    j.snap.CreatedAt,
		ID:      j.snap.ID,
		Seq:     s.seq,
		Kind:    kind,
		Payload: payload,
	})
	if s.degraded != nil {
		// This very submission latched the backend: its event is not in
		// the journal, so withdraw the job instead of acknowledging it.
		// The ID stays burned (seq must never regress once journaling
		// may have partially happened) and the queue entry becomes a
		// no-op via the cancelled flag.
		j.cancelled = true
		delete(s.jobs, j.snap.ID)
		s.metrics.Submitted--
		s.metrics.QueueDepth--
		err := s.degraded
		s.mu.Unlock()
		return Snapshot{}, err
	}
	snap := j.snap
	s.mu.Unlock()
	return snap, nil
}

// Degraded returns the backend's latched fail-stop error, or nil
// while persistence is healthy (or for a purely in-memory store). A
// degraded store refuses new submissions but keeps serving reads,
// running jobs and results.
func (s *Store) Degraded() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// EstimatedQueueWait predicts how long a submission enqueued now
// would wait for a worker: mean observed run time × queue depth ÷
// worker count. Zero when the queue is empty or no run has finished
// yet. The HTTP layer sheds load when this exceeds its bound.
func (s *Store) EstimatedQueueWait() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.metrics.QueueDepth <= 0 || s.runsCompleted == 0 {
		return 0
	}
	avg := s.metrics.RunLatency / time.Duration(s.runsCompleted)
	workers := s.workers
	if workers < 1 {
		workers = 1
	}
	return avg * time.Duration(s.metrics.QueueDepth) / time.Duration(workers)
}

// Get returns the job's current snapshot.
func (s *Store) Get(id string) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snap, nil
}

// Cancel moves a queued job straight to cancelled, or signals a
// running job's context; it fails with ErrFinished when the job is
// already terminal and ErrNotFound for unknown IDs. The returned
// snapshot reflects the post-cancel state (a running job stays
// "running" until its Fn observes the context).
func (s *Store) Cancel(id string) (Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.snap.State {
	case StateQueued:
		j.cancelled = true
		j.snap.State = StateCancelled
		j.snap.FinishedAt = s.now()
		j.snap.Err = context.Canceled
		s.metrics.QueueDepth--
		s.metrics.Cancelled++
		s.appendFinishedLocked(j, nil)
		j.notifyLocked()
		return j.snap, nil
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return j.snap, nil
	default:
		return j.snap, ErrFinished
	}
}

// List returns a snapshot of every retained job, newest first.
func (s *Store) List() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.snap)
	}
	// Newest first by creation time, then by ID for determinism.
	sort.Slice(out, func(i, k int) bool { return laterThan(out[i], out[k]) })
	return out
}

func laterThan(a, b Snapshot) bool {
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.After(b.CreatedAt)
	}
	return a.ID > b.ID
}

// Metrics returns a copy of the store's counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.metrics
	m.Degraded = s.degraded != nil
	return m
}

// Sweep removes finished jobs older than the TTL and returns how many
// it removed. The janitor calls it periodically; tests call it
// directly with an injected clock.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := s.now().Add(-s.ttl)
	removed := 0
	for id, j := range s.jobs {
		if j.snap.State.Terminal() && !j.snap.FinishedAt.IsZero() && j.snap.FinishedAt.Before(cutoff) {
			delete(s.jobs, id)
			s.appendLocked(jobstore.Event{Type: jobstore.EventSwept, Time: s.now(), ID: id})
			removed++
		}
	}
	s.metrics.Swept += int64(removed)
	return removed
}

// worker drains the queue until Close.
func (s *Store) worker() {
	defer s.wg.Done()
	for id := range s.queue {
		s.runOne(id)
	}
}

// jobIDKey carries the running job's ID in its Fn's context.
type jobIDKey struct{}

// IDFromContext returns the ID of the job whose Fn is running under
// ctx, or "" outside a job. Fns use it to feed Progress.
func IDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// reporterKey carries the job's progress reporter in its Fn's context.
type reporterKey struct{}

// ReportProgress reports enumeration progress from inside a running
// job's Fn — equivalent to Store.Progress with the job's own ID, but
// without needing a reference to the store (recovered Fns are built
// by the Resolver before the store finishes constructing). Outside a
// job it is a no-op.
func ReportProgress(ctx context.Context, evaluated, spaceSize int64) {
	if report, ok := ctx.Value(reporterKey{}).(func(int64, int64)); ok {
		report(evaluated, spaceSize)
	}
}

// strategyReporterKey carries the job's strategy reporter in its Fn's
// context.
type strategyReporterKey struct{}

// ReportStrategy records which solver strategy the job's search
// resolved to, from inside a running job's Fn. Outside a job it is a
// no-op.
func ReportStrategy(ctx context.Context, strategy string) {
	if report, ok := ctx.Value(strategyReporterKey{}).(func(string)); ok {
		report(strategy)
	}
}

// runOne executes a single queued job end to end.
func (s *Store) runOne(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.cancelled || j.snap.State != StateQueued || s.closed {
		// Cancelled while queued, already swept — or the store is
		// shutting down, in which case the job stays "queued" in the
		// journal so a successor store re-queues it.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	ctx = context.WithValue(ctx, jobIDKey{}, id)
	ctx = context.WithValue(ctx, reporterKey{}, func(evaluated, spaceSize int64) {
		s.Progress(id, evaluated, spaceSize)
	})
	ctx = context.WithValue(ctx, strategyReporterKey{}, func(strategy string) {
		s.SetStrategy(id, strategy)
	})
	j.cancel = cancel
	j.snap.State = StateRunning
	j.snap.StartedAt = s.now()
	s.metrics.QueueDepth--
	s.metrics.Running++
	s.metrics.QueueLatency += j.snap.StartedAt.Sub(j.snap.CreatedAt)
	if s.queueWait != nil {
		s.queueWait.ObserveSeconds(j.snap.StartedAt.Sub(j.snap.CreatedAt).Seconds())
	}
	s.appendLocked(jobstore.Event{Type: jobstore.EventStarted, Time: j.snap.StartedAt, ID: id})
	j.notifyLocked()
	fn := j.fn
	s.mu.Unlock()

	result, err := runGuarded(ctx, fn)
	interrupted := ctx.Err() != nil // read before releasing the context
	cancel()

	// Serialize the result for the journal before taking the store
	// lock: a large payload must not stall every other submit/poll
	// while it marshals. Failures surface as an evicted result, not a
	// failed job — the in-memory payload stays fetchable.
	var resultJSON []byte
	if s.backend != nil && err == nil && result != nil {
		resultJSON, _ = json.Marshal(result)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	j.snap.FinishedAt = s.now()
	s.metrics.Running--
	s.metrics.RunLatency += j.snap.FinishedAt.Sub(j.snap.StartedAt)
	s.runsCompleted++
	if s.runSeconds != nil {
		s.runSeconds.ObserveSeconds(j.snap.FinishedAt.Sub(j.snap.StartedAt).Seconds())
	}
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || interrupted):
		j.snap.State = StateCancelled
		j.snap.Err = err
		s.metrics.Cancelled++
	case err != nil:
		j.snap.State = StateFailed
		j.snap.Err = err
		s.metrics.Failed++
	default:
		j.snap.State = StateDone
		j.snap.Result = result
		s.metrics.Done++
	}
	s.appendFinishedLocked(j, resultJSON)
	j.notifyLocked()
}

// runGuarded converts a panicking Fn into a failed job instead of
// taking down the worker.
func runGuarded(ctx context.Context, fn Fn) (result any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: %v", ErrPanic, rec)
		}
	}()
	return fn(ctx)
}

// janitor sweeps expired jobs until Close.
func (s *Store) janitor() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.gcInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.Sweep()
		case <-s.baseCtx.Done():
			return
		}
	}
}

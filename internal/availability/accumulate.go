package availability

// ClusterTerms is a cluster's contribution to the serial-system
// downtime model, reduced to the three numbers the fold below needs.
// Precomputing them once per cluster is what lets the optimizer's
// compiled evaluator re-derive a system's uptime from a changed
// suffix of clusters in amortized constant time.
type ClusterTerms struct {
	// Up is the cluster's UpProbability (Equation 2's per-cluster
	// factor).
	Up float64

	// ActiveUp is (1-P_i)^(K_i-K̂_i): the probability that every
	// currently active node is up (Equation 3's conditioning factor).
	ActiveUp float64

	// Failover is f_i · t_i · (K_i - K̂_i) / δ: the cluster's expected
	// failover-downtime fraction before conditioning on the other
	// clusters' health.
	Failover float64
}

// Terms precomputes the cluster's fold inputs.
func (c Cluster) Terms() ClusterTerms {
	return ClusterTerms{
		Up:       c.UpProbability(),
		ActiveUp: c.activeUpProbability(),
		Failover: c.failoverMinutesPerYear() / MinutesPerYear,
	}
}

// Accumulator folds clusters into the serial-system downtime terms
// one cluster at a time, in a fixed left-to-right association order.
// It is the single canonical evaluation of Equations 1–4: both the
// from-scratch System methods and the optimizer's incremental
// evaluator run exactly this fold, which is what makes their results
// bit-identical (same operations in the same order) rather than
// merely close.
//
// The failover sum uses the scan recurrence
//
//	T_i = T_{i-1} · A_i + F_i · P_{i-1}
//
// where P is the running ActiveUp product: after cluster i, T equals
// Equation 3's Σ_m F_m · Π_{j≤i, j≠m} A_j restricted to the first i+1
// clusters. Because the state after cluster i depends only on
// clusters 0..i, an evaluator that checkpoints the state per prefix
// can re-fold just a changed suffix — turning Equation 3 from O(n²)
// per system into O(1) amortized per enumeration step.
type Accumulator struct {
	// Up is the running product of cluster up-probabilities.
	Up float64

	// ActiveUp is the running product of active-up probabilities.
	ActiveUp float64

	// Failover is the running conditioned failover-downtime sum.
	Failover float64
}

// NewAccumulator returns the fold's identity (the empty system).
func NewAccumulator() Accumulator {
	return Accumulator{Up: 1, ActiveUp: 1}
}

// Add folds one more cluster into the serial system.
func (a *Accumulator) Add(t ClusterTerms) {
	a.Failover = a.Failover*t.ActiveUp + t.Failover*a.ActiveUp
	a.ActiveUp *= t.ActiveUp
	a.Up *= t.Up
}

// Downtime returns D_s = B_s + F_s (Equation 1) for the folded
// clusters, clamped to [0, 1] like System.Downtime.
func (a Accumulator) Downtime() float64 {
	d := (1 - a.Up) + a.Failover
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Uptime returns U_s = 1 - D_s (Equation 4) for the folded clusters.
func (a Accumulator) Uptime() float64 { return 1 - a.Downtime() }

package availability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialUpperTailEdges(t *testing.T) {
	tests := []struct {
		name    string
		n, m    int
		q       float64
		want    float64
		withinT float64
	}{
		{"m zero is certain", 5, 0, 0.3, 1, 0},
		{"m negative is certain", 5, -2, 0.3, 1, 0},
		{"m above n impossible", 5, 6, 0.99, 0, 0},
		{"all must be up", 3, 3, 0.9, 0.729, 1e-15},
		{"q zero, need one", 4, 1, 0, 0, 0},
		{"q one, need all", 4, 4, 1, 1, 0},
		{"single trial", 1, 1, 0.42, 0.42, 1e-15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := binomialUpperTail(tt.n, tt.m, tt.q)
			if math.Abs(got-tt.want) > tt.withinT {
				t.Fatalf("binomialUpperTail(%d, %d, %v) = %v, want %v", tt.n, tt.m, tt.q, got, tt.want)
			}
		})
	}
}

// naiveTail is an independent reference implementation using the
// explicit binomial coefficient formula.
func naiveTail(n, m int, q float64) float64 {
	if m < 0 {
		m = 0
	}
	sum := 0.0
	for j := m; j <= n; j++ {
		sum += binomial(n, j) * math.Pow(q, float64(j)) * math.Pow(1-q, float64(n-j))
	}
	return sum
}

func TestBinomialUpperTailMatchesNaive(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for m := 0; m <= n; m++ {
			for _, q := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
				got := binomialUpperTail(n, m, q)
				want := naiveTail(n, m, q)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("binomialUpperTail(%d, %d, %v) = %v, naive = %v", n, m, q, got, want)
				}
			}
		}
	}
}

func TestBinomialUpperTailMonotoneInM(t *testing.T) {
	// Requiring more successes can never raise the probability.
	n, q := 8, 0.95
	prev := 2.0
	for m := 0; m <= n; m++ {
		cur := binomialUpperTail(n, m, q)
		if cur > prev+1e-15 {
			t.Fatalf("tail increased at m=%d: %v > %v", m, cur, prev)
		}
		prev = cur
	}
}

func TestBinomialUpperTailMonotoneInQ(t *testing.T) {
	err := quick.Check(func(nRaw, mRaw uint8, q1, q2 float64) bool {
		n := int(nRaw%10) + 1
		m := int(mRaw) % (n + 1)
		q1 = clamp01(q1)
		q2 = clamp01(q2)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return binomialUpperTail(n, m, q1) <= binomialUpperTail(n, m, q2)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func clamp01(x float64) float64 {
	x = math.Abs(x)
	x -= math.Floor(x)
	return x
}

func TestPowInt(t *testing.T) {
	tests := []struct {
		x    float64
		k    int
		want float64
	}{
		{2, 0, 1},
		{2, 1, 2},
		{2, 10, 1024},
		{0.5, 3, 0.125},
		{0, 0, 1},
		{0, 5, 0},
		{-3, 3, -27},
		{-3, 2, 9},
	}
	for _, tt := range tests {
		if got := powInt(tt.x, tt.k); got != tt.want {
			t.Fatalf("powInt(%v, %d) = %v, want %v", tt.x, tt.k, got, tt.want)
		}
	}
}

func TestPowIntMatchesMathPow(t *testing.T) {
	err := quick.Check(func(xRaw float64, kRaw uint8) bool {
		x := clamp01(xRaw)
		k := int(kRaw % 30)
		got := powInt(x, k)
		want := math.Pow(x, float64(k))
		return math.Abs(got-want) <= 1e-12*math.Max(1, math.Abs(want))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinomialCoefficient(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1},
		{4, 0, 1},
		{4, 4, 1},
		{4, 2, 6},
		{10, 3, 120},
		{10, 7, 120},
		{5, -1, 0},
		{5, 6, 0},
		{52, 5, 2598960},
	}
	for _, tt := range tests {
		if got := binomial(tt.n, tt.k); got != tt.want {
			t.Fatalf("binomial(%d, %d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	for n := 2; n <= 30; n++ {
		for k := 1; k < n; k++ {
			lhs := binomial(n, k)
			rhs := binomial(n-1, k-1) + binomial(n-1, k)
			if math.Abs(lhs-rhs) > 1e-6*lhs {
				t.Fatalf("Pascal identity failed at (%d, %d): %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

package availability

// binomialUpperTail returns Σ_{j=m}^{n} C(n, j) q^j (1-q)^(n-j): the
// probability that a Binomial(n, q) variable is at least m. In the
// cluster model q is the per-node up probability and m the required
// number of active nodes.
//
// The terms are accumulated from j = n downward with an iteratively
// maintained binomial coefficient, which is exact in float64 for the
// cluster sizes that occur in practice (n well below 1000).
func binomialUpperTail(n, m int, q float64) float64 {
	if m <= 0 {
		return 1
	}
	if m > n {
		return 0
	}
	p := 1 - q
	// term_j = C(n, j) q^j p^(n-j), starting at j = n.
	term := powInt(q, n)
	sum := term
	if q == 0 {
		// All mass is at j = 0; the tail from m >= 1 is empty.
		return 0
	}
	for j := n - 1; j >= m; j-- {
		// C(n, j) = C(n, j+1) * (j+1) / (n-j); shift one q to p.
		term *= float64(j+1) / float64(n-j) * p / q
		sum += term
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// powInt returns x^k for integer k >= 0 by binary exponentiation. It
// avoids math.Pow's transcendental path for the small integer exponents
// the model uses, and is exact for k == 0 and k == 1.
func powInt(x float64, k int) float64 {
	result := 1.0
	for k > 0 {
		if k&1 == 1 {
			result *= x
		}
		x *= x
		k >>= 1
	}
	return result
}

// binomial returns C(n, k) as a float64 using the multiplicative
// formula. It is used by tests and by the attribution report; callers
// must keep n small enough (< 1030) that the result fits a float64.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := 1.0
	for i := 1; i <= k; i++ {
		result *= float64(n-k+i) / float64(i)
	}
	return result
}

package availability

import (
	"math"
	"sort"
)

// Contribution attributes system downtime to a single cluster. The
// attribution answers the operator question "which layer should be
// clustered next": it reports how much breakdown probability and
// failover downtime each cluster injects into the serial chain.
type Contribution struct {
	// Name is the cluster name.
	Name string

	// Breakdown is the cluster's own breakdown probability
	// (1 - UpProbability), the driver of its B_s share.
	Breakdown float64

	// Failover is the cluster's term of F_s: expected failover downtime
	// fraction conditioned on all other clusters being healthy.
	Failover float64

	// Total is Breakdown + Failover, the cluster's standalone downtime
	// injection. Because the serial composition is multiplicative the
	// per-cluster Totals do not sum exactly to the system D_s, but their
	// ordering identifies the dominant risk.
	Total float64
}

// Attribution returns one Contribution per cluster, sorted by
// descending Total so the dominant downtime source comes first. Ties
// are broken by cluster name for determinism.
func (s System) Attribution() []Contribution {
	out := make([]Contribution, 0, len(s.Clusters))
	for i, c := range s.Clusters {
		fo := c.failoverMinutesPerYear() / MinutesPerYear
		if fo != 0 {
			for j, other := range s.Clusters {
				if j == i {
					continue
				}
				fo *= other.activeUpProbability()
			}
		}
		br := c.BreakdownProbability()
		out = append(out, Contribution{
			Name:      c.Name,
			Breakdown: br,
			Failover:  fo,
			Total:     br + fo,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Nines converts an uptime fraction to the conventional "number of
// nines" scale, -log10(1 - uptime): 0.99 -> 2, 0.999 -> 3, and so on.
// The result is capped at 16 (beyond float64 resolution); uptime <= 0
// returns 0.
func Nines(uptime float64) float64 {
	if uptime >= 1 {
		return 16
	}
	if uptime <= 0 {
		return 0
	}
	n := -math.Log10(1 - uptime)
	if n > 16 {
		return 16
	}
	if n < 0 {
		return 0
	}
	return n
}

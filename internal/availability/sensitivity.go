package availability

// SensitivityRow reports how strongly system downtime responds to one
// cluster's parameters — the "where should the next HA dollar go"
// signal an architect reads before picking permutations to try.
type SensitivityRow struct {
	// Name is the cluster name.
	Name string

	// DowntimePerNodeDown is ∂D_s/∂P_i: the marginal system downtime
	// per unit of node down-probability, estimated by central
	// difference.
	DowntimePerNodeDown float64

	// DowntimePerFailoverMinute is ∂D_s/∂t_i in downtime fraction per
	// minute of failover latency; zero for clusters without standby.
	DowntimePerFailoverMinute float64
}

// sensitivityStep is the relative perturbation for the central
// differences; small enough for locality, large enough for float64
// significance at the downtime magnitudes the model produces.
const sensitivityStep = 1e-6

// Sensitivity returns one row per cluster, in cluster order.
func (s System) Sensitivity() []SensitivityRow {
	rows := make([]SensitivityRow, len(s.Clusters))
	for i := range s.Clusters {
		rows[i] = SensitivityRow{
			Name:                      s.Clusters[i].Name,
			DowntimePerNodeDown:       s.derivNodeDown(i),
			DowntimePerFailoverMinute: s.derivFailover(i),
		}
	}
	return rows
}

// derivNodeDown estimates ∂D_s/∂P_i by central difference, clamping
// the perturbed probability into [0, 1).
func (s System) derivNodeDown(i int) float64 {
	base := s.Clusters[i].NodeDown
	h := sensitivityStep
	lo, hi := base-h, base+h
	if lo < 0 {
		lo = 0
	}
	if hi >= 1 {
		hi = base
	}
	if hi <= lo {
		return 0
	}
	up := s.withNodeDown(i, hi).Downtime()
	down := s.withNodeDown(i, lo).Downtime()
	return (up - down) / (hi - lo)
}

// derivFailover estimates ∂D_s/∂t_i. Analytically the failover term is
// linear in t_i, so the derivative is exact: the cluster's conditioned
// failover coefficient per minute.
func (s System) derivFailover(i int) float64 {
	c := s.Clusters[i]
	if c.Tolerated == 0 {
		return 0
	}
	coeff := c.FailuresPerYear * float64(c.Active()) / MinutesPerYear
	for j, other := range s.Clusters {
		if j == i {
			continue
		}
		coeff *= other.activeUpProbability()
	}
	return coeff
}

// withNodeDown returns a copy of the system with cluster i's NodeDown
// replaced.
func (s System) withNodeDown(i int, p float64) System {
	clusters := append([]Cluster(nil), s.Clusters...)
	clusters[i].NodeDown = p
	return System{Clusters: clusters}
}

// WeakestLink returns the cluster injecting the most downtime (the
// head of the Attribution ordering). It panics on an empty system;
// validate first.
func (s System) WeakestLink() Contribution {
	return s.Attribution()[0]
}

package availability

import (
	"math"
	"testing"
	"time"
)

func caseStudySystem() System {
	return System{Clusters: []Cluster{
		{Name: "compute", Nodes: 3, Tolerated: 0, NodeDown: 0.0055, FailuresPerYear: 5},
		{Name: "storage", Nodes: 1, Tolerated: 0, NodeDown: 0.02, FailuresPerYear: 3},
		{Name: "network", Nodes: 1, Tolerated: 0, NodeDown: 0.0146, FailuresPerYear: 4},
	}}
}

func TestSensitivityRowsCoverClusters(t *testing.T) {
	s := caseStudySystem()
	rows := s.Sensitivity()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Name != s.Clusters[i].Name {
			t.Fatalf("row %d name = %q", i, r.Name)
		}
		if r.DowntimePerNodeDown <= 0 {
			t.Fatalf("cluster %q: non-positive dD/dP = %v", r.Name, r.DowntimePerNodeDown)
		}
		// No standby anywhere: failover sensitivity must be zero.
		if r.DowntimePerFailoverMinute != 0 {
			t.Fatalf("cluster %q: failover sensitivity without standby", r.Name)
		}
	}
}

func TestSensitivityMatchesAnalyticSingleNode(t *testing.T) {
	// Serial single-node clusters: D = 1 - Π(1-P_j), so
	// ∂D/∂P_i = Π_{j≠i}(1-P_j).
	s := System{Clusters: []Cluster{
		{Name: "a", Nodes: 1, NodeDown: 0.1},
		{Name: "b", Nodes: 1, NodeDown: 0.2},
	}}
	rows := s.Sensitivity()
	if math.Abs(rows[0].DowntimePerNodeDown-0.8) > 1e-4 {
		t.Fatalf("dD/dP_a = %v, want 0.8", rows[0].DowntimePerNodeDown)
	}
	if math.Abs(rows[1].DowntimePerNodeDown-0.9) > 1e-4 {
		t.Fatalf("dD/dP_b = %v, want 0.9", rows[1].DowntimePerNodeDown)
	}
}

func TestSensitivityFailoverLinearity(t *testing.T) {
	// The failover derivative is exact: adding a minute of failover to
	// an HA cluster must move downtime by exactly the reported slope.
	s := System{Clusters: []Cluster{
		{Name: "ha", Nodes: 3, Tolerated: 1, NodeDown: 0.01, FailuresPerYear: 6, Failover: 5 * time.Minute},
		{Name: "plain", Nodes: 1, NodeDown: 0.02},
	}}
	slope := s.Sensitivity()[0].DowntimePerFailoverMinute
	if slope <= 0 {
		t.Fatalf("slope = %v", slope)
	}

	longer := System{Clusters: append([]Cluster(nil), s.Clusters...)}
	longer.Clusters[0].Failover += time.Minute
	got := longer.Downtime() - s.Downtime()
	if math.Abs(got-slope) > 1e-12 {
		t.Fatalf("downtime moved %v per minute, slope says %v", got, slope)
	}
}

func TestSensitivityEdgeProbabilities(t *testing.T) {
	// P at the domain edges must not panic or produce NaN.
	for _, p := range []float64{0, 0.999999} {
		s := System{Clusters: []Cluster{{Name: "e", Nodes: 1, NodeDown: p}}}
		rows := s.Sensitivity()
		if math.IsNaN(rows[0].DowntimePerNodeDown) || math.IsInf(rows[0].DowntimePerNodeDown, 0) {
			t.Fatalf("P=%v: bad derivative %v", p, rows[0].DowntimePerNodeDown)
		}
	}
}

func TestWeakestLink(t *testing.T) {
	s := caseStudySystem()
	weakest := s.WeakestLink()
	// Storage (P=0.02 on a single node) dominates the case study.
	if weakest.Name != "storage" {
		t.Fatalf("weakest link = %q, want storage", weakest.Name)
	}
	// And it agrees with the sensitivity ranking's intuition: fixing
	// the weakest link (HA on storage) is exactly what the optimizer
	// ends up recommending in the case study.
}

func TestSensitivityIdentifiesDominantRisk(t *testing.T) {
	// The cluster with the largest contribution should also have a
	// large downtime-per-P slope weighted by its actual P; sanity-check
	// the two views agree on the case study's storage tier.
	s := caseStudySystem()
	rows := s.Sensitivity()
	storageImpact := rows[1].DowntimePerNodeDown * s.Clusters[1].NodeDown
	computeImpact := rows[0].DowntimePerNodeDown * s.Clusters[0].NodeDown
	if storageImpact <= computeImpact {
		t.Fatalf("storage impact %v should exceed compute %v", storageImpact, computeImpact)
	}
}

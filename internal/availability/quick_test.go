package availability

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomCluster derives a valid cluster from raw quick-check inputs.
func randomCluster(rng *rand.Rand) Cluster {
	nodes := 1 + rng.Intn(8)
	return Cluster{
		Name:            "c",
		Nodes:           nodes,
		Tolerated:       rng.Intn(nodes),
		NodeDown:        rng.Float64() * 0.5,
		FailuresPerYear: rng.Float64() * 20,
		Failover:        time.Duration(rng.Intn(30)) * time.Minute,
	}
}

func randomSystem(rng *rand.Rand) System {
	n := 1 + rng.Intn(5)
	cs := make([]Cluster, n)
	for i := range cs {
		cs[i] = randomCluster(rng)
	}
	return System{Clusters: cs}
}

func TestPropertyUptimeInUnitInterval(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		s := randomSystem(rand.New(rand.NewSource(seed)))
		u := s.Uptime()
		return u >= 0 && u <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMoreToleranceNeverHurtsBreakdown(t *testing.T) {
	// Raising K̂ (with K fixed) weakly increases cluster up probability.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCluster(rng)
		if c.Tolerated >= c.Nodes-1 {
			c.Tolerated = c.Nodes - 2
			if c.Tolerated < 0 {
				return true // K=1 cluster cannot gain tolerance
			}
		}
		more := c
		more.Tolerated++
		return more.UpProbability() >= c.UpProbability()-1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWorseNodesNeverHelp(t *testing.T) {
	// Raising P_i weakly decreases system uptime (failover terms shrink
	// only via other clusters; the breakdown term dominates).
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSystem(rng)
		idx := rng.Intn(len(s.Clusters))

		worse := System{Clusters: append([]Cluster(nil), s.Clusters...)}
		bump := (1 - worse.Clusters[idx].NodeDown) * rng.Float64() * 0.5
		worse.Clusters[idx].NodeDown += bump

		// Compare the breakdown component, which is the monotone part of
		// the model. (F_s can shrink when P grows because the paper
		// conditions on other clusters being healthy.)
		return worse.Breakdown() >= s.Breakdown()-1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertySerialNeverBeatsBestCluster(t *testing.T) {
	// A serial chain is at most as available as its weakest link, and
	// breakdown-wise at least as bad as any single cluster.
	err := quick.Check(func(seed int64) bool {
		s := randomSystem(rand.New(rand.NewSource(seed)))
		sysUp := 1 - s.Breakdown()
		for _, c := range s.Clusters {
			if sysUp > c.UpProbability()+1e-12 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAttributionCoversAllClusters(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		s := randomSystem(rand.New(rand.NewSource(seed)))
		attr := s.Attribution()
		if len(attr) != len(s.Clusters) {
			return false
		}
		// Sorted descending by Total.
		for i := 1; i < len(attr); i++ {
			if attr[i].Total > attr[i-1].Total {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMTBFRoundTrip(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mtbf := time.Duration(1+rng.Intn(10000)) * time.Hour
		mttr := time.Duration(rng.Intn(600)) * time.Minute
		p, err := FromMTBF(mtbf, mttr)
		if err != nil {
			return false
		}
		if err := p.Validate(); err != nil {
			return false
		}
		// Round-trip within a minute of resolution.
		backMTBF, backMTTR := p.MTBF(), p.MTTR()
		return durationClose(backMTBF, mtbf, time.Minute) && durationClose(backMTTR, mttr, time.Minute)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func durationClose(a, b, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestNines(t *testing.T) {
	tests := []struct {
		uptime float64
		want   float64
		tol    float64
	}{
		{0.9, 1, 1e-9},
		{0.99, 2, 1e-9},
		{0.999, 3, 1e-9},
		{0.99999, 5, 1e-9},
		{1, 16, 0},
		{1.5, 16, 0},
		{0, 0, 0},
		{-0.2, 0, 0},
	}
	for _, tt := range tests {
		if got := Nines(tt.uptime); !almostEqual(got, tt.want, tt.tol) {
			t.Fatalf("Nines(%v) = %v, want %v", tt.uptime, got, tt.want)
		}
	}
}

func TestFromMTBFErrors(t *testing.T) {
	if _, err := FromMTBF(0, time.Minute); err == nil {
		t.Fatal("FromMTBF(0, ...) should fail")
	}
	if _, err := FromMTBF(time.Hour, -time.Minute); err == nil {
		t.Fatal("FromMTBF(..., negative) should fail")
	}
	p, err := FromMTBF(99*time.Hour, time.Hour)
	if err != nil {
		t.Fatalf("FromMTBF: %v", err)
	}
	if !almostEqual(p.Down, 0.01, 1e-12) {
		t.Fatalf("Down = %v, want 0.01", p.Down)
	}
}

func TestNodeParamsValidate(t *testing.T) {
	bad := []NodeParams{{Down: -0.1}, {Down: 1}, {Down: 0.5, FailuresPerYear: -1}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (NodeParams{Down: 0.01, FailuresPerYear: 5}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	zero := NodeParams{}
	if zero.MTBF() != 0 || zero.MTTR() != 0 {
		t.Fatal("zero-failure params should have zero MTBF/MTTR")
	}
}

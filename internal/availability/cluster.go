package availability

import (
	"errors"
	"fmt"
	"time"
)

// MinutesPerYear is δ in the paper: the number of minutes in a
// (non-leap) year, used to normalize failover downtime to a fraction.
const MinutesPerYear = 525600.0

// HoursPerMonth is δ/(12·60): the number of hours in one month under
// the paper's convention, used to convert downtime fractions to monthly
// slippage hours (Equation 5).
const HoursPerMonth = MinutesPerYear / (12 * 60)

// Cluster describes one k-redundancy cluster C_i in a serial system.
//
// The zero value is not valid; construct a Cluster with all fields set
// and check Validate before use.
type Cluster struct {
	// Name identifies the cluster in reports (for example "compute").
	Name string

	// Nodes is K_i, the total number of nodes in the cluster.
	Nodes int

	// Tolerated is K̂_i, the maximum number of simultaneously failed
	// nodes the HA infrastructure can absorb. Tolerated = 0 means any
	// node outage is a cluster breakdown. It must satisfy
	// 0 <= Tolerated < Nodes so that at least one node is active.
	Tolerated int

	// NodeDown is P_i, the steady-state probability that an individual
	// node is down. It must lie in [0, 1).
	NodeDown float64

	// FailuresPerYear is f_i, the average number of failures a single
	// node experiences in a year.
	FailuresPerYear float64

	// Failover is t_i, the latency during which the cluster is
	// unavailable while a standby node takes over after an active-node
	// outage. It is zero for clusters without HA (a node outage then
	// surfaces as breakdown, not failover).
	Failover time.Duration
}

// Validate reports whether the cluster parameters are internally
// consistent. It returns nil when they are.
func (c Cluster) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster %q: Nodes = %d, must be >= 1", c.Name, c.Nodes)
	case c.Tolerated < 0:
		return fmt.Errorf("cluster %q: Tolerated = %d, must be >= 0", c.Name, c.Tolerated)
	case c.Tolerated >= c.Nodes:
		return fmt.Errorf("cluster %q: Tolerated = %d, must be < Nodes = %d", c.Name, c.Tolerated, c.Nodes)
	case c.NodeDown < 0 || c.NodeDown >= 1:
		return fmt.Errorf("cluster %q: NodeDown = %v, must be in [0, 1)", c.Name, c.NodeDown)
	case c.FailuresPerYear < 0:
		return fmt.Errorf("cluster %q: FailuresPerYear = %v, must be >= 0", c.Name, c.FailuresPerYear)
	case c.Failover < 0:
		return fmt.Errorf("cluster %q: Failover = %v, must be >= 0", c.Name, c.Failover)
	}
	return nil
}

// Active returns K_i - K̂_i, the number of nodes that must be (and, in
// steady state, are) active for the cluster to be operational.
func (c Cluster) Active() int { return c.Nodes - c.Tolerated }

// UpProbability returns the probability that the cluster is not broken
// down: at least K_i - K̂_i of its K_i nodes are up,
//
//	Σ_{j=K_i-K̂_i}^{K_i} C(K_i, j) (1-P_i)^j P_i^{K_i-j}.
func (c Cluster) UpProbability() float64 {
	return binomialUpperTail(c.Nodes, c.Nodes-c.Tolerated, 1-c.NodeDown)
}

// BreakdownProbability returns 1 - UpProbability: the probability that
// more than K̂_i nodes are simultaneously down.
func (c Cluster) BreakdownProbability() float64 {
	return 1 - c.UpProbability()
}

// failoverMinutesPerYear returns f_i · t_i · (K_i - K̂_i): the expected
// minutes per year the cluster spends in failover transitions, before
// conditioning on the health of the other clusters (Equation 3).
//
// Clusters with Tolerated == 0 have no standby to fail over to, so the
// term is zero regardless of Failover.
func (c Cluster) failoverMinutesPerYear() float64 {
	if c.Tolerated == 0 {
		return 0
	}
	return c.FailuresPerYear * c.Failover.Minutes() * float64(c.Active())
}

// activeUpProbability returns (1-P_i)^(K_i-K̂_i): the probability that
// every currently active node in the cluster is up. It is the per-
// cluster factor of P(X_i) in Equation 3.
func (c Cluster) activeUpProbability() float64 {
	return powInt(1-c.NodeDown, c.Active())
}

// ErrNoClusters is returned by System.Validate for a system with no
// clusters; the serial-composition model is undefined on it.
var ErrNoClusters = errors.New("availability: system has no clusters")

// System is a serial combination of clusters: it is up exactly when
// every cluster is up and none is mid-failover.
type System struct {
	Clusters []Cluster
}

// Validate checks every cluster and the system shape.
func (s System) Validate() error {
	if len(s.Clusters) == 0 {
		return ErrNoClusters
	}
	for _, c := range s.Clusters {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// accumulate folds every cluster through the canonical Accumulator.
func (s System) accumulate() Accumulator {
	acc := NewAccumulator()
	for _, c := range s.Clusters {
		acc.Add(c.Terms())
	}
	return acc
}

// Breakdown returns B_s (Equation 2): the probability that at least one
// cluster has more than its tolerated number of nodes down.
func (s System) Breakdown() float64 {
	return 1 - s.accumulate().Up
}

// FailoverDowntime returns F_s (Equation 3): the expected downtime
// fraction due to failover transitions, summed over clusters, each term
// weighted by the probability that every active node in every other
// cluster is up. Since the Accumulator refactor the sum runs as a
// single left-to-right scan (O(n) instead of the textbook O(n²)
// double loop), in exactly the association order the optimizer's
// incremental evaluator replays.
func (s System) FailoverDowntime() float64 {
	return s.accumulate().Failover
}

// Downtime returns D_s = B_s + F_s (Equation 1), clamped to [0, 1].
// The two downtime sources are treated as mutually exclusive per the
// paper; clamping guards against pathological parameter combinations
// where the approximation exceeds certainty.
func (s System) Downtime() float64 {
	return s.accumulate().Downtime()
}

// Uptime returns U_s = 1 - D_s (Equation 4).
func (s System) Uptime() float64 { return 1 - s.Downtime() }

// DowntimeMinutesPerYear converts the downtime fraction to expected
// minutes of unavailability per year.
func (s System) DowntimeMinutesPerYear() float64 {
	return s.Downtime() * MinutesPerYear
}

// DowntimeHoursPerMonth converts the downtime fraction to expected
// hours of unavailability per month, the unit penalty clauses use.
func (s System) DowntimeHoursPerMonth() float64 {
	return s.Downtime() * HoursPerMonth
}

package availability

import (
	"fmt"
	"time"
)

// NodeParams are the per-node reliability inputs of the model: the
// steady-state down probability P and the failure frequency f. The
// broker's telemetry layer estimates them from raw outage observations;
// this file provides the standard renewal-theory conversions between
// (MTBF, MTTR) and (P, f).
type NodeParams struct {
	// Down is P: the fraction of time the node is unavailable.
	Down float64

	// FailuresPerYear is f: how many failures the node sees per year.
	FailuresPerYear float64
}

// FromMTBF derives NodeParams from a mean time between failures and a
// mean time to repair. In the alternating-renewal model,
//
//	P = MTTR / (MTBF + MTTR)
//	f = minutes-per-year / (MTBF + MTTR)
//
// Both durations must be positive except that a zero MTTR yields a
// perfectly available node that still fails (and instantly recovers)
// f times per year.
func FromMTBF(mtbf, mttr time.Duration) (NodeParams, error) {
	if mtbf <= 0 {
		return NodeParams{}, fmt.Errorf("availability: MTBF = %v, must be > 0", mtbf)
	}
	if mttr < 0 {
		return NodeParams{}, fmt.Errorf("availability: MTTR = %v, must be >= 0", mttr)
	}
	cycle := mtbf.Minutes() + mttr.Minutes()
	return NodeParams{
		Down:            mttr.Minutes() / cycle,
		FailuresPerYear: MinutesPerYear / cycle,
	}, nil
}

// MTBF inverts FromMTBF: it recovers the mean time between failures
// implied by the params. It returns 0 when FailuresPerYear is 0 (a node
// that never fails has no defined cycle).
func (p NodeParams) MTBF() time.Duration {
	if p.FailuresPerYear <= 0 {
		return 0
	}
	cycleMinutes := MinutesPerYear / p.FailuresPerYear
	return time.Duration((1 - p.Down) * cycleMinutes * float64(time.Minute))
}

// MTTR inverts FromMTBF: it recovers the mean time to repair implied by
// the params, 0 when the node never fails.
func (p NodeParams) MTTR() time.Duration {
	if p.FailuresPerYear <= 0 {
		return 0
	}
	cycleMinutes := MinutesPerYear / p.FailuresPerYear
	return time.Duration(p.Down * cycleMinutes * float64(time.Minute))
}

// Validate reports whether the params are usable in the model.
func (p NodeParams) Validate() error {
	if p.Down < 0 || p.Down >= 1 {
		return fmt.Errorf("availability: Down = %v, must be in [0, 1)", p.Down)
	}
	if p.FailuresPerYear < 0 {
		return fmt.Errorf("availability: FailuresPerYear = %v, must be >= 0", p.FailuresPerYear)
	}
	return nil
}

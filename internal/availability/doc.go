// Package availability implements the probabilistic uptime model of
// Venkateswaran & Sarkar, "Uptime-Optimized Cloud Architecture as a
// Brokered Service" (DSN 2017), Section II.B.
//
// A cloud-hosted system S is modeled as a serial combination of n
// clusters. Each cluster C_i follows the k-redundancy model: it has K_i
// nodes of which at most K̂_i may be down before the cluster breaks down
// beyond immediate recovery. While the cluster survives a node outage,
// it is briefly unavailable for the failover time t_i.
//
// The model composes two mutually exclusive downtime sources:
//
//	D_s = B_s + F_s            (Equation 1)
//
// where B_s is the probability that at least one cluster has broken
// down (more than K̂_i simultaneous node outages, Equation 2) and F_s is
// the expected fraction of time lost to failover transitions while every
// other cluster is healthy (Equation 3). System uptime is U_s = 1 - D_s
// (Equation 4).
//
// All probabilities are dimensionless fractions in [0, 1]. Durations use
// time.Duration; rates are expressed per year with δ = 525 600 minutes
// per year as in the paper.
package availability

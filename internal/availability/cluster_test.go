package availability

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestClusterValidate(t *testing.T) {
	valid := Cluster{Name: "c", Nodes: 4, Tolerated: 1, NodeDown: 0.01, FailuresPerYear: 4, Failover: 15 * time.Minute}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid cluster rejected: %v", err)
	}

	tests := []struct {
		name    string
		mutate  func(*Cluster)
		wantSub string
	}{
		{"zero nodes", func(c *Cluster) { c.Nodes = 0 }, "Nodes"},
		{"negative nodes", func(c *Cluster) { c.Nodes = -3 }, "Nodes"},
		{"negative tolerated", func(c *Cluster) { c.Tolerated = -1 }, "Tolerated"},
		{"tolerated equals nodes", func(c *Cluster) { c.Tolerated = c.Nodes }, "Tolerated"},
		{"tolerated above nodes", func(c *Cluster) { c.Tolerated = c.Nodes + 1 }, "Tolerated"},
		{"negative down prob", func(c *Cluster) { c.NodeDown = -0.1 }, "NodeDown"},
		{"down prob one", func(c *Cluster) { c.NodeDown = 1 }, "NodeDown"},
		{"negative failures", func(c *Cluster) { c.FailuresPerYear = -1 }, "FailuresPerYear"},
		{"negative failover", func(c *Cluster) { c.Failover = -time.Minute }, "Failover"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tt.wantSub)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("Validate() = %q, want mention of %q", err, tt.wantSub)
			}
		})
	}
}

func TestClusterUpProbabilitySingleNode(t *testing.T) {
	// A 1-node cluster with no tolerance is up exactly when the node is.
	c := Cluster{Name: "solo", Nodes: 1, Tolerated: 0, NodeDown: 0.02}
	if got, want := c.UpProbability(), 0.98; !almostEqual(got, want, 1e-15) {
		t.Fatalf("UpProbability() = %v, want %v", got, want)
	}
	if got, want := c.BreakdownProbability(), 0.02; !almostEqual(got, want, 1e-15) {
		t.Fatalf("BreakdownProbability() = %v, want %v", got, want)
	}
}

func TestClusterUpProbabilityRAID1(t *testing.T) {
	// RAID-1: 2 mirrored disks, 1 tolerated failure. Up unless both are
	// down: 1 - P^2.
	p := 0.02
	c := Cluster{Name: "raid1", Nodes: 2, Tolerated: 1, NodeDown: p}
	want := 1 - p*p
	if got := c.UpProbability(); !almostEqual(got, want, 1e-15) {
		t.Fatalf("UpProbability() = %v, want %v", got, want)
	}
}

func TestClusterUpProbability3Plus1(t *testing.T) {
	// The paper's ESX example: K=4, K̂=1. Up when >= 3 of 4 nodes are up:
	// (1-P)^4 + 4 (1-P)^3 P.
	p := 0.01
	q := 1 - p
	c := Cluster{Name: "esx", Nodes: 4, Tolerated: 1, NodeDown: p}
	want := math.Pow(q, 4) + 4*math.Pow(q, 3)*p
	if got := c.UpProbability(); !almostEqual(got, want, 1e-15) {
		t.Fatalf("UpProbability() = %v, want %v", got, want)
	}
}

func TestClusterUpProbabilityZeroDown(t *testing.T) {
	c := Cluster{Name: "perfect", Nodes: 5, Tolerated: 2, NodeDown: 0}
	if got := c.UpProbability(); got != 1 {
		t.Fatalf("UpProbability() = %v, want exactly 1", got)
	}
}

func TestClusterActive(t *testing.T) {
	c := Cluster{Nodes: 4, Tolerated: 1}
	if got := c.Active(); got != 3 {
		t.Fatalf("Active() = %d, want 3", got)
	}
}

func TestSystemValidate(t *testing.T) {
	if err := (System{}).Validate(); err != ErrNoClusters {
		t.Fatalf("empty system Validate() = %v, want ErrNoClusters", err)
	}
	s := System{Clusters: []Cluster{{Name: "bad", Nodes: 0}}}
	if err := s.Validate(); err == nil {
		t.Fatal("system with invalid cluster passed Validate")
	}
	good := System{Clusters: []Cluster{{Name: "ok", Nodes: 2, Tolerated: 1, NodeDown: 0.01}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
}

func TestSystemBreakdownSerial(t *testing.T) {
	// Two single-node clusters in series: B_s = 1 - (1-P1)(1-P2).
	s := System{Clusters: []Cluster{
		{Name: "a", Nodes: 1, NodeDown: 0.1},
		{Name: "b", Nodes: 1, NodeDown: 0.2},
	}}
	want := 1 - 0.9*0.8
	if got := s.Breakdown(); !almostEqual(got, want, 1e-15) {
		t.Fatalf("Breakdown() = %v, want %v", got, want)
	}
}

func TestSystemFailoverNoHA(t *testing.T) {
	// Clusters without tolerated failures contribute no failover
	// downtime even if a failover time is (mis)configured.
	s := System{Clusters: []Cluster{
		{Name: "a", Nodes: 3, Tolerated: 0, NodeDown: 0.01, FailuresPerYear: 10, Failover: time.Hour},
	}}
	if got := s.FailoverDowntime(); got != 0 {
		t.Fatalf("FailoverDowntime() = %v, want 0 for K̂=0", got)
	}
}

func TestSystemFailoverSingleCluster(t *testing.T) {
	// One HA cluster alone: F_s = f·t·(K-K̂)/δ with no conditioning term.
	c := Cluster{Name: "c", Nodes: 4, Tolerated: 1, NodeDown: 0.01, FailuresPerYear: 4, Failover: 15 * time.Minute}
	s := System{Clusters: []Cluster{c}}
	want := 4 * 15 * 3 / MinutesPerYear
	if got := s.FailoverDowntime(); !almostEqual(got, want, 1e-15) {
		t.Fatalf("FailoverDowntime() = %v, want %v", got, want)
	}
}

func TestSystemFailoverConditioning(t *testing.T) {
	// Equation 3: each cluster's failover term is weighted by
	// Π_{j≠i}(1-P_j)^{K_j-K̂_j}.
	c1 := Cluster{Name: "c1", Nodes: 2, Tolerated: 1, NodeDown: 0.1, FailuresPerYear: 2, Failover: 10 * time.Minute}
	c2 := Cluster{Name: "c2", Nodes: 3, Tolerated: 0, NodeDown: 0.05}
	s := System{Clusters: []Cluster{c1, c2}}

	// Only c1 has a failover term; it is conditioned on c2's 3 active
	// nodes all being up.
	want := (2 * 10 * 1 / MinutesPerYear) * math.Pow(0.95, 3)
	if got := s.FailoverDowntime(); !almostEqual(got, want, 1e-15) {
		t.Fatalf("FailoverDowntime() = %v, want %v", got, want)
	}
}

func TestSystemDowntimeComposition(t *testing.T) {
	s := System{Clusters: []Cluster{
		{Name: "a", Nodes: 2, Tolerated: 1, NodeDown: 0.02, FailuresPerYear: 3, Failover: 5 * time.Minute},
		{Name: "b", Nodes: 1, NodeDown: 0.01},
	}}
	if got, want := s.Downtime(), s.Breakdown()+s.FailoverDowntime(); !almostEqual(got, want, 1e-15) {
		t.Fatalf("Downtime() = %v, want Bs+Fs = %v", got, want)
	}
	if got, want := s.Uptime(), 1-s.Downtime(); !almostEqual(got, want, 1e-15) {
		t.Fatalf("Uptime() = %v, want %v", got, want)
	}
}

func TestSystemDowntimeClamped(t *testing.T) {
	// An absurd failover time can push Bs+Fs past 1; Downtime clamps.
	s := System{Clusters: []Cluster{
		{Name: "a", Nodes: 2, Tolerated: 1, NodeDown: 0.5, FailuresPerYear: 1e6, Failover: 24 * time.Hour},
	}}
	if got := s.Downtime(); got != 1 {
		t.Fatalf("Downtime() = %v, want clamp to 1", got)
	}
	if got := s.Uptime(); got != 0 {
		t.Fatalf("Uptime() = %v, want 0", got)
	}
}

func TestDowntimeUnitConversions(t *testing.T) {
	s := System{Clusters: []Cluster{{Name: "a", Nodes: 1, NodeDown: 0.01}}}
	d := s.Downtime()
	if got, want := s.DowntimeMinutesPerYear(), d*MinutesPerYear; !almostEqual(got, want, 1e-9) {
		t.Fatalf("DowntimeMinutesPerYear() = %v, want %v", got, want)
	}
	if got, want := s.DowntimeHoursPerMonth(), d*HoursPerMonth; !almostEqual(got, want, 1e-9) {
		t.Fatalf("DowntimeHoursPerMonth() = %v, want %v", got, want)
	}
	// Sanity: 1% downtime ≈ 7.3 hours/month under δ = 525600.
	if got := s.DowntimeHoursPerMonth(); !almostEqual(got, 7.3, 1e-9) {
		t.Fatalf("1%% downtime = %v h/month, want 7.3", got)
	}
}

func TestAddingStandbyImprovesCaseStudyShape(t *testing.T) {
	// Moving a 3-active-node compute tier from no-HA (K=3, K̂=0) to the
	// paper's 3+1 ESX cluster (K=4, K̂=1) must cut breakdown probability
	// by orders of magnitude even after paying failover downtime.
	noHA := System{Clusters: []Cluster{
		{Name: "compute", Nodes: 3, Tolerated: 0, NodeDown: 0.005, FailuresPerYear: 5},
	}}
	withHA := System{Clusters: []Cluster{
		{Name: "compute", Nodes: 4, Tolerated: 1, NodeDown: 0.005, FailuresPerYear: 5, Failover: 15 * time.Minute},
	}}
	if noHA.Downtime() <= withHA.Downtime() {
		t.Fatalf("HA did not help: noHA=%v withHA=%v", noHA.Downtime(), withHA.Downtime())
	}
	if ratio := noHA.Downtime() / withHA.Downtime(); ratio < 10 {
		t.Fatalf("HA improvement ratio = %v, want >= 10x", ratio)
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the serialized form of a Store. Raw aggregates (not
// derived estimates) are persisted so estimates stay exact across
// restarts.
type snapshot struct {
	Version int              `json:"version"`
	Series  []seriesSnapshot `json:"series"`
}

type seriesSnapshot struct {
	Provider        string    `json:"provider"`
	Class           string    `json:"class"`
	ExposureMinutes float64   `json:"exposure_minutes"`
	DownMinutes     float64   `json:"down_minutes"`
	Failures        int       `json:"failures"`
	FailoverMinutes []float64 `json:"failover_minutes,omitempty"`
}

// Save writes the store's raw aggregates as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{Version: snapshotVersion}
	for k, b := range s.series {
		snap.Series = append(snap.Series, seriesSnapshot{
			Provider:        k.provider,
			Class:           k.class,
			ExposureMinutes: b.exposureMinutes,
			DownMinutes:     b.downMinutes,
			Failures:        b.failures,
			FailoverMinutes: append([]float64(nil), b.failoverMinutes...),
		})
	}
	s.mu.RUnlock()

	// Deterministic output order for diff-able files.
	for i := 1; i < len(snap.Series); i++ {
		for j := i; j > 0; j-- {
			a, b := snap.Series[j-1], snap.Series[j]
			if a.Provider < b.Provider || (a.Provider == b.Provider && a.Class <= b.Class) {
				break
			}
			snap.Series[j-1], snap.Series[j] = b, a
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("telemetry: encoding snapshot: %w", err)
	}
	return nil
}

// Load replaces the store's contents with a snapshot previously
// written by Save.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("telemetry: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("telemetry: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	next := make(map[seriesKey]*series, len(snap.Series))
	for _, ss := range snap.Series {
		if ss.Provider == "" || ss.Class == "" {
			return fmt.Errorf("telemetry: snapshot entry missing provider/class")
		}
		if ss.ExposureMinutes < 0 || ss.DownMinutes < 0 || ss.Failures < 0 {
			return fmt.Errorf("telemetry: snapshot entry for %s/%s has negative aggregates", ss.Provider, ss.Class)
		}
		k := seriesKey{provider: ss.Provider, class: ss.Class}
		if _, dup := next[k]; dup {
			return fmt.Errorf("telemetry: duplicate snapshot entry for %s/%s", ss.Provider, ss.Class)
		}
		next[k] = &series{
			exposureMinutes: ss.ExposureMinutes,
			downMinutes:     ss.DownMinutes,
			failures:        ss.Failures,
			failoverMinutes: append([]float64(nil), ss.FailoverMinutes...),
		}
	}
	s.mu.Lock()
	s.series = next
	s.mu.Unlock()
	s.epoch.Add(1)
	return nil
}

// SaveFile atomically writes the snapshot to a path (write to a temp
// file in the same directory, then rename).
func (s *Store) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".telemetry-*.json")
	if err != nil {
		return fmt.Errorf("telemetry: creating temp snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		_ = os.Remove(tmpName) // no-op after successful rename
	}()
	if err := s.Save(tmp); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("telemetry: closing temp snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("telemetry: installing snapshot: %w", err)
	}
	return nil
}

// LoadFile reads a snapshot from a path.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("telemetry: opening snapshot: %w", err)
	}
	defer func() { _ = f.Close() }()
	return s.Load(f)
}

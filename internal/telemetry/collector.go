package telemetry

import (
	"fmt"
	"time"

	"uptimebroker/internal/availability"
)

// ClusterID maps a simulated cluster index to the telemetry bucket its
// observations belong to.
type ClusterID struct {
	Provider string
	Class    string
}

// Collector adapts the failsim.Recorder callback surface to a Store: it
// pairs failure/repair events into outages, turns failover windows into
// failover samples and, on Close, books the total exposure. One
// Collector instance serves one traced replication.
//
// Collector is not safe for concurrent use; traced replications are
// single-goroutine by design.
type Collector struct {
	store    *Store
	clusters []ClusterID
	nodes    []int // node count per cluster, for exposure accounting

	openOutage map[[2]int]float64 // (cluster, node) -> failure time
	closed     bool
}

// NewCollector builds a collector for a system whose cluster i has
// nodes[i] nodes and maps to clusters[i].
func NewCollector(store *Store, clusters []ClusterID, nodes []int) (*Collector, error) {
	if store == nil {
		return nil, fmt.Errorf("telemetry: nil store")
	}
	if len(clusters) != len(nodes) {
		return nil, fmt.Errorf("telemetry: %d cluster IDs for %d node counts", len(clusters), len(nodes))
	}
	for i, n := range nodes {
		if n < 1 {
			return nil, fmt.Errorf("telemetry: cluster %d has %d nodes", i, n)
		}
	}
	return &Collector{
		store:      store,
		clusters:   append([]ClusterID(nil), clusters...),
		nodes:      append([]int(nil), nodes...),
		openOutage: make(map[[2]int]float64),
	}, nil
}

// NodeFailed implements failsim.Recorder.
func (c *Collector) NodeFailed(cluster, node int, at float64) {
	c.openOutage[[2]int{cluster, node}] = at
}

// NodeRepaired implements failsim.Recorder.
func (c *Collector) NodeRepaired(cluster, node int, at float64) {
	key := [2]int{cluster, node}
	start, ok := c.openOutage[key]
	if !ok {
		return // repair of a node that started the replication down
	}
	delete(c.openOutage, key)
	id := c.clusters[cluster]
	// Errors can only stem from negative durations, impossible here.
	_ = c.store.RecordOutage(id.Provider, id.Class, minutesToDuration(at-start))
}

// FailoverStarted implements failsim.Recorder.
func (c *Collector) FailoverStarted(cluster int, at, until float64) {
	id := c.clusters[cluster]
	_ = c.store.RecordFailover(id.Provider, id.Class, minutesToDuration(until-at))
}

// ClusterBroken implements failsim.Recorder.
func (c *Collector) ClusterBroken(cluster int, at float64) {}

// ClusterRestored implements failsim.Recorder.
func (c *Collector) ClusterRestored(cluster int, at float64) {}

// Close books exposure for the traced horizon and closes any outages
// still open at the end of the trace. It must be called exactly once,
// after the replication finishes.
func (c *Collector) Close(horizon time.Duration) error {
	if c.closed {
		return fmt.Errorf("telemetry: collector already closed")
	}
	c.closed = true

	for key, start := range c.openOutage {
		id := c.clusters[key[0]]
		if err := c.store.RecordOutage(id.Provider, id.Class, horizon-minutesToDuration(start)); err != nil {
			return err
		}
	}
	c.openOutage = nil

	for i, id := range c.clusters {
		nodeTime := time.Duration(c.nodes[i]) * horizon
		if err := c.store.RecordExposure(id.Provider, id.Class, nodeTime); err != nil {
			return err
		}
	}
	return nil
}

// CollectorForSystem is a convenience constructor that derives the node
// counts from an availability.System and assigns every cluster i the
// bucket ids[i].
func CollectorForSystem(store *Store, sys availability.System, ids []ClusterID) (*Collector, error) {
	if len(ids) != len(sys.Clusters) {
		return nil, fmt.Errorf("telemetry: %d cluster IDs for %d clusters", len(ids), len(sys.Clusters))
	}
	nodes := make([]int, len(sys.Clusters))
	for i, cl := range sys.Clusters {
		nodes[i] = cl.Nodes
	}
	return NewCollector(store, ids, nodes)
}

package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/failsim"
)

func TestStoreEstimateBasics(t *testing.T) {
	s := NewStore()

	// No exposure yet: estimation fails.
	if _, err := s.Estimate("p", "c"); err == nil {
		t.Fatal("Estimate without exposure should fail")
	}

	// 10 node-years of exposure, 20 outages of 1 hour each.
	exposure := 10 * 365 * 24 * time.Hour
	if err := s.RecordExposure("p", "c", exposure); err != nil {
		t.Fatalf("RecordExposure: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := s.RecordOutage("p", "c", time.Hour); err != nil {
			t.Fatalf("RecordOutage: %v", err)
		}
	}

	params, err := s.Estimate("p", "c")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	wantDown := 20.0 / (10 * 365 * 24) // 20 down-hours over 10 years of hours
	if math.Abs(params.Node.Down-wantDown) > 1e-12 {
		t.Fatalf("Down = %v, want %v", params.Node.Down, wantDown)
	}
	if math.Abs(params.Node.FailuresPerYear-2) > 1e-9 {
		t.Fatalf("FailuresPerYear = %v, want 2", params.Node.FailuresPerYear)
	}
	if params.Failures != 20 {
		t.Fatalf("Failures = %d, want 20", params.Failures)
	}
	if math.Abs(params.ExposureYears-10.0) > 0.01 {
		t.Fatalf("ExposureYears = %v, want 10", params.ExposureYears)
	}
	if params.Failover != 0 || params.FailoverP95 != 0 {
		t.Fatal("failover estimates should be zero without failover samples")
	}
}

func TestStoreFailoverPercentiles(t *testing.T) {
	s := NewStore()
	if err := s.RecordExposure("p", "c", 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	// 10 windows of 1 minute, 10 of 21 minutes: mean = 11; the
	// nearest-rank p95 of 20 samples is the 19th smallest = 21.
	for i := 0; i < 10; i++ {
		if err := s.RecordFailover("p", "c", time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := s.RecordFailover("p", "c", 21*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	params, err := s.Estimate("p", "c")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if params.Failover != 11*time.Minute {
		t.Fatalf("mean failover = %v, want 11m", params.Failover)
	}
	if params.FailoverP95 != 21*time.Minute {
		t.Fatalf("p95 failover = %v, want 21m", params.FailoverP95)
	}
}

func TestStoreRejectsBadInputs(t *testing.T) {
	s := NewStore()
	if err := s.RecordExposure("p", "c", 0); err == nil {
		t.Fatal("zero exposure should fail")
	}
	if err := s.RecordExposure("p", "c", -time.Hour); err == nil {
		t.Fatal("negative exposure should fail")
	}
	if err := s.RecordOutage("p", "c", -time.Second); err == nil {
		t.Fatal("negative outage should fail")
	}
	if err := s.RecordFailover("p", "c", -time.Second); err == nil {
		t.Fatal("negative failover should fail")
	}
}

func TestStoreDetectsInconsistentFeeds(t *testing.T) {
	s := NewStore()
	if err := s.RecordExposure("p", "c", time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordOutage("p", "c", 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Estimate("p", "c"); err == nil {
		t.Fatal("outage exceeding exposure should fail estimation")
	}
}

func TestStoreBuckets(t *testing.T) {
	s := NewStore()
	_ = s.RecordExposure("b", "z", time.Hour)
	_ = s.RecordExposure("a", "y", time.Hour)
	_ = s.RecordExposure("a", "x", time.Hour)
	got := s.Buckets()
	want := [][2]string{{"a", "x"}, {"a", "y"}, {"b", "z"}}
	if len(got) != len(want) {
		t.Fatalf("Buckets() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Buckets() = %v, want %v", got, want)
		}
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.RecordExposure("p", "c", time.Hour)
				_ = s.RecordOutage("p", "c", time.Minute)
				_ = s.RecordFailover("p", "c", time.Second)
				_, _ = s.Estimate("p", "c")
				_ = s.Buckets()
			}
		}()
	}
	wg.Wait()
	params, err := s.Estimate("p", "c")
	if err != nil {
		t.Fatalf("Estimate after concurrency: %v", err)
	}
	if params.Failures != 800 {
		t.Fatalf("Failures = %d, want 800", params.Failures)
	}
}

func TestSmootherValidation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := NewSmoother(a); err == nil {
			t.Fatalf("NewSmoother(%v) should fail", a)
		}
	}
	if _, err := NewSmoother(0.3); err != nil {
		t.Fatalf("NewSmoother(0.3): %v", err)
	}
}

func TestSmootherConvergence(t *testing.T) {
	sm, err := NewSmoother(0.5)
	if err != nil {
		t.Fatal(err)
	}

	// First window is adopted wholesale.
	w1 := Params{Node: availability.NodeParams{Down: 0.10, FailuresPerYear: 10}, Failures: 5, ExposureYears: 1}
	got := sm.Update("p", "c", w1)
	if got.Node.Down != 0.10 {
		t.Fatalf("first window Down = %v, want 0.10", got.Node.Down)
	}

	// Repeated windows at a new level converge geometrically toward it:
	// the paper's claim that short-term skews smooth out.
	target := Params{Node: availability.NodeParams{Down: 0.02, FailuresPerYear: 4}, Failures: 2, ExposureYears: 1}
	var last Params
	for i := 0; i < 20; i++ {
		last = sm.Update("p", "c", target)
	}
	if math.Abs(last.Node.Down-0.02) > 1e-4 {
		t.Fatalf("smoothed Down = %v, want ≈ 0.02", last.Node.Down)
	}
	if math.Abs(last.Node.FailuresPerYear-4) > 1e-2 {
		t.Fatalf("smoothed f = %v, want ≈ 4", last.Node.FailuresPerYear)
	}
	// Exposure accumulates rather than being smoothed away.
	if last.ExposureYears < 20 {
		t.Fatalf("ExposureYears = %v, want >= 20", last.ExposureYears)
	}

	cur, ok := sm.Current("p", "c")
	if !ok || cur.Node.Down != last.Node.Down {
		t.Fatal("Current should return the latest blend")
	}
	if _, ok := sm.Current("p", "other"); ok {
		t.Fatal("Current for unknown bucket should report !ok")
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(nil, nil, nil); err == nil {
		t.Fatal("nil store should fail")
	}
	s := NewStore()
	if _, err := NewCollector(s, []ClusterID{{"p", "c"}}, []int{1, 2}); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	if _, err := NewCollector(s, []ClusterID{{"p", "c"}}, []int{0}); err == nil {
		t.Fatal("zero node count should fail")
	}
}

func TestCollectorEndToEndEstimates(t *testing.T) {
	// Feed the telemetry store from a traced simulation and check that
	// the estimated parameters recover the simulator's ground truth —
	// the broker's database converging on P_i, f_i, t_i.
	groundTruth := availability.Cluster{
		Name: "compute", Nodes: 4, Tolerated: 1,
		NodeDown: 0.01, FailuresPerYear: 12, Failover: 10 * time.Minute,
	}
	sys := availability.System{Clusters: []availability.Cluster{groundTruth}}

	store := NewStore()
	col, err := CollectorForSystem(store, sys, []ClusterID{{Provider: "softlayer-sim", Class: "vm.virtualized"}})
	if err != nil {
		t.Fatalf("CollectorForSystem: %v", err)
	}

	horizon := 50 * 365 * 24 * time.Hour // 50 years × 4 nodes = 200 node-years
	_, err = failsim.RunTraced(failsim.Config{
		System:       sys,
		Horizon:      horizon,
		Replications: 1,
		Seed:         424242,
	}, col)
	if err != nil {
		t.Fatalf("RunTraced: %v", err)
	}
	if err := col.Close(horizon); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := col.Close(horizon); err == nil {
		t.Fatal("second Close should fail")
	}

	params, err := store.Estimate("softlayer-sim", "vm.virtualized")
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	// ~2400 failures over 200 node-years: estimates should be tight.
	if rel := math.Abs(params.Node.Down-groundTruth.NodeDown) / groundTruth.NodeDown; rel > 0.15 {
		t.Fatalf("estimated Down = %v, truth %v (rel err %.2f)", params.Node.Down, groundTruth.NodeDown, rel)
	}
	if rel := math.Abs(params.Node.FailuresPerYear-groundTruth.FailuresPerYear) / groundTruth.FailuresPerYear; rel > 0.1 {
		t.Fatalf("estimated f = %v, truth %v (rel err %.2f)", params.Node.FailuresPerYear, groundTruth.FailuresPerYear, rel)
	}
	// Failover windows are deterministic in the simulator.
	if d := params.Failover - groundTruth.Failover; d < -time.Second || d > time.Second {
		t.Fatalf("estimated failover = %v, truth %v", params.Failover, groundTruth.Failover)
	}
	if params.ExposureYears < 199 || params.ExposureYears > 201 {
		t.Fatalf("ExposureYears = %v, want ≈ 200", params.ExposureYears)
	}
}

func TestCollectorForSystemLengthMismatch(t *testing.T) {
	sys := availability.System{Clusters: []availability.Cluster{
		{Name: "a", Nodes: 1, NodeDown: 0.01},
	}}
	if _, err := CollectorForSystem(NewStore(), sys, nil); err == nil {
		t.Fatal("mismatched IDs should fail")
	}
}

func TestStoreEpoch(t *testing.T) {
	s := NewStore()
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", got)
	}
	if err := s.RecordExposure("p", "c", time.Hour); err != nil {
		t.Fatalf("RecordExposure: %v", err)
	}
	e1 := s.Epoch()
	if e1 == 0 {
		t.Fatal("RecordExposure did not bump epoch")
	}
	if err := s.RecordOutage("p", "c", time.Minute); err != nil {
		t.Fatalf("RecordOutage: %v", err)
	}
	if err := s.RecordFailover("p", "c", time.Second); err != nil {
		t.Fatalf("RecordFailover: %v", err)
	}
	e2 := s.Epoch()
	if e2 != e1+2 {
		t.Fatalf("epoch after outage+failover = %d, want %d", e2, e1+2)
	}
	// Rejected observations change nothing and leave the epoch alone.
	if err := s.RecordExposure("p", "c", 0); err == nil {
		t.Fatal("zero exposure should be rejected")
	}
	if got := s.Epoch(); got != e2 {
		t.Fatalf("rejected observation moved epoch %d -> %d", e2, got)
	}
}

package telemetry

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func seededStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.RecordExposure("p1", "vm", 1000*time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordOutage("p1", "vm", 3*time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordFailover("p1", "vm", 90*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordExposure("p2", "disk", 500*time.Hour); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := seededStore(t)
	var sb strings.Builder
	if err := orig.Save(&sb); err != nil {
		t.Fatalf("Save: %v", err)
	}

	restored := NewStore()
	if err := restored.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("Load: %v", err)
	}

	for _, bucket := range orig.Buckets() {
		want, err := orig.Estimate(bucket[0], bucket[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Estimate(bucket[0], bucket[1])
		if err != nil {
			t.Fatalf("restored Estimate(%v): %v", bucket, err)
		}
		if got != want {
			t.Fatalf("estimate drift for %v:\n got %+v\nwant %+v", bucket, got, want)
		}
	}
	if len(restored.Buckets()) != len(orig.Buckets()) {
		t.Fatal("bucket count drift")
	}
}

func TestSaveDeterministicOrder(t *testing.T) {
	s := seededStore(t)
	var a, b strings.Builder
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Save output not deterministic")
	}
	if !strings.Contains(a.String(), `"version": 1`) {
		t.Fatalf("snapshot missing version:\n%s", a.String())
	}
}

func TestLoadRejectsBadSnapshots(t *testing.T) {
	cases := map[string]string{
		"not json":          "{oops",
		"wrong version":     `{"version": 99, "series": []}`,
		"missing key":       `{"version": 1, "series": [{"provider": "", "class": "c"}]}`,
		"negative exposure": `{"version": 1, "series": [{"provider": "p", "class": "c", "exposure_minutes": -1}]}`,
		"duplicate":         `{"version": 1, "series": [{"provider": "p", "class": "c", "exposure_minutes": 1}, {"provider": "p", "class": "c", "exposure_minutes": 2}]}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			s := NewStore()
			if err := s.Load(strings.NewReader(payload)); err == nil {
				t.Fatal("Load accepted a bad snapshot")
			}
		})
	}
}

func TestLoadReplacesExistingState(t *testing.T) {
	s := seededStore(t)
	if err := s.Load(strings.NewReader(`{"version": 1, "series": []}`)); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := len(s.Buckets()); got != 0 {
		t.Fatalf("buckets after empty load = %d, want 0", got)
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.json")

	orig := seededStore(t)
	if err := orig.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	restored := NewStore()
	if err := restored.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	want, _ := orig.Estimate("p1", "vm")
	got, err := restored.Estimate("p1", "vm")
	if err != nil || got != want {
		t.Fatalf("file round trip drift: %+v vs %+v (%v)", got, want, err)
	}

	// Temp files must not linger.
	entries, err := filepath.Glob(filepath.Join(dir, ".telemetry-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover temp files: %v", entries)
	}

	if err := restored.LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadFile on missing path should fail")
	}
}

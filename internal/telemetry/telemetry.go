// Package telemetry is the broker's observational database. The paper
// (Section II.C) argues the broker sits at a cross-cloud, cross-customer
// vantage point and can therefore "determine and maintain a database
// of" the node down-probabilities P_i, failure frequencies f_i and
// failover times t_i that the availability model consumes.
//
// The Store aggregates raw outage and failover observations keyed by
// (provider, component class) and turns them into parameter estimates.
// The Smoother applies exponential smoothing across estimation windows,
// implementing the paper's Section IV argument that short-term skews
// "smooth out over the long term".
package telemetry

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"uptimebroker/internal/availability"
)

// seriesKey identifies one aggregation bucket.
type seriesKey struct {
	provider string
	class    string
}

// series accumulates raw observations for one (provider, class).
type series struct {
	exposureMinutes float64 // total node-minutes under observation
	downMinutes     float64
	failures        int
	failoverMinutes []float64 // individual failover window lengths
}

// Store aggregates observations. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	series map[seriesKey]*series

	// epoch counts mutations (records and snapshot loads). Estimates
	// derived from the store are valid for exactly one epoch value, so
	// content-addressed caches over telemetry-fed computations embed it
	// in their keys.
	epoch atomic.Uint64
}

// Epoch returns the store's mutation generation: bumped by every
// recorded observation and by Load. Derivations that embed the epoch
// (the broker's recommendation cache keys) go stale the moment a new
// observation could move a parameter estimate.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{series: make(map[seriesKey]*series)}
}

func (s *Store) bucket(provider, class string) *series {
	k := seriesKey{provider: provider, class: class}
	b, ok := s.series[k]
	if !ok {
		b = &series{}
		s.series[k] = b
	}
	return b
}

// RecordExposure adds observed node-time for a bucket: monitoring n
// nodes for a window contributes n × window of exposure. Estimates are
// undefined until some exposure is recorded.
func (s *Store) RecordExposure(provider, class string, nodeTime time.Duration) error {
	if nodeTime <= 0 {
		return fmt.Errorf("telemetry: exposure %v, must be > 0", nodeTime)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bucket(provider, class).exposureMinutes += nodeTime.Minutes()
	s.epoch.Add(1)
	return nil
}

// RecordOutage adds one node outage of the given duration.
func (s *Store) RecordOutage(provider, class string, downFor time.Duration) error {
	if downFor < 0 {
		return fmt.Errorf("telemetry: outage duration %v, must be >= 0", downFor)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bucket(provider, class)
	b.downMinutes += downFor.Minutes()
	b.failures++
	s.epoch.Add(1)
	return nil
}

// RecordFailover adds one observed failover window.
func (s *Store) RecordFailover(provider, class string, window time.Duration) error {
	if window < 0 {
		return fmt.Errorf("telemetry: failover window %v, must be >= 0", window)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bucket(provider, class)
	b.failoverMinutes = append(b.failoverMinutes, window.Minutes())
	s.epoch.Add(1)
	return nil
}

// Params is an estimated parameter set for one (provider, class).
type Params struct {
	// Node carries the estimated P (down probability) and f
	// (failures/year) for a single node of this class.
	Node availability.NodeParams

	// Failover is the mean observed failover window; zero when no
	// failovers were observed.
	Failover time.Duration

	// FailoverP95 is the 95th-percentile failover window, the
	// conservative figure a broker would quote in an SLA conversation.
	FailoverP95 time.Duration

	// Failures is the number of outages behind the estimate.
	Failures int

	// ExposureYears is the node-years of observation behind the
	// estimate; larger is more trustworthy.
	ExposureYears float64
}

// ErrNoEstimate reports a bucket with no usable observation behind
// it — a normal condition callers typically answer with a fallback
// (catalog defaults), as opposed to the store's data-integrity
// errors, which are faults.
var ErrNoEstimate = errors.New("telemetry: no estimate")

// Estimate derives Params for a bucket. It fails with ErrNoEstimate
// (test via errors.Is) when the bucket has no recorded exposure.
func (s *Store) Estimate(provider, class string) (Params, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.series[seriesKey{provider: provider, class: class}]
	if !ok || b.exposureMinutes <= 0 {
		return Params{}, fmt.Errorf("%w: no exposure recorded for %s/%s", ErrNoEstimate, provider, class)
	}

	down := b.downMinutes / b.exposureMinutes
	if down >= 1 {
		// Outages exceeding exposure indicate inconsistent feeding;
		// clamp below 1 so the params stay usable and flag via error.
		return Params{}, fmt.Errorf("telemetry: %s/%s: outage time %.1fmin exceeds exposure %.1fmin",
			provider, class, b.downMinutes, b.exposureMinutes)
	}
	exposureYears := b.exposureMinutes / availability.MinutesPerYear

	p := Params{
		Node: availability.NodeParams{
			Down:            down,
			FailuresPerYear: float64(b.failures) / exposureYears,
		},
		Failures:      b.failures,
		ExposureYears: exposureYears,
	}
	if n := len(b.failoverMinutes); n > 0 {
		total := 0.0
		for _, m := range b.failoverMinutes {
			total += m
		}
		p.Failover = minutesToDuration(total / float64(n))
		p.FailoverP95 = minutesToDuration(percentile(b.failoverMinutes, 0.95))
	}
	return p, nil
}

// Buckets returns the (provider, class) pairs with recorded data,
// sorted for deterministic iteration.
func (s *Store) Buckets() [][2]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][2]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, [2]string{k.provider, k.class})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// percentile returns the q-quantile (0 < q <= 1) of the samples using
// nearest-rank on a sorted copy.
func percentile(samples []float64, q float64) float64 {
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func minutesToDuration(m float64) time.Duration {
	return time.Duration(m * float64(time.Minute))
}

// Smoother blends successive estimation windows with exponential
// smoothing: blended = alpha·new + (1-alpha)·old. It models the
// long-term convergence argument of the paper's threats-to-validity
// section — single-window skews decay geometrically.
type Smoother struct {
	// Alpha is the weight of the newest window, in (0, 1].
	Alpha float64

	mu      sync.Mutex
	current map[seriesKey]Params
	primed  map[seriesKey]bool
}

// NewSmoother returns a smoother with the given alpha.
func NewSmoother(alpha float64) (*Smoother, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("telemetry: alpha %v, must be in (0, 1]", alpha)
	}
	return &Smoother{
		Alpha:   alpha,
		current: make(map[seriesKey]Params),
		primed:  make(map[seriesKey]bool),
	}, nil
}

// Update blends a new window estimate into the smoothed view and
// returns the blended params. The first window for a bucket is adopted
// wholesale.
func (sm *Smoother) Update(provider, class string, window Params) Params {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	k := seriesKey{provider: provider, class: class}
	if !sm.primed[k] {
		sm.primed[k] = true
		sm.current[k] = window
		return window
	}
	old := sm.current[k]
	a := sm.Alpha
	blended := Params{
		Node: availability.NodeParams{
			Down:            a*window.Node.Down + (1-a)*old.Node.Down,
			FailuresPerYear: a*window.Node.FailuresPerYear + (1-a)*old.Node.FailuresPerYear,
		},
		Failover:      blendDuration(window.Failover, old.Failover, a),
		FailoverP95:   blendDuration(window.FailoverP95, old.FailoverP95, a),
		Failures:      window.Failures + old.Failures,
		ExposureYears: window.ExposureYears + old.ExposureYears,
	}
	sm.current[k] = blended
	return blended
}

// Current returns the smoothed params for a bucket.
func (sm *Smoother) Current(provider, class string) (Params, bool) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	k := seriesKey{provider: provider, class: class}
	p, ok := sm.current[k]
	return p, ok
}

func blendDuration(newer, older time.Duration, a float64) time.Duration {
	return time.Duration(a*float64(newer) + (1-a)*float64(older))
}

package benchreport

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"uptimebroker/internal/jobstore"
	"uptimebroker/internal/optimize"
)

// Spec is one runnable scenario definition. Setup prepares the
// workload in a scratch directory and returns the per-iteration run
// function plus a cleanup; the harness times run only.
type Spec struct {
	Name    string
	Group   string
	Tracked bool
	Setup   func(scratch string) (run runFunc, cleanup func(), err error)

	// Extra, when non-nil, is sampled once after the measurement and
	// attached to the scenario (latency percentiles, hit rates). The
	// callback sees whatever state the last run left behind.
	Extra func() map[string]float64
}

// pricingProblem builds the n-component instance shared by the
// pricing and solver scenarios: optimize.BenchProblem at the
// canonical SLA, the exact shape the optimize package's
// BenchmarkAllPricing / solver benchmarks measure, so the committed
// BENCH_*.json trajectory and the in-repo benchmarks stay about the
// same workload by construction.
func pricingProblem(n int) *optimize.Problem {
	return optimize.BenchProblem(n, optimize.BenchSLAPercent)
}

// pricingSpec builds one card-pricing scenario: the full k^n
// enumeration, sequential or parallel.
func pricingSpec(n int, parallel bool) Spec {
	mode := "sequential"
	if parallel {
		mode = "parallel"
	}
	return Spec{
		Name:    fmt.Sprintf("pricing/%s/n=%d", mode, n),
		Group:   "pricing",
		Tracked: true,
		Setup: func(string) (runFunc, func(), error) {
			p := pricingProblem(n)
			space := p.SpaceSize()
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					var (
						cands []optimize.Candidate
						err   error
					)
					if parallel {
						cands, err = p.ParallelAllContext(context.Background(), 0)
					} else {
						cands, err = p.AllContext(context.Background())
					}
					if err != nil {
						return err
					}
					if len(cands) != space {
						return fmt.Errorf("pricing returned %d candidates, want %d", len(cands), space)
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// evalSpec builds the incremental-vs-scratch engine scenario: the
// same full-space n=19 search, re-deriving every candidate through
// Problem.Evaluate (scratch — the reference oracle and PR 4's
// engine) or advancing the compiled evaluator (incremental). Both are
// single-threaded, so the derived eval_incremental_speedup_n19 ratio
// is a pure algorithmic win CI can floor on any host, 1-core runners
// included.
func evalSpec(incremental bool) Spec {
	mode := "scratch"
	if incremental {
		mode = "incremental"
	}
	return Spec{
		Name:  fmt.Sprintf("eval/%s/n=19", mode),
		Group: "eval",
		// The scratch reference is measured but untracked: it exists to
		// anchor the ratio, not to be optimized.
		Tracked: incremental,
		Setup: func(string) (runFunc, func(), error) {
			p := pricingProblem(19)
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					var err error
					if incremental {
						_, err = p.ExhaustiveContext(context.Background())
					} else {
						_, err = p.ExhaustiveScratch(context.Background())
					}
					if err != nil {
						return err
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// streamSpec measures the streaming pricing pass: every candidate
// folded online through StreamContext with O(1) memory — the
// counterpart of pricing/sequential/n=19's materialized O(k^n) slice,
// and the engine under broker.Pareto's single-pass rewrite.
func streamSpec() Spec {
	return Spec{
		Name:    "pricing/stream/n=19",
		Group:   "pricing",
		Tracked: true,
		Setup: func(string) (runFunc, func(), error) {
			p := pricingProblem(19)
			space := p.SpaceSize()
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					seen := 0
					err := p.StreamContext(context.Background(), func(*optimize.Cursor) error {
						seen++
						return nil
					})
					if err != nil {
						return err
					}
					if seen != space {
						return fmt.Errorf("stream visited %d candidates, want %d", seen, space)
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// solverSpec builds one effort-stats solver scenario on the SLA-dense
// n=19 instance.
func solverSpec(strategy string) Spec {
	return Spec{
		Name:    fmt.Sprintf("solver/%s/n=19", strategy),
		Group:   "solver",
		Tracked: true,
		Setup: func(string) (runFunc, func(), error) {
			p := pricingProblem(19)
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					if _, err := optimize.Solve(context.Background(), p, strategy); err != nil {
						return err
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// anytimeSpec builds one anytime-lane scenario: the SLA-dense n=30
// wide instance (2^30 candidates, ~4000x beyond what the exact lane
// enumerates in the same time) solved under the acceptance budget of
// 500ms wall on whatever cores the host grants. The measurement is
// the usual ns/op; the certificate of the last run rides along in
// Extra, and the derived *_n30_gap quality ratios floor it in CI —
// the suite fails loudly if an anytime strategy stops certifying
// near-optimality within budget, not just if it gets slower.
func anytimeSpec(strategy string) Spec {
	var last optimize.Result
	var lastNs int64
	return Spec{
		Name:    fmt.Sprintf("solver/%s/n=30", strategy),
		Group:   "solver",
		Tracked: true,
		Setup: func(string) (runFunc, func(), error) {
			p := optimize.BenchProblem(optimize.BenchWideN, optimize.BenchSLAWidePercent)
			cfg := optimize.SolverConfig{
				Strategy: strategy,
				Budget:   optimize.Budget{Wall: 500 * time.Millisecond},
			}
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					start := time.Now()
					res, err := optimize.SolveConfig(context.Background(), p, cfg)
					if err != nil {
						return err
					}
					lastNs = time.Since(start).Nanoseconds()
					last = res
				}
				return nil
			}, func() {}, nil
		},
		Extra: func() map[string]float64 {
			extra := map[string]float64{
				"bound_usd":      last.Bound.Dollars(),
				"time_to_gap_ms": float64(lastNs) / 1e6,
			}
			// An infinite gap (no lower bound proven) is left out rather
			// than serialized: JSON has no Inf, and a missing "gap" key
			// fails the -require floor with an unknown-ratio error, which
			// is the right kind of loud.
			if !math.IsInf(last.Gap, 1) {
				extra["gap"] = last.Gap
			}
			if last.BudgetExhausted {
				extra["budget_exhausted"] = 1
			}
			if last.Optimal {
				extra["optimal"] = 1
			}
			return extra
		},
	}
}

// supersetIndexSpec builds one pruned-level-search scenario pinned to
// a specific superset-index implementation, on the SLA-dense n=19
// instance or its deeper adversarial variant (minimal met level 8,
// C(19,8) = 75582 met assignments). "pointer" is the previous
// pointer-linked trie, "flat" the arena trie with checkpoint resume
// disabled; the production flat+checkpointed path is the existing
// solver/pruned scenario, so the derived trie_flat_speedup ratios
// split the arena-layout win from the changed-suffix amortization.
// The reference scenarios are measured but untracked: they exist to
// anchor the ratios, not to be optimized.
func supersetIndexSpec(variant string, deep bool) Spec {
	name := fmt.Sprintf("solver/pruned-%s/n=19", variant)
	sla := optimize.BenchSLAPercent
	if deep {
		name = fmt.Sprintf("solver/pruned-%s-deep/n=19", variant)
		sla = optimize.BenchSLADeepPercent
	}
	return Spec{
		Name:    name,
		Group:   "solver",
		Tracked: false,
		Setup: func(string) (runFunc, func(), error) {
			p := optimize.BenchProblem(19, sla)
			search := p.PrunedPointerTrie
			if variant == "flat" {
				search = p.PrunedFlatRescan
			}
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					if _, err := search(context.Background()); err != nil {
						return err
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// prunedDeepSpec is the production flat+checkpointed level search on
// the deeper adversarial instance — the tracked counterpart the deep
// ratio measures the pointer trie against.
func prunedDeepSpec() Spec {
	return Spec{
		Name:    "solver/pruned-deep/n=19",
		Group:   "solver",
		Tracked: true,
		Setup: func(string) (runFunc, func(), error) {
			p := optimize.BenchProblem(19, optimize.BenchSLADeepPercent)
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					if _, err := p.PrunedContext(context.Background()); err != nil {
						return err
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// appendSpec measures the job store's WAL append path, with or
// without per-append fsync (brokerd -fsync).
func appendSpec(fsync bool) Spec {
	mode := "nosync"
	var opts []jobstore.FileOption
	if fsync {
		mode = "fsync"
		opts = []jobstore.FileOption{jobstore.WithFsync()}
	}
	return Spec{
		Name:    "jobstore/append/" + mode,
		Group:   "jobstore",
		Tracked: true,
		Setup: func(scratch string) (runFunc, func(), error) {
			backend, err := jobstore.OpenFile(scratch, opts...)
			if err != nil {
				return nil, nil, err
			}
			payload := json.RawMessage(`{"sla_percent":98,"penalty_per_hour_usd":100}`)
			now := time.Unix(1_700_000_000, 0)
			seq := uint64(0)
			return func(iters int) error {
					for i := 0; i < iters; i++ {
						seq++
						ev := jobstore.Event{
							Type:    jobstore.EventSubmitted,
							Time:    now,
							ID:      fmt.Sprintf("job-%08d", seq),
							Seq:     seq,
							Kind:    "recommend",
							Payload: payload,
						}
						if err := backend.Append(ev); err != nil {
							return err
						}
					}
					return nil
				}, func() {
					_ = backend.Close()
				}, nil
		},
	}
}

// concurrentAppendSpec measures the WAL append path under 8
// concurrent appenders — the shape a busy brokerd sees. The
// interesting split is per-append fsync versus group commit: both
// give power-loss durability, but group commit coalesces the
// concurrent flushes, and the derived group_commit_speedup ratio is
// the throughput the -group-commit flag recovers.
func concurrentAppendSpec(group bool) Spec {
	mode := "fsync-concurrent"
	opts := []jobstore.FileOption{jobstore.WithFsync()}
	if group {
		mode = "group-commit"
		opts = []jobstore.FileOption{jobstore.WithGroupCommit()}
	}
	return Spec{
		Name:    "jobstore/append/" + mode,
		Group:   "jobstore",
		Tracked: true,
		Setup: func(scratch string) (runFunc, func(), error) {
			backend, err := jobstore.OpenFile(scratch, opts...)
			if err != nil {
				return nil, nil, err
			}
			payload := json.RawMessage(`{"sla_percent":98,"penalty_per_hour_usd":100}`)
			now := time.Unix(1_700_000_000, 0)
			var seq atomic.Uint64
			const writers = 8
			return func(iters int) error {
					var wg sync.WaitGroup
					errs := make([]error, writers)
					for w := 0; w < writers; w++ {
						count := iters / writers
						if w < iters%writers {
							count++
						}
						wg.Add(1)
						go func(w, count int) {
							defer wg.Done()
							for i := 0; i < count; i++ {
								n := seq.Add(1)
								ev := jobstore.Event{
									Type:    jobstore.EventSubmitted,
									Time:    now,
									ID:      fmt.Sprintf("job-%08d", n),
									Seq:     n,
									Kind:    "recommend",
									Payload: payload,
								}
								if err := backend.Append(ev); err != nil {
									errs[w] = err
									return
								}
							}
						}(w, count)
					}
					wg.Wait()
					for _, err := range errs {
						if err != nil {
							return err
						}
					}
					return nil
				}, func() {
					_ = backend.Close()
				}, nil
		},
	}
}

// recoverySpec measures reopening a data directory whose WAL holds
// 1000 complete job lifecycles — the startup cost a broker restart
// pays before serving.
func recoverySpec() Spec {
	return Spec{
		Name:    "jobstore/recovery/1000jobs",
		Group:   "jobstore",
		Tracked: true,
		Setup: func(scratch string) (runFunc, func(), error) {
			backend, err := jobstore.OpenFile(scratch)
			if err != nil {
				return nil, nil, err
			}
			now := time.Unix(1_700_000_000, 0)
			result := json.RawMessage(`{"best_option":3}`)
			for i := 0; i < 1000; i++ {
				id := fmt.Sprintf("job-%08d", i+1)
				events := []jobstore.Event{
					{Type: jobstore.EventSubmitted, Time: now, ID: id, Seq: uint64(i + 1), Kind: "recommend"},
					{Type: jobstore.EventStarted, Time: now, ID: id},
					{Type: jobstore.EventProgress, Time: now, ID: id, Evaluated: 8, SpaceSize: 16},
					{Type: jobstore.EventFinished, Time: now, ID: id, State: jobstore.StateDone, Result: result},
				}
				for _, ev := range events {
					if err := backend.Append(ev); err != nil {
						_ = backend.Close()
						return nil, nil, err
					}
				}
			}
			if err := backend.Close(); err != nil {
				return nil, nil, err
			}
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					reopened, err := jobstore.OpenFile(scratch)
					if err != nil {
						return err
					}
					snap, err := reopened.Load()
					if err != nil {
						return err
					}
					if len(snap.Jobs) != 1000 {
						return fmt.Errorf("recovered %d jobs, want 1000", len(snap.Jobs))
					}
					if err := reopened.Close(); err != nil {
						return err
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// Suite is the named scenario set a report covers. Order is stable;
// comparisons join on scenario name, not position.
func Suite() []Spec {
	specs := []Spec{
		pricingSpec(12, false), pricingSpec(12, true),
		pricingSpec(16, false), pricingSpec(16, true),
		pricingSpec(19, false), pricingSpec(19, true),
		streamSpec(),
		evalSpec(false), evalSpec(true),
		solverSpec(optimize.StrategyPruned),
		solverSpec(optimize.StrategyParallelPruned),
		solverSpec(optimize.StrategyBranchAndBound),
		anytimeSpec(optimize.StrategyBeam),
		anytimeSpec(optimize.StrategyBounded),
		supersetIndexSpec("pointer", false), supersetIndexSpec("flat", false),
		prunedDeepSpec(), supersetIndexSpec("pointer", true),
		appendSpec(false), appendSpec(true),
		concurrentAppendSpec(false), concurrentAppendSpec(true),
		recoverySpec(),
		cacheSpec(false), cacheSpec(true),
		concurrentV2Spec(),
		obsSpec(false), obsSpec(true),
	}
	return specs
}

// ratioSpecs are the derived comparisons computed over a run's
// scenarios. A ratio is emitted only when both scenarios ran.
var ratioSpecs = []Ratio{
	{Name: "pricing_parallel_speedup_n12", Numerator: "pricing/sequential/n=12", Denominator: "pricing/parallel/n=12", HigherIsBetter: true},
	{Name: "pricing_parallel_speedup_n16", Numerator: "pricing/sequential/n=16", Denominator: "pricing/parallel/n=16", HigherIsBetter: true},
	{Name: "pricing_parallel_speedup_n19", Numerator: "pricing/sequential/n=19", Denominator: "pricing/parallel/n=19", HigherIsBetter: true},
	{Name: "eval_incremental_speedup_n19", Numerator: "eval/scratch/n=19", Denominator: "eval/incremental/n=19", HigherIsBetter: true},
	{Name: "pricing_stream_speedup_n19", Numerator: "pricing/sequential/n=19", Denominator: "pricing/stream/n=19", HigherIsBetter: true},
	{Name: "parallel_pruned_speedup_n19", Numerator: "solver/pruned/n=19", Denominator: "solver/parallel-pruned/n=19", HigherIsBetter: true},
	{Name: "trie_flat_speedup_n19", Numerator: "solver/pruned-pointer/n=19", Denominator: "solver/pruned/n=19", HigherIsBetter: true},
	{Name: "trie_checkpoint_speedup_n19", Numerator: "solver/pruned-flat/n=19", Denominator: "solver/pruned/n=19", HigherIsBetter: true},
	{Name: "trie_flat_deep_speedup_n19", Numerator: "solver/pruned-pointer-deep/n=19", Denominator: "solver/pruned-deep/n=19", HigherIsBetter: true},
	{Name: "fsync_cost_x", Numerator: "jobstore/append/fsync", Denominator: "jobstore/append/nosync", HigherIsBetter: false},
	{Name: "group_commit_speedup", Numerator: "jobstore/append/fsync-concurrent", Denominator: "jobstore/append/group-commit", HigherIsBetter: true},
	{Name: "cache_hit_speedup", Numerator: "cache/miss/n=19", Denominator: "cache/hit/n=19", HigherIsBetter: true},
	{Name: "obs_overhead_headroom", Numerator: "obs/uninstrumented/n=16", Denominator: "obs/instrumented/n=16", HigherIsBetter: true},
}

// qualityRatios are derived quality (not speed) figures: each lifts
// one Extra key of one scenario into the ratio table so requirements
// can floor it — Extra itself is invisible to comparisons. They carry
// HigherIsBetter: false (a shrinking certified gap is improvement),
// so Compare never gates them; the -require ceiling does.
var qualityRatios = []struct {
	Name     string
	Scenario string
	Key      string
}{
	{Name: "beam_n30_gap", Scenario: "solver/beam/n=30", Key: "gap"},
	{Name: "bounded_n30_gap", Scenario: "solver/bounded/n=30", Key: "gap"},
}

// Options configures one suite run.
type Options struct {
	// Label names the run in the report (e.g. "pr4").
	Label string

	// BenchTime is the per-scenario measurement budget (default 1s).
	BenchTime time.Duration

	// Filter restricts the run to scenarios whose name it matches;
	// nil runs everything.
	Filter *regexp.Regexp

	// Log receives human-readable progress lines; nil discards them.
	Log func(format string, args ...any)
}

// Run executes the (optionally filtered) suite and assembles the
// report. Scenarios whose ratio counterpart was filtered out simply
// produce no ratio — nothing fails.
func Run(opts Options) (Report, error) {
	if opts.BenchTime <= 0 {
		opts.BenchTime = time.Second
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	report := Report{
		SchemaVersion: SchemaVersion,
		Label:         opts.Label,
		GoVersion:     runtime.Version(),
		BenchTime:     opts.BenchTime.String(),
		Host:          CurrentHost(),
	}

	for _, spec := range Suite() {
		if opts.Filter != nil && !opts.Filter.MatchString(spec.Name) {
			continue
		}
		scratch, err := os.MkdirTemp("", "benchreport-*")
		if err != nil {
			return Report{}, err
		}
		sc, err := runSpec(spec, scratch, opts.BenchTime)
		_ = os.RemoveAll(scratch)
		if err != nil {
			return Report{}, fmt.Errorf("benchreport: scenario %s: %w", spec.Name, err)
		}
		logf("%-32s %12d ns/op  %8d allocs/op  (%d iterations)",
			spec.Name, sc.NsPerOp, sc.AllocsPerOp, sc.Iterations)
		report.Scenarios = append(report.Scenarios, sc)
	}

	for _, rs := range ratioSpecs {
		num, okN := report.Scenario(rs.Numerator)
		den, okD := report.Scenario(rs.Denominator)
		if !okN || !okD || den.NsPerOp == 0 {
			continue
		}
		rs.Value = float64(num.NsPerOp) / float64(den.NsPerOp)
		logf("%-32s %12.2fx  (%s / %s)", rs.Name, rs.Value, rs.Numerator, rs.Denominator)
		report.Ratios = append(report.Ratios, rs)
	}

	for _, qs := range qualityRatios {
		sc, ok := report.Scenario(qs.Scenario)
		if !ok {
			continue
		}
		value, ok := sc.Extra[qs.Key]
		if !ok {
			continue
		}
		r := Ratio{Name: qs.Name, Numerator: qs.Scenario, Denominator: "extra:" + qs.Key, Value: value}
		logf("%-32s %12.4f   (%s %s)", r.Name, r.Value, qs.Scenario, qs.Key)
		report.Ratios = append(report.Ratios, r)
	}
	return report, nil
}

// runSpec prepares and measures one scenario.
func runSpec(spec Spec, scratch string, benchTime time.Duration) (Scenario, error) {
	run, cleanup, err := spec.Setup(scratch)
	if err != nil {
		return Scenario{}, err
	}
	defer cleanup()
	sc, err := measure(run, benchTime)
	if err != nil {
		return Scenario{}, err
	}
	sc.Name = spec.Name
	sc.Group = spec.Group
	sc.Tracked = spec.Tracked
	if spec.Extra != nil {
		sc.Extra = spec.Extra()
	}
	return sc, nil
}

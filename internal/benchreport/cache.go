package benchreport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/httpapi"
	"uptimebroker/internal/reccache"
	"uptimebroker/internal/topology"
)

// cacheRequest builds the n-component brokerage request behind the
// cache scenarios: n compute components restricted to one HA
// technology each, so the candidate space is the same 2^n shape the
// pricing and solver scenarios measure — but driven through the full
// broker entry point the cache fronts.
func cacheRequest(n int, slaPercent float64) broker.Request {
	comps := make([]topology.Component, n)
	allowed := make(map[string][]string, n)
	for i := range comps {
		name := fmt.Sprintf("c%02d", i)
		comps[i] = topology.Component{Name: name, Layer: topology.LayerCompute, ActiveNodes: 1}
		allowed[name] = []string{catalog.TechESXHA}
	}
	return broker.Request{
		Base: topology.System{
			Name:       "cache-bench",
			Provider:   catalog.ProviderSoftLayerSim,
			Components: comps,
		},
		SLA: cost.SLA{
			UptimePercent: slaPercent,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(100)},
		},
		AllowedTechs: allowed,
	}
}

// cachedEngine builds a default-catalog engine fronted by a result
// cache, returning the catalog too so miss scenarios can invalidate.
func cachedEngine() (*broker.Engine, *catalog.Catalog, error) {
	cat := catalog.Default()
	e, err := broker.New(cat, broker.CatalogParams{Catalog: cat},
		broker.WithResultCache(reccache.New(reccache.Config{})))
	return e, cat, err
}

// cacheSpec measures one side of the result cache on the n=19
// request: hit answers repeated identical requests from memory,
// miss bumps the catalog epoch before every call so each request is
// a fresh content address and pays the full compile + pricing +
// solver pipeline (plus the cache's own keying and insertion — the
// honest miss cost). The derived cache_hit_speedup ratio is the
// headline CI floors on.
func cacheSpec(hit bool) Spec {
	mode := "miss"
	if hit {
		mode = "hit"
	}
	return Spec{
		Name:    fmt.Sprintf("cache/%s/n=19", mode),
		Group:   "cache",
		Tracked: true,
		Setup: func(string) (runFunc, func(), error) {
			e, cat, err := cachedEngine()
			if err != nil {
				return nil, nil, err
			}
			req := cacheRequest(19, 98)
			// Warm so the hit runs never see the initial miss.
			if _, err := e.Recommend(context.Background(), req); err != nil {
				return nil, nil, err
			}
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					if !hit {
						cat.Invalidate()
					}
					rec, err := e.Recommend(context.Background(), req)
					if err != nil {
						return err
					}
					if rec.BestOption == 0 {
						return fmt.Errorf("recommendation has no best option")
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

// v2Stats accumulates the concurrent scenario's per-request
// latencies and cache dispositions; each timed run resets it, so the
// sampled extras describe the final (longest) run.
type v2Stats struct {
	mu        sync.Mutex
	latencies []time.Duration
	hits      int
	misses    int
	shared    int
}

func (s *v2Stats) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latencies = s.latencies[:0]
	s.hits, s.misses, s.shared = 0, 0, 0
}

func (s *v2Stats) record(lat time.Duration, disposition string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latencies = append(s.latencies, lat)
	switch disposition {
	case "hit":
		s.hits++
	case "miss":
		s.misses++
	case "shared":
		s.shared++
	}
}

// extras derives the percentile and hit-rate metrics from the last
// run's samples.
func (s *v2Stats) extras() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.latencies) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), s.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return float64(sorted[idx].Nanoseconds())
	}
	total := s.hits + s.misses + s.shared
	m := map[string]float64{
		"requests": float64(len(sorted)),
		"p50_ns":   pct(0.50),
		"p99_ns":   pct(0.99),
	}
	if total > 0 {
		m["hit_rate"] = float64(s.hits+s.shared) / float64(total)
	}
	return m
}

// concurrentV2Workers is how many requests are kept in flight at
// once — the "hundreds of concurrent identical requests" shape the
// singleflight layer exists for.
const concurrentV2Workers = 200

// concurrentV2Spec measures the service under concurrent load: a
// full httpapi server (middleware, JSON codec, cached engine) hit by
// hundreds of simultaneous v2 recommendation requests, four fifths
// identical (the hot key the cache collapses) and one fifth spread
// over a small set of SLA variants (each cached after its first
// computation). One operation is one HTTP round trip; the extras
// report the p50/p99 client-observed latency and the cache hit rate
// of the final run. The instance is n=8 (256 cards): large enough
// for real responses, small enough that the per-request JSON
// serialization does not drown the concurrency behavior the
// scenario isolates.
func concurrentV2Spec() Spec {
	st := &v2Stats{}
	return Spec{
		Name:    "cache/concurrent-v2",
		Group:   "cache",
		Tracked: true,
		Extra:   st.extras,
		Setup: func(string) (runFunc, func(), error) {
			e, _, err := cachedEngine()
			if err != nil {
				return nil, nil, err
			}
			srv, err := httpapi.NewServer(e, nil, nil)
			if err != nil {
				return nil, nil, err
			}
			ts := httptest.NewServer(srv)
			cleanup := func() {
				ts.Close()
				srv.Close()
			}

			// Pre-marshal the hot body and the SLA variants; the loop
			// must measure the server, not client-side encoding.
			toWire := func(req broker.Request) ([]byte, error) {
				return json.Marshal(httpapi.RecommendationRequest{
					Base:              req.Base,
					SLAPercent:        req.SLA.UptimePercent,
					PenaltyPerHourUSD: req.SLA.Penalty.PerHour.Dollars(),
					AllowedTechs:      req.AllowedTechs,
				})
			}
			hot, err := toWire(cacheRequest(8, 98))
			if err != nil {
				cleanup()
				return nil, nil, err
			}
			variants := make([][]byte, 8)
			for i := range variants {
				variants[i], err = toWire(cacheRequest(8, 95+0.5*float64(i)))
				if err != nil {
					cleanup()
					return nil, nil, err
				}
			}

			client := &http.Client{Transport: &http.Transport{
				MaxIdleConns:        concurrentV2Workers,
				MaxIdleConnsPerHost: concurrentV2Workers,
			}}
			url := ts.URL + "/v2/recommendations"
			post := func(body []byte) error {
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				lat := time.Since(start)
				disposition := resp.Header.Get("X-Cache")
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					_ = resp.Body.Close()
					return err
				}
				if err := resp.Body.Close(); err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("POST /v2/recommendations: HTTP %d", resp.StatusCode)
				}
				st.record(lat, disposition)
				return nil
			}

			return func(iters int) error {
				st.reset()
				workers := concurrentV2Workers
				if workers > iters {
					workers = iters
				}
				indices := make(chan int)
				errs := make([]error, workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						// A failed worker keeps draining the channel so
						// the feeder never blocks on dead workers.
						for i := range indices {
							if errs[w] != nil {
								continue
							}
							body := hot
							if i%5 == 0 {
								body = variants[(i/5)%len(variants)]
							}
							if err := post(body); err != nil {
								errs[w] = err
							}
						}
					}(w)
				}
				for i := 0; i < iters; i++ {
					indices <- i
				}
				close(indices)
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
				return nil
			}, cleanup, nil
		},
	}
}

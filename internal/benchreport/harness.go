package benchreport

import (
	"fmt"
	"runtime"
	"time"
)

// runFunc performs n operations of one scenario.
type runFunc func(n int) error

// maxIterations bounds the growth loop against pathologically fast
// operations (or a broken clock).
const maxIterations = 1 << 28

// measure runs fn with growing iteration counts until a single run
// lasts at least benchTime, then reports per-operation statistics
// from that final run — the same shape testing.B produces, without
// needing the testing harness in a plain binary. Allocation counts
// come from runtime.MemStats deltas around the timed run; in the
// dedicated benchreport process they are attributable to the
// scenario.
func measure(fn runFunc, benchTime time.Duration) (Scenario, error) {
	if benchTime <= 0 {
		return Scenario{}, fmt.Errorf("benchreport: bench time %v, must be positive", benchTime)
	}
	// Warm-up: first iteration pays one-time costs (page faults, lazy
	// init) that would skew a short measurement.
	if err := fn(1); err != nil {
		return Scenario{}, err
	}

	n := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := fn(n); err != nil {
			return Scenario{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)

		if elapsed >= benchTime || n >= maxIterations {
			if elapsed <= 0 {
				elapsed = 1
			}
			return Scenario{
				Iterations:  n,
				NsPerOp:     elapsed.Nanoseconds() / int64(n),
				AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(n),
				BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
			}, nil
		}

		// Predict the iteration count that lands past benchTime with
		// 20% headroom, bounded to sane growth per round.
		next := n
		if elapsed > 0 {
			next = int(float64(n) * 1.2 * float64(benchTime) / float64(elapsed))
		}
		if next <= n {
			next = n + 1
		}
		if next > 100*n {
			next = 100 * n
		}
		if next > maxIterations {
			next = maxIterations
		}
		n = next
	}
}

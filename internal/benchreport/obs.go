package benchreport

import (
	"context"
	"fmt"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/obs"
)

// obsSpec measures the full brokerage pass with and without the
// metrics registry attached. The instrumented engine records the
// per-run solver counters and latency histogram that GET /metrics
// exposes; the uninstrumented engine is the same workload with no
// registry. The derived obs_overhead_headroom ratio
// (uninstrumented / instrumented) is what CI floors: observability
// must stay within a few percent of free, or the per-run bulk
// instrumentation contract has been broken by a per-candidate hook.
func obsSpec(instrumented bool) Spec {
	mode := "uninstrumented"
	if instrumented {
		mode = "instrumented"
	}
	return Spec{
		Name:  fmt.Sprintf("obs/%s/n=16", mode),
		Group: "obs",
		// The uninstrumented side anchors the ratio, like eval/scratch.
		Tracked: instrumented,
		Setup: func(string) (runFunc, func(), error) {
			cat := catalog.Default()
			var opts []broker.EngineOption
			if instrumented {
				opts = append(opts, broker.WithMetricsRegistry(obs.NewRegistry()))
			}
			e, err := broker.New(cat, broker.CatalogParams{Catalog: cat}, opts...)
			if err != nil {
				return nil, nil, err
			}
			req := cacheRequest(16, 98)
			return func(iters int) error {
				for i := 0; i < iters; i++ {
					rec, err := e.Recommend(context.Background(), req)
					if err != nil {
						return err
					}
					if rec.BestOption == 0 {
						return fmt.Errorf("recommendation has no best option")
					}
				}
				return nil
			}, func() {}, nil
		},
	}
}

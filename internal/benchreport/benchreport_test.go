package benchreport

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestSuiteNamesUniqueAndRatiosResolve(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Suite() {
		if spec.Name == "" || spec.Group == "" {
			t.Fatalf("spec missing name/group: %+v", spec)
		}
		if seen[spec.Name] {
			t.Fatalf("duplicate scenario name %q", spec.Name)
		}
		seen[spec.Name] = true
	}
	for _, rs := range ratioSpecs {
		if !seen[rs.Numerator] || !seen[rs.Denominator] {
			t.Fatalf("ratio %s references unknown scenarios (%s / %s)", rs.Name, rs.Numerator, rs.Denominator)
		}
	}
}

// TestRunFilteredSubset runs a cheap slice of the real suite:
// measurements land, the ratio whose scenarios both ran is emitted,
// the ones missing a side are not.
func TestRunFilteredSubset(t *testing.T) {
	report, err := Run(Options{
		Label:     "test",
		BenchTime: 5 * time.Millisecond,
		Filter:    regexp.MustCompile(`^pricing/(sequential|parallel)/n=12$|^jobstore/append/nosync$`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.SchemaVersion != SchemaVersion || report.Label != "test" {
		t.Fatalf("report header wrong: %+v", report)
	}
	if len(report.Scenarios) != 3 {
		t.Fatalf("ran %d scenarios, want 3", len(report.Scenarios))
	}
	for _, sc := range report.Scenarios {
		if sc.NsPerOp <= 0 || sc.Iterations <= 0 {
			t.Fatalf("scenario %s has empty measurement: %+v", sc.Name, sc)
		}
	}
	if _, ok := report.Ratio("pricing_parallel_speedup_n12"); !ok {
		t.Fatal("speedup ratio for the completed pair missing")
	}
	if len(report.Ratios) != 1 {
		t.Fatalf("ratios = %+v, want only the n=12 pricing speedup", report.Ratios)
	}
}

func TestReportRoundTripAndSchemaGate(t *testing.T) {
	r := Report{
		SchemaVersion: SchemaVersion,
		Label:         "pr4",
		GoVersion:     "go1.24.0",
		BenchTime:     "1s",
		Host:          CurrentHost(),
		Scenarios:     []Scenario{{Name: "pricing/parallel/n=19", Group: "pricing", Tracked: true, Iterations: 3, NsPerOp: 100}},
		Ratios:        []Ratio{{Name: "pricing_parallel_speedup_n19", Numerator: "a", Denominator: "b", Value: 2.5, HigherIsBetter: true}},
	}
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Label != r.Label || len(back.Scenarios) != 1 || len(back.Ratios) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	future := strings.Replace(buf.String(), `"schema_version": 1`, `"schema_version": 99`, 1)
	if _, err := Decode(strings.NewReader(future)); err == nil {
		t.Fatal("unknown schema version should be rejected")
	}
}

func mkReport(host Host, ns map[string]int64, ratios map[string]float64) Report {
	r := Report{SchemaVersion: SchemaVersion, Host: host}
	for name, v := range ns {
		r.Scenarios = append(r.Scenarios, Scenario{Name: name, Group: "g", Tracked: true, Iterations: 1, NsPerOp: v})
	}
	for name, v := range ratios {
		r.Ratios = append(r.Ratios, Ratio{Name: name, Value: v, HigherIsBetter: true})
	}
	return r
}

func TestCompareDetectsRegressions(t *testing.T) {
	host := CurrentHost()
	baseline := mkReport(host, map[string]int64{"a": 1000, "b": 1000}, map[string]float64{"speedup": 3.0})
	current := mkReport(host, map[string]int64{"a": 1300, "b": 1100}, map[string]float64{"speedup": 2.0})

	cmp := Compare(baseline, current, 25)
	if !cmp.Comparable {
		t.Fatal("same host should be comparable")
	}
	names := map[string]bool{}
	for _, d := range cmp.Regressions {
		names[d.Name] = true
	}
	if !names["a"] {
		t.Fatalf("30%% slower tracked scenario not flagged: %+v", cmp.Regressions)
	}
	if names["b"] {
		t.Fatal("10% slower scenario flagged at a 25% threshold")
	}
	if !names["speedup"] {
		t.Fatalf("speedup ratio losing a third of its value not flagged: %+v", cmp.Regressions)
	}
}

func TestCompareHostMismatchWarnsNotFails(t *testing.T) {
	host := CurrentHost()
	other := host
	other.NumCPU = host.NumCPU + 4
	other.GOMAXPROCS = host.GOMAXPROCS + 4
	baseline := mkReport(other, map[string]int64{"a": 1000}, nil)
	current := mkReport(host, map[string]int64{"a": 5000}, nil)

	cmp := Compare(baseline, current, 25)
	if cmp.Comparable {
		t.Fatal("different hosts should not be comparable")
	}
	if len(cmp.Regressions) != 0 {
		t.Fatalf("host mismatch produced hard regressions: %+v", cmp.Regressions)
	}
	if len(cmp.Warnings) == 0 {
		t.Fatal("host mismatch should warn")
	}
	if len(cmp.Deltas) != 1 {
		t.Fatalf("deltas should still be reported for information: %+v", cmp.Deltas)
	}
}

func TestCompareMissingEntriesWarnBothWays(t *testing.T) {
	host := CurrentHost()
	baseline := mkReport(host, map[string]int64{"a": 1000, "dropped-scenario": 700}, nil)
	current := mkReport(host, map[string]int64{"a": 1000, "new-scenario": 500}, nil)
	cmp := Compare(baseline, current, 25)
	var sawNew, sawDropped bool
	for _, w := range cmp.Warnings {
		if strings.Contains(w, "new-scenario") {
			sawNew = true
		}
		if strings.Contains(w, "dropped-scenario") {
			sawDropped = true
		}
	}
	if !sawNew {
		t.Fatalf("scenario without a baseline entry should warn: %+v", cmp.Warnings)
	}
	if !sawDropped {
		t.Fatalf("baseline scenario missing from the current run should warn: %+v", cmp.Warnings)
	}
	if len(cmp.Regressions) != 0 {
		t.Fatalf("coverage mismatches must not fail on their own: %+v", cmp.Regressions)
	}
}

func TestParseRequirement(t *testing.T) {
	req, err := ParseRequirement("pricing_parallel_speedup_n19>=2")
	if err != nil {
		t.Fatal(err)
	}
	if req.Ratio != "pricing_parallel_speedup_n19" || req.Min != 2 || req.MinGOMAXPROCS != 0 {
		t.Fatalf("parsed %+v", req)
	}

	req, err = ParseRequirement("pricing_parallel_speedup_n19>=2.5@4")
	if err != nil {
		t.Fatal(err)
	}
	if req.Min != 2.5 || req.MinGOMAXPROCS != 4 {
		t.Fatalf("parsed %+v", req)
	}

	// The ceiling spelling, used by the anytime-lane quality gates.
	req, err = ParseRequirement("beam_n30_gap<=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if req.Ratio != "beam_n30_gap" || req.Min != 0.05 || req.Op != "<=" {
		t.Fatalf("parsed %+v", req)
	}
	if got := req.String(); got != "beam_n30_gap<=0.05" {
		t.Fatalf("String() = %q", got)
	}

	for _, bad := range []string{"", "name", "name>=", "name>=x", "name>=1@x", "name<=", "name<=y"} {
		if _, err := ParseRequirement(bad); err == nil {
			t.Fatalf("ParseRequirement(%q) should fail", bad)
		}
	}
}

func TestRequirementCheck(t *testing.T) {
	r := Report{
		SchemaVersion: SchemaVersion,
		Host:          Host{GOMAXPROCS: 2},
		Ratios:        []Ratio{{Name: "speedup", Value: 1.5, HigherIsBetter: true}},
	}

	// Met floor.
	enforced, err := (Requirement{Ratio: "speedup", Min: 1.2}).Check(&r)
	if !enforced || err != nil {
		t.Fatalf("met requirement: enforced=%v err=%v", enforced, err)
	}

	// Unmet floor.
	enforced, err = (Requirement{Ratio: "speedup", Min: 2}).Check(&r)
	if !enforced || err == nil {
		t.Fatalf("unmet requirement should fail: enforced=%v err=%v", enforced, err)
	}

	// Guarded by core count: skipped on a small host.
	enforced, err = (Requirement{Ratio: "speedup", Min: 2, MinGOMAXPROCS: 4}).Check(&r)
	if enforced || err != nil {
		t.Fatalf("guarded requirement on a small host should skip: enforced=%v err=%v", enforced, err)
	}

	// Unknown ratio is always an error.
	if _, err := (Requirement{Ratio: "nope", Min: 1}).Check(&r); err == nil {
		t.Fatal("unknown ratio should fail")
	}

	// Ceilings invert the direction: a value at or below passes, above
	// fails.
	gapped := Report{
		SchemaVersion: SchemaVersion,
		Host:          Host{GOMAXPROCS: 2},
		Ratios:        []Ratio{{Name: "beam_n30_gap", Value: 0.03}},
	}
	enforced, err = (Requirement{Ratio: "beam_n30_gap", Min: 0.05, Op: "<="}).Check(&gapped)
	if !enforced || err != nil {
		t.Fatalf("met ceiling: enforced=%v err=%v", enforced, err)
	}
	enforced, err = (Requirement{Ratio: "beam_n30_gap", Min: 0.01, Op: "<="}).Check(&gapped)
	if !enforced || err == nil {
		t.Fatalf("exceeded ceiling should fail: enforced=%v err=%v", enforced, err)
	}
}

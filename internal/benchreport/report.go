// Package benchreport runs a named suite of performance scenarios —
// the card-pricing pass sequential vs parallel, the solver
// strategies, the durable job store's append and recovery paths — and
// renders the measurements as a schema-versioned, machine-readable
// JSON report. The committed BENCH_pr<N>.json files form the repo's
// performance trajectory: one report per PR, regenerated and diffed
// by CI on every change, so a regression in a tracked scenario is a
// failing check instead of a folk memory.
//
// The package deliberately does not use `go test -bench`: the suite
// must run as a plain binary (cmd/benchreport) with stable scenario
// names, machine-comparable output and an exit code CI can gate on.
package benchreport

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
)

// SchemaVersion identifies the report's JSON layout. Consumers must
// reject reports whose schema_version they do not understand rather
// than misread fields.
const SchemaVersion = 1

// Report is one full suite run.
type Report struct {
	// SchemaVersion is always SchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`

	// Label names the run, e.g. "pr4" for a committed baseline or
	// "pr" for a CI regeneration.
	Label string `json:"label"`

	// GoVersion is runtime.Version() of the measuring binary.
	GoVersion string `json:"go_version"`

	// BenchTime is the per-scenario measurement budget the run used.
	BenchTime string `json:"bench_time"`

	// Host fingerprints the measuring machine; comparisons across
	// different hosts are warned about, not failed, because absolute
	// timings and parallel speedups are host-shaped.
	Host Host `json:"host"`

	// Scenarios are the measurements, in suite order.
	Scenarios []Scenario `json:"scenarios"`

	// Ratios are derived cross-scenario comparisons (speedups), which
	// stay meaningful across moderate host noise.
	Ratios []Ratio `json:"ratios"`
}

// Host fingerprints the measuring machine.
type Host struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost returns the running process's host fingerprint.
func CurrentHost() Host {
	return Host{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Comparable reports whether absolute timings measured on h and o can
// be held against each other: same platform and the same parallelism.
func (h Host) Comparable(o Host) bool {
	return h == o
}

// Scenario is one measured workload.
type Scenario struct {
	// Name is the stable scenario identifier, e.g.
	// "pricing/parallel/n=19". Comparisons join on it.
	Name string `json:"name"`

	// Group is the subsystem under measurement ("pricing", "solver",
	// "jobstore").
	Group string `json:"group"`

	// Tracked scenarios gate CI: a tracked regression beyond the
	// threshold fails the bench-report job, an untracked one warns.
	Tracked bool `json:"tracked"`

	// Iterations is how many operations the final measurement ran.
	Iterations int `json:"iterations"`

	// NsPerOp, AllocsPerOp and BytesPerOp are the per-operation cost.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`

	// Extra carries scenario-specific derived measurements — latency
	// percentiles, hit rates — that do not fit the per-op triple.
	// Comparisons ignore it; it exists for humans and dashboards.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Ratio is a derived cross-scenario comparison: Value =
// Numerator's ns/op divided by Denominator's ns/op, so a speedup of
// the denominator over the numerator reads as Value > 1.
type Ratio struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Value       float64 `json:"value"`

	// HigherIsBetter marks speedups CI guards against shrinking;
	// informational ratios (e.g. the fsync durability premium) leave
	// it false and are reported without gating.
	HigherIsBetter bool `json:"higher_is_better"`
}

// Scenario returns the named scenario, or false.
func (r *Report) Scenario(name string) (Scenario, bool) {
	for _, s := range r.Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Ratio returns the named ratio, or false.
func (r *Report) Ratio(name string) (Ratio, bool) {
	for _, ra := range r.Ratios {
		if ra.Name == name {
			return ra, true
		}
	}
	return Ratio{}, false
}

// Encode writes the report as indented JSON with a trailing newline.
func (r *Report) Encode(w io.Writer) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchreport: encoding report: %w", err)
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Decode reads a report and validates its schema version.
func Decode(rd io.Reader) (Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Report{}, fmt.Errorf("benchreport: decoding report: %w", err)
	}
	if r.SchemaVersion != SchemaVersion {
		return Report{}, fmt.Errorf("benchreport: schema version %d, this binary understands %d",
			r.SchemaVersion, SchemaVersion)
	}
	return r, nil
}

// LoadFile reads a report from path.
func LoadFile(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	return Decode(f)
}

package benchreport

import (
	"fmt"
	"strconv"
	"strings"
)

// Delta is one baseline-vs-current comparison outcome.
type Delta struct {
	// Name is the scenario or ratio compared.
	Name string

	// Kind is "scenario" (ns/op, lower is better) or "ratio"
	// (speedup, higher is better).
	Kind string

	// Old and New are the compared values: ns/op for scenarios, the
	// ratio value for ratios.
	Old, New float64

	// ChangePct is the normalized regression magnitude: percent
	// slower for scenarios, percent of speedup lost for ratios.
	// Negative values are improvements.
	ChangePct float64

	// Regression marks tracked entries whose ChangePct exceeded the
	// comparison threshold.
	Regression bool
}

// Comparison is the outcome of holding a current report against a
// committed baseline.
type Comparison struct {
	// Comparable reports whether the two hosts' absolute timings can
	// be held against each other. When false the comparison carries
	// warnings only — a laptop baseline must not fail a CI runner.
	Comparable bool

	// Warnings are human-readable notes (host mismatch, scenarios
	// present on one side only).
	Warnings []string

	// Deltas lists every compared entry, in the current report's
	// order (regressions are additionally collected in Regressions).
	Deltas []Delta

	// Regressions is the failing subset of Deltas.
	Regressions []Delta
}

// Compare holds current against baseline: tracked scenarios failing
// when ns/op grew more than failOverPct percent, tracked
// higher-is-better ratios failing when they lost more than
// failOverPct percent of their value. Hosts that do not match produce
// warnings instead of failures, because absolute timings and parallel
// speedups are shaped by the machine, not the code.
func Compare(baseline, current Report, failOverPct float64) Comparison {
	cmp := Comparison{Comparable: baseline.Host.Comparable(current.Host)}
	if !cmp.Comparable {
		cmp.Warnings = append(cmp.Warnings, fmt.Sprintf(
			"hosts differ (baseline %+v, current %+v): timings reported, regressions not enforced; regenerate the baseline on a comparable host to arm the gate",
			baseline.Host, current.Host))
	}

	for _, cur := range current.Scenarios {
		old, ok := baseline.Scenario(cur.Name)
		if !ok {
			cmp.Warnings = append(cmp.Warnings, fmt.Sprintf("scenario %s has no baseline entry", cur.Name))
			continue
		}
		if old.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:      cur.Name,
			Kind:      "scenario",
			Old:       float64(old.NsPerOp),
			New:       float64(cur.NsPerOp),
			ChangePct: 100 * (float64(cur.NsPerOp) - float64(old.NsPerOp)) / float64(old.NsPerOp),
		}
		d.Regression = cmp.Comparable && cur.Tracked && old.Tracked && d.ChangePct > failOverPct
		cmp.add(d)
	}

	for _, cur := range current.Ratios {
		old, ok := baseline.Ratio(cur.Name)
		if !ok {
			cmp.Warnings = append(cmp.Warnings, fmt.Sprintf("ratio %s has no baseline entry", cur.Name))
			continue
		}
		if old.Value <= 0 {
			continue
		}
		d := Delta{
			Name: cur.Name,
			Kind: "ratio",
			Old:  old.Value,
			New:  cur.Value,
			// For a speedup, losing value is the regression.
			ChangePct: 100 * (old.Value - cur.Value) / old.Value,
		}
		d.Regression = cmp.Comparable && cur.HigherIsBetter && old.HigherIsBetter && d.ChangePct > failOverPct
		cmp.add(d)
	}

	// Baseline entries the current run no longer covers must not
	// silently drop out of the gate: a renamed or filtered-away
	// tracked scenario would otherwise pass green while unguarded.
	for _, old := range baseline.Scenarios {
		if _, ok := current.Scenario(old.Name); !ok {
			cmp.Warnings = append(cmp.Warnings, fmt.Sprintf("baseline scenario %s missing from the current run", old.Name))
		}
	}
	for _, old := range baseline.Ratios {
		if _, ok := current.Ratio(old.Name); !ok {
			cmp.Warnings = append(cmp.Warnings, fmt.Sprintf("baseline ratio %s missing from the current run", old.Name))
		}
	}
	return cmp
}

func (c *Comparison) add(d Delta) {
	c.Deltas = append(c.Deltas, d)
	if d.Regression {
		c.Regressions = append(c.Regressions, d)
	}
}

// Requirement is a hard bound on a ratio: a floor for speedups (the
// CI assertion that the n=19 pricing speedup stays at or above 2x on
// multi-core runners), or a ceiling for quality figures (the
// certified n=30 beam gap staying at or below 5%).
type Requirement struct {
	// Ratio names the ratio the bound applies to.
	Ratio string

	// Min is the inclusive bound. With Op ">=" it is a floor, with
	// "<=" a ceiling.
	Min float64

	// Op is ">=" (floor, the default when empty) or "<=" (ceiling).
	Op string

	// MinGOMAXPROCS skips the check on hosts with fewer schedulable
	// cores — parallel speedups do not exist on one core. Zero means
	// always enforce.
	MinGOMAXPROCS int
}

// String renders the requirement back in -require syntax (without the
// @procs suffix), for log lines.
func (req Requirement) String() string {
	op := req.Op
	if op == "" {
		op = ">="
	}
	return fmt.Sprintf("%s%s%g", req.Ratio, op, req.Min)
}

// ParseRequirement parses "name>=value" or "name<=value", optionally
// suffixed "@procs" (sets MinGOMAXPROCS) — the cmd/benchreport
// -require syntax.
func ParseRequirement(s string) (Requirement, error) {
	op := ">="
	name, rest, ok := strings.Cut(s, op)
	if !ok {
		op = "<="
		name, rest, ok = strings.Cut(s, op)
	}
	if !ok || name == "" {
		return Requirement{}, fmt.Errorf("benchreport: requirement %q, want NAME>=VALUE, NAME<=VALUE or either with @PROCS", s)
	}
	valueStr, procsStr, hasProcs := strings.Cut(rest, "@")
	value, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return Requirement{}, fmt.Errorf("benchreport: requirement %q: bad value: %w", s, err)
	}
	req := Requirement{Ratio: name, Min: value, Op: op}
	if hasProcs {
		procs, err := strconv.Atoi(procsStr)
		if err != nil {
			return Requirement{}, fmt.Errorf("benchreport: requirement %q: bad GOMAXPROCS floor: %w", s, err)
		}
		req.MinGOMAXPROCS = procs
	}
	return req, nil
}

// Check evaluates the requirement against the report. A skipped check
// (host below MinGOMAXPROCS) returns (false, nil); an enforced pass
// returns (true, nil).
func (req Requirement) Check(r *Report) (enforced bool, err error) {
	if req.MinGOMAXPROCS > 0 && r.Host.GOMAXPROCS < req.MinGOMAXPROCS {
		return false, nil
	}
	ratio, ok := r.Ratio(req.Ratio)
	if !ok {
		return true, fmt.Errorf("benchreport: requirement on unknown ratio %q", req.Ratio)
	}
	failed := ratio.Value < req.Min
	if req.Op == "<=" {
		failed = ratio.Value > req.Min
	}
	if failed {
		op := req.Op
		if op == "" {
			op = ">="
		}
		return true, fmt.Errorf("benchreport: ratio %s = %.4g, required %s %.4g", req.Ratio, ratio.Value, op, req.Min)
	}
	return true, nil
}

package topology

// Well-known component classes. The telemetry database keys node
// reliability observations by (provider, class); these constants keep
// the catalog, telemetry seeds and case study in agreement.
const (
	ClassVirtualMachine = "vm.virtualized"
	ClassBareMetal      = "vm.baremetal"
	ClassBlockVolume    = "disk.block"
	ClassObjectStore    = "disk.object"
	ClassGateway        = "net.gateway"
	ClassLoadBalancer   = "net.loadbalancer"
)

// DefaultClass returns the component class assumed for a layer when a
// component does not specify one.
func DefaultClass(l Layer) string {
	switch l {
	case LayerCompute:
		return ClassVirtualMachine
	case LayerStorage:
		return ClassBlockVolume
	case LayerNetwork:
		return ClassGateway
	case LayerMiddleware:
		return ClassVirtualMachine
	default:
		return ""
	}
}

// EffectiveClass returns the component's class, falling back to the
// layer default when unset.
func (c Component) EffectiveClass() string {
	if c.Class != "" {
		return c.Class
	}
	return DefaultClass(c.Layer)
}

// ThreeTier returns the paper's case-study base architecture: a serial
// combination of three clusters at the compute, storage and network
// layers hosted on the given provider. The compute tier requires three
// active nodes (the as-is solution clustered it 3+1 under VMware ESX),
// storage and network require one active element each.
func ThreeTier(provider string) System {
	return System{
		Name:     "three-tier",
		Provider: provider,
		Components: []Component{
			{Name: "compute", Layer: LayerCompute, ActiveNodes: 3, Class: ClassVirtualMachine},
			{Name: "storage", Layer: LayerStorage, ActiveNodes: 1, Class: ClassBlockVolume},
			{Name: "network", Layer: LayerNetwork, ActiveNodes: 1, Class: ClassGateway},
		},
	}
}

// FiveTierHybrid returns the future-work scenario from the paper's
// Section V: a wider system with middleware and load-balancing tiers,
// used to exercise the extended HA catalog (OS clustering, SDS,
// multipathing, BGP dual circuits).
func FiveTierHybrid(provider string) System {
	return System{
		Name:     "five-tier-hybrid",
		Provider: provider,
		Components: []Component{
			{Name: "web-compute", Layer: LayerCompute, ActiveNodes: 2, Class: ClassVirtualMachine},
			{Name: "app-compute", Layer: LayerCompute, ActiveNodes: 3, Class: ClassBareMetal},
			{Name: "middleware", Layer: LayerMiddleware, ActiveNodes: 2, Class: ClassVirtualMachine},
			{Name: "storage", Layer: LayerStorage, ActiveNodes: 2, Class: ClassBlockVolume},
			{Name: "network", Layer: LayerNetwork, ActiveNodes: 1, Class: ClassGateway},
		},
	}
}

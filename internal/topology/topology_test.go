package topology

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestLayerString(t *testing.T) {
	tests := []struct {
		l    Layer
		want string
	}{
		{LayerCompute, "compute"},
		{LayerStorage, "storage"},
		{LayerNetwork, "network"},
		{LayerMiddleware, "middleware"},
		{LayerUnknown, "unknown"},
		{Layer(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Fatalf("Layer(%d).String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
}

func TestParseLayer(t *testing.T) {
	for _, s := range []string{"compute", "Compute", " COMPUTE "} {
		l, err := ParseLayer(s)
		if err != nil || l != LayerCompute {
			t.Fatalf("ParseLayer(%q) = %v, %v; want compute", s, l, err)
		}
	}
	if _, err := ParseLayer("quantum"); err == nil {
		t.Fatal("ParseLayer(quantum) should fail")
	}
	if _, err := ParseLayer(""); err == nil {
		t.Fatal("ParseLayer(empty) should fail")
	}
}

func TestLayerJSONRoundTrip(t *testing.T) {
	for l := range layerNames {
		data, err := json.Marshal(l)
		if err != nil {
			t.Fatalf("marshal %v: %v", l, err)
		}
		var back Layer
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != l {
			t.Fatalf("round trip %v -> %s -> %v", l, data, back)
		}
	}
	if _, err := json.Marshal(Layer(42)); err == nil {
		t.Fatal("marshaling invalid layer should fail")
	}
	var l Layer
	if err := json.Unmarshal([]byte(`"warp"`), &l); err == nil {
		t.Fatal("unmarshaling unknown layer should fail")
	}
	if err := json.Unmarshal([]byte(`7`), &l); err == nil {
		t.Fatal("unmarshaling non-string layer should fail")
	}
}

func TestComponentValidate(t *testing.T) {
	good := Component{Name: "web", Layer: LayerCompute, ActiveNodes: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid component rejected: %v", err)
	}
	bad := []Component{
		{Name: "", Layer: LayerCompute, ActiveNodes: 1},
		{Name: "  ", Layer: LayerCompute, ActiveNodes: 1},
		{Name: "x", Layer: LayerUnknown, ActiveNodes: 1},
		{Name: "x", Layer: LayerCompute, ActiveNodes: 0},
		{Name: "x", Layer: LayerCompute, ActiveNodes: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestSystemValidate(t *testing.T) {
	sys := ThreeTier("softlayer-sim")
	if err := sys.Validate(); err != nil {
		t.Fatalf("ThreeTier invalid: %v", err)
	}

	tests := []struct {
		name    string
		mutate  func(*System)
		wantSub string
	}{
		{"empty name", func(s *System) { s.Name = "" }, "empty name"},
		{"no components", func(s *System) { s.Components = nil }, "no components"},
		{"invalid component", func(s *System) { s.Components[0].ActiveNodes = 0 }, "ActiveNodes"},
		{"duplicate component", func(s *System) { s.Components[1].Name = s.Components[0].Name }, "duplicate"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := ThreeTier("p").Clone()
			tt.mutate(&s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantSub)
			}
		})
	}
}

func TestSystemComponentLookup(t *testing.T) {
	sys := ThreeTier("p")
	c, ok := sys.Component("storage")
	if !ok || c.Layer != LayerStorage {
		t.Fatalf("Component(storage) = %+v, %v", c, ok)
	}
	if _, ok := sys.Component("gpu"); ok {
		t.Fatal("Component(gpu) should not exist")
	}
}

func TestSystemLayerCounts(t *testing.T) {
	sys := FiveTierHybrid("p")
	counts := sys.LayerCounts()
	if counts[LayerCompute] != 2 {
		t.Fatalf("compute count = %d, want 2", counts[LayerCompute])
	}
	if counts[LayerMiddleware] != 1 || counts[LayerStorage] != 1 || counts[LayerNetwork] != 1 {
		t.Fatalf("unexpected layer counts: %v", counts)
	}
}

func TestSystemClone(t *testing.T) {
	orig := ThreeTier("p")
	cp := orig.Clone()
	cp.Components[0].Name = "mutated"
	if orig.Components[0].Name == "mutated" {
		t.Fatal("Clone shares component storage with original")
	}
}

func TestEffectiveClass(t *testing.T) {
	c := Component{Name: "x", Layer: LayerStorage, ActiveNodes: 1}
	if got := c.EffectiveClass(); got != ClassBlockVolume {
		t.Fatalf("EffectiveClass() = %q, want %q", got, ClassBlockVolume)
	}
	c.Class = ClassObjectStore
	if got := c.EffectiveClass(); got != ClassObjectStore {
		t.Fatalf("EffectiveClass() = %q, want %q", got, ClassObjectStore)
	}
	if got := DefaultClass(LayerUnknown); got != "" {
		t.Fatalf("DefaultClass(unknown) = %q, want empty", got)
	}
}

func TestSystemJSONRoundTrip(t *testing.T) {
	sys := FiveTierHybrid("cloudA")
	data, err := json.Marshal(sys)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back System
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != sys.Name || back.Provider != sys.Provider || len(back.Components) != len(sys.Components) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, sys)
	}
	for i := range sys.Components {
		if back.Components[i] != sys.Components[i] {
			t.Fatalf("component %d mismatch: %+v vs %+v", i, back.Components[i], sys.Components[i])
		}
	}
}

func TestTemplatesValid(t *testing.T) {
	for _, sys := range []System{ThreeTier("a"), FiveTierHybrid("b")} {
		if err := sys.Validate(); err != nil {
			t.Fatalf("template %q invalid: %v", sys.Name, err)
		}
	}
}

// Package topology models the base cloud solution architecture a
// customer hands to the broker (Figure 1 of the paper): a named system
// composed of serial clusters at the compute, storage and network
// layers, each cluster described by the nodes it needs active and the
// component class its nodes belong to.
//
// Topology is purely descriptive. Reliability parameters (P_i, f_i)
// come from the broker's telemetry database, HA mechanics (K̂_i, t_i)
// and prices come from the catalog; the broker package compiles all
// three into the availability and cost models.
package topology

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Layer identifies the infrastructure layer a cluster lives at. The
// paper's case study uses exactly Compute, Storage and Network; the
// enum is open-ended for the future-work scenarios (for example a
// dedicated middleware tier).
type Layer int

// Layers start at 1 so the zero value is invalid and cannot be mistaken
// for a real layer.
const (
	LayerUnknown Layer = iota
	LayerCompute
	LayerStorage
	LayerNetwork
	LayerMiddleware
)

var layerNames = map[Layer]string{
	LayerCompute:    "compute",
	LayerStorage:    "storage",
	LayerNetwork:    "network",
	LayerMiddleware: "middleware",
}

var layersByName = func() map[string]Layer {
	m := make(map[string]Layer, len(layerNames))
	for l, n := range layerNames {
		m[n] = l
	}
	return m
}()

// String returns the lower-case layer name, or "unknown".
func (l Layer) String() string {
	if n, ok := layerNames[l]; ok {
		return n
	}
	return "unknown"
}

// Valid reports whether l is a known layer.
func (l Layer) Valid() bool {
	_, ok := layerNames[l]
	return ok
}

// ParseLayer converts a layer name (case-insensitive) to a Layer.
func ParseLayer(s string) (Layer, error) {
	if l, ok := layersByName[strings.ToLower(strings.TrimSpace(s))]; ok {
		return l, nil
	}
	return LayerUnknown, fmt.Errorf("topology: unknown layer %q", s)
}

// MarshalJSON encodes the layer as its string name.
func (l Layer) MarshalJSON() ([]byte, error) {
	if !l.Valid() {
		return nil, fmt.Errorf("topology: cannot marshal unknown layer %d", int(l))
	}
	return json.Marshal(l.String())
}

// UnmarshalJSON decodes a layer from its string name.
func (l *Layer) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("topology: layer must be a string: %w", err)
	}
	parsed, err := ParseLayer(s)
	if err != nil {
		return err
	}
	*l = parsed
	return nil
}

// Component is one cluster slot of the base architecture: a group of
// like nodes at one layer that the system needs to be operational. The
// optimizer decides which HA technology (if any) to attach to each
// component.
type Component struct {
	// Name identifies the component in reports, e.g. "app-compute".
	Name string `json:"name"`

	// Layer is the infrastructure layer this component occupies.
	Layer Layer `json:"layer"`

	// ActiveNodes is the number of nodes the workload requires to be
	// simultaneously active (K_i − K̂_i in the model). HA technologies
	// add standby nodes on top.
	ActiveNodes int `json:"active_nodes"`

	// Class is the component class used to look up reliability
	// parameters in the broker's telemetry database, e.g.
	// "vm.virtualized" or "disk.sata". An empty class falls back to the
	// layer default.
	Class string `json:"class,omitempty"`
}

// Validate reports whether the component is well-formed.
func (c Component) Validate() error {
	if strings.TrimSpace(c.Name) == "" {
		return fmt.Errorf("topology: component has empty name")
	}
	if !c.Layer.Valid() {
		return fmt.Errorf("topology: component %q: invalid layer", c.Name)
	}
	if c.ActiveNodes < 1 {
		return fmt.Errorf("topology: component %q: ActiveNodes = %d, must be >= 1", c.Name, c.ActiveNodes)
	}
	return nil
}

// System is a base cloud solution architecture: an ordered serial
// combination of components deployed with one provider.
type System struct {
	// Name labels the architecture, e.g. "three-tier-retail".
	Name string `json:"name"`

	// Provider names the cloud the system is (to be) hosted on; it
	// selects the rate card and the telemetry scope.
	Provider string `json:"provider"`

	// Components are the serial clusters, in presentation order.
	Components []Component `json:"components"`
}

// Validate reports whether the system is well-formed: non-empty, with
// valid, uniquely named components.
func (s System) Validate() error {
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("topology: system has empty name")
	}
	if len(s.Components) == 0 {
		return fmt.Errorf("topology: system %q has no components", s.Name)
	}
	seen := make(map[string]bool, len(s.Components))
	for _, c := range s.Components {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("topology: system %q: %w", s.Name, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("topology: system %q: duplicate component %q", s.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Component returns the component with the given name, or false.
func (s System) Component(name string) (Component, bool) {
	for _, c := range s.Components {
		if c.Name == name {
			return c, true
		}
	}
	return Component{}, false
}

// LayerCounts returns how many components sit at each layer, useful for
// summaries and sanity checks.
func (s System) LayerCounts() map[Layer]int {
	m := make(map[Layer]int)
	for _, c := range s.Components {
		m[c.Layer]++
	}
	return m
}

// Clone returns a deep copy of the system; mutating the copy leaves the
// original untouched (components are values, so a slice copy suffices).
func (s System) Clone() System {
	out := s
	out.Components = append([]Component(nil), s.Components...)
	return out
}

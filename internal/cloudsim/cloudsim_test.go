package cloudsim

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/telemetry"
	"uptimebroker/internal/topology"
)

func testBook() PriceBook {
	return PriceBook{
		topology.ClassVirtualMachine: cost.Dollars(100),
		topology.ClassBlockVolume:    cost.Dollars(50),
		topology.ClassGateway:        cost.Dollars(200),
	}
}

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

func TestKindForClass(t *testing.T) {
	tests := []struct {
		class string
		want  ResourceKind
	}{
		{"vm.virtualized", KindInstance},
		{"vm.baremetal", KindInstance},
		{"disk.block", KindVolume},
		{"net.gateway", KindGateway},
		{"fpga.attached", KindUnknown},
		{"", KindUnknown},
	}
	for _, tt := range tests {
		if got := KindForClass(tt.class); got != tt.want {
			t.Fatalf("KindForClass(%q) = %v, want %v", tt.class, got, tt.want)
		}
	}
}

func TestKindAndStateStrings(t *testing.T) {
	if KindInstance.String() != "instance" || KindVolume.String() != "volume" ||
		KindGateway.String() != "gateway" || KindUnknown.String() != "unknown" {
		t.Fatal("kind strings wrong")
	}
	if StateRunning.String() != "running" || StateFailed.String() != "failed" ||
		StateTerminated.String() != "terminated" || StateUnknown.String() != "unknown" {
		t.Fatal("state strings wrong")
	}
}

func TestNewCloudValidation(t *testing.T) {
	if _, err := NewCloud("", testBook()); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := NewCloud("c", PriceBook{}); err == nil {
		t.Fatal("empty price book should fail")
	}
	if _, err := NewCloud("c", PriceBook{"quantum.qpu": cost.Dollars(1)}); err == nil {
		t.Fatal("unknown class kind should fail")
	}
	if _, err := NewCloud("c", PriceBook{topology.ClassGateway: -1}); err == nil {
		t.Fatal("negative price should fail")
	}
}

func TestProvisionLifecycle(t *testing.T) {
	c, err := NewCloud("testcloud", testBook())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	r, err := c.Provision(ctx, Spec{Class: topology.ClassVirtualMachine, Label: "web/active-0"})
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if r.State != StateRunning || r.Kind != KindInstance {
		t.Fatalf("resource = %+v", r)
	}
	if !strings.HasPrefix(r.ID, "testcloud-instance-") {
		t.Fatalf("ID = %q", r.ID)
	}
	if r.MonthlyPrice != cost.Dollars(100) {
		t.Fatalf("price = %v", r.MonthlyPrice)
	}

	got, ok := c.Get(r.ID)
	if !ok || got.ID != r.ID {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get("ghost"); ok {
		t.Fatal("Get(ghost) should miss")
	}

	if err := c.Terminate(r.ID); err != nil {
		t.Fatalf("Terminate: %v", err)
	}
	if err := c.Terminate(r.ID); err == nil {
		t.Fatal("double Terminate should fail")
	}
	if err := c.Terminate("ghost"); err == nil {
		t.Fatal("Terminate(ghost) should fail")
	}
	if bill := c.MonthlyBill(); bill != 0 {
		t.Fatalf("bill after terminate = %v, want 0", bill)
	}
}

func TestProvisionUnknownClassAndCancel(t *testing.T) {
	c, _ := NewCloud("c", testBook())
	if _, err := c.Provision(context.Background(), Spec{Class: "disk.tape"}); err == nil {
		t.Fatal("unknown class should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Provision(ctx, Spec{Class: topology.ClassGateway}); err == nil {
		t.Fatal("canceled provision should fail")
	}
}

func TestMonthlyBillSumsRunningAndFailed(t *testing.T) {
	c, _ := NewCloud("c", testBook())
	ctx := context.Background()
	a, _ := c.Provision(ctx, Spec{Class: topology.ClassVirtualMachine})
	_, _ = c.Provision(ctx, Spec{Class: topology.ClassBlockVolume})

	if bill := c.MonthlyBill(); bill != cost.Dollars(150) {
		t.Fatalf("bill = %v, want $150", bill)
	}
	// A failed resource still bills (it is provisioned, just down).
	if err := c.InjectFailure(a.ID); err != nil {
		t.Fatal(err)
	}
	if bill := c.MonthlyBill(); bill != cost.Dollars(150) {
		t.Fatalf("bill with failure = %v, want $150", bill)
	}
}

func TestFailureRepairTelemetry(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	store := telemetry.NewStore()
	c, err := NewCloud("sim", testBook(), WithClock(clk.Now), WithTelemetry(store))
	if err != nil {
		t.Fatal(err)
	}
	r, _ := c.Provision(context.Background(), Spec{Class: topology.ClassBlockVolume})

	if err := c.Repair(r.ID); err == nil {
		t.Fatal("repairing a running resource should fail")
	}
	if err := c.InjectFailure(r.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.InjectFailure(r.ID); err == nil {
		t.Fatal("failing a failed resource should fail")
	}

	clk.Advance(90 * time.Minute)
	if err := c.Repair(r.ID); err != nil {
		t.Fatalf("Repair: %v", err)
	}

	// Exposure: 1 volume observed for 30 days.
	if err := c.BookExposure(30 * 24 * time.Hour); err != nil {
		t.Fatalf("BookExposure: %v", err)
	}
	params, err := store.Estimate("sim", topology.ClassBlockVolume)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	wantDown := 1.5 / (30 * 24) // 1.5h down over 720h observed
	if diff := params.Node.Down - wantDown; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("estimated Down = %v, want %v", params.Node.Down, wantDown)
	}
	if params.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", params.Failures)
	}
}

func TestBookExposureErrors(t *testing.T) {
	c, _ := NewCloud("c", testBook())
	if err := c.BookExposure(time.Hour); err == nil {
		t.Fatal("BookExposure without store should fail")
	}
	store := telemetry.NewStore()
	c2, _ := NewCloud("c2", testBook(), WithTelemetry(store))
	if err := c2.BookExposure(0); err == nil {
		t.Fatal("zero window should fail")
	}
}

func TestInjectFailureUnknown(t *testing.T) {
	c, _ := NewCloud("c", testBook())
	if err := c.InjectFailure("nope"); err == nil {
		t.Fatal("unknown resource should fail")
	}
	if err := c.Repair("nope"); err == nil {
		t.Fatal("unknown resource should fail")
	}
}

func TestFleetBasics(t *testing.T) {
	a, _ := NewCloud("a", testBook())
	b, _ := NewCloud("b", testBook())
	f, err := NewFleet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFleet(a, a); err == nil {
		t.Fatal("duplicate clouds should fail")
	}
	names := f.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if _, err := f.Cloud("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Cloud("z"); err == nil {
		t.Fatal("unknown cloud should fail")
	}
}

func TestFleetDeploy(t *testing.T) {
	a, _ := NewCloud("prov", testBook())
	f, _ := NewFleet(a)
	sys := topology.ThreeTier("prov")
	ctx := context.Background()

	// HA on storage only (the paper's recommended option #3): one
	// standby volume.
	dep, err := f.Deploy(ctx, sys, map[string]int{"storage": 1})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if dep.NodeCount() != 3+2+1 {
		t.Fatalf("NodeCount = %d, want 6", dep.NodeCount())
	}
	if got := len(dep.Resources["storage"]); got != 2 {
		t.Fatalf("storage resources = %d, want 2", got)
	}
	// 3 VMs + 2 volumes + 1 gateway at test-book prices.
	want := cost.Dollars(3*100 + 2*50 + 200)
	if got := dep.MonthlyInfraCost(); got != want {
		t.Fatalf("MonthlyInfraCost = %v, want %v", got, want)
	}
	if bill := a.MonthlyBill(); bill != want {
		t.Fatalf("cloud bill = %v, want %v", bill, want)
	}

	if err := f.Teardown(dep); err != nil {
		t.Fatalf("Teardown: %v", err)
	}
	if bill := a.MonthlyBill(); bill != 0 {
		t.Fatalf("bill after teardown = %v, want 0", bill)
	}
}

func TestFleetDeployValidation(t *testing.T) {
	a, _ := NewCloud("prov", testBook())
	f, _ := NewFleet(a)
	ctx := context.Background()

	bad := topology.ThreeTier("prov")
	bad.Components = nil
	if _, err := f.Deploy(ctx, bad, nil); err == nil {
		t.Fatal("invalid system should fail")
	}
	if _, err := f.Deploy(ctx, topology.ThreeTier("elsewhere"), nil); err == nil {
		t.Fatal("unknown provider should fail")
	}
	if _, err := f.Deploy(ctx, topology.ThreeTier("prov"), map[string]int{"storage": -1}); err == nil {
		t.Fatal("negative standby should fail")
	}
	if _, err := f.Deploy(ctx, topology.ThreeTier("prov"), map[string]int{"gpu": 1}); err == nil {
		t.Fatal("unknown component in plan should fail")
	}
}

func TestFleetDeployRollsBackOnFailure(t *testing.T) {
	// A cloud that cannot price gateways fails mid-deploy; earlier
	// resources must be torn down.
	book := PriceBook{
		topology.ClassVirtualMachine: cost.Dollars(100),
		topology.ClassBlockVolume:    cost.Dollars(50),
	}
	a, _ := NewCloud("prov", book)
	f, _ := NewFleet(a)
	if _, err := f.Deploy(context.Background(), topology.ThreeTier("prov"), nil); err == nil {
		t.Fatal("deploy should fail on unpriced gateway class")
	}
	if bill := a.MonthlyBill(); bill != 0 {
		t.Fatalf("partial deploy left bill = %v, want 0 after rollback", bill)
	}
}

func TestDefaultFleetMatchesCatalog(t *testing.T) {
	cat := catalog.Default()
	f, err := DefaultFleet(cat)
	if err != nil {
		t.Fatalf("DefaultFleet: %v", err)
	}
	names := f.Names()
	if len(names) != 3 {
		t.Fatalf("fleet size = %d, want 3", len(names))
	}

	// Premium cloud prices must exceed the reference for every class.
	ref, _ := f.Cloud(catalog.ProviderSoftLayerSim)
	prem, _ := f.Cloud(catalog.ProviderStratus)
	ctx := context.Background()
	r1, err := ref.Provision(ctx, Spec{Class: topology.ClassVirtualMachine})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := prem.Provision(ctx, Spec{Class: topology.ClassVirtualMachine})
	if err != nil {
		t.Fatal(err)
	}
	if r2.MonthlyPrice <= r1.MonthlyPrice {
		t.Fatalf("premium price %v <= reference %v", r2.MonthlyPrice, r1.MonthlyPrice)
	}
}

func TestCloudConcurrentUse(t *testing.T) {
	store := telemetry.NewStore()
	c, _ := NewCloud("c", testBook(), WithTelemetry(store))
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r, err := c.Provision(ctx, Spec{Class: topology.ClassVirtualMachine})
				if err != nil {
					t.Errorf("Provision: %v", err)
					return
				}
				if err := c.InjectFailure(r.ID); err != nil {
					t.Errorf("InjectFailure: %v", err)
					return
				}
				if err := c.Repair(r.ID); err != nil {
					t.Errorf("Repair: %v", err)
					return
				}
				if err := c.Terminate(r.ID); err != nil {
					t.Errorf("Terminate: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(c.List()); got != 400 {
		t.Fatalf("List len = %d, want 400", got)
	}
	if bill := c.MonthlyBill(); bill != 0 {
		t.Fatalf("bill = %v, want 0", bill)
	}
}

// Package cloudsim is an in-process stand-in for the hybrid IaaS
// estate the paper's broker provisions into (IBM SoftLayer in the case
// study). Each Cloud exposes a minimal control plane — provision,
// terminate, inspect, bill — plus failure injection, and can feed a
// telemetry.Store so the broker's parameter database grows out of
// observed (simulated) operations exactly as Section II.C describes.
//
// The substitution is documented in DESIGN.md §5: the availability and
// TCO models only consume reliability parameters and rate cards, so an
// in-process provider exercises the same code paths as a live cloud
// while remaining reproducible.
package cloudsim

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"uptimebroker/internal/cost"
	"uptimebroker/internal/telemetry"
)

// ResourceKind classifies provisionable resources.
type ResourceKind int

// Resource kinds start at 1 so the zero value is invalid.
const (
	KindUnknown ResourceKind = iota
	KindInstance
	KindVolume
	KindGateway
)

// String returns the lower-case kind name.
func (k ResourceKind) String() string {
	switch k {
	case KindInstance:
		return "instance"
	case KindVolume:
		return "volume"
	case KindGateway:
		return "gateway"
	default:
		return "unknown"
	}
}

// KindForClass infers the resource kind from a component class name
// ("vm.*" are instances, "disk.*" volumes, "net.*" gateways).
func KindForClass(class string) ResourceKind {
	switch {
	case strings.HasPrefix(class, "vm."):
		return KindInstance
	case strings.HasPrefix(class, "disk."):
		return KindVolume
	case strings.HasPrefix(class, "net."):
		return KindGateway
	default:
		return KindUnknown
	}
}

// ResourceState tracks a resource's lifecycle.
type ResourceState int

// Resource states start at 1 so the zero value is invalid.
const (
	StateUnknown ResourceState = iota
	StateRunning
	StateFailed
	StateTerminated
)

// String returns the lower-case state name.
func (s ResourceState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateFailed:
		return "failed"
	case StateTerminated:
		return "terminated"
	default:
		return "unknown"
	}
}

// Spec requests one resource.
type Spec struct {
	// Class is the component class, e.g. "vm.virtualized"; it
	// determines both the kind and the price.
	Class string

	// Label tags the resource with its role, e.g. "compute/node-2".
	Label string
}

// Resource is one provisioned entity.
type Resource struct {
	ID           string
	Provider     string
	Kind         ResourceKind
	Class        string
	Label        string
	State        ResourceState
	MonthlyPrice cost.Money
	CreatedAt    time.Time
	FailedAt     time.Time // zero unless State == StateFailed
}

// PriceBook maps component classes to monthly unit prices on one cloud.
type PriceBook map[string]cost.Money

// Cloud simulates one provider's control plane. It is safe for
// concurrent use.
type Cloud struct {
	name   string
	prices PriceBook
	now    func() time.Time
	store  *telemetry.Store // optional outage sink

	mu        sync.Mutex
	resources map[string]*Resource
	nextID    int
}

// Option configures a Cloud.
type Option func(*Cloud)

// WithClock injects a time source; tests use a fake clock to make
// outage durations deterministic.
func WithClock(now func() time.Time) Option {
	return func(c *Cloud) { c.now = now }
}

// WithTelemetry wires outage observations into a telemetry store.
func WithTelemetry(store *telemetry.Store) Option {
	return func(c *Cloud) { c.store = store }
}

// NewCloud builds a cloud with the given price book.
func NewCloud(name string, prices PriceBook, opts ...Option) (*Cloud, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("cloudsim: empty cloud name")
	}
	if len(prices) == 0 {
		return nil, fmt.Errorf("cloudsim: cloud %q has an empty price book", name)
	}
	for class, p := range prices {
		if KindForClass(class) == KindUnknown {
			return nil, fmt.Errorf("cloudsim: cloud %q: class %q has no known kind", name, class)
		}
		if p < 0 {
			return nil, fmt.Errorf("cloudsim: cloud %q: class %q has negative price", name, class)
		}
	}
	c := &Cloud{
		name:      name,
		prices:    prices,
		now:       time.Now,
		resources: make(map[string]*Resource),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Name returns the provider name.
func (c *Cloud) Name() string { return c.name }

// Provision creates one resource. It honors context cancellation so
// orchestration layers can time-bound provisioning waves.
func (c *Cloud) Provision(ctx context.Context, spec Spec) (Resource, error) {
	if err := ctx.Err(); err != nil {
		return Resource{}, fmt.Errorf("cloudsim: provision canceled: %w", err)
	}
	price, ok := c.prices[spec.Class]
	if !ok {
		return Resource{}, fmt.Errorf("cloudsim: cloud %q does not offer class %q", c.name, spec.Class)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	r := &Resource{
		ID:           fmt.Sprintf("%s-%s-%06d", c.name, KindForClass(spec.Class), c.nextID),
		Provider:     c.name,
		Kind:         KindForClass(spec.Class),
		Class:        spec.Class,
		Label:        spec.Label,
		State:        StateRunning,
		MonthlyPrice: price,
		CreatedAt:    c.now(),
	}
	c.resources[r.ID] = r
	return *r, nil
}

// Terminate retires a resource; terminated resources stop billing.
func (c *Cloud) Terminate(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.resources[id]
	if !ok {
		return fmt.Errorf("cloudsim: unknown resource %q", id)
	}
	if r.State == StateTerminated {
		return fmt.Errorf("cloudsim: resource %q already terminated", id)
	}
	r.State = StateTerminated
	return nil
}

// Get returns a snapshot of one resource.
func (c *Cloud) Get(id string) (Resource, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.resources[id]
	if !ok {
		return Resource{}, false
	}
	return *r, true
}

// List returns snapshots of all resources sorted by ID.
func (c *Cloud) List() []Resource {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Resource, 0, len(c.resources))
	for _, r := range c.resources {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MonthlyBill sums the prices of all non-terminated resources.
func (c *Cloud) MonthlyBill() cost.Money {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total cost.Money
	for _, r := range c.resources {
		if r.State != StateTerminated {
			total += r.MonthlyPrice
		}
	}
	return total
}

// InjectFailure marks a running resource failed. The outage lasts until
// Repair.
func (c *Cloud) InjectFailure(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.resources[id]
	if !ok {
		return fmt.Errorf("cloudsim: unknown resource %q", id)
	}
	if r.State != StateRunning {
		return fmt.Errorf("cloudsim: resource %q is %s, cannot fail", id, r.State)
	}
	r.State = StateFailed
	r.FailedAt = c.now()
	return nil
}

// Repair returns a failed resource to service and, when a telemetry
// store is attached, records the outage under (provider, class).
func (c *Cloud) Repair(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.resources[id]
	if !ok {
		return fmt.Errorf("cloudsim: unknown resource %q", id)
	}
	if r.State != StateFailed {
		return fmt.Errorf("cloudsim: resource %q is %s, cannot repair", id, r.State)
	}
	outage := c.now().Sub(r.FailedAt)
	r.State = StateRunning
	r.FailedAt = time.Time{}
	if c.store != nil {
		if err := c.store.RecordOutage(c.name, r.Class, outage); err != nil {
			return fmt.Errorf("cloudsim: recording outage: %w", err)
		}
	}
	return nil
}

// BookExposure records node-time for every non-terminated resource
// over the given observation window into the attached telemetry store.
// Operators call it periodically (or once per simulated epoch) so
// estimates have a denominator.
func (c *Cloud) BookExposure(window time.Duration) error {
	if c.store == nil {
		return fmt.Errorf("cloudsim: cloud %q has no telemetry store", c.name)
	}
	if window <= 0 {
		return fmt.Errorf("cloudsim: exposure window %v, must be > 0", window)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	perClass := make(map[string]int)
	for _, r := range c.resources {
		if r.State != StateTerminated {
			perClass[r.Class]++
		}
	}
	for class, n := range perClass {
		if err := c.store.RecordExposure(c.name, class, time.Duration(n)*window); err != nil {
			return fmt.Errorf("cloudsim: booking exposure: %w", err)
		}
	}
	return nil
}

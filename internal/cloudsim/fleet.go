package cloudsim

import (
	"context"
	"fmt"
	"sort"

	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/topology"
)

// Fleet is the hybrid estate: the set of clouds the broker can place a
// workload on.
type Fleet struct {
	clouds map[string]*Cloud
}

// NewFleet assembles a fleet from clouds with unique names.
func NewFleet(clouds ...*Cloud) (*Fleet, error) {
	f := &Fleet{clouds: make(map[string]*Cloud, len(clouds))}
	for _, c := range clouds {
		if _, dup := f.clouds[c.Name()]; dup {
			return nil, fmt.Errorf("cloudsim: duplicate cloud %q", c.Name())
		}
		f.clouds[c.Name()] = c
	}
	return f, nil
}

// Cloud returns the named cloud.
func (f *Fleet) Cloud(name string) (*Cloud, error) {
	c, ok := f.clouds[name]
	if !ok {
		return nil, fmt.Errorf("cloudsim: unknown cloud %q", name)
	}
	return c, nil
}

// Names returns the fleet's cloud names, sorted.
func (f *Fleet) Names() []string {
	out := make([]string, 0, len(f.clouds))
	for n := range f.clouds {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Deployment records what a deployed system occupies on a cloud.
type Deployment struct {
	// System is the deployed base architecture's name.
	System string

	// Provider is the hosting cloud.
	Provider string

	// Resources maps component name to the resources backing it
	// (active nodes first, then standby nodes).
	Resources map[string][]Resource
}

// MonthlyInfraCost sums the deployment's resource prices.
func (d Deployment) MonthlyInfraCost() cost.Money {
	var total cost.Money
	for _, rs := range d.Resources {
		for _, r := range rs {
			total += r.MonthlyPrice
		}
	}
	return total
}

// NodeCount returns the total resources provisioned.
func (d Deployment) NodeCount() int {
	n := 0
	for _, rs := range d.Resources {
		n += len(rs)
	}
	return n
}

// Deploy provisions a base architecture onto its provider, adding the
// standby nodes the HA plan prescribes: standby[componentName] extra
// nodes of the component's class (0 or missing = no HA). On any
// provisioning error the partial deployment is torn down.
func (f *Fleet) Deploy(ctx context.Context, sys topology.System, standby map[string]int) (Deployment, error) {
	if err := sys.Validate(); err != nil {
		return Deployment{}, fmt.Errorf("cloudsim: %w", err)
	}
	cloud, err := f.Cloud(sys.Provider)
	if err != nil {
		return Deployment{}, err
	}
	for name, extra := range standby {
		if extra < 0 {
			return Deployment{}, fmt.Errorf("cloudsim: component %q: negative standby count %d", name, extra)
		}
		if _, ok := sys.Component(name); !ok {
			return Deployment{}, fmt.Errorf("cloudsim: standby plan names unknown component %q", name)
		}
	}

	dep := Deployment{
		System:    sys.Name,
		Provider:  sys.Provider,
		Resources: make(map[string][]Resource, len(sys.Components)),
	}
	teardown := func() {
		for _, rs := range dep.Resources {
			for _, r := range rs {
				// Best effort; terminated-twice is impossible here and
				// unknown IDs cannot occur.
				_ = cloud.Terminate(r.ID)
			}
		}
	}

	for _, comp := range sys.Components {
		total := comp.ActiveNodes + standby[comp.Name]
		for i := 0; i < total; i++ {
			role := "active"
			if i >= comp.ActiveNodes {
				role = "standby"
			}
			r, err := cloud.Provision(ctx, Spec{
				Class: comp.EffectiveClass(),
				Label: fmt.Sprintf("%s/%s/%s-%d", sys.Name, comp.Name, role, i),
			})
			if err != nil {
				teardown()
				return Deployment{}, fmt.Errorf("cloudsim: provisioning %q node %d: %w", comp.Name, i, err)
			}
			dep.Resources[comp.Name] = append(dep.Resources[comp.Name], r)
		}
	}
	return dep, nil
}

// Teardown terminates every resource of a deployment.
func (f *Fleet) Teardown(dep Deployment) error {
	cloud, err := f.Cloud(dep.Provider)
	if err != nil {
		return err
	}
	for _, rs := range dep.Resources {
		for _, r := range rs {
			if err := cloud.Terminate(r.ID); err != nil {
				return err
			}
		}
	}
	return nil
}

// basePriceBook is the reference per-class monthly unit pricing; each
// provider scales it by its catalog infrastructure multiplier, so
// catalog rate cards and simulated bills stay consistent.
var basePriceBook = PriceBook{
	topology.ClassVirtualMachine: cost.Dollars(220),
	topology.ClassBareMetal:      cost.Dollars(540),
	topology.ClassBlockVolume:    cost.Dollars(95),
	topology.ClassObjectStore:    cost.Dollars(60),
	topology.ClassGateway:        cost.Dollars(310),
	topology.ClassLoadBalancer:   cost.Dollars(180),
}

// DefaultFleet builds one cloud per catalog provider, pricing the base
// book through each provider's infrastructure multiplier, all wired to
// the given telemetry store (which may be nil) and clock options.
func DefaultFleet(cat *catalog.Catalog, opts ...Option) (*Fleet, error) {
	providers := cat.Providers()
	clouds := make([]*Cloud, 0, len(providers))
	for _, p := range providers {
		book := make(PriceBook, len(basePriceBook))
		for class, price := range basePriceBook {
			book[class] = price.MulFloat(p.RateCard.InfraMultiplier)
		}
		c, err := NewCloud(p.Name, book, opts...)
		if err != nil {
			return nil, err
		}
		clouds = append(clouds, c)
	}
	return NewFleet(clouds...)
}

package cloudsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"uptimebroker/internal/availability"
)

// VirtualClock is a manually driven time source for simulated
// operation. It is safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual time; pass this method as the
// cloud's WithClock option.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set advances the clock to t; the clock never moves backward.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// ChaosMonkey drives failure injection against one cloud over virtual
// time, with per-class reliability ground truth. Replaying an epoch
// produces exactly the outage history a monitoring pipeline would
// observe, which the cloud (when wired WithTelemetry) records into the
// broker's parameter database.
type ChaosMonkey struct {
	cloud *Cloud
	clock *VirtualClock
	rates map[string]availability.NodeParams
	rng   *rand.Rand
}

// NewChaosMonkey builds a chaos driver. rates maps component classes
// to their generative parameters; classes without an entry never fail.
func NewChaosMonkey(cloud *Cloud, clock *VirtualClock, rates map[string]availability.NodeParams, seed int64) (*ChaosMonkey, error) {
	if cloud == nil {
		return nil, fmt.Errorf("cloudsim: nil cloud")
	}
	if clock == nil {
		return nil, fmt.Errorf("cloudsim: nil clock")
	}
	for class, p := range rates {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("cloudsim: chaos rates for %q: %w", class, err)
		}
	}
	return &ChaosMonkey{
		cloud: cloud,
		clock: clock,
		rates: rates,
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// chaosEvent is one scheduled injection.
type chaosEvent struct {
	at     time.Duration // offset from epoch start
	id     string
	repair bool
}

// Run simulates one epoch of operation: it samples alternating-renewal
// outage histories for every running rated resource, injects them in
// time order, repairs anything still down at the epoch end, and books
// the epoch's exposure. It returns the number of outages injected.
func (m *ChaosMonkey) Run(epoch time.Duration) (int, error) {
	if epoch <= 0 {
		return 0, fmt.Errorf("cloudsim: epoch %v, must be > 0", epoch)
	}

	start := m.clock.Now()
	var events []chaosEvent
	for _, r := range m.cloud.List() {
		if r.State != StateRunning {
			continue
		}
		params, rated := m.rates[r.Class]
		if !rated || params.FailuresPerYear <= 0 {
			continue
		}
		mtbf := params.MTBF()
		mttr := params.MTTR()

		t := time.Duration(m.rng.ExpFloat64() * float64(mtbf))
		for t < epoch {
			events = append(events, chaosEvent{at: t, id: r.ID})
			down := time.Duration(m.rng.ExpFloat64() * float64(mttr))
			repairAt := t + down
			if repairAt > epoch {
				repairAt = epoch
			}
			events = append(events, chaosEvent{at: repairAt, id: r.ID, repair: true})
			t = repairAt + time.Duration(m.rng.ExpFloat64()*float64(mtbf))
		}
	}

	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Repair before the same resource's next failure at equal times.
		return events[i].repair && !events[j].repair
	})

	outages := 0
	for _, ev := range events {
		m.clock.Set(start.Add(ev.at))
		if ev.repair {
			if err := m.cloud.Repair(ev.id); err != nil {
				return outages, fmt.Errorf("cloudsim: chaos repair: %w", err)
			}
			continue
		}
		if err := m.cloud.InjectFailure(ev.id); err != nil {
			return outages, fmt.Errorf("cloudsim: chaos failure: %w", err)
		}
		outages++
	}

	m.clock.Set(start.Add(epoch))
	if m.cloud.store != nil {
		if err := m.cloud.BookExposure(epoch); err != nil {
			return outages, err
		}
	}
	return outages, nil
}

package cloudsim

import (
	"context"
	"math"
	"testing"
	"time"

	"uptimebroker/internal/availability"
	"uptimebroker/internal/telemetry"
	"uptimebroker/internal/topology"
)

func TestNewChaosMonkeyValidation(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	cloud, _ := NewCloud("c", testBook(), WithClock(clock.Now))

	if _, err := NewChaosMonkey(nil, clock, nil, 1); err == nil {
		t.Fatal("nil cloud should fail")
	}
	if _, err := NewChaosMonkey(cloud, nil, nil, 1); err == nil {
		t.Fatal("nil clock should fail")
	}
	bad := map[string]availability.NodeParams{"vm.virtualized": {Down: -1}}
	if _, err := NewChaosMonkey(cloud, clock, bad, 1); err == nil {
		t.Fatal("invalid rates should fail")
	}
}

func TestVirtualClockMonotone(t *testing.T) {
	clock := NewVirtualClock(time.Unix(100, 0))
	clock.Set(time.Unix(50, 0)) // backward: ignored
	if got := clock.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Fatalf("clock moved backward to %v", got)
	}
	clock.Set(time.Unix(200, 0))
	if got := clock.Now(); !got.Equal(time.Unix(200, 0)) {
		t.Fatalf("clock = %v, want 200", got)
	}
}

func TestChaosRunRejectsBadEpoch(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	cloud, _ := NewCloud("c", testBook(), WithClock(clock.Now))
	m, err := NewChaosMonkey(cloud, clock, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Fatal("zero epoch should fail")
	}
}

func TestChaosEstimatesConvergeToGroundTruth(t *testing.T) {
	// The full loop: provision an estate, run chaos for many simulated
	// years, and check the telemetry estimates recover the configured
	// ground truth.
	clock := NewVirtualClock(time.Unix(1_000_000, 0))
	store := telemetry.NewStore()
	cloud, err := NewCloud("sim", testBook(), WithClock(clock.Now), WithTelemetry(store))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := cloud.Provision(ctx, Spec{Class: topology.ClassVirtualMachine}); err != nil {
			t.Fatal(err)
		}
	}

	truth := availability.NodeParams{Down: 0.01, FailuresPerYear: 12}
	monkey, err := NewChaosMonkey(cloud, clock,
		map[string]availability.NodeParams{topology.ClassVirtualMachine: truth}, 42)
	if err != nil {
		t.Fatal(err)
	}

	// 20 years × 10 nodes = 200 node-years, ~2400 outages.
	outages, err := monkey.Run(20 * 365 * 24 * time.Hour)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outages < 1500 {
		t.Fatalf("outages = %d, expected ≈ 2400", outages)
	}

	est, err := store.Estimate("sim", topology.ClassVirtualMachine)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if rel := math.Abs(est.Node.Down-truth.Down) / truth.Down; rel > 0.15 {
		t.Fatalf("estimated Down %v vs truth %v (rel %v)", est.Node.Down, truth.Down, rel)
	}
	if rel := math.Abs(est.Node.FailuresPerYear-truth.FailuresPerYear) / truth.FailuresPerYear; rel > 0.1 {
		t.Fatalf("estimated f %v vs truth %v (rel %v)", est.Node.FailuresPerYear, truth.FailuresPerYear, rel)
	}
	if est.ExposureYears < 199 || est.ExposureYears > 201 {
		t.Fatalf("exposure = %v, want ≈ 200", est.ExposureYears)
	}

	// All resources must be back in running state (epoch-end repairs).
	for _, r := range cloud.List() {
		if r.State != StateRunning {
			t.Fatalf("resource %s left %s after chaos", r.ID, r.State)
		}
	}
}

func TestChaosSkipsUnratedAndTerminated(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	store := telemetry.NewStore()
	cloud, _ := NewCloud("sim", testBook(), WithClock(clock.Now), WithTelemetry(store))
	ctx := context.Background()

	unrated, _ := cloud.Provision(ctx, Spec{Class: topology.ClassGateway})
	doomed, _ := cloud.Provision(ctx, Spec{Class: topology.ClassVirtualMachine})
	if err := cloud.Terminate(doomed.ID); err != nil {
		t.Fatal(err)
	}

	monkey, err := NewChaosMonkey(cloud, clock, map[string]availability.NodeParams{
		topology.ClassVirtualMachine: {Down: 0.05, FailuresPerYear: 50},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	outages, err := monkey.Run(365 * 24 * time.Hour)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if outages != 0 {
		t.Fatalf("outages = %d, want 0 (only unrated/terminated resources)", outages)
	}
	if got, _ := cloud.Get(unrated.ID); got.State != StateRunning {
		t.Fatalf("unrated resource state = %v", got.State)
	}
}

func TestChaosDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		clock := NewVirtualClock(time.Unix(0, 0))
		store := telemetry.NewStore()
		cloud, _ := NewCloud("sim", testBook(), WithClock(clock.Now), WithTelemetry(store))
		for i := 0; i < 4; i++ {
			_, _ = cloud.Provision(context.Background(), Spec{Class: topology.ClassVirtualMachine})
		}
		monkey, err := NewChaosMonkey(cloud, clock, map[string]availability.NodeParams{
			topology.ClassVirtualMachine: {Down: 0.02, FailuresPerYear: 12},
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		n, err := monkey.Run(2 * 365 * 24 * time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if run(5) != run(5) {
		t.Fatal("same seed, different outage counts")
	}
}

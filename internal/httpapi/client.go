package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"uptimebroker/internal/obs"
)

// APIError is the typed client-side form of a server problem+json
// response. Callers dispatch on Code (stable) or Status.
type APIError struct {
	// Status is the HTTP status code.
	Status int

	// Code is the machine-readable problem code, e.g. "job_not_found".
	Code string

	// Title and Detail are the problem's human-readable parts.
	Title  string
	Detail string

	// RequestID correlates with server logs when present.
	RequestID string

	// Method and Path locate the failing call.
	Method string
	Path   string

	// RetryAfter is the server-directed wait from a Retry-After
	// header (429/503 responses), zero when absent. The retry loop
	// honors it in place of its own backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	msg := e.Detail
	if msg == "" {
		msg = e.Title
	}
	if msg == "" {
		msg = http.StatusText(e.Status)
	}
	return fmt.Sprintf("httpapi: %s %s: %s (HTTP %d, code %s)", e.Method, e.Path, msg, e.Status, e.Code)
}

// Client is a typed client for the brokerage API, v1 and v2.
type Client struct {
	baseURL  string
	http     *http.Client
	retries  int
	backoff  time.Duration
	pollBase time.Duration
	solver   *SolverConfigDTO
	pricing  string
}

// ClientOption customizes NewClient.
type ClientOption func(*Client)

// WithHTTPClient swaps the underlying *http.Client (for custom
// transports, proxies, or httptest clients).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) {
		if hc != nil {
			c.http = hc
		}
	}
}

// WithRetries enables up to n retries of idempotent (GET) calls on
// transport errors and retryable statuses (429, 502, 503, 504).
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithRetryBackoff sets the base backoff between retries (default
// 100ms, doubling per attempt).
func WithRetryBackoff(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// WithPollInterval sets WaitJob's initial poll interval (default
// 25ms, doubling to a 1s ceiling).
func WithPollInterval(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.pollBase = d
		}
	}
}

// WithSolverConfig sets a default solver specification stamped onto
// every outgoing recommendation-type request (Recommend, Pareto,
// SubmitJob, RecommendBatch) that does not make any solver choice
// itself. A request naming a strategy — flat or nested — or carrying
// its own solver object is sent untouched; the server default remains
// "auto" with no limits.
func WithSolverConfig(cfg SolverConfigDTO) ClientOption {
	return func(c *Client) { c.solver = &cfg }
}

// WithBudget sets a default anytime budget — a wall-clock cap and/or
// an evaluation cap, zero meaning unlimited — merged into the
// client's default solver spec. Composes with WithStrategy and
// WithSolverConfig in any order (later strategy options keep the
// budget, and vice versa).
func WithBudget(wall time.Duration, maxEvaluations int64) ClientOption {
	return func(c *Client) {
		if c.solver == nil {
			c.solver = &SolverConfigDTO{}
		}
		c.solver.BudgetMS = wall.Milliseconds()
		c.solver.MaxEvaluations = maxEvaluations
	}
}

// WithStrategy sets a default solver strategy stamped onto every
// outgoing recommendation-type request that does not make a solver
// choice itself. It delegates to the same default spec as
// WithSolverConfig and WithBudget, so the three compose. A
// per-request strategy always wins; the server default remains
// "auto".
func WithStrategy(strategy string) ClientOption {
	return func(c *Client) {
		if c.solver == nil {
			c.solver = &SolverConfigDTO{}
		}
		c.solver.Strategy = strategy
	}
}

// WithPricing sets a default card-pricing mode ("parallel",
// "sequential" or "auto") stamped onto every outgoing
// recommendation-type request that does not set one itself. A
// per-request Pricing field always wins; the server default remains
// auto (parallel only when the host shape pays for it).
func WithPricing(mode string) ClientOption {
	return func(c *Client) { c.pricing = mode }
}

// withDefaults returns req with the client's default solver spec and
// pricing mode applied where the request leaves the choice open. The
// solver default applies wholesale or not at all: a request that names
// a flat strategy or carries any nested spec already made its choice,
// and half-merging a client budget under it would change semantics the
// caller spelled out.
func (c *Client) withDefaults(req RecommendationRequest) RecommendationRequest {
	if req.Strategy == "" && req.Solver == nil && c.solver != nil {
		cfg := *c.solver
		req.Solver = &cfg
	}
	if req.Pricing == "" {
		req.Pricing = c.pricing
	}
	return req
}

// NewClient builds a client for the given base URL (for example
// "http://127.0.0.1:8080"). httpClient may be nil to use
// http.DefaultClient; options refine behavior further.
func NewClient(baseURL string, httpClient *http.Client, opts ...ClientOption) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("httpapi: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		baseURL:  strings.TrimRight(baseURL, "/"),
		http:     httpClient,
		backoff:  100 * time.Millisecond,
		pollBase: 25 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.baseURL }

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, http.MethodGet, "/healthz", nil, &out)
}

// Ready checks GET /readyz: nil once the server's job store is open
// and recovery is complete, a problem-typed error (503 unavailable)
// before that.
func (c *Client) Ready(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, http.MethodGet, "/readyz", nil, &out)
}

// Metrics fetches the server's operational counters: job subsystem
// metrics, result-cache hit/miss/inflight counters (when the server
// caches) and the invalidation epochs behind the cache keys.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var out MetricsResponse
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// MetricsSnapshot fetches one full metrics-registry snapshot — the
// polling form of the /v2/metrics/events stream.
func (c *Client) MetricsSnapshot(ctx context.Context) (obs.Snapshot, error) {
	var out obs.Snapshot
	err := c.do(ctx, http.MethodGet, "/v2/metrics/events", nil, &out)
	return out, err
}

// WatchMetrics delivers registry snapshots to fn on a cadence until
// ctx is done (when it returns ctx.Err()) or the server becomes
// unreachable. It prefers the GET /v2/metrics/events SSE stream and
// degrades to polling MetricsSnapshot when the stream is unavailable
// — same contract as WaitJob's progress streaming. interval <= 0 uses
// the server's default cadence.
func (c *Client) WatchMetrics(ctx context.Context, interval time.Duration, fn func(obs.Snapshot)) error {
	for {
		if handled, err := c.streamMetrics(ctx, interval, fn); handled {
			return err
		}
		// SSE unavailable: poll once, then retry the stream — a server
		// restart mid-stream recovers without the caller noticing.
		snap, err := c.MetricsSnapshot(ctx)
		if err != nil {
			return err
		}
		fn(snap)
		wait := interval
		if wait <= 0 {
			wait = 2 * time.Second
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// streamMetrics consumes the SSE metrics stream. handled=false means
// the caller should fall back to polling.
func (c *Client) streamMetrics(ctx context.Context, interval time.Duration, fn func(obs.Snapshot)) (handled bool, err error) {
	path := c.baseURL + "/v2/metrics/events"
	if interval > 0 {
		path += "?interval=" + url.QueryEscape(interval.String())
	}
	req, reqErr := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if reqErr != nil {
		return false, nil
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, doErr := c.http.Do(req)
	if doErr != nil {
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		return false, nil
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		return false, nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "" && len(data) > 0:
			var snap obs.Snapshot
			if jsonErr := json.Unmarshal(data, &snap); jsonErr != nil {
				return false, nil
			}
			data = data[:0]
			fn(snap)
		}
	}
	if ctx.Err() != nil {
		return true, ctx.Err()
	}
	// Stream ended without cancellation (server restart, proxy
	// timeout): resume by polling.
	return false, nil
}

// Recommend submits a synchronous recommendation request.
func (c *Client) Recommend(ctx context.Context, req RecommendationRequest) (RecommendationResponse, error) {
	var out RecommendationResponse
	err := c.do(ctx, http.MethodPost, "/v1/recommendations", c.withDefaults(req), &out)
	return out, err
}

// Pareto submits a request and returns only the cost × uptime frontier
// cards.
func (c *Client) Pareto(ctx context.Context, req RecommendationRequest) ([]OptionCardDTO, error) {
	var out []OptionCardDTO
	err := c.do(ctx, http.MethodPost, "/v1/pareto", c.withDefaults(req), &out)
	return out, err
}

// Technologies lists the catalog's HA technologies.
func (c *Client) Technologies(ctx context.Context) ([]TechnologyDTO, error) {
	var out []TechnologyDTO
	err := c.do(ctx, http.MethodGet, "/v1/catalog/technologies", nil, &out)
	return out, err
}

// Providers lists the catalog's cloud providers.
func (c *Client) Providers(ctx context.Context) ([]ProviderDTO, error) {
	var out []ProviderDTO
	err := c.do(ctx, http.MethodGet, "/v1/catalog/providers", nil, &out)
	return out, err
}

// Params fetches the parameter estimate for one (provider, class).
func (c *Client) Params(ctx context.Context, provider, class string) (ParamsResponse, error) {
	var out ParamsResponse
	path := "/v1/params?provider=" + url.QueryEscape(provider) + "&class=" + url.QueryEscape(class)
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Scenarios lists the built-in scenario library for a provider
// (defaulting to the reference provider when empty).
func (c *Client) Scenarios(ctx context.Context, provider string) ([]ScenarioDTO, error) {
	path := "/v1/scenarios"
	if provider != "" {
		path += "?provider=" + url.QueryEscape(provider)
	}
	var out []ScenarioDTO
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// ScenarioRecommendation runs the brokerage on a built-in scenario.
func (c *Client) ScenarioRecommendation(ctx context.Context, name, provider string) (RecommendationResponse, error) {
	path := "/v1/scenarios/" + url.PathEscape(name) + "/recommendation"
	if provider != "" {
		path += "?provider=" + url.QueryEscape(provider)
	}
	var out RecommendationResponse
	err := c.do(ctx, http.MethodPost, path, nil, &out)
	return out, err
}

// Observe submits one telemetry observation.
func (c *Client) Observe(ctx context.Context, obs Observation) error {
	var out map[string]string
	return c.do(ctx, http.MethodPost, "/v1/observations", obs, &out)
}

// JobStatus is the client-side form of an async job; Result stays raw
// until decoded by Recommendation or ParetoFront.
type JobStatus struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	State      string          `json:"state"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Progress   *JobProgressDTO `json:"progress,omitempty"`
	Error      *JobErrorDTO    `json:"error,omitempty"`
}

// Terminal reports whether the job reached a final state.
func (j JobStatus) Terminal() bool {
	switch j.State {
	case jobsStateDone, jobsStateFailed, jobsStateCancelled:
		return true
	}
	return false
}

// Mirror of the jobs package states, avoiding a client→jobs import.
const (
	jobsStateDone      = "done"
	jobsStateFailed    = "failed"
	jobsStateCancelled = "cancelled"
)

// Recommendation decodes a finished recommend job's result.
func (j JobStatus) Recommendation() (RecommendationResponse, error) {
	var out RecommendationResponse
	if j.State != jobsStateDone {
		return out, fmt.Errorf("httpapi: job %s is %s, not done", j.ID, j.State)
	}
	if err := json.Unmarshal(j.Result, &out); err != nil {
		return out, fmt.Errorf("httpapi: decoding job result: %w", err)
	}
	return out, nil
}

// ParetoFront decodes a finished pareto job's result.
func (j JobStatus) ParetoFront() ([]OptionCardDTO, error) {
	if j.State != jobsStateDone {
		return nil, fmt.Errorf("httpapi: job %s is %s, not done", j.ID, j.State)
	}
	var out []OptionCardDTO
	if err := json.Unmarshal(j.Result, &out); err != nil {
		return nil, fmt.Errorf("httpapi: decoding job result: %w", err)
	}
	return out, nil
}

// SubmitJob starts an async job (kind "recommend" or "pareto") and
// returns its queued status immediately.
func (c *Client) SubmitJob(ctx context.Context, kind string, req RecommendationRequest) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodPost, "/v2/jobs", JobRequest{Kind: kind, Request: c.withDefaults(req)}, &out)
	return out, err
}

// GetJob polls one job.
func (c *Client) GetJob(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	err := c.do(ctx, http.MethodDelete, "/v2/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// JobProgress is one live progress observation delivered to a
// WithProgress callback while waiting on a job.
type JobProgress struct {
	// JobID identifies the job.
	JobID string

	// State is the job's lifecycle state at observation time.
	State string

	// Evaluated and SpaceSize are the enumeration's position: how
	// many of the k^n candidates have been accounted for. Zero until
	// the job's search loops report anything.
	Evaluated int64
	SpaceSize int64

	// Strategy is the concrete solver the job's search resolved to,
	// once known ("auto" requests see the heuristic's pick).
	Strategy string
}

// Fraction returns the completed share of the search space in [0, 1].
func (p JobProgress) Fraction() float64 {
	if p.SpaceSize <= 0 {
		return 0
	}
	f := float64(p.Evaluated) / float64(p.SpaceSize)
	if f > 1 {
		f = 1
	}
	return f
}

// progressOf maps a job status to its progress observation.
func progressOf(status JobStatus) JobProgress {
	p := JobProgress{JobID: status.ID, State: status.State}
	if status.Progress != nil {
		p.Evaluated = status.Progress.Evaluated
		p.SpaceSize = status.Progress.SpaceSize
		p.Strategy = status.Progress.Strategy
	}
	return p
}

// waitConfig collects WaitJob's per-call options.
type waitConfig struct {
	onProgress func(JobProgress)
}

// WaitOption customizes one WaitJob call.
type WaitOption func(*waitConfig)

// WithProgress registers a callback receiving live progress while the
// job runs: state transitions and evaluated/space_size updates. The
// client subscribes to the server's Server-Sent Events stream and
// falls back to polling against servers (or transports) that cannot
// stream; either way the callback observes a monotonically advancing
// enumeration. The callback runs on the waiting goroutine — keep it
// fast.
func WithProgress(fn func(JobProgress)) WaitOption {
	return func(c *waitConfig) { c.onProgress = fn }
}

// WaitJob waits until the job reaches a terminal state or ctx
// expires, streaming progress when a WithProgress option asks for it
// and polling with exponential backoff otherwise.
func (c *Client) WaitJob(ctx context.Context, id string, opts ...WaitOption) (JobStatus, error) {
	var cfg waitConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.onProgress != nil {
		if status, handled, err := c.streamJob(ctx, id, cfg.onProgress); handled {
			return status, err
		}
		// SSE unavailable (older server, buffering proxy, transport
		// error mid-stream): degrade to polling below.
	}

	interval := c.pollBase
	const maxInterval = time.Second
	var last JobProgress
	reported := false
	for {
		status, err := c.GetJob(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		if cfg.onProgress != nil {
			if p := progressOf(status); !reported || p != last {
				cfg.onProgress(p)
				last, reported = p, true
			}
		}
		if status.Terminal() {
			return status, nil
		}
		select {
		case <-ctx.Done():
			return status, ctx.Err()
		case <-time.After(interval):
		}
		if interval < maxInterval {
			interval *= 2
			if interval > maxInterval {
				interval = maxInterval
			}
		}
	}
}

// streamJob consumes GET /v2/jobs/{id}/events as Server-Sent Events.
// handled reports whether the stream answered the wait; false means
// the caller should fall back to polling (it is returned with a nil
// error for transport-level trouble, so the fallback decides what the
// client ultimately sees).
func (c *Client) streamJob(ctx context.Context, id string, onProgress func(JobProgress)) (status JobStatus, handled bool, err error) {
	req, reqErr := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+"/v2/jobs/"+url.PathEscape(id)+"/events", nil)
	if reqErr != nil {
		return JobStatus{}, false, nil
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, doErr := c.http.Do(req)
	if doErr != nil {
		// Context cancellation is final; other transport errors fall
		// back to polling.
		if ctx.Err() != nil {
			return JobStatus{}, true, ctx.Err()
		}
		return JobStatus{}, false, nil
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		// 404s, problems and polling-fallback JSON all route through
		// GetJob for a properly typed error.
		return JobStatus{}, false, nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "" && len(data) > 0:
			var st JobStatus
			if jsonErr := json.Unmarshal(data, &st); jsonErr != nil {
				return JobStatus{}, false, nil
			}
			data = data[:0]
			onProgress(progressOf(st))
			if st.Terminal() {
				// Stream events never carry the result payload; fetch
				// the full job document now that it is final.
				full, getErr := c.GetJob(ctx, id)
				if getErr != nil {
					return JobStatus{}, true, getErr
				}
				return full, true, nil
			}
		}
	}
	if ctx.Err() != nil {
		return JobStatus{}, true, ctx.Err()
	}
	// Stream ended without a terminal event (server restarted, proxy
	// timeout): resume by polling.
	return JobStatus{}, false, nil
}

// ListOption narrows a ListJobs call.
type ListOption func(url.Values)

// WithStateFilter restricts the listing to one lifecycle state
// (queued, running, done, failed or cancelled).
func WithStateFilter(state string) ListOption {
	return func(q url.Values) {
		if state != "" {
			q.Set("state", state)
		}
	}
}

// WithLimit caps how many jobs the server returns (newest first).
func WithLimit(n int) ListOption {
	return func(q url.Values) {
		if n > 0 {
			q.Set("limit", strconv.Itoa(n))
		}
	}
}

// ListJobs lists the server's retained jobs, newest first, optionally
// filtered and paginated.
func (c *Client) ListJobs(ctx context.Context, opts ...ListOption) ([]JobStatus, error) {
	q := url.Values{}
	for _, opt := range opts {
		opt(q)
	}
	path := "/v2/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Jobs, err
}

// RecommendBatch prices many scenarios in one call; the server fans
// them out across its worker pool. Per-item failures appear on the
// corresponding result entries, not as a call error.
func (c *Client) RecommendBatch(ctx context.Context, reqs []RecommendationRequest) (BatchResponse, error) {
	stamped := make([]RecommendationRequest, len(reqs))
	for i, req := range reqs {
		stamped[i] = c.withDefaults(req)
	}
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v2/recommendations/batch", BatchRequest{Requests: stamped}, &out)
	return out, err
}

// retryableStatus reports whether a response status is worth retrying
// on an idempotent call.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// maxRetryDelay caps any single wait between attempts — exponential
// growth and server-directed Retry-After alike — so a long retry
// budget cannot park a caller for minutes.
const maxRetryDelay = 30 * time.Second

// retryDelay computes the wait before retry number attempt (1-based).
// The base doubles per attempt with the shift capped so it cannot
// overflow time.Duration, the result clamps to maxRetryDelay, and full
// jitter draws uniformly from (0, d] so synchronized clients spread
// out instead of reconverging on the server in lockstep.
func (c *Client) retryDelay(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 20 { // 100ms << 20 is already over maxRetryDelay
		shift = 20
	}
	d := c.backoff << shift
	if d <= 0 || d > maxRetryDelay {
		d = maxRetryDelay
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// serverRetryAfter extracts a server-directed wait from the previous
// attempt's error, zero when the server did not name one.
func serverRetryAfter(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
		if apiErr.RetryAfter > maxRetryDelay {
			return maxRetryDelay
		}
		return apiErr.RetryAfter
	}
	return 0
}

// parseRetryAfter reads a Retry-After response header: delta-seconds
// or an HTTP-date, per RFC 9110 §10.2.3. Zero when absent or
// malformed.
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// do performs one round trip with JSON bodies in both directions,
// retrying idempotent calls per the client's retry policy.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("httpapi: encoding request: %w", err)
		}
		payload = buf
	}

	idempotent := method == http.MethodGet
	attempts := 1
	if idempotent {
		attempts += c.retries
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// A server-directed Retry-After beats the local backoff:
			// the server knows when capacity returns, the client is
			// guessing.
			delay := serverRetryAfter(lastErr)
			if delay == 0 {
				delay = c.retryDelay(attempt)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
		}
		retry, err := c.roundTrip(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retry {
			return err
		}
	}
	return lastErr
}

// roundTrip performs a single exchange; retry reports whether the
// failure is transient enough to try again.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte, out any) (retry bool, err error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return false, fmt.Errorf("httpapi: building request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}

	resp, err := c.http.Do(req)
	if err != nil {
		// Transport errors are retryable unless the context is done.
		return ctx.Err() == nil, fmt.Errorf("httpapi: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()

	if resp.StatusCode >= 400 {
		apiErr := &APIError{
			Status:     resp.StatusCode,
			Method:     method,
			Path:       path,
			RetryAfter: parseRetryAfter(resp),
		}
		var prob Problem
		if decodeErr := json.NewDecoder(resp.Body).Decode(&prob); decodeErr == nil {
			apiErr.Code = prob.Code
			apiErr.Title = prob.Title
			apiErr.RequestID = prob.RequestID
			apiErr.Detail = prob.Detail
			if apiErr.Detail == "" {
				apiErr.Detail = prob.LegacyError
			}
		}
		if apiErr.Code == "" {
			apiErr.Code = CodeInternal
		}
		return retryableStatus(resp.StatusCode), apiErr
	}
	if out == nil {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, fmt.Errorf("httpapi: decoding response: %w", err)
	}
	return false, nil
}

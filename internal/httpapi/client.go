package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client is a typed client for the brokerage API.
type Client struct {
	baseURL string
	http    *http.Client
}

// NewClient builds a client for the given base URL (for example
// "http://127.0.0.1:8080"). httpClient may be nil to use
// http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("httpapi: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), http: httpClient}, nil
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]string
	return c.do(ctx, http.MethodGet, "/healthz", nil, &out)
}

// Recommend submits a recommendation request.
func (c *Client) Recommend(ctx context.Context, req RecommendationRequest) (RecommendationResponse, error) {
	var out RecommendationResponse
	err := c.do(ctx, http.MethodPost, "/v1/recommendations", req, &out)
	return out, err
}

// Pareto submits a request and returns only the cost × uptime frontier
// cards.
func (c *Client) Pareto(ctx context.Context, req RecommendationRequest) ([]OptionCardDTO, error) {
	var out []OptionCardDTO
	err := c.do(ctx, http.MethodPost, "/v1/pareto", req, &out)
	return out, err
}

// Technologies lists the catalog's HA technologies.
func (c *Client) Technologies(ctx context.Context) ([]TechnologyDTO, error) {
	var out []TechnologyDTO
	err := c.do(ctx, http.MethodGet, "/v1/catalog/technologies", nil, &out)
	return out, err
}

// Providers lists the catalog's cloud providers.
func (c *Client) Providers(ctx context.Context) ([]ProviderDTO, error) {
	var out []ProviderDTO
	err := c.do(ctx, http.MethodGet, "/v1/catalog/providers", nil, &out)
	return out, err
}

// Params fetches the parameter estimate for one (provider, class).
func (c *Client) Params(ctx context.Context, provider, class string) (ParamsResponse, error) {
	var out ParamsResponse
	path := "/v1/params?provider=" + url.QueryEscape(provider) + "&class=" + url.QueryEscape(class)
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Scenarios lists the built-in scenario library for a provider
// (defaulting to the reference provider when empty).
func (c *Client) Scenarios(ctx context.Context, provider string) ([]ScenarioDTO, error) {
	path := "/v1/scenarios"
	if provider != "" {
		path += "?provider=" + url.QueryEscape(provider)
	}
	var out []ScenarioDTO
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// ScenarioRecommendation runs the brokerage on a built-in scenario.
func (c *Client) ScenarioRecommendation(ctx context.Context, name, provider string) (RecommendationResponse, error) {
	path := "/v1/scenarios/" + url.PathEscape(name) + "/recommendation"
	if provider != "" {
		path += "?provider=" + url.QueryEscape(provider)
	}
	var out RecommendationResponse
	err := c.do(ctx, http.MethodPost, path, nil, &out)
	return out, err
}

// Observe submits one telemetry observation.
func (c *Client) Observe(ctx context.Context, obs Observation) error {
	var out map[string]string
	return c.do(ctx, http.MethodPost, "/v1/observations", obs, &out)
}

// do performs one round trip with JSON bodies in both directions.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("httpapi: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return fmt.Errorf("httpapi: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}

	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("httpapi: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()

	if resp.StatusCode >= 400 {
		var apiErr errorResponse
		if decodeErr := json.NewDecoder(resp.Body).Decode(&apiErr); decodeErr == nil && apiErr.Error != "" {
			return fmt.Errorf("httpapi: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("httpapi: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("httpapi: decoding response: %w", err)
	}
	return nil
}

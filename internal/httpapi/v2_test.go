package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/topology"
)

// wideWireRequest builds a request whose 2^n-candidate space takes
// long enough that a cancel round-trip lands while it enumerates.
func wideWireRequest(n int) RecommendationRequest {
	comps := make([]topology.Component, n)
	allowed := make(map[string][]string, n)
	for i := range comps {
		name := fmt.Sprintf("tier-%02d", i)
		comps[i] = topology.Component{
			Name:        name,
			Layer:       topology.LayerCompute,
			ActiveNodes: 1,
			Class:       topology.ClassVirtualMachine,
		}
		allowed[name] = []string{catalog.TechESXHA}
	}
	return RecommendationRequest{
		Base: topology.System{
			Name:       "wide",
			Provider:   catalog.ProviderSoftLayerSim,
			Components: comps,
		},
		SLAPercent:        98,
		PenaltyPerHourUSD: 100,
		AllowedTechs:      allowed,
	}
}

func TestJobLifecycleRecommend(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if job.ID == "" || job.Kind != JobKindRecommend {
		t.Fatalf("submit returned %+v", job)
	}

	job, err = client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if job.State != "done" {
		t.Fatalf("state = %s (error %+v), want done", job.State, job.Error)
	}
	got, err := job.Recommendation()
	if err != nil {
		t.Fatalf("Recommendation: %v", err)
	}

	// The async answer must match the synchronous one exactly.
	want, err := client.Recommend(ctx, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if got.BestOption != want.BestOption || len(got.Cards) != len(want.Cards) || got.SavingsPercent != want.SavingsPercent {
		t.Fatalf("async result diverges from sync: %+v vs %+v", got, want)
	}
}

func TestJobLifecyclePareto(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	job, err := client.SubmitJob(ctx, JobKindPareto, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	job, err = client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	front, err := job.ParetoFront()
	if err != nil {
		t.Fatal(err)
	}
	want, err := client.Pareto(ctx, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != len(want) {
		t.Fatalf("async pareto has %d cards, sync %d", len(front), len(want))
	}
}

func TestJobSubmitLocationHeader(t *testing.T) {
	ts, _, _ := newTestServer(t)
	body, _ := json.Marshal(JobRequest{Kind: JobKindRecommend, Request: caseStudyWire()})
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var job JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v2/jobs/"+job.ID {
		t.Fatalf("Location = %q, want /v2/jobs/%s", loc, job.ID)
	}
	if job.State != "queued" {
		t.Fatalf("state = %s, want queued", job.State)
	}
}

func TestJobCancelMidRun(t *testing.T) {
	ts, srv, client := newDurableServer(t, t.TempDir())
	defer func() { ts.Close(); srv.Close() }()
	ctx := context.Background()

	// A gated job stands in for a long enumeration: it blocks until
	// its context is cancelled, so the test observes the running state
	// deterministically instead of racing the evaluator (which prices
	// even wide instances faster than an HTTP round-trip since the
	// incremental-evaluation engine landed). Enumeration-level
	// cancellation is covered by the optimize and broker context
	// tests.
	started := make(chan struct{})
	snap, err := srv.jobs.Submit("recommend", nil, func(jctx context.Context) (any, error) {
		close(started)
		<-jctx.Done()
		return nil, jctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	job := JobStatus{ID: snap.ID}

	// Wait for the job surface to report it running, then cancel it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := client.GetJob(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == "running" {
			break
		}
		if got.Terminal() {
			t.Fatalf("job reached %s before it could be cancelled", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := client.CancelJob(ctx, job.ID); err != nil {
		t.Fatalf("CancelJob: %v", err)
	}

	got, err := client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "cancelled" {
		t.Fatalf("state after cancel = %s, want cancelled", got.State)
	}
	if got.Error == nil || got.Error.Code != "cancelled" {
		t.Fatalf("cancelled job error = %+v", got.Error)
	}
}

func TestJobNotFound(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	_, err := client.GetJob(ctx, "job-00009999")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("GetJob unknown = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusNotFound || apiErr.Code != CodeJobNotFound {
		t.Fatalf("APIError = %+v", apiErr)
	}

	if _, err := client.CancelJob(ctx, "job-00009999"); !errors.As(err, &apiErr) || apiErr.Code != CodeJobNotFound {
		t.Fatalf("CancelJob unknown = %v", err)
	}
}

func TestJobCancelFinishedConflicts(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitJob(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	_, err = client.CancelJob(ctx, job.ID)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict || apiErr.Code != CodeJobFinished {
		t.Fatalf("cancel finished job = %v, want 409 %s", err, CodeJobFinished)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	ts, client, _ := newTestServer(t)
	ctx := context.Background()

	// Unknown kind.
	_, err := client.SubmitJob(ctx, "explode", caseStudyWire())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != CodeInvalidRequest {
		t.Fatalf("unknown kind = %v", err)
	}

	// Malformed body.
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	assertProblem(t, resp, http.StatusBadRequest, CodeInvalidBody)
}

// A semantically invalid async request still yields a job — which
// then fails, carrying the validation error.
func TestJobFailure(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	bad := caseStudyWire()
	bad.Base.Provider = "ghost-cloud"
	job, err := client.SubmitJob(ctx, JobKindRecommend, bad)
	if err != nil {
		t.Fatal(err)
	}
	job, err = client.WaitJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "failed" {
		t.Fatalf("state = %s, want failed", job.State)
	}
	if job.Error == nil || !strings.Contains(job.Error.Detail, "ghost-cloud") {
		t.Fatalf("job error = %+v", job.Error)
	}
	if _, err := job.Recommendation(); err == nil {
		t.Fatal("Recommendation on failed job should error")
	}
}

func TestJobListAndMetrics(t *testing.T) {
	ts, client, _ := newTestServer(t)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.WaitJob(ctx, job.ID); err != nil {
			t.Fatal(err)
		}
	}

	list, err := client.ListJobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("ListJobs = %d jobs, want 2", len(list))
	}

	// The raw list response also carries the queue metrics.
	resp, err := http.Get(ts.URL + "/v2/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var full struct {
		Metrics struct {
			Submitted int64 `json:"submitted"`
			Done      int64 `json:"done"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.Metrics.Submitted != 2 || full.Metrics.Done != 2 {
		t.Fatalf("metrics = %+v", full.Metrics)
	}
}

func TestJobTTLExpiry(t *testing.T) {
	_, client, _ := newTestServer(t,
		WithJobTTL(10*time.Millisecond),
		WithJobGCInterval(10*time.Millisecond),
	)
	ctx := context.Background()

	job, err := client.SubmitJob(ctx, JobKindRecommend, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.WaitJob(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := client.GetJob(ctx, job.ID)
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Code == CodeJobNotFound {
			return // swept
		}
		if err != nil {
			t.Fatalf("GetJob: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, client, _ := newTestServer(t)
	ctx := context.Background()

	bad := caseStudyWire()
	bad.Base.Provider = "ghost-cloud"
	resp, err := client.RecommendBatch(ctx, []RecommendationRequest{caseStudyWire(), bad, caseStudyWire()})
	if err != nil {
		t.Fatalf("RecommendBatch: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	if resp.Succeeded != 2 || resp.Failed != 1 {
		t.Fatalf("succeeded/failed = %d/%d, want 2/1", resp.Succeeded, resp.Failed)
	}
	for i, want := range []bool{true, false, true} {
		item := resp.Results[i]
		if item.Index != i {
			t.Fatalf("item %d has index %d", i, item.Index)
		}
		if want && (item.Recommendation == nil || item.Error != nil) {
			t.Fatalf("item %d should have succeeded: %+v", i, item)
		}
		if !want && (item.Error == nil || item.Recommendation != nil) {
			t.Fatalf("item %d should have failed: %+v", i, item)
		}
	}

	// Batch results agree with the synchronous route.
	solo, err := client.Recommend(ctx, caseStudyWire())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Recommendation.BestOption != solo.BestOption {
		t.Fatal("batch result diverges from sync route")
	}
}

func TestBatchValidation(t *testing.T) {
	ts, client, _ := newTestServer(t)
	ctx := context.Background()

	_, err := client.RecommendBatch(ctx, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("empty batch = %v, want 400", err)
	}

	resp, err := http.Post(ts.URL+"/v2/recommendations/batch", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	assertProblem(t, resp, http.StatusBadRequest, CodeInvalidBody)
}

// assertProblem checks that a response is valid RFC 9457
// problem+json with the wanted status and code.
func assertProblem(t *testing.T, resp *http.Response, wantStatus int, wantCode string) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ProblemContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ProblemContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var p Problem
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("problem body is not JSON: %v (%s)", err, body)
	}
	if p.Status != wantStatus {
		t.Fatalf("problem.status = %d, want %d (%s)", p.Status, wantStatus, body)
	}
	if p.Code != wantCode {
		t.Fatalf("problem.code = %q, want %q (%s)", p.Code, wantCode, body)
	}
	if p.Type == "" || p.Title == "" {
		t.Fatalf("problem missing type/title: %s", body)
	}
}

// Every 4xx/5xx path on the v2 surface must produce problem+json.
func TestProblemShapeOnErrorPaths(t *testing.T) {
	ts, _, _ := newTestServer(t)

	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rdr io.Reader
		if body != "" {
			rdr = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rdr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"unknown route", http.MethodGet, "/v2/nope", "", http.StatusNotFound, CodeNotFound},
		{"method not allowed", http.MethodGet, "/v2/recommendations", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"malformed recommend", http.MethodPost, "/v2/recommendations", "{nope", http.StatusBadRequest, CodeInvalidBody},
		{"invalid recommend", http.MethodPost, "/v2/recommendations", `{"base":{"name":"x","provider":"ghost","components":[{"name":"c","layer":"compute","active_nodes":1}]},"sla_percent":98,"penalty_per_hour_usd":10}`, http.StatusUnprocessableEntity, CodeInvalidRequest},
		{"malformed pareto", http.MethodPost, "/v2/pareto", "{nope", http.StatusBadRequest, CodeInvalidBody},
		{"unknown job", http.MethodGet, "/v2/jobs/job-0000", "", http.StatusNotFound, CodeJobNotFound},
		{"unknown job cancel", http.MethodDelete, "/v2/jobs/job-0000", "", http.StatusNotFound, CodeJobNotFound},
		{"bad job kind", http.MethodPost, "/v2/jobs", `{"kind":"explode","request":{}}`, http.StatusBadRequest, CodeInvalidRequest},
		{"empty batch", http.MethodPost, "/v2/recommendations/batch", `{"requests":[]}`, http.StatusBadRequest, CodeInvalidRequest},
		{"missing params", http.MethodGet, "/v2/params", "", http.StatusBadRequest, CodeInvalidRequest},
		{"unknown scenario", http.MethodPost, "/v2/scenarios/ghost/recommendation", "", http.StatusNotFound, CodeNotFound},
		{"bad observation", http.MethodPost, "/v2/observations", `{"provider":"p","class":"c","kind":"weird","seconds":1}`, http.StatusBadRequest, CodeInvalidRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := do(tc.method, tc.path, tc.body)
			defer resp.Body.Close()
			assertProblem(t, resp, tc.wantStatus, tc.wantCode)
		})
	}
}

func TestV1RoutesAlsoSpeakProblemJSON(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/recommendations", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Valid problem+json...
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var p Problem
	if err := json.Unmarshal(body, &p); err != nil || p.Code != CodeInvalidBody {
		t.Fatalf("v1 error body: %s (err %v)", body, err)
	}
	// ...that legacy clients decoding {"error": "..."} still read.
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &legacy); err != nil || legacy.Error == "" {
		t.Fatalf("v1 error body lost the legacy error member: %s", body)
	}
}

func TestV1V2RecommendationParity(t *testing.T) {
	ts, _, _ := newTestServer(t)
	body, _ := json.Marshal(caseStudyWire())

	fetch := func(path string) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	v1 := fetch("/v1/recommendations")
	v2 := fetch("/v2/recommendations")
	if !bytes.Equal(v1, v2) {
		t.Fatalf("v1 and v2 /recommendations bodies diverge:\nv1: %s\nv2: %s", v1, v2)
	}
}

func TestRateLimiting(t *testing.T) {
	ts, _, _ := newTestServer(t, WithRateLimit(0.000001, 2))

	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/scenarios")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst = %d, want 200", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	assertProblem(t, resp, http.StatusTooManyRequests, CodeRateLimited)

	// Liveness stays exempt even with the bucket drained.
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Fatalf("/healthz under rate limit = %d, want 200", health.StatusCode)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	ts, _, _ := newTestServer(t)

	// Server-assigned.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("response missing X-Request-Id")
	}

	// Caller-supplied IDs are echoed and land in problem bodies.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/nope", nil)
	req.Header.Set(RequestIDHeader, "trace-123")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "trace-123" {
		t.Fatalf("echoed request ID = %q", got)
	}
	var p Problem
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.RequestID != "trace-123" {
		t.Fatalf("problem.request_id = %q, want trace-123", p.RequestID)
	}
}

func TestClientRetries(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeProblem(w, NewProblem(CodeUnavailable, http.StatusServiceUnavailable, "warming up"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer flaky.Close()

	client, err := NewClient(flaky.URL, flaky.Client(), WithRetries(3), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("Health with retries = %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}

	// Without retries the same failure surfaces immediately.
	calls.Store(0)
	plain, err := NewClient(flaky.URL, flaky.Client())
	if err != nil {
		t.Fatal(err)
	}
	err = plain.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != CodeUnavailable {
		t.Fatalf("Health without retries = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1", got)
	}
}

func TestClientDoesNotRetryPosts(t *testing.T) {
	var calls atomic.Int64
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeProblem(w, NewProblem(CodeUnavailable, http.StatusServiceUnavailable, "down"))
	}))
	defer failing.Close()

	client, err := NewClient(failing.URL, failing.Client(), WithRetries(5), WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recommend(context.Background(), caseStudyWire()); err == nil {
		t.Fatal("Recommend against a 503 server should fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("non-idempotent POST was retried: %d calls", got)
	}
}

func TestServerCloseRejectsNewJobs(t *testing.T) {
	cat := catalog.Default()
	engine, err := broker.New(cat, broker.CatalogParams{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}

	srv.Close()
	_, err = client.SubmitJob(context.Background(), JobKindRecommend, caseStudyWire())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Code != CodeUnavailable {
		t.Fatalf("SubmitJob after Close = %v, want 503 %s", err, CodeUnavailable)
	}
}

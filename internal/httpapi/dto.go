// Package httpapi exposes the brokerage as a small JSON-over-HTTP
// service — the "as-a-service" delivery the paper's title promises —
// plus a typed Go client. Monetary fields cross the wire as USD
// floats; they are converted to exact cost.Money at the boundary.
package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"uptimebroker/internal/broker"
	"uptimebroker/internal/catalog"
	"uptimebroker/internal/cost"
	"uptimebroker/internal/jobs"
	"uptimebroker/internal/optimize"
	"uptimebroker/internal/reccache"
	"uptimebroker/internal/topology"
)

// RecommendationRequest is the wire form of broker.Request.
type RecommendationRequest struct {
	// Base is the base cloud solution architecture.
	Base topology.System `json:"base"`

	// SLAPercent is the contractual uptime percentage, e.g. 98.
	SLAPercent float64 `json:"sla_percent"`

	// PenaltyPerHourUSD is the slippage penalty in dollars per hour.
	PenaltyPerHourUSD float64 `json:"penalty_per_hour_usd"`

	// AsIs optionally maps component names to incumbent HA tech IDs.
	AsIs map[string]string `json:"as_is,omitempty"`

	// AllowedTechs optionally restricts per-component HA choices.
	AllowedTechs map[string][]string `json:"allowed_techs,omitempty"`

	// Strategy optionally names the solver the search runs on — any of
	// the exact strategies ("exhaustive", "pruned", "branch-and-bound",
	// "parallel-pruned"), the anytime strategies ("beam", "lds",
	// "bounded") or "auto" (the default).
	//
	// Deprecated alias: Strategy is the flat spelling of
	// Solver.Strategy and remains fully supported — the server folds it
	// into the nested spec, so both spellings validate, solve and cache
	// identically. Naming different strategies in both places is
	// rejected.
	Strategy string `json:"strategy,omitempty"`

	// Solver is the nested solver specification: the strategy plus the
	// anytime lane's budget and knobs. Absent means "auto with no
	// limits", exactly the empty flat Strategy. Unknown fields inside
	// the object are rejected (problem code "invalid_solver") rather
	// than silently ignored — a mistyped budget knob must not turn an
	// approximate run into an unbounded one.
	Solver *SolverConfigDTO `json:"solver,omitempty"`

	// Pricing optionally selects how the full card-pricing pass
	// enumerates the k^n options: "parallel" (shard across the
	// server's cores), "sequential", or "auto" (the default: parallel
	// only when the host has the cores and the space the size to pay
	// for it). Every mode produces byte-identical cards; the choice
	// only moves latency.
	Pricing string `json:"pricing,omitempty"`
}

// ToBroker converts the wire request to the domain request.
func (r RecommendationRequest) ToBroker() broker.Request {
	req := broker.Request{
		Base: r.Base,
		SLA: cost.SLA{
			UptimePercent: r.SLAPercent,
			Penalty:       cost.Penalty{PerHour: cost.Dollars(r.PenaltyPerHourUSD)},
		},
		AllowedTechs: r.AllowedTechs,
		Strategy:     r.Strategy,
		Pricing:      r.Pricing,
	}
	if r.Solver != nil {
		req.Solver = r.Solver.ToOptimize()
	}
	if r.AsIs != nil {
		req.AsIs = broker.Plan(r.AsIs)
	}
	return req
}

// SolverConfigDTO is the wire form of optimize.SolverConfig: the
// nested "solver" member of a recommendation request. The zero value
// means "auto with no limits".
type SolverConfigDTO struct {
	// Strategy names the solver, one of the exact or anytime
	// strategies, or "auto"/"" for the heuristic pick.
	Strategy string `json:"strategy,omitempty"`

	// BudgetMS caps the search's wall-clock time in milliseconds.
	// Approximate strategies stop at the deadline and certify what they
	// have; exact strategies treat it as a hard deadline (the request
	// fails when it fires). Zero means unlimited.
	BudgetMS int64 `json:"budget_ms,omitempty"`

	// MaxEvaluations caps how many candidates the search prices. Only
	// the approximate strategies accept it; an exact strategy cannot
	// honor a cap and rejects the request. Zero means unlimited.
	MaxEvaluations int64 `json:"max_evaluations,omitempty"`

	// BeamWidth is the beam strategy's per-level survivor count
	// (default 64). Setting it with any other explicit strategy is
	// rejected.
	BeamWidth int `json:"beam_width,omitempty"`

	// MaxDiscrepancies is the lds strategy's discrepancy budget
	// (default 4). Setting it with any other explicit strategy is
	// rejected.
	MaxDiscrepancies int `json:"max_discrepancies,omitempty"`

	// Epsilon is the bounded strategy's admissible suboptimality
	// fraction in [0, 1] (default 0.05): the search may skip subtrees
	// that cannot beat the incumbent by more than this factor, and the
	// returned plan is certified within (1+epsilon) of optimal. Setting
	// it with any other explicit strategy is rejected.
	Epsilon float64 `json:"epsilon,omitempty"`
}

// SolverSpecError marks a request-body decode failure located inside
// the "solver" object, so the server can answer with the
// "invalid_solver" problem code instead of the generic body-parse one.
type SolverSpecError struct{ Err error }

// Error implements error.
func (e *SolverSpecError) Error() string { return "solver: " + e.Err.Error() }

// Unwrap exposes the underlying decode error.
func (e *SolverSpecError) Unwrap() error { return e.Err }

// UnmarshalJSON decodes the solver spec strictly: unknown fields are
// an error, not a silent drop. Every other wire type tolerates unknown
// fields for forward compatibility; here a typo ("beamwidth",
// "budget") would change solve semantics without any signal, so the
// object is the one place the API is strict.
func (d *SolverConfigDTO) UnmarshalJSON(data []byte) error {
	type plain SolverConfigDTO // drop methods to avoid recursing
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p plain
	if err := dec.Decode(&p); err != nil {
		return &SolverSpecError{Err: err}
	}
	*d = SolverConfigDTO(p)
	return nil
}

// ToOptimize converts the wire spec to the domain spec.
func (d SolverConfigDTO) ToOptimize() optimize.SolverConfig {
	return optimize.SolverConfig{
		Strategy: d.Strategy,
		Budget: optimize.Budget{
			Wall:           time.Duration(d.BudgetMS) * time.Millisecond,
			MaxEvaluations: d.MaxEvaluations,
		},
		BeamWidth:        d.BeamWidth,
		MaxDiscrepancies: d.MaxDiscrepancies,
		Epsilon:          d.Epsilon,
	}
}

// ChoiceDTO is one component's HA selection.
type ChoiceDTO struct {
	Component string `json:"component"`
	TechID    string `json:"tech_id,omitempty"`
}

// OptionCardDTO is the wire form of one solution option.
type OptionCardDTO struct {
	Option        int         `json:"option"`
	Label         string      `json:"label"`
	Choices       []ChoiceDTO `json:"choices"`
	HACostUSD     float64     `json:"ha_cost_usd"`
	UptimePercent float64     `json:"uptime_percent"`
	SlippageHours float64     `json:"slippage_hours_per_month"`
	PenaltyUSD    float64     `json:"penalty_usd"`
	TCOUSD        float64     `json:"tco_usd"`
	MeetsSLA      bool        `json:"meets_sla"`
}

// SearchStatsDTO is the wire form of the search-effort statistics.
// Strategy echoes the concrete solver that ran ("auto" requests see
// what the heuristic resolved to).
type SearchStatsDTO struct {
	SpaceSize    int    `json:"space_size"`
	Evaluated    int    `json:"evaluated"`
	Skipped      int    `json:"skipped"`
	CoverLookups int    `json:"cover_lookups,omitempty"`
	Clipped      int    `json:"clipped,omitempty"`
	Strategy     string `json:"strategy,omitempty"`

	// Approximate marks a run on one of the anytime strategies (beam,
	// lds, bounded). The certificate members below are present exactly
	// when it is true — exact runs omit the whole group, keeping their
	// wire form byte-identical to pre-anytime responses.
	Approximate bool `json:"approximate,omitempty"`

	// BoundUSD is the certified lower bound on any plan's monthly TCO:
	// no assignment, searched or not, can cost less.
	BoundUSD *float64 `json:"bound_usd,omitempty"`

	// Gap is the certified relative optimality gap,
	// (incumbent − bound) / bound. 0 means proven optimal. Omitted
	// when no positive lower bound was proven (the gap is unbounded).
	Gap *float64 `json:"gap,omitempty"`

	// Optimal reports whether the returned plan is proven optimal
	// (gap exactly zero).
	Optimal *bool `json:"optimal,omitempty"`

	// BudgetExhausted reports whether the run stopped on its
	// wall-clock or evaluation budget rather than finishing the
	// strategy's full sweep.
	BudgetExhausted *bool `json:"budget_exhausted,omitempty"`
}

// RecommendationResponse is the wire form of broker.Recommendation.
type RecommendationResponse struct {
	System         string          `json:"system"`
	Provider       string          `json:"provider"`
	SLAPercent     float64         `json:"sla_percent"`
	Cards          []OptionCardDTO `json:"cards"`
	BestOption     int             `json:"best_option"`
	MinRiskOption  int             `json:"min_risk_option,omitempty"`
	AsIsOption     int             `json:"as_is_option,omitempty"`
	SavingsPercent float64         `json:"savings_percent,omitempty"`
	Search         SearchStatsDTO  `json:"search"`

	// Cache reports how the server's result cache answered this
	// request — "hit", "miss" or "shared" — mirroring the X-Cache
	// response header. Empty when the server runs without a cache.
	Cache string `json:"cache,omitempty"`
}

// fromCard converts one option card to wire form.
func fromCard(c broker.OptionCard) OptionCardDTO {
	choices := make([]ChoiceDTO, len(c.Choices))
	for j, ch := range c.Choices {
		choices[j] = ChoiceDTO{Component: ch.Component, TechID: ch.TechID}
	}
	return OptionCardDTO{
		Option:        c.Option,
		Label:         c.Label(),
		Choices:       choices,
		HACostUSD:     c.HACost.Dollars(),
		UptimePercent: c.Uptime * 100,
		SlippageHours: c.SlippageHours,
		PenaltyUSD:    c.Penalty.Dollars(),
		TCOUSD:        c.TCO.Dollars(),
		MeetsSLA:      c.MeetsSLA,
	}
}

// FromRecommendation converts a domain recommendation to wire form.
func FromRecommendation(rec *broker.Recommendation) RecommendationResponse {
	cards := make([]OptionCardDTO, len(rec.Cards))
	for i, c := range rec.Cards {
		cards[i] = fromCard(c)
	}
	return RecommendationResponse{
		System:         rec.System,
		Provider:       rec.Provider,
		SLAPercent:     rec.SLA.UptimePercent,
		Cards:          cards,
		BestOption:     rec.BestOption,
		MinRiskOption:  rec.MinRiskOption,
		AsIsOption:     rec.AsIsOption,
		SavingsPercent: rec.SavingsFraction * 100,
		Search:         fromSearchStats(rec.Search),
	}
}

// fromSearchStats converts search statistics to wire form, attaching
// the anytime certificate only when the run was approximate.
func fromSearchStats(s broker.SearchStats) SearchStatsDTO {
	dto := SearchStatsDTO{
		SpaceSize:    s.SpaceSize,
		Evaluated:    s.Evaluated,
		Skipped:      s.Skipped,
		CoverLookups: s.CoverLookups,
		Clipped:      s.Clipped,
		Strategy:     s.Strategy,
	}
	if !s.Approximate {
		return dto
	}
	dto.Approximate = true
	bound := s.Bound.Dollars()
	dto.BoundUSD = &bound
	if !math.IsInf(s.Gap, 1) {
		gap := s.Gap
		dto.Gap = &gap
	}
	optimal := s.Optimal
	dto.Optimal = &optimal
	exhausted := s.BudgetExhausted
	dto.BudgetExhausted = &exhausted
	return dto
}

// TechnologyDTO is the wire form of a catalog technology.
type TechnologyDTO struct {
	ID                 string  `json:"id"`
	Name               string  `json:"name"`
	Layer              string  `json:"layer"`
	StandbyNodes       int     `json:"standby_nodes"`
	Mode               string  `json:"mode"`
	FailoverSeconds    float64 `json:"failover_seconds"`
	InfraFixedUSD      float64 `json:"infra_fixed_usd"`
	InfraPerStandbyUSD float64 `json:"infra_per_standby_usd"`
	LaborHoursPerMonth float64 `json:"labor_hours_per_month"`
}

// FromTechnology converts a catalog technology to wire form.
func FromTechnology(t catalog.HATechnology) TechnologyDTO {
	return TechnologyDTO{
		ID:                 t.ID,
		Name:               t.Name,
		Layer:              t.Layer.String(),
		StandbyNodes:       t.StandbyNodes,
		Mode:               t.Mode.String(),
		FailoverSeconds:    t.Failover.Seconds(),
		InfraFixedUSD:      t.InfraFixed.Dollars(),
		InfraPerStandbyUSD: t.InfraPerStandby.Dollars(),
		LaborHoursPerMonth: t.LaborHoursPerMonth,
	}
}

// ProviderDTO is the wire form of a catalog provider.
type ProviderDTO struct {
	Name            string  `json:"name"`
	DisplayName     string  `json:"display_name"`
	LaborRateUSD    float64 `json:"labor_rate_usd"`
	InfraMultiplier float64 `json:"infra_multiplier"`
}

// FromProvider converts a catalog provider to wire form.
func FromProvider(p catalog.Provider) ProviderDTO {
	return ProviderDTO{
		Name:            p.Name,
		DisplayName:     p.DisplayName,
		LaborRateUSD:    p.RateCard.LaborRate.Dollars(),
		InfraMultiplier: p.RateCard.InfraMultiplier,
	}
}

// Observation kinds accepted by POST /v1/observations.
const (
	ObservationOutage   = "outage"
	ObservationFailover = "failover"
	ObservationExposure = "exposure"
)

// Observation is one telemetry sample.
type Observation struct {
	// Provider and Class identify the telemetry bucket.
	Provider string `json:"provider"`
	Class    string `json:"class"`

	// Kind is one of outage, failover or exposure.
	Kind string `json:"kind"`

	// Seconds is the observation magnitude: outage duration, failover
	// window, or node-time of exposure.
	Seconds float64 `json:"seconds"`
}

// Validate reports whether the observation is well-formed.
func (o Observation) Validate() error {
	if o.Provider == "" || o.Class == "" {
		return fmt.Errorf("httpapi: observation needs provider and class")
	}
	switch o.Kind {
	case ObservationOutage, ObservationFailover, ObservationExposure:
	default:
		return fmt.Errorf("httpapi: unknown observation kind %q", o.Kind)
	}
	if o.Seconds < 0 {
		return fmt.Errorf("httpapi: negative observation")
	}
	return nil
}

// Duration returns the observation magnitude as a time.Duration.
func (o Observation) Duration() time.Duration {
	return time.Duration(o.Seconds * float64(time.Second))
}

// ParamsResponse reports the parameter estimate the broker would use
// for one (provider, class).
type ParamsResponse struct {
	Provider           string  `json:"provider"`
	Class              string  `json:"class"`
	Down               float64 `json:"down"`
	FailuresPerYear    float64 `json:"failures_per_year"`
	FailoverSeconds    float64 `json:"failover_seconds,omitempty"`
	FailoverP95Seconds float64 `json:"failover_p95_seconds,omitempty"`
	ExposureYears      float64 `json:"exposure_years,omitempty"`
	Source             string  `json:"source"`
}

// CacheMetricsDTO is the wire form of the result cache's counters,
// reccache.Metrics plus the derived hit rate.
type CacheMetricsDTO struct {
	// Hits, Misses and Shared classify every cached engine call:
	// answered from a completed entry, computed fresh, or collapsed
	// onto another caller's in-flight computation.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Shared int64 `json:"shared"`

	// Evictions and Expired count entries dropped for capacity and
	// for age, respectively.
	Evictions int64 `json:"evictions"`
	Expired   int64 `json:"expired"`

	// Inflight is the number of computations running right now.
	Inflight int64 `json:"inflight"`

	// Entries and Bytes are the current occupancy (Bytes is the sum
	// of the engine's per-result size estimates).
	Entries int64 `json:"entries"`
	Bytes   int64 `json:"bytes"`

	// HitRate is the fraction of calls that avoided a solver run.
	HitRate float64 `json:"hit_rate"`
}

// fromCacheMetrics converts the cache counters to wire form.
func fromCacheMetrics(m reccache.Metrics) CacheMetricsDTO {
	return CacheMetricsDTO{
		Hits:      m.Hits,
		Misses:    m.Misses,
		Shared:    m.Shared,
		Evictions: m.Evictions,
		Expired:   m.Expired,
		Inflight:  m.Inflight,
		Entries:   m.Entries,
		Bytes:     m.Bytes,
		HitRate:   m.HitRate(),
	}
}

// MetricsResponse is the body of GET /v1/metrics (and /v2/metrics):
// the server's operational counters in one document.
type MetricsResponse struct {
	// Jobs are the async job subsystem's counters.
	Jobs jobs.Metrics `json:"jobs"`

	// Cache reports the result cache; absent when the engine runs
	// without one.
	Cache *CacheMetricsDTO `json:"cache,omitempty"`

	// CatalogEpoch is the catalog's current mutation counter — the
	// epoch stamped into every cache key, so a bump here explains a
	// burst of cache misses.
	CatalogEpoch uint64 `json:"catalog_epoch"`

	// ParamsEpoch is the parameter source's mutation counter when the
	// source exposes one (telemetry-backed engines do); absent
	// otherwise.
	ParamsEpoch *uint64 `json:"params_epoch,omitempty"`

	// RateLimiter reports the per-client limiter's occupancy; absent
	// when per-client limiting is off.
	RateLimiter *RateLimiterMetricsDTO `json:"rate_limiter,omitempty"`

	// Build identifies the running binary.
	Build *BuildInfoDTO `json:"build,omitempty"`
}

// RateLimiterMetricsDTO is the per-client rate limiter's occupancy.
type RateLimiterMetricsDTO struct {
	// ClientBuckets is the number of live per-client token buckets —
	// roughly the distinct clients seen within the idle TTL.
	ClientBuckets int `json:"client_buckets"`
}

// BuildInfoDTO is the wire form of the binary's identity.
type BuildInfoDTO struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`

	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`

	// StartedAt is when the process started; UptimeSeconds is the age
	// at response time.
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

// ScenarioDTO summarizes one built-in scenario.
type ScenarioDTO struct {
	Name              string  `json:"name"`
	Description       string  `json:"description"`
	Provider          string  `json:"provider"`
	Components        int     `json:"components"`
	SLAPercent        float64 `json:"sla_percent"`
	PenaltyPerHourUSD float64 `json:"penalty_per_hour_usd"`
}
